bench/exp_functional.ml: Exp_common List Printexc Printf Rng System Table Treesls_ckpt
