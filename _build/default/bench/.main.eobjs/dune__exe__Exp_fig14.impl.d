bench/exp_fig14.ml: Clock Exp_common Histogram List Lsm Manager Rng System Table Treesls_baselines Treesls_workloads
