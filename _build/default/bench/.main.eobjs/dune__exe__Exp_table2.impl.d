bench/exp_table2.ml: Census Exp_common List Manager Printf Rng System Table
