bench/exp_table3.ml: Exp_common Hashtbl Kobj List Manager Printf Rng State Stats System Table
