bench/exp_fig13.ml: Exp_common Kv_app List Rng System Table Treesls_baselines Treesls_workloads
