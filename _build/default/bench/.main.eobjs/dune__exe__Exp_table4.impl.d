bench/exp_table4.ml: Exp_common Kernel List Report Rng System Table
