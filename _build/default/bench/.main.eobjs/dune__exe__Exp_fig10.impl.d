bench/exp_fig10.ml: Exp_common List Rng State System Table
