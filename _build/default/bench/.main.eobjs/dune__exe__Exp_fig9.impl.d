bench/exp_fig9.ml: Exp_common Hashtbl Kobj List Option Report Rng Table
