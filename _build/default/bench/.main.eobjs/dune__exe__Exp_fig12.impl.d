bench/exp_fig12.ml: Bytes Exp_common Histogram Kernel Kv_app List Printf Rng System Table Treesls_extsync
