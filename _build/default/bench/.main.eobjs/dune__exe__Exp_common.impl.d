bench/exp_common.ml: List Printf Treesls Treesls_apps Treesls_cap Treesls_ckpt Treesls_kernel Treesls_sim Treesls_util
