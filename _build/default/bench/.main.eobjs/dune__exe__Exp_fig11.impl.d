bench/exp_fig11.ml: Exp_common Kv_app List Printf Rng System Table
