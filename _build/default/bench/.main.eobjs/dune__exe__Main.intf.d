bench/main.mli:
