bench/exp_ablate.ml: Exp_common Kernel List Manager Printf Report Rng System Table Treesls_ckpt Treesls_kernel Treesls_nvm Treesls_sim
