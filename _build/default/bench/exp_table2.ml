(* Table 2: object composition and sizes of each workload.
   Object counts of Default are absolute; other workloads are printed
   relative to Default, like the paper. App = runtime memory the
   application touched; Ckpt = checkpoint footprint (smaller than App
   because unmodified runtime pages serve as their own checkpoint). *)

open Exp_common

let run () =
  let rows = ref [] in
  let base = ref None in
  List.iter
    (fun w ->
      let sys = boot () in
      let rng = Rng.create 7L in
      let c0 = census sys in
      let app = launch sys rng w in
      (* run enough work for the footprint to materialise *)
      let ops = match w with W_default -> 50 | _ -> 4_000 in
      run_ops sys ~n:ops app.step;
      (* settle: two checkpoints so sizes reflect steady state *)
      ignore (System.checkpoint sys);
      ignore (System.checkpoint sys);
      let c = census sys in
      let d = Census.diff c c0 in
      let ckpt_mib = float_of_int (Manager.checkpoint_bytes (System.manager sys)) /. (1024. *. 1024.) in
      let app_mib = app.touched_mib () in
      let fmt_abs v = string_of_int v and fmt_rel v = Printf.sprintf "+%d" v in
      let row =
        match w with
        | W_default ->
          base := Some c;
          [
            workload_name w;
            fmt_abs c.Census.cap_groups;
            fmt_abs c.Census.threads;
            fmt_abs c.Census.ipcs;
            fmt_abs c.Census.notifications;
            fmt_abs c.Census.pmos;
            fmt_abs c.Census.vmspaces;
            "n/a";
            "n/a";
          ]
        | _ ->
          [
            workload_name w;
            fmt_rel d.Census.cap_groups;
            fmt_rel d.Census.threads;
            fmt_rel d.Census.ipcs;
            fmt_rel d.Census.notifications;
            fmt_rel d.Census.pmos;
            fmt_rel d.Census.vmspaces;
            f1 app_mib;
            f1 ckpt_mib;
          ]
      in
      rows := row :: !rows)
    table2_workloads;
  Table.print ~title:"Table 2: workload object composition and sizes"
    ~header:[ "Workload"; "C.G."; "Thread"; "IPC"; "Noti."; "PMO"; "VMS"; "App MiB"; "Ckpt MiB" ]
    (List.rev !rows)
