(* §7.2 functional tests: run every workload, pull the power at an
   arbitrary point, reboot and verify the programs continue running with
   expected behaviour. *)

open Exp_common

let crash_recover_continue w =
  let sys = boot () in
  let rng = Rng.create 43L in
  let app = launch sys rng w in
  run_ops sys ~n:1_500 app.step;
  (* crash at an arbitrary (non-boundary) instant *)
  run_ops sys ~n:(Rng.int rng 500) app.step;
  let v_before = System.version sys in
  System.crash sys;
  let report = System.recover sys in
  app.refresh ();
  (* the system must have rolled back to the last committed version *)
  let ok_version = report.Treesls_ckpt.Restore.version = v_before in
  (* and keep running: another burst of work + another crash *)
  run_ops sys ~n:1_000 app.step;
  ignore (System.checkpoint sys);
  System.crash sys;
  let _ = System.recover sys in
  app.refresh ();
  run_ops sys ~n:500 app.step;
  ok_version

let run () =
  let rows =
    List.map
      (fun w ->
        let ok = try crash_recover_continue w with e -> (
          Printf.printf "  %s raised %s\n" (workload_name w) (Printexc.to_string e);
          false)
        in
        [ workload_name w; (if ok then "PASS" else "FAIL") ])
      (table2_workloads @ [ W_pca ])
  in
  Table.print ~title:"Functional tests (§7.2): crash & reboot under running applications"
    ~header:[ "Workload"; "Result" ]
    rows
