(* Table 4: effect of the hybrid memory checkpoint. Per checkpoint
   interval: runtime page faults that still happen, dirty DRAM-cached
   pages speculatively stop-and-copied, total cached pages, the fraction
   of faults eliminated and the dirty rate of the cache. *)

open Exp_common

let workloads = [ W_memcached; W_redis; W_kmeans; W_pca ]

let run () =
  let rows =
    List.map
      (fun w ->
        let sys = boot () in
        let rng = Rng.create 23L in
        let app = launch sys rng w in
        (* warm up so the hot set migrates *)
        run_ops sys ~n:8_000 app.step;
        let k = System.kernel sys in
        let faults0 = (Kernel.stats k).Kernel.cow_faults in
        let reports = collect_reports sys ~n:8_000 app.step in
        let faults = (Kernel.stats k).Kernel.cow_faults - faults0 in
        let n = max 1 (List.length reports) in
        let per_interval v = float_of_int v /. float_of_int n in
        let dirty_cached = avg_reports reports (fun r -> r.Report.dram_dirty_copied) in
        let cached = avg_reports reports (fun r -> r.Report.cached_pages) in
        let faults_pi = per_interval faults in
        let eliminated =
          if dirty_cached +. faults_pi <= 0.0 then 0.0
          else dirty_cached /. (dirty_cached +. faults_pi)
        in
        let dirty_rate = if cached <= 0.0 then 0.0 else dirty_cached /. cached in
        [
          workload_name w;
          f1 faults_pi;
          f1 dirty_cached;
          f1 cached;
          Table.fmt_pct eliminated;
          Table.fmt_pct dirty_rate;
        ])
      workloads
  in
  Table.print ~title:"Table 4: effect of hybrid memory checkpoint (per 1ms interval)"
    ~header:
      [
        "Workload";
        "# runtime page faults";
        "# dirty cached pages";
        "# cached pages";
        "Faults eliminated";
        "Dirty rate in cache";
      ]
    rows
