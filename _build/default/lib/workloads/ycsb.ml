module Rng = Treesls_util.Rng
module Zipf = Treesls_util.Zipf

type workload = A | B | C | Update_only | Insert_only

let name = function
  | A -> "Workload A"
  | B -> "Workload B"
  | C -> "Workload C"
  | Update_only -> "100% Update"
  | Insert_only -> "100% Insert"

let all = [ A; B; C; Update_only; Insert_only ]

type op = Read of int | Update of int | Insert of int

type t = { workload : workload; rng : Rng.t; zipf : Zipf.t; mutable keys : int }

let read_fraction = function
  | A -> 0.5
  | B -> 0.95
  | C -> 1.0
  | Update_only | Insert_only -> 0.0

let create workload ~keys rng =
  { workload; rng; zipf = Zipf.create ~n:keys rng; keys }

let next t =
  match t.workload with
  | Insert_only ->
    let k = t.keys in
    t.keys <- t.keys + 1;
    Insert k
  | (A | B | C | Update_only) as w ->
    let k = Zipf.scrambled t.zipf in
    if Rng.float t.rng 1.0 < read_fraction w then Read k else Update k

let key_count t = t.keys
