(** Facebook Prefix_dist-style RocksDB workload (Cao et al., FAST'20).

    Keys carry skewed prefixes (a small set of prefixes receives most
    traffic); value sizes follow a Pareto-like distribution; the mix is
    write-heavy with occasional gets, matching how §7.5.2 exercises
    RocksDB. *)

type op = Put of { key : string; value : string } | Get of { key : string }

type t

val create : ?keys:int -> ?write_fraction:float -> Treesls_util.Rng.t -> t
(** Defaults: 50_000 keys, 78% writes. *)

val next : t -> op
