module Rng = Treesls_util.Rng
module Zipf = Treesls_util.Zipf

type op = Put of { key : string; value : string } | Get of { key : string }

type t = {
  rng : Rng.t;
  prefixes : Zipf.t;  (** skewed prefix popularity *)
  suffix_domain : int;
  write_fraction : float;
}

let create ?(keys = 50_000) ?(write_fraction = 0.78) rng =
  {
    rng;
    prefixes = Zipf.create ~n:64 rng;
    suffix_domain = keys / 64;
    write_fraction;
  }

let key t =
  let prefix = Zipf.next t.prefixes in
  let suffix = Rng.int t.rng (max 1 t.suffix_domain) in
  Printf.sprintf "p%02d:%08d" prefix suffix

(* Value sizes: mostly small with a heavy tail (Pareto-ish, mean ~120 B,
   capped at 1 KiB like the paper's sizing). *)
let value_size t =
  let u = Rng.float t.rng 1.0 in
  let v = int_of_float (35.0 /. Float.pow (1.0 -. u) 0.6) in
  max 16 (min 1024 v)

let next t =
  let k = key t in
  if Rng.float t.rng 1.0 < t.write_fraction then
    Put { key = k; value = String.make (value_size t) 'v' }
  else Get { key = k }
