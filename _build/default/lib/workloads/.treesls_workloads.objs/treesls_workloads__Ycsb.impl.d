lib/workloads/ycsb.ml: Treesls_util
