lib/workloads/ycsb.mli: Treesls_util
