lib/workloads/prefix_dist.mli: Treesls_util
