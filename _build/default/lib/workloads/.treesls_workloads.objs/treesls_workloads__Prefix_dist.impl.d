lib/workloads/prefix_dist.ml: Float Printf String Treesls_util
