module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Rng = Treesls_util.Rng
module Clock = Treesls_sim.Clock
module Cost = Treesls_sim.Cost

type kind = Wordcount | Kmeans | Pca

type t = {
  sys : System.t;
  kind : kind;
  mutable proc : Kernel.process;
  input_vpn : int;
  input_pages : int;
  output_vpn : int;
  output_pages : int;
  mutable counts : Kvstore.t option; (* wordcount *)
  counts_vpn : int;
  mutable cursor : int;
  mutable steps : int;
}

let name_of = function Wordcount -> "wordcount" | Kmeans -> "kmeans" | Pca -> "pca"
let name t = name_of t.kind
let kind t = t.kind

(* Table 2 rows D/E: WordCount +12 threads +3 IPC +8 notifications +31
   PMOs; KMeans +12/+3/+9/+24. PCA (8-threaded, §7.4) follows the same
   shape. Extra heap PMOs make the totals: WC 1+12+3+input+counts+14=31;
   KM 1+12+3+input+output+6=24. *)
let census = function
  | Wordcount -> (12, 3, 8, 13)
  | Kmeans -> (12, 3, 9, 6)
  | Pca -> (8, 3, 4, 8)

let psz sys = (Kernel.cost (System.kernel sys)).Cost.page_size

let launch ?(scale = 1) sys kind =
  let threads, ipcs, notifs, extra = census kind in
  let proc =
    Launchpad.make_proc sys ~name:(name_of kind) ~threads ~ipcs ~notifs ~extra_pmos:extra
  in
  let k = System.kernel sys in
  let p = psz sys in
  let input_pages, output_pages =
    match kind with
    | Wordcount -> (scale * 6 * 1024 * 1024 / p, 0) (* 6 MiB text *)
    | Kmeans ->
      (* 10k points; the working set rewritten every iteration: the
         assignment array plus per-thread partial sums (~200 pages). *)
      (scale * 10_000 * 16 / p, scale * 200)
    | Pca ->
      (* result matrix much larger than the hot-page cache: the sliding
         write set revisits a page only after many checkpoints, so pages
         are demoted before they pay off (the paper's 11% case) *)
      (scale * 512 * 512 * 8 / p, scale * 4096)
  in
  let input_pages = max 4 input_pages in
  let input_vpn = Kernel.grow_heap k proc ~pages:input_pages in
  let output_vpn =
    if output_pages > 0 then Kernel.grow_heap k proc ~pages:(max 1 output_pages) else 0
  in
  let counts, counts_vpn =
    match kind with
    | Wordcount ->
      let kv = Kvstore.create k proc ~buckets:8192 ~pages:512 in
      (Some kv, Kvstore.base_vpn kv)
    | Kmeans | Pca -> (None, 0)
  in
  {
    sys;
    kind;
    proc;
    input_vpn;
    input_pages;
    output_vpn;
    output_pages = max 1 output_pages;
    counts;
    counts_vpn;
    cursor = 0;
    steps = 0;
  }

let refresh t =
  t.proc <- Launchpad.find_proc t.sys ~name:(name_of t.kind);
  match t.kind with
  | Wordcount ->
    t.counts <- Some (Kvstore.attach (System.kernel t.sys) t.proc ~vpn:t.counts_vpn)
  | Kmeans | Pca -> ()

let compute t ns = Clock.advance (Kernel.clock (System.kernel t.sys)) ns

(* A vocabulary of 4096 words with Zipf-like popularity derived from the
   rng: hot words update the same hash pages every interval. *)
let wc_word rng =
  let r = Rng.int rng 4096 in
  Printf.sprintf "w%04d" (r land (r lsr 3) land 4095)

let step t rng =
  let k = System.kernel t.sys in
  let p = psz t.sys in
  (match t.kind with
  | Wordcount ->
    (* map: stream 4 input pages; reduce: bump ~24 word counters *)
    for i = 0 to 3 do
      let vpn = t.input_vpn + ((t.cursor + i) mod t.input_pages) in
      ignore (Kernel.read_bytes k t.proc ~vaddr:(vpn * p) ~len:p)
    done;
    t.cursor <- (t.cursor + 4) mod t.input_pages;
    let kv = Option.get t.counts in
    for _ = 1 to 24 do
      let w = wc_word rng in
      let c = match Kvstore.get kv ~key:w with Some v -> int_of_string v | None -> 0 in
      Kvstore.put kv ~key:w ~value:(string_of_int (c + 1))
    done;
    compute t 12_000
  | Kmeans ->
    (* one sub-iteration slice: read a slice of points, rewrite a stripe
       of the iteration working set (assignments + partial sums). The
       whole write set cycles every few steps, so it is hot at every
       checkpoint — the ideal case for hybrid copy (Table 4: ~95% of its
       faults eliminated). *)
    for i = 0 to 7 do
      let vpn = t.input_vpn + ((t.cursor + i) mod t.input_pages) in
      ignore (Kernel.read_bytes k t.proc ~vaddr:(vpn * p) ~len:p)
    done;
    t.cursor <- (t.cursor + 8) mod t.input_pages;
    for i = 0 to 24 do
      let vpn = t.output_vpn + ((t.steps * 25 mod t.output_pages) + i) mod t.output_pages in
      Kernel.write_bytes k t.proc ~vaddr:((vpn * p) + (t.steps mod 8 * 512)) (Bytes.make 512 'k')
    done;
    compute t 16_000
  | Pca ->
    (* covariance sweep: read matrix rows; the write set slides across
       the large result matrix (poor locality: most writes fault, few
       pages stay hot long enough to cache — Table 4's 11% case), with a
       small hot accumulator band. *)
    for i = 0 to 7 do
      let vpn = t.input_vpn + ((t.cursor + i) mod t.input_pages) in
      ignore (Kernel.read_bytes k t.proc ~vaddr:(vpn * p) ~len:p)
    done;
    for i = 0 to 23 do
      let vpn = t.output_vpn + ((t.steps * 24 + i) mod t.output_pages) in
      Kernel.write_bytes k t.proc ~vaddr:(vpn * p) (Bytes.make 256 'p')
    done;
    for i = 0 to 3 do
      let vpn = t.output_vpn + (i mod t.output_pages) in
      Kernel.write_bytes k t.proc ~vaddr:((vpn * p) + 1024) (Bytes.make 128 'q')
    done;
    t.cursor <- (t.cursor + 8) mod t.input_pages;
    compute t 12_000);
  t.steps <- t.steps + 1

let progress t = t.steps
