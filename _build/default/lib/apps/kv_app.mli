(** Memcached- and Redis-style in-memory key-value servers.

    Each launch creates a server process and a (checkpointed) client
    process, reproducing the workload's Table 2 object census.  Operations
    travel the real path: the client dirties its request buffer, makes a
    synchronous IPC call, and the server executes the operation against its
    PMO-resident {!Kvstore}.

    Persistence is entirely transparent: neither server nor client contains
    any persistence code. After a crash, {!refresh} re-derives handles and
    re-registers the (volatile) IPC handler. *)

module Kernel = Treesls_kernel.Kernel
module System = Treesls.System

type profile = Memcached | Redis

type t

val launch :
  ?keys_hint:int -> ?value_size:int -> System.t -> profile -> t
(** [keys_hint] sizes the hash table and region (default 100_000). *)

val refresh : t -> unit
(** Post-recovery: re-find processes, re-open the store, re-register the
    IPC handler. *)

val server : t -> Kernel.process
val client : t -> Kernel.process
val kv : t -> Kvstore.t
val value_size : t -> int

val set : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val del : t -> key:string -> bool

val set_i : t -> int -> unit
(** [set_i t i] stores key ["key<i>"] with a deterministic value of
    [value_size] bytes (benchmark convenience). *)

val get_i : t -> int -> string option
