module Kernel = Treesls_kernel.Kernel
module System = Treesls.System
module Ipc = Treesls_kernel.Ipc

let make_proc sys ~name ~threads ~ipcs ~notifs ~extra_pmos =
  let k = System.kernel sys in
  let proc = Kernel.create_process k ~name ~threads ~prio:5 in
  let fs =
    match Kernel.find_process k ~name:"fsmgr" with
    | Some p -> p
    | None -> proc (* degenerate boots without services: self-connect *)
  in
  for _ = 1 to ipcs do
    ignore (Ipc.create_conn k ~client:proc ~server:fs)
  done;
  for _ = 1 to notifs do
    ignore (Kernel.create_notification k proc)
  done;
  for _ = 1 to extra_pmos do
    ignore (Kernel.grow_heap k proc ~pages:1)
  done;
  proc

let find_proc sys ~name =
  match Kernel.find_process (System.kernel sys) ~name with
  | Some p -> p
  | None -> raise Not_found

let region_vpn proc ~index =
  let regions = proc.Kernel.vms.Treesls_cap.Kobj.vs_regions in
  match List.nth_opt regions index with
  | Some r -> r.Treesls_cap.Kobj.vr_vpn
  | None -> invalid_arg "Launchpad.region_vpn: no such region"
