(** In-memory hash table stored entirely in process memory.

    This is the data structure behind the Memcached/Redis-style
    applications: buckets, entries and the bump allocator cursor all live
    in one PMO-backed region, so the store is exactly as persistent as the
    checkpointing of that memory makes it — there is no persistence code in
    the store itself, which is the SLS programming model the paper argues
    for.  After a crash+restore, {!attach} re-derives the handle from the
    region's (rolled-back) header.

    Layout: page 0 is the header (bucket count, entry count, allocation
    cursor); the bucket array follows; entries are bump-allocated after it.
    Updates that fit the original value capacity are done in place;
    oversized updates allocate a fresh entry (the old one becomes garbage —
    the region is sized for the run, as in a cache server). *)

module Kernel = Treesls_kernel.Kernel

type t

val create : Kernel.t -> Kernel.process -> buckets:int -> pages:int -> t
(** Allocate a region of [pages] and format an empty store. *)

val create_at : Kernel.t -> Kernel.process -> vpn:int -> pages:int -> buckets:int -> t
(** Re-format an existing region in place (zeroing the bucket array):
    used by LSM memtable resets after a flush. *)

val attach : Kernel.t -> Kernel.process -> vpn:int -> t
(** Re-open a store previously created at [vpn] (post-restore). *)

val base_vpn : t -> int
val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val delete : t -> key:string -> bool
val mem : t -> key:string -> bool
val count : t -> int
val bytes_used : t -> int

exception Full
(** Raised by {!put} when the region's entry space is exhausted. *)
