(** SQLite-style embedded database (single-threaded B-tree + rollback
    journal).

    Reproduces the paper's SQLite workload: a mixed
    read/insert/update/delete benchmark where every write additionally
    journals the pre-image of the touched "B-tree page", dirtying extra
    pages — the app-level crash consistency machinery that TreeSLS makes
    redundant but unmodified applications still run. *)

module System = Treesls.System

type t

val launch : ?rows_hint:int -> System.t -> t
val refresh : t -> unit

type op = Read | Insert | Update | Delete

val step : t -> Treesls_util.Rng.t -> unit
(** One operation from the mixed benchmark (25% each). *)

val op_step : t -> op -> int -> unit
(** A specific operation on row [i]. *)

val rows : t -> int
(** Rows currently stored. *)
