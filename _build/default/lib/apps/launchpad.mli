(** Helpers for launching application processes with a prescribed object
    census, so each workload reproduces its Table 2 row (object counts
    relative to the Default system). *)

module Kernel = Treesls_kernel.Kernel
module System = Treesls.System

val make_proc :
  System.t ->
  name:string ->
  threads:int ->
  ipcs:int ->
  notifs:int ->
  extra_pmos:int ->
  Kernel.process
(** Create a process with [threads] threads, [ipcs] IPC connections to the
    file-system service (each with a shared buffer PMO), [notifs]
    notifications and [extra_pmos] one-page heap PMOs. Object cost per the
    kernel's conventions: 1 cap group, 1 VM space, 1 code PMO, one stack
    PMO per thread. *)

val find_proc : System.t -> name:string -> Kernel.process
(** Re-derive a process handle after recovery; raises [Not_found]. *)

val region_vpn : Kernel.process -> index:int -> int
(** First vpn of the [index]-th region (creation order is preserved by
    checkpoint/restore, so indices remain valid across recovery). *)
