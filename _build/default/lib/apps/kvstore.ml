module Kernel = Treesls_kernel.Kernel
module Cost = Treesls_sim.Cost

exception Full

type t = {
  kernel : Kernel.t;
  proc : Kernel.process;
  base : int; (* vaddr of page 0 *)
  limit : int; (* first vaddr beyond the region *)
  buckets : int;
}

let psz k = (Kernel.cost k).Cost.page_size

let read_u64 t va =
  Int64.to_int (Bytes.get_int64_le (Kernel.read_bytes t.kernel t.proc ~vaddr:va ~len:8) 0)

let write_u64 t va v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Kernel.write_bytes t.kernel t.proc ~vaddr:va b

let read_u32 t va =
  Int32.to_int (Bytes.get_int32_le (Kernel.read_bytes t.kernel t.proc ~vaddr:va ~len:4) 0)

let write_u32 t va v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Kernel.write_bytes t.kernel t.proc ~vaddr:va b

(* header offsets *)
let off_buckets = 0
let off_count = 8
let off_cursor = 16

let bucket_va t i = t.base + psz t.kernel + (i * 8)

let entries_start t =
  let bucket_bytes = t.buckets * 8 in
  let p = psz t.kernel in
  t.base + p + ((bucket_bytes + p - 1) / p * p)

let format t =
  write_u64 t (t.base + off_buckets) t.buckets;
  write_u64 t (t.base + off_count) 0;
  write_u64 t (t.base + off_cursor) (entries_start t);
  t

let create kernel proc ~buckets ~pages =
  assert (buckets > 0 && pages > 2);
  let vpn = Kernel.grow_heap kernel proc ~pages in
  let base = vpn * psz kernel in
  (* bucket array of a fresh region is zero-initialised by the device *)
  format { kernel; proc; base; limit = base + (pages * psz kernel); buckets }

let create_at kernel proc ~vpn ~pages ~buckets =
  let base = vpn * psz kernel in
  let t = { kernel; proc; base; limit = base + (pages * psz kernel); buckets } in
  (* zero the bucket array explicitly: the region is being reused *)
  let p = psz kernel in
  let bucket_pages = ((buckets * 8) + p - 1) / p in
  let zero = Bytes.make p '\000' in
  for i = 1 to bucket_pages do
    Kernel.write_bytes kernel proc ~vaddr:(base + (i * p)) zero
  done;
  format t

let attach kernel proc ~vpn =
  let base = vpn * psz kernel in
  let probe = { kernel; proc; base; limit = max_int; buckets = 1 } in
  let buckets = read_u64 probe (base + off_buckets) in
  if buckets <= 0 then invalid_arg "Kvstore.attach: no store at this address";
  let region =
    List.find_opt
      (fun r -> r.Treesls_cap.Kobj.vr_vpn = vpn)
      proc.Kernel.vms.Treesls_cap.Kobj.vs_regions
  in
  let pages =
    match region with
    | Some r -> r.Treesls_cap.Kobj.vr_pages
    | None -> invalid_arg "Kvstore.attach: no region at this vpn"
  in
  { kernel; proc; base; limit = base + (pages * psz kernel); buckets }

let base_vpn t = t.base / psz t.kernel

let fnv_hash key =
  let h = ref 0x3bf29ce484222325 in
  String.iter (fun ch -> h := (!h lxor Char.code ch) * 0x100000001b3 land max_int) key;
  !h

(* entry layout: next(8) klen(4) vcap(4) vlen(4) pad(4) key value *)
let e_next = 0
let e_klen = 8
let e_vcap = 12
let e_vlen = 16
let e_key = 24

let entry_key t va klen =
  Bytes.to_string (Kernel.read_bytes t.kernel t.proc ~vaddr:(va + e_key) ~len:klen)

let find_entry t ~key =
  let h = fnv_hash key mod t.buckets in
  let bva = bucket_va t h in
  let rec walk prev va =
    if va = 0 then None
    else begin
      let klen = read_u32 t (va + e_klen) in
      if klen = String.length key && entry_key t va klen = key then Some (prev, va)
      else walk va (read_u64 t (va + e_next))
    end
  in
  (h, walk 0 (read_u64 t bva))

let round16 v = (v + 15) / 16 * 16

let put t ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let h, found = find_entry t ~key in
  match found with
  | Some (_, va) when read_u32 t (va + e_vcap) >= vlen ->
    Kernel.write_bytes t.kernel t.proc ~vaddr:(va + e_key + read_u32 t (va + e_klen))
      (Bytes.of_string value);
    write_u32 t (va + e_vlen) vlen
  | (Some _ | None) as found ->
    (* the value outgrew its entry (or the key is new): unlink any stale
       entry first, then prepend a fresh one — leaving the old entry in
       the chain would resurrect it if the new head is later deleted *)
    (match found with
    | Some (prev, va) ->
      let next = read_u64 t (va + e_next) in
      if prev = 0 then write_u64 t (bucket_va t h) next else write_u64 t (prev + e_next) next
    | None -> ());
    let size = round16 (e_key + klen + vlen) in
    let cur = read_u64 t (t.base + off_cursor) in
    if cur + size > t.limit then raise Full;
    write_u64 t (t.base + off_cursor) (cur + size);
    let head = read_u64 t (bucket_va t h) in
    write_u64 t (cur + e_next) head;
    write_u32 t (cur + e_klen) klen;
    write_u32 t (cur + e_vcap) vlen;
    write_u32 t (cur + e_vlen) vlen;
    Kernel.write_bytes t.kernel t.proc ~vaddr:(cur + e_key) (Bytes.of_string key);
    Kernel.write_bytes t.kernel t.proc ~vaddr:(cur + e_key + klen) (Bytes.of_string value);
    write_u64 t (bucket_va t h) cur;
    if found = None then write_u64 t (t.base + off_count) (read_u64 t (t.base + off_count) + 1)

let get t ~key =
  match snd (find_entry t ~key) with
  | None -> None
  | Some (_, va) ->
    let klen = read_u32 t (va + e_klen) in
    let vlen = read_u32 t (va + e_vlen) in
    Some (Bytes.to_string (Kernel.read_bytes t.kernel t.proc ~vaddr:(va + e_key + klen) ~len:vlen))

let delete t ~key =
  let h, found = find_entry t ~key in
  match found with
  | None -> false
  | Some (prev, va) ->
    let next = read_u64 t (va + e_next) in
    (if prev = 0 then write_u64 t (bucket_va t h) next else write_u64 t (prev + e_next) next);
    write_u64 t (t.base + off_count) (read_u64 t (t.base + off_count) - 1);
    true

let mem t ~key = snd (find_entry t ~key) <> None
let count t = read_u64 t (t.base + off_count)
let bytes_used t = read_u64 t (t.base + off_cursor) - t.base
