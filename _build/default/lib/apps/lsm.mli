(** LSM-tree persistent key-value stores (RocksDB / LevelDB style).

    A memtable (PMO-resident {!Kvstore}) absorbs writes; when it exceeds
    the flush threshold it is dumped sequentially into the SST ring region
    and re-formatted.  An optional write-ahead log appends every operation
    before applying it — the double write that Figure 14 shows TreeSLS
    making unnecessary.  On TreeSLS the WAL is disabled and persistence
    comes from transparent checkpointing alone.

    The LevelDB variant exposes [fillbatch]: batched sequential fills, the
    dbbench workload used in §7.3. *)

module System = Treesls.System

type variant = Rocksdb | Leveldb

type t

val launch : ?wal:bool -> ?memtable_kb:int -> System.t -> variant -> t
val refresh : t -> unit

val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val fillbatch : t -> base:int -> count:int -> unit
(** Insert [count] sequential records starting at [base] as one batch. *)

val flushes : t -> int
(** Memtable flushes since launch. *)

val wal_enabled : t -> bool
val memtable_count : t -> int
