module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Cost = Treesls_sim.Cost

type variant = Rocksdb | Leveldb

type t = {
  sys : System.t;
  variant : variant;
  wal : bool;
  mutable proc : Kernel.process;
  mutable memtable : Kvstore.t;
  mem_vpn : int;
  mem_pages : int;
  mem_buckets : int;
  flush_bytes : int;
  wal_vpn : int;
  wal_pages : int;
  mutable wal_cursor : int;
  sst_vpn : int;
  sst_pages : int;
  mutable sst_cursor : int;
  mutable flushes : int;
}

let name_of = function Rocksdb -> "rocksdb" | Leveldb -> "leveldb"

(* LevelDB reproduces Table 2 row C: +1 CG, +5 threads, +3 IPC, +2
   notifications, +18 PMOs, +1 VMS. RocksDB (not in Table 2) gets a
   similar shape with the background-compaction thread pool. *)
let census = function
  | Leveldb -> (5, 3, 2, 6) (* threads, ipcs, notifs, extra: +mem+wal+sst = 18 PMOs *)
  | Rocksdb -> (8, 3, 2, 6)

let psz sys = (Kernel.cost (System.kernel sys)).Cost.page_size

let launch ?(wal = false) ?(memtable_kb = 512) sys variant =
  let threads, ipcs, notifs, extra = census variant in
  let proc =
    Launchpad.make_proc sys ~name:(name_of variant) ~threads ~ipcs ~notifs ~extra_pmos:extra
  in
  let k = System.kernel sys in
  let p = psz sys in
  let flush_bytes = memtable_kb * 1024 in
  let mem_pages = (flush_bytes * 2 / p) + 4 in
  let mem_buckets = max 64 (flush_bytes / 128) in
  let memtable = Kvstore.create k proc ~buckets:mem_buckets ~pages:mem_pages in
  let wal_pages = (flush_bytes / p) + 8 in
  let wal_vpn = Kernel.grow_heap k proc ~pages:wal_pages in
  let sst_pages = 16 * (flush_bytes / p) in
  let sst_vpn = Kernel.grow_heap k proc ~pages:sst_pages in
  {
    sys;
    variant;
    wal;
    proc;
    memtable;
    mem_vpn = Kvstore.base_vpn memtable;
    mem_pages;
    mem_buckets;
    flush_bytes;
    wal_vpn;
    wal_pages;
    wal_cursor = 0;
    sst_vpn;
    sst_pages;
    sst_cursor = 0;
    flushes = 0;
  }

let refresh t =
  t.proc <- Launchpad.find_proc t.sys ~name:(name_of t.variant);
  t.memtable <- Kvstore.attach (System.kernel t.sys) t.proc ~vpn:t.mem_vpn

(* Append the record to the write-ahead log (plus a commit record),
   modelling fsync-granularity persistence on the critical path. *)
let wal_append t ~key ~value =
  let k = System.kernel t.sys in
  let p = psz t.sys in
  let rec_bytes = 16 + String.length key + String.length value in
  let total = t.wal_pages * p in
  if t.wal_cursor + rec_bytes > total then t.wal_cursor <- 0;
  Kernel.write_bytes k t.proc
    ~vaddr:((t.wal_vpn * p) + t.wal_cursor)
    (Bytes.of_string (key ^ value));
  t.wal_cursor <- t.wal_cursor + ((rec_bytes + 31) / 32 * 32)

(* Dump the memtable region sequentially into the SST ring and reset it:
   sequential bulk reads + writes, like a real L0 flush. RocksDB performs
   flushes on background threads, so the work is charged to a background
   sink (an idle core) — the memory effects (page dirtying, allocation)
   remain fully visible to the checkpointing machinery. *)
let flush t =
  let k = System.kernel t.sys in
  let store = Kernel.store k in
  Treesls_nvm.Store.with_sink store Treesls_nvm.Store.Off (fun () ->
      let p = psz t.sys in
      let used_bytes = Kvstore.bytes_used t.memtable in
      let used_pages = min t.mem_pages ((used_bytes / p) + 1) in
      if t.sst_cursor + used_pages > t.sst_pages then t.sst_cursor <- 0;
      for i = 0 to used_pages - 1 do
        let data = Kernel.read_bytes k t.proc ~vaddr:((t.mem_vpn + i) * p) ~len:p in
        Kernel.write_bytes k t.proc ~vaddr:((t.sst_vpn + t.sst_cursor + i) * p) data
      done;
      t.sst_cursor <- t.sst_cursor + used_pages;
      t.memtable <-
        Kvstore.create_at k t.proc ~vpn:t.mem_vpn ~pages:t.mem_pages ~buckets:t.mem_buckets);
  t.flushes <- t.flushes + 1

let put t ~key ~value =
  if t.wal then wal_append t ~key ~value;
  (try Kvstore.put t.memtable ~key ~value
   with Kvstore.Full ->
     flush t;
     Kvstore.put t.memtable ~key ~value);
  if Kvstore.bytes_used t.memtable > t.flush_bytes then flush t

let get t ~key =
  match Kvstore.get t.memtable ~key with
  | Some v -> Some v
  | None ->
    (* not in the memtable: probe the SSTs (charge a few page reads) *)
    let k = System.kernel t.sys in
    let p = psz t.sys in
    if t.sst_cursor > 0 then
      ignore (Kernel.read_bytes k t.proc ~vaddr:(t.sst_vpn * p) ~len:(min p 512));
    None

let fillbatch t ~base ~count =
  for i = base to base + count - 1 do
    put t ~key:(Printf.sprintf "seq%010d" i) ~value:(String.make 100 'b')
  done

let flushes t = t.flushes
let wal_enabled t = t.wal
let memtable_count t = Kvstore.count t.memtable
