(** Phoenix-2.0-style compute workloads: WordCount, KMeans, PCA.

    Multi-threaded map-reduce kernels operating on PMO-backed regions; they
    contribute the compute rows of Table 2, Figure 10 and Table 4. Work is
    exposed as [step] slices so the benchmark driver can interleave
    checkpoint ticks the way the real applications are interrupted by the
    1000 Hz checkpoint timer.

    Memory behaviour mirrors the paper's observations: WordCount streams a
    big read-only dataset while hammering a small hot hash of counters;
    KMeans re-writes a small centroid/assignment set every iteration (high
    locality, 95% of its faults eliminated by hybrid copy); PCA sweeps
    its write set across a large result matrix (poor locality, 11%). *)

module System = Treesls.System

type kind = Wordcount | Kmeans | Pca

type t

val launch : ?scale:int -> System.t -> kind -> t
(** [scale] multiplies dataset sizes (default 1 = scaled-down datasets:
    6 MiB text / 10k points / 512x512 matrix). *)

val refresh : t -> unit
val step : t -> Treesls_util.Rng.t -> unit
(** One work slice (a few tens of microseconds of simulated time). *)

val progress : t -> int
(** Completed steps. *)

val kind : t -> kind
val name : t -> string
