lib/apps/kvstore.ml: Bytes Char Int32 Int64 List String Treesls_cap Treesls_kernel Treesls_sim
