lib/apps/phoenix.ml: Bytes Kvstore Launchpad Option Printf Treesls Treesls_kernel Treesls_sim Treesls_util
