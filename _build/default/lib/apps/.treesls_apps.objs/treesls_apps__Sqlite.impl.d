lib/apps/sqlite.ml: Bytes Kvstore Launchpad Printf String Treesls Treesls_kernel Treesls_sim Treesls_util
