lib/apps/lsm.mli: Treesls
