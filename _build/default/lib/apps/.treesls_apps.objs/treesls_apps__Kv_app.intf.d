lib/apps/kv_app.mli: Kvstore Treesls Treesls_kernel
