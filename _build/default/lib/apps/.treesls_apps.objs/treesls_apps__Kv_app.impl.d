lib/apps/kv_app.ml: Bytes Kvstore Launchpad List Printf String Treesls Treesls_cap Treesls_kernel Treesls_sim
