lib/apps/kvstore.mli: Treesls_kernel
