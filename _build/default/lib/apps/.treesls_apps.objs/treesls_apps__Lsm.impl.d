lib/apps/lsm.ml: Bytes Kvstore Launchpad Printf String Treesls Treesls_kernel Treesls_nvm Treesls_sim
