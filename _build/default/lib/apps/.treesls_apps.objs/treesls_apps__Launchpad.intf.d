lib/apps/launchpad.mli: Treesls Treesls_kernel
