lib/apps/launchpad.ml: List Treesls Treesls_cap Treesls_kernel
