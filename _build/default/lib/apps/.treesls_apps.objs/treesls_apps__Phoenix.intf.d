lib/apps/phoenix.mli: Treesls Treesls_util
