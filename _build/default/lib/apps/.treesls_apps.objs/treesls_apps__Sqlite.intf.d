lib/apps/sqlite.mli: Treesls Treesls_util
