module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Rng = Treesls_util.Rng
module Cost = Treesls_sim.Cost

type t = {
  sys : System.t;
  mutable proc : Kernel.process;
  mutable kv : Kvstore.t;
  kv_vpn : int;
  journal_vpn : int;
  journal_pages : int;
  mutable journal_cursor : int;
  mutable next_row : int;
  rows_hint : int;
}

type op = Read | Insert | Update | Delete

let psz sys = (Kernel.cost (System.kernel sys)).Cost.page_size

(* Table 2 row B: +1 CG, +4 threads, +3 IPC, +0 notifications, +14 PMOs
   (= code + 4 stacks + 3 IPC buffers + store + journal + 4 heap), +1 VMS. *)
let launch ?(rows_hint = 50_000) sys =
  let proc = Launchpad.make_proc sys ~name:"sqlite" ~threads:4 ~ipcs:3 ~notifs:0 ~extra_pmos:4 in
  let k = System.kernel sys in
  let bytes = (rows_hint * 180) + (rows_hint * 8) + (2 * psz sys) in
  let pages = (bytes / psz sys) + 2 in
  let kv = Kvstore.create k proc ~buckets:rows_hint ~pages in
  let journal_pages = 64 in
  let journal_vpn = Kernel.grow_heap k proc ~pages:journal_pages in
  {
    sys;
    proc;
    kv;
    kv_vpn = Kvstore.base_vpn kv;
    journal_vpn;
    journal_pages;
    journal_cursor = 0;
    next_row = 0;
    rows_hint;
  }

let refresh t =
  t.proc <- Launchpad.find_proc t.sys ~name:"sqlite";
  t.kv <- Kvstore.attach (System.kernel t.sys) t.proc ~vpn:t.kv_vpn;
  (* rows inserted after the restored checkpoint are gone; resync *)
  t.next_row <- Kvstore.count t.kv

let key i = Printf.sprintf "row%08d" i
let payload i tag = Printf.sprintf "%s-%08d-%s" tag i (String.make 100 'd')

(* Rollback journal: write the pre-image of the modified page before the
   change (one extra dirty page per write op). *)
let journal_write t =
  let k = System.kernel t.sys in
  let p = psz t.sys in
  let total = t.journal_pages * p in
  if t.journal_cursor + 256 > total then t.journal_cursor <- 0;
  Kernel.write_bytes k t.proc
    ~vaddr:((t.journal_vpn * p) + t.journal_cursor)
    (Bytes.make 256 'j');
  t.journal_cursor <- t.journal_cursor + 256

let op_step t op i =
  match op with
  | Read -> ignore (Kvstore.get t.kv ~key:(key i))
  | Insert ->
    journal_write t;
    Kvstore.put t.kv ~key:(key t.next_row) ~value:(payload t.next_row "ins");
    t.next_row <- t.next_row + 1
  | Update ->
    journal_write t;
    Kvstore.put t.kv ~key:(key i) ~value:(payload i "upd")
  | Delete ->
    journal_write t;
    ignore (Kvstore.delete t.kv ~key:(key i))

let step t rng =
  let live = max 1 t.next_row in
  let i = Rng.int rng live in
  match Rng.int rng 4 with
  | 0 -> op_step t Read i
  | 1 -> op_step t Insert i
  | 2 -> op_step t Update i
  | _ -> op_step t Delete i

let rows t = Kvstore.count t.kv
