lib/sim/clock.mli:
