lib/sim/clock.ml:
