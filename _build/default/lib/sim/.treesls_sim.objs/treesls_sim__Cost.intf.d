lib/sim/cost.mli:
