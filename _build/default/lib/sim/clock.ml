type t = { mutable now_ns : int }

let create () = { now_ns = 0 }
let now t = t.now_ns

let advance t ns =
  assert (ns >= 0);
  t.now_ns <- t.now_ns + ns

let reset t = t.now_ns <- 0
