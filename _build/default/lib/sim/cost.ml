type t = {
  page_size : int;
  ipi_send_ns : int;
  ipi_ack_ns : int;
  trap_ns : int;
  syscall_ns : int;
  dram_page_copy_ns : int;
  nvm_page_read_copy_ns : int;
  nvm_page_write_copy_ns : int;
  word_copy_dram_ns : float;
  word_copy_nvm_ns : float;
  alloc_small_ns : int;
  alloc_page_ns : int;
  mark_ro_ns : int;
  tlb_shootdown_ns : int;
  journal_entry_ns : int;
  dram_access_ns : int;
  nvm_read_ns : int;
  nvm_write_ns : int;
  nvme_flush_base_ns : int;
  nvme_byte_ns : float;
}

let default =
  {
    page_size = 4096;
    ipi_send_ns = 400;
    ipi_ack_ns = 700;
    trap_ns = 1000;
    syscall_ns = 500;
    dram_page_copy_ns = 350;
    nvm_page_read_copy_ns = 800;
    nvm_page_write_copy_ns = 1600;
    word_copy_dram_ns = 0.8;
    word_copy_nvm_ns = 2.5;
    alloc_small_ns = 60;
    alloc_page_ns = 120;
    mark_ro_ns = 25;
    tlb_shootdown_ns = 800;
    journal_entry_ns = 300;
    dram_access_ns = 85;
    nvm_read_ns = 95;
    nvm_write_ns = 95;
    nvme_flush_base_ns = 10_000;
    nvme_byte_ns = 0.5;
  }

let object_copy_ns t ~to_nvm ~bytes_len =
  let words = (bytes_len + 7) / 8 in
  let per_word = if to_nvm then t.word_copy_nvm_ns else t.word_copy_dram_ns in
  int_of_float (Float.ceil (float_of_int words *. per_word))

let page_copy_ns t ~src_dram ~dst_dram =
  match (src_dram, dst_dram) with
  | true, true -> t.dram_page_copy_ns
  | false, true -> t.nvm_page_read_copy_ns
  | _, false -> t.nvm_page_write_copy_ns
