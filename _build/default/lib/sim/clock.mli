(** Virtual time.

    The whole system advances a single simulated nanosecond counter; costs
    from {!Cost} are charged onto it.  Parallel phases (the non-leader cores
    doing hybrid copy during a stop-the-world pause) are modelled
    analytically by the checkpoint code, which advances the clock by the
    maximum of the parallel durations rather than their sum. *)

type t

val create : unit -> t
val now : t -> int
(** Current simulated time in ns since boot. *)

val advance : t -> int -> unit
(** [advance t ns] moves time forward. [ns] must be non-negative. *)

val reset : t -> unit
