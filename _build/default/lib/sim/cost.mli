(** Latency cost model for the simulated machine.

    All durations are nanoseconds of simulated time.  Defaults approximate
    the paper's testbed (Xeon Gold 6330 at 2.0 GHz with Optane PMem 200 and
    eADR): DRAM ~80 ns loads, NVM reads ~170-300 ns, NVM write bandwidth
    roughly a third of DRAM's, IPI round-trips of a few microseconds.  The
    absolute values only need to be plausible; the experiments compare
    configurations against each other under the same model. *)

type t = {
  page_size : int;  (** bytes per page (4 KiB default) *)
  ipi_send_ns : int;  (** leader raising one IPI *)
  ipi_ack_ns : int;  (** waiting for one core to reach quiescence *)
  trap_ns : int;  (** page-fault trap entry + exit *)
  syscall_ns : int;  (** syscall entry + exit *)
  dram_page_copy_ns : int;  (** memcpy one page DRAM -> DRAM *)
  nvm_page_read_copy_ns : int;  (** memcpy one page NVM -> DRAM *)
  nvm_page_write_copy_ns : int;  (** memcpy one page (any) -> NVM *)
  word_copy_dram_ns : float;  (** per-8-byte-word copy cost in DRAM *)
  word_copy_nvm_ns : float;  (** per-8-byte-word copy cost writing NVM *)
  alloc_small_ns : int;  (** slab allocation *)
  alloc_page_ns : int;  (** buddy allocation of one page *)
  mark_ro_ns : int;  (** setting one PTE read-only *)
  tlb_shootdown_ns : int;  (** per-core TLB flush during checkpoint *)
  journal_entry_ns : int;  (** writing + flushing one journal record *)
  dram_access_ns : int;  (** one cacheline access in DRAM *)
      (* the NVM access costs below are effective (CPU-cache-filtered)
         latencies: repeated accesses to hot lines hit L1/L2 regardless of
         the backing medium, so the raw ~3x Optane read penalty shows up
         here only partially *)
  nvm_read_ns : int;  (** one cacheline read from NVM *)
  nvm_write_ns : int;  (** one cacheline store to NVM (eADR: near-DRAM; the
      penalty sits in reads and bulk copies) *)
  nvme_flush_base_ns : int;  (** NVMe submission+completion latency (baselines) *)
  nvme_byte_ns : float;  (** NVMe per-byte streaming cost (baselines) *)
}

val default : t

val object_copy_ns : t -> to_nvm:bool -> bytes_len:int -> int
(** Cost of copying a small kernel object of [bytes_len] bytes. *)

val page_copy_ns : t -> src_dram:bool -> dst_dram:bool -> int
(** Cost of copying one whole page between the given device kinds. *)
