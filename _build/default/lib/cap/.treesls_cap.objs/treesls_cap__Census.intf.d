lib/cap/census.mli: Kobj
