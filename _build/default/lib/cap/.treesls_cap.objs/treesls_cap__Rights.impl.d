lib/cap/rights.ml: Format
