lib/cap/kobj.ml: Array Hashtbl List Radix Rights Treesls_nvm
