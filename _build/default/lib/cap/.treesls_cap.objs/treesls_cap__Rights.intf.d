lib/cap/rights.mli: Format
