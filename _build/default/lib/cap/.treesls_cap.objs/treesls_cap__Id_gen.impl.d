lib/cap/id_gen.ml:
