lib/cap/radix.mli:
