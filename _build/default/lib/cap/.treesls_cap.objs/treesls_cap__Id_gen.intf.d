lib/cap/id_gen.mli:
