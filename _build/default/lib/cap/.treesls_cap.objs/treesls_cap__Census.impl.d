lib/cap/census.ml: Kobj Radix
