lib/cap/kobj.mli: Radix Rights Treesls_nvm
