lib/cap/radix.ml: Array
