type t = {
  cap_groups : int;
  threads : int;
  ipcs : int;
  notifications : int;
  pmos : int;
  vmspaces : int;
  irqs : int;
  app_pages : int;
}

let collect ~root =
  let cg = ref 0
  and th = ref 0
  and ipc = ref 0
  and nt = ref 0
  and pmo = ref 0
  and vms = ref 0
  and irq = ref 0
  and pages = ref 0 in
  Kobj.iter_tree ~root (fun obj ->
      match obj with
      | Kobj.Cap_group _ -> incr cg
      | Kobj.Thread _ -> incr th
      | Kobj.Ipc_conn _ -> incr ipc
      | Kobj.Notification _ -> incr nt
      | Kobj.Pmo p ->
        incr pmo;
        pages := !pages + Radix.cardinal p.Kobj.pmo_radix
      | Kobj.Vmspace _ -> incr vms
      | Kobj.Irq_notification _ -> incr irq);
  {
    cap_groups = !cg;
    threads = !th;
    ipcs = !ipc;
    notifications = !nt;
    pmos = !pmo;
    vmspaces = !vms;
    irqs = !irq;
    app_pages = !pages;
  }

let count t = function
  | Kobj.Cap_group_k -> t.cap_groups
  | Kobj.Thread_k -> t.threads
  | Kobj.Ipc_conn_k -> t.ipcs
  | Kobj.Notification_k -> t.notifications
  | Kobj.Pmo_k -> t.pmos
  | Kobj.Vmspace_k -> t.vmspaces
  | Kobj.Irq_k -> t.irqs

let total_objects t =
  t.cap_groups + t.threads + t.ipcs + t.notifications + t.pmos + t.vmspaces + t.irqs

let diff a b =
  {
    cap_groups = a.cap_groups - b.cap_groups;
    threads = a.threads - b.threads;
    ipcs = a.ipcs - b.ipcs;
    notifications = a.notifications - b.notifications;
    pmos = a.pmos - b.pmos;
    vmspaces = a.vmspaces - b.vmspaces;
    irqs = a.irqs - b.irqs;
    app_pages = a.app_pages - b.app_pages;
  }
