(** Object census over the capability tree (paper Table 2).

    Counts reachable objects by kind and sizes the runtime memory and
    checkpoint footprint of the tree. *)

type t = {
  cap_groups : int;
  threads : int;
  ipcs : int;
  notifications : int;
  pmos : int;
  vmspaces : int;
  irqs : int;
  app_pages : int;  (** pages mapped in PMO radix trees (runtime memory) *)
}

val collect : root:Kobj.cap_group -> t
val count : t -> Kobj.kind -> int
val total_objects : t -> int
val diff : t -> t -> t
(** Per-kind counts relative to a baseline (Table 2 shows workloads
    relative to the Default system). *)
