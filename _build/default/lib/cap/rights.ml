type t = { read : bool; write : bool; exec : bool; grant : bool }

let full = { read = true; write = true; exec = true; grant = true }
let read_only = { read = true; write = false; exec = false; grant = false }
let rw = { read = true; write = true; exec = false; grant = false }
let none = { read = false; write = false; exec = false; grant = false }

let subset a ~of_:b =
  (not a.read || b.read)
  && (not a.write || b.write)
  && (not a.exec || b.exec)
  && (not a.grant || b.grant)

let pp ppf t =
  let flag c b = if b then c else '-' in
  Format.fprintf ppf "%c%c%c%c" (flag 'r' t.read) (flag 'w' t.write) (flag 'x' t.exec)
    (flag 'g' t.grant)
