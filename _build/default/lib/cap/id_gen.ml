type t = { mutable counter : int }

let create () = { counter = 0 }

let next t =
  t.counter <- t.counter + 1;
  t.counter

let current t = t.counter
let restore t v = t.counter <- v
