(** Access rights carried by a capability. *)

type t = { read : bool; write : bool; exec : bool; grant : bool }

val full : t
val read_only : t
val rw : t
val none : t
val subset : t -> of_:t -> bool
(** [subset a ~of_:b]: every right in [a] is present in [b] (capability
    derivation may only shrink rights). *)

val pp : Format.formatter -> t -> unit
