(** Radix tree keyed by non-negative integers.

    PMOs "record a set of physical memory pages organized by a radix tree"
    (§4.1).  The same structure is reused by the checkpoint layer for
    checkpointed page metadata.  The node count is exposed because copying
    the radix interior is the dominant cost of a *full* PMO checkpoint
    (Table 3). *)

type 'a t

val create : unit -> 'a t
(** 6-bit fanout (64 slots per node); height grows on demand. *)

val get : 'a t -> int -> 'a option
val set : 'a t -> int -> 'a -> unit
val remove : 'a t -> int -> unit
val mem : 'a t -> int -> bool
val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val cardinal : 'a t -> int
val node_count : 'a t -> int
(** Interior + leaf node count (copy-cost model). *)

val copy : 'a t -> 'a t
(** Structural copy (values are shared). *)

val clear : 'a t -> unit
