let bits = 6
let fanout = 1 lsl bits

type 'a slot = Empty | Leaf of 'a | Node of 'a node
and 'a node = { slots : 'a slot array }

type 'a t = {
  mutable root : 'a node;
  mutable height : int; (* levels below the root; 0 = root slots are leaves *)
  mutable cardinal : int;
  mutable nodes : int;
}

let new_node () = { slots = Array.make fanout Empty }

let create () = { root = new_node (); height = 0; cardinal = 0; nodes = 1 }

(* Max key representable with the current height. *)
let capacity t = 1 lsl (bits * (t.height + 1))

let grow t =
  let parent = new_node () in
  parent.slots.(0) <- Node t.root;
  t.root <- parent;
  t.height <- t.height + 1;
  t.nodes <- t.nodes + 1

let rec find_slot node level key =
  let idx = (key lsr (bits * level)) land (fanout - 1) in
  if level = 0 then (node, idx)
  else
    match node.slots.(idx) with
    | Node child -> find_slot child (level - 1) key
    | Empty | Leaf _ -> (node, -1) (* path absent *)

let get t key =
  if key < 0 then invalid_arg "Radix.get: negative key";
  if key >= capacity t then None
  else
    let node, idx = find_slot t.root t.height key in
    if idx < 0 then None
    else match node.slots.(idx) with Leaf v -> Some v | Empty | Node _ -> None

let mem t key = get t key <> None

let set t key v =
  if key < 0 then invalid_arg "Radix.set: negative key";
  while key >= capacity t do
    grow t
  done;
  let rec descend node level =
    let idx = (key lsr (bits * level)) land (fanout - 1) in
    if level = 0 then begin
      (match node.slots.(idx) with
      | Leaf _ -> ()
      | Empty -> t.cardinal <- t.cardinal + 1
      | Node _ -> invalid_arg "Radix.set: interior collision");
      node.slots.(idx) <- Leaf v
    end
    else begin
      let child =
        match node.slots.(idx) with
        | Node c -> c
        | Empty ->
          let c = new_node () in
          node.slots.(idx) <- Node c;
          t.nodes <- t.nodes + 1;
          c
        | Leaf _ -> invalid_arg "Radix.set: leaf collision"
      in
      descend child (level - 1)
    end
  in
  descend t.root t.height

let remove t key =
  if key < 0 then invalid_arg "Radix.remove: negative key";
  if key < capacity t then begin
    let node, idx = find_slot t.root t.height key in
    if idx >= 0 then
      match node.slots.(idx) with
      | Leaf _ ->
        node.slots.(idx) <- Empty;
        t.cardinal <- t.cardinal - 1
      | Empty | Node _ -> ()
  end

let iter f t =
  let rec walk node level prefix =
    Array.iteri
      (fun i slot ->
        match slot with
        | Empty -> ()
        | Leaf v -> f ((prefix lsl bits) lor i) v
        | Node child -> walk child (level - 1) ((prefix lsl bits) lor i))
      node.slots
  in
  walk t.root t.height 0

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let cardinal t = t.cardinal
let node_count t = t.nodes

let copy t =
  let rec copy_node node =
    let fresh = new_node () in
    Array.iteri
      (fun i slot ->
        match slot with
        | Empty -> ()
        | Leaf v -> fresh.slots.(i) <- Leaf v
        | Node child -> fresh.slots.(i) <- Node (copy_node child))
      node.slots;
    fresh
  in
  { root = copy_node t.root; height = t.height; cardinal = t.cardinal; nodes = t.nodes }

let clear t =
  t.root <- new_node ();
  t.height <- 0;
  t.cardinal <- 0;
  t.nodes <- 1
