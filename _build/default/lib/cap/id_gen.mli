(** Per-kernel object id generator.

    Ids are dense positive integers; the counter itself is part of the
    checkpointed system state (a restored system must not reuse the ids of
    checkpointed objects). *)

type t

val create : unit -> t
val next : t -> int
val current : t -> int
(** Highest id issued so far. *)

val restore : t -> int -> unit
(** Reset the counter from a checkpoint. *)
