(** Global checkpoint metadata area on NVM.

    Holds the global version number — whose single-word increment is the
    atomic commit point of a checkpoint (step 4 in Figure 5) — and the
    checkpoint status used by recovery to decide whether a checkpoint was in
    flight when power failed.  Single-word updates are naturally atomic on
    NVM with eADR, so this area needs no journaling. *)

type t

type status =
  | Idle  (** no checkpoint in flight *)
  | In_progress  (** STW checkpoint running; not yet committed *)

val create : unit -> t

val version : t -> int
(** Version of the last committed checkpoint; 0 = none yet. *)

val status : t -> status

val begin_checkpoint : t -> unit
(** Mark a checkpoint in flight (single-word write). *)

val commit_checkpoint : t -> unit
(** Atomic commit point: bump the version and clear the in-flight mark.
    Ordering: version first, so a crash between the two writes is read as
    "committed" (the backup tree for version v is complete by then). *)

val abort_in_flight : t -> unit
(** Used by recovery: clear a stale in-flight mark after a crash. *)

val checkpoints_taken : t -> int
(** Same as [version]: checkpoints committed since boot. *)
