type device = Nvm | Dram | Ssd

type t = { dev : device; idx : int }

let nvm idx = { dev = Nvm; idx }
let dram idx = { dev = Dram; idx }
let ssd idx = { dev = Ssd; idx }
let is_nvm t = t.dev = Nvm
let is_dram t = t.dev = Dram
let is_ssd t = t.dev = Ssd
let persistent t = t.dev <> Dram
let equal a b = a.dev = b.dev && a.idx = b.idx

let rank = function Nvm -> 0 | Dram -> 1 | Ssd -> 2

let compare a b =
  match Int.compare (rank a.dev) (rank b.dev) with
  | 0 -> Int.compare a.idx b.idx
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s:%d"
    (match t.dev with Nvm -> "nvm" | Dram -> "dram" | Ssd -> "ssd")
    t.idx

let to_string t = Format.asprintf "%a" pp t
