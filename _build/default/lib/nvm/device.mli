(** Simulated page devices.

    A device is a flat array of fixed-size pages.  Page storage is allocated
    lazily so that a large simulated NVM does not consume host memory until
    pages are touched.  The NVM device survives {!crash}; the DRAM device
    loses all content. *)

type kind = Paddr.device

type t

val create : kind:kind -> pages:int -> page_size:int -> t
val kind : t -> kind
val pages : t -> int
val page_size : t -> int

val page : t -> int -> Bytes.t
(** Backing bytes of page [idx]; allocated (zeroed) on first access. *)

val read : t -> int -> off:int -> len:int -> Bytes.t
val write : t -> int -> off:int -> Bytes.t -> unit

val copy_page : src:t -> src_idx:int -> dst:t -> dst_idx:int -> unit
(** Whole-page copy between (possibly different) devices. *)

val zero_page : t -> int -> unit

val crash : t -> unit
(** Power failure. DRAM content is discarded; NVM content is retained. *)

val touched : t -> int
(** Number of pages whose storage has been materialised (for tests). *)
