lib/nvm/global_meta.ml:
