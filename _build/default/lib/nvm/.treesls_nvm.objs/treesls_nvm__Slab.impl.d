lib/nvm/slab.ml: Array Buddy Printf Txn Warea
