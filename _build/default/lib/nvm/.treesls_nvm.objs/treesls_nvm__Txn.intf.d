lib/nvm/txn.mli: Warea
