lib/nvm/warea.mli:
