lib/nvm/paddr.ml: Format Int
