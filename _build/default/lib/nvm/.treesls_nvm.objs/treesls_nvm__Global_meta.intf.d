lib/nvm/global_meta.mli:
