lib/nvm/store.ml: Buddy Bytes Char Device Fun Global_meta Hashtbl List Paddr Slab Treesls_sim Treesls_util Warea
