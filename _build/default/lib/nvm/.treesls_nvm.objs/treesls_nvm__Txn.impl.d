lib/nvm/txn.ml: Hashtbl List Queue Warea
