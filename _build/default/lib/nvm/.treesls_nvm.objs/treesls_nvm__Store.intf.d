lib/nvm/store.mli: Buddy Bytes Global_meta Paddr Slab Treesls_sim Warea
