lib/nvm/device.ml: Array Bytes Paddr
