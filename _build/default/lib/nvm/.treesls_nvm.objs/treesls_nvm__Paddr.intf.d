lib/nvm/paddr.mli: Format
