lib/nvm/buddy.mli: Txn Warea
