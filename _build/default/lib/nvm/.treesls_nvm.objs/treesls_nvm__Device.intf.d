lib/nvm/device.mli: Bytes Paddr
