lib/nvm/slab.mli: Buddy Warea
