lib/nvm/buddy.ml: Array Printf Treesls_util Txn Warea
