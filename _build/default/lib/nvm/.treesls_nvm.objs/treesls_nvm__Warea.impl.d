lib/nvm/warea.ml: Array Hashtbl List
