(** Physical page addresses.

    A page lives on the NVM device (survives power failure), on the DRAM
    device (wiped by power failure), or — under memory over-commitment — in
    an SSD swap slot (persistent, slow; paper section 8).  TreeSLS migrates
    hot pages to DRAM, keeps checkpoints on NVM, and evicts cold pages to
    SSD, so a physical address must name the device explicitly. *)

type device = Nvm | Dram | Ssd

type t = { dev : device; idx : int }

val nvm : int -> t
val dram : int -> t
val ssd : int -> t
val is_nvm : t -> bool
val is_dram : t -> bool
val is_ssd : t -> bool

val persistent : t -> bool
(** Survives a power failure (NVM or SSD). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
