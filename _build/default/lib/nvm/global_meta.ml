type status = Idle | In_progress

(* NVM-resident: survives crash (no explicit wipe). *)
type t = { mutable version : int; mutable status : status }

let create () = { version = 0; status = Idle }
let version t = t.version
let status t = t.status
let begin_checkpoint t = t.status <- In_progress

let commit_checkpoint t =
  t.version <- t.version + 1;
  t.status <- Idle

let abort_in_flight t = t.status <- Idle
let checkpoints_taken t = t.version
