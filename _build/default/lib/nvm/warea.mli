(** Persistent word area with redo journaling.

    The checkpoint manager's own state (buddy tree, slab headers) is not
    checkpointed — it lives in this flat array of NVM words and is kept
    crash-consistent with a redo journal (§3 of the paper: "TreeSLS
    leverages redo/undo journaling to maintain the crash consistency of the
    checkpoint manager").

    An update is a {e transaction}: the full list of (index, new-value)
    writes is first logged to the journal area, then applied to the words,
    then the journal record is truncated.  Recovery replays any record that
    was fully logged (idempotent redo) and discards partial logs, so a crash
    at any instant leaves the words in either the pre- or post-transaction
    state.

    Crash injection for tests: {!set_crash_plan} arms a simulated power
    failure at a chosen phase of the next transaction; the transaction then
    raises {!Crashed} leaving the area exactly as a real power cut would. *)

exception Crashed of string
(** Raised by an armed crash plan. The word area is left in the torn state
    a power failure at that instant would produce. *)

type t

type crash_phase =
  | Before_log  (** power fails before the journal record is durable *)
  | After_log  (** record durable, no data words written yet *)
  | Mid_apply  (** record durable, roughly half the writes applied *)
  | After_apply  (** all writes applied, record not yet truncated *)

val create : words:int -> t
val size : t -> int

val read : t -> int -> int
(** Read word [i]. *)

val commit : t -> desc:string -> (int * int) list -> unit
(** [commit t ~desc writes] atomically applies [(index, value)] writes.
    Indices must be distinct. Raises {!Crashed} if a crash plan is armed. *)

val set_crash_plan : t -> crash_phase option -> unit
(** Arm (or disarm) a crash during the next [commit]. *)

val recover : t -> unit
(** Journal replay after a crash: redo a fully-logged record, drop a torn
    one. Idempotent. *)

val in_flight : t -> bool
(** Whether an un-truncated journal record exists (only after a crash). *)

val commits : t -> int
(** Number of successful commits since creation (cost accounting). *)

val words_written : t -> int
(** Total data words written by successful commits. *)
