module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module Restore = Treesls_ckpt.Restore
module Clock = Treesls_sim.Clock

type t = { mgr : Manager.t; mutable services : (string * (t -> unit)) list }

let boot ?cost ?ncores ?nvm_pages ?dram_pages ?interval_us ?features ?active_cfg () =
  let kernel = Kernel.boot ?cost ?ncores ?nvm_pages ?dram_pages () in
  let mgr = Manager.attach ?active_cfg ?features kernel in
  (match interval_us with Some us -> Manager.set_interval mgr (Some (us * 1000)) | None -> ());
  { mgr; services = [] }

let kernel t = Manager.kernel t.mgr
let manager t = t.mgr
let clock t = Kernel.clock (kernel t)
let now_ns t = Clock.now (clock t)
let store t = Kernel.store (kernel t)
let checkpoint t = Manager.checkpoint t.mgr
let tick t = Manager.tick t.mgr

let set_interval_us t us = Manager.set_interval t.mgr (Option.map (fun u -> u * 1000) us)
let version t = Manager.version t.mgr

let advance_us t us =
  let target = now_ns t + (us * 1000) in
  let rec loop () =
    if now_ns t < target then begin
      (match Manager.next_deadline t.mgr with
      | Some d when d <= target ->
        if now_ns t < d then Clock.advance (clock t) (d - now_ns t);
        ignore (Manager.tick t.mgr)
      | Some _ | None -> Clock.advance (clock t) (target - now_ns t));
      loop ()
    end
  in
  loop ()

let add_service t ~name ~setup =
  t.services <- t.services @ [ (name, setup) ];
  setup t

let crash t = Manager.crash t.mgr

let recover t =
  let report = Manager.recover t.mgr in
  List.iter (fun (_, setup) -> setup t) t.services;
  report

let crash_and_recover t =
  crash t;
  recover t

let stats t = Kernel.stats (kernel t)
