(** TreeSLS: the whole-system persistent microkernel, assembled.

    This is the library's main entry point.  A {!t} is a booted machine:
    simulated NVM + DRAM, the microkernel with its standard user-space
    services, and the checkpoint manager attached.  Applications are
    created through {!Treesls_kernel.Kernel} using {!kernel}, and drive
    checkpoints by calling {!tick} between operations (or {!checkpoint}
    explicitly).

    Power failures are injected with {!crash} and survived with {!recover}:
    after recovery the system is rolled back to the last committed
    checkpoint, and every service registered with {!add_service} has had
    its setup function re-run (re-registering volatile IPC handlers and
    external-synchrony callbacks, the way real driver code re-initialises
    itself at reboot). *)

module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module Restore = Treesls_ckpt.Restore

type t

val boot :
  ?cost:Treesls_sim.Cost.t ->
  ?ncores:int ->
  ?nvm_pages:int ->
  ?dram_pages:int ->
  ?interval_us:int ->
  ?features:Treesls_ckpt.State.features ->
  ?active_cfg:Treesls_ckpt.Active_list.config ->
  unit ->
  t
(** Boot. [interval_us] enables periodic checkpointing (e.g. 1000 for the
    paper's 1 ms / 1000 Hz configuration). *)

val kernel : t -> Kernel.t
(** The current runtime kernel ({b re-fetch after every recover}). *)

val manager : t -> Manager.t
val clock : t -> Treesls_sim.Clock.t
val now_ns : t -> int
val store : t -> Treesls_nvm.Store.t

val checkpoint : t -> Report.t
val tick : t -> Report.t option
(** Checkpoint if the periodic deadline has passed. *)

val set_interval_us : t -> int option -> unit
val version : t -> int

val advance_us : t -> int -> unit
(** Let simulated time pass (idle work), taking periodic checkpoints. *)

val add_service : t -> name:string -> setup:(t -> unit) -> unit
(** Register a service setup function: runs immediately and again after
    every {!recover} (services' code survives crashes; their volatile
    registrations do not). *)

val crash : t -> unit
(** Power failure at the current instant. *)

val recover : t -> Restore.report
(** Journal replay, whole-system restore, service re-setup. *)

val crash_and_recover : t -> Restore.report

val stats : t -> Kernel.stats
(** Kernel counters (faults, syscalls) of the current kernel. *)
