lib/core/system.ml: List Option Treesls_ckpt Treesls_kernel Treesls_sim
