lib/core/system.mli: Treesls_ckpt Treesls_kernel Treesls_nvm Treesls_sim
