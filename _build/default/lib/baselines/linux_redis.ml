module Ycsb = Treesls_workloads.Ycsb
module Cost = Treesls_sim.Cost

type mode = Base | Wal

type t = { m : Machine.t; mode : mode; data : (int, string) Hashtbl.t }

let create ?cost mode = { m = Machine.create ?cost (); mode; data = Hashtbl.create 65536 }
let machine t = t.m

(* Redis-on-Linux operation path: client syscall + loopback + server
   dispatch + hash operation. Values from the paper's testbed order of
   magnitude (machine-local UDP-like communication, us-scale). *)
let read_ns = 2_200
let write_ns = 2_600

(* AOF on Ext4-DAX: format the log record, append it, fsync. The fsync
   barrier plus the file-system journal commit put roughly 3-4x a base
   write on the critical path (the paper's 64-78% throughput drop). *)
let wal_ns value_size =
  let c = Cost.default in
  8_000 + int_of_float (float_of_int (value_size + 64) *. c.Cost.nvme_byte_ns *. 2.0)

let value v size = String.make (min size 8) (Char.chr (65 + (v mod 26))) ^ string_of_int v

let apply t ~value_size op =
  match op with
  | Ycsb.Read k ->
    ignore (Hashtbl.find_opt t.data k);
    read_ns
  | Ycsb.Update k | Ycsb.Insert k ->
    Hashtbl.replace t.data k (value k value_size);
    write_ns + (match t.mode with Base -> 0 | Wal -> wal_ns value_size)

let load t ~keys ~value_size =
  for k = 0 to keys - 1 do
    Hashtbl.replace t.data k (value k value_size)
  done

let do_op t ~value_size op =
  let ns = apply t ~value_size op in
  Machine.charge t.m ns;
  Machine.record t.m ns
