(** Aurora-style single level store on a two-tier DRAM + NVMe machine
    (Tsalapatis et al., SOSP'21) — the Figure 14 comparison system.

    Aurora checkpoints by stopping the world, copying dirty state into
    DRAM shadow buffers, and flushing them to the NVMe device
    asynchronously.  The flush takes 5-7 ms, so checkpoints cannot commit
    more often than that regardless of the configured interval — the
    frequency floor that motivates TreeSLS's single-tier design.  The
    journaling API ([Api]) instead persists per-operation records with
    periodic device barriers; [Base_wal] models RocksDB's own WAL on a
    DRAM-backed file system. *)

type mode =
  | Base  (** no persistence *)
  | Base_wal  (** RocksDB WAL on a DRAM fs *)
  | Ckpt of int  (** transparent checkpoints every [ns] (floor: flush time) *)
  | Api  (** Aurora journaling API *)

type t

val create : ?cost:Treesls_sim.Cost.t -> mode -> t
val machine : t -> Machine.t

val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option

val checkpoints : t -> int
val avg_effective_interval_ns : t -> int
(** Mean time between committed checkpoints (shows the 5-7 ms floor). *)
