(** Execution substrate for the comparison systems (Linux, Aurora).

    The baselines do not run on the TreeSLS microkernel — they are
    cost-model simulators with their own virtual clock, sharing the
    {!Treesls_sim.Cost} parameters so comparisons against TreeSLS happen
    under one latency model. *)

type t

val create : ?cost:Treesls_sim.Cost.t -> unit -> t
val now : t -> int
val charge : t -> int -> unit
val cost : t -> Treesls_sim.Cost.t

val record : t -> int -> unit
(** Record one completed operation with the given latency (ns). *)

val ops : t -> int
val latencies : t -> Treesls_util.Histogram.t
val elapsed_s : t -> float
val throughput_kops : t -> float
val reset_measurement : t -> unit
