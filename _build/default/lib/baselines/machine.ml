module Clock = Treesls_sim.Clock
module Histogram = Treesls_util.Histogram

type t = {
  clock : Clock.t;
  cost : Treesls_sim.Cost.t;
  lat : Histogram.t;
  mutable ops : int;
  mutable measure_from : int;
}

let create ?(cost = Treesls_sim.Cost.default) () =
  { clock = Clock.create (); cost; lat = Histogram.create (); ops = 0; measure_from = 0 }

let now t = Clock.now t.clock
let charge t ns = Clock.advance t.clock ns
let cost t = t.cost

let record t lat_ns =
  Histogram.add t.lat lat_ns;
  t.ops <- t.ops + 1

let ops t = t.ops
let latencies t = t.lat

let elapsed_s t = float_of_int (now t - t.measure_from) /. 1e9

let throughput_kops t =
  let s = elapsed_s t in
  if s <= 0.0 then 0.0 else float_of_int t.ops /. s /. 1e3

let reset_measurement t =
  t.measure_from <- now t;
  t.ops <- 0;
  Histogram.clear t.lat
