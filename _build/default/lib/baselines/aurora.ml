module Cost = Treesls_sim.Cost

type mode = Base | Base_wal | Ckpt of int | Api

type t = {
  m : Machine.t;
  mode : mode;
  data : (string, string) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable next_ckpt : int;
  mutable flush_end : int;
  mutable ckpts : int;
  mutable first_ckpt_at : int;
  mutable api_ops : int;
}

(* RocksDB on Aurora's FreeBSD (glibc-class libc): slightly faster
   baseline than TreeSLS's musl-built RocksDB, as the paper notes. *)
let put_ns = 1_150
let get_ns = 1_100
let wal_dram_ns = 3_350 (* write syscall + page-cache copy + WAL format *)
let api_record_ns = 1_500
let api_barrier_every = 150
let api_barrier_ns = 250_000

let create ?cost mode =
  {
    m = Machine.create ?cost ();
    mode;
    data = Hashtbl.create 65536;
    dirty = Hashtbl.create 4096;
    next_ckpt = (match mode with Ckpt i -> i | Base | Base_wal | Api -> max_int);
    flush_end = 0;
    ckpts = 0;
    first_ckpt_at = 0;
    api_ops = 0;
  }

let machine t = t.m

let page_of_key key = Hashtbl.hash key land 0xFFFFF / 16

(* Checkpoint attempt at an operation boundary: the STW copy into shadow
   buffers is charged to the interrupted operation; the NVMe flush runs in
   the background but gates the next checkpoint. *)
let maybe_checkpoint t =
  match t.mode with
  | Base | Base_wal | Api -> 0
  | Ckpt interval ->
    let now = Machine.now t.m in
    if now >= t.next_ckpt && now >= t.flush_end then begin
      let dirty_pages = Hashtbl.length t.dirty in
      let c = Machine.cost t.m in
      (* Aurora's pause only snapshots metadata and flips shadow-buffer
         pointers; the page copying overlaps with execution. *)
      let stw = 20_000 + (dirty_pages * 10) in
      Machine.charge t.m stw;
      let flush_bytes = dirty_pages * c.Cost.page_size in
      let flush_ns =
        max 5_000_000
          (c.Cost.nvme_flush_base_ns + int_of_float (float_of_int flush_bytes *. c.Cost.nvme_byte_ns))
      in
      t.flush_end <- Machine.now t.m + flush_ns;
      t.next_ckpt <- max (Machine.now t.m + interval) t.flush_end;
      Hashtbl.reset t.dirty;
      if t.ckpts = 0 then t.first_ckpt_at <- Machine.now t.m;
      t.ckpts <- t.ckpts + 1;
      stw
    end
    else 0

let put t ~key ~value =
  let stw = maybe_checkpoint t in
  Hashtbl.replace t.data key value;
  Hashtbl.replace t.dirty (page_of_key key) ();
  let extra =
    match t.mode with
    | Base | Ckpt _ -> 0
    | Base_wal -> wal_dram_ns
    | Api ->
      t.api_ops <- t.api_ops + 1;
      api_record_ns + (if t.api_ops mod api_barrier_every = 0 then api_barrier_ns else 0)
  in
  let ns = put_ns + extra in
  Machine.charge t.m ns;
  Machine.record t.m (ns + stw)

let get t ~key =
  let stw = maybe_checkpoint t in
  let r = Hashtbl.find_opt t.data key in
  Machine.charge t.m get_ns;
  Machine.record t.m (get_ns + stw);
  r

let checkpoints t = t.ckpts

let avg_effective_interval_ns t =
  if t.ckpts <= 1 then 0
  else (Machine.now t.m - t.first_ckpt_at) / (t.ckpts - 1)
