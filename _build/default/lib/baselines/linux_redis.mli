(** Redis on Linux (Figure 13 baselines).

    Two configurations: [Base] (no persistence guarantee) and [Wal]
    (Redis's append-only file on Ext4-DAX over persistent memory).  The
    WAL adds an operation-log write plus an fsync barrier on the critical
    path of every write — the double write TreeSLS's transparent
    checkpointing avoids. Data is kept in a host hash table (only the cost
    model matters for the comparison; crash recovery of the baseline is
    out of scope). *)

type mode = Base | Wal

type t

val create : ?cost:Treesls_sim.Cost.t -> mode -> t
val machine : t -> Machine.t

val load : t -> keys:int -> value_size:int -> unit
(** Populate without measuring. *)

val do_op : t -> value_size:int -> Treesls_workloads.Ycsb.op -> unit
