lib/baselines/aurora.mli: Machine Treesls_sim
