lib/baselines/machine.ml: Treesls_sim Treesls_util
