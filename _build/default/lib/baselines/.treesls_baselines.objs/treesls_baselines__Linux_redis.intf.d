lib/baselines/linux_redis.mli: Machine Treesls_sim Treesls_workloads
