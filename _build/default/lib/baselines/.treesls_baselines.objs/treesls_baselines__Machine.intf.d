lib/baselines/machine.mli: Treesls_sim Treesls_util
