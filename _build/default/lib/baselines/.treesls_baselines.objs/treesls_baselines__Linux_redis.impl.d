lib/baselines/linux_redis.ml: Char Hashtbl Machine String Treesls_sim Treesls_workloads
