lib/baselines/aurora.ml: Hashtbl Machine Treesls_sim
