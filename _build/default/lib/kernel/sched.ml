module Kobj = Treesls_cap.Kobj

type t = { queue : Kobj.thread Queue.t }

let create () = { queue = Queue.create () }

let enqueue t th = Queue.add th t.queue

let rec pick t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some th -> ( match th.Kobj.th_state with Kobj.Ready -> Some th | _ -> pick t)

let ready_count t = Queue.length t.queue
let clear t = Queue.clear t.queue

let rebuild t ~root =
  clear t;
  Kobj.iter_tree ~root (fun obj ->
      match obj with
      | Kobj.Thread th when th.Kobj.th_state = Kobj.Ready -> enqueue t th
      | Kobj.Thread _ | Kobj.Cap_group _ | Kobj.Vmspace _ | Kobj.Pmo _ | Kobj.Ipc_conn _
      | Kobj.Notification _ | Kobj.Irq_notification _ -> ())
