lib/kernel/kernel.mli: Bytes Hashtbl Pagetable Sched Treesls_cap Treesls_nvm Treesls_sim
