lib/kernel/kernel.ml: Bytes Hashtbl List Pagetable Printf Sched Treesls_cap Treesls_nvm Treesls_sim
