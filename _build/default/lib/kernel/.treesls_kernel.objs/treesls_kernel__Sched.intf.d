lib/kernel/sched.mli: Treesls_cap
