lib/kernel/sched.ml: Queue Treesls_cap
