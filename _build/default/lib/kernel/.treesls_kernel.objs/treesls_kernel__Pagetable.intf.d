lib/kernel/pagetable.mli: Treesls_nvm
