lib/kernel/ipc.ml: Bytes Hashtbl Kernel List Sched Treesls_cap Treesls_sim
