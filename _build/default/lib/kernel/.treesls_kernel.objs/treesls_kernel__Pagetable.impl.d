lib/kernel/pagetable.ml: Hashtbl List Treesls_nvm
