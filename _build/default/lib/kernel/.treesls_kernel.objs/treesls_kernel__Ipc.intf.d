lib/kernel/ipc.mli: Bytes Kernel Treesls_cap
