(** Round-robin scheduler.

    Derived state: the ready queue is {e not} checkpointed; recovery
    repopulates it from thread states in the restored capability tree
    ("adding all threads to the scheduler's queue", §3). *)

type t

val create : unit -> t
val enqueue : t -> Treesls_cap.Kobj.thread -> unit
val pick : t -> Treesls_cap.Kobj.thread option
(** Dequeue the next ready thread (skipping threads no longer [Ready]). *)

val ready_count : t -> int
val clear : t -> unit

val rebuild : t -> root:Treesls_cap.Kobj.cap_group -> unit
(** Recovery: clear, then enqueue every [Ready] thread reachable from the
    capability tree. *)
