(** Synchronous IPC and notifications.

    Connections carry calls from a client thread to a server thread; the
    call itself is executed inline (the simulator charges the two syscall
    crossings and any declared handler work).  Connection state — the
    served-call counter, the registered server — is part of the capability
    tree and therefore checkpointed; the OCaml handler closure is volatile
    and must be re-registered by the service after a restore, mirroring how
    a real driver re-establishes its runtime state in its restore
    callback. *)

module Kobj = Treesls_cap.Kobj

type handler = Bytes.t -> Bytes.t
(** Request payload to response payload. *)

val create_conn :
  Kernel.t -> client:Kernel.process -> server:Kernel.process -> Kobj.ipc_conn
(** A connection with a 1-page shared buffer, server = the server process's
    first thread, capabilities installed in both cap groups. *)

val register_handler : Kernel.t -> Kobj.ipc_conn -> handler -> unit
val has_handler : Kernel.t -> Kobj.ipc_conn -> bool

val call : Kernel.t -> Kobj.ipc_conn -> Bytes.t -> Bytes.t
(** Synchronous call: charges two crossings, bumps [ic_calls], runs the
    handler. Raises [Invalid_argument] if no handler is registered. *)

val notify : Kernel.t -> Kobj.notification -> unit
(** Signal: wakes one waiter if present, else increments the count. *)

val wait : Kernel.t -> Kobj.notification -> Kobj.thread -> bool
(** [wait k n th] consumes a pending signal (returns [true]) or blocks the
    thread on the notification (returns [false]). *)

val clear_handlers : Kernel.t -> unit
(** Simulates the loss of all volatile handler closures (crash). *)
