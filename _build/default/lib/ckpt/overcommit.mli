(** Memory over-commitment policy (paper §8).

    "To support memory over-commitment, we can add a cold page list to
    track cold pages and evict them to secondary storage, such as SSDs and
    disks, when the system is under memory pressure."

    Attaching this policy makes every checkpoint commit check NVM pressure:
    when free NVM frames drop below the low watermark, cold pages —
    NVM-resident, clean, read-only in every mapping, i.e. untouched for at
    least one full checkpoint interval — are swapped out to the SSD in
    batches until the high watermark is reached (or candidates run out).
    Swapped pages fault back in transparently on the next access. *)

type t

val attach : ?low_watermark:int -> ?high_watermark:int -> ?batch:int -> Manager.t -> t
(** Defaults: evict when free NVM frames < 256, aim for 512, at most 128
    evictions per checkpoint. *)

val evictions : t -> int
(** Total pages evicted since attachment. *)

val pressure_events : t -> int
(** Checkpoints at which the low watermark was hit. *)
