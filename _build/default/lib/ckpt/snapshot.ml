module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix

type t =
  | S_cap_group of { name : string; slots : (int * int * Treesls_cap.Rights.t) list }
  | S_thread of { regs : int array; state : Kobj.thread_state; prio : int; cursor : int }
  | S_vmspace of { regions : (int * int * int * bool) list }
  | S_pmo of {
      pages : int;
      kind : Kobj.pmo_kind;
      eternal_frames : (int * Treesls_nvm.Paddr.t) list;
    }
  | S_ipc of { server_tid : int option; shared_pmo : int option; calls : int }
  | S_notif of { count : int; waiters : int list }
  | S_irq of { line : int; pending : int }

let take obj =
  match obj with
  | Kobj.Cap_group g ->
    let slots = ref [] in
    Kobj.iter_caps
      (fun slot c -> slots := (slot, Kobj.id c.Kobj.target, c.Kobj.rights) :: !slots)
      g;
    S_cap_group { name = g.Kobj.cg_name; slots = List.rev !slots }
  | Kobj.Thread th ->
    S_thread
      {
        regs = Array.copy th.Kobj.th_regs;
        state = th.Kobj.th_state;
        prio = th.Kobj.th_prio;
        cursor = th.Kobj.th_cursor;
      }
  | Kobj.Vmspace vs ->
    S_vmspace
      {
        regions =
          List.map
            (fun r ->
              (r.Kobj.vr_vpn, r.Kobj.vr_pages, r.Kobj.vr_pmo.Kobj.pmo_id, r.Kobj.vr_writable))
            vs.Kobj.vs_regions;
      }
  | Kobj.Pmo p ->
    let eternal_frames =
      match p.Kobj.pmo_kind with
      | Kobj.Pmo_normal -> []
      | Kobj.Pmo_eternal -> List.rev (Radix.fold (fun k v acc -> (k, v) :: acc) p.Kobj.pmo_radix [])
    in
    S_pmo { pages = p.Kobj.pmo_pages; kind = p.Kobj.pmo_kind; eternal_frames }
  | Kobj.Ipc_conn c ->
    S_ipc
      {
        server_tid = Option.map (fun th -> th.Kobj.th_id) c.Kobj.ic_server;
        shared_pmo = Option.map (fun p -> p.Kobj.pmo_id) c.Kobj.ic_shared;
        calls = c.Kobj.ic_calls;
      }
  | Kobj.Notification n ->
    S_notif { count = n.Kobj.nt_count; waiters = n.Kobj.nt_waiters }
  | Kobj.Irq_notification i -> S_irq { line = i.Kobj.irq_line; pending = i.Kobj.irq_pending }

let bytes = function
  | S_cap_group s -> 64 + (16 * List.length s.slots)
  | S_thread _ -> 64 + (8 * Kobj.regs_count)
  | S_vmspace s -> 48 + (40 * List.length s.regions)
  | S_pmo s -> 64 + (16 * List.length s.eternal_frames)
  | S_ipc _ -> 64
  | S_notif s -> 48 + (8 * List.length s.waiters)
  | S_irq _ -> 48

let kind = function
  | S_cap_group _ -> Kobj.Cap_group_k
  | S_thread _ -> Kobj.Thread_k
  | S_vmspace _ -> Kobj.Vmspace_k
  | S_pmo _ -> Kobj.Pmo_k
  | S_ipc _ -> Kobj.Ipc_conn_k
  | S_notif _ -> Kobj.Notification_k
  | S_irq _ -> Kobj.Irq_k

let references = function
  | S_cap_group s -> List.map (fun (_, id, _) -> id) s.slots
  | S_vmspace s -> List.map (fun (_, _, id, _) -> id) s.regions
  | S_ipc s ->
    List.filter_map Fun.id [ s.server_tid; s.shared_pmo ]
  | S_thread _ | S_pmo _ | S_notif _ | S_irq _ -> []
