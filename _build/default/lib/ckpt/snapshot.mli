(** Backup representations of capability-tree objects.

    A snapshot is the checkpointed image of one object's own state, with
    references to other objects flattened to object ids (the backup tree is
    stitched back together by id during restore).  PMO page contents are
    not part of the snapshot: they are handled by the versioned
    checkpointed-page machinery ({!Ckpt_page}). *)

module Kobj = Treesls_cap.Kobj

type t =
  | S_cap_group of {
      name : string;
      slots : (int * int * Treesls_cap.Rights.t) list;  (** slot, target id, rights *)
    }
  | S_thread of { regs : int array; state : Kobj.thread_state; prio : int; cursor : int }
  | S_vmspace of {
      regions : (int * int * int * bool) list;  (** vpn, pages, pmo id, writable *)
    }
  | S_pmo of {
      pages : int;
      kind : Kobj.pmo_kind;
      eternal_frames : (int * Treesls_nvm.Paddr.t) list;
          (** for eternal PMOs only: the fixed page set, preserved verbatim
              across restore *)
    }
  | S_ipc of { server_tid : int option; shared_pmo : int option; calls : int }
  | S_notif of { count : int; waiters : int list }
  | S_irq of { line : int; pending : int }

val take : Kobj.t -> t
(** Capture the object's current state (no cost accounting here). *)

val bytes : t -> int
(** Approximate NVM bytes this snapshot occupies. *)

val kind : t -> Kobj.kind

val references : t -> int list
(** Ids of objects this snapshot points to (children in the backup tree). *)
