module Kernel = Treesls_kernel.Kernel
module Store = Treesls_nvm.Store

type t = {
  mgr : Manager.t;
  low : int;
  high : int;
  batch : int;
  mutable evictions : int;
  mutable pressure_events : int;
}

let on_commit t () =
  let st = Manager.state t.mgr in
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  if Store.nvm_pages_free store < t.low then begin
    t.pressure_events <- t.pressure_events + 1;
    (* evict batches until pressure relieved or no cold pages remain *)
    let rec relieve () =
      if Store.nvm_pages_free store < t.high then begin
        let n = Kernel.evict_cold kernel ~limit:t.batch in
        t.evictions <- t.evictions + n;
        if n > 0 then relieve ()
      end
    in
    relieve ()
  end

let attach ?(low_watermark = 256) ?(high_watermark = 512) ?(batch = 128) mgr =
  if high_watermark < low_watermark then invalid_arg "Overcommit.attach: watermarks inverted";
  let t =
    { mgr; low = low_watermark; high = high_watermark; batch; evictions = 0; pressure_events = 0 }
  in
  Manager.on_checkpoint mgr (on_commit t);
  t

let evictions t = t.evictions
let pressure_events t = t.pressure_events
