(** Versioned page checkpoints: the checkpointed radix tree (Figure 6).

    Each checkpointed PMO owns one of these tables, mapping a page index to
    a checkpointed-page record with up to two NVM backup slots:

    - {e CP case} (runtime page on NVM): only [b1] is used; the runtime
      page itself doubles as the second copy ("NVM enables runtime pages to
      be used in the consistent checkpoint", §4.2). Invariant:
      runtime-on-NVM implies [b2 = None].
    - {e CPP case} (runtime page migrated to DRAM): both [b1] and [b2] are
      NVM pages used alternately by stop-and-copy (§4.3.3).

    {b Version meaning}: a backup stamped [v] holds the page's content as
    of the commit of checkpoint [v].  Copy-on-write pre-images are stamped
    with the current global version; stop-and-copy images taken during the
    STW pause of checkpoint [v+1] are stamped [v+1] and only become
    meaningful if that checkpoint commits.

    {b Restore rule} (refinement of §4.3.3): slots stamped newer than the
    committed global version [g] are in-flight copies of an uncommitted
    checkpoint and are skipped — an in-flight stop-and-copy may contain
    post-[g] data, so the paper's bare "higher version wins" clause is
    unsafe exactly there.  The order is: a slot stamped [g]; else the
    surviving runtime NVM page (only reachable if the page was not modified
    since [g], because any modification would have left a CoW backup
    stamped [g]); else the highest slot [<= g] (correct because a page
    dirtied in interval [(k, k+1)] always gets a backup stamped [>= k+1],
    so no slot in [(k, g]] implies the content never changed after [k]).

    [born_ver] records the first checkpoint that includes the page: pages
    born after [g] are dropped (and their frames freed) on restore,
    implementing the allocator rollback of in-flight page allocations. *)

module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store

type cp = {
  mutable born_ver : int;
  mutable b1 : Paddr.t option;
  mutable b1_ver : int;
  mutable b2 : Paddr.t option;
  mutable b2_ver : int;
}

type t

val create : unit -> t
val find : t -> int -> cp option
val cardinal : t -> int
val iter : (int -> cp -> unit) -> t -> unit

val ensure : Store.t -> t -> pno:int -> born_ver:int -> cp
(** Get or create the record for a page (charges the per-entry build cost
    that dominates a full PMO checkpoint, Table 3). *)

val cow_backup : Store.t -> t -> runtime:Paddr.t -> pno:int -> global:int -> bool
(** Page-fault path (step 6 of Figure 5): save the pre-image of an
    NVM-resident runtime page into [b1] stamped [global]; no-op (returns
    [false]) if a backup stamped [global] already exists or the runtime
    lives in DRAM (covered by stop-and-copy instead). *)

val stop_and_copy_dram : Store.t -> t -> runtime:Paddr.t -> pno:int -> new_ver:int -> unit
(** STW path for a dirty DRAM-cached page: copy into the stale slot,
    stamped [new_ver] (valid once the checkpoint commits). *)

val attach_runtime_as_backup : t -> pno:int -> old_runtime:Paddr.t -> new_ver:int -> unit
(** NVM-to-DRAM migration bookkeeping: the former NVM runtime page becomes
    the latest backup ([b2], stamped [new_ver]); the caller has already
    copied its content to DRAM and remapped. *)

val detach_runtime_slot : Store.t -> t -> pno:int -> latest:Paddr.t option -> Paddr.t
(** DRAM-to-NVM migration: make [b2] hold the latest content (copying from
    [latest] if needed), clear it to the runtime-marker state and return
    the NVM page that must become the runtime mapping. *)

val restore_choice : cp -> global:int -> runtime:Paddr.t option -> [ `Drop | `Use of Paddr.t ]
(** Apply the restore rule; [runtime] is the crash-time radix entry (only
    usable if on NVM). [`Drop] means the page was born after [global]. *)

val normalize_after_restore : Store.t -> cp -> keep:Paddr.t -> runtime:Paddr.t option -> unit
(** After restore adopted [keep] as the runtime page: free every other
    frame held by the record and reset it to the CP state (no valid
    backups). *)

val remove : t -> pno:int -> unit
(** Drop a page's record (page born after the restored version). *)

val backup_frames : t -> int
(** Number of NVM frames currently held as backups (checkpoint size). *)

val free_all : Store.t -> t -> runtime_of:(int -> Paddr.t option) -> unit
(** Free all backup frames and all NVM runtime frames (PMO garbage
    collection after its object left the checkpoint). *)
