lib/ckpt/snapshot.ml: Array Fun List Option Treesls_cap Treesls_nvm
