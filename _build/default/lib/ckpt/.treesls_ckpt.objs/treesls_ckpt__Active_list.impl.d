lib/ckpt/active_list.ml: Array Hashtbl List Option Treesls_cap
