lib/ckpt/manager.ml: Active_list Checkpoint Ckpt_page Hashtbl Oroot Restore State Treesls_cap Treesls_kernel Treesls_nvm Treesls_sim
