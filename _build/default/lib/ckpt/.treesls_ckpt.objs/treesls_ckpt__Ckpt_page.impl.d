lib/ckpt/ckpt_page.ml: List Option Treesls_cap Treesls_nvm Treesls_sim
