lib/ckpt/checkpoint.mli: Report State
