lib/ckpt/state.ml: Active_list Ckpt_page Hashtbl Oroot Report Snapshot Treesls_cap Treesls_kernel Treesls_nvm Treesls_sim Treesls_util
