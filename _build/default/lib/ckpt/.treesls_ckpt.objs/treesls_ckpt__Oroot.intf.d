lib/ckpt/oroot.mli: Ckpt_page Snapshot Treesls_cap
