lib/ckpt/checkpoint.ml: Active_list Array Ckpt_page Hashtbl List Option Oroot Report Snapshot State Treesls_cap Treesls_kernel Treesls_nvm Treesls_sim Treesls_util
