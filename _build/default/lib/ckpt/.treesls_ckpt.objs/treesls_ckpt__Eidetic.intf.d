lib/ckpt/eidetic.mli: Bytes Manager Snapshot Treesls_cap
