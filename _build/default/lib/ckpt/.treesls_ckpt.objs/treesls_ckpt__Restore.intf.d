lib/ckpt/restore.mli: State Treesls_nvm
