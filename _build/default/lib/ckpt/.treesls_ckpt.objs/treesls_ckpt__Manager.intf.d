lib/ckpt/manager.mli: Active_list Report Restore State Treesls_cap Treesls_kernel
