lib/ckpt/overcommit.ml: Manager State Treesls_kernel Treesls_nvm
