lib/ckpt/report.ml: Format Treesls_cap
