lib/ckpt/oroot.ml: Ckpt_page Snapshot Treesls_cap
