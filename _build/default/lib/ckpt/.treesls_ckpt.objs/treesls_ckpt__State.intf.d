lib/ckpt/state.mli: Active_list Hashtbl Oroot Report Treesls_cap Treesls_kernel Treesls_nvm Treesls_util
