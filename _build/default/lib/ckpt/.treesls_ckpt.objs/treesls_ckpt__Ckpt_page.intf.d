lib/ckpt/ckpt_page.mli: Treesls_nvm
