lib/ckpt/active_list.mli: Treesls_cap
