lib/ckpt/overcommit.mli: Manager
