lib/ckpt/snapshot.mli: Treesls_cap Treesls_nvm
