lib/ckpt/eidetic.ml: Bytes Hashtbl List Manager Oroot Snapshot State Treesls_cap Treesls_kernel Treesls_nvm
