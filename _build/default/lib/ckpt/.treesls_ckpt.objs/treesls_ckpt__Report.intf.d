lib/ckpt/report.mli: Format Treesls_cap
