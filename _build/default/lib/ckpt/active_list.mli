(** Dual-function active page list (§4.3.2).

    Tracks page hotness from copy-on-write faults and holds the set of
    DRAM-cached hot pages.  At checkpoint time non-leader cores traverse
    sub-lists of this list to (a) stop-and-copy dirty DRAM pages, (b)
    migrate newly-hot pages NVM-to-DRAM and (c) demote pages idle for too
    long back to NVM.  The list itself is volatile (DRAM): it is dropped on
    crash and repopulates from scratch after a restore. *)

module Kobj = Treesls_cap.Kobj

type entry = {
  e_pmo : Kobj.pmo;
  e_pno : int;
  mutable e_hotness : int;
  mutable e_idle : int;  (** consecutive checkpoints without modification *)
  mutable e_dram : bool;  (** currently migrated to DRAM *)
  mutable e_live : bool;
}

type config = {
  hot_threshold : int;  (** faults before a page is appended (default 2) *)
  idle_limit : int;  (** clean checkpoints before demotion (default 8) *)
  max_cached : int;  (** cap on DRAM-cached pages *)
}

val default_config : config

type t

val create : config -> t
val config : t -> config

val record_fault : t -> Kobj.pmo -> int -> unit
(** Bump hotness; append to the list once the threshold is crossed (and
    the cache cap is not exceeded). *)

val entries : t -> entry list
(** Live entries in append order. *)

val sublists : t -> cores:int -> entry list array
(** Partition the live entries for parallel traversal by [cores] cores. *)

val cached_count : t -> int
(** Pages currently DRAM-resident. *)

val drop : t -> entry -> unit
(** Demotion: remove from the list and clear hotness. *)

val compact : t -> unit
(** Remove dead entries from the backing list (called once per checkpoint). *)

val clear : t -> unit
(** Crash/restore: forget everything. *)
