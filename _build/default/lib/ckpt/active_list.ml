module Kobj = Treesls_cap.Kobj

type entry = {
  e_pmo : Kobj.pmo;
  e_pno : int;
  mutable e_hotness : int;
  mutable e_idle : int;
  mutable e_dram : bool;
  mutable e_live : bool;
}

type config = { hot_threshold : int; idle_limit : int; max_cached : int }

let default_config = { hot_threshold = 2; idle_limit = 8; max_cached = 1024 }

type t = {
  cfg : config;
  index : (int * int, entry) Hashtbl.t;  (** (pmo id, pno) -> entry *)
  hotness : (int * int, int) Hashtbl.t;  (** pages not (yet) in the list *)
  mutable list : entry list;  (** reverse append order *)
  mutable live : int;
}

let create cfg = { cfg; index = Hashtbl.create 256; hotness = Hashtbl.create 256; list = []; live = 0 }
let config t = t.cfg

let record_fault t pmo pno =
  let key = (pmo.Kobj.pmo_id, pno) in
  match Hashtbl.find_opt t.index key with
  | Some e -> e.e_hotness <- e.e_hotness + 1
  | None ->
    let h = 1 + Option.value ~default:0 (Hashtbl.find_opt t.hotness key) in
    if h >= t.cfg.hot_threshold && t.live < t.cfg.max_cached then begin
      Hashtbl.remove t.hotness key;
      let e = { e_pmo = pmo; e_pno = pno; e_hotness = h; e_idle = 0; e_dram = false; e_live = true } in
      Hashtbl.replace t.index key e;
      t.list <- e :: t.list;
      t.live <- t.live + 1
    end
    else Hashtbl.replace t.hotness key h

let entries t = List.rev (List.filter (fun e -> e.e_live) t.list)

let sublists t ~cores =
  let cores = max 1 cores in
  let buckets = Array.make cores [] in
  List.iteri (fun i e -> buckets.(i mod cores) <- e :: buckets.(i mod cores)) (entries t);
  Array.map List.rev buckets

let cached_count t = List.length (List.filter (fun e -> e.e_live && e.e_dram) t.list)

let drop t e =
  if e.e_live then begin
    e.e_live <- false;
    t.live <- t.live - 1;
    Hashtbl.remove t.index (e.e_pmo.Kobj.pmo_id, e.e_pno)
  end

let compact t = t.list <- List.filter (fun e -> e.e_live) t.list

let clear t =
  Hashtbl.reset t.index;
  Hashtbl.reset t.hotness;
  t.list <- [];
  t.live <- 0
