type t = {
  sub_buckets : int;
  counts : int array; (* octave * sub_buckets + sub index *)
  mutable n : int;
  mutable sum : int;
  mutable maxv : int;
}

let octaves = 48

let create ?(sub_buckets = 16) () =
  { sub_buckets; counts = Array.make (octaves * sub_buckets) 0; n = 0; sum = 0; maxv = 0 }

let bucket_index t v =
  if v < t.sub_buckets then v
  else begin
    (* octave = position of the highest set bit above log2 sub_buckets *)
    let bits = Bits.log2_int v in
    let low_bits = Bits.log2_int t.sub_buckets in
    let octave = bits - low_bits in
    let sub = (v lsr (bits - low_bits)) - t.sub_buckets in
    (* sub in [0, sub_buckets): the sub_buckets values after the leading bit *)
    ((octave + 1) * t.sub_buckets) + sub
  end

let bucket_upper t idx =
  if idx < t.sub_buckets then idx
  else begin
    let octave = (idx / t.sub_buckets) - 1 in
    let sub = idx mod t.sub_buckets in
    let low_bits = Bits.log2_int t.sub_buckets in
    let base = 1 lsl (octave + low_bits) in
    let step = base / t.sub_buckets in
    base + ((sub + 1) * step) - 1
  end

let add t v =
  let v = if v < 0 then 0 else v in
  let idx = bucket_index t v in
  let idx = if idx >= Array.length t.counts then Array.length t.counts - 1 else idx in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.maxv then t.maxv <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n
let max_value t = t.maxv

let percentile t p =
  if t.n = 0 then 0
  else begin
    let target = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 in
    let result = ref t.maxv in
    (try
       for i = 0 to Array.length t.counts - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= target then begin
           result := bucket_upper t i;
           raise Exit
         end
       done
     with Exit -> ());
    if !result > t.maxv then t.maxv else !result
  end

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0;
  t.maxv <- 0
