(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a seed.  The generator is splitmix64,
    which is small, fast and has no shared global state: each component of
    the system owns its own generator, so adding randomness to one module
    never perturbs the random sequence seen by another. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
