(** Log-scaled latency histogram.

    Fixed memory regardless of sample count, used where experiments record
    millions of per-operation latencies.  Buckets are exponential with a
    configurable number of sub-buckets per octave (HdrHistogram-style). *)

type t

val create : ?sub_buckets:int -> unit -> t
(** [create ~sub_buckets ()] with [sub_buckets] linear subdivisions per
    power of two (default 16). Values are non-negative integers
    (e.g. nanoseconds). *)

val add : t -> int -> unit
val count : t -> int
val total : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** Upper bound of the bucket containing the given percentile. *)

val max_value : t -> int
val clear : t -> unit
