(** Small bit-twiddling helpers shared by allocators and histograms. *)

val leading_zeros : int -> int
(** Count of leading zero bits in the 63-bit OCaml int representation of a
    positive integer. [leading_zeros 1 = 62]. Raises on non-positive input. *)

val log2_int : int -> int
(** Floor of log2 for positive integers. *)

val is_power_of_two : int -> bool
val next_power_of_two : int -> int
