type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a ->
      assert (List.length a = ncols);
      Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri
      (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  account header;
  List.iter account rows;
  let line row =
    let cells =
      List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?aligns ~title ~header rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ?aligns ~header rows)

let fmt_us v = Printf.sprintf "%.2f" v
let fmt_ratio v = Printf.sprintf "%.2fx" v
let fmt_pct v = Printf.sprintf "%.0f%%" (v *. 100.0)
