(** Plain-text table rendering for benchmark output.

    Produces the aligned tables that [bench/main.exe] prints for each
    reproduced paper table/figure. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out rows under the header with column
    separators. [aligns] defaults to [Left] for the first column and
    [Right] for the rest. *)

val print : ?aligns:align list -> title:string -> header:string list -> string list list -> unit
(** [print ~title ~header rows] writes a titled table to stdout. *)

val fmt_us : float -> string
(** Format a microsecond quantity with 2 decimals, e.g. ["12.34"]. *)

val fmt_ratio : float -> string
(** Format a ratio with 2 decimals and a trailing [x], e.g. ["2.20x"]. *)

val fmt_pct : float -> string
(** Format a fraction as a percentage, e.g. [fmt_pct 0.46 = "46%"]. *)
