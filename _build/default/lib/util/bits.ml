let leading_zeros v =
  if v <= 0 then invalid_arg "Bits.leading_zeros: non-positive";
  let rec loop n acc = if n = 0 then acc else loop (n lsr 1) (acc - 1) in
  loop v 63

let log2_int v =
  if v <= 0 then invalid_arg "Bits.log2_int: non-positive";
  62 - leading_zeros v

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let next_power_of_two v =
  if v <= 1 then 1
  else begin
    let l = log2_int (v - 1) in
    1 lsl (l + 1)
  end
