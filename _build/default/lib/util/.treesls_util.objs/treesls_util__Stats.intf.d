lib/util/stats.mli:
