lib/util/table.mli:
