lib/util/bits.ml:
