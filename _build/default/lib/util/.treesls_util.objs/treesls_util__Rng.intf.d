lib/util/rng.mli:
