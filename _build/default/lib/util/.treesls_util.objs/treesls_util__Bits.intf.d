lib/util/bits.mli:
