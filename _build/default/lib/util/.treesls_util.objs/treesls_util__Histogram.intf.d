lib/util/histogram.mli:
