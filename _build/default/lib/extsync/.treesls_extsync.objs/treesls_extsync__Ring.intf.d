lib/extsync/ring.mli: Bytes Treesls_kernel
