lib/extsync/net_server.ml: Bytes Int64 Ring Treesls_ckpt Treesls_kernel Treesls_sim
