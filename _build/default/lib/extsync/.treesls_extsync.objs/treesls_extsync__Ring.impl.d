lib/extsync/ring.ml: Bytes Int Int32 Int64 List Treesls_cap Treesls_kernel Treesls_sim
