lib/extsync/net_server.mli: Bytes Treesls_ckpt Treesls_kernel
