(* Eternal PMOs and checkpoint callbacks: building an outbox whose state
   deliberately escapes rollback.

   Ordinary memory is rolled back to the last checkpoint on recovery.
   Driver-level structures that mirror the outside world (packets already
   on the wire) must NOT roll back — TreeSLS gives drivers eternal PMOs
   for exactly this (§5). This example shows the difference directly.

     dune exec examples/eternal_log.exe
*)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Ring = Treesls_extsync.Ring

let () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let drv = Kernel.create_process k ~name:"mydriver" ~threads:1 ~prio:5 in

  (* An ordinary heap page and an eternal ring, side by side. *)
  let heap_vpn = Kernel.grow_heap k drv ~pages:1 in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  let ring = Ring.create k drv ~name:"outbox" ~slots:16 ~slot_size:64 in

  Kernel.write_bytes k drv ~vaddr:(heap_vpn * psz) (Bytes.of_string "epoch-1");
  ignore (Ring.append ring (Bytes.of_string "pkt-1"));
  Ring.on_checkpoint ring;
  ignore (System.checkpoint sys);

  (* After the checkpoint, both structures advance... *)
  Kernel.write_bytes k drv ~vaddr:(heap_vpn * psz) (Bytes.of_string "epoch-2");
  ignore (Ring.append ring (Bytes.of_string "pkt-2"));
  Printf.printf "before crash: heap=epoch-2, outbox has %d published + %d unpublished\n"
    (Ring.visible_count ring) (Ring.unpublished_count ring);

  (* ...and the power fails. *)
  ignore (System.crash_and_recover sys);
  let k = System.kernel sys in
  let drv = Option.get (Kernel.find_process k ~name:"mydriver") in
  let heap = Kernel.read_bytes k drv ~vaddr:(heap_vpn * psz) ~len:7 in
  Printf.printf "after recovery: heap=%S (rolled back)\n" (Bytes.to_string heap);
  assert (Bytes.to_string heap = "epoch-1");

  (* The eternal ring did NOT roll back: the driver's restore callback
     reconciles it — published packets stay, unpublished ones drop. *)
  let ring = Ring.reattach k drv ~name:"outbox" ~slots:16 ~slot_size:64 in
  Ring.on_restore ring;
  (match Ring.pop_visible ring with
  | Some m ->
    Printf.printf "outbox after recovery: %S still queued for the wire\n" (Bytes.to_string m);
    assert (Bytes.to_string m = "pkt-1")
  | None -> assert false);
  assert (Ring.pop_visible ring = None);
  Printf.printf "pkt-2 (never made visible) was discarded; sender re-sends it\n";
  print_endline "eternal_log OK"
