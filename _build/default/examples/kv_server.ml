(* A Memcached-style cache server made durable with zero persistence code,
   plus transparent external synchrony: replies are released only when the
   state they acknowledge has been checkpointed, so a client never sees an
   acknowledgement for data a crash can lose.

     dune exec examples/kv_server.exe
*)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Kv_app = Treesls_apps.Kv_app
module Net_server = Treesls_extsync.Net_server

let () =
  let sys = System.boot ~interval_us:1000 () in
  let app = Kv_app.launch ~keys_hint:10_000 sys Kv_app.Memcached in

  (* The network driver parks responses in a persistent ring until the
     next checkpoint commit (delayed external visibility, paper §5). *)
  let acked = ref [] in
  let netdrv = Option.get (Kernel.find_process (System.kernel sys) ~name:"netdrv") in
  let net =
    Net_server.create (System.kernel sys) (System.manager sys) ~proc:netdrv
      ~deliver:(fun ~client ~sent_ns ~payload ->
        acked := Bytes.to_string payload :: !acked;
        Printf.printf "  -> client %d acked %S (delayed %.0f us)\n" client
          (Bytes.to_string payload)
          (float_of_int (System.now_ns sys - sent_ns) /. 1e3))
  in

  (* Serve some SET requests; each reply is queued, not sent. *)
  List.iteri
    (fun i key ->
      Kv_app.set app ~key ~value:(Printf.sprintf "value-%d" i);
      ignore (Net_server.send net ~client:i (Bytes.of_string key)))
    [ "user:alice"; "user:bob"; "user:carol" ];
  Printf.printf "3 SETs processed, %d replies pending (none visible yet)\n"
    (Net_server.pending net);

  (* Simulated time passes; the 1 ms checkpoint fires and releases them. *)
  System.advance_us sys 1500;
  Printf.printf "after checkpoint: %d replies delivered\n" (List.length !acked);

  (* Now a request is processed but power fails before its checkpoint. *)
  Kv_app.set app ~key:"user:mallory" ~value:"lost";
  ignore (Net_server.send net ~client:9 (Bytes.of_string "user:mallory"));
  Printf.printf "4th SET processed; crashing before its checkpoint...\n";
  System.crash sys;
  ignore (System.recover sys);
  Kv_app.refresh app;
  let netdrv = Option.get (Kernel.find_process (System.kernel sys) ~name:"netdrv") in
  let _net =
    Net_server.reattach (System.kernel sys) (System.manager sys) ~proc:netdrv
      ~deliver:(fun ~client:_ ~sent_ns:_ ~payload ->
        acked := Bytes.to_string payload :: !acked)
  in

  (* Every acknowledged key is present; the unacknowledged one is gone —
     and its client was never told otherwise. *)
  List.iter
    (fun key ->
      match Kv_app.get app ~key with
      | Some v -> Printf.printf "  %-14s -> %S (acked, survived)\n" key v
      | None -> Printf.printf "  %-14s -> MISSING\n" key)
    !acked;
  assert (List.for_all (fun key -> Kv_app.get app ~key <> None) !acked);
  assert (not (List.mem "user:mallory" !acked));
  assert (Kv_app.get app ~key:"user:mallory" = None);
  Printf.printf "unacked key rolled back, was never acknowledged: OK\n"
