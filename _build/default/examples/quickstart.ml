(* Quickstart: boot a persistent system, run a process that stores data in
   plain memory, checkpoint, pull the power, recover — the data written
   before the checkpoint is back, the data written after it is gone.

     dune exec examples/quickstart.exe
*)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel

let () =
  (* Boot TreeSLS: simulated NVM, the microkernel with its user-space
     services, and the checkpoint manager. *)
  let sys = System.boot () in
  let k = System.kernel sys in
  Printf.printf "booted: %d processes, clock at %d ns\n"
    (List.length (Kernel.processes k))
    (System.now_ns sys);

  (* Create a process and give it some heap. There is no file system and
     no persistence API: the application just writes memory. *)
  let proc = Kernel.create_process k ~name:"hello" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k proc ~pages:4 in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  let addr = vpn * psz in
  Kernel.write_bytes k proc ~vaddr:addr (Bytes.of_string "persistent greetings");

  (* One whole-system checkpoint: ~tens of microseconds of simulated
     stop-the-world time. *)
  let report = System.checkpoint sys in
  Printf.printf "checkpoint v%d took %.1f us (IPI %.1f, cap tree %.1f)\n"
    report.Treesls_ckpt.Report.version
    (float_of_int report.Treesls_ckpt.Report.stw_ns /. 1e3)
    (float_of_int report.Treesls_ckpt.Report.ipi_ns /. 1e3)
    (float_of_int report.Treesls_ckpt.Report.captree_ns /. 1e3);

  (* Overwrite the data *after* the checkpoint... *)
  Kernel.write_bytes k proc ~vaddr:addr (Bytes.of_string "doomed scribblings!!");

  (* ...and pull the power. *)
  let r = System.crash_and_recover sys in
  Printf.printf "recovered to v%d: %d objects restored, %d rolled back, %.1f us\n"
    r.Treesls_ckpt.Restore.version r.Treesls_ckpt.Restore.restored_objects
    r.Treesls_ckpt.Restore.dropped_objects
    (float_of_int r.Treesls_ckpt.Restore.restore_ns /. 1e3);

  (* The kernel handle changed across recovery; processes are re-derived
     from the restored capability tree. *)
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"hello") in
  let data = Kernel.read_bytes k proc ~vaddr:addr ~len:20 in
  Printf.printf "memory after recovery: %S\n" (Bytes.to_string data);
  assert (Bytes.to_string data = "persistent greetings");
  print_endline "quickstart OK"
