(* A long-running computation that survives repeated power failures with
   no snapshotting code of its own: the WordCount map-reduce job keeps its
   counters in plain memory; TreeSLS's 1000 Hz checkpoints bound any loss
   to one millisecond of work.

     dune exec examples/persistent_compute.exe
*)

module System = Treesls.System
module Phoenix = Treesls_apps.Phoenix
module Rng = Treesls_util.Rng

let () =
  let sys = System.boot ~interval_us:1000 () in
  let rng = Rng.create 2026L in
  let job = Phoenix.launch sys Phoenix.Wordcount in

  let crashes = 3 and slices_per_round = 400 in
  for round = 1 to crashes do
    for _ = 1 to slices_per_round do
      Phoenix.step job rng;
      ignore (System.tick sys)
    done;
    let before = System.version sys in
    System.crash sys;
    let r = System.recover sys in
    Phoenix.refresh job;
    Printf.printf "crash %d: recovered to checkpoint v%d (%d objects, %.0f us restore)\n"
      round r.Treesls_ckpt.Restore.version r.Treesls_ckpt.Restore.restored_objects
      (float_of_int r.Treesls_ckpt.Restore.restore_ns /. 1e3);
    assert (r.Treesls_ckpt.Restore.version = before)
  done;

  (* Finish the job after the final recovery. *)
  for _ = 1 to 100 do
    Phoenix.step job rng;
    ignore (System.tick sys)
  done;
  Printf.printf "job survived %d power failures; %.1f ms of simulated time elapsed\n" crashes
    (float_of_int (System.now_ns sys) /. 1e6);
  print_endline "persistent_compute OK"
