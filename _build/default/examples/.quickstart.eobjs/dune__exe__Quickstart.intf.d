examples/quickstart.mli:
