examples/eternal_log.ml: Bytes Option Printf Treesls Treesls_extsync Treesls_kernel Treesls_sim
