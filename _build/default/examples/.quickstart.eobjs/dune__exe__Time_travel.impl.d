examples/time_travel.ml: Bytes List Printf String Treesls Treesls_cap Treesls_ckpt Treesls_kernel Treesls_sim
