examples/kv_server.ml: Bytes List Option Printf Treesls Treesls_apps Treesls_extsync Treesls_kernel
