examples/persistent_compute.ml: Printf Treesls Treesls_apps Treesls_ckpt Treesls_util
