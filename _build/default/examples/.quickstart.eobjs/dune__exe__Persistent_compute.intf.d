examples/persistent_compute.mli:
