examples/quickstart.ml: Bytes List Option Printf Treesls Treesls_ckpt Treesls_kernel Treesls_sim
