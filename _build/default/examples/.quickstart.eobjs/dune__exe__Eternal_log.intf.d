examples/eternal_log.mli:
