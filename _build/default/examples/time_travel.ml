(* The eidetic extension (paper §8): keep every checkpoint version and
   navigate the system's history — memory contents included — like a
   time-travel debugger.

     dune exec examples/time_travel.exe
*)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Eidetic = Treesls_ckpt.Eidetic
module Snapshot = Treesls_ckpt.Snapshot

let () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let eid = Eidetic.attach ~max_versions:16 (System.manager sys) in

  let proc = Kernel.create_process k ~name:"subject" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k proc ~pages:2 in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  let region = List.nth proc.Kernel.vms.Treesls_cap.Kobj.vs_regions 2 in
  let pmo_id = region.Treesls_cap.Kobj.vr_pmo.Treesls_cap.Kobj.pmo_id in

  (* evolve the page across four checkpointed epochs *)
  List.iter
    (fun epoch ->
      Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string epoch);
      ignore (System.checkpoint sys))
    [ "epoch-A"; "epoch-B"; "epoch-C"; "epoch-D" ];

  Printf.printf "archived versions: %s\n"
    (String.concat ", " (List.map string_of_int (Eidetic.versions eid)));

  (* read the page at every archived version *)
  List.iter
    (fun v ->
      match Eidetic.page_at eid ~version:v ~pmo_id ~pno:0 with
      | Some bytes -> Printf.printf "  v%d: %S\n" v (Bytes.to_string (Bytes.sub bytes 0 7))
      | None -> Printf.printf "  v%d: (page did not exist)\n" v)
    (Eidetic.versions eid);

  (* the present still reads epoch-D; history is untouched *)
  let now = Kernel.read_bytes k proc ~vaddr:(vpn * psz) ~len:7 in
  assert (Bytes.to_string now = "epoch-D");
  (match Eidetic.page_at eid ~version:2 ~pmo_id ~pno:0 with
  | Some b -> assert (Bytes.to_string (Bytes.sub b 0 7) = "epoch-B")
  | None -> assert false);

  (* which objects changed between two versions? *)
  let changed = Eidetic.diff_objects eid ~from_version:2 ~to_version:3 in
  Printf.printf "objects changed v2 -> v3: %d (incl. the written PMO: %b)\n"
    (List.length changed) (List.mem pmo_id changed);

  let s = Eidetic.stats eid in
  Printf.printf "archive: %d versions, %d snapshots, %d page images (%.1f KiB)\n"
    s.Eidetic.archived_versions s.Eidetic.object_snapshots s.Eidetic.page_images
    (float_of_int s.Eidetic.page_bytes /. 1024.);
  print_endline "time_travel OK"
