(* Command-line driver for the TreeSLS simulator.

     treesls_cli census                      object census of a booted system
     treesls_cli run -w redis -n 20000       run a workload with 1ms checkpoints
     treesls_cli run -w memcached --crash 3  inject 3 power failures while running
     treesls_cli ckpt                        one checkpoint, print the breakdown
*)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module Census = Treesls_cap.Census
module Kobj = Treesls_cap.Kobj
module Rng = Treesls_util.Rng
open Cmdliner

let workloads =
  [
    ("memcached", `Memcached);
    ("redis", `Redis);
    ("sqlite", `Sqlite);
    ("leveldb", `Leveldb);
    ("rocksdb", `Rocksdb);
    ("wordcount", `Wordcount);
    ("kmeans", `Kmeans);
    ("pca", `Pca);
  ]

let launch sys rng = function
  | `Memcached ->
    let app = Treesls_apps.Kv_app.launch ~keys_hint:20_000 sys Treesls_apps.Kv_app.Memcached in
    ( (fun () -> Treesls_apps.Kv_app.set_i app (Rng.int rng 20_000)),
      fun () -> Treesls_apps.Kv_app.refresh app )
  | `Redis ->
    let app = Treesls_apps.Kv_app.launch ~keys_hint:20_000 sys Treesls_apps.Kv_app.Redis in
    ( (fun () -> Treesls_apps.Kv_app.set_i app (Rng.int rng 20_000)),
      fun () -> Treesls_apps.Kv_app.refresh app )
  | `Sqlite ->
    let app = Treesls_apps.Sqlite.launch sys in
    ((fun () -> Treesls_apps.Sqlite.step app rng), fun () -> Treesls_apps.Sqlite.refresh app)
  | `Leveldb ->
    let app = Treesls_apps.Lsm.launch sys Treesls_apps.Lsm.Leveldb in
    let n = ref 0 in
    ( (fun () ->
        Treesls_apps.Lsm.fillbatch app ~base:!n ~count:16;
        n := !n + 16),
      fun () -> Treesls_apps.Lsm.refresh app )
  | `Rocksdb ->
    let app = Treesls_apps.Lsm.launch sys Treesls_apps.Lsm.Rocksdb in
    let n = ref 0 in
    ( (fun () ->
        incr n;
        Treesls_apps.Lsm.put app ~key:(Printf.sprintf "k%08d" (Rng.int rng 50_000))
          ~value:(String.make 100 'v')),
      fun () -> Treesls_apps.Lsm.refresh app )
  | (`Wordcount | `Kmeans | `Pca) as kind ->
    let kind =
      match kind with
      | `Wordcount -> Treesls_apps.Phoenix.Wordcount
      | `Kmeans -> Treesls_apps.Phoenix.Kmeans
      | `Pca -> Treesls_apps.Phoenix.Pca
    in
    let app = Treesls_apps.Phoenix.launch sys kind in
    ((fun () -> Treesls_apps.Phoenix.step app rng), fun () -> Treesls_apps.Phoenix.refresh app)

let print_census sys =
  let c = Census.collect ~root:(Kernel.root (System.kernel sys)) in
  Printf.printf "cap groups    %d\nthreads       %d\nipc conns     %d\nnotifications %d\n"
    c.Census.cap_groups c.Census.threads c.Census.ipcs c.Census.notifications;
  Printf.printf "pmos          %d\nvm spaces     %d\nirqs          %d\napp pages     %d\n"
    c.Census.pmos c.Census.vmspaces c.Census.irqs c.Census.app_pages

let census_cmd =
  let run () =
    let sys = System.boot () in
    print_census sys
  in
  Cmd.v (Cmd.info "census" ~doc:"Boot the default system and print its object census")
    Term.(const run $ const ())

let ckpt_cmd =
  let run () =
    let sys = System.boot () in
    let r1 = System.checkpoint sys in
    let r2 = System.checkpoint sys in
    Format.printf "full:        %a@." Report.pp r1;
    Format.printf "incremental: %a@." Report.pp r2
  in
  Cmd.v (Cmd.info "ckpt" ~doc:"Take a full and an incremental checkpoint; print breakdowns")
    Term.(const run $ const ())

let run_cmd =
  let workload =
    Arg.(
      value
      & opt (enum workloads) `Memcached
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to run (memcached, redis, ...)")
  in
  let ops =
    Arg.(value & opt int 20_000 & info [ "n"; "ops" ] ~docv:"N" ~doc:"Operations to run")
  in
  let interval =
    Arg.(
      value & opt int 1000
      & info [ "i"; "interval-us" ] ~docv:"US" ~doc:"Checkpoint interval in microseconds (0 = off)")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crash" ] ~docv:"K" ~doc:"Inject K evenly spaced power failures")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Random seed") in
  let run workload ops interval crashes seed =
    let sys = System.boot ~interval_us:(max 1 interval) () in
    if interval = 0 then System.set_interval_us sys None;
    let rng = Rng.create (Int64.of_int seed) in
    let step, refresh = launch sys rng workload in
    let crash_every = if crashes > 0 then ops / (crashes + 1) else max_int in
    let t_host = Unix.gettimeofday () in
    for i = 1 to ops do
      step ();
      ignore (System.tick sys);
      if crashes > 0 && i mod crash_every = 0 && System.version sys > 0 then begin
        let r = System.crash_and_recover sys in
        refresh ();
        Printf.printf "crash at op %d: rolled back to v%d (%d objects)\n%!" i
          r.Treesls_ckpt.Restore.version r.Treesls_ckpt.Restore.restored_objects
      end
    done;
    let host = Unix.gettimeofday () -. t_host in
    let sim_ms = float_of_int (System.now_ns sys) /. 1e6 in
    let stats = System.stats sys in
    Printf.printf "%d ops in %.1f ms simulated (%.2f s host)\n" ops sim_ms host;
    Printf.printf "checkpoints: %d   page faults: %d (cow %d, alloc %d)   syscalls: %d\n"
      (System.version sys) stats.Kernel.page_faults stats.Kernel.cow_faults
      stats.Kernel.alloc_faults stats.Kernel.syscalls;
    (match Manager.last_report (System.manager sys) with
    | Some r -> Format.printf "last %a@." Report.pp r
    | None -> ());
    Printf.printf "checkpoint footprint: %.2f MiB\n"
      (float_of_int (Manager.checkpoint_bytes (System.manager sys)) /. 1048576.0)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a workload under periodic checkpointing")
    Term.(const run $ workload $ ops $ interval $ crashes $ seed)

let () =
  let doc = "TreeSLS whole-system persistent microkernel simulator" in
  exit (Cmd.eval (Cmd.group (Cmd.info "treesls_cli" ~doc) [ census_cmd; ckpt_cmd; run_cmd ]))
