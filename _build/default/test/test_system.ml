(* Whole-system integration tests: the paper's §7.2 functional claim, made
   precise — after any crash, the system state equals the state at the
   last committed checkpoint, exactly. Includes crash injection inside
   allocator operations (torn journal records) and model-based random
   testing against a shadow map. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Warea = Treesls_nvm.Warea
module Store = Treesls_nvm.Store
module Kv_app = Treesls_apps.Kv_app
module Kvstore = Treesls_apps.Kvstore
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- exact rollback: state equals last committed checkpoint ---- *)

let exact_rollback () =
  let sys = System.boot () in
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  (* committed state: keys 0..49 *)
  for i = 0 to 49 do
    Kv_app.set_i app i
  done;
  ignore (System.checkpoint sys);
  (* uncommitted: keys 50..79 and overwrites of 0..9 *)
  for i = 50 to 79 do
    Kv_app.set_i app i
  done;
  for i = 0 to 9 do
    Kv_app.set app ~key:(Printf.sprintf "key%08d" i) ~value:"OVERWRITTEN"
  done;
  let _ = System.crash_and_recover sys in
  Kv_app.refresh app;
  for i = 0 to 49 do
    check_bool (Printf.sprintf "key %d present" i) true (Kv_app.get_i app i <> None)
  done;
  for i = 50 to 79 do
    check_bool (Printf.sprintf "key %d rolled back" i) true (Kv_app.get_i app i = None)
  done;
  (* overwrites undone *)
  for i = 0 to 9 do
    check_bool "original value restored" true
      (Kv_app.get app ~key:(Printf.sprintf "key%08d" i) <> Some "OVERWRITTEN")
  done;
  check_int "count exact" 50 (Kvstore.count (Kv_app.kv app))

(* ---- work between checkpoints is bounded by the interval ---- *)

let loses_at_most_one_interval () =
  let sys = System.boot ~interval_us:1000 () in
  let app = Kv_app.launch ~keys_hint:20_000 sys Kv_app.Memcached in
  let committed = ref 0 in
  Manager.on_checkpoint (System.manager sys) (fun () -> ());
  let last_committed_i = ref 0 in
  let i = ref 0 in
  (* run with periodic checkpoints; remember op index at each commit *)
  while System.version sys < 6 do
    incr i;
    Kv_app.set_i app !i;
    (match System.tick sys with
    | Some _ ->
      last_committed_i := !i;
      committed := System.version sys
    | None -> ())
  done;
  let _ = System.crash_and_recover sys in
  Kv_app.refresh app;
  (* everything up to the last commit is present *)
  for j = 1 to !last_committed_i do
    check_bool "committed op present" true (Kv_app.get_i app j <> None)
  done;
  (* nothing after the crash-time op count can exist *)
  check_bool "nothing from the future" true (Kv_app.get_i app (!i + 1) = None)

(* ---- exited process reappears when rolling back past its exit ---- *)

let exit_rolled_back () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"phoenix-proc" ~threads:1 ~prio:5 in
  ignore (System.checkpoint sys);
  Kernel.exit_process k p;
  check_bool "gone before crash" true (Kernel.find_process k ~name:"phoenix-proc" = None);
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  check_bool "resurrected by rollback" true (Kernel.find_process k ~name:"phoenix-proc" <> None)

(* ---- exited process stays gone once the exit is checkpointed ---- *)

let exit_committed () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"really-gone" ~threads:1 ~prio:5 in
  ignore (System.checkpoint sys);
  Kernel.exit_process k p;
  ignore (System.checkpoint sys);
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  check_bool "stays gone" true (Kernel.find_process k ~name:"really-gone" = None)

(* ---- crash injected inside an allocator operation ---- *)

let crash_in_allocator phase () =
  let sys = System.boot () in
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  for i = 0 to 19 do
    Kv_app.set_i app i
  done;
  ignore (System.checkpoint sys);
  (* arm a torn journal record: the next page allocation crashes *)
  Warea.set_crash_plan (Store.warea (System.store sys)) (Some phase);
  (try
     for i = 20 to 2_000 do
       Kv_app.set_i app i
     done;
     Alcotest.fail "expected a crash"
   with Warea.Crashed _ -> ());
  System.crash sys;
  let _ = System.recover sys in
  Kv_app.refresh app;
  for i = 0 to 19 do
    check_bool "committed keys survive torn journal" true (Kv_app.get_i app i <> None)
  done;
  check_int "exactly the committed state" 20 (Kvstore.count (Kv_app.kv app));
  (* the system keeps working *)
  Kv_app.set_i app 99;
  ignore (System.checkpoint sys);
  check_bool "alive after recovery" true (Kv_app.get_i app 99 <> None)

(* ---- shared memory between processes ---- *)

let shared_pmo_cow () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let a = Kernel.create_process k ~name:"sharer-a" ~threads:1 ~prio:5 in
  let b = Kernel.create_process k ~name:"sharer-b" ~threads:1 ~prio:5 in
  let pmo =
    Treesls_cap.Kobj.make_pmo
      ~id:(Treesls_cap.Id_gen.next (Kernel.ids k))
      ~pages:2 ~kind:Treesls_cap.Kobj.Pmo_normal
  in
  let va = Kernel.map_shared k a pmo ~writable:true in
  let vb = Kernel.map_shared k b pmo ~writable:true in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  (* writes through either mapping are visible through the other *)
  Kernel.write_bytes k a ~vaddr:(va * psz) (Bytes.of_string "from-a");
  Alcotest.(check string) "b sees a's write" "from-a"
    (Bytes.to_string (Kernel.read_bytes k b ~vaddr:(vb * psz) ~len:6));
  ignore (System.checkpoint sys);
  (* both processes fault-and-write the same page in one interval: only
     one CoW backup is taken (the ORoot dedup), and the content is safe *)
  Kernel.write_bytes k a ~vaddr:(va * psz) (Bytes.of_string "AAAAAA");
  Kernel.write_bytes k b ~vaddr:(vb * psz) (Bytes.of_string "BBBBBB");
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let a = Option.get (Kernel.find_process k ~name:"sharer-a") in
  let b = Option.get (Kernel.find_process k ~name:"sharer-b") in
  Alcotest.(check string) "rolled back (via a)" "from-a"
    (Bytes.to_string (Kernel.read_bytes k a ~vaddr:(va * psz) ~len:6));
  Alcotest.(check string) "rolled back (via b)" "from-a"
    (Bytes.to_string (Kernel.read_bytes k b ~vaddr:(vb * psz) ~len:6));
  (* still shared after recovery *)
  Kernel.write_bytes k b ~vaddr:(vb * psz) (Bytes.of_string "post-x");
  Alcotest.(check string) "still shared" "post-x"
    (Bytes.to_string (Kernel.read_bytes k a ~vaddr:(va * psz) ~len:6))

(* ---- ping-pong (paper 7.2's second functional program) ---- *)

let ping_pong () =
  let sys = System.boot ~interval_us:1000 () in
  let k = System.kernel sys in
  let ping = Kernel.create_process k ~name:"ping" ~threads:1 ~prio:5 in
  let pong = Kernel.create_process k ~name:"pong" ~threads:1 ~prio:5 in
  let conn = Treesls_kernel.Ipc.create_conn k ~client:ping ~server:pong in
  let register () =
    Treesls_kernel.Ipc.register_handler (System.kernel sys) conn (fun b ->
        Bytes.of_string ("pong:" ^ Bytes.to_string b))
  in
  register ();
  for i = 1 to 500 do
    let reply =
      Treesls_kernel.Ipc.call (System.kernel sys) conn (Bytes.of_string (string_of_int i))
    in
    Alcotest.(check string) "reply" ("pong:" ^ string_of_int i) (Bytes.to_string reply);
    ignore (System.tick sys)
  done;
  let calls_before = conn.Treesls_cap.Kobj.ic_calls in
  ignore (System.checkpoint sys);
  let _ = System.crash_and_recover sys in
  register ();
  (* the connection's served-call counter is part of the checkpointed
     state and survived *)
  check_int "call count restored" calls_before conn.Treesls_cap.Kobj.ic_calls |> ignore;
  (* note: [conn] still points at the pre-crash object; re-find it *)
  let k = System.kernel sys in
  let ping = Option.get (Kernel.find_process k ~name:"ping") in
  let restored = ref None in
  Treesls_cap.Kobj.iter_caps
    (fun _ c ->
      match c.Treesls_cap.Kobj.target with
      | Treesls_cap.Kobj.Ipc_conn ic -> restored := Some ic
      | _ -> ())
    ping.Kernel.cg;
  match !restored with
  | Some ic ->
    check_int "restored counter" calls_before ic.Treesls_cap.Kobj.ic_calls;
    Treesls_kernel.Ipc.register_handler k ic (fun b -> b);
    let echo = Treesls_kernel.Ipc.call k ic (Bytes.of_string "again") in
    Alcotest.(check string) "ipc works after recovery" "again" (Bytes.to_string echo)
  | None -> Alcotest.fail "connection lost"

(* ---- model-based random crash testing ---- *)

let prop_crash_equals_committed_model =
  QCheck.Test.make ~name:"system: post-recovery state = committed model" ~count:12
    QCheck.(pair (int_bound 1000) (int_range 20 150))
    (fun (seed, crash_after) ->
      let sys = System.boot ~interval_us:500 () in
      let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
      let rng = Rng.create (Int64.of_int seed) in
      let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
      let committed = ref (Hashtbl.copy model) in
      Manager.on_checkpoint (System.manager sys) (fun () -> committed := Hashtbl.copy model);
      (* random ops until the crash point *)
      for _ = 1 to crash_after do
        let key = Printf.sprintf "k%03d" (Rng.int rng 200) in
        (match Rng.int rng 3 with
        | 0 | 1 ->
          let value = Printf.sprintf "v%d" (Rng.int rng 100000) in
          Kv_app.set app ~key ~value;
          Hashtbl.replace model key value
        | _ ->
          ignore (Kv_app.del app ~key);
          Hashtbl.remove model key);
        ignore (System.tick sys)
      done;
      if System.version sys = 0 then ignore (System.checkpoint sys);
      System.crash sys;
      ignore (System.recover sys);
      Kv_app.refresh app;
      (* every key in the committed model is present with the right value;
         no key outside it exists *)
      Hashtbl.fold
        (fun key value acc -> acc && Kv_app.get app ~key = Some value)
        !committed true
      && Kvstore.count (Kv_app.kv app) = Hashtbl.length !committed)

let prop_repeated_crashes =
  QCheck.Test.make ~name:"system: repeated crash/recover cycles stay consistent" ~count:6
    (QCheck.int_bound 1000)
    (fun seed ->
      let sys = System.boot ~interval_us:500 () in
      let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
      let rng = Rng.create (Int64.of_int seed) in
      let model = Hashtbl.create 64 in
      let committed = ref (Hashtbl.copy model) in
      Manager.on_checkpoint (System.manager sys) (fun () -> committed := Hashtbl.copy model);
      let ok = ref true in
      for _round = 1 to 4 do
        for _ = 1 to 30 + Rng.int rng 50 do
          let key = Printf.sprintf "k%03d" (Rng.int rng 100) in
          let value = Printf.sprintf "v%d" (Rng.int rng 1000) in
          Kv_app.set app ~key ~value;
          Hashtbl.replace model key value;
          ignore (System.tick sys)
        done;
        if System.version sys = 0 then ignore (System.checkpoint sys);
        System.crash sys;
        ignore (System.recover sys);
        Kv_app.refresh app;
        (* resync the model to the recovered (committed) state *)
        Hashtbl.reset model;
        Hashtbl.iter (Hashtbl.replace model) !committed;
        Manager.on_checkpoint (System.manager sys) (fun () -> committed := Hashtbl.copy model);
        Hashtbl.iter (fun k v -> if Kv_app.get app ~key:k <> Some v then ok := false) !committed
      done;
      !ok)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_crash_equals_committed_model; prop_repeated_crashes ]

let () =
  Alcotest.run "system"
    [
      ( "rollback",
        [
          Alcotest.test_case "exact rollback" `Quick exact_rollback;
          Alcotest.test_case "loses at most one interval" `Quick loses_at_most_one_interval;
          Alcotest.test_case "exit rolled back" `Quick exit_rolled_back;
          Alcotest.test_case "exit committed stays" `Quick exit_committed;
          Alcotest.test_case "shared PMO copy-on-write" `Quick shared_pmo_cow;
          Alcotest.test_case "ping-pong across crash" `Quick ping_pong;
        ] );
      ( "torn-journal",
        [
          Alcotest.test_case "crash before-log" `Quick (crash_in_allocator Warea.Before_log);
          Alcotest.test_case "crash after-log" `Quick (crash_in_allocator Warea.After_log);
          Alcotest.test_case "crash mid-apply" `Quick (crash_in_allocator Warea.Mid_apply);
          Alcotest.test_case "crash after-apply" `Quick (crash_in_allocator Warea.After_apply);
        ] );
      ("properties", qsuite);
    ]
