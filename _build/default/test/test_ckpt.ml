(* Tests for the checkpoint manager: snapshots, ORoots, versioned page
   checkpoints (the §4.2/§4.3.3 rules), the STW procedure, GC, restore. *)

module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Rights = Treesls_cap.Rights
module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store
module Global_meta = Treesls_nvm.Global_meta
module Clock = Treesls_sim.Clock
module Snapshot = Treesls_ckpt.Snapshot
module Oroot = Treesls_ckpt.Oroot
module Ckpt_page = Treesls_ckpt.Ckpt_page
module Active_list = Treesls_ckpt.Active_list
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module State = Treesls_ckpt.State
module Restore = Treesls_ckpt.Restore
module System = Treesls.System
module Census = Treesls_cap.Census
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_store () = Store.create ~clock:(Clock.create ()) ~nvm_pages:256 ~dram_pages:32 ()

(* ---- Snapshot ---- *)

let snapshot_thread () =
  let th = Kobj.make_thread ~id:7 ~prio:3 in
  th.Kobj.th_regs.(0) <- 99;
  th.Kobj.th_state <- Kobj.Blocked_notif 4;
  match Snapshot.take (Kobj.Thread th) with
  | Snapshot.S_thread s ->
    check_int "reg captured" 99 s.regs.(0);
    check_bool "state" true (s.state = Kobj.Blocked_notif 4);
    (* the snapshot must be a copy, not an alias *)
    th.Kobj.th_regs.(0) <- 1;
    check_int "copy isolated" 99 s.regs.(0)
  | _ -> Alcotest.fail "wrong kind"

let snapshot_cap_group () =
  let g = Kobj.make_cap_group ~id:1 ~name:"g" in
  let th = Kobj.Thread (Kobj.make_thread ~id:2 ~prio:1) in
  ignore (Kobj.install g { Kobj.target = th; rights = Rights.rw });
  match Snapshot.take (Kobj.Cap_group g) with
  | Snapshot.S_cap_group s ->
    check_int "one slot" 1 (List.length s.slots);
    (match s.slots with
    | [ (slot, id, rights) ] ->
      check_int "slot" 0 slot;
      check_int "target id" 2 id;
      check_bool "rights" true (rights = Rights.rw)
    | _ -> Alcotest.fail "slots");
    Alcotest.(check (list int)) "references" [ 2 ] (Snapshot.references (Snapshot.take (Kobj.Cap_group g)))
  | _ -> Alcotest.fail "wrong kind"

let snapshot_vmspace_refs () =
  let vms = Kobj.make_vmspace ~id:5 in
  let pmo = Kobj.make_pmo ~id:9 ~pages:2 ~kind:Kobj.Pmo_normal in
  vms.Kobj.vs_regions <- [ { Kobj.vr_vpn = 10; vr_pages = 2; vr_pmo = pmo; vr_writable = true } ];
  let s = Snapshot.take (Kobj.Vmspace vms) in
  Alcotest.(check (list int)) "pmo referenced" [ 9 ] (Snapshot.references s);
  check_bool "kind" true (Snapshot.kind s = Kobj.Vmspace_k)

let snapshot_eternal_frames () =
  let pmo = Kobj.make_pmo ~id:3 ~pages:2 ~kind:Kobj.Pmo_eternal in
  Radix.set pmo.Kobj.pmo_radix 0 (Paddr.nvm 11);
  Radix.set pmo.Kobj.pmo_radix 1 (Paddr.nvm 12);
  match Snapshot.take (Kobj.Pmo pmo) with
  | Snapshot.S_pmo s -> check_int "frames recorded" 2 (List.length s.eternal_frames)
  | _ -> Alcotest.fail "wrong kind"

let snapshot_bytes_positive () =
  List.iter
    (fun obj -> check_bool "positive size" true (Snapshot.bytes (Snapshot.take obj) > 0))
    [
      Kobj.Thread (Kobj.make_thread ~id:1 ~prio:1);
      Kobj.Notification (Kobj.make_notification ~id:2);
      Kobj.Irq_notification (Kobj.make_irq_notification ~id:3 ~line:7);
      Kobj.Ipc_conn (Kobj.make_ipc_conn ~id:4);
    ]

(* ---- Oroot ---- *)

let oroot_double_buffer () =
  let o = Oroot.create ~obj_id:1 ~kind:Kobj.Thread_k ~version:1 ~has_pages:false in
  let snap v =
    Snapshot.S_notif { count = v; waiters = [] }
  in
  Oroot.save o ~version:1 (snap 1);
  Oroot.save o ~version:2 (snap 2);
  (* both versions available *)
  check_bool "v1" true (Oroot.at o ~version:1 <> None);
  check_bool "v2" true (Oroot.at o ~version:2 <> None);
  Oroot.save o ~version:3 (snap 3);
  (* v1 evicted (written into the staler slot), v2 and v3 remain *)
  check_bool "v1 evicted" true (Oroot.at o ~version:1 = None);
  check_bool "v2 kept" true (Oroot.at o ~version:2 <> None);
  check_bool "v3 kept" true (Oroot.at o ~version:3 <> None)

let oroot_latest_le () =
  let o = Oroot.create ~obj_id:1 ~kind:Kobj.Thread_k ~version:1 ~has_pages:false in
  let snap v = Snapshot.S_notif { count = v; waiters = [] } in
  Oroot.save o ~version:4 (snap 4);
  Oroot.save o ~version:7 (snap 7);
  (match Oroot.latest_le o ~version:5 with
  | Some (v, _) -> check_int "picks 4" 4 v
  | None -> Alcotest.fail "none");
  (match Oroot.latest_le o ~version:9 with
  | Some (v, _) -> check_int "picks 7" 7 v
  | None -> Alcotest.fail "none");
  check_bool "below both" true (Oroot.latest_le o ~version:3 = None)

let oroot_pages_exn () =
  let o = Oroot.create ~obj_id:1 ~kind:Kobj.Pmo_k ~version:1 ~has_pages:true in
  ignore (Oroot.pages_exn o);
  let o2 = Oroot.create ~obj_id:2 ~kind:Kobj.Thread_k ~version:1 ~has_pages:false in
  Alcotest.check_raises "no pages" (Invalid_argument "Oroot.pages_exn: not a page-bearing object")
    (fun () -> ignore (Oroot.pages_exn o2))

(* ---- Ckpt_page: CoW backup ---- *)

let write_marker store paddr marker =
  Store.write_page store paddr ~off:0 (Bytes.of_string marker)

let read_marker store paddr = Bytes.to_string (Store.read_page store paddr ~off:0 ~len:2)

let cow_backup_saves_preimage () =
  let store = mk_store () in
  let t = Ckpt_page.create () in
  let runtime = Store.alloc_page store in
  write_marker store runtime "AA";
  let cp = Ckpt_page.ensure store t ~pno:0 ~born_ver:1 in
  check_bool "copied" true (Ckpt_page.cow_backup store t ~runtime ~pno:0 ~global:5);
  check_int "stamped global" 5 cp.Ckpt_page.b1_ver;
  write_marker store runtime "A'";
  (match cp.Ckpt_page.b1 with
  | Some b -> Alcotest.(check string) "pre-image preserved" "AA" (read_marker store b)
  | None -> Alcotest.fail "no backup");
  (* second fault in the same interval is a no-op *)
  check_bool "skip duplicate" false (Ckpt_page.cow_backup store t ~runtime ~pno:0 ~global:5)

let cow_backup_skips_dram () =
  let store = mk_store () in
  let t = Ckpt_page.create () in
  ignore (Ckpt_page.ensure store t ~pno:0 ~born_ver:1);
  check_bool "dram runtime not CoW-backed" false
    (Ckpt_page.cow_backup store t ~runtime:(Paddr.dram 3) ~pno:0 ~global:5)

let cow_backup_unmanaged_page () =
  let store = mk_store () in
  let t = Ckpt_page.create () in
  check_bool "no record, no copy" false
    (Ckpt_page.cow_backup store t ~runtime:(Store.alloc_page store) ~pno:0 ~global:5)

(* ---- Ckpt_page: restore rule (refined §4.3.3) ---- *)

let mk_cp ~born ~b1 ~b1v ~b2 ~b2v =
  { Ckpt_page.born_ver = born; b1; b1_ver = b1v; b2; b2_ver = b2v }

let restore_case_1_backup_at_global () =
  (* Fig 6(a) case 1: backup stamped global wins over the runtime *)
  let cp = mk_cp ~born:1 ~b1:(Some (Paddr.nvm 1)) ~b1v:5 ~b2:None ~b2v:0 in
  match Ckpt_page.restore_choice cp ~global:5 ~runtime:(Some (Paddr.nvm 9)) with
  | `Use p -> check_bool "uses backup" true (Paddr.equal p (Paddr.nvm 1))
  | `Drop -> Alcotest.fail "dropped"

let restore_case_2_stale_backup () =
  (* Fig 6(a) case 2: stale backup -> the runtime page is the consistent copy *)
  let cp = mk_cp ~born:1 ~b1:(Some (Paddr.nvm 1)) ~b1v:3 ~b2:None ~b2v:0 in
  match Ckpt_page.restore_choice cp ~global:5 ~runtime:(Some (Paddr.nvm 9)) with
  | `Use p -> check_bool "uses runtime" true (Paddr.equal p (Paddr.nvm 9))
  | `Drop -> Alcotest.fail "dropped"

let restore_case_3_no_backup () =
  (* Fig 6(a) case 3: never modified -> runtime *)
  let cp = mk_cp ~born:1 ~b1:None ~b1v:0 ~b2:None ~b2v:0 in
  match Ckpt_page.restore_choice cp ~global:5 ~runtime:(Some (Paddr.nvm 9)) with
  | `Use p -> check_bool "uses runtime" true (Paddr.equal p (Paddr.nvm 9))
  | `Drop -> Alcotest.fail "dropped"

let restore_born_after_global_dropped () =
  let cp = mk_cp ~born:6 ~b1:None ~b1v:0 ~b2:None ~b2v:0 in
  check_bool "dropped" true
    (Ckpt_page.restore_choice cp ~global:5 ~runtime:(Some (Paddr.nvm 9)) = `Drop)

let restore_inflight_copy_skipped () =
  (* A stop-and-copy stamped global+1 (uncommitted) must NOT win; the
     highest slot <= global must. This is the refinement over the paper's
     bare "higher version wins". *)
  let cp =
    mk_cp ~born:1 ~b1:(Some (Paddr.nvm 1)) ~b1v:6 ~b2:(Some (Paddr.nvm 2)) ~b2v:4
  in
  match Ckpt_page.restore_choice cp ~global:5 ~runtime:(Some (Paddr.dram 3)) with
  | `Use p -> check_bool "uses committed slot" true (Paddr.equal p (Paddr.nvm 2))
  | `Drop -> Alcotest.fail "dropped"

let restore_dram_runtime_highest_committed () =
  (* CPP: DRAM runtime lost; highest committed backup wins *)
  let cp =
    mk_cp ~born:1 ~b1:(Some (Paddr.nvm 1)) ~b1v:4 ~b2:(Some (Paddr.nvm 2)) ~b2v:5
  in
  match Ckpt_page.restore_choice cp ~global:7 ~runtime:None with
  | `Use p -> check_bool "highest committed" true (Paddr.equal p (Paddr.nvm 2))
  | `Drop -> Alcotest.fail "dropped"

let restore_mid_migration_lost_dram () =
  (* NVM->DRAM migration crashed before commit: runtime is DRAM (lost),
     the donated old runtime page is stamped global+1 and must be usable
     only if nothing committed exists... here b1 has the committed CoW
     pre-image at global. *)
  let cp =
    mk_cp ~born:1 ~b1:(Some (Paddr.nvm 1)) ~b1v:5 ~b2:(Some (Paddr.nvm 2)) ~b2v:6
  in
  match Ckpt_page.restore_choice cp ~global:5 ~runtime:(Some (Paddr.dram 8)) with
  | `Use p -> check_bool "committed CoW backup" true (Paddr.equal p (Paddr.nvm 1))
  | `Drop -> Alcotest.fail "dropped"

(* ---- Ckpt_page: stop-and-copy + migrations ---- *)

let stop_and_copy_alternates () =
  let store = mk_store () in
  let t = Ckpt_page.create () in
  let cp = Ckpt_page.ensure store t ~pno:0 ~born_ver:1 in
  cp.Ckpt_page.b1 <- Some (Store.alloc_page store);
  cp.Ckpt_page.b1_ver <- 4;
  cp.Ckpt_page.b2 <- Some (Store.alloc_page store);
  cp.Ckpt_page.b2_ver <- 5;
  let dram = Option.get (Store.alloc_dram_page store) in
  write_marker store dram "D1";
  Ckpt_page.stop_and_copy_dram store t ~runtime:dram ~pno:0 ~new_ver:6;
  (* the staler slot (b1, v4) must have been overwritten *)
  check_int "b1 restamped" 6 cp.Ckpt_page.b1_ver;
  check_int "b2 untouched" 5 cp.Ckpt_page.b2_ver;
  Alcotest.(check string) "content copied" "D1" (read_marker store (Option.get cp.Ckpt_page.b1));
  (* next round goes to the other slot *)
  write_marker store dram "D2";
  Ckpt_page.stop_and_copy_dram store t ~runtime:dram ~pno:0 ~new_ver:7;
  check_int "b2 restamped" 7 cp.Ckpt_page.b2_ver;
  Alcotest.(check string) "second copy" "D2" (read_marker store (Option.get cp.Ckpt_page.b2))

let migration_cycle () =
  let store = mk_store () in
  let t = Ckpt_page.create () in
  let cp = Ckpt_page.ensure store t ~pno:0 ~born_ver:1 in
  let runtime = Store.alloc_page store in
  write_marker store runtime "RR";
  (* NVM -> DRAM: the old runtime becomes backup b2 *)
  Ckpt_page.attach_runtime_as_backup t ~pno:0 ~old_runtime:runtime ~new_ver:3;
  check_int "b2 stamped" 3 cp.Ckpt_page.b2_ver;
  check_bool "b2 is old runtime" true (cp.Ckpt_page.b2 = Some runtime);
  (* DRAM -> NVM: b2 detaches back into the runtime role *)
  cp.Ckpt_page.b1 <- Some (Store.alloc_page store);
  cp.Ckpt_page.b1_ver <- 2;
  let dram = Option.get (Store.alloc_dram_page store) in
  write_marker store dram "DD";
  let back = Ckpt_page.detach_runtime_slot store t ~pno:0 ~latest:(Some dram) in
  check_bool "returns the b2 frame" true (Paddr.equal back runtime);
  check_bool "b2 cleared" true (cp.Ckpt_page.b2 = None);
  check_int "b2 ver zero" 0 cp.Ckpt_page.b2_ver;
  (* b2 was newest (3 > 2): content NOT recopied, stays at runtime image *)
  Alcotest.(check string) "kept newest content" "RR" (read_marker store back)

let detach_copies_when_stale () =
  let store = mk_store () in
  let t = Ckpt_page.create () in
  let cp = Ckpt_page.ensure store t ~pno:0 ~born_ver:1 in
  cp.Ckpt_page.b1 <- Some (Store.alloc_page store);
  cp.Ckpt_page.b1_ver <- 9;
  let b2 = Store.alloc_page store in
  write_marker store b2 "OL";
  cp.Ckpt_page.b2 <- Some b2;
  cp.Ckpt_page.b2_ver <- 2;
  let dram = Option.get (Store.alloc_dram_page store) in
  write_marker store dram "NW";
  let back = Ckpt_page.detach_runtime_slot store t ~pno:0 ~latest:(Some dram) in
  Alcotest.(check string) "stale b2 refreshed from runtime" "NW" (read_marker store back)

let normalize_keeps_spare () =
  let store = mk_store () in
  let free0 = Store.nvm_pages_free store in
  let t = Ckpt_page.create () in
  let cp = Ckpt_page.ensure store t ~pno:0 ~born_ver:1 in
  let keep = Store.alloc_page store in
  let other = Store.alloc_page store in
  cp.Ckpt_page.b1 <- Some keep;
  cp.Ckpt_page.b1_ver <- 5;
  cp.Ckpt_page.b2 <- Some other;
  cp.Ckpt_page.b2_ver <- 4;
  Ckpt_page.normalize_after_restore store cp ~keep ~runtime:None;
  check_bool "spare retained as b1" true (cp.Ckpt_page.b1 = Some other);
  check_int "spare invalidated" 0 cp.Ckpt_page.b1_ver;
  check_bool "b2 runtime marker" true (cp.Ckpt_page.b2 = None);
  (* keep + spare still allocated, nothing freed, nothing leaked *)
  check_int "two pages held" (free0 - 2) (Store.nvm_pages_free store)

(* ---- Active list ---- *)

let active_threshold () =
  let al = Active_list.create { Active_list.hot_threshold = 2; idle_limit = 4; max_cached = 10 } in
  let pmo = Kobj.make_pmo ~id:1 ~pages:4 ~kind:Kobj.Pmo_normal in
  Active_list.record_fault al pmo 0;
  check_int "below threshold" 0 (List.length (Active_list.entries al));
  Active_list.record_fault al pmo 0;
  check_int "appended at threshold" 1 (List.length (Active_list.entries al))

let active_cap () =
  let al = Active_list.create { Active_list.hot_threshold = 1; idle_limit = 4; max_cached = 2 } in
  let pmo = Kobj.make_pmo ~id:1 ~pages:8 ~kind:Kobj.Pmo_normal in
  for pno = 0 to 5 do
    Active_list.record_fault al pmo pno
  done;
  check_int "capped" 2 (List.length (Active_list.entries al))

let active_sublists_partition () =
  let al = Active_list.create { Active_list.hot_threshold = 1; idle_limit = 4; max_cached = 100 } in
  let pmo = Kobj.make_pmo ~id:1 ~pages:16 ~kind:Kobj.Pmo_normal in
  for pno = 0 to 9 do
    Active_list.record_fault al pmo pno
  done;
  let subs = Active_list.sublists al ~cores:3 in
  check_int "three buckets" 3 (Array.length subs);
  check_int "all entries covered" 10 (Array.fold_left (fun a l -> a + List.length l) 0 subs)

let active_drop_and_compact () =
  let al = Active_list.create { Active_list.hot_threshold = 1; idle_limit = 4; max_cached = 10 } in
  let pmo = Kobj.make_pmo ~id:1 ~pages:4 ~kind:Kobj.Pmo_normal in
  Active_list.record_fault al pmo 0;
  (match Active_list.entries al with
  | [ e ] ->
    Active_list.drop al e;
    check_int "dropped" 0 (List.length (Active_list.entries al));
    Active_list.compact al
  | _ -> Alcotest.fail "one entry expected");
  (* hotness cleared: takes a full threshold count to come back *)
  Active_list.record_fault al pmo 0;
  check_int "needs re-warming" 1 (List.length (Active_list.entries al))

(* ---- STW checkpoint integration ---- *)

let ckpt_version_and_reports () =
  let sys = System.boot () in
  let r1 = System.checkpoint sys in
  check_int "v1" 1 r1.Report.version;
  check_bool "objects walked" true (r1.Report.objects_walked > 100);
  check_int "all full on first" r1.Report.objects_walked r1.Report.full_objects;
  let r2 = System.checkpoint sys in
  check_int "v2" 2 r2.Report.version;
  check_int "no fulls on second" 0 r2.Report.full_objects;
  check_bool "incremental cheaper" true (r2.Report.captree_ns < r1.Report.captree_ns);
  check_int "meta version" 2 (Global_meta.version (Store.meta (System.store sys)))

let ckpt_cow_after_protect () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:2 in
  Kernel.touch_write k p ~vpn;
  ignore (System.checkpoint sys);
  let cow0 = (Kernel.stats k).Kernel.cow_faults in
  Kernel.touch_write k p ~vpn;
  check_int "write after ckpt faults" (cow0 + 1) (Kernel.stats k).Kernel.cow_faults;
  Kernel.touch_write k p ~vpn;
  check_int "second write no fault" (cow0 + 1) (Kernel.stats k).Kernel.cow_faults

let ckpt_gc_dead_objects () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"dying" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:2 in
  Kernel.touch_write k p ~vpn;
  ignore (System.checkpoint sys);
  let free_mid = Store.nvm_pages_free (System.store sys) in
  Kernel.exit_process k p;
  ignore (System.checkpoint sys);
  (* the process's pages (stack, touched heap page, backups) returned *)
  check_bool "pages freed by GC" true (Store.nvm_pages_free (System.store sys) > free_mid)

let ckpt_eternal_not_tracked () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"drv" ~threads:1 ~prio:5 in
  let pmo = Kernel.make_eternal_pmo k ~pages:2 in
  let vpn = Kernel.map_shared k p pmo ~writable:true in
  ignore (System.checkpoint sys);
  let cow0 = (Kernel.stats k).Kernel.cow_faults in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  Kernel.write_bytes k p ~vaddr:(vpn * psz) (Bytes.of_string "e");
  Kernel.write_bytes k p ~vaddr:(vpn * psz) (Bytes.of_string "f");
  (* eternal pages never get CoW backups (their first touch may still be a
     soft fault, but no backup copies happen) *)
  ignore cow0;
  let mgr = System.manager sys in
  let st = Manager.state mgr in
  match Hashtbl.find_opt st.State.oroots pmo.Kobj.pmo_id with
  | Some o -> check_bool "no page table for eternal pmo" true (o.Oroot.pages = None)
  | None -> Alcotest.fail "eternal pmo not checkpointed"

let ckpt_callbacks_fire () =
  let sys = System.boot () in
  let fired = ref 0 in
  Manager.on_checkpoint (System.manager sys) (fun () -> incr fired);
  ignore (System.checkpoint sys);
  ignore (System.checkpoint sys);
  check_int "both checkpoints" 2 !fired

let ckpt_fresh_page_born_version () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:4 in
  ignore (System.checkpoint sys);
  (* page created in interval ending at v2 *)
  Kernel.touch_write k p ~vpn;
  ignore (System.checkpoint sys);
  let st = Manager.state (System.manager sys) in
  let region = List.nth p.Kernel.vms.Kobj.vs_regions 2 in
  let oroot = Hashtbl.find st.State.oroots region.Kobj.vr_pmo.Kobj.pmo_id in
  match Ckpt_page.find (Oroot.pages_exn oroot) 0 with
  | Some cp -> check_int "born at v2" 2 cp.Ckpt_page.born_ver
  | None -> Alcotest.fail "no cp record"

(* ---- tick policy ---- *)

let tick_policy () =
  let sys = System.boot ~interval_us:100 () in
  check_bool "not due immediately" true (System.tick sys = None);
  Clock.advance (System.clock sys) 150_000;
  check_bool "due after interval" true (System.tick sys <> None);
  check_bool "not due again" true (System.tick sys = None);
  System.set_interval_us sys None;
  Clock.advance (System.clock sys) 1_000_000;
  check_bool "disabled" true (System.tick sys = None)

(* ---- full restore ---- *)

let restore_rolls_back_object_state () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let n = Kernel.create_notification k p in
  n.Kobj.nt_count <- 3;
  ignore (System.checkpoint sys);
  n.Kobj.nt_count <- 42;
  let report = System.crash_and_recover sys in
  check_int "restored version" 1 report.Restore.version;
  let k = System.kernel sys in
  let p = Option.get (Kernel.find_process k ~name:"app") in
  let found = ref None in
  Kobj.iter_caps
    (fun _ c ->
      match c.Kobj.target with
      | Kobj.Notification n2 when n2.Kobj.nt_id = n.Kobj.nt_id -> found := Some n2
      | _ -> ())
    p.Kernel.cg;
  match !found with
  | Some n2 -> check_int "count rolled back" 3 n2.Kobj.nt_count
  | None -> Alcotest.fail "notification lost"

let restore_drops_uncheckpointed_process () =
  let sys = System.boot () in
  ignore (System.checkpoint sys);
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"late" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:2 in
  Kernel.touch_write k p ~vpn;
  let free_before_crash = Store.nvm_pages_free (System.store sys) in
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  check_bool "late process gone" true (Kernel.find_process k ~name:"late" = None);
  (* its page allocations were rolled back *)
  check_bool "frames rolled back" true
    (Store.nvm_pages_free (System.store sys) > free_before_crash)

let restore_without_checkpoint_fails () =
  let sys = System.boot () in
  System.crash sys;
  Alcotest.check_raises "no checkpoint" Restore.No_checkpoint (fun () ->
      ignore (System.recover sys))

let restore_preserves_census () =
  let sys = System.boot () in
  let before = Census.collect ~root:(Kernel.root (System.kernel sys)) in
  ignore (System.checkpoint sys);
  let _ = System.crash_and_recover sys in
  let after = Census.collect ~root:(Kernel.root (System.kernel sys)) in
  check_int "cap groups" before.Census.cap_groups after.Census.cap_groups;
  check_int "threads" before.Census.threads after.Census.threads;
  check_int "pmos" before.Census.pmos after.Census.pmos;
  check_int "vmspaces" before.Census.vmspaces after.Census.vmspaces;
  check_int "ipcs" before.Census.ipcs after.Census.ipcs

let restore_twice () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:2 in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  Kernel.write_bytes k (Option.get (Kernel.find_process k ~name:"app")) ~vaddr:(vpn * psz)
    (Bytes.of_string "v1");
  ignore (System.checkpoint sys);
  let _ = System.crash_and_recover sys in
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let p = Option.get (Kernel.find_process k ~name:"app") in
  Alcotest.(check string) "data survives two crashes" "v1"
    (Bytes.to_string (Kernel.read_bytes k p ~vaddr:(vpn * psz) ~len:2))

let restore_no_page_leak () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:8 in
  for i = 0 to 7 do
    Kernel.touch_write k p ~vpn:(vpn + i)
  done;
  ignore (System.checkpoint sys);
  let free_ref = ref (Store.nvm_pages_free (System.store sys)) in
  (* repeated crash/recover cycles must not consume NVM monotonically *)
  for _ = 1 to 5 do
    let _ = System.crash_and_recover sys in
    let free = Store.nvm_pages_free (System.store sys) in
    check_bool "no monotonic leak" true (free >= !free_ref - 8);
    free_ref := free
  done

(* ---- page-level hybrid-copy crash property ----

   Random interleavings of page writes and checkpoints, with hot-page
   thresholds tuned so pages migrate NVM->DRAM->NVM during the run, then a
   crash at a random instant: every page's recovered content must equal
   its content at the last committed checkpoint. *)

let prop_hybrid_page_contents =
  QCheck.Test.make ~name:"hybrid: page contents survive random crash" ~count:25
    QCheck.(pair (int_bound 10_000) (int_range 10 80))
    (fun (seed, steps) ->
      let active_cfg =
        { Active_list.hot_threshold = 1; idle_limit = 2; max_cached = 8 }
      in
      let sys = System.boot ~active_cfg () in
      let k = System.kernel sys in
      let proc = Kernel.create_process k ~name:"pages" ~threads:1 ~prio:5 in
      let npages = 6 in
      let vpn0 = Kernel.grow_heap k proc ~pages:npages in
      let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
      let rng = Rng.create (Int64.of_int seed) in
      (* live model of page contents + the committed view *)
      let live = Array.make npages "" in
      let committed = ref (Array.copy live) in
      Manager.on_checkpoint (System.manager sys) (fun () -> committed := Array.copy live);
      for step = 1 to steps do
        match Rng.int rng 4 with
        | 0 | 1 ->
          (* write a fresh marker to a random page *)
          let p = Rng.int rng npages in
          let marker = Printf.sprintf "s%04d-p%d" step p in
          Kernel.write_bytes k (Option.get (Kernel.find_process k ~name:"pages"))
            ~vaddr:((vpn0 + p) * psz)
            (Bytes.of_string marker);
          live.(p) <- marker
        | 2 ->
          (* hammer one page so it crosses the hot threshold and migrates *)
          let p = Rng.int rng npages in
          let proc = Option.get (Kernel.find_process k ~name:"pages") in
          let marker = Printf.sprintf "h%04d-p%d" step p in
          for _ = 1 to 3 do
            Kernel.write_bytes k proc ~vaddr:((vpn0 + p) * psz) (Bytes.of_string marker);
            ignore (System.checkpoint sys);
            committed := Array.copy live
          done;
          live.(p) <- marker;
          committed := Array.copy live
        | _ -> ignore (System.checkpoint sys)
      done;
      if System.version sys = 0 then ignore (System.checkpoint sys);
      System.crash sys;
      ignore (System.recover sys);
      let k = System.kernel sys in
      let proc = Option.get (Kernel.find_process k ~name:"pages") in
      let ok = ref true in
      Array.iteri
        (fun p expected ->
          if expected <> "" then begin
            let got =
              Bytes.to_string
                (Kernel.read_bytes k proc ~vaddr:((vpn0 + p) * psz) ~len:(String.length expected))
            in
            if got <> expected then ok := false
          end)
        !committed;
      !ok)

let qsuite_hybrid = List.map QCheck_alcotest.to_alcotest [ prop_hybrid_page_contents ]

let () =
  Alcotest.run "ckpt"
    [
      ( "snapshot",
        [
          Alcotest.test_case "thread copies state" `Quick snapshot_thread;
          Alcotest.test_case "cap group slots" `Quick snapshot_cap_group;
          Alcotest.test_case "vmspace references" `Quick snapshot_vmspace_refs;
          Alcotest.test_case "eternal frames" `Quick snapshot_eternal_frames;
          Alcotest.test_case "sizes positive" `Quick snapshot_bytes_positive;
        ] );
      ( "oroot",
        [
          Alcotest.test_case "double buffering" `Quick oroot_double_buffer;
          Alcotest.test_case "latest_le" `Quick oroot_latest_le;
          Alcotest.test_case "pages_exn" `Quick oroot_pages_exn;
        ] );
      ( "cow",
        [
          Alcotest.test_case "saves pre-image, stamps global" `Quick cow_backup_saves_preimage;
          Alcotest.test_case "skips DRAM runtime" `Quick cow_backup_skips_dram;
          Alcotest.test_case "skips unmanaged page" `Quick cow_backup_unmanaged_page;
        ] );
      ( "restore-rule",
        [
          Alcotest.test_case "case 1: backup at global" `Quick restore_case_1_backup_at_global;
          Alcotest.test_case "case 2: stale backup, runtime" `Quick restore_case_2_stale_backup;
          Alcotest.test_case "case 3: no backup, runtime" `Quick restore_case_3_no_backup;
          Alcotest.test_case "born after global dropped" `Quick restore_born_after_global_dropped;
          Alcotest.test_case "in-flight copy skipped" `Quick restore_inflight_copy_skipped;
          Alcotest.test_case "DRAM runtime, highest committed" `Quick
            restore_dram_runtime_highest_committed;
          Alcotest.test_case "mid-migration crash" `Quick restore_mid_migration_lost_dram;
        ] );
      ( "hybrid-pages",
        [
          Alcotest.test_case "stop-and-copy alternates slots" `Quick stop_and_copy_alternates;
          Alcotest.test_case "migration cycle" `Quick migration_cycle;
          Alcotest.test_case "detach copies stale b2" `Quick detach_copies_when_stale;
          Alcotest.test_case "normalize keeps one spare" `Quick normalize_keeps_spare;
        ] );
      ( "active-list",
        [
          Alcotest.test_case "hotness threshold" `Quick active_threshold;
          Alcotest.test_case "cache cap" `Quick active_cap;
          Alcotest.test_case "sublists partition" `Quick active_sublists_partition;
          Alcotest.test_case "drop and compact" `Quick active_drop_and_compact;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "versions and reports" `Quick ckpt_version_and_reports;
          Alcotest.test_case "CoW re-armed after protect" `Quick ckpt_cow_after_protect;
          Alcotest.test_case "GC of dead objects" `Quick ckpt_gc_dead_objects;
          Alcotest.test_case "eternal PMOs untracked" `Quick ckpt_eternal_not_tracked;
          Alcotest.test_case "callbacks fire" `Quick ckpt_callbacks_fire;
          Alcotest.test_case "fresh page born version" `Quick ckpt_fresh_page_born_version;
          Alcotest.test_case "tick policy" `Quick tick_policy;
        ] );
      ("hybrid-property", qsuite_hybrid);
      ( "restore",
        [
          Alcotest.test_case "rolls back object state" `Quick restore_rolls_back_object_state;
          Alcotest.test_case "drops uncheckpointed process" `Quick
            restore_drops_uncheckpointed_process;
          Alcotest.test_case "fails without checkpoint" `Quick restore_without_checkpoint_fails;
          Alcotest.test_case "preserves census" `Quick restore_preserves_census;
          Alcotest.test_case "double crash" `Quick restore_twice;
          Alcotest.test_case "no page leak across cycles" `Quick restore_no_page_leak;
        ] );
    ]
