(* Tests for the capability layer: radix tree, kernel objects, census. *)

module Radix = Treesls_cap.Radix
module Kobj = Treesls_cap.Kobj
module Rights = Treesls_cap.Rights
module Id_gen = Treesls_cap.Id_gen
module Census = Treesls_cap.Census
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Radix ---- *)

let radix_basics () =
  let r = Radix.create () in
  check_bool "empty" true (Radix.get r 0 = None);
  Radix.set r 5 "five";
  Alcotest.(check (option string)) "get" (Some "five") (Radix.get r 5);
  check_bool "mem" true (Radix.mem r 5);
  check_int "cardinal" 1 (Radix.cardinal r);
  Radix.remove r 5;
  check_bool "removed" false (Radix.mem r 5);
  check_int "cardinal 0" 0 (Radix.cardinal r)

let radix_growth () =
  let r = Radix.create () in
  Radix.set r 0 "a";
  Radix.set r 1_000_000 "b";
  Alcotest.(check (option string)) "small key survives growth" (Some "a") (Radix.get r 0);
  Alcotest.(check (option string)) "large key" (Some "b") (Radix.get r 1_000_000)

let radix_overwrite () =
  let r = Radix.create () in
  Radix.set r 7 "x";
  Radix.set r 7 "y";
  Alcotest.(check (option string)) "overwrite" (Some "y") (Radix.get r 7);
  check_int "cardinal still 1" 1 (Radix.cardinal r)

let radix_iter_order () =
  let r = Radix.create () in
  List.iter (fun k -> Radix.set r k (string_of_int k)) [ 9; 3; 77; 1 ];
  let keys = Radix.fold (fun k _ acc -> k :: acc) r [] in
  Alcotest.(check (list int)) "ascending iteration" [ 1; 3; 9; 77 ] (List.rev keys)

let radix_copy_shares_values () =
  let r = Radix.create () in
  Radix.set r 3 "v";
  let c = Radix.copy r in
  Radix.set r 4 "w";
  Alcotest.(check (option string)) "copy has old" (Some "v") (Radix.get c 3);
  check_bool "copy lacks new" true (Radix.get c 4 = None);
  check_int "node counts tracked" (Radix.cardinal c) 1

let radix_negative_key () =
  let r = Radix.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Radix.get: negative key") (fun () ->
      ignore (Radix.get r (-1)))

let radix_clear () =
  let r = Radix.create () in
  Radix.set r 100 1;
  Radix.clear r;
  check_int "cleared" 0 (Radix.cardinal r);
  check_int "nodes reset" 1 (Radix.node_count r)

let radix_node_count_grows () =
  let r = Radix.create () in
  let n0 = Radix.node_count r in
  Radix.set r 100_000 1;
  check_bool "interior nodes added" true (Radix.node_count r > n0)

let radix_model_check () =
  (* compare against a Hashtbl model under random ops *)
  let r = Radix.create () in
  let model = Hashtbl.create 64 in
  let rng = Rng.create 123L in
  for _ = 1 to 5_000 do
    let k = Rng.int rng 10_000 in
    if Rng.bool rng then begin
      Radix.set r k k;
      Hashtbl.replace model k k
    end
    else begin
      Radix.remove r k;
      Hashtbl.remove model k
    end
  done;
  check_int "cardinal matches model" (Hashtbl.length model) (Radix.cardinal r);
  Hashtbl.iter (fun k v -> Alcotest.(check (option int)) "value" (Some v) (Radix.get r k)) model

(* ---- Rights ---- *)

let rights_subset () =
  check_bool "ro <= full" true (Rights.subset Rights.read_only ~of_:Rights.full);
  check_bool "full </= ro" false (Rights.subset Rights.full ~of_:Rights.read_only);
  check_bool "none <= anything" true (Rights.subset Rights.none ~of_:Rights.read_only);
  check_bool "rw <= rw" true (Rights.subset Rights.rw ~of_:Rights.rw)

let rights_pp () =
  Alcotest.(check string) "pp full" "rwxg" (Format.asprintf "%a" Rights.pp Rights.full);
  Alcotest.(check string) "pp ro" "r---" (Format.asprintf "%a" Rights.pp Rights.read_only)

(* ---- Id_gen ---- *)

let idgen_monotonic () =
  let g = Id_gen.create () in
  let a = Id_gen.next g and b = Id_gen.next g in
  check_bool "monotonic" true (b > a);
  check_int "current" b (Id_gen.current g);
  Id_gen.restore g 100;
  check_int "restored" 101 (Id_gen.next g)

(* ---- Kobj ---- *)

let ids = Id_gen.create ()
let fresh () = Id_gen.next ids

let cap_group_slots () =
  let g = Kobj.make_cap_group ~id:(fresh ()) ~name:"g" in
  let th = Kobj.Thread (Kobj.make_thread ~id:(fresh ()) ~prio:1) in
  let s0 = Kobj.install g { Kobj.target = th; rights = Rights.full } in
  check_int "first slot" 0 s0;
  check_int "count" 1 (Kobj.caps_count g);
  check_bool "lookup" true (Kobj.lookup g s0 <> None);
  Kobj.revoke g s0;
  check_int "after revoke" 0 (Kobj.caps_count g);
  check_bool "slot empty" true (Kobj.lookup g s0 = None)

let cap_group_grows () =
  let g = Kobj.make_cap_group ~id:(fresh ()) ~name:"g" in
  for i = 0 to 19 do
    let th = Kobj.Thread (Kobj.make_thread ~id:(fresh ()) ~prio:1) in
    check_int "dense slots" i (Kobj.install g { Kobj.target = th; rights = Rights.full })
  done;
  check_int "twenty caps" 20 (Kobj.caps_count g);
  check_bool "array grew" true (Kobj.slots_len g >= 20)

let cap_group_reuses_slots () =
  let g = Kobj.make_cap_group ~id:(fresh ()) ~name:"g" in
  let mk () = Kobj.Thread (Kobj.make_thread ~id:(fresh ()) ~prio:1) in
  let s0 = Kobj.install g { Kobj.target = mk (); rights = Rights.full } in
  ignore (Kobj.install g { Kobj.target = mk (); rights = Rights.full });
  Kobj.revoke g s0;
  check_int "freed slot reused" s0 (Kobj.install g { Kobj.target = mk (); rights = Rights.full })

let install_at_specific () =
  let g = Kobj.make_cap_group ~id:(fresh ()) ~name:"g" in
  let th = Kobj.Thread (Kobj.make_thread ~id:(fresh ()) ~prio:1) in
  Kobj.install_at g 13 { Kobj.target = th; rights = Rights.rw };
  check_bool "slot 13 filled" true (Kobj.lookup g 13 <> None);
  Alcotest.check_raises "occupied" (Invalid_argument "Kobj.install_at: slot occupied")
    (fun () -> Kobj.install_at g 13 { Kobj.target = th; rights = Rights.rw })

let iter_tree_dedup () =
  let root = Kobj.make_cap_group ~id:(fresh ()) ~name:"root" in
  let shared = Kobj.Pmo (Kobj.make_pmo ~id:(fresh ()) ~pages:1 ~kind:Kobj.Pmo_normal) in
  let child = Kobj.make_cap_group ~id:(fresh ()) ~name:"child" in
  ignore (Kobj.install root { Kobj.target = shared; rights = Rights.rw });
  ignore (Kobj.install root { Kobj.target = Kobj.Cap_group child; rights = Rights.full });
  ignore (Kobj.install child { Kobj.target = shared; rights = Rights.read_only });
  let visits = ref 0 in
  Kobj.iter_tree ~root (fun obj -> if Kobj.id obj = Kobj.id shared then incr visits);
  check_int "shared object visited once" 1 !visits

let iter_tree_reaches_regions () =
  let root = Kobj.make_cap_group ~id:(fresh ()) ~name:"root" in
  let vms = Kobj.make_vmspace ~id:(fresh ()) in
  let pmo = Kobj.make_pmo ~id:(fresh ()) ~pages:2 ~kind:Kobj.Pmo_normal in
  vms.Kobj.vs_regions <-
    [ { Kobj.vr_vpn = 0; vr_pages = 2; vr_pmo = pmo; vr_writable = true } ];
  ignore (Kobj.install root { Kobj.target = Kobj.Vmspace vms; rights = Rights.full });
  let found = ref false in
  Kobj.iter_tree ~root (fun obj -> if Kobj.id obj = pmo.Kobj.pmo_id then found := true);
  check_bool "pmo reachable via region" true !found

let copy_bytes_monotonic () =
  let small = Kobj.make_cap_group ~id:(fresh ()) ~name:"s" in
  let large = Kobj.make_cap_group ~id:(fresh ()) ~name:"l" in
  for _ = 1 to 30 do
    let th = Kobj.Thread (Kobj.make_thread ~id:(fresh ()) ~prio:1) in
    ignore (Kobj.install large { Kobj.target = th; rights = Rights.full })
  done;
  check_bool "more caps, more bytes" true
    (Kobj.copy_bytes (Kobj.Cap_group large) > Kobj.copy_bytes (Kobj.Cap_group small))

let kind_names_distinct () =
  let names = List.map Kobj.kind_name Kobj.all_kinds in
  check_int "distinct" (List.length names) (List.length (List.sort_uniq compare names))

(* ---- Census ---- *)

let census_counts () =
  let root = Kobj.make_cap_group ~id:(fresh ()) ~name:"root" in
  let th = Kobj.make_thread ~id:(fresh ()) ~prio:1 in
  let pmo = Kobj.make_pmo ~id:(fresh ()) ~pages:4 ~kind:Kobj.Pmo_normal in
  Radix.set pmo.Kobj.pmo_radix 0 (Treesls_nvm.Paddr.nvm 1);
  Radix.set pmo.Kobj.pmo_radix 2 (Treesls_nvm.Paddr.nvm 2);
  ignore (Kobj.install root { Kobj.target = Kobj.Thread th; rights = Rights.full });
  ignore (Kobj.install root { Kobj.target = Kobj.Pmo pmo; rights = Rights.rw });
  let c = Census.collect ~root in
  check_int "cap groups" 1 c.Census.cap_groups;
  check_int "threads" 1 c.Census.threads;
  check_int "pmos" 1 c.Census.pmos;
  check_int "pages" 2 c.Census.app_pages;
  check_int "total" 3 (Census.total_objects c);
  check_int "count by kind" 1 (Census.count c Kobj.Thread_k)

let census_diff () =
  let base =
    { Census.cap_groups = 1; threads = 2; ipcs = 3; notifications = 4; pmos = 5; vmspaces = 6; irqs = 0; app_pages = 10 }
  in
  let now =
    { Census.cap_groups = 2; threads = 4; ipcs = 6; notifications = 8; pmos = 10; vmspaces = 12; irqs = 0; app_pages = 30 }
  in
  let d = Census.diff now base in
  check_int "threads diff" 2 d.Census.threads;
  check_int "pages diff" 20 d.Census.app_pages

(* ---- qcheck ---- *)

let prop_radix_set_get =
  QCheck.Test.make ~name:"radix: set then get" ~count:300
    QCheck.(pair (int_bound 1_000_000) small_int)
    (fun (k, v) ->
      let r = Radix.create () in
      Radix.set r k v;
      Radix.get r k = Some v)

let prop_radix_cardinal =
  QCheck.Test.make ~name:"radix: cardinal = distinct keys" ~count:100
    QCheck.(list_of_size Gen.(0 -- 100) (int_bound 1000))
    (fun ks ->
      let r = Radix.create () in
      List.iter (fun k -> Radix.set r k k) ks;
      Radix.cardinal r = List.length (List.sort_uniq compare ks))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_radix_set_get; prop_radix_cardinal ]

let () =
  Alcotest.run "cap"
    [
      ( "radix",
        [
          Alcotest.test_case "basics" `Quick radix_basics;
          Alcotest.test_case "growth" `Quick radix_growth;
          Alcotest.test_case "overwrite" `Quick radix_overwrite;
          Alcotest.test_case "iteration order" `Quick radix_iter_order;
          Alcotest.test_case "copy isolation" `Quick radix_copy_shares_values;
          Alcotest.test_case "negative key" `Quick radix_negative_key;
          Alcotest.test_case "clear" `Quick radix_clear;
          Alcotest.test_case "node count grows" `Quick radix_node_count_grows;
          Alcotest.test_case "model check" `Quick radix_model_check;
        ] );
      ( "rights",
        [
          Alcotest.test_case "subset" `Quick rights_subset;
          Alcotest.test_case "pretty printing" `Quick rights_pp;
        ] );
      ("id_gen", [ Alcotest.test_case "monotonic + restore" `Quick idgen_monotonic ]);
      ( "kobj",
        [
          Alcotest.test_case "cap group slots" `Quick cap_group_slots;
          Alcotest.test_case "cap group growth" `Quick cap_group_grows;
          Alcotest.test_case "slot reuse" `Quick cap_group_reuses_slots;
          Alcotest.test_case "install_at" `Quick install_at_specific;
          Alcotest.test_case "iter_tree dedup" `Quick iter_tree_dedup;
          Alcotest.test_case "iter_tree reaches regions" `Quick iter_tree_reaches_regions;
          Alcotest.test_case "copy_bytes monotonic" `Quick copy_bytes_monotonic;
          Alcotest.test_case "kind names distinct" `Quick kind_names_distinct;
        ] );
      ( "census",
        [
          Alcotest.test_case "counts" `Quick census_counts;
          Alcotest.test_case "diff" `Quick census_diff;
        ] );
      ("properties", qsuite);
    ]
