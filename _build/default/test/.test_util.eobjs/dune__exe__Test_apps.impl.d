test/test_apps.ml: Alcotest List Option Printf String Treesls Treesls_apps Treesls_cap Treesls_kernel Treesls_util
