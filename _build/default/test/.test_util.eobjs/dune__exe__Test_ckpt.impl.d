test/test_ckpt.ml: Alcotest Array Bytes Hashtbl Int64 List Option Printf QCheck QCheck_alcotest String Treesls Treesls_cap Treesls_ckpt Treesls_kernel Treesls_nvm Treesls_sim Treesls_util
