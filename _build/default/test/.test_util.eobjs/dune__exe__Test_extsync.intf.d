test/test_extsync.mli:
