test/test_overcommit.ml: Alcotest Array Bytes Int64 List Option Printf QCheck QCheck_alcotest String Treesls Treesls_cap Treesls_ckpt Treesls_kernel Treesls_nvm Treesls_sim Treesls_util
