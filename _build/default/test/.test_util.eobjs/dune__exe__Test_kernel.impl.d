test/test_kernel.ml: Alcotest Bytes Char List Option Treesls_cap Treesls_kernel Treesls_nvm Treesls_sim
