test/test_extsync.ml: Alcotest Bytes List Option Printf Treesls Treesls_apps Treesls_ckpt Treesls_extsync Treesls_kernel
