test/test_workloads.ml: Alcotest Array Hashtbl List Option String Treesls_util Treesls_workloads
