test/test_overcommit.mli:
