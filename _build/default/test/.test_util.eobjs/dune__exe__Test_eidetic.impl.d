test/test_eidetic.ml: Alcotest Bytes Hashtbl List Option Printf Treesls Treesls_cap Treesls_ckpt Treesls_kernel Treesls_nvm Treesls_sim
