test/test_eidetic.mli:
