test/test_nvm.ml: Alcotest Bytes Int64 List Option QCheck QCheck_alcotest Treesls_nvm Treesls_sim Treesls_util
