test/test_system.ml: Alcotest Bytes Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Treesls Treesls_apps Treesls_cap Treesls_ckpt Treesls_kernel Treesls_nvm Treesls_sim Treesls_util
