test/test_cap.ml: Alcotest Format Gen Hashtbl List QCheck QCheck_alcotest Treesls_cap Treesls_nvm Treesls_util
