(* Tests for memory over-commitment (§8): SSD swap slots, cold-page
   eviction, transparent swap-in faults, and crash interactions. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store
module Clock = Treesls_sim.Clock
module Overcommit = Treesls_ckpt.Overcommit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Store-level swap ---- *)

let store_swap_roundtrip () =
  let store = Store.create ~clock:(Clock.create ()) ~nvm_pages:64 ~dram_pages:8 ~ssd_pages:16 () in
  let p = Store.alloc_page store in
  Store.write_page store p ~off:0 (Bytes.of_string "swapme");
  let free0 = Store.nvm_pages_free store in
  let slot = Option.get (Store.swap_out store ~src:p) in
  check_bool "slot on ssd" true (Paddr.is_ssd slot);
  check_int "nvm frame freed" (free0 + 1) (Store.nvm_pages_free store);
  check_int "ssd slot used" 15 (Store.ssd_slots_free store);
  let back = Store.swap_in store ~slot in
  check_bool "back on nvm" true (Paddr.is_nvm back);
  Alcotest.(check string) "content preserved" "swapme"
    (Bytes.to_string (Store.read_page store back ~off:0 ~len:6));
  check_int "ssd slot released" 16 (Store.ssd_slots_free store)

let store_swap_charges_time () =
  let clock = Clock.create () in
  let store = Store.create ~clock ~nvm_pages:64 ~dram_pages:8 ~ssd_pages:16 () in
  let p = Store.alloc_page store in
  let t0 = Clock.now clock in
  let slot = Option.get (Store.swap_out store ~src:p) in
  let t1 = Clock.now clock in
  check_bool "swap-out is expensive (us-scale)" true (t1 - t0 > 5_000);
  ignore (Store.swap_in store ~slot);
  check_bool "swap-in is expensive too" true (Clock.now clock - t1 > 5_000)

let store_ssd_exhaustion () =
  let store = Store.create ~clock:(Clock.create ()) ~nvm_pages:64 ~dram_pages:8 ~ssd_pages:2 () in
  let p1 = Store.alloc_page store and p2 = Store.alloc_page store and p3 = Store.alloc_page store in
  check_bool "1" true (Store.swap_out store ~src:p1 <> None);
  check_bool "2" true (Store.swap_out store ~src:p2 <> None);
  check_bool "full" true (Store.swap_out store ~src:p3 = None)

let store_ssd_survives_crash () =
  let store = Store.create ~clock:(Clock.create ()) ~nvm_pages:64 ~dram_pages:8 ~ssd_pages:16 () in
  let p = Store.alloc_page store in
  Store.write_page store p ~off:0 (Bytes.of_string "durable");
  let slot = Option.get (Store.swap_out store ~src:p) in
  Store.crash store;
  Store.recover store;
  Alcotest.(check string) "ssd content survives power failure" "durable"
    (Bytes.to_string (Store.read_page store slot ~off:0 ~len:7))

(* ---- kernel eviction + transparent swap-in ---- *)

let setup () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let proc = Kernel.create_process k ~name:"swapper" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k proc ~pages:4 in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  let pmo = (List.nth proc.Kernel.vms.Kobj.vs_regions 2).Kobj.vr_pmo in
  (sys, k, proc, vpn, pmo, psz)

let evict_requires_cold () =
  let sys, k, proc, vpn, pmo, psz = setup () in
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "hot");
  (* freshly written: PTE writable -> not evictable *)
  check_bool "hot page not evictable" false (Kernel.evict_page k pmo ~pno:0);
  (* a checkpoint re-protects it and clears the dirty bit: now cold *)
  ignore (System.checkpoint sys);
  check_bool "cold page evictable" true (Kernel.evict_page k pmo ~pno:0);
  check_bool "radix points at ssd" true
    (match Radix.get pmo.Kobj.pmo_radix 0 with Some p -> Paddr.is_ssd p | None -> false)

let swap_in_on_read () =
  let sys, k, proc, vpn, pmo, psz = setup () in
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "paged-out");
  ignore (System.checkpoint sys);
  check_bool "evicted" true (Kernel.evict_page k pmo ~pno:0);
  let swaps0 = (Kernel.stats k).Kernel.swap_ins in
  Alcotest.(check string) "read faults it back" "paged-out"
    (Bytes.to_string (Kernel.read_bytes k proc ~vaddr:(vpn * psz) ~len:9));
  check_int "major fault counted" (swaps0 + 1) (Kernel.stats k).Kernel.swap_ins;
  check_bool "back on nvm" true
    (match Radix.get pmo.Kobj.pmo_radix 0 with Some p -> Paddr.is_nvm p | None -> false)

let swap_in_on_write_with_cow () =
  let sys, k, proc, vpn, pmo, psz = setup () in
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "original");
  ignore (System.checkpoint sys);
  check_bool "evicted" true (Kernel.evict_page k pmo ~pno:0);
  (* write: swap-in + CoW backup + modification *)
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "MODIFIED");
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"swapper") in
  Alcotest.(check string) "rollback to pre-eviction content" "original"
    (Bytes.to_string (Kernel.read_bytes k proc ~vaddr:(vpn * psz) ~len:8))

let evicted_page_survives_crash () =
  let sys, k, proc, vpn, pmo, psz = setup () in
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "ssd-safe");
  ignore (System.checkpoint sys);
  check_bool "evicted" true (Kernel.evict_page k pmo ~pno:0);
  (* the swapped slot is now the runtime copy; crash and recover *)
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"swapper") in
  Alcotest.(check string) "content restored from the swap slot" "ssd-safe"
    (Bytes.to_string (Kernel.read_bytes k proc ~vaddr:(vpn * psz) ~len:8))

let evict_cold_sweep () =
  let sys, k, proc, vpn, _, psz = setup () in
  for i = 0 to 3 do
    Kernel.write_bytes k proc ~vaddr:((vpn + i) * psz) (Bytes.of_string "cold")
  done;
  ignore (System.checkpoint sys);
  let n = Kernel.evict_cold k ~limit:3 in
  check_int "evicted up to limit" 3 n;
  check_int "stat" 3 (Kernel.stats k).Kernel.swap_outs

(* ---- policy ---- *)

let policy_relieves_pressure () =
  (* tiny NVM so application growth actually creates pressure *)
  let sys = System.boot ~nvm_pages:2048 ~interval_us:1000 () in
  let oc =
    Overcommit.attach ~low_watermark:1024 ~high_watermark:1100 ~batch:64 (System.manager sys)
  in
  let k = System.kernel sys in
  let proc = Kernel.create_process k ~name:"grower" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k proc ~pages:1600 in
  (* touch pages in waves, checkpointing between waves so earlier waves
     go cold and become evictable *)
  (try
     for i = 0 to 1400 do
       Kernel.touch_write k proc ~vpn:(vpn + i);
       if i mod 100 = 99 then ignore (System.checkpoint sys)
     done
   with Out_of_memory -> Alcotest.fail "pressure not relieved");
  check_bool "pressure detected" true (Overcommit.pressure_events oc > 0);
  check_bool "pages evicted" true (Overcommit.evictions oc > 0);
  (* data is still intact through swap-in *)
  ignore (Kernel.read_bytes k proc ~vaddr:(vpn * (Kernel.cost k).Treesls_sim.Cost.page_size) ~len:8)

(* ---- property: random eviction interleavings are crash-safe ---- *)

let prop_eviction_crash_safe =
  QCheck.Test.make ~name:"overcommit: committed contents survive crash under eviction" ~count:20
    QCheck.(pair (int_bound 10_000) (int_range 15 60))
    (fun (seed, steps) ->
      let sys = System.boot () in
      let k = System.kernel sys in
      let proc = Kernel.create_process k ~name:"pages" ~threads:1 ~prio:5 in
      let npages = 5 in
      let vpn0 = Kernel.grow_heap k proc ~pages:npages in
      let pmo = (List.nth proc.Kernel.vms.Kobj.vs_regions 2).Kobj.vr_pmo in
      let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
      let rng = Treesls_util.Rng.create (Int64.of_int seed) in
      let live = Array.make npages "" in
      let committed = ref (Array.copy live) in
      Treesls_ckpt.Manager.on_checkpoint (System.manager sys) (fun () ->
          committed := Array.copy live);
      for step = 1 to steps do
        let p = Treesls_util.Rng.int rng npages in
        match Treesls_util.Rng.int rng 4 with
        | 0 | 1 ->
          let marker = Printf.sprintf "m%04d-%d" step p in
          let proc = Option.get (Kernel.find_process k ~name:"pages") in
          Kernel.write_bytes k proc ~vaddr:((vpn0 + p) * psz) (Bytes.of_string marker);
          live.(p) <- marker
        | 2 -> ignore (Kernel.evict_page k pmo ~pno:p)
        | _ -> ignore (System.checkpoint sys)
      done;
      if System.version sys = 0 then ignore (System.checkpoint sys);
      System.crash sys;
      ignore (System.recover sys);
      let k = System.kernel sys in
      let proc = Option.get (Kernel.find_process k ~name:"pages") in
      let ok = ref true in
      Array.iteri
        (fun p expected ->
          if expected <> "" then begin
            let got =
              Bytes.to_string
                (Kernel.read_bytes k proc
                   ~vaddr:((vpn0 + p) * psz)
                   ~len:(String.length expected))
            in
            if got <> expected then ok := false
          end)
        !committed;
      !ok)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_eviction_crash_safe ]

let () =
  Alcotest.run "overcommit"
    [
      ( "store-swap",
        [
          Alcotest.test_case "roundtrip" `Quick store_swap_roundtrip;
          Alcotest.test_case "charges time" `Quick store_swap_charges_time;
          Alcotest.test_case "ssd exhaustion" `Quick store_ssd_exhaustion;
          Alcotest.test_case "ssd survives crash" `Quick store_ssd_survives_crash;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "requires cold pages" `Quick evict_requires_cold;
          Alcotest.test_case "swap-in on read" `Quick swap_in_on_read;
          Alcotest.test_case "swap-in on write + CoW" `Quick swap_in_on_write_with_cow;
          Alcotest.test_case "evicted page survives crash" `Quick evicted_page_survives_crash;
          Alcotest.test_case "cold sweep" `Quick evict_cold_sweep;
        ] );
      ( "policy",
        [ Alcotest.test_case "relieves pressure" `Quick policy_relieves_pressure ] );
      ("properties", qsuite);
    ]
