(* Tests for the microkernel: page tables, boot census, processes, memory
   paths and fault accounting, migration support, IPC, scheduler. *)

module Kernel = Treesls_kernel.Kernel
module Pagetable = Treesls_kernel.Pagetable
module Sched = Treesls_kernel.Sched
module Ipc = Treesls_kernel.Ipc
module Kobj = Treesls_cap.Kobj
module Census = Treesls_cap.Census
module Radix = Treesls_cap.Radix
module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store
module Clock = Treesls_sim.Clock
module Cost = Treesls_sim.Cost

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () = Kernel.boot ~nvm_pages:(1 lsl 14) ~dram_pages:256 ()

(* ---- Pagetable ---- *)

let pt_map_lookup () =
  let pt = Pagetable.create () in
  Pagetable.map pt ~vpn:4 ~paddr:(Paddr.nvm 9) ~writable:false;
  (match Pagetable.lookup pt ~vpn:4 with
  | Some pte ->
    check_bool "paddr" true (Paddr.equal pte.Pagetable.paddr (Paddr.nvm 9));
    check_bool "ro" false pte.Pagetable.writable
  | None -> Alcotest.fail "not mapped");
  check_int "mapped count" 1 (Pagetable.mapped_count pt);
  Pagetable.unmap pt ~vpn:4;
  check_bool "unmapped" true (Pagetable.lookup pt ~vpn:4 = None)

let pt_double_map () =
  let pt = Pagetable.create () in
  Pagetable.map pt ~vpn:1 ~paddr:(Paddr.nvm 1) ~writable:false;
  Alcotest.check_raises "double map" (Invalid_argument "Pagetable.map: already mapped")
    (fun () -> Pagetable.map pt ~vpn:1 ~paddr:(Paddr.nvm 2) ~writable:false)

let pt_dirty_tracking () =
  let pt = Pagetable.create () in
  Pagetable.map pt ~vpn:1 ~paddr:(Paddr.nvm 1) ~writable:false;
  check_int "clean" 0 (Pagetable.dirty_count pt);
  Pagetable.make_writable pt ~vpn:1;
  check_int "dirty after upgrade" 1 (Pagetable.dirty_count pt);
  Pagetable.make_writable pt ~vpn:1;
  check_int "idempotent" 1 (Pagetable.dirty_count pt);
  let protected_n = Pagetable.protect_dirty pt (fun _ _ -> true) in
  check_int "protected" 1 protected_n;
  check_int "dirty list cleared" 0 (Pagetable.dirty_count pt);
  match Pagetable.lookup pt ~vpn:1 with
  | Some pte -> check_bool "read-only again" false pte.Pagetable.writable
  | None -> Alcotest.fail "mapped"

let pt_protect_skip () =
  let pt = Pagetable.create () in
  Pagetable.map pt ~vpn:1 ~paddr:(Paddr.dram 1) ~writable:true;
  let n = Pagetable.protect_dirty pt (fun _ pte -> not (Paddr.is_dram pte.Pagetable.paddr)) in
  check_int "skipped" 0 n;
  match Pagetable.lookup pt ~vpn:1 with
  | Some pte -> check_bool "still writable" true pte.Pagetable.writable
  | None -> Alcotest.fail "mapped"

let pt_remap_preserves_bits () =
  let pt = Pagetable.create () in
  Pagetable.map pt ~vpn:2 ~paddr:(Paddr.nvm 1) ~writable:true;
  (Option.get (Pagetable.lookup pt ~vpn:2)).Pagetable.dirty <- true;
  Pagetable.remap pt ~vpn:2 ~paddr:(Paddr.dram 5);
  let pte = Option.get (Pagetable.lookup pt ~vpn:2) in
  check_bool "new paddr" true (Paddr.equal pte.Pagetable.paddr (Paddr.dram 5));
  check_bool "writable kept" true pte.Pagetable.writable;
  check_bool "dirty kept" true pte.Pagetable.dirty

(* ---- boot census (Table 2 Default row) ---- *)

let boot_census () =
  let k = boot () in
  let c = Census.collect ~root:(Kernel.root k) in
  check_int "cap groups" 6 c.Census.cap_groups;
  check_int "threads" 27 c.Census.threads;
  check_int "ipc" 9 c.Census.ipcs;
  check_int "notifications" 7 c.Census.notifications;
  check_int "pmos" 71 c.Census.pmos;
  check_int "vmspaces" 6 c.Census.vmspaces;
  check_int "irqs" 0 c.Census.irqs

let boot_services_present () =
  let k = boot () in
  List.iter
    (fun name -> check_bool name true (Kernel.find_process k ~name <> None))
    [ "procmgr"; "fsmgr"; "netdrv"; "tmpfs"; "shell" ]

(* ---- processes & memory ---- *)

let proc_create () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:3 ~prio:5 in
  check_int "threads" 3 (List.length p.Kernel.threads);
  check_bool "find by name" true (Kernel.find_process k ~name:"app" <> None);
  check_int "regions: code + stacks" 4 (List.length p.Kernel.vms.Kobj.vs_regions)

let proc_exit_unreachable () =
  let k = boot () in
  let before = Census.collect ~root:(Kernel.root k) in
  let p = Kernel.create_process k ~name:"gone" ~threads:1 ~prio:5 in
  Kernel.exit_process k p;
  let after = Census.collect ~root:(Kernel.root k) in
  check_int "tree restored" (Census.total_objects before) (Census.total_objects after);
  check_bool "process list" true (Kernel.find_process k ~name:"gone" = None)

let mem_roundtrip () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:4 in
  let psz = (Kernel.cost k).Cost.page_size in
  let data = Bytes.of_string "The quick brown fox" in
  Kernel.write_bytes k p ~vaddr:((vpn * psz) + 100) data;
  Alcotest.(check string) "roundtrip" "The quick brown fox"
    (Bytes.to_string (Kernel.read_bytes k p ~vaddr:((vpn * psz) + 100) ~len:(Bytes.length data)))

let mem_cross_page () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:4 in
  let psz = (Kernel.cost k).Cost.page_size in
  let data = Bytes.init 100 (fun i -> Char.chr (i mod 256)) in
  Kernel.write_bytes k p ~vaddr:((vpn * psz) + psz - 50) data;
  Alcotest.(check bytes) "cross-page roundtrip" data
    (Kernel.read_bytes k p ~vaddr:((vpn * psz) + psz - 50) ~len:100)

let mem_unmapped_fails () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  Alcotest.check_raises "unmapped" (Invalid_argument "Kernel: fault on unmapped vpn 9999")
    (fun () -> Kernel.write_bytes k p ~vaddr:(9999 * 4096) (Bytes.of_string "x"))

let mem_readonly_region () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  Alcotest.check_raises "ro region" (Invalid_argument "Kernel: write to read-only region")
    (fun () -> Kernel.write_bytes k p ~vaddr:(16 * 4096) (Bytes.of_string "x"))

let mem_lazy_alloc_counts () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:8 in
  let s = Kernel.stats k in
  let before = s.Kernel.alloc_faults in
  Kernel.touch_write k p ~vpn;
  check_int "one alloc fault" (before + 1) s.Kernel.alloc_faults;
  Kernel.touch_write k p ~vpn;
  check_int "no second fault" (before + 1) s.Kernel.alloc_faults

let mem_charges_time () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:1 in
  let t0 = Clock.now (Kernel.clock k) in
  Kernel.touch_write k p ~vpn;
  check_bool "time passed" true (Clock.now (Kernel.clock k) > t0)

let page_paddr_some () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:1 in
  check_bool "mapped region resolves" true (Kernel.page_paddr k p ~vpn <> None);
  check_bool "unmapped region is None" true (Kernel.page_paddr k p ~vpn:7777 = None)

(* ---- migration support ---- *)

let heap_region p = List.nth p.Kernel.vms.Kobj.vs_regions 2

let remap_updates_all () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:2 in
  Kernel.touch_write k p ~vpn;
  let pmo = (heap_region p).Kobj.vr_pmo in
  let new_paddr = Paddr.dram 42 in
  Kernel.remap_page k pmo ~pno:0 new_paddr;
  (match Radix.get pmo.Kobj.pmo_radix 0 with
  | Some pa -> check_bool "radix updated" true (Paddr.equal pa new_paddr)
  | None -> Alcotest.fail "page missing");
  let pt = Kernel.pagetable k p.Kernel.vms in
  match Pagetable.lookup pt ~vpn with
  | Some pte -> check_bool "pte updated" true (Paddr.equal pte.Pagetable.paddr new_paddr)
  | None -> Alcotest.fail "pte missing"

let dirty_bit_via_rmap () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:1 in
  Kernel.touch_write k p ~vpn;
  let pmo = (heap_region p).Kobj.vr_pmo in
  check_bool "dirty set" true (Kernel.page_dirty k pmo ~pno:0);
  Kernel.clear_page_dirty k pmo ~pno:0;
  check_bool "cleared" false (Kernel.page_dirty k pmo ~pno:0);
  check_int "one mapping" 1 (List.length (Kernel.mappings_of_page k pmo ~pno:0))

(* ---- eternal PMOs ---- *)

let eternal_eager () =
  let k = boot () in
  let pmo = Kernel.make_eternal_pmo k ~pages:3 in
  check_int "all pages materialised" 3 (Radix.cardinal pmo.Kobj.pmo_radix);
  check_bool "kind" true (pmo.Kobj.pmo_kind = Kobj.Pmo_eternal)

(* ---- quiescence ---- *)

let quiesce_cost_scales () =
  let k8 = Kernel.boot ~ncores:8 ~nvm_pages:(1 lsl 13) ~dram_pages:64 () in
  let k2 = Kernel.boot ~ncores:2 ~nvm_pages:(1 lsl 13) ~dram_pages:64 () in
  check_bool "more cores, longer quiesce" true (Kernel.quiesce k8 > Kernel.quiesce k2)

(* ---- sched ---- *)

let sched_basics () =
  let s = Sched.create () in
  let th = Kobj.make_thread ~id:1 ~prio:1 in
  Sched.enqueue s th;
  check_int "ready" 1 (Sched.ready_count s);
  (match Sched.pick s with
  | Some t -> check_int "picked" 1 t.Kobj.th_id
  | None -> Alcotest.fail "empty");
  check_bool "drained" true (Sched.pick s = None)

let sched_skips_blocked () =
  let s = Sched.create () in
  let th = Kobj.make_thread ~id:1 ~prio:1 in
  Sched.enqueue s th;
  th.Kobj.th_state <- Kobj.Blocked_notif 5;
  check_bool "skips blocked" true (Sched.pick s = None)

let sched_rebuild () =
  let k = boot () in
  let s = Sched.create () in
  Sched.rebuild s ~root:(Kernel.root k);
  check_int "all ready threads enqueued" 27 (Sched.ready_count s)

(* ---- IPC ---- *)

let ipc_call_roundtrip () =
  let k = boot () in
  let a = Kernel.create_process k ~name:"client" ~threads:1 ~prio:5 in
  let b = Kernel.create_process k ~name:"server" ~threads:1 ~prio:5 in
  let conn = Ipc.create_conn k ~client:a ~server:b in
  check_bool "no handler yet" false (Ipc.has_handler k conn);
  Ipc.register_handler k conn (fun req -> Bytes.cat req (Bytes.of_string "!"));
  let reply = Ipc.call k conn (Bytes.of_string "ping") in
  Alcotest.(check string) "reply" "ping!" (Bytes.to_string reply);
  check_int "call count persisted in object" 1 conn.Kobj.ic_calls;
  check_int "kernel counter" 1 (Kernel.stats k).Kernel.ipc_calls

let ipc_no_handler () =
  let k = boot () in
  let a = Kernel.create_process k ~name:"c2" ~threads:1 ~prio:5 in
  let b = Kernel.create_process k ~name:"s2" ~threads:1 ~prio:5 in
  let conn = Ipc.create_conn k ~client:a ~server:b in
  Alcotest.check_raises "no handler"
    (Invalid_argument "Ipc.call: no handler registered (service not recovered?)") (fun () ->
      ignore (Ipc.call k conn (Bytes.of_string "x")))

let notification_semantics () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"np" ~threads:1 ~prio:5 in
  let n = Kernel.create_notification k p in
  let th = List.hd p.Kernel.threads in
  Ipc.notify k n;
  check_int "count" 1 n.Kobj.nt_count;
  check_bool "wait consumes" true (Ipc.wait k n th);
  check_int "count consumed" 0 n.Kobj.nt_count;
  check_bool "blocks" false (Ipc.wait k n th);
  check_bool "state blocked" true (th.Kobj.th_state = Kobj.Blocked_notif n.Kobj.nt_id);
  Ipc.notify k n;
  check_bool "woken" true (th.Kobj.th_state = Kobj.Ready);
  check_int "no waiters left" 0 (List.length n.Kobj.nt_waiters)

(* ---- rebuild ---- *)

let rebuild_derives_processes () =
  let k = boot () in
  let p = Kernel.create_process k ~name:"app" ~threads:2 ~prio:5 in
  ignore (Kernel.grow_heap k p ~pages:4);
  let root = Kernel.root k in
  let store = Kernel.store k in
  let ids_hwm = Treesls_cap.Id_gen.current (Kernel.ids k) in
  let k2 = Kernel.rebuild ~store ~ncores:(Kernel.ncores k) ~root ~ids_hwm in
  check_int "same process count" (List.length (Kernel.processes k))
    (List.length (Kernel.processes k2));
  let p2 = Option.get (Kernel.find_process k2 ~name:"app") in
  check_int "threads rederived" 2 (List.length p2.Kernel.threads);
  check_bool "brk recomputed past regions" true (p2.Kernel.brk_vpn >= p.Kernel.brk_vpn);
  let fresh = Treesls_cap.Id_gen.next (Kernel.ids k2) in
  check_bool "id continuity" true (fresh > ids_hwm)

let () =
  Alcotest.run "kernel"
    [
      ( "pagetable",
        [
          Alcotest.test_case "map/lookup/unmap" `Quick pt_map_lookup;
          Alcotest.test_case "double map rejected" `Quick pt_double_map;
          Alcotest.test_case "dirty tracking" `Quick pt_dirty_tracking;
          Alcotest.test_case "protect can skip" `Quick pt_protect_skip;
          Alcotest.test_case "remap preserves bits" `Quick pt_remap_preserves_bits;
        ] );
      ( "boot",
        [
          Alcotest.test_case "Table 2 default census" `Quick boot_census;
          Alcotest.test_case "services present" `Quick boot_services_present;
        ] );
      ( "memory",
        [
          Alcotest.test_case "process create" `Quick proc_create;
          Alcotest.test_case "exit unreachable" `Quick proc_exit_unreachable;
          Alcotest.test_case "write/read roundtrip" `Quick mem_roundtrip;
          Alcotest.test_case "cross-page access" `Quick mem_cross_page;
          Alcotest.test_case "unmapped rejected" `Quick mem_unmapped_fails;
          Alcotest.test_case "read-only region" `Quick mem_readonly_region;
          Alcotest.test_case "lazy allocation counted" `Quick mem_lazy_alloc_counts;
          Alcotest.test_case "charges time" `Quick mem_charges_time;
          Alcotest.test_case "page_paddr" `Quick page_paddr_some;
        ] );
      ( "migration",
        [
          Alcotest.test_case "remap updates radix and PTEs" `Quick remap_updates_all;
          Alcotest.test_case "dirty bit via rmap" `Quick dirty_bit_via_rmap;
        ] );
      ("eternal", [ Alcotest.test_case "eager materialisation" `Quick eternal_eager ]);
      ("quiesce", [ Alcotest.test_case "cost scales with cores" `Quick quiesce_cost_scales ]);
      ( "sched",
        [
          Alcotest.test_case "basics" `Quick sched_basics;
          Alcotest.test_case "skips blocked" `Quick sched_skips_blocked;
          Alcotest.test_case "rebuild from tree" `Quick sched_rebuild;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "call roundtrip" `Quick ipc_call_roundtrip;
          Alcotest.test_case "no handler" `Quick ipc_no_handler;
          Alcotest.test_case "notification semantics" `Quick notification_semantics;
        ] );
      ("rebuild", [ Alcotest.test_case "derives processes" `Quick rebuild_derives_processes ]);
    ]
