(* Tests for the workload generators: YCSB mixes and Prefix_dist. *)

module Ycsb = Treesls_workloads.Ycsb
module Prefix_dist = Treesls_workloads.Prefix_dist
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mix_of workload n =
  let rng = Rng.create 5L in
  let gen = Ycsb.create workload ~keys:1_000 rng in
  let reads = ref 0 and updates = ref 0 and inserts = ref 0 in
  for _ = 1 to n do
    match Ycsb.next gen with
    | Ycsb.Read _ -> incr reads
    | Ycsb.Update _ -> incr updates
    | Ycsb.Insert _ -> incr inserts
  done;
  (!reads, !updates, !inserts)

let ycsb_a_mix () =
  let r, u, i = mix_of Ycsb.A 10_000 in
  check_int "no inserts" 0 i;
  check_bool "roughly half reads" true (r > 4_700 && r < 5_300);
  check_bool "roughly half updates" true (u > 4_700 && u < 5_300)

let ycsb_b_mix () =
  let r, u, _ = mix_of Ycsb.B 10_000 in
  check_bool "95% reads" true (r > 9_350 && r < 9_650);
  check_bool "5% updates" true (u > 350 && u < 650)

let ycsb_c_mix () =
  let r, u, i = mix_of Ycsb.C 5_000 in
  check_int "all reads" 5_000 r;
  check_int "none else" 0 (u + i)

let ycsb_update_only () =
  let r, u, i = mix_of Ycsb.Update_only 5_000 in
  check_int "all updates" 5_000 u;
  check_int "none else" 0 (r + i)

let ycsb_insert_grows () =
  let rng = Rng.create 6L in
  let gen = Ycsb.create Ycsb.Insert_only ~keys:100 rng in
  (match Ycsb.next gen with
  | Ycsb.Insert k -> check_int "first insert at key count" 100 k
  | _ -> Alcotest.fail "expected insert");
  ignore (Ycsb.next gen);
  check_int "key space grew" 102 (Ycsb.key_count gen)

let ycsb_keys_in_range () =
  let rng = Rng.create 7L in
  let gen = Ycsb.create Ycsb.A ~keys:500 rng in
  for _ = 1 to 5_000 do
    match Ycsb.next gen with
    | Ycsb.Read k | Ycsb.Update k -> check_bool "in range" true (k >= 0 && k < 500)
    | Ycsb.Insert _ -> Alcotest.fail "no inserts in A"
  done

let ycsb_skewed () =
  let rng = Rng.create 8L in
  let gen = Ycsb.create Ycsb.Update_only ~keys:10_000 rng in
  let freq = Hashtbl.create 64 in
  for _ = 1 to 20_000 do
    match Ycsb.next gen with
    | Ycsb.Update k ->
      Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k))
    | _ -> ()
  done;
  let max_freq = Hashtbl.fold (fun _ v acc -> max v acc) freq 0 in
  (* zipfian: the hottest key is hit far more than uniform (2 expected) *)
  check_bool "hot key exists" true (max_freq > 50)

let ycsb_names () =
  check_int "five workloads" 5 (List.length Ycsb.all);
  let names = List.map Ycsb.name Ycsb.all in
  check_int "distinct names" 5 (List.length (List.sort_uniq compare names))

(* ---- Prefix_dist ---- *)

let prefix_write_fraction () =
  let rng = Rng.create 9L in
  let gen = Prefix_dist.create ~write_fraction:0.78 rng in
  let writes = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    match Prefix_dist.next gen with
    | Prefix_dist.Put _ -> incr writes
    | Prefix_dist.Get _ -> ()
  done;
  check_bool "~78% writes" true (!writes > 7_500 && !writes < 8_100)

let prefix_key_format () =
  let rng = Rng.create 10L in
  let gen = Prefix_dist.create rng in
  for _ = 1 to 1_000 do
    match Prefix_dist.next gen with
    | Prefix_dist.Put { key; _ } | Prefix_dist.Get { key } ->
      check_bool "prefix:suffix shape" true
        (String.length key = 12 && key.[0] = 'p' && key.[3] = ':')
  done

let prefix_value_sizes () =
  let rng = Rng.create 11L in
  let gen = Prefix_dist.create rng in
  let sizes = ref [] in
  while List.length !sizes < 2_000 do
    match Prefix_dist.next gen with
    | Prefix_dist.Put { value; _ } -> sizes := String.length value :: !sizes
    | Prefix_dist.Get _ -> ()
  done;
  List.iter (fun s -> check_bool "bounded" true (s >= 16 && s <= 1024)) !sizes;
  let mean = float_of_int (List.fold_left ( + ) 0 !sizes) /. float_of_int (List.length !sizes) in
  check_bool "small mean, heavy tail" true (mean > 40.0 && mean < 400.0);
  check_bool "tail reaches large values" true (List.exists (fun s -> s > 500) !sizes)

let prefix_skewed_prefixes () =
  let rng = Rng.create 12L in
  let gen = Prefix_dist.create rng in
  let freq = Array.make 64 0 in
  for _ = 1 to 10_000 do
    match Prefix_dist.next gen with
    | Prefix_dist.Put { key; _ } | Prefix_dist.Get { key } ->
      let p = int_of_string (String.sub key 1 2) in
      freq.(p) <- freq.(p) + 1
  done;
  let sorted = Array.copy freq in
  Array.sort (fun a b -> compare b a) sorted;
  (* top prefix takes a disproportionate share *)
  check_bool "skewed" true (sorted.(0) > 10_000 / 64 * 4)

let () =
  Alcotest.run "workloads"
    [
      ( "ycsb",
        [
          Alcotest.test_case "A mix" `Quick ycsb_a_mix;
          Alcotest.test_case "B mix" `Quick ycsb_b_mix;
          Alcotest.test_case "C mix" `Quick ycsb_c_mix;
          Alcotest.test_case "update-only" `Quick ycsb_update_only;
          Alcotest.test_case "insert grows keys" `Quick ycsb_insert_grows;
          Alcotest.test_case "keys in range" `Quick ycsb_keys_in_range;
          Alcotest.test_case "zipfian skew" `Quick ycsb_skewed;
          Alcotest.test_case "names" `Quick ycsb_names;
        ] );
      ( "prefix_dist",
        [
          Alcotest.test_case "write fraction" `Quick prefix_write_fraction;
          Alcotest.test_case "key format" `Quick prefix_key_format;
          Alcotest.test_case "value size distribution" `Quick prefix_value_sizes;
          Alcotest.test_case "prefix skew" `Quick prefix_skewed_prefixes;
        ] );
    ]
