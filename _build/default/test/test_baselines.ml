(* Tests for the comparison-system simulators (Linux-WAL, Aurora). *)

module Machine = Treesls_baselines.Machine
module Linux_redis = Treesls_baselines.Linux_redis
module Aurora = Treesls_baselines.Aurora
module Ycsb = Treesls_workloads.Ycsb
module Histogram = Treesls_util.Histogram

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Machine ---- *)

let machine_accounting () =
  let m = Machine.create () in
  Machine.charge m 1_000;
  Machine.record m 1_000;
  check_int "clock" 1_000 (Machine.now m);
  check_int "ops" 1 (Machine.ops m);
  Alcotest.(check (float 1e-6)) "elapsed" 1e-6 (Machine.elapsed_s m);
  Machine.reset_measurement m;
  check_int "ops reset" 0 (Machine.ops m);
  Alcotest.(check (float 1e-9)) "window reset" 0.0 (Machine.elapsed_s m)

let machine_throughput () =
  let m = Machine.create () in
  for _ = 1 to 1000 do
    Machine.charge m 1_000;
    Machine.record m 1_000
  done;
  (* 1000 ops in 1 ms = 1 Mops/s = 1000 Kops *)
  Alcotest.(check (float 1.0)) "throughput" 1000.0 (Machine.throughput_kops m)

(* ---- Linux Redis ---- *)

let run_linux mode workload n =
  let lx = Linux_redis.create mode in
  Linux_redis.load lx ~keys:1_000 ~value_size:100;
  let rng = Treesls_util.Rng.create 20L in
  let gen = Ycsb.create workload ~keys:1_000 rng in
  Machine.reset_measurement (Linux_redis.machine lx);
  for _ = 1 to n do
    Linux_redis.do_op lx ~value_size:100 (Ycsb.next gen)
  done;
  Machine.throughput_kops (Linux_redis.machine lx)

let linux_wal_slower_on_writes () =
  let base = run_linux Linux_redis.Base Ycsb.Update_only 5_000 in
  let wal = run_linux Linux_redis.Wal Ycsb.Update_only 5_000 in
  check_bool "wal slower" true (wal < base);
  (* the paper reports a 64-78% drop *)
  let drop = 1.0 -. (wal /. base) in
  check_bool "drop in the paper's band" true (drop > 0.55 && drop < 0.85)

let linux_wal_free_on_reads () =
  let base = run_linux Linux_redis.Base Ycsb.C 5_000 in
  let wal = run_linux Linux_redis.Wal Ycsb.C 5_000 in
  Alcotest.(check (float 1.0)) "reads unaffected by WAL" base wal

(* ---- Aurora ---- *)

let fill_aurora a n =
  for i = 0 to n - 1 do
    Aurora.put a ~key:(Printf.sprintf "k%06d" i) ~value:"value"
  done

let aurora_get_put () =
  let a = Aurora.create Aurora.Base in
  Aurora.put a ~key:"x" ~value:"1";
  Alcotest.(check (option string)) "get" (Some "1") (Aurora.get a ~key:"x");
  Alcotest.(check (option string)) "missing" None (Aurora.get a ~key:"nope")

let aurora_ckpt_floor () =
  (* a 1ms interval cannot be honoured: flushes take >= 5ms *)
  let a = Aurora.create (Aurora.Ckpt 1_000_000) in
  fill_aurora a 60_000;
  check_bool "checkpoints happened" true (Aurora.checkpoints a > 1);
  check_bool "effective interval floored at flush time" true
    (Aurora.avg_effective_interval_ns a >= 5_000_000)

let aurora_ckpt_interval_respected () =
  let a = Aurora.create (Aurora.Ckpt 20_000_000) in
  fill_aurora a 60_000;
  check_bool "some checkpoints" true (Aurora.checkpoints a >= 2);
  check_bool "interval >= configured" true (Aurora.avg_effective_interval_ns a >= 20_000_000)

let aurora_mode_ordering () =
  let tput mode =
    let a = Aurora.create mode in
    fill_aurora a 2_000;
    Machine.reset_measurement (Aurora.machine a);
    fill_aurora a 20_000;
    Machine.throughput_kops (Aurora.machine a)
  in
  let base = tput Aurora.Base in
  let ckpt = tput (Aurora.Ckpt 5_000_000) in
  let api = tput Aurora.Api in
  let wal = tput Aurora.Base_wal in
  check_bool "ckpt <= base" true (ckpt <= base);
  check_bool "api well below base" true (api < base *. 0.5);
  check_bool "wal well below base" true (wal < base *. 0.5)

let aurora_api_barrier_in_tail () =
  let a = Aurora.create Aurora.Api in
  let h = Histogram.create () in
  let m = Aurora.machine a in
  for i = 0 to 2_000 do
    let t0 = Machine.now m in
    Aurora.put a ~key:(string_of_int i) ~value:"v";
    Histogram.add h (Machine.now m - t0)
  done;
  (* the periodic device barrier must be visible at P99.5 but not P50 *)
  check_bool "p50 cheap" true (Histogram.percentile h 50.0 < 10_000);
  check_bool "tail sees barrier" true (Histogram.percentile h 99.5 > 100_000)

let () =
  Alcotest.run "baselines"
    [
      ( "machine",
        [
          Alcotest.test_case "accounting" `Quick machine_accounting;
          Alcotest.test_case "throughput" `Quick machine_throughput;
        ] );
      ( "linux",
        [
          Alcotest.test_case "WAL slower on writes" `Quick linux_wal_slower_on_writes;
          Alcotest.test_case "WAL free on reads" `Quick linux_wal_free_on_reads;
        ] );
      ( "aurora",
        [
          Alcotest.test_case "get/put" `Quick aurora_get_put;
          Alcotest.test_case "checkpoint frequency floor" `Quick aurora_ckpt_floor;
          Alcotest.test_case "interval respected when above floor" `Quick
            aurora_ckpt_interval_respected;
          Alcotest.test_case "mode throughput ordering" `Quick aurora_mode_ordering;
          Alcotest.test_case "API barrier in the tail" `Quick aurora_api_barrier_in_tail;
        ] );
    ]
