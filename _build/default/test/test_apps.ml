(* Tests for the application suite: the PMO-resident KV store, the LSM
   stores, SQLite, Phoenix and the Memcached/Redis servers — including
   their Table 2 object censuses and post-recovery reattachment. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Census = Treesls_cap.Census
module Kvstore = Treesls_apps.Kvstore
module Kv_app = Treesls_apps.Kv_app
module Lsm = Treesls_apps.Lsm
module Sqlite = Treesls_apps.Sqlite
module Phoenix = Treesls_apps.Phoenix
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str_opt = Alcotest.(check (option string))

let boot () = System.boot ()

let mk_kv sys =
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"kvtest" ~threads:1 ~prio:5 in
  (k, p, Kvstore.create k p ~buckets:64 ~pages:32)

(* ---- Kvstore ---- *)

let kv_put_get () =
  let sys = boot () in
  let _, _, kv = mk_kv sys in
  Kvstore.put kv ~key:"a" ~value:"1";
  check_str_opt "get" (Some "1") (Kvstore.get kv ~key:"a");
  check_bool "mem" true (Kvstore.mem kv ~key:"a");
  check_str_opt "missing" None (Kvstore.get kv ~key:"zzz");
  check_int "count" 1 (Kvstore.count kv)

let kv_update_in_place () =
  let sys = boot () in
  let _, _, kv = mk_kv sys in
  Kvstore.put kv ~key:"k" ~value:"aaaa";
  let used = Kvstore.bytes_used kv in
  Kvstore.put kv ~key:"k" ~value:"bb";
  check_str_opt "shrunk update" (Some "bb") (Kvstore.get kv ~key:"k");
  check_int "in place: no growth" used (Kvstore.bytes_used kv);
  check_int "count stable" 1 (Kvstore.count kv)

let kv_update_grow () =
  let sys = boot () in
  let _, _, kv = mk_kv sys in
  Kvstore.put kv ~key:"k" ~value:"aa";
  Kvstore.put kv ~key:"k" ~value:(String.make 100 'b');
  check_str_opt "grown value" (Some (String.make 100 'b')) (Kvstore.get kv ~key:"k");
  check_int "count stable" 1 (Kvstore.count kv)

(* regression: an update that outgrows its entry must unlink the stale
   entry, or a later delete resurrects the old value *)
let kv_grown_update_then_delete () =
  let sys = boot () in
  let _, _, kv = mk_kv sys in
  Kvstore.put kv ~key:"k" ~value:"small";
  Kvstore.put kv ~key:"k" ~value:(String.make 200 'L');
  check_bool "deleted" true (Kvstore.delete kv ~key:"k");
  check_str_opt "stays deleted (no stale resurrection)" None (Kvstore.get kv ~key:"k");
  check_int "count consistent" 0 (Kvstore.count kv);
  (* and re-inserting counts correctly *)
  Kvstore.put kv ~key:"k" ~value:"again";
  check_int "recounted" 1 (Kvstore.count kv)

let kv_delete () =
  let sys = boot () in
  let _, _, kv = mk_kv sys in
  Kvstore.put kv ~key:"a" ~value:"1";
  Kvstore.put kv ~key:"b" ~value:"2";
  check_bool "deleted" true (Kvstore.delete kv ~key:"a");
  check_bool "gone" false (Kvstore.mem kv ~key:"a");
  check_str_opt "other intact" (Some "2") (Kvstore.get kv ~key:"b");
  check_bool "delete missing" false (Kvstore.delete kv ~key:"a");
  check_int "count" 1 (Kvstore.count kv)

let kv_collisions () =
  let sys = boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"coll" ~threads:1 ~prio:5 in
  (* 2 buckets force chains *)
  let kv = Kvstore.create k p ~buckets:2 ~pages:32 in
  for i = 0 to 49 do
    Kvstore.put kv ~key:(Printf.sprintf "key%d" i) ~value:(string_of_int i)
  done;
  check_int "all present" 50 (Kvstore.count kv);
  for i = 0 to 49 do
    check_str_opt "chained lookup" (Some (string_of_int i))
      (Kvstore.get kv ~key:(Printf.sprintf "key%d" i))
  done

let kv_full () =
  let sys = boot () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"full" ~threads:1 ~prio:5 in
  let kv = Kvstore.create k p ~buckets:8 ~pages:3 in
  Alcotest.check_raises "region exhausted" Kvstore.Full (fun () ->
      for i = 0 to 10_000 do
        Kvstore.put kv ~key:(Printf.sprintf "k%d" i) ~value:(String.make 64 'v')
      done)

let kv_attach_roundtrip () =
  let sys = boot () in
  let k, p, kv = mk_kv sys in
  Kvstore.put kv ~key:"x" ~value:"42";
  let kv2 = Kvstore.attach k p ~vpn:(Kvstore.base_vpn kv) in
  check_str_opt "attached view" (Some "42") (Kvstore.get kv2 ~key:"x");
  Kvstore.put kv2 ~key:"y" ~value:"43";
  check_str_opt "shared state" (Some "43") (Kvstore.get kv ~key:"y")

let kv_persists_across_crash () =
  let sys = boot () in
  let k, p, kv = mk_kv sys in
  Kvstore.put kv ~key:"stable" ~value:"yes";
  ignore (System.checkpoint sys);
  Kvstore.put kv ~key:"volatile" ~value:"no";
  let _ = System.crash_and_recover sys in
  ignore (k, p);
  let k = System.kernel sys in
  let p = Option.get (Kernel.find_process k ~name:"kvtest") in
  let kv = Kvstore.attach k p ~vpn:(Kvstore.base_vpn kv) in
  check_str_opt "committed key" (Some "yes") (Kvstore.get kv ~key:"stable");
  check_str_opt "uncommitted rolled back" None (Kvstore.get kv ~key:"volatile")

(* ---- Kv_app (Memcached / Redis) ---- *)

let app_census profile (dcg, dth, dipc, dnt, dpmo, dvms) () =
  let sys = boot () in
  let k = System.kernel sys in
  let before = Census.collect ~root:(Kernel.root k) in
  let _app = Kv_app.launch ~keys_hint:1_000 sys profile in
  let after = Census.collect ~root:(Kernel.root k) in
  let d = Census.diff after before in
  check_int "cap groups" dcg d.Census.cap_groups;
  check_int "threads" dth d.Census.threads;
  check_int "ipc" dipc d.Census.ipcs;
  check_int "notifications" dnt d.Census.notifications;
  check_int "pmos" dpmo d.Census.pmos;
  check_int "vmspaces" dvms d.Census.vmspaces

let app_ops () =
  let sys = boot () in
  let app = Kv_app.launch ~keys_hint:1_000 sys Kv_app.Memcached in
  Kv_app.set app ~key:"k" ~value:"v";
  check_str_opt "get" (Some "v") (Kv_app.get app ~key:"k");
  check_bool "del" true (Kv_app.del app ~key:"k");
  check_str_opt "gone" None (Kv_app.get app ~key:"k");
  Kv_app.set_i app 5;
  check_bool "set_i/get_i" true (Kv_app.get_i app 5 <> None);
  check_int "value size" (Kv_app.value_size app) (String.length (Option.get (Kv_app.get_i app 5)))

let app_refresh_after_crash () =
  let sys = boot () in
  let app = Kv_app.launch ~keys_hint:1_000 sys Kv_app.Redis in
  Kv_app.set_i app 1;
  ignore (System.checkpoint sys);
  Kv_app.set_i app 2;
  let _ = System.crash_and_recover sys in
  Kv_app.refresh app;
  check_bool "committed key" true (Kv_app.get_i app 1 <> None);
  check_bool "uncommitted rolled back" true (Kv_app.get_i app 2 = None);
  (* the app continues to work after recovery *)
  Kv_app.set_i app 3;
  check_bool "works after recovery" true (Kv_app.get_i app 3 <> None)

(* ---- Lsm ---- *)

let lsm_put_get () =
  let sys = boot () in
  let db = Lsm.launch sys Lsm.Rocksdb in
  Lsm.put db ~key:"a" ~value:"1";
  check_str_opt "memtable hit" (Some "1") (Lsm.get db ~key:"a");
  check_int "memtable count" 1 (Lsm.memtable_count db)

let lsm_flush_threshold () =
  let sys = boot () in
  let db = Lsm.launch ~memtable_kb:16 sys Lsm.Rocksdb in
  check_int "no flush yet" 0 (Lsm.flushes db);
  for i = 0 to 400 do
    Lsm.put db ~key:(Printf.sprintf "k%06d" i) ~value:(String.make 100 'v')
  done;
  check_bool "flushed" true (Lsm.flushes db > 0);
  (* memtable was reset and keeps accepting writes *)
  Lsm.put db ~key:"after" ~value:"x";
  check_str_opt "works after flush" (Some "x") (Lsm.get db ~key:"after")

let lsm_wal_flag () =
  let sys = boot () in
  let with_wal = Lsm.launch ~wal:true sys Lsm.Rocksdb in
  check_bool "wal on" true (Lsm.wal_enabled with_wal);
  (* WAL writes consume extra simulated time per put *)
  let t0 = System.now_ns sys in
  for i = 0 to 99 do
    Lsm.put with_wal ~key:(Printf.sprintf "k%d" i) ~value:"vvvv"
  done;
  let with_time = System.now_ns sys - t0 in
  check_bool "wal costs time" true (with_time > 0)

let lsm_census () =
  let sys = boot () in
  let k = System.kernel sys in
  let before = Census.collect ~root:(Kernel.root k) in
  let _db = Lsm.launch sys Lsm.Leveldb in
  let d = Census.diff (Census.collect ~root:(Kernel.root k)) before in
  (* Table 2 row C *)
  check_int "cap groups" 1 d.Census.cap_groups;
  check_int "threads" 5 d.Census.threads;
  check_int "ipc" 3 d.Census.ipcs;
  check_int "notifications" 2 d.Census.notifications;
  check_int "pmos" 18 d.Census.pmos;
  check_int "vmspaces" 1 d.Census.vmspaces

let lsm_fillbatch () =
  let sys = boot () in
  let db = Lsm.launch sys Lsm.Leveldb in
  Lsm.fillbatch db ~base:0 ~count:64;
  check_str_opt "sequential key" (Some (String.make 100 'b')) (Lsm.get db ~key:"seq0000000042")

(* ---- Sqlite ---- *)

let sqlite_census () =
  let sys = boot () in
  let k = System.kernel sys in
  let before = Census.collect ~root:(Kernel.root k) in
  let _db = Sqlite.launch sys in
  let d = Census.diff (Census.collect ~root:(Kernel.root k)) before in
  (* Table 2 row B *)
  check_int "cap groups" 1 d.Census.cap_groups;
  check_int "threads" 4 d.Census.threads;
  check_int "ipc" 3 d.Census.ipcs;
  check_int "notifications" 0 d.Census.notifications;
  check_int "pmos" 14 d.Census.pmos;
  check_int "vmspaces" 1 d.Census.vmspaces

let sqlite_mixed_ops () =
  let sys = boot () in
  let db = Sqlite.launch sys in
  Sqlite.op_step db Sqlite.Insert 0;
  Sqlite.op_step db Sqlite.Insert 0;
  check_int "two rows" 2 (Sqlite.rows db);
  Sqlite.op_step db Sqlite.Update 0;
  check_int "update keeps rows" 2 (Sqlite.rows db);
  Sqlite.op_step db Sqlite.Delete 0;
  check_int "delete removes" 1 (Sqlite.rows db);
  Sqlite.op_step db Sqlite.Read 1;
  let rng = Rng.create 1L in
  for _ = 1 to 200 do
    Sqlite.step db rng
  done;
  check_bool "rows bounded" true (Sqlite.rows db >= 0)

let sqlite_refresh () =
  let sys = boot () in
  let db = Sqlite.launch sys in
  Sqlite.op_step db Sqlite.Insert 0;
  ignore (System.checkpoint sys);
  Sqlite.op_step db Sqlite.Insert 0;
  let _ = System.crash_and_recover sys in
  Sqlite.refresh db;
  check_int "rolled back to one row" 1 (Sqlite.rows db)

(* ---- Phoenix ---- *)

let phoenix_census kind (dth, dipc, dnt, dpmo) () =
  let sys = boot () in
  let k = System.kernel sys in
  let before = Census.collect ~root:(Kernel.root k) in
  let _app = Phoenix.launch sys kind in
  let d = Census.diff (Census.collect ~root:(Kernel.root k)) before in
  check_int "threads" dth d.Census.threads;
  check_int "ipc" dipc d.Census.ipcs;
  check_int "notifications" dnt d.Census.notifications;
  check_int "pmos" dpmo d.Census.pmos

let phoenix_steps () =
  let sys = boot () in
  let rng = Rng.create 2L in
  List.iter
    (fun kind ->
      let app = Phoenix.launch sys kind in
      let t0 = System.now_ns sys in
      for _ = 1 to 10 do
        Phoenix.step app rng
      done;
      check_int (Phoenix.name app ^ " steps") 10 (Phoenix.progress app);
      check_bool (Phoenix.name app ^ " advances time") true (System.now_ns sys > t0))
    [ Phoenix.Wordcount; Phoenix.Kmeans; Phoenix.Pca ]

let phoenix_wordcount_counts () =
  let sys = boot () in
  let rng = Rng.create 3L in
  let app = Phoenix.launch sys Phoenix.Wordcount in
  for _ = 1 to 50 do
    Phoenix.step app rng
  done;
  (* survives a crash: word counts roll back to the checkpoint *)
  ignore (System.checkpoint sys);
  for _ = 1 to 10 do
    Phoenix.step app rng
  done;
  let _ = System.crash_and_recover sys in
  Phoenix.refresh app;
  for _ = 1 to 5 do
    Phoenix.step app rng
  done;
  check_bool "continues after recovery" true (Phoenix.progress app > 0)

let () =
  Alcotest.run "apps"
    [
      ( "kvstore",
        [
          Alcotest.test_case "put/get" `Quick kv_put_get;
          Alcotest.test_case "update in place" `Quick kv_update_in_place;
          Alcotest.test_case "update grows" `Quick kv_update_grow;
          Alcotest.test_case "grown update then delete (regression)" `Quick
            kv_grown_update_then_delete;
          Alcotest.test_case "delete" `Quick kv_delete;
          Alcotest.test_case "hash collisions" `Quick kv_collisions;
          Alcotest.test_case "region full" `Quick kv_full;
          Alcotest.test_case "attach roundtrip" `Quick kv_attach_roundtrip;
          Alcotest.test_case "persists across crash" `Quick kv_persists_across_crash;
        ] );
      ( "kv_app",
        [
          Alcotest.test_case "memcached census (Table 2 G)" `Quick
            (app_census Kv_app.Memcached (2, 42, 19, 17, 154, 2));
          Alcotest.test_case "redis census (Table 2 F)" `Quick
            (app_census Kv_app.Redis (2, 77, 60, 6, 262, 2));
          Alcotest.test_case "operations" `Quick app_ops;
          Alcotest.test_case "refresh after crash" `Quick app_refresh_after_crash;
        ] );
      ( "lsm",
        [
          Alcotest.test_case "put/get" `Quick lsm_put_get;
          Alcotest.test_case "flush threshold" `Quick lsm_flush_threshold;
          Alcotest.test_case "wal flag" `Quick lsm_wal_flag;
          Alcotest.test_case "leveldb census (Table 2 C)" `Quick lsm_census;
          Alcotest.test_case "fillbatch" `Quick lsm_fillbatch;
        ] );
      ( "sqlite",
        [
          Alcotest.test_case "census (Table 2 B)" `Quick sqlite_census;
          Alcotest.test_case "mixed operations" `Quick sqlite_mixed_ops;
          Alcotest.test_case "refresh after crash" `Quick sqlite_refresh;
        ] );
      ( "phoenix",
        [
          Alcotest.test_case "wordcount census (Table 2 D)" `Quick
            (phoenix_census Phoenix.Wordcount (12, 3, 8, 31));
          Alcotest.test_case "kmeans census (Table 2 E)" `Quick
            (phoenix_census Phoenix.Kmeans (12, 3, 9, 24));
          Alcotest.test_case "steps advance" `Quick phoenix_steps;
          Alcotest.test_case "wordcount crash/continue" `Quick phoenix_wordcount_counts;
        ] );
    ]
