(* Figure 12: Redis SET benchmark with and without external synchrony.
   50 clients each keep a batch of 32 requests outstanding (window 1600).
   With external synchrony, replies are parked in the network server's
   persistent ring and only released when a checkpoint commits: latency
   grows by about one checkpoint interval and the blocked clients cap
   throughput at window/interval. *)

open Exp_common
module Net_server = Treesls_extsync.Net_server

(* 50 clients x batch 16: the batch is scaled with our (lower) simulated
   service rate so client blocking binds at the same interval ratio as the
   paper's 50 x 32 against its faster testbed. *)
let window = 50 * 16
let n_ops = 60_000

type mode = Baseline | Ckpt_only | Ext_sync

let mode_name = function
  | Baseline -> "Baseline"
  | Ckpt_only -> "TreeSLS"
  | Ext_sync -> "TreeSLS-ExtSync"

let run_one mode ~interval_ms =
  let features =
    match mode with
    | Baseline -> features ~ckpt:false ~track:false ~copy:false ~hybrid:false ()
    | Ckpt_only | Ext_sync -> full_features ()
  in
  let sys = boot ~interval_us:(interval_ms * 1000) ~features () in
  (match mode with Baseline -> System.set_interval_us sys None | Ckpt_only | Ext_sync -> ());
  let rng = Rng.create 31L in
  let app = Kv_app.launch ~keys_hint:30_000 ~value_size:1024 sys Kv_app.Redis in
  for i = 0 to 9_999 do
    Kv_app.set_i app i
  done;
  match mode with
  | Baseline | Ckpt_only ->
    let r = closed_loop_lat sys ~n:n_ops (fun _ -> Kv_app.set_i app (Rng.int rng 30_000)) in
    (r.p50_us /. 1e3, r.tput_kops)
  | Ext_sync ->
    let h = Histogram.create () in
    let outstanding = ref 0 and done_ops = ref 0 in
    let netdrv =
      match Kernel.find_process (System.kernel sys) ~name:"netdrv" with
      | Some p -> p
      | None -> failwith "netdrv missing"
    in
    let deliver ~client:_ ~sent_ns ~payload:_ =
      Histogram.add h (System.now_ns sys - sent_ns);
      decr outstanding;
      incr done_ops
    in
    let net = Net_server.create (System.kernel sys) (System.manager sys) ~proc:netdrv ~deliver in
    let t0 = System.now_ns sys in
    while !done_ops < n_ops do
      if !outstanding >= window then
        (* all client credits consumed: idle until the next checkpoint
           releases the replies *)
        System.advance_us sys 50
      else begin
        Kv_app.set_i app (Rng.int rng 30_000);
        if Net_server.send net ~client:(Rng.int rng 50) (Bytes.of_string "+OK") then
          incr outstanding
        else System.advance_us sys 50;
        ignore (System.tick sys)
      end
    done;
    let sim_ns = System.now_ns sys - t0 in
    let r = lat_of_histogram h ~ops:!done_ops ~sim_ns in
    (r.p50_us /. 1e3, r.tput_kops)

let run () =
  let rows =
    List.concat_map
      (fun interval_ms ->
        List.map
          (fun mode ->
            let p50_ms, tput = run_one mode ~interval_ms in
            emit_row
              ~config:
                [ ("interval_ms", string_of_int interval_ms); ("mode", mode_name mode) ]
              ~metrics:[ ("p50_ms", p50_ms); ("tput_kops", tput) ];
            [
              Printf.sprintf "%d ms" interval_ms;
              mode_name mode;
              Printf.sprintf "%.2f" p50_ms;
              f1 tput;
            ])
          [ Baseline; Ckpt_only; Ext_sync ])
      [ 1; 5; 10 ]
  in
  Table.print ~title:"Figure 12: Redis SET with/without external synchrony"
    ~header:[ "Ckpt interval"; "Config"; "P50 latency (ms)"; "Throughput (Kops/s)" ]
    rows
