(* Recovery observability: per-phase restore time (RTO) + flight recorder
   (exp_rto).

   Preloads a KV live set under 1 ms checkpoints, power-cuts it, and reads
   the sealed {!Treesls_obs.Rto} record back out of the recovered system —
   then varies, independently, the amount of *cold* NVM (capacity that
   holds no live data) and the amount of *live* state (keys the workload
   actually committed).  The paper's restore walks only reachable
   checkpoint metadata (Fig. 5 step 7), so restore time must track the
   live set, not the NVM capacity.

   Built-in correctness gates (the harness exits 2 if any fails):
   - the per-phase exclusive breakdown is exact: sum(phases) + untracked
     = total, and untracked stays <= 1% of total (nothing material happens
     outside a named phase);
   - doubling cold NVM at a fixed live set moves restore time by <= 1.1x,
     while quadrupling the live set moves it by > 1.1x (restore scales
     with live metadata, not capacity);
   - the flight-recorder Perfetto export round-trips: it names both the
     ["pre-crash"] and ["recovery"] tracks, carries the crash-instant
     marker, and holds every captured pre-crash event;
   - a small crash-schedule sweep reports an RTO record (total > 0, exact
     phase sum) for every passing schedule, with zero failures and the
     merged [restore.*] histograms populated once per recovery. *)

open Exp_common
module Rto = Treesls_obs.Rto
module C = Treesls_crashtest.Crashtest

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("rto: " ^ m);
      exit 2)
    fmt

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* One victim run: boot with [nvm_pages] capacity, commit a live set of
   [apps] KV server/client pairs each holding [live_keys] keys, run a
   short steady phase, power-cut, recover, and return the sealed recovery
   record plus the flight export.  [apps] scales the live *object* set
   (processes, threads, PMOs, IPC connections) the restore must
   materialize; [live_keys] scales the checkpointed pages. *)
let run_victim ~nvm_pages ~apps ~live_keys ~ops =
  let sys = boot ~nvm_pages () in
  System.enable_tracing sys;
  let rng = Rng.create 11L in
  let instances =
    List.init apps (fun _ ->
        Kv_app.launch ~keys_hint:live_keys ~value_size:256 sys Kv_app.Memcached)
  in
  List.iter
    (fun app ->
      for i = 0 to live_keys - 1 do
        Kv_app.set_i app i;
        ignore (System.tick sys)
      done)
    instances;
  ignore (System.checkpoint sys);
  let first = List.hd instances in
  for _ = 1 to ops do
    Kv_app.set_i first (Rng.int rng live_keys);
    ignore (System.tick sys)
  done;
  ignore (System.crash_and_recover sys);
  Kv_app.refresh first;
  (* one post-recovery request seals time-to-first-request *)
  Kv_app.set_i first 0;
  match (System.last_recovery sys, System.export_flight sys) with
  | Some r, Some flight -> (r, flight)
  | _ -> die "nvm_pages=%d apps=%d live=%d: no recovery record sealed" nvm_pages apps live_keys

let phase_sum (r : Rto.record) = List.fold_left (fun a (_, ns) -> a + ns) 0 r.Rto.r_phases

let check_exact name (r : Rto.record) =
  if r.Rto.r_total_ns <= 0 then die "%s: total_ns %d not positive" name r.Rto.r_total_ns;
  if phase_sum r + r.Rto.r_untracked_ns <> r.Rto.r_total_ns then
    die "%s: phases %d + untracked %d <> total %d" name (phase_sum r) r.Rto.r_untracked_ns
      r.Rto.r_total_ns;
  if float_of_int r.Rto.r_untracked_ns > 0.01 *. float_of_int r.Rto.r_total_ns then
    die "%s: untracked %d ns exceeds 1%% of total %d ns" name r.Rto.r_untracked_ns
      r.Rto.r_total_ns

let check_flight (r : Rto.record) flight =
  List.iter
    (fun needle -> if not (contains flight needle) then die "flight export lacks %S" needle)
    [ "\"pre-crash\""; "\"recovery\""; "\"marker\""; "\"flight\""; "\"process_name\"" ];
  if List.length r.Rto.r_pre_crash = 0 then die "flight captured no pre-crash events";
  (* every captured pre-crash event's name must appear in the export *)
  List.iter
    (fun (e : Treesls_obs.Trace.event) ->
      if not (contains flight (Printf.sprintf "%S" e.Treesls_obs.Trace.name)) then
        die "flight export lost pre-crash event %S" e.Treesls_obs.Trace.name)
    r.Rto.r_pre_crash

let check_sweep () =
  let cfg = { C.default_config with C.ops = 60; commit_cap = 2; per_site_cap = 1; op_cap = 2 } in
  let sweep = C.run cfg in
  if sweep.C.failed <> [] then
    die "crashtest sweep reported %d failures" (List.length sweep.C.failed);
  let recovered = ref 0 in
  List.iter
    (fun (res : C.result) ->
      match res.C.recovery with
      | Some r ->
        incr recovered;
        check_exact ("sweep " ^ C.point_to_string res.C.point) r
      | None ->
        if C.outcome_is_pass res.C.outcome then
          die "passing schedule %s has no recovery record" (C.point_to_string res.C.point))
    sweep.C.results;
  if !recovered = 0 then die "sweep sealed no recovery records";
  (match List.assoc_opt "restore.total_ns" sweep.C.rto_stats with
  | None -> die "sweep rto_stats lacks restore.total_ns"
  | Some h ->
    if Histogram.count h <> !recovered then
      die "restore.total_ns histogram holds %d samples, expected %d recoveries"
        (Histogram.count h) !recovered);
  (List.length sweep.C.results, !recovered, sweep.C.rto_stats)

let run () =
  let scale = if !smoke then 1 else 2 in
  let live = 1_500 * scale and ops = 400 * scale in
  let base_pages = 1 lsl 15 in
  (* cold-data axis: same live set, double the NVM capacity *)
  let small, small_flight = run_victim ~nvm_pages:base_pages ~apps:1 ~live_keys:live ~ops in
  let cold, _ = run_victim ~nvm_pages:(2 * base_pages) ~apps:1 ~live_keys:live ~ops in
  (* live-state axis: same capacity, 4x the live apps (objects and pages) *)
  let big, _ = run_victim ~nvm_pages:base_pages ~apps:4 ~live_keys:live ~ops in
  check_exact "base" small;
  check_exact "cold" cold;
  check_exact "big" big;
  check_flight small small_flight;
  let cold_ratio = float_of_int cold.Rto.r_total_ns /. float_of_int small.Rto.r_total_ns in
  let live_ratio = float_of_int big.Rto.r_total_ns /. float_of_int small.Rto.r_total_ns in
  if cold_ratio > 1.1 then
    die "doubling cold NVM scaled restore %.2fx (> 1.1x): restore depends on capacity"
      cold_ratio;
  if live_ratio <= 1.1 then
    die "4x live apps scaled restore only %.2fx (<= 1.1x): restore not tracking live state"
      live_ratio;
  let schedules, recoveries, rto_stats = check_sweep () in
  let row name (r : Rto.record) =
    let phase p = Option.value ~default:0 (List.assoc_opt p r.Rto.r_phases) in
    [
      name;
      string_of_int r.Rto.r_restored_objects;
      string_of_int r.Rto.r_pages_restored;
      f1 (float_of_int r.Rto.r_total_ns /. 1e3);
      f1 (float_of_int (phase "journal_replay") /. 1e3);
      f1 (float_of_int (phase "page_remap") /. 1e3);
      f1 (float_of_int (phase "materialize") /. 1e3);
      f1 (float_of_int (phase "ring_reattach") /. 1e3);
      f1 (100.0 *. float_of_int r.Rto.r_untracked_ns /. float_of_int r.Rto.r_total_ns);
      (if r.Rto.r_ttfr_ns >= 0 then f1 (float_of_int r.Rto.r_ttfr_ns /. 1e3) else "-");
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Restore-time (RTO) profile: capacity vs live-state scaling (cold 2x -> %.2fx, live \
          4x -> %.2fx; phase sums exact, %d/%d sweep schedules sealed RTO records)"
         cold_ratio live_ratio recoveries schedules)
    ~header:
      [
        "run"; "objs"; "pages"; "total us"; "journal"; "remap"; "mater."; "ring"; "untrk %";
        "ttfr us";
      ]
    [
      row "base" small;
      row "cold 2x nvm" cold;
      row "live 4x apps" big;
    ];
  List.iter
    (fun (name, (r : Rto.record)) ->
      emit_row
        ~config:[ ("run", name); ("live_keys", string_of_int live); ("ops", string_of_int ops) ]
        ~metrics:
          ([
             ("total_ns", float_of_int r.Rto.r_total_ns);
             ("downtime_ns", float_of_int r.Rto.r_downtime_ns);
             ("untracked_ns", float_of_int r.Rto.r_untracked_ns);
             ("ttfr_ns", float_of_int r.Rto.r_ttfr_ns);
             ("objects_restored", float_of_int r.Rto.r_restored_objects);
             ("pages_restored", float_of_int r.Rto.r_pages_restored);
             ("pre_crash_events", float_of_int (List.length r.Rto.r_pre_crash));
           ]
          @ List.map
              (fun (p, ns) -> ("phase." ^ p ^ "_ns", float_of_int ns))
              r.Rto.r_phases))
    [ ("base", small); ("cold_2x", cold); ("live_4x", big) ];
  emit_row
    ~config:[ ("run", "sweep") ]
    ~metrics:
      ([
         ("schedules", float_of_int schedules);
         ("recoveries", float_of_int recoveries);
         ("cold_ratio", cold_ratio);
         ("live_ratio", live_ratio);
       ]
      @ List.concat_map
          (fun (name, h) ->
            [
              (name ^ ".mean", Histogram.mean h);
              (name ^ ".p99", float_of_int (Histogram.percentile h 99.0));
            ])
          (List.filter (fun (n, _) -> n = "restore.total_ns" || n = "restore.downtime_ns")
             rto_stats))
