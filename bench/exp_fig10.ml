(* Figure 10: breakdown of runtime overhead and the effect of hybrid
   copy, at 1000 Hz checkpointing. Configurations are cumulative:
     base            no checkpointing
     +checkpoint     STW tree checkpoint only (pages untracked)
     +page fault     dirty pages re-protected, faults taken, no copying
     +page memcpy    full copy-on-write backups (correct persistence)
     +hybrid copy    hot pages cached in DRAM and stop-and-copied
   The bars report run time normalised to base. *)

open Exp_common

let configs =
  [
    ("base (no checkpoint)", features ~ckpt:false ~track:false ~copy:false ~hybrid:false ());
    ("+ checkpoint", features ~ckpt:true ~track:false ~copy:false ~hybrid:false ());
    ("+ page fault", features ~ckpt:true ~track:true ~copy:false ~hybrid:false ());
    ("+ page memcpy", features ~ckpt:true ~track:true ~copy:true ~hybrid:false ());
    ("+ hybrid copy", features ~ckpt:true ~track:true ~copy:true ~hybrid:true ());
  ]

let workloads = [ W_memcached; W_redis; W_kmeans; W_pca ]

let measure w feats =
  let sys = boot ~features:{ feats with State.ckpt_enabled = feats.State.ckpt_enabled } () in
  let rng = Rng.create 17L in
  let app = launch sys rng w in
  (* warmup outside measurement *)
  run_ops sys ~n:2_000 app.step;
  let t0 = System.now_ns sys in
  run_ops sys ~n:10_000 app.step;
  System.now_ns sys - t0

let run () =
  let rows =
    List.map
      (fun w ->
        let times = List.map (fun (_, f) -> float_of_int (measure w f)) configs in
        let base = List.hd times in
        workload_name w :: List.map (fun t -> f2 (t /. base)) times)
      workloads
  in
  Table.print ~title:"Figure 10: runtime overhead breakdown (normalised run time)"
    ~header:("Workload" :: List.map fst configs)
    rows
