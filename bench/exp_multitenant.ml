(* Multi-tenant YCSB serving: per-tenant tail latency vs tenant count
   (ISSUE 10 tentpole gate).

   N tenants each own a capability subtree holding a KV shard, its client
   and a private named extsync reply ring (lib/serve).  An open-loop
   YCSB-style generator drives every tenant at the same per-tenant arrival
   rate, so the AGGREGATE load scales linearly with the tenant count while
   each tenant's own offered load stays fixed.  Whole-system checkpointing
   is the shared resource: if the STW pause grew with total state, every
   tenant's visible (enqueue->visible) tail would degrade as neighbours
   pile in.

   Self-gates (exit 2 on failure):
   + isolation: with incremental_walk + async_drain on, the worst
     per-tenant p99 enqueue->visible latency at the highest tenant count
     stays within 1.3x the single-tenant baseline;
   + the eager/full-walk ablation really is the degrading regime: its
     mean STW at the highest tenant count exceeds the incremental mode's
     by at least 3x (the walk scales with total objects, not dirty ones);
   + attribution: in every run, each report's per-subtree (per_group)
     nanoseconds sum EXACTLY to its captree walk time — the per-tenant
     cost breakdown never invents or loses time;
   + liveness: every tenant's ring delivered at least one reply in every
     configuration (no tenant starved by its neighbours). *)

open Exp_common
module Serve = Treesls_serve.Serve
module Tenant = Treesls_serve.Tenant
module Rtrace = Treesls_obs.Rtrace
module Drain = Treesls_ckpt.Drain

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("multitenant: " ^ m); exit 2) fmt

let tenant_counts () = if !smoke then [ 1; 4; 16 ] else [ 1; 4; 16; 64 ]
let ops_per_tenant () = if !smoke then 200 else 400
let interval_us = 500
let gap_ns = 10_000
let drain_batch = 16

type mode = Incr_async | Eager_full

let mode_name = function Incr_async -> "incr+async" | Eager_full -> "eager"

type measured = {
  m_mode : mode;
  m_tenants : int;
  m_worst_p99_us : float;  (* worst tenant's enq2vis p99 *)
  m_med_p50_us : float;
  m_worst_e2e_p99_us : float;
  m_stw_mean_us : float;
  m_commits : int;
  m_delivered : int;
  m_shed : int;
  m_min_delivered : int;
  m_exact : bool;
  m_tenant_share : float;  (* tenant-owned fraction of attributed walk ns *)
}

let run_one mode ~tenants =
  let async = mode = Incr_async in
  let feats =
    features ~incr:async ~async ~ckpt:true ~track:true ~copy:true ~hybrid:true ()
  in
  (* 64 tenants x (shard store + ring + procs) outgrows the default
     arena once checkpoint copies are counted in *)
  let nvm_pages = if tenants >= 32 then 1 lsl 18 else 1 lsl 17 in
  let sys = boot ~interval_us ~features:feats ~nvm_pages () in
  if async then begin
    Manager.set_drain_policy (System.manager sys) Drain.Lazy;
    Manager.set_drain_batch (System.manager sys) drain_batch
  end;
  let cfg = { Serve.default_cfg with tenants; ops_per_tenant = ops_per_tenant (); gap_ns } in
  let srv = Serve.create sys cfg in
  Serve.run srv;
  let rows = Serve.rows srv in
  let us v = float_of_int v /. 1e3 in
  let p99s =
    List.map (fun (r : Serve.row) -> us r.Serve.r_enq2vis.Rtrace.s_p99_ns) rows
  in
  let p50s =
    List.sort compare
      (List.map (fun (r : Serve.row) -> us r.Serve.r_enq2vis.Rtrace.s_p50_ns) rows)
  in
  let total_ns = List.fold_left (fun a (_, ns) -> a + ns) 0 (Serve.attribution srv) in
  let tenant_ns =
    List.fold_left (fun a (r : Serve.row) -> a + r.Serve.r_group_ns) 0 rows
  in
  {
    m_mode = mode;
    m_tenants = tenants;
    m_worst_p99_us = List.fold_left Float.max 0.0 p99s;
    m_med_p50_us = List.nth p50s (List.length p50s / 2);
    m_worst_e2e_p99_us =
      List.fold_left
        (fun a (r : Serve.row) -> Float.max a (us r.Serve.r_e2e.Rtrace.s_p99_ns))
        0.0 rows;
    m_stw_mean_us = Serve.stw_mean_ns srv /. 1e3;
    m_commits = List.length (Serve.reports srv);
    m_delivered = List.fold_left (fun a (r : Serve.row) -> a + r.Serve.r_delivered) 0 rows;
    m_shed = List.fold_left (fun a (r : Serve.row) -> a + r.Serve.r_shed) 0 rows;
    m_min_delivered =
      List.fold_left (fun a (r : Serve.row) -> min a r.Serve.r_delivered) max_int rows;
    m_exact = Serve.attribution_exact srv;
    m_tenant_share = (if total_ns = 0 then 0.0 else float_of_int tenant_ns /. float_of_int total_ns);
  }

let run () =
  let measured =
    List.concat_map
      (fun mode -> List.map (fun n -> run_one mode ~tenants:n) (tenant_counts ()))
      [ Incr_async; Eager_full ]
  in
  List.iter
    (fun m ->
      emit_row
        ~config:
          [
            ("mode", mode_name m.m_mode);
            ("tenants", string_of_int m.m_tenants);
            ("ops_per_tenant", string_of_int (ops_per_tenant ()));
            ("gap_ns", string_of_int gap_ns);
            ("interval_us", string_of_int interval_us);
          ]
        ~metrics:
          [
            ("worst_p99_enq2vis_us", m.m_worst_p99_us);
            ("median_p50_enq2vis_us", m.m_med_p50_us);
            ("worst_p99_e2e_us", m.m_worst_e2e_p99_us);
            ("stw_mean_us", m.m_stw_mean_us);
            ("commits", float_of_int m.m_commits);
            ("delivered", float_of_int m.m_delivered);
            ("shed", float_of_int m.m_shed);
            ("attribution_exact", if m.m_exact then 1.0 else 0.0);
            ("tenant_attr_share", m.m_tenant_share);
          ])
    measured;
  Table.print
    ~title:
      (Printf.sprintf "Multi-tenant serving (open loop, %d ops/tenant, %dns gap, %dus interval)"
         (ops_per_tenant ()) gap_ns interval_us)
    ~header:
      [
        "Mode"; "Tenants"; "E2V p50 med (us)"; "E2V p99 worst"; "E2E p99 worst"; "STW mean (us)";
        "Commits"; "Delivered"; "Shed"; "Attr share";
      ]
    (List.map
       (fun m ->
         [
           mode_name m.m_mode;
           string_of_int m.m_tenants;
           f1 m.m_med_p50_us;
           f1 m.m_worst_p99_us;
           f1 m.m_worst_e2e_p99_us;
           f1 m.m_stw_mean_us;
           string_of_int m.m_commits;
           string_of_int m.m_delivered;
           string_of_int m.m_shed;
           f2 m.m_tenant_share;
         ])
       measured);
  (* gates *)
  let find mode n = List.find (fun m -> m.m_mode = mode && m.m_tenants = n) measured in
  let top = List.fold_left max 0 (tenant_counts ()) in
  List.iter
    (fun m ->
      if not m.m_exact then
        die "per-group attribution does not sum to captree time (%s, %d tenants)"
          (mode_name m.m_mode) m.m_tenants;
      if m.m_min_delivered <= 0 then
        die "a tenant's ring delivered nothing (%s, %d tenants)" (mode_name m.m_mode) m.m_tenants)
    measured;
  let base = find Incr_async 1 and peak = find Incr_async top in
  if peak.m_worst_p99_us > 1.3 *. base.m_worst_p99_us then
    die "p99 enq2vis not flat under incr+async: %d tenants %.1fus > 1.3 x single-tenant %.1fus"
      top peak.m_worst_p99_us base.m_worst_p99_us;
  let ablate = find Eager_full top in
  if ablate.m_stw_mean_us < 3.0 *. peak.m_stw_mean_us then
    die "eager/full-walk ablation does not degrade: mean STW %.1fus vs incremental %.1fus at %d tenants"
      ablate.m_stw_mean_us peak.m_stw_mean_us top;
  Printf.printf
    "\nmultitenant: p99 flat under incr+async (%.1fus @1 -> %.1fus @%d, <=1.3x); eager ablation STW %.1fus vs %.1fus\n"
    base.m_worst_p99_us peak.m_worst_p99_us top ablate.m_stw_mean_us peak.m_stw_mean_us
