(* Split-capture checkpointing (async drain) vs eager stop-and-copy — the
   ISSUE 9 tentpole gate.

   Both runs drive the same Memcached-style workload (open-loop SETs every
   [gap_ns], replies parked in the persistent network ring) at the same
   checkpoint interval.  A warmup phase lets the active list promote the
   hot value pages into the DRAM cache, so every subsequent window finds a
   large dirty DRAM-cached set — the page-heavy regime where eager
   checkpointing's pause is O(dirty pages).  The lazy run flips protections
   at STW and drains the copies in the background (one batch per op), so
   its pause should collapse to the O(dirty objects) capture.

   Self-gates (exit 2 on failure):
   - workload validity: the eager run really is page-heavy (>= 50% of the
     DRAM-cached pages dirty per window on average);
   - lazy mean STW <= 0.3x eager mean STW;
   - lazy write amplification (physical NVM bytes / logical dirty bytes,
     settled totals) <= 1.1x eager — deferring the copies must not write
     more than copying eagerly;
   - lazy p99 enqueue->visible <= eager p99 at the same interval — the
     drain must not delay commits past what the eager pause already cost;
   - a deterministic replay (explicit checkpoints, drain steps interleaved
     with app writes) recovers to the same restore fingerprint in both
     modes, and both perf runs audit clean. *)

open Exp_common
module Net_server = Treesls_extsync.Net_server
module Rtrace = Treesls_obs.Rtrace
module Probe = Treesls_obs.Probe
module Drain = Treesls_ckpt.Drain
module C = Treesls_crashtest.Crashtest

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("async_drain: " ^ m); exit 2) fmt
let interval_us = 1000
let gap_ns = 1_000
(* sized so the hot value pages fit the active list's DRAM-cache cap:
   the gate's regime is ">= 50% of cached pages dirty per window", which a
   working set larger than the cache dilutes (cached stays pinned at the
   cap while the dirty set spreads over the whole key space) *)
let keys () = if !smoke then 12_000 else 14_000
let warm_ops () = if !smoke then 6_000 else 10_000
let measure_ops () = if !smoke then 8_000 else 20_000
let fp_ops () = if !smoke then 2_000 else 6_000
let fp_ckpt_every = 400
let drain_batch = 8

type run = {
  r_label : string;
  r_commits : int;
  r_stw_mean_us : float;
  r_stw_max_us : float;
  r_dirty_pct : float;  (** dirty DRAM-cached pages / cached pages, avg *)
  r_cached_avg : float;
  r_waf : float;  (** settled physical NVM bytes / logical dirty bytes *)
  r_drained : int;
  r_cow_faults : int;
  r_drain_us : float;
  r_p50_ns : int;
  r_p99_ns : int;
  r_released : int;
}

(* Settled per-window reports.  The report a tick returns in async mode is
   the partial STW-time view (drain/WAF fields still zero); the full
   numbers land in [Manager.last_report] when the window settles and the
   version bumps — so both modes are read uniformly by polling the
   committed version and collecting the manager's last report. *)
let make_collector sys =
  let seen = ref (System.version sys) in
  let reports = ref [] in
  let poll () =
    if System.version sys > !seen then begin
      seen := System.version sys;
      match Manager.last_report (System.manager sys) with
      | Some r -> reports := r :: !reports
      | None -> ()
    end
  in
  (poll, fun () -> List.rev !reports)

(* ns-precision pacing that fires checkpoint deadlines on time (same as
   exp_adaptive): the STW must start at its deadline, not at the next
   driver tick.  Drain steps still only run at op boundaries, as they
   would between real operations. *)
let advance_to sys target =
  let rec loop () =
    if System.now_ns sys < target then begin
      (match Manager.next_deadline (System.manager sys) with
      | Some d when d <= target ->
        if System.now_ns sys < d then Clock.advance (System.clock sys) (d - System.now_ns sys);
        ignore (Manager.tick (System.manager sys))
      | Some _ | None -> Clock.advance (System.clock sys) (target - System.now_ns sys));
      loop ()
    end
  in
  loop ()

let run_one ~label ~async =
  let feats = features ~ckpt:true ~track:true ~copy:true ~hybrid:true ~async () in
  let sys = boot ~interval_us ~features:feats () in
  if async then begin
    Manager.set_drain_policy (System.manager sys) Drain.Lazy;
    Manager.set_drain_batch (System.manager sys) drain_batch
  end;
  let rng = Rng.create 93L in
  let nkeys = keys () in
  let app = Kv_app.launch ~keys_hint:nkeys ~value_size:100 sys Kv_app.Memcached in
  for i = 0 to nkeys - 1 do
    Kv_app.set_i app i
  done;
  let netdrv =
    match Kernel.find_process (System.kernel sys) ~name:"netdrv" with
    | Some p -> p
    | None -> failwith "netdrv missing"
  in
  let deliver ~client:_ ~sent_ns:_ ~payload:_ = () in
  let net = Net_server.create (System.kernel sys) (System.manager sys) ~proc:netdrv ~deliver in
  (* warmup: repeated faults on the hot value pages promote them into the
     DRAM cache (active-list threshold), so the measured windows see the
     page-heavy dirty set the gate is about *)
  let t0 = System.now_ns sys in
  for i = 0 to warm_ops () - 1 do
    advance_to sys (t0 + (i * gap_ns));
    Kv_app.set_i app (Rng.int rng nkeys);
    ignore (System.tick sys)
  done;
  ignore (System.checkpoint sys);
  System.drain_settle sys;
  (* measured window *)
  let poll, collected = make_collector sys in
  let req = ref 0 in
  let t0 = System.now_ns sys in
  for i = 0 to measure_ops () - 1 do
    advance_to sys (t0 + (i * gap_ns));
    Kv_app.set_i app (Rng.int rng nkeys);
    ignore (Net_server.send net ~client:(!req land 31) (Bytes.of_string "+OK"));
    incr req;
    ignore (System.tick sys);
    poll ()
  done;
  (* one more commit so the final partial interval's replies release *)
  ignore (System.checkpoint sys);
  System.drain_settle sys;
  poll ();
  audit_or_die sys ~where:label;
  let reports = collected () in
  let n = List.length reports in
  if n = 0 then die "%s: no checkpoints committed in the measured window" label;
  let stw = avg_reports reports (fun r -> r.Report.stw_ns) /. 1e3 in
  let stw_max =
    List.fold_left (fun acc r -> max acc r.Report.stw_ns) 0 reports |> float_of_int |> fun v ->
    v /. 1e3
  in
  let dirty r = r.Report.dram_dirty_copied + r.Report.pages_drained + r.Report.cow_faults in
  let dirty_pct =
    avg_reports reports (fun r -> 100 * dirty r / max 1 r.Report.cached_pages)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let physical = sum (fun r -> r.Report.nvm_bytes_written) in
  let logical = sum (fun r -> r.Report.logical_dirty_bytes) in
  let waf = float_of_int physical /. float_of_int (max 1 logical) in
  let rt = Probe.rtrace (System.obs sys) in
  let s = Rtrace.enq2vis_summary rt in
  {
    r_label = label;
    r_commits = n;
    r_stw_mean_us = stw;
    r_stw_max_us = stw_max;
    r_dirty_pct = dirty_pct;
    r_cached_avg = avg_reports reports (fun r -> r.Report.cached_pages);
    r_waf = waf;
    r_drained = sum (fun r -> r.Report.pages_drained);
    r_cow_faults = sum (fun r -> r.Report.cow_faults);
    r_drain_us = float_of_int (sum (fun r -> r.Report.drain_ns)) /. 1e3;
    r_p50_ns = s.Rtrace.s_p50_ns;
    r_p99_ns = s.Rtrace.s_p99_ns;
    r_released = Rtrace.released_count rt;
  }

(* Deterministic replay with explicit checkpoints: same writes, same
   commit count in both modes; the async run interleaves drain steps (and
   thus CoW fault resolutions) with the writes.  After a final settle and
   a crash/recover on each, the restore fingerprints must be identical. *)
let fingerprint_of ~async =
  let feats = features ~ckpt:true ~track:true ~copy:true ~hybrid:true ~async () in
  let sys = boot ~features:feats () in
  System.set_interval_us sys None;
  if async then begin
    Manager.set_drain_policy (System.manager sys) Drain.Lazy;
    Manager.set_drain_batch (System.manager sys) drain_batch
  end;
  let rng = Rng.create 71L in
  let nkeys = keys () / 4 in
  let app = Kv_app.launch ~keys_hint:nkeys ~value_size:100 sys Kv_app.Memcached in
  for i = 0 to nkeys - 1 do
    Kv_app.set_i app i
  done;
  for i = 1 to fp_ops () do
    Kv_app.set_i app (Rng.int rng nkeys);
    System.drain_tick sys;
    if i mod fp_ckpt_every = 0 then ignore (System.checkpoint sys)
  done;
  ignore (System.checkpoint sys);
  System.drain_settle sys;
  ignore (System.crash_and_recover sys);
  audit_or_die sys ~where:(if async then "fp-lazy" else "fp-eager");
  (System.version sys, C.fingerprint sys)

let run () =
  let eager = run_one ~label:"eager" ~async:false in
  let lazy_ = run_one ~label:"lazy-drain" ~async:true in
  let us v = float_of_int v /. 1e3 in
  let emit r ~mode =
    emit_row
      ~config:
        [
          ("mode", mode);
          ("interval_us", string_of_int interval_us);
          ("gap_ns", string_of_int gap_ns);
          ("keys", string_of_int (keys ()));
          ("ops", string_of_int (measure_ops ()));
        ]
      ~metrics:
        [
          ("stw_mean_us", r.r_stw_mean_us);
          ("stw_max_us", r.r_stw_max_us);
          ("dirty_pct", r.r_dirty_pct);
          ("cached_pages", r.r_cached_avg);
          ("waf", r.r_waf);
          ("pages_drained", float_of_int r.r_drained);
          ("cow_faults", float_of_int r.r_cow_faults);
          ("drain_us", r.r_drain_us);
          ("enq2vis_p50_us", us r.r_p50_ns);
          ("enq2vis_p99_us", us r.r_p99_ns);
          ("released", float_of_int r.r_released);
          ("commits", float_of_int r.r_commits);
        ]
  in
  emit eager ~mode:"eager";
  emit lazy_ ~mode:"lazy";
  Table.print
    ~title:
      (Printf.sprintf "Async drain vs eager stop-and-copy (Memcached, %dus interval, %d ops)"
         interval_us (measure_ops ()))
    ~header:
      [ "Run"; "STW mean (us)"; "STW max"; "Dirty %"; "WAF"; "Drained"; "CoWF"; "E2V p99 (us)" ]
    (List.map
       (fun r ->
         [
           r.r_label;
           f1 r.r_stw_mean_us;
           f1 r.r_stw_max_us;
           f1 r.r_dirty_pct;
           f2 r.r_waf;
           string_of_int r.r_drained;
           string_of_int r.r_cow_faults;
           f1 (us r.r_p99_ns);
         ])
       [ eager; lazy_ ]);
  Printf.printf "\nSTW %.1fus -> %.1fus (%.2fx), WAF %.2f -> %.2f, p99 %.1fus -> %.1fus\n"
    eager.r_stw_mean_us lazy_.r_stw_mean_us
    (lazy_.r_stw_mean_us /. Float.max 1e-9 eager.r_stw_mean_us)
    eager.r_waf lazy_.r_waf (us eager.r_p99_ns) (us lazy_.r_p99_ns);
  (* restore-equivalence leg *)
  let ve, fe = fingerprint_of ~async:false in
  let vl, fl = fingerprint_of ~async:true in
  Printf.printf "fingerprints: eager v%d, lazy v%d -> %s\n" ve vl
    (if fe = fl then "identical" else "MISMATCH");
  (* gates *)
  if eager.r_dirty_pct < 50.0 then
    die "workload not page-heavy enough: only %.1f%% of cached pages dirty per window (need >= 50%%)"
      eager.r_dirty_pct;
  if lazy_.r_stw_mean_us > 0.3 *. eager.r_stw_mean_us then
    die "lazy STW %.1fus exceeds 0.3x eager STW %.1fus" lazy_.r_stw_mean_us eager.r_stw_mean_us;
  if lazy_.r_waf > 1.1 *. eager.r_waf then
    die "lazy WAF %.3f exceeds 1.1x eager WAF %.3f" lazy_.r_waf eager.r_waf;
  if lazy_.r_p99_ns > eager.r_p99_ns then
    die "lazy enq2vis p99 %.1fus worse than eager %.1fus" (us lazy_.r_p99_ns) (us eager.r_p99_ns);
  if lazy_.r_drained = 0 then die "lazy run never drained a page (async path not exercised)";
  if ve <> vl then die "fingerprint replay committed different versions (eager v%d, lazy v%d)" ve vl;
  if fe <> fl then die "restore fingerprint differs between eager and lazy modes"
