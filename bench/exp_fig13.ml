(* Figure 13: YCSB on Redis. Four configurations:
   TreeSLS-base (no persistence), TreeSLS-1ms (transparent checkpoints),
   Linux-base (no persistence), Linux-WAL (Redis AOF on Ext4-DAX). *)

open Exp_common
module Ycsb = Treesls_workloads.Ycsb
module Linux_redis = Treesls_baselines.Linux_redis
module Machine = Treesls_baselines.Machine

let keys = 20_000
let n_ops = 25_000
let value_size = 1024

let run_treesls ~ckpt workload =
  let features =
    if ckpt then full_features () else features ~ckpt:false ~track:false ~copy:false ~hybrid:false ()
  in
  let sys = boot ~interval_us:1000 ~features () in
  if not ckpt then System.set_interval_us sys None;
  let rng = Rng.create 37L in
  let app = Kv_app.launch ~keys_hint:(keys * 2) ~value_size sys Kv_app.Redis in
  for i = 0 to keys - 1 do
    Kv_app.set_i app i
  done;
  let gen = Ycsb.create workload ~keys rng in
  let t0 = System.now_ns sys in
  for _ = 1 to n_ops do
    (match Ycsb.next gen with
    | Ycsb.Read k -> ignore (Kv_app.get_i app k)
    | Ycsb.Update k | Ycsb.Insert k -> Kv_app.set_i app k);
    ignore (System.tick sys)
  done;
  let sim_s = float_of_int (System.now_ns sys - t0) /. 1e9 in
  float_of_int n_ops /. sim_s /. 1e3

let run_linux mode workload =
  let lx = Linux_redis.create mode in
  Linux_redis.load lx ~keys ~value_size;
  let rng = Rng.create 37L in
  let gen = Ycsb.create workload ~keys rng in
  Machine.reset_measurement (Linux_redis.machine lx);
  for _ = 1 to n_ops do
    Linux_redis.do_op lx ~value_size (Ycsb.next gen)
  done;
  Machine.throughput_kops (Linux_redis.machine lx)

let run () =
  let rows =
    List.map
      (fun w ->
        [
          Ycsb.name w;
          f1 (run_treesls ~ckpt:false w);
          f1 (run_treesls ~ckpt:true w);
          f1 (run_linux Linux_redis.Base w);
          f1 (run_linux Linux_redis.Wal w);
        ])
      Ycsb.all
  in
  Table.print ~title:"Figure 13: YCSB on Redis, throughput (KTPS)"
    ~header:[ "Workload"; "TreeSLS-base"; "TreeSLS-1ms"; "Linux-base"; "Linux-WAL" ]
    rows
