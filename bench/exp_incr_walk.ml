(* Incremental capability-tree walk: captree_ns vs dirty fraction x tree
   size.

   Two identically-driven systems — one with the eager walk, one with
   [State.features.incremental_walk] — carry a pool of notification
   objects; each measurement round dirties a fixed fraction of the pool
   (through Ipc.notify, a real kernel mutator) and takes one checkpoint.
   The eager system's captree time grows with the whole tree, the
   incremental one's with the dirtied delta.

   Built-in correctness gates (the harness exits 2 if any fails):
   - conservation: incremental walked + skipped = eager walked, per round;
   - >= 5x captree speedup on every row at <= 10% dirty objects;
   - crash + recover both systems at the same version: the restored
     states must be identical object-for-object and page-for-page;
   - the state auditor finds no violations in either restored system. *)

open Exp_common
module Ipc = Treesls_kernel.Ipc
module Store = Treesls_nvm.Store
module Radix = Treesls_cap.Radix
module Snapshot = Treesls_ckpt.Snapshot

(* Whole-state fingerprint: every reachable object's snapshot, plus the
   byte contents of every normal-PMO page, sorted by object id.  Used to
   compare the two systems' restored states byte-for-byte. *)
let fingerprint sys =
  let k = System.kernel sys in
  let store = System.store sys in
  let objs = ref [] in
  Kobj.iter_tree ~root:(Kernel.root k) (fun obj ->
      let pages =
        match obj with
        | Kobj.Pmo p when p.Kobj.pmo_kind = Kobj.Pmo_normal ->
          List.sort compare
            (Radix.fold
               (fun pno paddr acc ->
                 (pno, Bytes.to_string (Store.page_bytes store paddr)) :: acc)
               p.Kobj.pmo_radix [])
        | Kobj.Pmo _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
        | Kobj.Notification _ | Kobj.Irq_notification _ -> []
      in
      objs := (Kobj.id obj, Snapshot.take obj, pages) :: !objs);
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !objs

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("incr_walk: " ^ m); exit 2) fmt

let setup ~incr ~pool =
  let sys = boot ~features:(features ~incr ~ckpt:true ~track:true ~copy:true ~hybrid:true ()) () in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"pool" ~threads:1 ~prio:5 in
  let notifs = Array.init pool (fun _ -> Kernel.create_notification k p) in
  (* Seed: the first post-boot walk is forced eager in both modes; the
     second confirms steady state before measuring. *)
  ignore (System.checkpoint sys);
  ignore (System.checkpoint sys);
  (sys, k, notifs)

let rounds = 5

(* Dirty [dirty] pool objects and checkpoint, [rounds] times; returns the
   reports. *)
let measure sys k notifs ~dirty =
  List.init rounds (fun _ ->
      for i = 0 to dirty - 1 do
        Ipc.notify k notifs.(i)
      done;
      System.checkpoint sys)

let run () =
  let sizes = if !smoke then [ 128; 512 ] else [ 256; 1024; 4096 ] in
  let fracs = [ 0.02; 0.10; 0.50 ] in
  let table = ref [] in
  List.iter
    (fun pool ->
      let sys_e, k_e, notifs_e = setup ~incr:false ~pool in
      let sys_i, k_i, notifs_i = setup ~incr:true ~pool in
      List.iter
        (fun frac ->
          let dirty = max 1 (int_of_float (frac *. float_of_int pool)) in
          let reps_e = measure sys_e k_e notifs_e ~dirty in
          let reps_i = measure sys_i k_i notifs_i ~dirty in
          (* conservation: the incremental walk accounts for every object
             the eager walk visits *)
          List.iter2
            (fun (e : Report.t) (i : Report.t) ->
              if i.Report.objects_walked + i.Report.objects_skipped <> e.Report.objects_walked
              then
                die "v%d: walked %d + skipped %d <> eager %d" i.Report.version
                  i.Report.objects_walked i.Report.objects_skipped e.Report.objects_walked)
            reps_e reps_i;
          let total = (List.hd reps_e).Report.objects_walked in
          let dirty_pct = 100.0 *. float_of_int dirty /. float_of_int total in
          let captree_e = avg_reports reps_e (fun r -> r.Report.captree_ns) in
          let captree_i = avg_reports reps_i (fun r -> r.Report.captree_ns) in
          let speedup = if captree_i > 0.0 then captree_e /. captree_i else 0.0 in
          if dirty_pct <= 10.0 && speedup < 5.0 then
            die "pool %d, %.0f%% dirty: speedup %.1fx < 5x (eager %.0fns, incr %.0fns)" pool
              dirty_pct speedup captree_e captree_i;
          table :=
            !table
            @ [
                [
                  string_of_int pool;
                  string_of_int total;
                  string_of_int dirty;
                  f1 dirty_pct;
                  f1 (captree_e /. 1e3);
                  f1 (captree_i /. 1e3);
                  f1 speedup;
                  f1 (avg_reports reps_i (fun r -> r.Report.objects_skipped));
                ];
              ];
          emit_row
            ~config:[ ("pool", string_of_int pool); ("dirty_frac", f2 frac) ]
            ~metrics:
              [
                ("objects", float_of_int total);
                ("dirty_objects", float_of_int dirty);
                ("dirty_pct", dirty_pct);
                ("captree_eager_ns", captree_e);
                ("captree_incr_ns", captree_i);
                ("speedup", speedup);
                ("skipped_avg", avg_reports reps_i (fun r -> r.Report.objects_skipped));
              ])
        fracs;
      (* restore equivalence: both systems committed the same version with
         the same driven state; their restores must agree exactly *)
      ignore (System.crash_and_recover sys_e);
      ignore (System.crash_and_recover sys_i);
      if fingerprint sys_e <> fingerprint sys_i then
        die "pool %d: eager and incremental restores differ" pool;
      audit_or_die sys_e ~where:(Printf.sprintf "incr_walk eager pool=%d post-restore" pool);
      audit_or_die sys_i ~where:(Printf.sprintf "incr_walk incr pool=%d post-restore" pool);
      (* and a post-restore checkpoint on the incremental system must
         resync eagerly (force_full), not skip against stale generations *)
      let r = System.checkpoint sys_i in
      if r.Report.objects_skipped <> 0 then
        die "pool %d: first post-restore checkpoint skipped %d objects" pool
          r.Report.objects_skipped)
    sizes;
  Table.print
    ~title:
      (Printf.sprintf
         "Incremental walk: captree vs dirty fraction x tree size (%d rounds each; restore \
          equivalence + audit checked)"
         rounds)
    ~header:
      [
        "pool";
        "objects";
        "dirty";
        "dirty %";
        "eager captree (us)";
        "incr captree (us)";
        "speedup";
        "skipped/ckpt";
      ]
    !table
