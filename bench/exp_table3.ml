(* Table 3: checkpoint/restore time of a single object, per type.
   Full = first checkpoint (allocation + structure building);
   Incr = subsequent checkpoints; Restore measured during recovery.
   Min/Max taken across all workloads, like the paper. *)

open Exp_common
module Oc = State

let run () =
  let merged : (Kobj.kind, State.obj_cost) Hashtbl.t = Hashtbl.create 8 in
  let merge kind (c : State.obj_cost) =
    match Hashtbl.find_opt merged kind with
    | None ->
      Hashtbl.replace merged kind
        {
          State.full = Stats.merge c.State.full (Stats.create ());
          incr = Stats.merge c.State.incr (Stats.create ());
          restore = Stats.merge c.State.restore (Stats.create ());
        }
    | Some acc ->
      Hashtbl.replace merged kind
        {
          State.full = Stats.merge acc.State.full c.State.full;
          incr = Stats.merge acc.State.incr c.State.incr;
          restore = Stats.merge acc.State.restore c.State.restore;
        }
  in
  List.iter
    (fun w ->
      let sys = boot () in
      let rng = Rng.create 13L in
      let app = launch sys rng w in
      let ops = match w with W_default -> 200 | _ -> 3_000 in
      run_ops sys ~n:ops app.step;
      ignore (System.checkpoint sys);
      (* measure restore costs with a real crash *)
      ignore (System.crash_and_recover sys);
      app.refresh ();
      List.iter (fun (k, c) -> merge k c) (Manager.obj_costs (System.manager sys)))
    table2_workloads;
  (* the [_opt] accessors return None on empty samples instead of raising,
     so an object kind some workload never restores prints "n/a" *)
  let fmt_stat s pick =
    match pick s with None -> "n/a" | Some v -> Printf.sprintf "%.2f" (v /. 1e3)
  in
  let rows =
    List.filter_map
      (fun kind ->
        match Hashtbl.find_opt merged kind with
        | None -> None
        | Some c ->
          Some
            [
              Kobj.kind_name kind;
              fmt_stat c.State.incr Stats.min_opt;
              fmt_stat c.State.incr Stats.max_opt;
              fmt_stat c.State.full Stats.min_opt;
              fmt_stat c.State.full Stats.max_opt;
              fmt_stat c.State.restore Stats.min_opt;
              fmt_stat c.State.restore Stats.max_opt;
            ])
      Kobj.all_kinds
  in
  Table.print ~title:"Table 3: checkpoint/restore time of a single object (us)"
    ~header:
      [ "Object"; "Incr Min"; "Incr Max"; "Full Min"; "Full Max"; "Restore Min"; "Restore Max" ]
    rows
