(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) from the simulator, plus the ablations in DESIGN.md.

     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- --exp fig13  # one experiment
     dune exec bench/main.exe -- --bechamel   # host-time microbenchmarks

   Tracing: add [--trace FILE] (and optionally [--trace-verbose]) to record
   every booted system's checkpoint pipeline and export the last system's
   ring as Chrome/Perfetto trace_event JSON, with a reconciliation check of
   the ckpt.stw spans against their children:

     dune exec bench/main.exe -- --exp fig9 --trace fig9.trace.json

   Paranoid mode: add [--audit] to re-run the NVM state auditor
   (Treesls_audit) after every committed checkpoint and every
   crash/restore; any Error-severity violation aborts with exit code 2:

     dune exec bench/main.exe -- --exp smoke --audit

   Machine-readable results: [--json FILE] collects every experiment's
   (config, metrics) rows into one JSON file; [--json-dir DIR] writes one
   BENCH_<exp>.json per experiment (what `make bench` uses to seed the
   perf trajectory).  [--smoke] shrinks supporting experiments to CI
   scale:

     dune exec bench/main.exe -- --exp extsync_lat --smoke --json out.json
*)

let experiments =
  [
    ("functional", ("Functional tests (paper 7.2): crash/recovery matrix", Exp_functional.run));
    ("table2", ("Table 2: workload object composition", Exp_table2.run));
    ("fig9", ("Figure 9: STW checkpoint breakdown", Exp_fig9.run));
    ("table3", ("Table 3: per-object checkpoint/restore times", Exp_table3.run));
    ("fig10", ("Figure 10: runtime overhead breakdown", Exp_fig10.run));
    ("table4", ("Table 4: hybrid copy effect", Exp_table4.run));
    ("fig11", ("Figure 11: Memcached latency vs interval", Exp_fig11.run));
    ("fig12", ("Figure 12: external synchrony", Exp_fig12.run));
    ( "extsync_lat",
      ("External synchrony: checkpoint interval vs visible latency (Rtrace)", Exp_extsync_lat.run)
    );
    ("fig13", ("Figure 13: YCSB on Redis", Exp_fig13.run));
    ("fig14", ("Figure 14: RocksDB Prefix_dist", Exp_fig14.run));
    ("ablate", ("Design ablations", Exp_ablate.run));
    ( "incr_walk",
      ("Incremental walk: captree vs dirty fraction x tree size", Exp_incr_walk.run) );
    ( "crashtest",
      ("Crash-schedule exploration: enumerate/inject/recover/verify sweep", Exp_crashtest.run) );
    ( "wear",
      ("NVM write amplification + wear telemetry: eager vs incremental walk", Exp_wear.run) );
    ( "rto",
      ("Recovery observability: per-phase restore time + flight recorder gates", Exp_rto.run) );
    ( "adaptive",
      ("Adaptive checkpoint interval vs statics on a bursty workload (SLO gate)", Exp_adaptive.run)
    );
    ( "multitenant",
      ("Multi-tenant serving: per-tenant p99 + STW attribution vs tenant count", Exp_multitenant.run)
    );
    ( "async_drain",
      ("Split-capture checkpoint: async drain vs eager stop-and-copy (STW/WAF/p99 gate)",
       Exp_async_drain.run) );
    ("smoke", ("Audit smoke: checkpoints + crash/restore under --audit (make ci)", Exp_smoke.run));
  ]

(* --- Bechamel host-time microbenchmarks: one per table/figure -------- *)

let bechamel_tests () =
  let open Bechamel in
  let open Exp_common in
  let sys = boot () in
  ignore (System.checkpoint sys);
  let rng = Rng.create 61L in
  let mem = Kv_app.launch ~keys_hint:20_000 sys Kv_app.Memcached in
  for i = 0 to 4_999 do
    Kv_app.set_i mem i
  done;
  let lsm = Lsm.launch sys Lsm.Rocksdb in
  let gen = Treesls_workloads.Prefix_dist.create (Rng.create 67L) in
  let ycsb = Treesls_workloads.Ycsb.create Treesls_workloads.Ycsb.A ~keys:5_000 (Rng.create 71L) in
  [
    Test.make ~name:"table2-census" (Staged.stage (fun () -> ignore (census sys)));
    Test.make ~name:"fig9-incremental-checkpoint"
      (Staged.stage (fun () -> ignore (System.checkpoint sys)));
    Test.make ~name:"table3-snapshot-object"
      (Staged.stage (fun () ->
           ignore
             (Treesls_ckpt.Snapshot.take
                (Treesls_cap.Kobj.Cap_group (Kernel.root (System.kernel sys))))));
    Test.make ~name:"fig10-fig11-memcached-set"
      (Staged.stage (fun () ->
           Kv_app.set_i mem (Rng.int rng 5_000);
           ignore (System.tick sys)));
    Test.make ~name:"table4-page-fault-path"
      (Staged.stage (fun () -> Kv_app.set_i mem (Rng.int rng 20_000)));
    Test.make ~name:"fig13-ycsb-op"
      (Staged.stage (fun () ->
           match Treesls_workloads.Ycsb.next ycsb with
           | Treesls_workloads.Ycsb.Read k -> ignore (Kv_app.get_i mem (k mod 5_000))
           | Treesls_workloads.Ycsb.Update k -> Kv_app.set_i mem (k mod 5_000)
           | Treesls_workloads.Ycsb.Insert k -> Kv_app.set_i mem (k mod 20_000)));
    Test.make ~name:"fig14-rocksdb-op"
      (Staged.stage (fun () ->
           match Treesls_workloads.Prefix_dist.next gen with
           | Treesls_workloads.Prefix_dist.Put { key; value } -> Lsm.put lsm ~key ~value
           | Treesls_workloads.Prefix_dist.Get { key } -> ignore (Lsm.get lsm ~key)));
    Test.make ~name:"fig12-ring-roundtrip"
      (Staged.stage
         (let netdrv =
            match Kernel.find_process (System.kernel sys) ~name:"netdrv" with
            | Some p -> p
            | None -> assert false
          in
          let ring =
            Treesls_extsync.Ring.create (System.kernel sys) netdrv ~name:"bench" ~slots:64
              ~slot_size:128
          in
          fun () ->
            ignore (Treesls_extsync.Ring.append ring (Bytes.of_string "m"));
            Treesls_extsync.Ring.on_checkpoint ring;
            ignore (Treesls_extsync.Ring.pop_visible ring)));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let tests = bechamel_tests () in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) ~kde:(Some 100) () in
  Printf.printf "\n== Bechamel host-time microbenchmarks (one per table/figure) ==\n%!";
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"treesls" (bechamel_tests () |> fun _ -> tests)) in
  let ols =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Hashtbl.fold (fun name est acc -> (name, est) :: acc) ols []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, est) ->
         match Analyze.OLS.estimates est with
         | Some [ ns ] -> Printf.printf "  %-45s %12.0f ns/op\n" name ns
         | Some _ | None -> Printf.printf "  %-45s (no estimate)\n" name)

(* --- CLI -------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv in
  let want_bechamel = List.mem "--bechamel" args in
  let rec find_opt key = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> find_opt key rest
    | [] -> None
  in
  let exp = find_opt "--exp" args in
  Exp_common.trace_out := find_opt "--trace" args;
  Exp_common.trace_verbose := List.mem "--trace-verbose" args;
  Exp_common.audit_mode := List.mem "--audit" args;
  Exp_common.smoke := List.mem "--smoke" args;
  Exp_common.json_out := find_opt "--json" args;
  Exp_common.json_dir := find_opt "--json-dir" args;
  if want_bechamel then run_bechamel ()
  else begin
    let to_run =
      match exp with
      | None -> experiments
      | Some name -> (
        match List.assoc_opt name experiments with
        | Some e -> [ (name, e) ]
        | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    in
    List.iter
      (fun (name, (title, run)) ->
        Printf.printf "\n########## %s ##########\n%!" title;
        Exp_common.current_exp := name;
        let t0 = Unix.gettimeofday () in
        run ();
        Printf.printf "(experiment took %.1fs host time)\n%!" (Unix.gettimeofday () -. t0))
      to_run;
    Exp_common.finish_trace ();
    Exp_common.finish_json ()
  end
