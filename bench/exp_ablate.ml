(* Ablations of the design choices DESIGN.md calls out.

   (1) Page-copy strategy (Figure 7's design space): copy-on-write only
       versus hybrid copy, at 1000 Hz, on Memcached — runtime overhead and
       per-checkpoint fault/copy counts.
   (2) Checkpoint frequency sweep: STW time and checkpoint footprint as
       the interval shrinks.
   (3) Rebuild-vs-checkpoint page tables: measured PTE population versus
       the dirty set, showing what checkpointing page tables would add to
       every STW pause. *)

open Exp_common
module Pagetable = Treesls_kernel.Pagetable

let ablate_copy () =
  let run name feats =
    let sys = boot ~features:feats () in
    let rng = Rng.create 47L in
    let app = launch sys rng W_memcached in
    run_ops sys ~n:4_000 app.step;
    let k = System.kernel sys in
    let f0 = (Kernel.stats k).Kernel.cow_faults in
    let t0 = System.now_ns sys in
    let reports = collect_reports sys ~n:8_000 app.step in
    let dt = float_of_int (System.now_ns sys - t0) /. 1e6 in
    let faults = (Kernel.stats k).Kernel.cow_faults - f0 in
    let stw = avg_reports reports (fun r -> r.Report.stw_ns) /. 1e3 in
    let hybrid = avg_reports reports (fun r -> r.Report.hybrid_ns) /. 1e3 in
    [
      name;
      f1 dt;
      f1 stw;
      f1 hybrid;
      string_of_int faults;
      f1 (avg_reports reports (fun r -> r.Report.dram_dirty_copied));
    ]
  in
  let rows =
    [
      run "copy-on-write only" (features ~ckpt:true ~track:true ~copy:true ~hybrid:false ());
      run "hybrid copy" (features ~ckpt:true ~track:true ~copy:true ~hybrid:true ());
    ]
  in
  Table.print ~title:"Ablation: page-copy strategy (Memcached, 1000 Hz, 8k ops)"
    ~header:
      [ "Strategy"; "run time (ms)"; "avg STW (us)"; "avg hybrid (us)"; "CoW faults"; "stop-and-copies/ckpt" ]
    rows

(* Incremental vs eager capability-tree walk (exp_incr_walk has the full
   sweep; this is the ablation column on a real workload). *)
let ablate_walk () =
  let run name feats =
    let sys = boot ~features:feats () in
    let rng = Rng.create 83L in
    let app = launch sys rng W_memcached in
    run_ops sys ~n:3_000 app.step;
    let reports = collect_reports sys ~n:6_000 app.step in
    [
      name;
      f1 (avg_reports reports (fun r -> r.Report.objects_walked));
      f1 (avg_reports reports (fun r -> r.Report.objects_skipped));
      f1 (avg_reports reports (fun r -> r.Report.captree_ns) /. 1e3);
      f1 (avg_reports reports (fun r -> r.Report.stw_ns) /. 1e3);
    ]
  in
  let rows =
    [
      run "eager" (features ~incr:false ~ckpt:true ~track:true ~copy:true ~hybrid:true ());
      run "incremental" (features ~incr:true ~ckpt:true ~track:true ~copy:true ~hybrid:true ());
    ]
  in
  Table.print ~title:"Ablation: eager vs incremental capability-tree walk (Memcached, 6k ops)"
    ~header:[ "Walk"; "objs walked/ckpt"; "objs skipped/ckpt"; "avg captree (us)"; "avg STW (us)" ]
    rows

let ablate_frequency () =
  let rows =
    List.map
      (fun interval_us ->
        let sys = boot ~interval_us () in
        let rng = Rng.create 53L in
        let app = launch sys rng W_memcached in
        run_ops sys ~n:3_000 app.step;
        let t0 = System.now_ns sys in
        let reports = collect_reports sys ~n:6_000 app.step in
        let dt_ms = float_of_int (System.now_ns sys - t0) /. 1e6 in
        let stw = avg_reports reports (fun r -> r.Report.stw_ns) /. 1e3 in
        let mib = float_of_int (Manager.checkpoint_bytes (System.manager sys)) /. (1024. *. 1024.) in
        [
          Printf.sprintf "%g ms" (float_of_int interval_us /. 1e3);
          string_of_int (List.length reports);
          f1 stw;
          f1 dt_ms;
          f1 mib;
        ])
      [ 500; 1000; 5000; 10_000; 50_000 ]
  in
  Table.print ~title:"Ablation: checkpoint interval sweep (Memcached, 6k ops)"
    ~header:[ "Interval"; "# ckpts"; "avg STW (us)"; "run time (ms)"; "ckpt MiB" ]
    rows

let ablate_pagetables () =
  let rows =
    List.map
      (fun w ->
        let sys = boot () in
        let rng = Rng.create 59L in
        let app = launch sys rng w in
        run_ops sys ~n:6_000 app.step;
        let k = System.kernel sys in
        let mapped =
          List.fold_left
            (fun acc p -> acc + Pagetable.mapped_count (Kernel.pagetable k p.Kernel.vms))
            0 (Kernel.processes k)
        in
        let reports = collect_reports sys ~n:2_000 app.step in
        let dirty = avg_reports reports (fun r -> r.Report.pages_protected) in
        (* checkpointing page tables would copy every PTE (~16 B each) on
           every pause; rebuilding only re-marks the dirty set. *)
        let c = Kernel.cost k in
        let pte_copy_us =
          float_of_int mapped
          *. c.Treesls_sim.Cost.word_copy_nvm_ns *. 2.0 /. 1e3
        in
        let mark_us = dirty *. float_of_int c.Treesls_sim.Cost.mark_ro_ns /. 1e3 in
        [ workload_name w; string_of_int mapped; f1 dirty; f1 pte_copy_us; f1 mark_us ])
      [ W_memcached; W_redis; W_kmeans ]
  in
  Table.print
    ~title:"Ablation: checkpointing page tables vs rebuild-on-restore (added us per STW pause)"
    ~header:
      [ "Workload"; "mapped PTEs"; "dirty/ckpt"; "copy-PTs cost (us)"; "re-mark cost (us)" ]
    rows

(* Eidetic mode (paper §8): maintaining every version is off the critical
   path in theory but costs archive space per version; measure both. *)
let ablate_eidetic () =
  let run ?(checksums = false) name attach =
    let sys = boot () in
    if checksums then Treesls_nvm.Store.set_checksums (System.store sys) true;
    let eid = attach sys in
    let rng = Rng.create 61L in
    let app = launch sys rng W_memcached in
    run_ops sys ~n:3_000 app.step;
    let t0 = System.now_ns sys in
    let reports = collect_reports sys ~n:6_000 app.step in
    let dt_ms = float_of_int (System.now_ns sys - t0) /. 1e6 in
    let stw = avg_reports reports (fun r -> r.Report.stw_ns) /. 1e3 in
    let space =
      match eid with
      | None -> 0.0
      | Some e ->
        let s = Treesls_ckpt.Eidetic.stats e in
        float_of_int s.Treesls_ckpt.Eidetic.page_bytes /. 1048576.0
    in
    let versions =
      match eid with
      | None -> 2 (* the normal double-buffered backups *)
      | Some e -> List.length (Treesls_ckpt.Eidetic.versions e)
    in
    [ name; string_of_int versions; f1 stw; f1 dt_ms; f2 space ]
  in
  let rows =
    [
      run "normal (2 backups)" (fun _ -> None);
      run "eidetic (64-version window)"
        (fun sys -> Some (Treesls_ckpt.Eidetic.attach ~max_versions:64 (System.manager sys)));
      run ~checksums:true "reliability (backup checksums)" (fun _ -> None);
    ]
  in
  Table.print
    ~title:"Ablation: eidetic archive & backup checksums (Memcached, 6k ops)"
    ~header:[ "Mode"; "versions kept"; "avg STW (us)"; "run time (ms)"; "archive MiB" ]
    rows

(* Memory over-commitment (paper §8): under NVM pressure, cold pages are
   evicted to the SSD; the cost is major faults on re-access. *)
let ablate_overcommit () =
  let run name nvm_pages attach =
    let sys = System.boot ~interval_us:1000 ~features:(full_features ()) ~nvm_pages () in
    (match attach with
    | true ->
      ignore
        (Treesls_ckpt.Overcommit.attach ~low_watermark:1024 ~high_watermark:1200 ~batch:128
           (System.manager sys))
    | false -> ());
    let k = System.kernel sys in
    let proc = Kernel.create_process k ~name:"grower" ~threads:1 ~prio:5 in
    let vpn = Kernel.grow_heap k proc ~pages:2400 in
    let rng = Rng.create 71L in
    let t0 = System.now_ns sys in
    let out_of_memory = ref false in
    (try
       (* waves of writes with revisits: earlier waves go cold, revisits
          force swap-ins *)
       for i = 0 to 7_999 do
         let page = if i mod 5 = 0 then Rng.int rng 2400 else i mod 2400 in
         Kernel.touch_write k proc ~vpn:(vpn + page);
         ignore (System.tick sys)
       done
     with Out_of_memory -> out_of_memory := true);
    let dt_ms = float_of_int (System.now_ns sys - t0) /. 1e6 in
    let st = Kernel.stats k in
    [
      name;
      (if !out_of_memory then "OOM" else "ok");
      string_of_int st.Kernel.swap_outs;
      string_of_int st.Kernel.swap_ins;
      f1 dt_ms;
    ]
  in
  let rows =
    [
      run "no overcommit, small NVM" 4096 false;
      run "overcommit, small NVM" 4096 true;
      run "no overcommit, large NVM" 16384 false;
    ]
  in
  Table.print
    ~title:"Ablation: memory over-commitment (2400-page working set + backups)"
    ~header:[ "Config"; "outcome"; "swap-outs"; "swap-ins"; "run time (ms)" ]
    rows

let run () =
  ablate_copy ();
  ablate_walk ();
  ablate_frequency ();
  ablate_pagetables ();
  ablate_eidetic ();
  ablate_overcommit ()
