(* bench_diff: compare freshly generated BENCH_<exp>.json files against the
   committed copies and print per-metric deltas (ISSUE 8 satellite; what
   `make bench-diff` and `make ci` run).

     bench_diff.exe FRESH_DIR COMMITTED_DIR

   For every BENCH_*.json in FRESH_DIR, rows are keyed by their config
   (sorted key=value pairs); each metric present on both sides is printed
   with its absolute and relative change, and rows or metrics present on
   only one side are called out.  The report is informational — drift is
   expected as the simulator evolves — so the exit code only reflects
   usage/parse errors (1), never metric movement.

   The container has no JSON library, so this carries a minimal
   recursive-descent parser for the harness's own output format. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char b '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          (* \uXXXX: decode the code point to UTF-8 (enough for the
             escaping Trace.json_escape produces) *)
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let cp = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
          if cp < 0x80 then Buffer.add_char b (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- BENCH_<exp>.json shape -> (config key, metric assoc) rows --------- *)

let obj_field name = function Obj fields -> List.assoc_opt name fields | _ -> None

(* one row's identity: the experiment's config, rendered canonically *)
let config_key json =
  match json with
  | Obj fields ->
    let kvs =
      List.filter_map
        (fun (k, v) -> match v with Str s -> Some (k, s) | Num f -> Some (k, Printf.sprintf "%g" f) | _ -> None)
        fields
    in
    let kvs = List.sort compare kvs in
    String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) kvs)
  | _ -> "?"

let rows_of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match parse contents with
  | Obj _ as top -> (
    match obj_field "experiments" top with
    | Some (List exps) ->
      List.concat_map
        (fun e ->
          let name = match obj_field "name" e with Some (Str s) -> s | _ -> "?" in
          match obj_field "rows" e with
          | Some (List rows) ->
            List.map
              (fun row ->
                let cfg =
                  match obj_field "config" row with Some c -> config_key c | None -> "?"
                in
                let metrics =
                  match obj_field "metrics" row with
                  | Some (Obj fields) ->
                    List.filter_map
                      (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
                      fields
                  | _ -> []
                in
                (name, cfg, metrics))
              rows
          | _ -> [])
        exps
    | _ -> failwith (path ^ ": no experiments array"))
  | _ -> failwith (path ^ ": not a JSON object")

(* --- diff --------------------------------------------------------------- *)

let diff_file ~fresh ~committed name =
  Printf.printf "== %s ==\n" name;
  if not (Sys.file_exists committed) then begin
    Printf.printf "  (new: no committed %s yet)\n" (Filename.basename committed);
    List.iter (fun (_, cfg, _) -> Printf.printf "  + %s\n" cfg) (rows_of_file fresh)
  end
  else begin
    let fresh_rows = rows_of_file fresh in
    let base_rows = rows_of_file committed in
    let changed = ref 0 and rows = ref 0 in
    List.iter
      (fun (_, cfg, metrics) ->
        match List.find_opt (fun (_, c, _) -> c = cfg) base_rows with
        | None -> Printf.printf "  + row %s (not in committed copy)\n" cfg
        | Some (_, _, base_metrics) ->
          incr rows;
          List.iter
            (fun (k, fresh_v) ->
              match List.assoc_opt k base_metrics with
              | None -> Printf.printf "  %s: + %s = %g (new metric)\n" cfg k fresh_v
              | Some base_v ->
                if fresh_v <> base_v then begin
                  incr changed;
                  let pct =
                    if base_v = 0.0 then "n/a"
                    else Printf.sprintf "%+.1f%%" ((fresh_v -. base_v) /. Float.abs base_v *. 100.0)
                  in
                  Printf.printf "  %s: %s %g -> %g (%s)\n" cfg k base_v fresh_v pct
                end)
            metrics;
          List.iter
            (fun (k, _) ->
              if not (List.mem_assoc k metrics) then
                Printf.printf "  %s: - %s (metric dropped)\n" cfg k)
            base_metrics)
      fresh_rows;
    List.iter
      (fun (_, cfg, _) ->
        if not (List.exists (fun (_, c, _) -> c = cfg) fresh_rows) then
          Printf.printf "  - row %s (only in committed copy)\n" cfg)
      base_rows;
    if !changed = 0 then Printf.printf "  %d rows, no metric changes\n" !rows
    else Printf.printf "  %d rows, %d metric changes\n" !rows !changed
  end

let () =
  match Array.to_list Sys.argv with
  | [ _; fresh_dir; committed_dir ] ->
    if not (Sys.is_directory fresh_dir) then begin
      Printf.eprintf "bench_diff: %s is not a directory\n" fresh_dir;
      exit 1
    end;
    let files =
      Sys.readdir fresh_dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
    in
    if files = [] then Printf.printf "bench_diff: no BENCH_*.json in %s\n" fresh_dir;
    (try
       List.iter
         (fun f ->
           diff_file ~fresh:(Filename.concat fresh_dir f) ~committed:(Filename.concat committed_dir f)
             f)
         files
     with
    | Parse_error msg | Failure msg ->
      Printf.eprintf "bench_diff: %s\n" msg;
      exit 1)
  | argv0 :: _ ->
    Printf.eprintf "usage: %s FRESH_DIR COMMITTED_DIR\n" (Filename.basename argv0);
    exit 1
  | [] -> exit 1
