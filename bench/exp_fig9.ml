(* Figure 9: breakdown of stop-the-world checkpointing at 1000 Hz.
   (a) time of the main checkpointing procedure (IPI / capability tree /
       others) next to the parallel hybrid-copy time;
   (b) capability-tree time by object type. *)

open Exp_common

let steady_reports sys app ~ops =
  (* skip the first (full) checkpoints, then measure *)
  run_ops sys ~n:(ops / 4) app.step;
  collect_reports sys ~n:ops app.step

let run () =
  let rows_a = ref [] and rows_b = ref [] in
  List.iter
    (fun w ->
      let sys = boot () in
      let rng = Rng.create 11L in
      let app = launch sys rng w in
      let ops = match w with W_default -> 400 | _ -> 8_000 in
      let reports = steady_reports sys app ~ops in
      let avg f = avg_reports reports f /. 1e3 in
      let ipi = avg (fun r -> r.Report.ipi_ns) in
      let cap = avg (fun r -> r.Report.captree_ns) in
      let others = avg (fun r -> r.Report.others_ns) in
      let hybrid = avg (fun r -> r.Report.hybrid_ns) in
      rows_a :=
        [ workload_name w; f1 ipi; f1 cap; f1 others; f1 (ipi +. cap +. others); f1 hybrid ]
        :: !rows_a;
      emit_row
        ~config:[ ("workload", workload_name w); ("interval_us", "1000") ]
        ~metrics:
          [
            ("ipi_us", ipi);
            ("captree_us", cap);
            ("others_us", others);
            ("stw_main_us", ipi +. cap +. others);
            ("hybrid_us", hybrid);
          ];
      (* per-kind capability-tree breakdown *)
      let kinds = Kobj.all_kinds in
      let totals = Hashtbl.create 8 in
      List.iter
        (fun r ->
          List.iter
            (fun (k, ns) ->
              Hashtbl.replace totals k (ns + Option.value ~default:0 (Hashtbl.find_opt totals k)))
            r.Report.per_kind_ns)
        reports;
      let n = max 1 (List.length reports) in
      let cell k =
        f2 (float_of_int (Option.value ~default:0 (Hashtbl.find_opt totals k)) /. float_of_int n /. 1e3)
      in
      rows_b := (workload_name w :: List.map cell kinds) :: !rows_b)
    table2_workloads;
  Table.print
    ~title:"Figure 9(a): STW checkpoint time breakdown (us, avg per 1ms checkpoint)"
    ~header:[ "Workload"; "IPI"; "Cap Tree"; "Others"; "Main total"; "Hybrid copy (parallel)" ]
    (List.rev !rows_a);
  Table.print ~title:"Figure 9(b): checkpointing the capability tree by object type (us)"
    ~header:("Workload" :: List.map Kobj.kind_name Kobj.all_kinds)
    (List.rev !rows_b)
