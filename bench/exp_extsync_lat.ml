(* Visible-latency observatory: checkpoint interval vs the enqueue->visible
   delay that external synchrony imposes on every reply (ISSUE 3 tentpole;
   companion to Figures 11/12).

   An open-loop Memcached SET stream arrives at a fixed gap; every reply is
   parked in the network server's persistent ring and released by the next
   checkpoint commit.  The request tracer (Rtrace, via Probe) stamps each
   request's arrive/handled/enqueue/visible times and the commit version
   that released it, so this experiment reads percentiles straight from the
   probe instead of re-deriving them in the driver.

   Expected shape: a reply enqueues uniformly within a checkpoint interval,
   so enqueue->visible ~ interval/2 + STW at p50 and ~ interval at p99. *)

open Exp_common
module Net_server = Treesls_extsync.Net_server
module Rtrace = Treesls_obs.Rtrace
module Probe = Treesls_obs.Probe

let intervals_us () = if !smoke then [ 1000 ] else [ 500; 1000; 2000; 5000 ]
let n_ops () = if !smoke then 2_000 else 20_000
let gap_ns = 3_000
let keys = 10_000

(* ns-precision pacing that still fires checkpoints at their deadline (the
   pause must start on time for the visible-latency measurement, not at the
   next driver tick) — System.advance_us at 1ns granularity. *)
let advance_to sys target =
  let rec loop () =
    if System.now_ns sys < target then begin
      (match Manager.next_deadline (System.manager sys) with
      | Some d when d <= target ->
        if System.now_ns sys < d then Clock.advance (System.clock sys) (d - System.now_ns sys);
        ignore (Manager.tick (System.manager sys))
      | Some _ | None -> Clock.advance (System.clock sys) (target - System.now_ns sys));
      loop ()
    end
  in
  loop ()

let run_one ~interval_us =
  let sys = boot ~interval_us () in
  let rng = Rng.create 43L in
  let app = Kv_app.launch ~keys_hint:keys ~value_size:100 sys Kv_app.Memcached in
  for i = 0 to (keys / 4) - 1 do
    Kv_app.set_i app i
  done;
  let netdrv =
    match Kernel.find_process (System.kernel sys) ~name:"netdrv" with
    | Some p -> p
    | None -> failwith "netdrv missing"
  in
  let delivered = ref 0 in
  let deliver ~client:_ ~sent_ns:_ ~payload:_ = incr delivered in
  let net = Net_server.create (System.kernel sys) (System.manager sys) ~proc:netdrv ~deliver in
  (* settle past the boot-time full checkpoint before measuring *)
  ignore (System.checkpoint sys);
  let n = n_ops () in
  let t0 = System.now_ns sys in
  for i = 0 to n - 1 do
    advance_to sys (t0 + (i * gap_ns));
    Kv_app.set_i app (Rng.int rng keys);
    ignore (Net_server.send net ~client:(i land 31) (Bytes.of_string "+OK"));
    ignore (System.tick sys)
  done;
  (* one more commit so the final partial interval's replies release too *)
  ignore (System.checkpoint sys);
  let rt = Probe.rtrace (System.obs sys) in
  let enq2vis = Rtrace.enq2vis_summary rt in
  let e2e = Rtrace.e2e_summary rt in
  (* acceptance: every released reply names the commit that released it *)
  let completed = Rtrace.completed rt in
  let unattributed =
    List.length
      (List.filter
         (fun r -> r.Rtrace.rq_outcome = Rtrace.Released && r.Rtrace.rq_commit_ver = 0)
         completed)
  in
  let commits = List.length (Rtrace.per_version rt) in
  let stw_us =
    match Manager.last_report (System.manager sys) with
    | Some r -> float_of_int r.Report.stw_ns /. 1e3
    | None -> 0.0
  in
  (sys, net, rt, enq2vis, e2e, unattributed, commits, stw_us, !delivered)

let run () =
  let rows =
    List.map
      (fun interval_us ->
        let _sys, net, rt, enq2vis, e2e, unattributed, commits, stw_us, delivered =
          run_one ~interval_us
        in
        let us v = float_of_int v /. 1e3 in
        emit_row
          ~config:
            [
              ("interval_us", string_of_int interval_us);
              ("ops", string_of_int (n_ops ()));
              ("gap_ns", string_of_int gap_ns);
            ]
          ~metrics:
            [
              ("enq2vis_p50_us", us enq2vis.Rtrace.s_p50_ns);
              ("enq2vis_p95_us", us enq2vis.Rtrace.s_p95_ns);
              ("enq2vis_p99_us", us enq2vis.Rtrace.s_p99_ns);
              ("enq2vis_mean_us", enq2vis.Rtrace.s_mean_ns /. 1e3);
              ("e2e_p50_us", us e2e.Rtrace.s_p50_ns);
              ("e2e_p99_us", us e2e.Rtrace.s_p99_ns);
              ("released", float_of_int (Rtrace.released_count rt));
              ("shed", float_of_int (Rtrace.shed_count rt));
              ("ring_dropped", float_of_int (Net_server.dropped net));
              ("delivered", float_of_int delivered);
              ("commits_attributed", float_of_int commits);
              ("unattributed", float_of_int unattributed);
              ("stw_us", stw_us);
            ];
        [
          string_of_int interval_us;
          string_of_int (Rtrace.released_count rt);
          f1 (us enq2vis.Rtrace.s_p50_ns);
          f1 (us enq2vis.Rtrace.s_p95_ns);
          f1 (us enq2vis.Rtrace.s_p99_ns);
          f1 (us e2e.Rtrace.s_p50_ns);
          f1 ((float_of_int interval_us /. 2.0) +. stw_us);
          string_of_int commits;
          string_of_int unattributed;
        ])
      (intervals_us ())
  in
  Table.print
    ~title:
      (Printf.sprintf "External-synchrony visible latency (open loop, %d ops, %dns gap)"
         (n_ops ()) gap_ns)
    ~header:
      [
        "Interval (us)";
        "Released";
        "E2V p50 (us)";
        "E2V p95";
        "E2V p99";
        "E2E p50";
        "~iv/2+stw";
        "Commits";
        "Unattrib";
      ]
    rows;
  if List.exists (fun row -> List.nth row 8 <> "0") rows then begin
    Printf.eprintf "extsync_lat: released replies without a commit version\n";
    exit 2
  end
