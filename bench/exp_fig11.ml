(* Figure 11: Memcached SET/GET latency (P50/P95) under different
   checkpoint intervals. Requests arrive open-loop, so a request landing
   in (or queued behind) a stop-the-world pause pays for it — the paper's
   client-observed latency. Baseline = checkpointing disabled. *)

open Exp_common

let intervals_ms = [ 1; 5; 10; 50 ]
let n_ops = 30_000

(* Arrival gaps push the server close to saturation, like the paper's
   8-threaded closed-loop client: queueing makes STW pauses visible in
   the tail percentiles. *)
let gap_ns_for = function `Set -> 4_200 | `Get -> 2_600

let run_one ~interval_us ~op =
  let features =
    if interval_us = 0 then features ~ckpt:false ~track:false ~copy:false ~hybrid:false ()
    else full_features ()
  in
  let sys = boot ~interval_us:(max 1000 interval_us) ~features () in
  if interval_us = 0 then System.set_interval_us sys None
  else System.set_interval_us sys (Some interval_us);
  let rng = Rng.create 29L in
  let app = Kv_app.launch ~keys_hint:40_000 ~value_size:100 sys Kv_app.Memcached in
  for i = 0 to 19_999 do
    Kv_app.set_i app i
  done;
  run_ops sys ~n:2_000 (fun () -> Kv_app.set_i app (Rng.int rng 20_000));
  let step _i =
    let k = Rng.int rng 20_000 in
    match op with `Set -> Kv_app.set_i app k | `Get -> ignore (Kv_app.get_i app k)
  in
  open_loop sys ~n:n_ops ~gap_ns:(gap_ns_for op) step

let run () =
  let table op label =
    let baseline = run_one ~interval_us:0 ~op in
    let emit ~interval r =
      emit_row
        ~config:[ ("op", label); ("interval", interval) ]
        ~metrics:
          [ ("p50_us", r.p50_us); ("p95_us", r.p95_us); ("tput_kops", r.tput_kops) ]
    in
    emit ~interval:"baseline" baseline;
    let rows =
      List.map
        (fun ms ->
          let r = run_one ~interval_us:(ms * 1000) ~op in
          emit ~interval:(Printf.sprintf "%dms" ms) r;
          [ Printf.sprintf "%d ms" ms; f1 r.p50_us; f1 r.p95_us ])
        intervals_ms
      @ [ [ "baseline (no ckpt)"; f1 baseline.p50_us; f1 baseline.p95_us ] ]
    in
    Table.print
      ~title:(Printf.sprintf "Figure 11(%s): Memcached %s latency vs checkpoint interval" label label)
      ~header:[ "Checkpoint interval"; "P50 (us)"; "P95 (us)" ]
      rows
  in
  table `Set "SET";
  table `Get "GET"
