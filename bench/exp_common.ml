(* Shared machinery for the experiment harness: booting configured
   systems, launching the paper's workloads, and the open-/closed-loop
   drivers that measure simulated latency and throughput. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module State = Treesls_ckpt.State
module Census = Treesls_cap.Census
module Kobj = Treesls_cap.Kobj
module Rng = Treesls_util.Rng
module Stats = Treesls_util.Stats
module Histogram = Treesls_util.Histogram
module Table = Treesls_util.Table
module Clock = Treesls_sim.Clock
module Kv_app = Treesls_apps.Kv_app
module Lsm = Treesls_apps.Lsm
module Sqlite = Treesls_apps.Sqlite
module Phoenix = Treesls_apps.Phoenix
module Kvstore = Treesls_apps.Kvstore

let features ?(incr = true) ?(adaptive = false) ?(async = false) ~ckpt ~track ~copy ~hybrid () =
  {
    State.ckpt_enabled = ckpt;
    track_dirty = track;
    copy_on_fault = copy;
    hybrid;
    incremental_walk = incr;
    adaptive_interval = adaptive;
    async_drain = async;
  }

let full_features () = features ~ckpt:true ~track:true ~copy:true ~hybrid:true ()

(* Set by main.exe's [--trace FILE] flag: every system booted through this
   module records a trace, and the last one's ring is exported to FILE when
   the harness exits. *)
let trace_out : string option ref = ref None
let trace_verbose : bool ref = ref false
let traced_sys : System.t option ref = ref None

(* Set by [--smoke]: experiments that support it run a reduced-scale
   configuration suitable for `make ci`. *)
let smoke : bool ref = ref false

module Audit = Treesls_audit.Audit

(* Set by main.exe's [--audit] flag (paranoid mode): every system booted
   through this module re-runs the state auditor after every committed
   checkpoint and after every crash/restore, aborting the harness on any
   Error-severity violation. *)
let audit_mode : bool ref = ref false

let audit_or_die sys ~where =
  let r = System.audit sys in
  if Audit.errors r > 0 then begin
    Format.eprintf "audit failed (%s):@\n%a@." where Audit.pp r;
    exit 2
  end

let boot ?(interval_us = 1000) ?(features = full_features ()) ?(nvm_pages = 1 lsl 16)
    ?adaptive_cfg () =
  let sys = System.boot ~interval_us ~features ~nvm_pages ?adaptive_cfg () in
  if !trace_out <> None then begin
    System.enable_tracing ~verbose:!trace_verbose sys;
    traced_sys := Some sys
  end;
  (* Registered as a service so the volatile on_checkpoint callback is
     re-installed after every recover (setups re-run then) — and the
     setup itself audits, covering boot and each post-restore state. *)
  if !audit_mode then
    System.add_service sys ~name:"audit" ~setup:(fun sys ->
        audit_or_die sys ~where:"boot/post-restore";
        Manager.on_checkpoint (System.manager sys) (fun () ->
            audit_or_die sys ~where:"post-commit"));
  sys

(* ------------------------------------------------------------------ *)
(* The seven workloads of Table 2 / Figure 9, unified behind "one op". *)

type workload =
  | W_default
  | W_sqlite
  | W_leveldb
  | W_wordcount
  | W_kmeans
  | W_redis
  | W_memcached
  | W_pca

let workload_name = function
  | W_default -> "Default"
  | W_sqlite -> "SQLite"
  | W_leveldb -> "LevelDB"
  | W_wordcount -> "WordCount"
  | W_kmeans -> "KMeans"
  | W_redis -> "Redis"
  | W_memcached -> "Memcached"
  | W_pca -> "PCA"

let table2_workloads =
  [ W_default; W_sqlite; W_leveldb; W_wordcount; W_kmeans; W_redis; W_memcached ]

type launched = {
  step : unit -> unit;  (** one application operation *)
  refresh : unit -> unit;  (** post-recovery rebinding *)
  touched_mib : unit -> float;  (** runtime memory touched by the app *)
}

let mib_of_pages sys pages =
  float_of_int (pages * (Kernel.cost (System.kernel sys)).Treesls_sim.Cost.page_size)
  /. (1024.0 *. 1024.0)

let census sys = Census.collect ~root:(Kernel.root (System.kernel sys))

let launch sys rng workload =
  let base_pages = (census sys).Census.app_pages in
  let touched () = mib_of_pages sys ((census sys).Census.app_pages - base_pages) in
  match workload with
  | W_default ->
    {
      step = (fun () -> Clock.advance (System.clock sys) 20_000);
      refresh = (fun () -> ());
      touched_mib = touched;
    }
  | W_sqlite ->
    let app = Sqlite.launch sys in
    (* preload some rows *)
    for i = 0 to 4_999 do
      Sqlite.op_step app Sqlite.Insert i
    done;
    { step = (fun () -> Sqlite.step app rng); refresh = (fun () -> Sqlite.refresh app); touched_mib = touched }
  | W_leveldb ->
    let app = Lsm.launch sys Lsm.Leveldb in
    let n = ref 0 in
    {
      step =
        (fun () ->
          Lsm.fillbatch app ~base:!n ~count:16;
          n := !n + 16);
      refresh = (fun () -> Lsm.refresh app);
      touched_mib = touched;
    }
  | W_wordcount ->
    let app = Phoenix.launch sys Phoenix.Wordcount in
    { step = (fun () -> Phoenix.step app rng); refresh = (fun () -> Phoenix.refresh app); touched_mib = touched }
  | W_kmeans ->
    let app = Phoenix.launch sys Phoenix.Kmeans in
    { step = (fun () -> Phoenix.step app rng); refresh = (fun () -> Phoenix.refresh app); touched_mib = touched }
  | W_pca ->
    let app = Phoenix.launch sys Phoenix.Pca in
    { step = (fun () -> Phoenix.step app rng); refresh = (fun () -> Phoenix.refresh app); touched_mib = touched }
  | W_redis ->
    let app = Kv_app.launch ~keys_hint:40_000 ~value_size:1024 sys Kv_app.Redis in
    for i = 0 to 9_999 do
      Kv_app.set_i app i
    done;
    (* skewed keys: Redis's SET benchmark concentrates on a hot set, the
       best case for hybrid copy (Table 4: 89% of faults eliminated) *)
    let zipf = Treesls_util.Zipf.create ~theta:1.1 ~n:4_000 rng in
    {
      step = (fun () -> Kv_app.set_i app (Treesls_util.Zipf.next zipf));
      refresh = (fun () -> Kv_app.refresh app);
      touched_mib = touched;
    }
  | W_memcached ->
    let app = Kv_app.launch ~keys_hint:40_000 ~value_size:100 sys Kv_app.Memcached in
    for i = 0 to 9_999 do
      Kv_app.set_i app i
    done;
    {
      step = (fun () -> Kv_app.set_i app (Rng.int rng 40_000));
      refresh = (fun () -> Kv_app.refresh app);
      touched_mib = touched;
    }

(* ------------------------------------------------------------------ *)
(* Drivers *)

(* Closed loop: issue [n] ops back to back, taking periodic checkpoints. *)
let run_ops sys ~n step =
  for _ = 1 to n do
    step ();
    ignore (System.tick sys)
  done

(* Collect the reports of the checkpoints that fire while running. *)
let collect_reports sys ~n step =
  let reports = ref [] in
  for _ = 1 to n do
    step ();
    match System.tick sys with Some r -> reports := r :: !reports | None -> ()
  done;
  List.rev !reports

type lat_result = {
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  tput_kops : float;
  sim_s : float;
}

let lat_of_histogram h ~ops ~sim_ns =
  let us v = float_of_int v /. 1e3 in
  {
    p50_us = us (Histogram.percentile h 50.0);
    p95_us = us (Histogram.percentile h 95.0);
    p99_us = us (Histogram.percentile h 99.0);
    mean_us = Histogram.mean h /. 1e3;
    tput_kops = (if sim_ns = 0 then 0.0 else float_of_int ops /. (float_of_int sim_ns /. 1e9) /. 1e3);
    sim_s = float_of_int sim_ns /. 1e9;
  }

(* Open loop: requests arrive every [gap_ns]; a request arriving during a
   checkpoint pause queues behind it, so pause time surfaces in the tail
   latency exactly as in the paper's client-server measurements. *)
let open_loop sys ~n ~gap_ns step =
  let h = Histogram.create () in
  let t0 = System.now_ns sys in
  for i = 0 to n - 1 do
    let arrival = t0 + (i * gap_ns) in
    if System.now_ns sys < arrival then
      Clock.advance (System.clock sys) (arrival - System.now_ns sys);
    step i;
    ignore (System.tick sys);
    Histogram.add h (System.now_ns sys - arrival)
  done;
  let sim_ns = System.now_ns sys - t0 in
  lat_of_histogram h ~ops:n ~sim_ns

(* Closed loop with latency = service time (ops do not queue). *)
let closed_loop_lat sys ~n step =
  let h = Histogram.create () in
  let t0 = System.now_ns sys in
  for i = 0 to n - 1 do
    let s = System.now_ns sys in
    step i;
    ignore (System.tick sys);
    Histogram.add h (System.now_ns sys - s)
  done;
  let sim_ns = System.now_ns sys - t0 in
  lat_of_histogram h ~ops:n ~sim_ns

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

(* ------------------------------------------------------------------ *)
(* Machine-readable results ([--json FILE] / [--json-dir DIR]).
   Experiments call [emit_row] for each measured configuration; the rows
   accumulate under the experiment [main.exe] is currently running and are
   written out once at harness exit.  This seeds the perf trajectory: a
   row is one (config, metrics) point, e.g. one checkpoint interval of a
   latency sweep. *)

let json_out : string option ref = ref None
let json_dir : string option ref = ref None
let current_exp : string ref = ref ""

(* (experiment, config, metrics), oldest first *)
let results : (string * (string * string) list * (string * float) list) list ref = ref []

let emit_row ~config ~metrics = results := !results @ [ (!current_exp, config, metrics) ]

let esc = Treesls_obs.Trace.json_escape

let row_json b (config, metrics) =
  Buffer.add_string b "{\"config\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)))
    config;
  Buffer.add_string b "},\"metrics\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      (* %.17g round-trips every float; trim the common integral case *)
      let s =
        if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (esc k) s))
    metrics;
  Buffer.add_string b "}}"

let experiments_json rows =
  let names =
    List.fold_left (fun acc (e, _, _) -> if List.mem e acc then acc else acc @ [ e ]) [] rows
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"experiments\":[";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\",\"rows\":[" (esc name));
      let mine = List.filter (fun (e, _, _) -> e = name) rows in
      List.iteri
        (fun j (_, config, metrics) ->
          if j > 0 then Buffer.add_char b ',';
          row_json b (config, metrics))
        mine;
      Buffer.add_string b "]}")
    names;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let finish_json () =
  let rows = !results in
  (match !json_out with
  | Some path when rows <> [] ->
    write_file path (experiments_json rows);
    Printf.printf "\nresults: %d rows -> %s\n" (List.length rows) path
  | Some path -> Printf.printf "\nresults: no rows emitted; nothing to write to %s\n" path
  | None -> ());
  match !json_dir with
  | None -> ()
  | Some dir ->
    let names =
      List.fold_left (fun acc (e, _, _) -> if List.mem e acc then acc else acc @ [ e ]) [] rows
    in
    List.iter
      (fun name ->
        let mine = List.filter (fun (e, _, _) -> e = name) rows in
        let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
        write_file path (experiments_json mine);
        Printf.printf "results: %d rows -> %s\n" (List.length mine) path)
      names

let avg_reports reports f =
  match reports with
  | [] -> 0.0
  | l -> List.fold_left (fun acc r -> acc +. float_of_int (f r)) 0.0 l /. float_of_int (List.length l)

(* ------------------------------------------------------------------ *)
(* Trace export + reconciliation *)

module Trace = Treesls_obs.Trace

(* Cross-check the trace against the checkpoint code's own arithmetic: for
   every retained [ckpt.stw] span,

     stw = quiesce + captree + max(0, hybrid - captree) + others + resume

   because the hybrid copy runs on the other cores in parallel with the
   leader's cap-tree walk — only its excess extends the pause.  Returns
   (spans checked, worst absolute discrepancy in ns, Stats of stw
   durations). *)
let reconcile_stw_spans tr =
  let events = Trace.events tr in
  let stw_stats = Stats.create () in
  let checked = ref 0 and worst = ref 0 in
  List.iter
    (fun (stw : Trace.event) ->
      if stw.Trace.name = "ckpt.stw" && stw.Trace.ph = Trace.Complete
         && not (List.mem_assoc "aborted" stw.Trace.args)
      then begin
        let child name =
          List.fold_left
            (fun acc (e : Trace.event) ->
              if e.Trace.name = name && e.Trace.parent = stw.Trace.id then acc + e.Trace.dur_ns
              else acc)
            0 events
        in
        let quiesce = child "ckpt.quiesce" in
        let captree = child "ckpt.captree" in
        let hybrid = child "ckpt.hybrid_copy" in
        let others = child "ckpt.others" in
        let resume = child "ckpt.resume" in
        (* only spans whose children are all still in the ring reconcile *)
        if captree > 0 then begin
          let expected = quiesce + captree + Stdlib.max 0 (hybrid - captree) + others + resume in
          let err = Stdlib.abs (stw.Trace.dur_ns - expected) in
          incr checked;
          if err > !worst then worst := err;
          Stats.add stw_stats (float_of_int stw.Trace.dur_ns)
        end
      end)
    events;
  (!checked, !worst, stw_stats)

let finish_trace () =
  match (!trace_out, !traced_sys) with
  | Some path, Some sys ->
    System.export_trace_file sys ~path;
    let tr = System.trace sys in
    let checked, worst, stw = reconcile_stw_spans tr in
    let pct p =
      match Stats.percentile_opt stw p with
      | None -> "n/a"
      | Some v -> Printf.sprintf "%.2fus" (v /. 1e3)
    in
    Printf.printf
      "\ntrace: %d events retained (%d recorded, %d dropped) -> %s\n\
       trace: %d ckpt.stw spans reconcile with their children (worst error %dns); p50=%s p99=%s\n"
      (Trace.length tr) (Trace.total tr) (Trace.dropped tr) path checked worst (pct 50.0)
      (pct 99.0)
  | Some path, None ->
    Printf.printf "\ntrace: no system was booted; nothing to export to %s\n" path
  | None, _ -> ()
