(* Figure 14: RocksDB with the Facebook Prefix_dist workload.
   TreeSLS runs the LSM app on the persistent microkernel (WAL disabled:
   persistence is transparent); Aurora configurations run on the two-tier
   DRAM+NVMe baseline simulator. Reported: throughput, P50 and P99 write
   latency.

   Each config is driven open-loop at ~85% of its own saturation rate
   (measured by a calibration pass), so stop-the-world pauses and journal
   barriers queue requests and surface in the tail percentiles, as in the
   paper's client-server setup. *)

open Exp_common
module Prefix_dist = Treesls_workloads.Prefix_dist
module Aurora = Treesls_baselines.Aurora
module Machine = Treesls_baselines.Machine

let n_ops = 40_000
let calib_ops = 10_000

type driver = {
  op : Prefix_dist.op -> unit;  (** run one op, charging its clock *)
  now : unit -> int;
  idle_to : int -> unit;  (** advance the clock to an arrival time *)
  is_write : Prefix_dist.op -> bool;
}

let drive d gen =
  (* warm up (cold faults, first checkpoints), then calibrate the mean
     service time on steady state *)
  for _ = 1 to calib_ops do
    d.op (Prefix_dist.next gen)
  done;
  let t0 = d.now () in
  for _ = 1 to calib_ops do
    d.op (Prefix_dist.next gen)
  done;
  let mean_ns = max 1 ((d.now () - t0) / calib_ops) in
  (* 40% headroom: enough for queues to drain between flush/pause bursts *)
  let gap = mean_ns * 140 / 100 in
  let h = Histogram.create () in
  let t1 = d.now () in
  for i = 0 to n_ops - 1 do
    let arrival = t1 + (i * gap) in
    if d.now () < arrival then d.idle_to arrival;
    let o = Prefix_dist.next gen in
    d.op o;
    if d.is_write o then Histogram.add h (d.now () - arrival)
  done;
  let sim_ns = d.now () - t1 in
  let tput = float_of_int n_ops /. (float_of_int sim_ns /. 1e9) /. 1e3 in
  ( tput,
    float_of_int (Histogram.percentile h 50.0) /. 1e3,
    float_of_int (Histogram.percentile h 99.0) /. 1e3 )

let is_write = function Prefix_dist.Put _ -> true | Prefix_dist.Get _ -> false

let run_treesls ~interval_us =
  let features =
    if interval_us = 0 then features ~ckpt:false ~track:false ~copy:false ~hybrid:false ()
    else full_features ()
  in
  let sys = boot ~interval_us:(max 1000 interval_us) ~features () in
  if interval_us = 0 then System.set_interval_us sys None;
  let rng = Rng.create 41L in
  let gen = Prefix_dist.create rng in
  let app = Lsm.launch ~wal:false ~memtable_kb:4096 sys Lsm.Rocksdb in
  let d =
    {
      op =
        (fun o ->
          (match o with
          | Prefix_dist.Put { key; value } -> Lsm.put app ~key ~value
          | Prefix_dist.Get { key } -> ignore (Lsm.get app ~key));
          ignore (System.tick sys));
      now = (fun () -> System.now_ns sys);
      idle_to =
        (fun t ->
          (* idle time still takes periodic checkpoints *)
          let rec go () =
            if System.now_ns sys < t then begin
              (match Manager.next_deadline (System.manager sys) with
              | Some dl when dl <= t ->
                if System.now_ns sys < dl then
                  Clock.advance (System.clock sys) (dl - System.now_ns sys);
                ignore (System.tick sys)
              | Some _ | None -> Clock.advance (System.clock sys) (t - System.now_ns sys));
              go ()
            end
          in
          go ());
      is_write;
    }
  in
  drive d gen

let run_aurora mode =
  let a = Aurora.create mode in
  let m = Aurora.machine a in
  let rng = Rng.create 41L in
  let gen = Prefix_dist.create rng in
  let d =
    {
      op =
        (fun o ->
          match o with
          | Prefix_dist.Put { key; value } -> Aurora.put a ~key ~value
          | Prefix_dist.Get { key } -> ignore (Aurora.get a ~key));
      now = (fun () -> Machine.now m);
      idle_to = (fun t -> if Machine.now m < t then Machine.charge m (t - Machine.now m));
      is_write;
    }
  in
  drive d gen

let run () =
  let configs =
    [
      ("TreeSLS-base", `T 0);
      ("TreeSLS-5ms", `T 5000);
      ("TreeSLS-1ms", `T 1000);
      ("Aurora-base", `A Aurora.Base);
      ("Aurora-5ms", `A (Aurora.Ckpt 5_000_000));
      ("Aurora-API", `A Aurora.Api);
      ("Aurora-base-WAL", `A Aurora.Base_wal);
    ]
  in
  let rows =
    List.map
      (fun (name, cfg) ->
        let tput, p50, p99 =
          match cfg with `T us -> run_treesls ~interval_us:us | `A mode -> run_aurora mode
        in
        [ name; f1 tput; f2 p50; f2 p99 ])
      configs
  in
  Table.print ~title:"Figure 14: RocksDB with Facebook Prefix_dist"
    ~header:[ "Config"; "Throughput (Kops/s)"; "P50 write (us)"; "P99 write (us)" ]
    rows
