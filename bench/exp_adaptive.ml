(* Adaptive checkpoint-interval controller vs a static-interval sweep on a
   bursty open-loop workload (ISSUE 8 tentpole gate).

   The workload alternates burst phases (Memcached SETs arriving every
   [gap_ns], replies parked in the persistent network ring) with idle gaps.
   A static interval must pick one point on the latency/overhead curve: a
   short interval bounds enqueue->visible latency but burns checkpoints all
   through the idle gaps; a long one wastes the bursts.  The adaptive
   controller (Interval_ctl, fed by the Tseries black box) should get both:
   the pressure feedforward clamps the first commit of a burst to the
   interval floor, the PID loop then holds the windowed enq2vis p99 near
   its SLO target, and idle commits that released nothing grow the interval
   back toward the ceiling.

   Self-gates (exit 2 on failure):
   - controller-on p99 enq2vis <= the best static interval's p99;
   - controller-on checkpoint count <= 1.2x that static's count;
   - for every run, Perfetto counter-track points exported from the black
     box == samples recorded (one ph:"C" event per commit, exactly). *)

open Exp_common
module Net_server = Treesls_extsync.Net_server
module Rtrace = Treesls_obs.Rtrace
module Probe = Treesls_obs.Probe
module Tseries = Treesls_obs.Tseries
module Interval_ctl = Treesls_ckpt.Interval_ctl

let statics_us = [ 200; 500; 1000; 2000 ]
let cycles () = if !smoke then 4 else 12
let burst () = if !smoke then 600 else 1_500
let idle_us = 4_000
let gap_ns = 1_000
let keys = 10_000

(* Target well under the tightest static's p99 (~interval + stw at 200us)
   so the PID loop settles the burst interval near 150us; ceiling matches
   the longest static so idle overhead back-off is comparable. *)
let adaptive_cfg =
  {
    Interval_ctl.slo_p99_ns = 150_000;
    min_interval_ns = 100_000;
    max_interval_ns = 2_000_000;
    kp = 0.5;
    ki = 0.1;
    grow = 1.5;
    pressure_threshold = 24;
  }

(* ns-precision pacing that still fires checkpoints at their deadline
   (same as exp_extsync_lat: the pause must start on time, not at the next
   driver tick). *)
let advance_to sys target =
  let rec loop () =
    if System.now_ns sys < target then begin
      (match Manager.next_deadline (System.manager sys) with
      | Some d when d <= target ->
        if System.now_ns sys < d then Clock.advance (System.clock sys) (d - System.now_ns sys);
        ignore (Manager.tick (System.manager sys))
      | Some _ | None -> Clock.advance (System.clock sys) (target - System.now_ns sys));
      loop ()
    end
  in
  loop ()

let count_substring s sub =
  let n = String.length sub in
  let rec go i acc =
    if i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

type run = {
  r_label : string;
  r_interval_us : int;
  r_p50_ns : int;
  r_p99_ns : int;
  r_released : int;
  r_shed : int;
  r_dropped : int;
  r_commits : int;
  r_retunes : int;
  r_clamps : int;
  r_samples : int;  (** Tseries.total at the end of the run *)
  r_points : int;  (** ph:"C" events in the black box's Perfetto export *)
}

let run_one ~label ~interval_us ~adaptive =
  let feats = features ~ckpt:true ~track:true ~copy:true ~hybrid:true ~adaptive () in
  let sys = boot ~interval_us ~features:feats ~adaptive_cfg () in
  (* price the black box's NVM residency like the trace ring's *)
  System.ensure_tseries_backing sys;
  let rng = Rng.create 47L in
  let app = Kv_app.launch ~keys_hint:keys ~value_size:100 sys Kv_app.Memcached in
  for i = 0 to (keys / 4) - 1 do
    Kv_app.set_i app i
  done;
  let netdrv =
    match Kernel.find_process (System.kernel sys) ~name:"netdrv" with
    | Some p -> p
    | None -> failwith "netdrv missing"
  in
  let deliver ~client:_ ~sent_ns:_ ~payload:_ = () in
  let net = Net_server.create (System.kernel sys) (System.manager sys) ~proc:netdrv ~deliver in
  (* settle past the boot-time full checkpoint before measuring *)
  ignore (System.checkpoint sys);
  let v0 = System.version sys in
  let req = ref 0 in
  for _cycle = 1 to cycles () do
    (* burst: open-loop arrivals every gap_ns; System.tick (not the bare
       manager tick) so the pressure feedforward is polled per op *)
    let t0 = System.now_ns sys in
    for i = 0 to burst () - 1 do
      advance_to sys (t0 + (i * gap_ns));
      Kv_app.set_i app (Rng.int rng keys);
      ignore (Net_server.send net ~client:(!req land 31) (Bytes.of_string "+OK"));
      incr req;
      ignore (System.tick sys)
    done;
    (* idle gap: deadlines keep firing with nothing to release — the
       adaptive run should back its interval off toward the ceiling *)
    advance_to sys (System.now_ns sys + (idle_us * 1000))
  done;
  (* one more commit so the final partial interval's replies release too *)
  ignore (System.checkpoint sys);
  let commits = System.version sys - v0 in
  let rt = Probe.rtrace (System.obs sys) in
  let s = Rtrace.enq2vis_summary rt in
  let ts = System.tseries sys in
  let points = count_substring (Tseries.to_perfetto_json ts) "\"ph\":\"C\"" in
  let ctl = System.interval_ctl sys in
  {
    r_label = label;
    r_interval_us = interval_us;
    r_p50_ns = s.Rtrace.s_p50_ns;
    r_p99_ns = s.Rtrace.s_p99_ns;
    r_released = Rtrace.released_count rt;
    r_shed = Rtrace.shed_count rt;
    r_dropped = Net_server.dropped net;
    r_commits = commits;
    r_retunes = Interval_ctl.retunes ctl;
    r_clamps = Interval_ctl.pressure_clamps ctl;
    r_samples = Tseries.total ts;
    r_points = points;
  }

let emit r ~mode =
  emit_row
    ~config:
      [
        ("mode", mode);
        ("interval_us", string_of_int r.r_interval_us);
        ("cycles", string_of_int (cycles ()));
        ("burst", string_of_int (burst ()));
        ("idle_us", string_of_int idle_us);
        ("gap_ns", string_of_int gap_ns);
      ]
    ~metrics:
      [
        ("enq2vis_p50_us", float_of_int r.r_p50_ns /. 1e3);
        ("enq2vis_p99_us", float_of_int r.r_p99_ns /. 1e3);
        ("released", float_of_int r.r_released);
        ("shed", float_of_int r.r_shed);
        ("ring_dropped", float_of_int r.r_dropped);
        ("commits", float_of_int r.r_commits);
        ("retunes", float_of_int r.r_retunes);
        ("pressure_clamps", float_of_int r.r_clamps);
        ("tseries_samples", float_of_int r.r_samples);
        ("counter_points", float_of_int r.r_points);
      ]

let run () =
  let statics =
    List.map
      (fun us ->
        let r = run_one ~label:(Printf.sprintf "static-%d" us) ~interval_us:us ~adaptive:false in
        emit r ~mode:"static";
        r)
      statics_us
  in
  let adaptive =
    let r =
      run_one ~label:"adaptive"
        ~interval_us:(adaptive_cfg.Interval_ctl.max_interval_ns / 1000)
        ~adaptive:true
    in
    emit r ~mode:"adaptive";
    r
  in
  let all = statics @ [ adaptive ] in
  let us v = float_of_int v /. 1e3 in
  Table.print
    ~title:
      (Printf.sprintf "Adaptive interval vs statics (bursty: %d cycles x %d reqs @ %dns, %dus idle)"
         (cycles ()) (burst ()) gap_ns idle_us)
    ~header:
      [ "Run"; "Released"; "E2V p50 (us)"; "E2V p99"; "Commits"; "Retunes"; "Clamps"; "Samples" ]
    (List.map
       (fun r ->
         [
           r.r_label;
           string_of_int r.r_released;
           f1 (us r.r_p50_ns);
           f1 (us r.r_p99_ns);
           string_of_int r.r_commits;
           string_of_int r.r_retunes;
           string_of_int r.r_clamps;
           string_of_int r.r_samples;
         ])
       all);
  let best =
    List.fold_left (fun acc r -> if r.r_p99_ns < acc.r_p99_ns then r else acc) (List.hd statics)
      (List.tl statics)
  in
  Printf.printf
    "\nbest static: %s (p99 %.1fus, %d commits); adaptive: p99 %.1fus, %d commits (%.2fx)\n"
    best.r_label (us best.r_p99_ns) best.r_commits (us adaptive.r_p99_ns) adaptive.r_commits
    (float_of_int adaptive.r_commits /. float_of_int (max 1 best.r_commits));
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if adaptive.r_p99_ns > best.r_p99_ns then
    fail "adaptive p99 %.1fus exceeds best static (%s) p99 %.1fus" (us adaptive.r_p99_ns)
      best.r_label (us best.r_p99_ns);
  if float_of_int adaptive.r_commits > 1.2 *. float_of_int best.r_commits then
    fail "adaptive took %d commits > 1.2x best static's %d" adaptive.r_commits best.r_commits;
  List.iter
    (fun r ->
      if r.r_points <> r.r_samples then
        fail "%s: %d exported counter points != %d samples recorded" r.r_label r.r_points
          r.r_samples)
    all;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "adaptive: %s\n") (List.rev !failures);
    exit 2
  end
