(* NVM write-amplification and wear telemetry (exp_wear).

   Drives the same hot-set KV workload under 1 ms checkpoints twice — once
   with the eager capability-tree walk, once incremental — and reads the
   wearmap + per-checkpoint WAF out of each run.

   Built-in correctness gates (the harness exits 2 if any fails):
   - the incremental walk's average WAF is strictly below the eager one's
     (at <= 10% dirty objects the eager walk re-snapshots the whole tree
     every checkpoint; the denominator is strategy-independent);
   - journal wear reconciles exactly with the transaction layer:
     wearmap["nvm.journal"] = 16 bytes x the nvm.txn.words counter
     (8 B log record + 8 B in-place apply per committed word);
   - charged copy time reconciles with the Sim.Cost model within 1%:
     copy_ns = copy_pages x nvm_page_write_copy_ns;
   - the CSV heatmap round-trips: re-parsing it reproduces the per-page
     write/byte sums and page count, and the JSON export carries the same
     grand totals;
   - no bytes are ever attributed to the [unattributed] sink. *)

open Exp_common
module Wearmap = Treesls_obs.Wearmap
module Metrics = Treesls_obs.Metrics
module Probe = Treesls_obs.Probe
module Cost = Treesls_sim.Cost

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("wear: " ^ m);
      exit 2)
    fmt

type mode_result = {
  m_reports : Report.t list;  (* steady-state checkpoints, first full walk dropped *)
  m_waf : float;
  m_dirty_pct : float;  (* walked / (walked + skipped), eager: 100 *)
  m_journal_bytes : int;
  m_txn_words : int;
  m_copy_pages : int;
  m_copy_ns : int;
  m_unattributed : int;
  m_wm : Wearmap.t;
}

(* One run: boot (installing a fresh probe, so attribution never mixes
   across modes), preload a KV store, then hammer a Zipf hot set. *)
let run_mode ~incr ~ops =
  let sys =
    boot ~features:(features ~incr ~ckpt:true ~track:true ~copy:true ~hybrid:true ()) ()
  in
  System.ensure_wear_backing sys;
  let rng = Rng.create 7L in
  let app = Kv_app.launch ~keys_hint:20_000 ~value_size:256 sys Kv_app.Memcached in
  for i = 0 to 4_999 do
    Kv_app.set_i app i
  done;
  (* the first post-boot walk is forced eager in both modes; exclude it *)
  ignore (System.checkpoint sys);
  let zipf = Treesls_util.Zipf.create ~theta:1.1 ~n:2_000 rng in
  let reports =
    collect_reports sys ~n:ops (fun () -> Kv_app.set_i app (Treesls_util.Zipf.next zipf))
  in
  if List.length reports < 3 then die "only %d checkpoints fired" (List.length reports);
  let wm = System.wearmap sys in
  let metrics = Probe.metrics (System.obs sys) in
  let walked = List.fold_left (fun a (r : Report.t) -> a + r.Report.objects_walked) 0 reports in
  let skipped =
    List.fold_left (fun a (r : Report.t) -> a + r.Report.objects_skipped) 0 reports
  in
  {
    m_reports = reports;
    m_waf = avg_reports reports (fun r -> int_of_float (100.0 *. Report.waf r)) /. 100.0;
    m_dirty_pct = 100.0 *. float_of_int walked /. float_of_int (max 1 (walked + skipped));
    m_journal_bytes = Wearmap.subsystem_bytes wm "nvm.journal";
    m_txn_words = Metrics.counter_value metrics "nvm.txn.words";
    m_copy_pages = Wearmap.copy_pages wm;
    m_copy_ns = Wearmap.copy_ns wm;
    m_unattributed = Wearmap.subsystem_bytes wm Wearmap.unattributed;
    m_wm = wm;
  }

(* Re-parse the CSV heatmap and check it reproduces the wear table. *)
let check_heatmap_roundtrip wm =
  let csv = Wearmap.to_csv wm in
  let lines =
    match String.split_on_char '\n' csv with
    | "page,writes,bytes,owner" :: rest -> List.filter (fun l -> l <> "") rest
    | _ -> die "heatmap CSV header mismatch"
  in
  if List.length lines <> Wearmap.pages_tracked wm then
    die "heatmap rows %d <> pages tracked %d" (List.length lines) (Wearmap.pages_tracked wm);
  let csv_writes, csv_bytes =
    List.fold_left
      (fun (w, b) line ->
        match String.split_on_char ',' line with
        | page :: writes :: bytes :: _ ->
          ignore (int_of_string page);
          (w + int_of_string writes, b + int_of_string bytes)
        | _ -> die "heatmap line %S malformed" line)
      (0, 0) lines
  in
  let tbl_writes, tbl_bytes =
    List.fold_left
      (fun (w, b) (_, writes, bytes) -> (w + writes, b + bytes))
      (0, 0)
      (Wearmap.top wm ~n:(Wearmap.pages_tracked wm))
  in
  if csv_writes <> tbl_writes || csv_bytes <> tbl_bytes then
    die "heatmap CSV sums (%d writes, %d B) <> wear table (%d writes, %d B)" csv_writes
      csv_bytes tbl_writes tbl_bytes;
  (* and the JSON export carries the same grand totals *)
  let json = Wearmap.to_json wm in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> if not (contains needle) then die "JSON export lacks %S" needle)
    [
      Printf.sprintf "\"total_bytes\": %d" (Wearmap.total_bytes wm);
      Printf.sprintf "\"pages_tracked\": %d" (Wearmap.pages_tracked wm);
    ]

let check_mode name (m : mode_result) =
  if m.m_unattributed > 0 then die "%s: %d unattributed bytes" name m.m_unattributed;
  if m.m_journal_bytes <> 16 * m.m_txn_words then
    die "%s: journal bytes %d <> 16 x %d txn words" name m.m_journal_bytes m.m_txn_words;
  let expect_ns = m.m_copy_pages * Cost.default.Cost.nvm_page_write_copy_ns in
  if
    m.m_copy_pages > 0
    && abs_float (float_of_int (m.m_copy_ns - expect_ns)) > 0.01 *. float_of_int expect_ns
  then
    die "%s: copy_ns %d off by >1%% from %d pages x %dns" name m.m_copy_ns m.m_copy_pages
      Cost.default.Cost.nvm_page_write_copy_ns;
  check_heatmap_roundtrip m.m_wm

let run () =
  let ops = if !smoke then 4_000 else 20_000 in
  let eager = run_mode ~incr:false ~ops in
  let incr = run_mode ~incr:true ~ops in
  check_mode "eager" eager;
  check_mode "incr" incr;
  if incr.m_dirty_pct > 10.0 then
    die "workload dirties %.1f%% of objects; the WAF gate assumes <= 10%%" incr.m_dirty_pct;
  if incr.m_waf >= eager.m_waf then
    die "incremental WAF %.2f not below eager %.2f at %.1f%% dirty" incr.m_waf eager.m_waf
      incr.m_dirty_pct;
  let row name (m : mode_result) =
    [
      name;
      string_of_int (List.length m.m_reports);
      f1 m.m_dirty_pct;
      f2 m.m_waf;
      string_of_int (Wearmap.total_bytes m.m_wm);
      string_of_int m.m_journal_bytes;
      string_of_int m.m_copy_pages;
      f2 (Wearmap.skew m.m_wm);
      Printf.sprintf "%.3f" (Wearmap.gini m.m_wm);
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "NVM write amplification: eager vs incremental walk (%d ops, 1ms checkpoints; \
          journal/copy reconciliation + heatmap round-trip checked)"
         ops)
    ~header:
      [ "walk"; "ckpts"; "dirty %"; "waf"; "nvm B"; "journal B"; "copies"; "skew"; "gini" ]
    [ row "eager" eager; row "incr" incr ];
  List.iter
    (fun (name, (m : mode_result)) ->
      emit_row
        ~config:[ ("walk", name); ("ops", string_of_int ops) ]
        ~metrics:
          [
            ("checkpoints", float_of_int (List.length m.m_reports));
            ("dirty_pct", m.m_dirty_pct);
            ("waf", m.m_waf);
            ("nvm_bytes", float_of_int (Wearmap.total_bytes m.m_wm));
            ("journal_bytes", float_of_int m.m_journal_bytes);
            ("txn_words", float_of_int m.m_txn_words);
            ("copy_pages", float_of_int m.m_copy_pages);
            ("copy_ns", float_of_int m.m_copy_ns);
            ("pages_tracked", float_of_int (Wearmap.pages_tracked m.m_wm));
            ("skew", Wearmap.skew m.m_wm);
            ("gini", Wearmap.gini m.m_wm);
          ])
    [ ("eager", eager); ("incr", incr) ]
