(* Systematic crash-schedule exploration (lib/crashtest) as a CI gate.

   Three sweeps:
   - the CLEAN sweep enumerates every crash point of the deterministic
     workload trace — journal commit points x all four Warea phases, every
     named checkpoint/restore crash site, DRAM loss between ops — injects
     each, recovers, and verifies (slsfsck audit, twin-fingerprint
     equivalence, liveness).  ANY failure exits 2 with the reproducer
     string, failing the build.
   - the ASYNC sweep repeats the exploration with the asynchronous drain on
     (Lazy policy, small batch): checkpoints stage a window that settles
     over the following ops, so the schedule space gains mid-drain crashes
     (ckpt.drain.copied / ckpt.drain.settled / ckpt.cow_fault.resolved)
     and restore's drain_settle reconciliation.  All three drain sites
     must actually fire, and every schedule must pass.
   - the SELF-TEST sweep re-introduces the classic journal-replay bug
     ([Warea.set_recovery_bug]) and must catch it on mid_apply schedules —
     proving the harness detects real recovery defects, not just running
     them.

   The full (non-smoke) run must explore >= 200 distinct (commit point x
   phase) schedules; --smoke shrinks the trace for `make ci`. *)

open Exp_common
module C = Treesls_crashtest.Crashtest
module Warea = Treesls_nvm.Warea

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("crashtest: " ^ m); exit 2) fmt

let min_commit_schedules_full = 200

let run () =
  let cfg =
    if !smoke then { C.default_config with C.ops = 60; commit_cap = 40; per_site_cap = 3; op_cap = 6 }
    else C.default_config
  in
  (* clean sweep: everything must pass *)
  let sweep = C.run cfg in
  List.iter
    (fun (r : C.result) ->
      Printf.eprintf "crashtest: FAIL %s: %s\n" (C.reproducer cfg r.C.point)
        (C.outcome_to_string r.C.outcome))
    sweep.C.failed;
  if sweep.C.failed <> [] then
    die "%d of %d schedules failed" (List.length sweep.C.failed) (List.length sweep.C.results);
  if (not !smoke) && sweep.C.commit_schedules < min_commit_schedules_full then
    die "only %d commit-point x phase schedules explored (need >= %d)" sweep.C.commit_schedules
      min_commit_schedules_full;
  (* async-drain sweep: same exploration with the split-capture checkpoint
     on (Lazy policy, batch 1) — windows stay pending across ops, so the
     schedule space now includes crashes mid-drain, at settle, and inside
     the CoW fault resolution, plus restore's drain_settle reconciliation *)
  let async_cfg = { cfg with C.async = true } in
  let async_sweep = C.run async_cfg in
  List.iter
    (fun (r : C.result) ->
      Printf.eprintf "crashtest(async): FAIL %s: %s\n" (C.reproducer async_cfg r.C.point)
        (C.outcome_to_string r.C.outcome))
    async_sweep.C.failed;
  if async_sweep.C.failed <> [] then
    die "async sweep: %d of %d schedules failed"
      (List.length async_sweep.C.failed)
      (List.length async_sweep.C.results);
  (* the drain path must actually have been exercised: all three of its
     named crash sites fire during enumeration, and each was injected *)
  List.iter
    (fun site ->
      match List.assoc_opt site async_sweep.C.site_hits with
      | Some n when n > 0 -> ()
      | _ -> die "async sweep never reached crash site %s" site)
    [ "ckpt.drain.copied"; "ckpt.drain.settled"; "ckpt.cow_fault.resolved" ];
  (* self-test: the deliberately broken journal replay must be caught *)
  let bug_cfg =
    {
      cfg with
      C.recovery_bug = true;
      include_sites = false;
      include_op_crashes = false;
      ops = min cfg.C.ops 60;
      commit_cap = 12;
    }
  in
  let bug_sweep = C.run bug_cfg in
  if bug_sweep.C.failed = [] then
    die "self-test: the deliberate mid_apply recovery bug went undetected";
  List.iter
    (fun (r : C.result) ->
      match r.C.point with
      | C.Commit (_, Warea.Mid_apply) -> ()
      | p -> die "self-test: bug misattributed to schedule %s" (C.point_to_string p))
    bug_sweep.C.failed;
  let total = List.length sweep.C.results in
  Table.print
    ~title:"Crash-schedule exploration (enumerate -> inject -> recover -> verify)"
    ~header:[ "sweep"; "commit points"; "schedules"; "commit x phase"; "passed"; "failed" ]
    [
      [
        "clean";
        string_of_int sweep.C.commit_points;
        string_of_int total;
        string_of_int sweep.C.commit_schedules;
        string_of_int sweep.C.passed;
        string_of_int (List.length sweep.C.failed);
      ];
      [
        "async-drain";
        string_of_int async_sweep.C.commit_points;
        string_of_int (List.length async_sweep.C.results);
        string_of_int async_sweep.C.commit_schedules;
        string_of_int async_sweep.C.passed;
        string_of_int (List.length async_sweep.C.failed);
      ];
      [
        "recovery-bug self-test";
        string_of_int bug_sweep.C.commit_points;
        string_of_int (List.length bug_sweep.C.results);
        string_of_int bug_sweep.C.commit_schedules;
        string_of_int bug_sweep.C.passed;
        string_of_int (List.length bug_sweep.C.failed);
      ];
    ];
  emit_row
    ~config:[ ("ops", string_of_int cfg.C.ops); ("seed", string_of_int cfg.C.seed) ]
    ~metrics:
      [
        ("commit_points", float_of_int sweep.C.commit_points);
        ("schedules", float_of_int total);
        ("commit_phase_schedules", float_of_int sweep.C.commit_schedules);
        ("passed", float_of_int sweep.C.passed);
        ("failed", float_of_int (List.length sweep.C.failed));
        ("async_schedules", float_of_int (List.length async_sweep.C.results));
        ("async_failed", float_of_int (List.length async_sweep.C.failed));
        ("selftest_caught", float_of_int (List.length bug_sweep.C.failed));
      ]
