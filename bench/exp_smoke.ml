(* Audit smoke test: a short paranoid run wired into `make ci`.

   Forces --audit mode, drives one workload through several committed
   checkpoints and a power failure + restore, and prints the final audit
   report and NVM census.  Any Error-severity violation aborts the
   harness with exit code 2 (see Exp_common.audit_or_die), so a CI pass
   means every intermediate state satisfied the checkpoint invariants. *)

open Exp_common

let run () =
  let prev = !audit_mode in
  audit_mode := true;
  Fun.protect
    ~finally:(fun () -> audit_mode := prev)
    (fun () ->
      let sys = boot () in
      let rng = Rng.create 7L in
      let app = launch sys rng W_memcached in
      for _ = 1 to 3 do
        run_ops sys ~n:300 app.step;
        ignore (System.checkpoint sys)
      done;
      let r = System.crash_and_recover sys in
      Printf.printf "crash/restore: rolled back to v%d (%d objects, %d pages)\n"
        r.Treesls_ckpt.Restore.version r.Treesls_ckpt.Restore.restored_objects
        r.Treesls_ckpt.Restore.pages_restored;
      app.refresh ();
      run_ops sys ~n:300 app.step;
      ignore (System.checkpoint sys);
      Format.printf "%a@." Audit.pp (System.audit sys);
      Format.printf "%a@?" Treesls_audit.Nvm_census.pp (System.nvm_census sys))
