(* NVM wear telemetry tests: the Device choke point (zero_page/copy_page
   edge cases, DRAM-vs-NVM pages-touched accounting across a crash), the
   Wearmap writer-context stack and statistics, export round-trips, the
   per-checkpoint WAF fields in Report, and attribution surviving a
   fault-injected mid-checkpoint power failure (the wear tables model
   eternal-PMO state, so counters are monotone across crash/restore). *)

module Device = Treesls_nvm.Device
module Store = Treesls_nvm.Store
module Paddr = Treesls_nvm.Paddr
module Crash_site = Treesls_nvm.Crash_site
module Warea = Treesls_nvm.Warea
module Wearmap = Treesls_obs.Wearmap
module Probe = Treesls_obs.Probe
module Metrics = Treesls_obs.Metrics
module Clock = Treesls_sim.Clock
module Cost = Treesls_sim.Cost
module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Report = Treesls_ckpt.Report
module Audit = Treesls_audit.Audit
module Kv_app = Treesls_apps.Kv_app

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Run [f] under a freshly installed probe, so device-level wear lands in a
   wearmap this test owns; restores whatever probe was installed before. *)
let with_probe f =
  let prev = Probe.installed () in
  let p = Probe.create ~clock:(Clock.create ()) () in
  Probe.install p;
  Fun.protect
    ~finally:(fun () -> match prev with Some q -> Probe.install q | None -> Probe.uninstall ())
    (fun () -> f p)

(* ---- device choke point ---- *)

let device_zero_page_edges () =
  with_probe @@ fun p ->
  let wm = Probe.wearmap p in
  let d = Device.create ~kind:Paddr.Nvm ~pages:8 ~page_size:64 in
  (* zeroing a never-materialised page is a no-op: no storage, no wear *)
  Device.zero_page d 3;
  check_int "untouched zero_page materialises nothing" 0 (Device.touched d);
  check_int "untouched zero_page writes nothing" 0 (Wearmap.total_bytes wm);
  (* once materialised, zeroing is a real page-sized physical write *)
  Device.write d 3 ~off:0 (Bytes.of_string "abc");
  check_int "write materialises" 1 (Device.touched d);
  Device.zero_page d 3;
  check_int "zero of live page wears a full page" (3 + 64) (Wearmap.total_bytes wm);
  check_string "content zeroed" (String.make 64 '\000') (Bytes.to_string (Device.page d 3))

let device_copy_page_edges () =
  with_probe @@ fun p ->
  let wm = Probe.wearmap p in
  let nvm = Device.create ~kind:Paddr.Nvm ~pages:8 ~page_size:64 in
  let dram = Device.create ~kind:Paddr.Dram ~pages:8 ~page_size:64 in
  (* copying from an untouched source yields zeros (lazy pages read as
     zero), and wears only the NVM destination *)
  Device.copy_page ~src:dram ~src_idx:0 ~dst:nvm ~dst_idx:1;
  check_string "untouched source copies zeros" (String.make 64 '\000')
    (Bytes.to_string (Device.page nvm 1));
  check_int "copy wears dst page size" 64 (Wearmap.total_bytes wm);
  check_int "copy wears one write" 1 (Wearmap.total_writes wm);
  (* NVM -> DRAM costs no endurance: nothing recorded *)
  Device.write nvm 2 ~off:0 (Bytes.of_string "xyz");
  let before = Wearmap.total_bytes wm in
  Device.copy_page ~src:nvm ~src_idx:2 ~dst:dram ~dst_idx:5;
  check_int "NVM->DRAM copy records no wear" before (Wearmap.total_bytes wm);
  check_string "payload copied" "xyz" (Bytes.to_string (Device.read dram 5 ~off:0 ~len:3));
  (* mismatched page sizes are a programming error *)
  let odd = Device.create ~kind:Paddr.Dram ~pages:2 ~page_size:32 in
  check_bool "page-size mismatch asserts" true
    (match Device.copy_page ~src:odd ~src_idx:0 ~dst:nvm ~dst_idx:0 with
    | () -> false
    | exception Assert_failure _ -> true)

let pages_touched_crash_accounting () =
  with_probe @@ fun _p ->
  let store = Store.create ~clock:(Clock.create ()) ~nvm_pages:64 ~dram_pages:8 () in
  let a = Store.alloc_page store in
  Store.write_page store a ~off:0 (Bytes.make 8 'x');
  (match Store.alloc_dram_page store with
  | Some d -> Store.write_page store d ~off:0 (Bytes.make 4 'd')
  | None -> Alcotest.fail "dram alloc failed");
  let nvm_before = Store.nvm_pages_touched store in
  check_bool "NVM pages materialised" true (nvm_before > 0);
  check_bool "DRAM pages materialised (alloc zeroes the frame)" true
    (Store.dram_pages_touched store > 0);
  Store.crash store;
  Store.recover store;
  (* DRAM storage is discarded by power loss; NVM storage survives *)
  check_int "crash discards DRAM storage" 0 (Store.dram_pages_touched store);
  check_bool "crash retains NVM storage" true (Store.nvm_pages_touched store >= nvm_before);
  check_string "NVM content survives" "x"
    (Bytes.to_string (Store.read_page store a ~off:0 ~len:1))

(* ---- wearmap core ---- *)

let writer_context_stack () =
  let wm = Wearmap.create () in
  check_string "no context -> unattributed" Wearmap.unattributed (Wearmap.current_writer ());
  Wearmap.with_writer "outer" (fun () ->
      check_string "innermost wins" "outer" (Wearmap.current_writer ());
      Wearmap.with_writer "inner" (fun () ->
          check_string "nested innermost wins" "inner" (Wearmap.current_writer ());
          (* a default writer never overrides an active context *)
          Wearmap.with_default_writer "app" (fun () ->
              check_string "default loses to active context" "inner"
                (Wearmap.current_writer ())));
      check_string "inner popped" "outer" (Wearmap.current_writer ()));
  check_string "outer popped" Wearmap.unattributed (Wearmap.current_writer ());
  Wearmap.with_default_writer "app" (fun () ->
      check_string "default applies on empty stack" "app" (Wearmap.current_writer ()));
  (* exception-safe: the context pops even when f raises *)
  (try Wearmap.with_writer "doomed" (fun () -> raise Exit) with Exit -> ());
  check_string "popped across raise" Wearmap.unattributed (Wearmap.current_writer ());
  (* record attributes to the ambient writer; note bypasses the stack *)
  Wearmap.with_writer "a" (fun () -> Wearmap.record wm ~page:7 ~bytes:10);
  Wearmap.record wm ~page:7 ~bytes:5;
  Wearmap.note wm ~subsystem:"meta" ~bytes:3;
  check_int "a bytes" 10 (Wearmap.subsystem_bytes wm "a");
  check_int "unattributed bytes" 5 (Wearmap.subsystem_bytes wm Wearmap.unattributed);
  check_int "note bytes" 3 (Wearmap.subsystem_bytes wm "meta");
  check_int "total bytes" 18 (Wearmap.total_bytes wm);
  check_int "total writes" 3 (Wearmap.total_writes wm);
  check_int "notes touch no page" 1 (Wearmap.pages_tracked wm);
  check_int "page accumulates" 15
    (match Wearmap.top wm ~n:1 with [ (7, 2, b) ] -> b | _ -> -1)

let skew_and_gini () =
  let wm = Wearmap.create () in
  (* uniform wear: skew 1, gini 0 *)
  for p = 0 to 9 do
    Wearmap.record wm ~page:p ~bytes:8
  done;
  Alcotest.(check (float 1e-9)) "uniform skew" 1.0 (Wearmap.skew wm);
  Alcotest.(check (float 1e-9)) "uniform gini" 0.0 (Wearmap.gini wm);
  (* one scorching page: 4 pages with writes [1;1;1;97] *)
  let wm2 = Wearmap.create () in
  for p = 0 to 2 do
    Wearmap.record wm2 ~page:p ~bytes:1
  done;
  for _ = 1 to 97 do
    Wearmap.record wm2 ~page:3 ~bytes:1
  done;
  check_int "max" 97 (Wearmap.max_writes wm2);
  Alcotest.(check (float 1e-9)) "mean" 25.0 (Wearmap.mean_writes wm2);
  Alcotest.(check (float 1e-9)) "skew = max/mean" 3.88 (Wearmap.skew wm2);
  (* gini of [1;1;1;97]: (2*(1*1+2*1+3*1+4*97))/(4*100) - 5/4 = 0.72 *)
  Alcotest.(check (float 1e-9)) "gini" 0.72 (Wearmap.gini wm2)

let export_round_trip () =
  let wm = Wearmap.create () in
  Wearmap.with_writer "app" (fun () ->
      Wearmap.record wm ~page:2 ~bytes:100;
      Wearmap.record wm ~page:2 ~bytes:50;
      Wearmap.record wm ~page:9 ~bytes:25);
  Wearmap.note wm ~subsystem:"nvm.journal" ~bytes:64;
  let owners p = if p = 2 then Some "runtime/kv/pmo7" else None in
  check_string "csv heatmap" "page,writes,bytes,owner\n2,2,150,runtime/kv/pmo7\n9,1,25,\n"
    (Wearmap.to_csv ~owners wm);
  let json = Wearmap.to_json ~owners wm in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun s -> check_bool (Printf.sprintf "json has %s" s) true (contains s))
    [
      "\"total_bytes\": 239";
      "\"total_writes\": 4";
      "\"pages_tracked\": 2";
      "\"app\": { \"writes\": 3, \"bytes\": 175 }";
      "\"nvm.journal\": { \"writes\": 1, \"bytes\": 64 }";
      "\"owner\": \"runtime/kv/pmo7\"";
    ];
  (* reset clears everything *)
  Wearmap.reset wm;
  check_int "reset totals" 0 (Wearmap.total_bytes wm);
  check_int "reset pages" 0 (Wearmap.pages_tracked wm);
  check_int "reset subsystems" 0 (List.length (Wearmap.subsystems wm))

(* ---- whole-system behaviour ---- *)

let waf_in_report () =
  let sys = System.boot () in
  let app = Kv_app.launch ~keys_hint:1_000 sys Kv_app.Memcached in
  for i = 0 to 199 do
    Kv_app.set_i app i
  done;
  let r1 = System.checkpoint sys in
  check_bool "first full checkpoint writes NVM" true (r1.Report.nvm_bytes_written > 0);
  check_bool "logical dirty positive" true (r1.Report.logical_dirty_bytes > 0);
  check_bool "waf >= 1 on the full walk" true (Report.waf r1 >= 1.0);
  (* quiescent incremental checkpoint: almost nothing dirty *)
  let r2 = System.checkpoint sys in
  check_bool "quiescent checkpoint writes less" true
    (r2.Report.nvm_bytes_written < r1.Report.nvm_bytes_written);
  (* the interval watermark makes per-checkpoint bytes sum to the total *)
  let wm = System.wearmap sys in
  check_bool "watermark consistent" true
    (Wearmap.total_bytes wm >= r1.Report.nvm_bytes_written + r2.Report.nvm_bytes_written)

let attribution_survives_midckpt_crash () =
  let sys = System.boot () in
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  for i = 0 to 499 do
    Kv_app.set_i app i
  done;
  ignore (System.checkpoint sys);
  for i = 0 to 499 do
    Kv_app.set_i app (i * 3 mod 2_000)
  done;
  let wm = System.wearmap sys in
  let bytes_before = Wearmap.total_bytes wm in
  let app_before = Wearmap.subsystem_bytes wm "app" in
  check_bool "app writes attributed" true (app_before > 0);
  (* a fresh process guarantees the incremental walk has dirty objects *)
  ignore (Kernel.create_process (System.kernel sys) ~name:"dirty" ~threads:1 ~prio:5);
  (* power failure in the middle of the capability-tree walk: the first
     dirty object visited pulls the plug *)
  Crash_site.arm ~site:"ckpt.captree.obj" ~nth:1;
  Fun.protect ~finally:Crash_site.reset (fun () ->
      match System.checkpoint sys with
      | _ -> Alcotest.fail "armed checkpoint did not crash"
      | exception Warea.Crashed _ -> ());
  System.crash sys;
  ignore (System.recover sys);
  (* the wear tables model eternal-PMO state: monotone, never rolled back *)
  check_bool "totals monotone across crash/restore" true
    (Wearmap.total_bytes wm >= bytes_before);
  check_int "app attribution survives" app_before (Wearmap.subsystem_bytes wm "app");
  check_int "no unattributed writes" 0 (Wearmap.subsystem_bytes wm Wearmap.unattributed);
  (* accounting closure: every byte in the grand total is attributed *)
  check_int "subsystem bytes sum to total" (Wearmap.total_bytes wm)
    (List.fold_left (fun a (_, _, b) -> a + b) 0 (Wearmap.subsystems wm));
  (* the aborted walk's writer context unwound with the exception *)
  check_string "writer stack empty after injected crash" Wearmap.unattributed
    (Wearmap.current_writer ());
  (* and the system is healthy enough to checkpoint again *)
  let r = System.checkpoint sys in
  check_bool "post-restore checkpoint commits" true (r.Report.version > 0)

let wear_backing_audited () =
  let sys = System.boot () in
  System.ensure_wear_backing sys;
  System.ensure_wear_backing sys (* idempotent *);
  ignore (System.checkpoint sys);
  let rep = System.audit ~wear:Audit.default_wear_thresholds sys in
  check_int "audit errors" 0 (Audit.errors rep);
  check_bool "backing pmo recorded" true (Probe.wear_backing_pmo (System.obs sys) <> None);
  ignore (System.crash_and_recover sys);
  let rep2 = System.audit sys in
  check_int "audit errors post-restore" 0 (Audit.errors rep2)

let () =
  Alcotest.run "wear"
    [
      ( "device",
        [
          Alcotest.test_case "zero_page edges" `Quick device_zero_page_edges;
          Alcotest.test_case "copy_page edges" `Quick device_copy_page_edges;
          Alcotest.test_case "pages_touched across crash" `Quick pages_touched_crash_accounting;
        ] );
      ( "wearmap",
        [
          Alcotest.test_case "writer context stack" `Quick writer_context_stack;
          Alcotest.test_case "skew and gini" `Quick skew_and_gini;
          Alcotest.test_case "export round trip" `Quick export_round_trip;
        ] );
      ( "system",
        [
          Alcotest.test_case "waf in report" `Quick waf_in_report;
          Alcotest.test_case "attribution survives mid-ckpt crash" `Quick
            attribution_survives_midckpt_crash;
          Alcotest.test_case "wear backing audited" `Quick wear_backing_audited;
        ] );
    ]
