(* Tests for the eidetic extension (§8) and the kernel's capability
   derivation + IRQ delivery paths. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Rights = Treesls_cap.Rights
module Eidetic = Treesls_ckpt.Eidetic
module Snapshot = Treesls_ckpt.Snapshot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let proc = Kernel.create_process k ~name:"subject" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k proc ~pages:2 in
  let region = List.nth proc.Kernel.vms.Kobj.vs_regions 2 in
  let pmo_id = region.Kobj.vr_pmo.Kobj.pmo_id in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  (sys, k, proc, vpn, pmo_id, psz)

let write_epoch sys k proc vpn psz epoch =
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string epoch);
  ignore (System.checkpoint sys)

(* ---- eidetic ---- *)

let eidetic_page_history () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  List.iter (write_epoch sys k proc vpn psz) [ "v1data"; "v2data"; "v3data" ];
  List.iter
    (fun (v, expected) ->
      match Eidetic.page_at eid ~version:v ~pmo_id ~pno:0 with
      | Some b -> Alcotest.(check string) "epoch" expected (Bytes.to_string (Bytes.sub b 0 6))
      | None -> Alcotest.fail "missing page")
    [ (1, "v1data"); (2, "v2data"); (3, "v3data") ]

let eidetic_unmodified_page_carries_forward () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  write_epoch sys k proc vpn psz "stable";
  (* two checkpoints with no writes: the page is not re-archived... *)
  ignore (System.checkpoint sys);
  ignore (System.checkpoint sys);
  (* ...but still readable at the later versions *)
  match Eidetic.page_at eid ~version:3 ~pmo_id ~pno:0 with
  | Some b -> Alcotest.(check string) "carried forward" "stable" (Bytes.to_string (Bytes.sub b 0 6))
  | None -> Alcotest.fail "page lost across clean checkpoints"

let eidetic_object_history () =
  let sys = System.boot () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"subject" ~threads:1 ~prio:5 in
  let n = Kernel.create_notification k p in
  (* raw field writes bypass the kernel mutators, so bump the generation
     by hand or the incremental walk will (correctly) skip the object *)
  n.Kobj.nt_count <- 1;
  Kobj.touch (Kobj.Notification n);
  ignore (System.checkpoint sys);
  n.Kobj.nt_count <- 2;
  Kobj.touch (Kobj.Notification n);
  ignore (System.checkpoint sys);
  let count_at v =
    match Eidetic.object_at eid ~version:v ~obj_id:n.Kobj.nt_id with
    | Some (Snapshot.S_notif s) -> s.count
    | Some _ | None -> -1
  in
  check_int "count at v1" 1 (count_at 1);
  check_int "count at v2" 2 (count_at 2)

let eidetic_window_prunes () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  let eid = Eidetic.attach ~max_versions:3 (System.manager sys) in
  for i = 1 to 6 do
    write_epoch sys k proc vpn psz (Printf.sprintf "e%d" i)
  done;
  let vs = Eidetic.versions eid in
  check_int "window size" 3 (List.length vs);
  Alcotest.(check (list int)) "newest kept" [ 4; 5; 6 ] vs;
  check_bool "old version evicted" true
    (Eidetic.objects_at eid ~version:1 = []);
  (* pruned versions answer None for pages too, not stale data *)
  List.iter
    (fun v ->
      check_bool
        (Printf.sprintf "page at pruned v%d gone" v)
        true
        (Eidetic.page_at eid ~version:v ~pmo_id ~pno:0 = None))
    [ 1; 2; 3 ];
  check_bool "page at kept v4 readable" true
    (Eidetic.page_at eid ~version:4 ~pmo_id ~pno:0 <> None)

let eidetic_pruning_shrinks_stats () =
  let sys, k, proc, vpn, _, psz = setup () in
  let eid = Eidetic.attach ~max_versions:2 (System.manager sys) in
  write_epoch sys k proc vpn psz "p1";
  write_epoch sys k proc vpn psz "p2";
  let s2 = Eidetic.stats eid in
  check_int "window full" 2 s2.Eidetic.archived_versions;
  (* every later epoch evicts one version: the window stays at 2 and the
     archive's page bytes stop growing (eviction frees the old pages) *)
  write_epoch sys k proc vpn psz "p3";
  let s3 = Eidetic.stats eid in
  check_int "window capped" 2 s3.Eidetic.archived_versions;
  check_bool "page bytes bounded" true (s3.Eidetic.page_bytes <= s2.Eidetic.page_bytes)

let eidetic_dead_object_absent () =
  let sys = System.boot () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"mortal" ~threads:1 ~prio:5 in
  ignore (System.checkpoint sys);
  Kernel.exit_process k p;
  ignore (System.checkpoint sys);
  check_bool "alive at v1" true (Eidetic.object_at eid ~version:1 ~obj_id:p.Kernel.pid <> None);
  check_bool "gone at v2" true (Eidetic.object_at eid ~version:2 ~obj_id:p.Kernel.pid = None)

let eidetic_diff () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  write_epoch sys k proc vpn psz "a";
  ignore (System.checkpoint sys);
  (* v1 -> v2: nothing changed *)
  check_bool "clean interval diff small" true
    (not (List.mem pmo_id (Eidetic.diff_objects eid ~from_version:1 ~to_version:2)));
  write_epoch sys k proc vpn psz "b";
  check_bool "dirty interval diff has pmo" true
    (List.mem pmo_id (Eidetic.diff_objects eid ~from_version:2 ~to_version:3))

let eidetic_stats_grow () =
  let sys, k, proc, vpn, _, psz = setup () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  write_epoch sys k proc vpn psz "x";
  let s1 = Eidetic.stats eid in
  write_epoch sys k proc vpn psz "y";
  let s2 = Eidetic.stats eid in
  check_bool "versions grow" true (s2.Eidetic.archived_versions > s1.Eidetic.archived_versions);
  check_bool "page bytes grow" true (s2.Eidetic.page_bytes > s1.Eidetic.page_bytes)

let eidetic_detach_stops () =
  let sys, k, proc, vpn, _, psz = setup () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  write_epoch sys k proc vpn psz "x";
  Eidetic.detach eid;
  write_epoch sys k proc vpn psz "y";
  check_int "no new versions" 1 (List.length (Eidetic.versions eid))

(* ---- data reliability (§8): corruption detection + archive repair ---- *)

module Store = Treesls_nvm.Store
module Restore = Treesls_ckpt.Restore
module Ckpt_page = Treesls_ckpt.Ckpt_page
module Oroot = Treesls_ckpt.Oroot
module Manager = Treesls_ckpt.Manager
module State = Treesls_ckpt.State

(* Find the CoW backup frame of page 0 of the process's heap PMO. *)
let backup_frame sys pmo_id =
  let st = Manager.state (System.manager sys) in
  let oroot = Hashtbl.find st.State.oroots pmo_id in
  match Ckpt_page.find (Oroot.pages_exn oroot) 0 with
  | Some cp -> cp.Ckpt_page.b1
  | None -> None

let corruption_detected () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  Store.set_checksums (System.store sys) true;
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "golden");
  ignore (System.checkpoint sys);
  (* modify after the checkpoint so a CoW backup (the restore source) exists *)
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "dirty!");
  let frame = Option.get (backup_frame sys pmo_id) in
  check_bool "backup sealed" true (Store.is_sealed (System.store sys) frame);
  (* flip bits in the sealed backup: media corruption *)
  Store.corrupt_page (System.store sys) frame;
  System.crash sys;
  check_bool "corruption detected at restore" true
    (try
       ignore (System.recover sys);
       false
     with Restore.Corrupt_backup { pno; _ } -> pno = 0)

let corruption_repaired_from_archive () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  Store.set_checksums (System.store sys) true;
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "golden");
  ignore (System.checkpoint sys);
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "dirty!");
  let frame = Option.get (backup_frame sys pmo_id) in
  let store = System.store sys in
  Store.corrupt_page store frame;
  System.crash sys;
  (match
     (try
        ignore (System.recover sys);
        None
      with Restore.Corrupt_backup { pmo_id; pno; paddr } -> Some (pmo_id, pno, paddr))
   with
  | None -> Alcotest.fail "corruption not detected"
  | Some (pmo_id, pno, paddr) ->
    (* repair: rewrite the frame from the eidetic archive and re-seal *)
    let golden = Option.get (Eidetic.page_at eid ~version:1 ~pmo_id ~pno) in
    Bytes.blit golden 0 (Store.page_bytes store paddr) 0 (Bytes.length golden);
    Store.seal_page store paddr;
    (* retry: the crash-time tree is gone after the failed attempt, but the
       store-level recovery is idempotent and the backup now verifies *)
    ignore (System.recover sys));
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"subject") in
  Alcotest.(check string) "repaired content restored" "golden"
    (Bytes.to_string (Kernel.read_bytes k proc ~vaddr:(vpn * psz) ~len:6))

(* ---- capability derivation ---- *)

let grant_shrinks_rights () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let a = Kernel.create_process k ~name:"granter" ~threads:1 ~prio:5 in
  let b = Kernel.create_process k ~name:"grantee" ~threads:1 ~prio:5 in
  let n = Kernel.create_notification k a in
  (* the notification cap was installed with full rights; find its slot *)
  let slot = ref (-1) in
  Kobj.iter_caps
    (fun s c -> if Kobj.id c.Kobj.target = n.Kobj.nt_id then slot := s)
    a.Kernel.cg;
  let read_grant = { Rights.read = true; write = false; exec = false; grant = true } in
  let dst = Kernel.grant k ~from_proc:a ~to_proc:b ~slot:!slot ~rights:read_grant in
  (match Kobj.lookup b.Kernel.cg dst with
  | Some c ->
    check_bool "same object" true (Kobj.id c.Kobj.target = n.Kobj.nt_id);
    check_bool "attenuated" true (c.Kobj.rights = read_grant)
  | None -> Alcotest.fail "grant did not install");
  (* rights may not grow, even with the grant right in hand *)
  Alcotest.check_raises "cannot amplify"
    (Invalid_argument "Kernel.grant: rights may only shrink") (fun () ->
      ignore
        (Kernel.grant k ~from_proc:b ~to_proc:a ~slot:dst ~rights:Rights.full))

let grant_requires_grant_right () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let a = Kernel.create_process k ~name:"granter2" ~threads:1 ~prio:5 in
  let b = Kernel.create_process k ~name:"grantee2" ~threads:1 ~prio:5 in
  let n = Kernel.create_notification k a in
  let slot = ref (-1) in
  Kobj.iter_caps (fun s c -> if Kobj.id c.Kobj.target = n.Kobj.nt_id then slot := s) a.Kernel.cg;
  let dst = Kernel.grant k ~from_proc:a ~to_proc:b ~slot:!slot ~rights:Rights.rw in
  (* rw lacks grant: b cannot re-grant *)
  Alcotest.check_raises "no grant right"
    (Invalid_argument "Kernel.grant: source capability lacks the grant right") (fun () ->
      ignore (Kernel.grant k ~from_proc:b ~to_proc:a ~slot:dst ~rights:Rights.read_only))

let granted_cap_survives_crash () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let a = Kernel.create_process k ~name:"granter3" ~threads:1 ~prio:5 in
  let b = Kernel.create_process k ~name:"grantee3" ~threads:1 ~prio:5 in
  let n = Kernel.create_notification k a in
  let slot = ref (-1) in
  Kobj.iter_caps (fun s c -> if Kobj.id c.Kobj.target = n.Kobj.nt_id then slot := s) a.Kernel.cg;
  let dst = Kernel.grant k ~from_proc:a ~to_proc:b ~slot:!slot ~rights:Rights.read_only in
  ignore (System.checkpoint sys);
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let b = Option.get (Kernel.find_process k ~name:"grantee3") in
  match Kobj.lookup b.Kernel.cg dst with
  | Some c ->
    check_bool "object identity preserved" true (Kobj.id c.Kobj.target = n.Kobj.nt_id);
    check_bool "rights preserved" true (c.Kobj.rights = Rights.read_only);
    (* shared: the restored object is the SAME OCaml object in both trees *)
    let a = Option.get (Kernel.find_process k ~name:"granter3") in
    let in_a = ref None in
    Kobj.iter_caps
      (fun _ c' -> if Kobj.id c'.Kobj.target = n.Kobj.nt_id then in_a := Some c'.Kobj.target)
      a.Kernel.cg;
    (match (!in_a, c.Kobj.target) with
    | Some (Kobj.Notification x), Kobj.Notification y -> check_bool "physically shared" true (x == y)
    | _ -> Alcotest.fail "notification lost")
  | None -> Alcotest.fail "granted cap lost across crash"

(* ---- IRQ delivery ---- *)

let irq_pending_accumulates () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let drv = Kernel.create_process k ~name:"driver" ~threads:1 ~prio:5 in
  let irq = Kernel.create_irq k drv ~line:11 in
  Kernel.raise_irq k irq;
  Kernel.raise_irq k irq;
  check_int "two pending" 2 irq.Kobj.irq_pending;
  let th = List.hd drv.Kernel.threads in
  check_bool "consume 1" true (Kernel.wait_irq k irq th);
  check_bool "consume 2" true (Kernel.wait_irq k irq th);
  check_bool "blocks on empty" false (Kernel.wait_irq k irq th)

let irq_wakes_blocked_thread () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let drv = Kernel.create_process k ~name:"driver" ~threads:1 ~prio:5 in
  let irq = Kernel.create_irq k drv ~line:11 in
  let th = List.hd drv.Kernel.threads in
  check_bool "blocks" false (Kernel.wait_irq k irq th);
  Kernel.raise_irq k irq;
  check_bool "woken" true (th.Kobj.th_state = Kobj.Ready);
  check_int "interrupt consumed by wake" 0 irq.Kobj.irq_pending

let irq_state_survives_crash () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let drv = Kernel.create_process k ~name:"driver" ~threads:1 ~prio:5 in
  let irq = Kernel.create_irq k drv ~line:7 in
  Kernel.raise_irq k irq;
  ignore (System.checkpoint sys);
  Kernel.raise_irq k irq;
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let drv = Option.get (Kernel.find_process k ~name:"driver") in
  let found = ref None in
  Kobj.iter_caps
    (fun _ c ->
      match c.Kobj.target with
      | Kobj.Irq_notification i when i.Kobj.irq_id = irq.Kobj.irq_id -> found := Some i
      | _ -> ())
    drv.Kernel.cg;
  match !found with
  | Some i ->
    check_int "line preserved" 7 i.Kobj.irq_line;
    check_int "pending rolled back to checkpoint" 1 i.Kobj.irq_pending
  | None -> Alcotest.fail "irq object lost"

let () =
  Alcotest.run "eidetic"
    [
      ( "eidetic",
        [
          Alcotest.test_case "page history" `Quick eidetic_page_history;
          Alcotest.test_case "unmodified pages carry forward" `Quick
            eidetic_unmodified_page_carries_forward;
          Alcotest.test_case "object history" `Quick eidetic_object_history;
          Alcotest.test_case "window prunes" `Quick eidetic_window_prunes;
          Alcotest.test_case "pruning shrinks stats" `Quick eidetic_pruning_shrinks_stats;
          Alcotest.test_case "dead object absent" `Quick eidetic_dead_object_absent;
          Alcotest.test_case "diff between versions" `Quick eidetic_diff;
          Alcotest.test_case "stats grow" `Quick eidetic_stats_grow;
          Alcotest.test_case "detach stops archiving" `Quick eidetic_detach_stops;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "corruption detected" `Quick corruption_detected;
          Alcotest.test_case "repair from eidetic archive" `Quick
            corruption_repaired_from_archive;
        ] );
      ( "grant",
        [
          Alcotest.test_case "attenuation" `Quick grant_shrinks_rights;
          Alcotest.test_case "grant right required" `Quick grant_requires_grant_right;
          Alcotest.test_case "survives crash" `Quick granted_cap_survives_crash;
        ] );
      ( "irq",
        [
          Alcotest.test_case "pending accumulates" `Quick irq_pending_accumulates;
          Alcotest.test_case "wakes blocked thread" `Quick irq_wakes_blocked_thread;
          Alcotest.test_case "state survives crash" `Quick irq_state_survives_crash;
        ] );
    ]
