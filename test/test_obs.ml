(* Observability tests: the trace ring (wraparound, nesting, crash
   survival), the Perfetto exporter (validated with a hand-rolled JSON
   parser — the container bakes in no JSON library), the metrics registry,
   and the two properties the subsystem promises the rest of the repo:
   events reconcile exactly with the checkpoint Report, and tracing that is
   off records nothing and costs no simulated time. *)

module Trace = Treesls_obs.Trace
module Metrics = Treesls_obs.Metrics
module Probe = Treesls_obs.Probe
module Rtrace = Treesls_obs.Rtrace
module System = Treesls.System
module Report = Treesls_ckpt.Report
module Kernel = Treesls_kernel.Kernel
module Net_server = Treesls_extsync.Net_server
module Kv_app = Treesls_apps.Kv_app

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- trace ring ---- *)

let ring_wraparound () =
  let tr = Trace.create ~capacity:8 () in
  for i = 0 to 19 do
    Trace.instant tr ~now:(i * 10) (Printf.sprintf "e%d" i)
  done;
  check_int "length capped" 8 (Trace.length tr);
  check_int "total keeps counting" 20 (Trace.total tr);
  check_int "dropped" 12 (Trace.dropped tr);
  let evs = Trace.events tr in
  check_int "oldest retained is seq 12" 12 (List.hd evs).Trace.seq;
  check_int "newest retained is seq 19" 19 (List.nth evs 7).Trace.seq;
  (* oldest-first and contiguous *)
  List.iteri (fun i e -> check_int "seq order" (12 + i) e.Trace.seq) evs;
  Trace.clear tr;
  check_int "clear empties" 0 (Trace.length tr);
  check_int "clear resets total" 0 (Trace.total tr)

let span_nesting () =
  let tr = Trace.create () in
  let a = Trace.begin_span tr ~now:0 "outer" in
  let b = Trace.begin_span tr ~now:10 "inner" in
  Trace.instant tr ~now:15 "mark";
  Trace.end_span tr ~now:20 b;
  Trace.end_span tr ~now:50 ~args:[ ("k", "v") ] a;
  (* spans are recorded at close time: mark, inner, outer *)
  match Trace.events tr with
  | [ mark; inner; outer ] ->
    check_int "instant nests under inner" b mark.Trace.parent;
    check_int "inner nests under outer" a inner.Trace.parent;
    check_int "outer is top-level" 0 outer.Trace.parent;
    check_int "inner ts" 10 inner.Trace.ts_ns;
    check_int "inner dur" 10 inner.Trace.dur_ns;
    check_int "outer dur" 50 outer.Trace.dur_ns;
    check_bool "end-time args kept" true (List.mem_assoc "k" outer.Trace.args);
    check_bool "category from prefix" true (outer.Trace.cat = "outer");
    check_int "no open spans left" 0 (Trace.open_spans tr)
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l)

let unknown_span_ignored () =
  let tr = Trace.create () in
  Trace.end_span tr ~now:5 12345;
  check_int "nothing recorded" 0 (Trace.length tr)

let abort_marks_open_spans () =
  let tr = Trace.create () in
  ignore (Trace.begin_span tr ~now:0 "outer");
  ignore (Trace.begin_span tr ~now:5 "inner");
  Trace.abort_open tr ~now:7;
  check_int "all closed" 0 (Trace.open_spans tr);
  check_int "both recorded" 2 (Trace.length tr);
  List.iter
    (fun e ->
      check_bool "flagged aborted" true (List.assoc_opt "aborted" e.Trace.args = Some "true"))
    (Trace.events tr)

(* ---- minimal JSON parser, to validate the hand-rolled exporter ---- *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "JSON parse error at %d: %s" !pos msg in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end of input" in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected '%c'" c) in
  let lit word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let hex = String.init 4 (fun _ -> next ()) in
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
        | c -> fail (Printf.sprintf "bad escape '%c'" c));
        go ()
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> JNum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      expect '{';
      skip_ws ();
      if peek () = '}' then (
        ignore (next ());
        JObj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> JObj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | '[' ->
      expect '[';
      skip_ws ();
      if peek () = ']' then (
        ignore (next ());
        JArr [])
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> elems (v :: acc)
          | ']' -> JArr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
    | '"' -> JStr (parse_string ())
    | 't' -> lit "true" (JBool true)
    | 'f' -> lit "false" (JBool false)
    | 'n' -> lit "null" JNull
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field f = function
  | JObj fields -> (
    match List.assoc_opt f fields with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" f)
  | _ -> Alcotest.failf "expected object around %s" f

let str = function JStr s -> s | _ -> Alcotest.fail "expected string"
let num = function JNum f -> f | _ -> Alcotest.fail "expected number"

let perfetto_json_wellformed () =
  let tr = Trace.create () in
  let a = Trace.begin_span tr ~now:1_000 ~args:[ ("quote", "a\"b"); ("nl", "x\ny") ] "ckpt.stw" in
  Trace.instant tr ~now:1_500 "mark\\back";
  Trace.end_span tr ~now:2_000 a;
  Trace.complete tr "ckpt.hybrid_copy" ~ts_ns:1_100 ~dur_ns:700;
  let j = parse_json (Trace.to_perfetto_json ~pid:7 ~tid:3 tr) in
  let all = match obj_field "traceEvents" j with JArr l -> l | _ -> Alcotest.fail "array" in
  (* the stream opens with metadata ("M") events naming the tracks *)
  let meta, evs = List.partition (fun e -> str (obj_field "ph" e) = "M") all in
  check_int "two metadata events (no req track here)" 2 (List.length meta);
  check_bool "process named" true
    (List.exists
       (fun e ->
         str (obj_field "name" e) = "process_name"
         && str (obj_field "name" (obj_field "args" e)) = "treesls")
       meta);
  check_bool "main track named" true
    (List.exists
       (fun e ->
         str (obj_field "name" e) = "thread_name"
         && int_of_float (num (obj_field "tid" e)) = 3
         && str (obj_field "name" (obj_field "args" e)) = "kernel")
       meta);
  check_int "three events" 3 (List.length evs);
  List.iter
    (fun e ->
      check_bool "has name" true (str (obj_field "name" e) <> "");
      check_int "pid plumbed" 7 (int_of_float (num (obj_field "pid" e)));
      check_int "tid plumbed" 3 (int_of_float (num (obj_field "tid" e)));
      match str (obj_field "ph" e) with
      | "X" -> ignore (num (obj_field "dur" e))
      | "i" -> ignore (str (obj_field "s" e))
      | ph -> Alcotest.failf "unexpected ph %s" ph)
    evs;
  (* escaping round-trips through a real parser *)
  let instant = List.nth evs 0 in
  check_bool "escaped name" true (str (obj_field "name" instant) = "mark\\back");
  check_int "instant nests under stw" a
    (int_of_string (str (obj_field "parent" (obj_field "args" instant))));
  let stw = List.nth evs 1 in
  check_bool "arg with quote survives" true
    (str (obj_field "quote" (obj_field "args" stw)) = "a\"b");
  check_bool "arg with newline survives" true
    (str (obj_field "nl" (obj_field "args" stw)) = "x\ny");
  (* ts/dur are microseconds with ns precision: 1000ns -> 1.0us *)
  Alcotest.(check (float 1e-9)) "ts in us" 1.0 (num (obj_field "ts" stw));
  Alcotest.(check (float 1e-9)) "dur in us" 1.0 (num (obj_field "dur" stw))

let perfetto_flow_events () =
  let tr = Trace.create () in
  let a = Trace.begin_span tr ~now:1_000 "ckpt.stw" in
  Trace.flow_start tr ~flow_id:42 "req.flow" ~ts_ns:500;
  Trace.flow_end tr ~flow_id:42 "req.flow" ~ts_ns:1_500;
  Trace.end_span tr ~now:2_000 a;
  let j = parse_json (Trace.to_perfetto_json ~pid:1 ~tid:1 tr) in
  let evs = match obj_field "traceEvents" j with JArr l -> l | _ -> Alcotest.fail "array" in
  let by_ph p =
    List.filter (fun e -> str (obj_field "ph" e) = p) evs
  in
  (match by_ph "s" with
  | [ s ] ->
    check_bool "flow name" true (str (obj_field "name" s) = "req.flow");
    (* flow binding id is a TOP-LEVEL field, not an arg *)
    check_int "flow id" 42 (int_of_float (num (obj_field "id" s)));
    Alcotest.(check (float 1e-9)) "flow start ts" 0.5 (num (obj_field "ts" s))
  | l -> Alcotest.failf "expected 1 flow start, got %d" (List.length l));
  (match by_ph "f" with
  | [ f ] ->
    check_int "flow end id matches" 42 (int_of_float (num (obj_field "id" f)));
    (* bp:e binds the arrow head to the enclosing slice (the stw span) *)
    check_bool "binding point" true (str (obj_field "bp" f) = "e")
  | l -> Alcotest.failf "expected 1 flow end, got %d" (List.length l))

let perfetto_counter_escaping () =
  let tr = Trace.create () in
  (* counter-track and value names with quotes, backslashes and raw UTF-8
     (the exporter passes non-ASCII bytes through unescaped) *)
  Trace.counter tr ~now:2_000 "bla\"ck\\bo\xc3\xa9x"
    ~values:[ ("a\"b", 7); ("c\\d", -3); ("\xc3\xa9", 12) ];
  let j = parse_json (Trace.to_perfetto_json ~pid:1 ~tid:1 tr) in
  let evs = match obj_field "traceEvents" j with JArr l -> l | _ -> Alcotest.fail "array" in
  match List.filter (fun e -> str (obj_field "ph" e) = "C") evs with
  | [ c ] ->
    check_bool "track name round-trips" true
      (str (obj_field "name" c) = "bla\"ck\\bo\xc3\xa9x");
    (* counter values are JSON numbers, not strings *)
    check_int "quoted key" 7 (int_of_float (num (obj_field "a\"b" (obj_field "args" c))));
    check_int "backslash key" (-3) (int_of_float (num (obj_field "c\\d" (obj_field "args" c))));
    check_int "non-ascii key" 12 (int_of_float (num (obj_field "\xc3\xa9" (obj_field "args" c))))
  | l -> Alcotest.failf "expected 1 counter event, got %d" (List.length l)

(* ---- rtrace: request causality ---- *)

let rtrace_lifecycle () =
  let rt = Rtrace.create () in
  let id = Rtrace.arrive rt ~now:100 ~origin:"kv.set" in
  check_int "ids start at 1" 1 id;
  check_int "current" id (Rtrace.current_id rt);
  Rtrace.note_ipc rt;
  Rtrace.handled rt ~now:130;
  check_int "enqueued returns current id" id (Rtrace.enqueued rt ~now:150);
  check_int "enqueue stamp is first-wins" 150
    (ignore (Rtrace.enqueued rt ~now:170);
     match Rtrace.find_live rt id with
     | Some r -> r.Rtrace.rq_enqueued_ns
     | None -> -1);
  check_int "still live until released" 1 (Rtrace.live_count rt);
  (match Rtrace.released rt ~now:1_150 ~id ~version:7 with
  | Some r ->
    check_int "arrive ts" 100 r.Rtrace.rq_arrive_ns;
    check_int "handled ts" 130 r.Rtrace.rq_handled_ns;
    check_int "enqueued ts" 150 r.Rtrace.rq_enqueued_ns;
    check_int "visible ts" 1_150 r.Rtrace.rq_visible_ns;
    check_int "commit version recorded" 7 r.Rtrace.rq_commit_ver;
    check_int "ipc calls" 1 r.Rtrace.rq_ipc_calls;
    check_bool "outcome" true (r.Rtrace.rq_outcome = Rtrace.Released)
  | None -> Alcotest.fail "released lost the request");
  check_int "no longer live" 0 (Rtrace.live_count rt);
  check_int "released counted" 1 (Rtrace.released_count rt);
  let s = Rtrace.enq2vis_summary rt in
  check_int "one sample" 1 s.Rtrace.s_count;
  check_int "enq->vis p50" 1_000 s.Rtrace.s_p50_ns;
  check_int "e2e p50" 1_050 (Rtrace.e2e_summary rt).Rtrace.s_p50_ns

let rtrace_internal_finalized () =
  let rt = Rtrace.create () in
  (* enqueue with no current request: internally generated send, id 0 *)
  check_int "no ambient current yet" 0 (Rtrace.enqueued rt ~now:0);
  ignore (Rtrace.arrive rt ~now:0 ~origin:"kv.get");
  (* next arrival finalizes the previous current: it produced no external
     output, so it is Internal, not leaked as live forever *)
  let id2 = Rtrace.arrive rt ~now:10 ~origin:"kv.set" in
  check_int "internal finalized" 1 (Rtrace.internal_count rt);
  check_int "only new one live" 1 (Rtrace.live_count rt);
  check_int "current moved on" id2 (Rtrace.current_id rt);
  ignore (Rtrace.enqueued rt ~now:20);
  (* an enqueued request is NOT internal: the next arrival leaves it live,
     waiting for its releasing commit *)
  ignore (Rtrace.arrive rt ~now:30 ~origin:"kv.set");
  check_int "enqueued one still live" 2 (Rtrace.live_count rt);
  check_int "internal count unchanged" 1 (Rtrace.internal_count rt)

let rtrace_shed_and_crash () =
  let rt = Rtrace.create () in
  let a = Rtrace.arrive rt ~now:0 ~origin:"kv.set" in
  ignore (Rtrace.enqueued rt ~now:5);
  check_bool "shed known id" true (Rtrace.shed rt ~id:a);
  check_int "shed counted" 1 (Rtrace.shed_count rt);
  check_bool "shed unknown id" false (Rtrace.shed rt ~id:999);
  let b = Rtrace.arrive rt ~now:10 ~origin:"kv.set" in
  ignore (Rtrace.enqueued rt ~now:15);
  Rtrace.on_crash rt;
  check_int "pending dropped by crash" 1 (Rtrace.dropped_count rt);
  check_int "nothing live after crash" 0 (Rtrace.live_count rt);
  (match Rtrace.completed rt with
  | newest :: _ ->
    check_int "newest is the crashed one" b newest.Rtrace.rq_id;
    check_bool "outcome dropped" true (newest.Rtrace.rq_outcome = Rtrace.Dropped)
  | [] -> Alcotest.fail "no completed records");
  check_int "completed_total" 2 (Rtrace.completed_total rt)

(* end to end: external requests flow through app -> ring -> checkpoint and
   the Perfetto export links each request span to the releasing ckpt.stw
   span with a flow arrow *)
let rtrace_flows_end_to_end () =
  let sys = System.boot ~interval_us:1000 () in
  System.enable_tracing sys;
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  let netdrv =
    match Kernel.find_process (System.kernel sys) ~name:"netdrv" with
    | Some p -> p
    | None -> Alcotest.fail "netdrv missing"
  in
  let delivered = ref 0 in
  let net =
    Net_server.create (System.kernel sys) (System.manager sys) ~proc:netdrv
      ~deliver:(fun ~client:_ ~sent_ns:_ ~payload:_ -> incr delivered)
  in
  for i = 0 to 9 do
    Kv_app.set_i app i;
    check_bool "send accepted" true (Net_server.send net ~client:i (Bytes.of_string "+OK"))
  done;
  ignore (System.checkpoint sys);
  check_int "all replies delivered" 10 !delivered;
  let rt = Probe.rtrace (System.obs sys) in
  check_int "all requests released" 10 (Rtrace.released_count rt);
  let ver = Treesls_nvm.Global_meta.version (Treesls_nvm.Store.meta (Kernel.store (System.kernel sys))) in
  List.iter
    (fun r ->
      if r.Rtrace.rq_outcome = Rtrace.Released then begin
        check_int "released by the concrete commit" ver r.Rtrace.rq_commit_ver;
        check_bool "timeline ordered" true
          (r.Rtrace.rq_arrive_ns <= r.Rtrace.rq_handled_ns
          && r.Rtrace.rq_handled_ns <= r.Rtrace.rq_enqueued_ns
          && r.Rtrace.rq_enqueued_ns < r.Rtrace.rq_visible_ns)
      end)
    (Rtrace.completed rt);
  (* the export carries req spans and flow arrows into the stw slice *)
  let j = parse_json (Trace.to_perfetto_json ~pid:1 ~tid:1 (System.trace sys)) in
  let evs = match obj_field "traceEvents" j with JArr l -> l | _ -> Alcotest.fail "array" in
  let flows p = List.filter (fun e ->
    str (obj_field "name" e) = "req.flow" && str (obj_field "ph" e) = p) evs
  in
  let starts = flows "s" and ends_ = flows "f" in
  check_int "one flow start per request" 10 (List.length starts);
  check_int "one flow end per request" 10 (List.length ends_);
  let req_spans = List.filter (fun e -> str (obj_field "name" e) = "req") evs in
  check_int "one retroactive span per request" 10 (List.length req_spans);
  (* each start's id has a matching end, and the end lands inside the stw
     window so the arrow binds to the ckpt.stw slice *)
  let stw =
    match List.filter (fun e -> str (obj_field "name" e) = "ckpt.stw") evs with
    | [ e ] -> e
    | l -> Alcotest.failf "expected 1 stw span, got %d" (List.length l)
  in
  let stw_t0 = num (obj_field "ts" stw) in
  let stw_t1 = stw_t0 +. num (obj_field "dur" stw) in
  List.iter
    (fun s ->
      let fid = int_of_float (num (obj_field "id" s)) in
      match
        List.find_opt (fun f -> int_of_float (num (obj_field "id" f)) = fid) ends_
      with
      | None -> Alcotest.failf "flow %d has no end" fid
      | Some f ->
        let ts = num (obj_field "ts" f) in
        check_bool "flow end inside stw window" true (ts >= stw_t0 && ts < stw_t1))
    starts

(* ---- metrics ---- *)

let metrics_snapshot_reset () =
  let m = Metrics.create () in
  Metrics.add m "c" 2;
  Metrics.add m "c" 3;
  Metrics.add m "b" 1;
  Metrics.set_gauge m "g" 7;
  Metrics.set_gauge m "g" 9;
  Metrics.observe m "t" 100;
  Metrics.observe m "t" 200;
  let s = Metrics.snapshot m in
  check_bool "counters sorted, summed" true (s.Metrics.counters = [ ("b", 1); ("c", 5) ]);
  check_int "gauge keeps last write" 9 (List.assoc "g" s.Metrics.gauges);
  let tm = List.assoc "t" s.Metrics.timers in
  check_int "timer count" 2 tm.Metrics.tm_count;
  check_int "timer total" 300 tm.Metrics.tm_total_ns;
  check_int "timer max" 200 tm.Metrics.tm_max_ns;
  check_int "counter_value" 5 (Metrics.counter_value m "c");
  check_int "untouched name reads 0" 0 (Metrics.counter_value m "nope");
  (* JSON dump parses and carries the sections *)
  (match parse_json (Metrics.snapshot_to_json s) with
  | JObj f ->
    check_bool "json sections" true
      (List.mem_assoc "counters" f && List.mem_assoc "gauges" f && List.mem_assoc "timers" f)
  | _ -> Alcotest.fail "metrics json not an object");
  Metrics.reset m;
  let s2 = Metrics.snapshot m in
  check_bool "reset empties everything" true
    (s2.Metrics.counters = [] && s2.Metrics.gauges = [] && s2.Metrics.timers = [])

(* ---- whole-system: crash survival, reconciliation, zero cost ---- *)

let find_events tr name = List.filter (fun e -> e.Trace.name = name) (Trace.events tr)

let trace_survives_crash () =
  let sys = System.boot () in
  System.enable_tracing sys;
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  for i = 0 to 49 do
    Kv_app.set_i app i
  done;
  ignore (System.checkpoint sys);
  Probe.instant ~args:[ ("witness", "42") ] "test.pre_crash_marker";
  ignore (System.crash_and_recover sys);
  Kv_app.refresh app;
  let tr = System.trace sys in
  (* the ring is eternal state: everything recorded before the power
     failure is still there, followed by the crash marker and the
     restore span *)
  check_int "pre-crash marker survived" 1 (List.length (find_events tr "test.pre_crash_marker"));
  check_bool "pre-crash checkpoint spans survived" true (find_events tr "ckpt.stw" <> []);
  check_int "crash marked" 1 (List.length (find_events tr "crash"));
  check_int "restore recorded" 1 (List.length (find_events tr "restore"));
  let seq name = (List.hd (find_events tr name)).Trace.seq in
  check_bool "marker before crash" true (seq "test.pre_crash_marker" < seq "crash");
  check_bool "crash before restore" true (seq "crash" < seq "restore");
  check_bool "marker args intact" true
    (List.assoc_opt "witness" (List.hd (find_events tr "test.pre_crash_marker")).Trace.args
    = Some "42");
  check_bool "ring has eternal PMO backing" true (Probe.backing_pmo (System.obs sys) <> None);
  (* the metrics registry is eternal too *)
  let m = Probe.metrics (System.obs sys) in
  check_int "crash counted" 1 (Metrics.counter_value m "crashes");
  check_int "restore counted" 1 (Metrics.counter_value m "restore.runs");
  check_bool "pre-crash ckpt.runs survived" true (Metrics.counter_value m "ckpt.runs" >= 1)

let reconcile_with_report () =
  let sys = System.boot () in
  System.enable_tracing sys;
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  for i = 0 to 199 do
    Kv_app.set_i app i
  done;
  ignore (System.checkpoint sys);
  for i = 200 to 399 do
    Kv_app.set_i app i
  done;
  let r = System.checkpoint sys in
  let tr = System.trace sys in
  let stw = List.hd (List.rev (find_events tr "ckpt.stw")) in
  let child name =
    List.fold_left
      (fun acc (e : Trace.event) ->
        if e.Trace.name = name && e.Trace.parent = stw.Trace.id then acc + e.Trace.dur_ns
        else acc)
      0 (Trace.events tr)
  in
  (* every Report field is visible as a span, exactly *)
  check_int "stw span = Report.stw_ns" r.Report.stw_ns stw.Trace.dur_ns;
  check_int "captree span = Report.captree_ns" r.Report.captree_ns (child "ckpt.captree");
  check_int "others span = Report.others_ns" r.Report.others_ns (child "ckpt.others");
  check_int "hybrid span = Report.hybrid_ns" r.Report.hybrid_ns (child "ckpt.hybrid_copy");
  check_int "quiesce+resume = Report.ipi_ns" r.Report.ipi_ns
    (child "ckpt.quiesce" + child "ckpt.resume");
  (* and the children reconcile with the pause: the hybrid copy overlaps
     the walk, so only its excess extends the STW window *)
  check_int "children sum to the pause" stw.Trace.dur_ns
    (child "ckpt.quiesce" + child "ckpt.captree"
    + max 0 (child "ckpt.hybrid_copy" - child "ckpt.captree")
    + child "ckpt.others" + child "ckpt.resume")

let verbose_tier () =
  let sys = System.boot () in
  System.enable_tracing sys;
  (* verbose off: the per-operation firehose stays silent *)
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  for i = 0 to 49 do
    Kv_app.set_i app i
  done;
  let tr = System.trace sys in
  check_int "no firehose by default" 0 (List.length (find_events tr "nvm.alloc"));
  Probe.set_verbose (System.obs sys) true;
  for i = 50 to 99 do
    Kv_app.set_i app i
  done;
  check_bool "firehose when verbose" true (find_events tr "nvm.alloc" <> [])

let run_workload sys =
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  for i = 0 to 499 do
    Kv_app.set_i app i;
    ignore (System.tick sys)
  done

let disabled_tracing_is_free () =
  (* identical run, tracing off vs on (even verbose): same simulated time,
     because emitters read the clock but never advance it *)
  let sys_plain = System.boot ~interval_us:1000 () in
  run_workload sys_plain;
  let t_plain = System.now_ns sys_plain in
  check_int "disabled records nothing" 0 (Trace.length (System.trace sys_plain));
  let sys_traced = System.boot ~interval_us:1000 () in
  System.enable_tracing ~verbose:true ~eternal_backing:false sys_traced;
  run_workload sys_traced;
  let t_traced = System.now_ns sys_traced in
  check_bool "enabled records events" true (Trace.length (System.trace sys_traced) > 0);
  check_int "tracing costs no simulated time" t_plain t_traced

(* ---- rto: recovery observability (profiler + flight recorder) ---- *)

module Rto = Treesls_obs.Rto

let boot_live () =
  let sys = System.boot ~interval_us:1000 () in
  System.enable_tracing sys;
  let app = Kv_app.launch ~keys_hint:2_000 sys Kv_app.Memcached in
  for i = 0 to 199 do
    Kv_app.set_i app i;
    ignore (System.tick sys)
  done;
  ignore (System.checkpoint sys);
  (sys, app)

let phase_sum (r : Rto.record) = List.fold_left (fun a (_, ns) -> a + ns) 0 r.Rto.r_phases

let rto_phase_sum_exact () =
  let sys, app = boot_live () in
  ignore (System.crash_and_recover sys);
  Kv_app.refresh app;
  match System.last_recovery sys with
  | None -> Alcotest.fail "no recovery sealed"
  | Some r ->
    check_bool "total positive" true (r.Rto.r_total_ns > 0);
    check_int "exclusive phases + untracked = total exactly" r.Rto.r_total_ns
      (phase_sum r + r.Rto.r_untracked_ns);
    check_bool "untracked <= 1% of total" true
      (float_of_int r.Rto.r_untracked_ns <= 0.01 *. float_of_int r.Rto.r_total_ns);
    check_bool "objects restored" true (r.Rto.r_restored_objects > 0);
    check_bool "downtime covers the restore" true (r.Rto.r_downtime_ns >= r.Rto.r_total_ns);
    (* the sealed record feeds the restore.* metrics family *)
    let m = Probe.metrics (System.obs sys) in
    (match Metrics.histogram m "restore.total_ns" with
    | Some h ->
      check_int "restore.total_ns observed once" 1 (Treesls_util.Histogram.count h);
      check_int "restore.total_ns = record" r.Rto.r_total_ns
        (Treesls_util.Histogram.max_value h)
    | None -> Alcotest.fail "restore.total_ns timer missing");
    check_bool "every phase has a timer" true
      (List.for_all
         (fun (p, _) -> Metrics.histogram m ("restore.phase." ^ p ^ "_ns") <> None)
         r.Rto.r_phases)

let rto_ttfr () =
  let sys, app = boot_live () in
  ignore (System.crash_and_recover sys);
  Kv_app.refresh app;
  let r = Option.get (System.last_recovery sys) in
  check_bool "ttfr unknown before any request" true (r.Rto.r_ttfr_ns < 0);
  Kv_app.set_i app 0;
  check_bool "first request seals ttfr" true (r.Rto.r_ttfr_ns >= r.Rto.r_downtime_ns);
  let ttfr = r.Rto.r_ttfr_ns in
  Kv_app.set_i app 1;
  check_int "later requests don't move it" ttfr r.Rto.r_ttfr_ns

let rto_flight_roundtrip () =
  let sys, app = boot_live () in
  Probe.instant ~args:[ ("w", "1") ] "test.flight_witness";
  ignore (System.crash_and_recover sys);
  Kv_app.refresh app;
  let flight =
    match System.export_flight sys with Some f -> f | None -> Alcotest.fail "no flight export"
  in
  let j = parse_json flight in
  let all = match obj_field "traceEvents" j with JArr l -> l | _ -> Alcotest.fail "array" in
  let meta, evs = List.partition (fun e -> str (obj_field "ph" e) = "M") all in
  let thread_named tid name =
    List.exists
      (fun e ->
        str (obj_field "name" e) = "thread_name"
        && int_of_float (num (obj_field "tid" e)) = tid
        && str (obj_field "name" (obj_field "args" e)) = name)
      meta
  in
  check_bool "pre-crash track named" true (thread_named 1 "pre-crash");
  check_bool "recovery track named" true (thread_named 2 "recovery");
  let tid e = int_of_float (num (obj_field "tid" e)) in
  (* exactly one crash-instant marker, on the recovery track *)
  (match
     List.filter
       (fun e ->
         str (obj_field "ph" e) = "i"
         && str (obj_field "name" e) = "crash"
         && (match obj_field "args" e with
            | JObj fields -> List.assoc_opt "marker" fields = Some (JStr "flight")
            | _ -> false))
       evs
   with
  | [ m ] -> check_int "marker on recovery track" 2 (tid m)
  | l -> Alcotest.failf "expected 1 flight crash marker, got %d" (List.length l));
  (* the recovery span and its rto.<phase> children live on track 2 *)
  let recov =
    List.filter (fun e -> str (obj_field "ph" e) = "X" && str (obj_field "name" e) = "recovery") evs
  in
  check_int "one recovery span" 1 (List.length recov);
  check_int "recovery span on track 2" 2 (tid (List.hd recov));
  check_bool "per-phase child spans present" true
    (List.exists
       (fun e ->
         let n = str (obj_field "name" e) in
         String.length n > 4 && String.sub n 0 4 = "rto." && tid e = 2)
       evs);
  (* the pre-crash witness rode along on track 1 *)
  (match List.filter (fun e -> str (obj_field "name" e) = "test.flight_witness") evs with
  | [ w ] -> check_int "witness on pre-crash track" 1 (tid w)
  | l -> Alcotest.failf "expected 1 witness, got %d" (List.length l))

(* Satellite: the eternal trace ring reattaches across N >= 3 consecutive
   crash/restore cycles with no duplicated, truncated or reordered
   pre-crash events — checked both in the live ring and in the final
   flight capture. *)
let rto_ring_survives_cycles () =
  let sys, app = boot_live () in
  let cycles = 3 in
  for cycle = 1 to cycles do
    Probe.instant ~args:[ ("cycle", string_of_int cycle) ] "test.cycle_witness";
    ignore (System.crash_and_recover sys);
    Kv_app.refresh app;
    (* some post-recovery work so later cycles crash a different state *)
    for i = 0 to 49 do
      Kv_app.set_i app i;
      ignore (System.tick sys)
    done;
    let ws = find_events (System.trace sys) "test.cycle_witness" in
    check_int
      (Printf.sprintf "cycle %d: every witness present exactly once" cycle)
      cycle (List.length ws);
    List.iteri
      (fun i (e : Trace.event) ->
        Alcotest.(check (option string))
          (Printf.sprintf "cycle %d: witness %d in order" cycle (i + 1))
          (Some (string_of_int (i + 1)))
          (List.assoc_opt "cycle" e.Trace.args))
      ws;
    let seqs = List.map (fun (e : Trace.event) -> e.Trace.seq) ws in
    check_bool "witness seqs strictly increasing" true (List.sort compare seqs = seqs);
    check_int "recovery index tracks cycles" cycle
      (Option.get (System.last_recovery sys)).Rto.r_index
  done;
  check_int "profiler counted every recovery" cycles (Rto.count (System.rto sys));
  (* the last flight capture holds all three witnesses, in order *)
  let r = Option.get (System.last_recovery sys) in
  let pre =
    List.filter (fun (e : Trace.event) -> e.Trace.name = "test.cycle_witness") r.Rto.r_pre_crash
  in
  check_int "flight capture has all witnesses" cycles (List.length pre);
  List.iteri
    (fun i (e : Trace.event) ->
      Alcotest.(check (option string))
        (Printf.sprintf "flight witness %d in order" (i + 1))
        (Some (string_of_int (i + 1)))
        (List.assoc_opt "cycle" e.Trace.args))
    pre

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick ring_wraparound;
          Alcotest.test_case "span nesting" `Quick span_nesting;
          Alcotest.test_case "unknown span id ignored" `Quick unknown_span_ignored;
          Alcotest.test_case "abort marks open spans" `Quick abort_marks_open_spans;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "export is well-formed JSON" `Quick perfetto_json_wellformed;
          Alcotest.test_case "flow events" `Quick perfetto_flow_events;
          Alcotest.test_case "counter-track escaping" `Quick perfetto_counter_escaping;
        ] );
      ( "rtrace",
        [
          Alcotest.test_case "request lifecycle" `Quick rtrace_lifecycle;
          Alcotest.test_case "internal requests finalized" `Quick rtrace_internal_finalized;
          Alcotest.test_case "shed and crash-drop" `Quick rtrace_shed_and_crash;
          Alcotest.test_case "flows link requests to stw" `Quick rtrace_flows_end_to_end;
        ] );
      ("metrics", [ Alcotest.test_case "snapshot and reset" `Quick metrics_snapshot_reset ]);
      ( "system",
        [
          Alcotest.test_case "trace survives crash+restore" `Quick trace_survives_crash;
          Alcotest.test_case "spans reconcile with Report" `Quick reconcile_with_report;
          Alcotest.test_case "verbose tier gating" `Quick verbose_tier;
          Alcotest.test_case "disabled tracing is free" `Quick disabled_tracing_is_free;
        ] );
      ( "rto",
        [
          Alcotest.test_case "exclusive phase sum is exact" `Quick rto_phase_sum_exact;
          Alcotest.test_case "time to first request" `Quick rto_ttfr;
          Alcotest.test_case "flight export round-trips" `Quick rto_flight_roundtrip;
          Alcotest.test_case "trace ring survives 3 crash cycles" `Quick
            rto_ring_survives_cycles;
        ] );
    ]
