(* Tests for the NVM substrate: devices, journaled word area, buddy and
   slab allocators, and the store — including crash injection at every
   journal phase. *)

module Paddr = Treesls_nvm.Paddr
module Device = Treesls_nvm.Device
module Warea = Treesls_nvm.Warea
module Txn = Treesls_nvm.Txn
module Buddy = Treesls_nvm.Buddy
module Slab = Treesls_nvm.Slab
module Store = Treesls_nvm.Store
module Global_meta = Treesls_nvm.Global_meta
module Clock = Treesls_sim.Clock
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Paddr ---- *)

let paddr_basics () =
  let a = Paddr.nvm 3 and b = Paddr.dram 3 in
  check_bool "nvm" true (Paddr.is_nvm a);
  check_bool "dram" true (Paddr.is_dram b);
  check_bool "distinct devices" false (Paddr.equal a b);
  check_bool "ordering nvm < dram" true (Paddr.compare a b < 0);
  Alcotest.(check string) "to_string" "nvm:3" (Paddr.to_string a)

(* ---- Device ---- *)

let device_rw () =
  let d = Device.create ~kind:Paddr.Nvm ~pages:8 ~page_size:128 in
  Device.write d 2 ~off:10 (Bytes.of_string "hello");
  Alcotest.(check string) "read back" "hello" (Bytes.to_string (Device.read d 2 ~off:10 ~len:5))

let device_lazy () =
  let d = Device.create ~kind:Paddr.Nvm ~pages:100 ~page_size:64 in
  check_int "untouched" 0 (Device.touched d);
  ignore (Device.page d 5);
  check_int "one page materialised" 1 (Device.touched d)

let device_crash_semantics () =
  let nvm = Device.create ~kind:Paddr.Nvm ~pages:4 ~page_size:64 in
  let dram = Device.create ~kind:Paddr.Dram ~pages:4 ~page_size:64 in
  Device.write nvm 0 ~off:0 (Bytes.of_string "keep");
  Device.write dram 0 ~off:0 (Bytes.of_string "lose");
  Device.crash nvm;
  Device.crash dram;
  Alcotest.(check string) "nvm survives" "keep" (Bytes.to_string (Device.read nvm 0 ~off:0 ~len:4));
  Alcotest.(check string) "dram wiped" "\000\000\000\000"
    (Bytes.to_string (Device.read dram 0 ~off:0 ~len:4))

let device_copy () =
  let a = Device.create ~kind:Paddr.Nvm ~pages:2 ~page_size:32 in
  let b = Device.create ~kind:Paddr.Dram ~pages:2 ~page_size:32 in
  Device.write a 0 ~off:0 (Bytes.of_string "xy");
  Device.copy_page ~src:a ~src_idx:0 ~dst:b ~dst_idx:1;
  Alcotest.(check string) "copied" "xy" (Bytes.to_string (Device.read b 1 ~off:0 ~len:2))

let device_zero () =
  let d = Device.create ~kind:Paddr.Nvm ~pages:2 ~page_size:16 in
  Device.write d 0 ~off:0 (Bytes.of_string "abc");
  Device.zero_page d 0;
  Alcotest.(check string) "zeroed" "\000\000\000"
    (Bytes.to_string (Device.read d 0 ~off:0 ~len:3))

(* ---- Warea ---- *)

let warea_commit_read () =
  let w = Warea.create ~words:16 in
  Warea.commit w ~desc:"t" [ (0, 42); (3, 7) ];
  check_int "word 0" 42 (Warea.read w 0);
  check_int "word 3" 7 (Warea.read w 3);
  check_int "commits" 1 (Warea.commits w);
  check_int "words written" 2 (Warea.words_written w)

let warea_duplicate_index () =
  let w = Warea.create ~words:4 in
  Alcotest.check_raises "duplicate" (Invalid_argument "Warea.commit: duplicate index")
    (fun () -> Warea.commit w ~desc:"d" [ (1, 1); (1, 2) ])

let warea_crash_atomicity phase expect_applied () =
  let w = Warea.create ~words:8 in
  Warea.commit w ~desc:"init" [ (0, 1); (1, 1) ];
  Warea.set_crash_plan w (Some phase);
  (try
     Warea.commit w ~desc:"update" [ (0, 2); (1, 2) ];
     Alcotest.fail "expected crash"
   with Warea.Crashed _ -> ());
  Warea.recover w;
  check_bool "no in-flight record" false (Warea.in_flight w);
  let expected = if expect_applied then 2 else 1 in
  check_int "word0 atomic" expected (Warea.read w 0);
  check_int "word1 atomic" expected (Warea.read w 1);
  (* both words always agree: no torn state *)
  check_int "no tearing" (Warea.read w 0) (Warea.read w 1)

let warea_recover_idempotent () =
  let w = Warea.create ~words:4 in
  Warea.set_crash_plan w (Some Warea.Mid_apply);
  (try Warea.commit w ~desc:"x" [ (0, 9); (1, 9) ] with Warea.Crashed _ -> ());
  Warea.recover w;
  Warea.recover w;
  check_int "applied" 9 (Warea.read w 0)

(* Full phase matrix on a wide transaction: after recovery the words are
   always ALL old or ALL new — never a mix — and a torn (incomplete)
   record is discarded, not replayed. *)
let warea_phase_matrix () =
  List.iter
    (fun phase ->
      let w = Warea.create ~words:8 in
      Warea.commit w ~desc:"init" (List.init 6 (fun i -> (i, 100)));
      Warea.set_crash_plan w (Some phase);
      (try
         Warea.commit w ~desc:"update" (List.init 6 (fun i -> (i, 200)));
         Alcotest.fail "expected crash"
       with Warea.Crashed _ -> ());
      (* every phase but Before_log leaves a complete record *)
      check_bool (Warea.phase_name phase ^ " leaves a record") true (Warea.in_flight w);
      Warea.recover w;
      check_bool "record truncated" false (Warea.in_flight w);
      let v0 = Warea.read w 0 in
      check_bool "all-old or all-new" true (v0 = 100 || v0 = 200);
      for i = 1 to 5 do
        check_int (Printf.sprintf "%s word %d agrees" (Warea.phase_name phase) i) v0
          (Warea.read w i)
      done;
      if phase = Warea.Before_log then check_int "torn record discarded" 100 v0
      else check_int "complete record replayed" 200 v0)
    Warea.all_phases

let warea_duplicate_before_side_effects () =
  let w = Warea.create ~words:4 in
  Warea.set_crash_plan w (Some Warea.Before_log);
  Alcotest.check_raises "duplicate rejected first" (Invalid_argument "Warea.commit: duplicate index")
    (fun () -> Warea.commit w ~desc:"d" [ (1, 1); (1, 2) ]);
  check_bool "no torn record staged" false (Warea.in_flight w);
  check_int "no commit point consumed" 0 (Warea.commit_points w);
  (* validation ran before the crash machinery: the plan is still armed
     and fires on the next well-formed commit *)
  (try
     Warea.commit w ~desc:"ok" [ (1, 5) ];
     Alcotest.fail "expected armed plan to fire"
   with Warea.Crashed _ -> ());
  Warea.recover w;
  check_int "before-log rolled back" 0 (Warea.read w 1)

let warea_empty_point_counts () =
  let w = Warea.create ~words:4 in
  Warea.commit w ~desc:"a" [ (0, 1) ];
  check_int "one point" 1 (Warea.commit_points w);
  Warea.consume_point w ~desc:"empty";
  check_int "empty txn consumed a point" 2 (Warea.commit_points w);
  check_int "commits unchanged" 1 (Warea.commits w);
  Warea.commit w ~desc:"b" [ (0, 2) ];
  check_int "numbering continues" 3 (Warea.commit_points w)

let warea_empty_point_fires_armed_plan () =
  let w = Warea.create ~words:4 in
  Warea.set_crash_plan w (Some Warea.After_log);
  (try
     Warea.consume_point w ~desc:"empty";
     Alcotest.fail "expected crash"
   with Warea.Crashed _ -> ());
  check_bool "no journal side effects" false (Warea.in_flight w);
  Warea.recover w;
  check_int "point still consumed" 1 (Warea.commit_points w)

let warea_schedule_fires_at_absolute_point () =
  let w = Warea.create ~words:4 in
  Warea.set_crash_schedule w (Some (3, Warea.After_log));
  Warea.commit w ~desc:"p1" [ (0, 1) ];
  Warea.commit w ~desc:"p2" [ (0, 2) ];
  (try
     Warea.commit w ~desc:"p3" [ (0, 3) ];
     Alcotest.fail "expected crash at point 3"
   with Warea.Crashed _ -> ());
  check_bool "self-disarmed" true (Warea.crash_schedule w = None);
  Warea.recover w;
  check_int "after-log rolls forward" 3 (Warea.read w 0);
  (* points 1 and 2 committed untouched *)
  check_int "points consumed" 3 (Warea.commit_points w)

(* ---- Txn ---- *)

let txn_read_through () =
  let w = Warea.create ~words:8 in
  Warea.commit w ~desc:"i" [ (2, 5) ];
  let t = Txn.create w in
  check_int "reads durable" 5 (Txn.read t 2);
  Txn.write t 2 6;
  check_int "reads pending" 6 (Txn.read t 2);
  check_int "durable unchanged" 5 (Warea.read w 2);
  Txn.commit t ~desc:"c";
  check_int "now durable" 6 (Warea.read w 2)

let txn_empty_commit () =
  let w = Warea.create ~words:4 in
  let t = Txn.create w in
  Txn.commit t ~desc:"empty";
  check_int "no commit recorded" 0 (Warea.commits w);
  (* ...but a commit point IS consumed: numbering must not depend on
     whether a transaction happened to stage any writes *)
  check_int "commit point consumed" 1 (Warea.commit_points w)

let txn_rewrite_single_entry () =
  let w = Warea.create ~words:4 in
  let t = Txn.create w in
  Txn.write t 1 10;
  Txn.write t 1 20;
  check_int "pending count" 1 (Txn.pending t);
  Txn.commit t ~desc:"c";
  check_int "last wins" 20 (Warea.read w 1)

(* ---- Buddy ---- *)

let mk_buddy pages =
  let w = Warea.create ~words:(Buddy.words_needed ~total_pages:pages) in
  (w, Buddy.format w ~base:0 ~total_pages:pages)

let buddy_basics () =
  let _, b = mk_buddy 16 in
  check_int "all free" 16 (Buddy.free_pages b);
  let p0 = Option.get (Buddy.alloc b ~order:0) in
  check_int "free after alloc" 15 (Buddy.free_pages b);
  Buddy.free b ~offset:p0;
  check_int "free after free" 16 (Buddy.free_pages b);
  Buddy.check_invariants b

let buddy_orders () =
  let _, b = mk_buddy 16 in
  let p = Option.get (Buddy.alloc b ~order:2) in
  check_int "aligned to order" 0 (p mod 4);
  check_int "free count" 12 (Buddy.free_pages b);
  Alcotest.(check (option int)) "order recorded" (Some 2) (Buddy.order_of b ~offset:p);
  Buddy.check_invariants b;
  Buddy.free b ~offset:p;
  Buddy.check_invariants b

let buddy_exhaustion () =
  let _, b = mk_buddy 4 in
  let a1 = Buddy.alloc b ~order:1 and a2 = Buddy.alloc b ~order:1 in
  check_bool "both succeed" true (a1 <> None && a2 <> None);
  check_bool "exhausted" true (Buddy.alloc b ~order:0 = None);
  Buddy.free b ~offset:(Option.get a1);
  check_bool "after free, fits" true (Buddy.alloc b ~order:1 <> None)

let buddy_merge () =
  let _, b = mk_buddy 8 in
  let ps = List.init 8 (fun _ -> Option.get (Buddy.alloc b ~order:0)) in
  check_bool "full" true (Buddy.alloc b ~order:0 = None);
  List.iter (fun p -> Buddy.free b ~offset:p) ps;
  (* all buddies must have merged back into one max block *)
  check_bool "whole region mergeable" true (Buddy.alloc b ~order:3 <> None);
  Buddy.check_invariants b

let buddy_double_free () =
  let _, b = mk_buddy 4 in
  let p = Option.get (Buddy.alloc b ~order:0) in
  Buddy.free b ~offset:p;
  Alcotest.check_raises "double free" (Invalid_argument "Buddy.free: not a live allocation")
    (fun () -> Buddy.free b ~offset:p)

let buddy_bad_order () =
  let _, b = mk_buddy 4 in
  Alcotest.check_raises "too large" (Invalid_argument "Buddy.alloc: bad order") (fun () ->
      ignore (Buddy.alloc b ~order:5))

let buddy_crash_during_alloc phase () =
  let w, b = mk_buddy 16 in
  ignore (Option.get (Buddy.alloc b ~order:0));
  let free_before = Buddy.free_pages b in
  Warea.set_crash_plan w (Some phase);
  (try ignore (Buddy.alloc b ~order:1)
   with Warea.Crashed _ -> ());
  Warea.recover w;
  Buddy.check_invariants b;
  let free_after = Buddy.free_pages b in
  check_bool "atomic: all-or-nothing" true
    (free_after = free_before || free_after = free_before - 2)

let buddy_random_ops () =
  let w, b = mk_buddy 64 in
  ignore w;
  let rng = Rng.create 77L in
  let live = ref [] in
  for _ = 1 to 2_000 do
    if Rng.bool rng && List.length !live < 40 then begin
      let order = Rng.int rng 3 in
      match Buddy.alloc b ~order with
      | Some p -> live := p :: !live
      | None -> ()
    end
    else
      match !live with
      | [] -> ()
      | p :: rest ->
        Buddy.free b ~offset:p;
        live := rest
  done;
  Buddy.check_invariants b

(* ---- Slab ---- *)

let mk_slab () =
  let pages = 64 in
  let bw = Buddy.words_needed ~total_pages:pages in
  let sw = Slab.words_needed ~max_slabs_per_class:8 in
  let w = Warea.create ~words:(bw + sw) in
  let b = Buddy.format w ~base:0 ~total_pages:pages in
  let s = Slab.format w ~base:bw ~buddy:b ~page_size:4096 ~max_slabs_per_class:8 in
  (w, b, s)

let slab_class_of_size () =
  Alcotest.(check (option int)) "32" (Some 0) (Slab.class_of_size 1);
  Alcotest.(check (option int)) "exact" (Some 0) (Slab.class_of_size 32);
  Alcotest.(check (option int)) "rounds up" (Some 1) (Slab.class_of_size 33);
  Alcotest.(check (option int)) "largest" (Some 6) (Slab.class_of_size 2048);
  Alcotest.(check (option int)) "too big" None (Slab.class_of_size 4096)

let slab_alloc_free () =
  let _, b, s = mk_slab () in
  let h = Option.get (Slab.alloc s ~size:100) in
  check_int "live" 1 (Slab.live s);
  check_int "class" 2 h.Slab.cls;
  check_bool "page taken from buddy" true (Buddy.free_pages b < 64);
  Slab.check_invariants s;
  Slab.free s h;
  check_int "live after free" 0 (Slab.live s);
  check_int "page returned" 64 (Buddy.free_pages b);
  Slab.check_invariants s

let slab_fills_slab_before_growing () =
  let _, b, s = mk_slab () in
  let h1 = Option.get (Slab.alloc s ~size:2048) in
  let h2 = Option.get (Slab.alloc s ~size:2048) in
  check_int "same slab" h1.Slab.slot h2.Slab.slot;
  check_int "one page used" 63 (Buddy.free_pages b);
  let h3 = Option.get (Slab.alloc s ~size:2048) in
  check_bool "grew a slab" true (h3.Slab.slot <> h1.Slab.slot);
  check_int "two pages used" 62 (Buddy.free_pages b)

let slab_double_free () =
  let _, _, s = mk_slab () in
  let h = Option.get (Slab.alloc s ~size:64) in
  Slab.free s h;
  Alcotest.check_raises "double free" (Invalid_argument "Slab.free: slab slot not in use")
    (fun () -> Slab.free s h)

let slab_crash_during_grow phase () =
  let w, b, s = mk_slab () in
  let free0 = Buddy.free_pages b in
  Warea.set_crash_plan w (Some phase);
  (try ignore (Slab.alloc s ~size:64) with Warea.Crashed _ -> ());
  Warea.recover w;
  Buddy.check_invariants b;
  Slab.check_invariants s;
  (* no leak: either the whole grow happened (page used, object live) or
     none of it did *)
  let free1 = Buddy.free_pages b in
  if free1 = free0 then check_int "nothing allocated" 0 (Slab.live s)
  else begin
    check_int "one page" (free0 - 1) free1;
    check_int "one object" 1 (Slab.live s)
  end

let slab_live_in_class () =
  let _, _, s = mk_slab () in
  ignore (Option.get (Slab.alloc s ~size:32));
  ignore (Option.get (Slab.alloc s ~size:32));
  ignore (Option.get (Slab.alloc s ~size:512));
  check_int "class 0" 2 (Slab.live_in_class s 0);
  check_int "class 4" 1 (Slab.live_in_class s 4);
  check_int "total" 3 (Slab.live s)

let slab_random_ops () =
  let _, b, s = mk_slab () in
  let rng = Rng.create 88L in
  let live = ref [] in
  for _ = 1 to 2_000 do
    if Rng.bool rng && List.length !live < 100 then begin
      let size = 1 + Rng.int rng 2048 in
      match Slab.alloc s ~size with
      | Some h -> live := h :: !live
      | None -> ()
    end
    else
      match !live with
      | [] -> ()
      | h :: rest ->
        Slab.free s h;
        live := rest
  done;
  Slab.check_invariants s;
  Buddy.check_invariants b

(* ---- Global_meta ---- *)

let meta_commit_protocol () =
  let m = Global_meta.create () in
  check_int "initial version" 0 (Global_meta.version m);
  Global_meta.begin_checkpoint m;
  check_bool "in progress" true (Global_meta.status m = Global_meta.In_progress);
  Global_meta.commit_checkpoint m;
  check_int "bumped" 1 (Global_meta.version m);
  check_bool "idle" true (Global_meta.status m = Global_meta.Idle);
  Global_meta.begin_checkpoint m;
  Global_meta.abort_in_flight m;
  check_int "abort keeps version" 1 (Global_meta.version m)

(* ---- Store ---- *)

let mk_store () =
  Store.create ~clock:(Clock.create ()) ~nvm_pages:64 ~dram_pages:8 ()

let store_pages () =
  let s = mk_store () in
  let p = Store.alloc_page s in
  check_bool "on nvm" true (Paddr.is_nvm p);
  check_int "free" 63 (Store.nvm_pages_free s);
  Store.free_page s p;
  check_int "freed" 64 (Store.nvm_pages_free s)

let store_charges_time () =
  let s = mk_store () in
  let t0 = Clock.now (Store.clock s) in
  ignore (Store.alloc_page s);
  check_bool "time advanced" true (Clock.now (Store.clock s) > t0)

let store_sink_redirect () =
  let s = mk_store () in
  let meter = ref 0 in
  let t0 = Clock.now (Store.clock s) in
  Store.with_sink s (Store.Meter meter) (fun () -> ignore (Store.alloc_page s));
  check_int "clock untouched" t0 (Clock.now (Store.clock s));
  check_bool "meter charged" true (!meter > 0);
  (* sink restored *)
  ignore (Store.alloc_page s);
  check_bool "clock charged after" true (Clock.now (Store.clock s) > t0)

let store_dram_exhaustion () =
  let s = mk_store () in
  let taken = ref [] in
  let rec drain () =
    match Store.alloc_dram_page s with
    | Some p ->
      taken := p :: !taken;
      drain ()
    | None -> ()
  in
  drain ();
  check_int "all 8 taken" 8 (List.length !taken);
  Store.free_dram_page s (List.hd !taken);
  check_bool "one available again" true (Store.alloc_dram_page s <> None)

let store_page_io () =
  let s = mk_store () in
  let p = Store.alloc_page s in
  Store.write_page s p ~off:100 (Bytes.of_string "data!");
  Alcotest.(check string) "roundtrip" "data!"
    (Bytes.to_string (Store.read_page s p ~off:100 ~len:5));
  let q = Store.alloc_page s in
  Store.copy_page s ~src:p ~dst:q;
  Alcotest.(check string) "copy" "data!" (Bytes.to_string (Store.read_page s q ~off:100 ~len:5))

let store_objects () =
  let s = mk_store () in
  let h = Store.alloc_obj s ~size:128 in
  check_int "live" 1 (Store.live_objects s);
  Store.free_obj s h;
  check_int "live after free" 0 (Store.live_objects s)

let store_crash_recover () =
  let s = mk_store () in
  let p = Store.alloc_page s in
  Store.write_page s p ~off:0 (Bytes.of_string "nvm");
  let d = Option.get (Store.alloc_dram_page s) in
  Store.write_page s d ~off:0 (Bytes.of_string "dram");
  Store.crash s;
  Store.recover s;
  Alcotest.(check string) "nvm content survives" "nvm"
    (Bytes.to_string (Store.read_page s p ~off:0 ~len:3));
  check_int "dram allocator reset" 8 (Store.dram_pages_free s);
  Alcotest.(check string) "dram content lost" "\000\000\000\000"
    (Bytes.to_string (Store.read_page s d ~off:0 ~len:4))

(* ---- qcheck: journaled allocator atomicity under random crashes ---- *)

let prop_buddy_crash_consistency =
  QCheck.Test.make ~name:"buddy: invariants after crash at any phase" ~count:100
    QCheck.(pair (int_bound 3) (int_bound 1000))
    (fun (phase_i, seed) ->
      let phase =
        match phase_i with
        | 0 -> Warea.Before_log
        | 1 -> Warea.After_log
        | 2 -> Warea.Mid_apply
        | _ -> Warea.After_apply
      in
      let w, b = mk_buddy 32 in
      let rng = Rng.create (Int64.of_int seed) in
      let live = ref [] in
      (* random warm-up ops *)
      for _ = 1 to 20 do
        if Rng.bool rng then (
          match Buddy.alloc b ~order:(Rng.int rng 3) with
          | Some p -> live := p :: !live
          | None -> ())
        else
          match !live with
          | p :: rest ->
            Buddy.free b ~offset:p;
            live := rest
          | [] -> ()
      done;
      Warea.set_crash_plan w (Some phase);
      (try
         if Rng.bool rng then ignore (Buddy.alloc b ~order:(Rng.int rng 2))
         else
           match !live with
           | p :: _ -> Buddy.free b ~offset:p
           | [] -> ignore (Buddy.alloc b ~order:0)
       with Warea.Crashed _ -> ());
      Warea.set_crash_plan w None;
      Warea.recover w;
      Buddy.check_invariants b;
      true)

let prop_slab_crash_consistency =
  QCheck.Test.make ~name:"slab: invariants after crash at any phase" ~count:100
    QCheck.(pair (int_bound 3) (int_bound 1000))
    (fun (phase_i, seed) ->
      let phase =
        match phase_i with
        | 0 -> Warea.Before_log
        | 1 -> Warea.After_log
        | 2 -> Warea.Mid_apply
        | _ -> Warea.After_apply
      in
      let w, b, s = mk_slab () in
      let rng = Rng.create (Int64.of_int seed) in
      let live = ref [] in
      for _ = 1 to 30 do
        if Rng.bool rng then (
          match Slab.alloc s ~size:(1 + Rng.int rng 2048) with
          | Some h -> live := h :: !live
          | None -> ())
        else
          match !live with
          | h :: rest ->
            Slab.free s h;
            live := rest
          | [] -> ()
      done;
      Warea.set_crash_plan w (Some phase);
      (try
         if Rng.bool rng then ignore (Slab.alloc s ~size:(1 + Rng.int rng 2048))
         else
           match !live with
           | h :: _ -> Slab.free s h
           | [] -> ignore (Slab.alloc s ~size:64)
       with Warea.Crashed _ -> ());
      Warea.set_crash_plan w None;
      Warea.recover w;
      Slab.check_invariants s;
      Buddy.check_invariants b;
      true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_buddy_crash_consistency; prop_slab_crash_consistency ]

let () =
  Alcotest.run "nvm"
    [
      ("paddr", [ Alcotest.test_case "basics" `Quick paddr_basics ]);
      ( "device",
        [
          Alcotest.test_case "read/write" `Quick device_rw;
          Alcotest.test_case "lazy materialisation" `Quick device_lazy;
          Alcotest.test_case "crash semantics" `Quick device_crash_semantics;
          Alcotest.test_case "cross-device copy" `Quick device_copy;
          Alcotest.test_case "zero page" `Quick device_zero;
        ] );
      ( "warea",
        [
          Alcotest.test_case "commit and read" `Quick warea_commit_read;
          Alcotest.test_case "duplicate index rejected" `Quick warea_duplicate_index;
          Alcotest.test_case "crash before-log rolls back" `Quick
            (warea_crash_atomicity Warea.Before_log false);
          Alcotest.test_case "crash after-log rolls forward" `Quick
            (warea_crash_atomicity Warea.After_log true);
          Alcotest.test_case "crash mid-apply rolls forward" `Quick
            (warea_crash_atomicity Warea.Mid_apply true);
          Alcotest.test_case "crash after-apply rolls forward" `Quick
            (warea_crash_atomicity Warea.After_apply true);
          Alcotest.test_case "recover idempotent" `Quick warea_recover_idempotent;
          Alcotest.test_case "full phase matrix: never a mix" `Quick warea_phase_matrix;
          Alcotest.test_case "duplicate validated before side effects" `Quick
            warea_duplicate_before_side_effects;
          Alcotest.test_case "empty txn consumes a commit point" `Quick warea_empty_point_counts;
          Alcotest.test_case "empty txn fires armed plan" `Quick warea_empty_point_fires_armed_plan;
          Alcotest.test_case "schedule fires at absolute point" `Quick
            warea_schedule_fires_at_absolute_point;
        ] );
      ( "txn",
        [
          Alcotest.test_case "read-through" `Quick txn_read_through;
          Alcotest.test_case "empty commit" `Quick txn_empty_commit;
          Alcotest.test_case "rewrite keeps single entry" `Quick txn_rewrite_single_entry;
        ] );
      ( "buddy",
        [
          Alcotest.test_case "alloc/free roundtrip" `Quick buddy_basics;
          Alcotest.test_case "orders and alignment" `Quick buddy_orders;
          Alcotest.test_case "exhaustion" `Quick buddy_exhaustion;
          Alcotest.test_case "merging" `Quick buddy_merge;
          Alcotest.test_case "double free rejected" `Quick buddy_double_free;
          Alcotest.test_case "bad order rejected" `Quick buddy_bad_order;
          Alcotest.test_case "crash before-log" `Quick (buddy_crash_during_alloc Warea.Before_log);
          Alcotest.test_case "crash after-log" `Quick (buddy_crash_during_alloc Warea.After_log);
          Alcotest.test_case "crash mid-apply" `Quick (buddy_crash_during_alloc Warea.Mid_apply);
          Alcotest.test_case "random ops keep invariants" `Quick buddy_random_ops;
        ] );
      ( "slab",
        [
          Alcotest.test_case "class_of_size" `Quick slab_class_of_size;
          Alcotest.test_case "alloc/free with page return" `Quick slab_alloc_free;
          Alcotest.test_case "fills before growing" `Quick slab_fills_slab_before_growing;
          Alcotest.test_case "double free rejected" `Quick slab_double_free;
          Alcotest.test_case "crash during grow (after-log)" `Quick
            (slab_crash_during_grow Warea.After_log);
          Alcotest.test_case "crash during grow (before-log)" `Quick
            (slab_crash_during_grow Warea.Before_log);
          Alcotest.test_case "crash during grow (mid-apply)" `Quick
            (slab_crash_during_grow Warea.Mid_apply);
          Alcotest.test_case "live per class" `Quick slab_live_in_class;
          Alcotest.test_case "random ops keep invariants" `Quick slab_random_ops;
        ] );
      ("global_meta", [ Alcotest.test_case "commit protocol" `Quick meta_commit_protocol ]);
      ( "store",
        [
          Alcotest.test_case "page alloc/free" `Quick store_pages;
          Alcotest.test_case "charges simulated time" `Quick store_charges_time;
          Alcotest.test_case "sink redirect" `Quick store_sink_redirect;
          Alcotest.test_case "dram exhaustion" `Quick store_dram_exhaustion;
          Alcotest.test_case "page io + copy" `Quick store_page_io;
          Alcotest.test_case "small objects" `Quick store_objects;
          Alcotest.test_case "crash and recover" `Quick store_crash_recover;
        ] );
      ("properties", qsuite);
    ]
