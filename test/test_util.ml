(* Unit and property tests for treesls_util. *)

module Rng = Treesls_util.Rng
module Zipf = Treesls_util.Zipf
module Stats = Treesls_util.Stats
module Histogram = Treesls_util.Histogram
module Bits = Treesls_util.Bits
module Table = Treesls_util.Table

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Rng ---- *)

let rng_deterministic () =
  let a = Rng.create 1L and b = Rng.create 1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  check_bool "different seeds differ" false (Rng.int64 a = Rng.int64 b)

let rng_int_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let rng_float_bounds () =
  let r = Rng.create 4L in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let rng_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  let a = Rng.int64 child and b = Rng.int64 parent in
  check_bool "split stream differs from parent" false (a = b)

let rng_copy_preserves () =
  let r = Rng.create 6L in
  ignore (Rng.int64 r);
  let c = Rng.copy r in
  Alcotest.(check int64) "copy replays" (Rng.int64 r) (Rng.int64 c)

let rng_shuffle_permutation () =
  let r = Rng.create 7L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let rng_bool_balanced () =
  let r = Rng.create 8L in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr trues
  done;
  check_bool "roughly balanced" true (!trues > 4_500 && !trues < 5_500)

let rng_pick_member () =
  let r = Rng.create 9L in
  let a = [| 2; 4; 8 |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Rng.pick r a) a)
  done

(* ---- Zipf ---- *)

let zipf_bounds () =
  let r = Rng.create 10L in
  let z = Zipf.create ~n:100 r in
  for _ = 1 to 10_000 do
    let v = Zipf.next z in
    check_bool "in domain" true (v >= 0 && v < 100)
  done

let zipf_scrambled_bounds () =
  let r = Rng.create 11L in
  let z = Zipf.create ~n:1000 r in
  for _ = 1 to 10_000 do
    let v = Zipf.scrambled z in
    check_bool "in domain" true (v >= 0 && v < 1000)
  done

let zipf_skew () =
  let r = Rng.create 12L in
  let z = Zipf.create ~n:1000 r in
  let zero = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Zipf.next z = 0 then incr zero
  done;
  (* item 0 should receive far more than the uniform 1/1000 share *)
  check_bool "head is hot" true (!zero > n / 100)

let zipf_theta_effect () =
  let freq theta =
    let r = Rng.create 13L in
    let z = Zipf.create ~theta ~n:1000 r in
    let zero = ref 0 in
    for _ = 1 to 20_000 do
      if Zipf.next z = 0 then incr zero
    done;
    !zero
  in
  check_bool "higher theta is more skewed" true (freq 1.2 > freq 0.7)

(* ---- Stats ---- *)

let stats_empty () =
  let s = Stats.create () in
  check_int "count" 0 (Stats.count s);
  check_bool "is_empty" true (Stats.is_empty s);
  Alcotest.check_raises "percentile on empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.percentile s 50.0))

let stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "mean" 2.5 (Stats.mean s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 4.0 (Stats.max s);
  check_float "total" 10.0 (Stats.total s)

let stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0; 30.0 ];
  check_float "p50 is median" 20.0 (Stats.p50 s);
  check_float "p0 is min" 10.0 (Stats.percentile s 0.0);
  check_float "p100 is max" 30.0 (Stats.percentile s 100.0);
  check_float "p25 interpolates" 15.0 (Stats.percentile s 25.0)

let stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13809 (Stats.stddev s)

let stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.0;
  Stats.add b 3.0;
  let m = Stats.merge a b in
  check_int "merged count" 2 (Stats.count m);
  check_float "merged mean" 2.0 (Stats.mean m);
  check_int "a untouched" 1 (Stats.count a)

let stats_add_after_sort () =
  let s = Stats.create () in
  Stats.add s 5.0;
  check_float "max" 5.0 (Stats.max s);
  Stats.add s 1.0;
  check_float "min after re-sort" 1.0 (Stats.min s);
  check_float "max after re-sort" 5.0 (Stats.max s)

let stats_clear () =
  let s = Stats.create () in
  Stats.add s 1.0;
  Stats.clear s;
  check_int "cleared" 0 (Stats.count s)

let stats_opt_accessors () =
  let s = Stats.create () in
  check_bool "empty percentile_opt" true (Stats.percentile_opt s 50.0 = None);
  check_bool "empty min_opt" true (Stats.min_opt s = None);
  check_bool "empty max_opt" true (Stats.max_opt s = None);
  List.iter (Stats.add s) [ 10.0; 20.0 ];
  check_float "percentile_opt agrees" 15.0 (Option.get (Stats.percentile_opt s 50.0));
  check_float "min_opt agrees" 10.0 (Option.get (Stats.min_opt s));
  check_float "max_opt agrees" 20.0 (Option.get (Stats.max_opt s))

let stats_growth () =
  let s = Stats.create () in
  for i = 1 to 1000 do
    Stats.add s (float_of_int i)
  done;
  check_int "count" 1000 (Stats.count s);
  check_float "p50" 500.5 (Stats.p50 s)

(* ---- Histogram ---- *)

let hist_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "p50 of empty" 0 (Histogram.percentile h 50.0)

let hist_exact_small () =
  let h = Histogram.create () in
  (* values below sub_buckets are recorded exactly *)
  List.iter (Histogram.add h) [ 1; 2; 3; 4; 5 ];
  check_int "p50 small exact" 3 (Histogram.percentile h 50.0);
  check_int "max" 5 (Histogram.max_value h)

let hist_bounded_error () =
  let h = Histogram.create () in
  for v = 1 to 100_000 do
    Histogram.add h v
  done;
  let p50 = Histogram.percentile h 50.0 in
  (* log buckets with 16 sub-buckets: <= ~6.25% relative error *)
  check_bool "p50 within bucket error" true (p50 >= 50_000 && p50 <= 53_500);
  let p99 = Histogram.percentile h 99.0 in
  check_bool "p99 within bucket error" true (p99 >= 99_000 && p99 <= 106_000)

let hist_mean_total () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 10; 20; 30 ];
  check_int "total" 60 (Histogram.total h);
  check_float "mean" 20.0 (Histogram.mean h)

let hist_negative_clamped () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  check_int "clamped to zero" 0 (Histogram.percentile h 50.0)

let hist_percentile_is_recorded_value () =
  (* after the per-bucket min/max fix, a percentile is always one of the
     values actually recorded — never a synthetic bucket upper bound *)
  let h = Histogram.create () in
  let vals = [ 3; 17; 1_000; 123_456; 123_456; 999_999 ] in
  List.iter (Histogram.add h) vals;
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      check_bool (Printf.sprintf "p%.0f is a recorded value" p) true (List.mem v vals))
    [ 0.0; 25.0; 50.0; 75.0; 99.0; 100.0 ];
  check_int "p100 is the max" 999_999 (Histogram.percentile h 100.0);
  check_int "min_value" 3 (Histogram.min_value h)

let hist_clear () =
  let h = Histogram.create () in
  Histogram.add h 42;
  Histogram.clear h;
  check_int "count" 0 (Histogram.count h);
  check_int "max" 0 (Histogram.max_value h)

(* merge ~into must be indistinguishable from having observed both sample
   streams directly: counts, totals, mean, min/max, every percentile *)
let hist_merge_equals_direct () =
  let rng = Treesls_util.Rng.create 99L in
  let stream_a = List.init 500 (fun _ -> Treesls_util.Rng.int rng 1_000_000) in
  let stream_b = List.init 300 (fun _ -> 1 + Treesls_util.Rng.int rng 500) in
  let a = Histogram.create () and b = Histogram.create () and direct = Histogram.create () in
  List.iter (Histogram.add a) stream_a;
  List.iter (Histogram.add b) stream_b;
  List.iter (Histogram.add direct) (stream_a @ stream_b);
  Histogram.merge ~into:a b;
  check_int "count" (Histogram.count direct) (Histogram.count a);
  check_int "total" (Histogram.total direct) (Histogram.total a);
  check_float "mean" (Histogram.mean direct) (Histogram.mean a);
  check_int "min" (Histogram.min_value direct) (Histogram.min_value a);
  check_int "max" (Histogram.max_value direct) (Histogram.max_value a);
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "p%.1f" p)
        (Histogram.percentile direct p) (Histogram.percentile a p))
    [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ];
  (* src is unchanged *)
  check_int "src count" (List.length stream_b) (Histogram.count b)

let hist_merge_empty_cases () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 7;
  (* empty source: no-op *)
  Histogram.merge ~into:a b;
  check_int "count after empty src" 1 (Histogram.count a);
  check_int "min preserved" 7 (Histogram.min_value a);
  (* empty destination: becomes a copy of the source's distribution *)
  Histogram.merge ~into:b a;
  check_int "empty dst count" 1 (Histogram.count b);
  check_int "empty dst min" 7 (Histogram.min_value b);
  check_int "empty dst p50" 7 (Histogram.percentile b 50.0)

let hist_merge_mismatched_buckets () =
  let a = Histogram.create ~sub_buckets:16 () in
  let b = Histogram.create ~sub_buckets:32 () in
  Alcotest.check_raises "sub_buckets mismatch"
    (Invalid_argument "Histogram.merge: sub_buckets mismatch (16 vs 32)") (fun () ->
      Histogram.merge ~into:a b)

(* ---- Histogram.Windowed ---- *)

(* The contract Tseries/Interval_ctl rely on: a windowed percentile equals
   the percentile of a plain histogram that observed only the retained
   samples — rotation retires whole slices exactly, never partially. *)
let windowed_merge_equivalence () =
  let module W = Histogram.Windowed in
  let slices = 3 and rounds = 6 and per_round = 250 in
  let rng = Rng.create 11L in
  let data = Array.init rounds (fun _ -> Array.init per_round (fun _ -> Rng.int rng 1_000_000)) in
  let w = W.create ~slices () in
  for i = 0 to rounds - 1 do
    if i > 0 then W.rotate w;
    Array.iter (W.add w) data.(i)
  done;
  check_int "rotations" (rounds - 1) (W.rotations w);
  check_int "slices" slices (W.slices w);
  (* retained window = the last [slices] rounds *)
  let direct = Histogram.create () in
  for i = rounds - slices to rounds - 1 do
    Array.iter (Histogram.add direct) data.(i)
  done;
  check_int "count equals direct" (Histogram.count direct) (W.count w);
  check_float "mean equals direct" (Histogram.mean direct) (W.mean w);
  check_int "max equals direct" (Histogram.max_value direct) (W.max_value w);
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "p%.0f equals direct" p)
        (Histogram.percentile direct p) (W.percentile w p))
    [ 1.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ];
  (* merged returns a standalone histogram with the same view *)
  let m = W.merged w in
  check_int "merged count" (W.count w) (Histogram.count m);
  check_int "merged p99" (W.percentile w 99.0) (Histogram.percentile m 99.0);
  (* the current slice holds only the newest round *)
  check_int "current slice count" per_round (Histogram.count (W.current w));
  W.clear w;
  check_int "clear empties" 0 (W.count w)

let windowed_decay () =
  let module W = Histogram.Windowed in
  let w = W.create ~slices:2 () in
  W.add w 1_000_000;
  W.rotate w;
  W.add w 10;
  (* the old spike is still in the window of 2 slices... *)
  check_bool "old spike retained" true (W.max_value w >= 1_000_000);
  W.rotate w;
  W.add w 20;
  (* ...and gone after it rotates out *)
  check_bool "old spike aged out" true (W.max_value w < 1_000);
  check_int "only fresh samples" 2 (W.count w)

(* ---- Bits ---- *)

let bits_log2 () =
  check_int "log2 1" 0 (Bits.log2_int 1);
  check_int "log2 2" 1 (Bits.log2_int 2);
  check_int "log2 3" 1 (Bits.log2_int 3);
  check_int "log2 1024" 10 (Bits.log2_int 1024)

let bits_pow2 () =
  check_bool "1 is pow2" true (Bits.is_power_of_two 1);
  check_bool "6 is not" false (Bits.is_power_of_two 6);
  check_int "next pow2 of 5" 8 (Bits.next_power_of_two 5);
  check_int "next pow2 of 8" 8 (Bits.next_power_of_two 8);
  check_int "next pow2 of 1" 1 (Bits.next_power_of_two 1)

let bits_invalid () =
  Alcotest.check_raises "log2 0" (Invalid_argument "Bits.log2_int: non-positive") (fun () ->
      ignore (Bits.log2_int 0))

(* ---- Table ---- *)

let table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "1" ]; [ "y"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  check_int "rows + header + sep" 4 (List.length lines);
  (* all lines equal width *)
  match lines with
  | first :: rest ->
    List.iter (fun l -> check_int "aligned" (String.length first) (String.length l)) rest
  | [] -> Alcotest.fail "no output"

let table_formats () =
  check_string "us" "12.34" (Table.fmt_us 12.341);
  check_string "ratio" "2.20x" (Table.fmt_ratio 2.2);
  check_string "pct" "46%" (Table.fmt_pct 0.46)

(* ---- qcheck properties ---- *)

let prop_stats_percentile_bounds =
  QCheck.Test.make ~name:"stats: percentiles within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      QCheck.assume (xs <> []);
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let v = Stats.percentile s p in
      v >= Stats.min s -. 1e-9 && v <= Stats.max s +. 1e-9)

let prop_hist_percentile_monotone =
  QCheck.Test.make ~name:"histogram: percentile is monotone in p" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 1_000_000))
    (fun xs ->
      QCheck.assume (xs <> []);
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let prev = ref 0 in
      List.for_all
        (fun p ->
          let v = Histogram.percentile h p in
          let ok = v >= !prev in
          prev := v;
          ok)
        [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ])

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng: all residues hit" ~count:20
    QCheck.(int_range 2 10)
    (fun bound ->
      let r = Rng.create 99L in
      let seen = Array.make bound false in
      for _ = 1 to 1000 do
        seen.(Rng.int r bound) <- true
      done;
      Array.for_all Fun.id seen)

let prop_bits_next_pow2 =
  QCheck.Test.make ~name:"bits: next_power_of_two properties" ~count:500
    QCheck.(int_range 1 (1 lsl 30))
    (fun v ->
      let p = Bits.next_power_of_two v in
      Bits.is_power_of_two p && p >= v && (p = 1 || p / 2 < v))

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_stats_percentile_bounds; prop_hist_percentile_monotone; prop_rng_int_uniformish; prop_bits_next_pow2 ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick rng_float_bounds;
          Alcotest.test_case "split independent" `Quick rng_split_independent;
          Alcotest.test_case "copy preserves" `Quick rng_copy_preserves;
          Alcotest.test_case "shuffle permutation" `Quick rng_shuffle_permutation;
          Alcotest.test_case "bool balanced" `Quick rng_bool_balanced;
          Alcotest.test_case "pick member" `Quick rng_pick_member;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick zipf_bounds;
          Alcotest.test_case "scrambled bounds" `Quick zipf_scrambled_bounds;
          Alcotest.test_case "skew" `Quick zipf_skew;
          Alcotest.test_case "theta effect" `Quick zipf_theta_effect;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick stats_empty;
          Alcotest.test_case "basic" `Quick stats_basic;
          Alcotest.test_case "percentile interpolation" `Quick stats_percentile_interpolation;
          Alcotest.test_case "stddev" `Quick stats_stddev;
          Alcotest.test_case "merge" `Quick stats_merge;
          Alcotest.test_case "add after sort" `Quick stats_add_after_sort;
          Alcotest.test_case "opt accessors" `Quick stats_opt_accessors;
          Alcotest.test_case "clear" `Quick stats_clear;
          Alcotest.test_case "growth" `Quick stats_growth;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick hist_empty;
          Alcotest.test_case "exact small values" `Quick hist_exact_small;
          Alcotest.test_case "bounded error" `Quick hist_bounded_error;
          Alcotest.test_case "mean and total" `Quick hist_mean_total;
          Alcotest.test_case "negative clamped" `Quick hist_negative_clamped;
          Alcotest.test_case "percentile is a recorded value" `Quick
            hist_percentile_is_recorded_value;
          Alcotest.test_case "clear" `Quick hist_clear;
          Alcotest.test_case "merge equals direct observation" `Quick hist_merge_equals_direct;
          Alcotest.test_case "merge empty cases" `Quick hist_merge_empty_cases;
          Alcotest.test_case "merge mismatched sub_buckets" `Quick hist_merge_mismatched_buckets;
        ] );
      ( "windowed",
        [
          Alcotest.test_case "merge equivalence" `Quick windowed_merge_equivalence;
          Alcotest.test_case "slices decay" `Quick windowed_decay;
        ] );
      ( "bits",
        [
          Alcotest.test_case "log2" `Quick bits_log2;
          Alcotest.test_case "powers of two" `Quick bits_pow2;
          Alcotest.test_case "invalid input" `Quick bits_invalid;
        ] );
      ( "table",
        [
          Alcotest.test_case "render alignment" `Quick table_render;
          Alcotest.test_case "formatters" `Quick table_formats;
        ] );
      ("properties", qsuite);
    ]
