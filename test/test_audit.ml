(* Tests for the NVM state auditor (slsfsck): a clean system audits
   green, and each injected fault — a backup stamped above the committed
   version, an orphaned CPP half, a leaked buddy block, rollback state on
   an eternal PMO — yields exactly the expected violation.  Also pins the
   Report.pp format (every field, including per_kind_ns). *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Store = Treesls_nvm.Store
module Buddy = Treesls_nvm.Buddy
module Manager = Treesls_ckpt.Manager
module State = Treesls_ckpt.State
module Oroot = Treesls_ckpt.Oroot
module Ckpt_page = Treesls_ckpt.Ckpt_page
module Report = Treesls_ckpt.Report
module Eidetic = Treesls_ckpt.Eidetic
module Audit = Treesls_audit.Audit
module Census = Treesls_audit.Nvm_census

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let setup () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let proc = Kernel.create_process k ~name:"subject" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k proc ~pages:2 in
  let region = List.nth proc.Kernel.vms.Kobj.vs_regions 2 in
  let pmo_id = region.Kobj.vr_pmo.Kobj.pmo_id in
  let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
  (sys, k, proc, vpn, pmo_id, psz)

let write_epoch sys k proc vpn psz epoch =
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string epoch);
  ignore (System.checkpoint sys)

let find_cp sys pmo_id pno =
  let st = Manager.state (System.manager sys) in
  let oroot = Hashtbl.find st.State.oroots pmo_id in
  match Ckpt_page.find (Oroot.pages_exn oroot) pno with
  | Some cp -> cp
  | None -> Alcotest.fail "no checkpointed-page record"

(* The one [violation] in [r] (count pinned first so an unexpected extra
   violation fails loudly with its own message). *)
let the_violation r =
  (match r.Audit.violations with
  | [ _ ] -> ()
  | vs ->
    Alcotest.failf "expected exactly 1 violation, got %d:@\n%a" (List.length vs)
      (Format.pp_print_list Audit.pp_violation)
      vs);
  List.hd r.Audit.violations

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---- clean systems audit green ---- *)

let clean_system_audits_ok () =
  let sys, k, proc, vpn, _, psz = setup () in
  List.iter (write_epoch sys k proc vpn psz) [ "e1"; "e2"; "e3" ];
  let r = System.audit sys in
  check_bool "clean before crash" true (Audit.ok r);
  check_bool "objects walked" true (r.Audit.objects_checked > 0);
  check_bool "pages walked" true (r.Audit.pages_checked > 0);
  let _ = System.crash_and_recover sys in
  let r = System.audit sys in
  check_bool "clean after restore" true (Audit.ok r);
  let snap = System.metrics_snapshot sys in
  match List.assoc_opt "audit.runs" snap.Treesls_obs.Metrics.counters with
  | Some n -> check_int "audit.runs counted" 2 n
  | None -> Alcotest.fail "audit.runs counter missing"

(* ---- fault injection: backup version stamped above committed ---- *)

let flipped_backup_version_detected () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  write_epoch sys k proc vpn psz "golden";
  (* dirty the page so a CoW backup (b1) exists *)
  Kernel.write_bytes k proc ~vaddr:(vpn * psz) (Bytes.of_string "dirty!");
  let cp = find_cp sys pmo_id 0 in
  check_bool "CoW backup exists" true (cp.Ckpt_page.b1 <> None);
  let g = Manager.version (System.manager sys) in
  cp.Ckpt_page.b1_ver <- g + 5;
  let r = System.audit sys in
  let v = the_violation r in
  check_bool "error severity" true (v.Audit.severity = Audit.Error);
  check_string "subsystem" "pages" (Audit.subsystem_name v.Audit.subsystem);
  check_bool "message" true (contains ~sub:"above committed" v.Audit.message);
  check_bool "locates the page" true (v.Audit.obj_id = Some pmo_id && v.Audit.pno = Some 0)

(* ---- fault injection: orphaned CPP half ---- *)

(* Drive a page hot (two CoW faults cross the active-list threshold), so
   a checkpoint migrates it NVM->DRAM and leaves a CPP record. *)
let find_cpp sys =
  let found = ref None in
  Manager.iter_oroots (System.manager sys) (fun oid o ->
      match o.Oroot.pages with
      | None -> ()
      | Some cps ->
        Ckpt_page.iter
          (fun pno cp ->
            if !found = None && cp.Ckpt_page.b1 <> None && cp.Ckpt_page.b2 <> None then
              found := Some (oid, pno, cp))
          cps);
  !found

let orphaned_cpp_half_detected () =
  let sys, k, proc, vpn, _, psz = setup () in
  for i = 1 to 5 do
    write_epoch sys k proc vpn psz (Printf.sprintf "hot%d" i)
  done;
  match find_cpp sys with
  | None -> Alcotest.fail "no page migrated to DRAM (no CPP record)"
  | Some (oid, pno, cp) ->
    check_bool "baseline clean" true (Audit.ok (System.audit sys));
    (* lose one half of the backup pair; free the frame first so the only
       violation is the missing half, not an allocator leak *)
    Store.free_page (System.store sys) (Option.get cp.Ckpt_page.b1);
    cp.Ckpt_page.b1 <- None;
    cp.Ckpt_page.b1_ver <- 0;
    let r = System.audit sys in
    let v = the_violation r in
    check_bool "error severity" true (v.Audit.severity = Audit.Error);
    check_string "message" "DRAM-cached page missing a CPP backup half" v.Audit.message;
    check_bool "locates the page" true (v.Audit.obj_id = Some oid && v.Audit.pno = Some pno)

(* ---- fault injection: leaked buddy block ---- *)

let leaked_buddy_block_detected () =
  let sys, k, proc, vpn, _, psz = setup () in
  write_epoch sys k proc vpn psz "steady";
  (* allocate behind every subsystem's back: nothing claims the block *)
  (match Buddy.alloc (Store.buddy (System.store sys)) ~order:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "buddy exhausted");
  let r = System.audit sys in
  let v = the_violation r in
  check_bool "error severity" true (v.Audit.severity = Audit.Error);
  check_string "subsystem" "allocator" (Audit.subsystem_name v.Audit.subsystem);
  check_string "message" "live NVM block reachable from no subsystem (leak)" v.Audit.message;
  check_int "census counts the leak" 1 (Census.unaccounted_pages r.Audit.census)

(* ---- fault injection: rollback state on an eternal PMO ---- *)

let eternal_rollback_state_detected () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let p = Kernel.make_eternal_pmo k ~pages:1 in
  ignore (System.checkpoint sys);
  check_bool "baseline clean" true (Audit.ok (System.audit sys));
  (* rebuild the eternal PMO's ORoot with a (forbidden) page table; the
     [pages] field is immutable, so the injection swaps the whole record *)
  let st = Manager.state (System.manager sys) in
  let o = Hashtbl.find st.State.oroots p.Kobj.pmo_id in
  let o' =
    Oroot.create ~obj_id:o.Oroot.obj_id ~kind:o.Oroot.kind ~version:o.Oroot.first_ver
      ~has_pages:true
  in
  o'.Oroot.last_seen_ver <- o.Oroot.last_seen_ver;
  o'.Oroot.slot_a <- o.Oroot.slot_a;
  o'.Oroot.slot_b <- o.Oroot.slot_b;
  o'.Oroot.runtime <- o.Oroot.runtime;
  Hashtbl.replace st.State.oroots p.Kobj.pmo_id o';
  let r = System.audit sys in
  let v = the_violation r in
  check_bool "error severity" true (v.Audit.severity = Audit.Error);
  check_string "subsystem" "eternal" (Audit.subsystem_name v.Audit.subsystem);
  check_string "message" "eternal PMO carries rollback page records" v.Audit.message;
  check_bool "locates the PMO" true (v.Audit.obj_id = Some p.Kobj.pmo_id)

(* ---- census ---- *)

let census_balances () =
  let sys, k, proc, vpn, _, psz = setup () in
  List.iter (write_epoch sys k proc vpn psz) [ "c1"; "c2" ];
  let c = System.nvm_census sys in
  check_int "no unaccounted pages" 0 (Census.unaccounted_pages c);
  check_bool "runtime pages counted" true (c.Census.runtime_pages > 0);
  check_bool "cp records counted" true (c.Census.cp_records > 0);
  check_int "accounted = total - free" (c.Census.total_pages - c.Census.free_pages)
    (Census.accounted_pages c);
  let d = Census.diff c c in
  check_int "self-diff runtime" 0 d.Census.runtime_pages;
  check_int "self-diff free" 0 d.Census.free_pages;
  check_int "self-diff snapshot bytes" 0 d.Census.snapshot_bytes

(* ---- cross-version diff explorer ---- *)

let diff_explorer () =
  let sys, k, proc, vpn, pmo_id, psz = setup () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  write_epoch sys k proc vpn psz "aa";
  write_epoch sys k proc vpn psz "bb";
  let d = Audit.diff (System.manager sys) eid ~from_version:1 ~to_version:2 in
  check_int "from" 1 d.Audit.from_version;
  check_int "to" 2 d.Audit.to_version;
  check_bool "written pmo is mutated" true
    (List.exists
       (fun (id, _, c) -> id = pmo_id && c = Audit.Mutated)
       d.Audit.objects);
  (match List.find_opt (fun (id, pno, _) -> id = pmo_id && pno = 0) d.Audit.pages with
  | None -> Alcotest.fail "changed page not listed"
  | Some (_, _, cls) ->
    check_bool "page class known at the committed version" true (cls <> Audit.Unknown));
  Alcotest.check_raises "unarchived version rejected"
    (Invalid_argument "Audit.diff: version 99 not archived") (fun () ->
      ignore (Audit.diff (System.manager sys) eid ~from_version:99 ~to_version:2))

let diff_sees_added_objects () =
  let sys = System.boot () in
  let eid = Eidetic.attach ~max_versions:8 (System.manager sys) in
  ignore (System.checkpoint sys);
  let k = System.kernel sys in
  let p = Kernel.create_process k ~name:"newcomer" ~threads:1 ~prio:5 in
  ignore (System.checkpoint sys);
  let d = Audit.diff (System.manager sys) eid ~from_version:1 ~to_version:2 in
  check_bool "new process's cap group added" true
    (List.exists (fun (id, _, c) -> id = p.Kernel.pid && c = Audit.Added) d.Audit.objects)

(* ---- Report.pp: every field pinned ---- *)

let report_pp_pinned () =
  check_string "zero report"
    "ckpt v0: stw=0.0us (ipi=0.0 captree=0.0 others=0.0 | hybrid=0.0) objs=0(full 0) \
     skip=0 ro=0 sc=0 mig=+0/-0 cached=0 snap=0B nvm=0B/0B waf=0.00 drain=0/0.0us cowf=0"
    (Format.asprintf "%a" Report.pp Report.zero);
  let r =
    {
      Report.version = 7;
      stw_ns = 12_400;
      ipi_ns = 1_000;
      captree_ns = 8_000;
      others_ns = 400;
      hybrid_ns = 9_500;
      per_kind_ns = [ (Kobj.Pmo_k, 4_200); (Kobj.Thread_k, 800); (Kobj.Cap_group_k, 1_500) ];
      per_group =
        [
          ("shell", { Report.g_ns = 1_200; g_objects = 9; g_kinds = [ (Kobj.Pmo_k, 1_200) ] });
          ("memcached", { Report.g_ns = 5_100; g_objects = 20; g_kinds = [] });
        ];
      objects_walked = 42;
      full_objects = 5;
      objects_skipped = 78;
      pages_protected = 17;
      dram_dirty_copied = 3;
      migrated_in = 2;
      migrated_out = 1;
      cached_pages = 64;
      snapshot_bytes = 2_048;
      nvm_bytes_written = 163_840;
      logical_dirty_bytes = 81_920;
      pages_drained = 6;
      cow_faults = 2;
      drain_ns = 4_300;
    }
  in
  (* per_kind_ns prints sorted by kind name, per_group costliest-first,
     independent of walk order *)
  check_string "full report"
    "ckpt v7: stw=12.4us (ipi=1.0 captree=8.0 others=0.4 | hybrid=9.5) objs=42(full 5) \
     skip=78 ro=17 sc=3 mig=+2/-1 cached=64 snap=2048B nvm=163840B/81920B waf=2.00 \
     drain=6/4.3us cowf=2 kinds=[Cap Group=1500ns; PMO=4200ns; Thread=800ns] \
     groups=[memcached=5100ns/20; shell=1200ns/9]"
    (Format.asprintf "%a" Report.pp r);
  (* folded flamegraph lines: frames never contain spaces; unattributed
     captree remainder keeps the stacks summing to the phase totals *)
  Alcotest.(check (list string))
    "folded lines"
    [
      "ckpt;ipi 1000";
      "ckpt;captree;memcached 5100";
      "ckpt;captree;shell;PMO 1200";
      "ckpt;captree;unattributed 1700";
      "ckpt;others 400";
      "ckpt;hybrid_copy 9500";
    ]
    (Report.folded_lines r)

let () =
  Alcotest.run "audit"
    [
      ( "audit",
        [
          Alcotest.test_case "clean system audits ok" `Quick clean_system_audits_ok;
          Alcotest.test_case "flipped backup version detected" `Quick
            flipped_backup_version_detected;
          Alcotest.test_case "orphaned CPP half detected" `Quick orphaned_cpp_half_detected;
          Alcotest.test_case "leaked buddy block detected" `Quick leaked_buddy_block_detected;
          Alcotest.test_case "eternal rollback state detected" `Quick
            eternal_rollback_state_detected;
        ] );
      ( "census",
        [ Alcotest.test_case "census balances" `Quick census_balances ] );
      ( "diff",
        [
          Alcotest.test_case "diff explorer" `Quick diff_explorer;
          Alcotest.test_case "diff sees added objects" `Quick diff_sees_added_objects;
        ] );
      ( "report",
        [ Alcotest.test_case "pp pins every field" `Quick report_pp_pinned ] );
    ]
