(* Tests for external synchrony: the persistent ring buffer and the
   delayed-visibility network server (§5, Figure 8). *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Ring = Treesls_extsync.Ring
module Net_server = Treesls_extsync.Net_server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot_with_proc () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"netdrv") in
  (sys, k, proc)

(* ---- Ring ---- *)

let ring_basic_flow () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:4 ~slot_size:64 in
  check_bool "append" true (Ring.append r (Bytes.of_string "m1"));
  check_int "not yet visible" 0 (Ring.visible_count r);
  check_int "unpublished" 1 (Ring.unpublished_count r);
  check_bool "pop before publish" true (Ring.pop_visible r = None);
  Ring.on_checkpoint r;
  check_int "visible" 1 (Ring.visible_count r);
  (match Ring.pop_visible r with
  | Some m -> Alcotest.(check string) "content" "m1" (Bytes.to_string m)
  | None -> Alcotest.fail "nothing visible");
  check_int "drained" 0 (Ring.visible_count r)

let ring_fifo_order () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:8 ~slot_size:64 in
  List.iter (fun m -> ignore (Ring.append r (Bytes.of_string m))) [ "a"; "b"; "c" ];
  Ring.on_checkpoint r;
  let pop () = Bytes.to_string (Option.get (Ring.pop_visible r)) in
  (* evaluation order of list elements is unspecified: sequence explicitly *)
  let x = pop () in
  let y = pop () in
  let z = pop () in
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] [ x; y; z ]

let ring_full () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:2 ~slot_size:64 in
  check_bool "1" true (Ring.append r (Bytes.of_string "x"));
  check_bool "2" true (Ring.append r (Bytes.of_string "y"));
  check_bool "full" false (Ring.append r (Bytes.of_string "z"));
  Ring.on_checkpoint r;
  ignore (Ring.pop_visible r);
  check_bool "slot reclaimed" true (Ring.append r (Bytes.of_string "z"))

let ring_wraparound () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:3 ~slot_size:64 in
  for round = 0 to 9 do
    let m = Printf.sprintf "r%d" round in
    check_bool "append" true (Ring.append r (Bytes.of_string m));
    Ring.on_checkpoint r;
    match Ring.pop_visible r with
    | Some got -> Alcotest.(check string) "wrap content" m (Bytes.to_string got)
    | None -> Alcotest.fail "missing"
  done

let ring_restore_discards_unpublished () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:8 ~slot_size:64 in
  ignore (Ring.append r (Bytes.of_string "published"));
  Ring.on_checkpoint r;
  ignore (Ring.append r (Bytes.of_string "inflight"));
  Ring.on_restore r;
  check_int "unpublished dropped" 0 (Ring.unpublished_count r);
  (match Ring.pop_visible r with
  | Some m -> Alcotest.(check string) "published survives" "published" (Bytes.to_string m)
  | None -> Alcotest.fail "published lost");
  check_bool "nothing else" true (Ring.pop_visible r = None)

(* visible_writer correctness when the ring wraps BETWEEN two checkpoints:
   cursors keep counting past slot indices, so a batch that straddles the
   physical end of the slot array must still publish exactly and in order. *)
let ring_wrap_between_checkpoints () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:4 ~slot_size:64 in
  (* advance cursors to 3 of 4: the next batch of 3 wraps physically *)
  List.iter (fun m -> ignore (Ring.append r (Bytes.of_string m))) [ "w0"; "w1"; "w2" ];
  Ring.on_checkpoint r;
  let pop () = Bytes.to_string (Option.get (Ring.pop_visible r)) in
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list string)) "first batch" [ "w0"; "w1"; "w2" ] [ a; b; c ];
  (* slots 3,0,1 — wraps between the two checkpoints *)
  List.iter (fun m -> check_bool "append" true (Ring.append r (Bytes.of_string m)))
    [ "x0"; "x1"; "x2" ];
  check_int "nothing visible before commit" 0 (Ring.visible_count r);
  Ring.on_checkpoint r;
  check_int "all published" 3 (Ring.visible_count r);
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list string)) "wrapped batch in order" [ "x0"; "x1"; "x2" ] [ a; b; c ];
  check_bool "drained" true (Ring.pop_visible r = None)

(* restore discards EXACTLY the invisible suffix when the published part
   and the unpublished part sit on opposite sides of the physical wrap *)
let ring_restore_exact_suffix_wrapped () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:4 ~slot_size:64 in
  List.iter (fun m -> ignore (Ring.append r (Bytes.of_string m))) [ "a"; "b"; "c" ];
  Ring.on_checkpoint r;
  (* consume two, freeing slots 0-1; then fill past the wrap *)
  ignore (Ring.pop_visible r);
  ignore (Ring.pop_visible r);
  ignore (Ring.append r (Bytes.of_string "d"));
  (* slot 3 *)
  ignore (Ring.append r (Bytes.of_string "e"));
  (* slot 0 (wrapped) *)
  check_int "two unpublished" 2 (Ring.unpublished_count r);
  Ring.on_restore r;
  check_int "suffix dropped" 0 (Ring.unpublished_count r);
  (match Ring.pop_visible r with
  | Some m -> Alcotest.(check string) "published survivor intact" "c" (Bytes.to_string m)
  | None -> Alcotest.fail "published message lost");
  check_bool "nothing else" true (Ring.pop_visible r = None);
  (* the freed slots are reusable after the rollback *)
  check_bool "append after restore" true (Ring.append r (Bytes.of_string "f"));
  Ring.on_checkpoint r;
  (match Ring.pop_visible r with
  | Some m -> Alcotest.(check string) "post-restore append" "f" (Bytes.to_string m)
  | None -> Alcotest.fail "post-restore append lost")

let ring_counts_drops () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:2 ~slot_size:64 in
  check_int "no drops yet" 0 (Ring.dropped_count r);
  ignore (Ring.append r (Bytes.of_string "x"));
  ignore (Ring.append r (Bytes.of_string "y"));
  check_bool "full" false (Ring.append r (Bytes.of_string "z"));
  check_bool "still full" false (Ring.append r (Bytes.of_string "z2"));
  check_int "two drops counted" 2 (Ring.dropped_count r);
  Ring.on_checkpoint r;
  ignore (Ring.pop_visible r);
  check_bool "slot reclaimed" true (Ring.append r (Bytes.of_string "z"));
  check_int "count sticks" 2 (Ring.dropped_count r)

let ring_message_too_large () =
  let _, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:2 ~slot_size:32 in
  Alcotest.check_raises "too large" (Invalid_argument "Ring.append: message too large")
    (fun () -> ignore (Ring.append r (Bytes.make 40 'x')))

(* Regression: two equal-sized rings must reattach to their OWN eternal
   PMOs after a crash.  Resolving by page count alone handed both services
   the first matching PMO, so the second ring silently read the first
   ring's messages. *)
let ring_two_equal_rings_reattach () =
  let sys, k, proc = boot_with_proc () in
  let ra = Ring.create k proc ~name:"ring-a" ~slots:8 ~slot_size:64 in
  let rb = Ring.create k proc ~name:"ring-b" ~slots:8 ~slot_size:64 in
  ignore (Ring.append ra (Bytes.of_string "from-a"));
  ignore (Ring.append rb (Bytes.of_string "from-b"));
  Ring.on_checkpoint ra;
  Ring.on_checkpoint rb;
  ignore (System.checkpoint sys);
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"netdrv") in
  (* services reattach in creation order, as a fixed boot sequence would *)
  let ra2 = Ring.reattach k proc ~name:"ring-a" ~slots:8 ~slot_size:64 in
  let rb2 = Ring.reattach k proc ~name:"ring-b" ~slots:8 ~slot_size:64 in
  Ring.on_restore ra2;
  Ring.on_restore rb2;
  (match Ring.pop_visible ra2 with
  | Some m -> Alcotest.(check string) "first ring sees its own data" "from-a" (Bytes.to_string m)
  | None -> Alcotest.fail "ring-a lost its message");
  (match Ring.pop_visible rb2 with
  | Some m -> Alcotest.(check string) "second ring sees its own data" "from-b" (Bytes.to_string m)
  | None -> Alcotest.fail "ring-b lost its message");
  check_bool "ring-a drained" true (Ring.pop_visible ra2 = None);
  check_bool "ring-b drained" true (Ring.pop_visible rb2 = None)

let ring_survives_crash () =
  let sys, k, proc = boot_with_proc () in
  let r = Ring.create k proc ~name:"t" ~slots:8 ~slot_size:64 in
  ignore (Ring.append r (Bytes.of_string "keep"));
  Ring.on_checkpoint r;
  ignore (System.checkpoint sys);
  ignore (Ring.append r (Bytes.of_string "drop"));
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"netdrv") in
  let r2 = Ring.reattach k proc ~name:"t" ~slots:8 ~slot_size:64 in
  Ring.on_restore r2;
  (match Ring.pop_visible r2 with
  | Some m -> Alcotest.(check string) "published message persisted" "keep" (Bytes.to_string m)
  | None -> Alcotest.fail "lost across crash");
  check_int "in-flight discarded" 0 (Ring.unpublished_count r2)

(* ---- Net server ---- *)

let net_delivery_at_commit () =
  let sys, k, proc = boot_with_proc () in
  let delivered = ref [] in
  let net =
    Net_server.create k (System.manager sys) ~proc ~deliver:(fun ~client ~sent_ns:_ ~payload ->
        delivered := (client, Bytes.to_string payload) :: !delivered)
  in
  check_bool "send ok" true (Net_server.send net ~client:7 (Bytes.of_string "hi"));
  check_int "nothing before commit" 0 (List.length !delivered);
  check_int "pending" 1 (Net_server.pending net);
  ignore (System.checkpoint sys);
  Alcotest.(check (list (pair int string))) "delivered at commit" [ (7, "hi") ] !delivered;
  check_int "delivered counter" 1 (Net_server.delivered net)

let net_crash_discards_unpublished () =
  let sys, k, proc = boot_with_proc () in
  let count = ref 0 in
  let net =
    Net_server.create k (System.manager sys) ~proc ~deliver:(fun ~client:_ ~sent_ns:_ ~payload:_ ->
        incr count)
  in
  ignore net;
  ignore (System.checkpoint sys);
  ignore (Net_server.send net ~client:1 (Bytes.of_string "never"));
  System.crash sys;
  let _ = System.recover sys in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"netdrv") in
  let net2 =
    Net_server.reattach k (System.manager sys) ~proc ~deliver:(fun ~client:_ ~sent_ns:_ ~payload:_ ->
        incr count)
  in
  ignore (System.checkpoint sys);
  check_int "nothing ever delivered" 0 !count;
  check_int "ring empty" 0 (Net_server.pending net2)

(* The central external-synchrony guarantee: a reply is only ever released
   for state that survives any subsequent crash. *)
let net_no_reply_for_lost_state () =
  let sys, k, proc = boot_with_proc () in
  let app = Treesls_apps.Kv_app.launch ~keys_hint:1_000 sys Treesls_apps.Kv_app.Memcached in
  let released = ref [] in
  let net =
    Net_server.create k (System.manager sys) ~proc ~deliver:(fun ~client:_ ~sent_ns:_ ~payload ->
        released := Bytes.to_string payload :: !released)
  in
  (* op 1: set + queue reply; checkpoint commits both *)
  Treesls_apps.Kv_app.set app ~key:"alpha" ~value:"1";
  ignore (Net_server.send net ~client:0 (Bytes.of_string "alpha"));
  ignore (System.checkpoint sys);
  (* op 2: set + queue reply; CRASH before the next checkpoint *)
  Treesls_apps.Kv_app.set app ~key:"beta" ~value:"2";
  ignore (Net_server.send net ~client:0 (Bytes.of_string "beta"));
  System.crash sys;
  let _ = System.recover sys in
  Treesls_apps.Kv_app.refresh app;
  (* every released reply must refer to state present after recovery *)
  List.iter
    (fun key ->
      check_bool (key ^ " present") true (Treesls_apps.Kv_app.get app ~key <> None))
    !released;
  (* and beta was never released *)
  check_bool "beta not released" false (List.mem "beta" !released);
  check_bool "beta rolled back" true (Treesls_apps.Kv_app.get app ~key:"beta" = None)

let () =
  Alcotest.run "extsync"
    [
      ( "ring",
        [
          Alcotest.test_case "basic flow" `Quick ring_basic_flow;
          Alcotest.test_case "fifo order" `Quick ring_fifo_order;
          Alcotest.test_case "full ring" `Quick ring_full;
          Alcotest.test_case "wraparound" `Quick ring_wraparound;
          Alcotest.test_case "wrap between checkpoints" `Quick ring_wrap_between_checkpoints;
          Alcotest.test_case "restore drops exact wrapped suffix" `Quick
            ring_restore_exact_suffix_wrapped;
          Alcotest.test_case "counts drops when full" `Quick ring_counts_drops;
          Alcotest.test_case "restore discards unpublished" `Quick
            ring_restore_discards_unpublished;
          Alcotest.test_case "oversized message" `Quick ring_message_too_large;
          Alcotest.test_case "survives crash" `Quick ring_survives_crash;
          Alcotest.test_case "two equal-sized rings reattach distinctly" `Quick
            ring_two_equal_rings_reattach;
        ] );
      ( "net-server",
        [
          Alcotest.test_case "delivery at commit" `Quick net_delivery_at_commit;
          Alcotest.test_case "crash discards unpublished" `Quick net_crash_discards_unpublished;
          Alcotest.test_case "no reply for lost state" `Quick net_no_reply_for_lost_state;
        ] );
    ]
