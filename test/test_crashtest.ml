(* Tests for the crash-schedule explorer (lib/crashtest): a small clean
   sweep must pass everywhere, and a deliberately re-introduced journal
   recovery bug must be caught — the acceptance demonstration that the
   harness actually detects real recovery defects. *)

module C = Treesls_crashtest.Crashtest
module Warea = Treesls_nvm.Warea

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Small but representative: every phase, every site class, bounded caps.
   Kept well under the CLI/bench default so `dune runtest` stays quick. *)
let small_config =
  {
    C.default_config with
    C.ops = 40;
    commit_cap = 6;
    per_site_cap = 2;
    op_cap = 3;
  }

let clean_sweep () =
  let sweep = C.run small_config in
  check_bool "some journal commit points found" true (sweep.C.commit_points > 0);
  check_bool "some commit schedules ran" true (sweep.C.commit_schedules > 0);
  check_bool "checkpoint sites were hit" true (sweep.C.site_hits <> []);
  check_int "no failures" 0 (List.length sweep.C.failed);
  check_int "all schedules passed" (List.length sweep.C.results) sweep.C.passed;
  (* every passing schedule seals an RTO record with an exact phase sum *)
  let module Rto = Treesls_obs.Rto in
  let recoveries = ref 0 in
  List.iter
    (fun (r : C.result) ->
      match r.C.recovery with
      | None -> Alcotest.failf "passing schedule %s has no recovery" (C.point_to_string r.C.point)
      | Some rc ->
        incr recoveries;
        check_bool "recovery total positive" true (rc.Rto.r_total_ns > 0);
        check_int "phase sum exact" rc.Rto.r_total_ns
          (List.fold_left (fun a (_, ns) -> a + ns) 0 rc.Rto.r_phases + rc.Rto.r_untracked_ns))
    sweep.C.results;
  (* and the merged restore.* histograms carry one sample per recovery *)
  check_bool "rto_stats populated" true (sweep.C.rto_stats <> []);
  match List.assoc_opt "restore.total_ns" sweep.C.rto_stats with
  | None -> Alcotest.fail "restore.total_ns missing from rto_stats"
  | Some h -> check_int "one sample per recovery" !recoveries (Treesls_util.Histogram.count h)

(* Acceptance demo: re-introduce the classic journal-replay bug (recovery
   skips the redo), and the sweep MUST report failures — specifically on
   mid_apply schedules, the only phase whose recovery depends on the redo
   replaying a complete record over half-applied words. *)
let recovery_bug_caught () =
  let cfg =
    {
      small_config with
      C.recovery_bug = true;
      (* commit-point schedules are where the journal bug lives *)
      include_sites = false;
      include_op_crashes = false;
      commit_cap = 12;
    }
  in
  let sweep = C.run cfg in
  check_bool "sweep caught the recovery bug" true (List.length sweep.C.failed > 0);
  List.iter
    (fun (r : C.result) ->
      match r.C.point with
      | C.Commit (_, Warea.Mid_apply) -> ()
      | p ->
        Alcotest.failf "non-mid_apply schedule failed: %s (%s)" (C.point_to_string p)
          (C.outcome_to_string r.C.outcome))
    sweep.C.failed

let single_schedule_replay () =
  (* any commit point in the window replays deterministically *)
  let out = C.run_one small_config (C.Commit (3, Warea.Mid_apply)) in
  check_bool "replayed schedule passes" true (C.outcome_is_pass out)

let reproducer_roundtrip () =
  List.iter
    (fun p ->
      let s = C.reproducer small_config p in
      match C.parse_reproducer s with
      | Some (seed, ops, p') ->
        check_int "seed" small_config.C.seed seed;
        check_int "ops" small_config.C.ops ops;
        Alcotest.(check string) "point" (C.point_to_string p) (C.point_to_string p')
      | None -> Alcotest.failf "reproducer did not parse: %s" s)
    [
      C.Commit (57, Warea.Mid_apply);
      C.Site ("ckpt.publish", 2);
      C.Restore_site ("restore.begin", 9);
      C.Op_crash 14;
    ]

let point_string_rejects_garbage () =
  List.iter
    (fun s -> check_bool s true (C.point_of_string s = None))
    [ ""; "commit:x:mid_apply"; "commit:3:nope"; "site:only_one"; "op:NaN"; "weird:1:2" ]

let shrink_finds_smaller_failure () =
  let cfg = { small_config with C.recovery_bug = true } in
  (* find one failing mid_apply schedule, then shrink its trace prefix *)
  let sweep =
    C.run { cfg with C.include_sites = false; include_op_crashes = false; commit_cap = 12 }
  in
  match sweep.C.failed with
  | [] -> Alcotest.fail "expected a failure to shrink"
  | r :: _ ->
    let cfg' = C.shrink cfg r.C.point in
    check_bool "prefix no longer than original" true (cfg'.C.ops <= cfg.C.ops);
    check_bool "shrunk config still fails" true
      (not (C.outcome_is_pass (C.run_one cfg' r.C.point)))

let () =
  Alcotest.run "crashtest"
    [
      ( "sweep",
        [
          Alcotest.test_case "clean sweep has zero failures" `Slow clean_sweep;
          Alcotest.test_case "deliberate recovery bug is caught" `Slow recovery_bug_caught;
          Alcotest.test_case "single schedule replay" `Quick single_schedule_replay;
        ] );
      ( "reproducers",
        [
          Alcotest.test_case "roundtrip" `Quick reproducer_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick point_string_rejects_garbage;
        ] );
      ("shrink", [ Alcotest.test_case "shrinks a failing schedule" `Slow shrink_finds_smaller_failure ]);
    ]
