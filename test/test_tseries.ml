(* The crash-surviving metrics time-series (black box), the SLO watchdog
   over it, and the adaptive checkpoint-interval controller it feeds:
   ring/query/export semantics of Tseries, rule parsing and evaluation of
   Slo, the control-loop invariants of Interval_ctl, and the end-to-end
   property the crashtest sweep also enforces — the sample spine stays
   consecutive, time-ordered and version-monotone across crash/restore. *)

module Tseries = Treesls_obs.Tseries
module Slo = Treesls_obs.Slo
module Probe = Treesls_obs.Probe
module Interval_ctl = Treesls_ckpt.Interval_ctl
module System = Treesls.System
module Kv_app = Treesls_apps.Kv_app

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let count_substring s sub =
  let n = String.length sub in
  let rec go i acc =
    if n = 0 || i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* ---- Tseries: ring, queries, exports ---- *)

let record_and_query () =
  let ts = Tseries.create ~capacity:8 () in
  Tseries.record ts ~ts_ns:100 ~version:1 [ ("a", 10); ("b", 1) ];
  Tseries.record ts ~ts_ns:200 ~version:2 [ ("a", 20) ];
  Tseries.record ts ~ts_ns:300 ~version:3 [ ("a", 40); ("b", 3) ];
  check_int "total" 3 (Tseries.total ts);
  check_int "length" 3 (Tseries.length ts);
  check_int "two columns interned" 2 (Tseries.column_count ts);
  Alcotest.(check (list string)) "column order" [ "a"; "b" ] (Tseries.columns ts);
  let latest = Option.get (Tseries.latest ts) in
  check_int "latest seq" 2 latest.Tseries.sp_seq;
  check_int "latest version" 3 latest.Tseries.sp_version;
  Alcotest.(check (option int)) "value present" (Some 3) (Tseries.value ts latest "b");
  let middle = List.nth (Tseries.samples ts) 1 in
  Alcotest.(check (option int)) "absent cell is None" None (Tseries.value ts middle "b");
  Alcotest.(check (option int)) "unknown column is None" None (Tseries.value ts latest "zzz");
  Alcotest.(check (list int)) "series oldest-first" [ 10; 20; 40 ]
    (List.map snd (Tseries.series ts "a" ~n:3));
  Alcotest.(check (option int)) "delta over window" (Some 30) (Tseries.delta ts "a" ~n:3);
  (match Tseries.rate_per_s ts "a" ~n:3 with
  | Some r -> Alcotest.(check (float 1e-3)) "rate: 30 per 200ns" 1.5e8 r
  | None -> Alcotest.fail "rate_per_s");
  Alcotest.(check (option int)) "percentile_over p50" (Some 20)
    (Tseries.percentile_over ts "a" ~n:3 ~p:50.0);
  Alcotest.(check (option int)) "max_over" (Some 40) (Tseries.max_over ts "a" ~n:3);
  (match Tseries.mean_over ts "a" ~n:3 with
  | Some m -> Alcotest.(check (float 1e-9)) "mean_over" (70.0 /. 3.0) m
  | None -> Alcotest.fail "mean_over");
  match Tseries.ewma ts "a" ~alpha:0.5 with
  | Some e -> Alcotest.(check (float 1e-9)) "ewma oldest-first" 27.5 e
  | None -> Alcotest.fail "ewma"

let ring_wraparound () =
  let ts = Tseries.create ~capacity:4 () in
  for i = 0 to 9 do
    Tseries.record ts ~ts_ns:(i * 100) ~version:(i + 1) [ ("a", i) ]
  done;
  check_int "total keeps counting" 10 (Tseries.total ts);
  check_int "length capped" 4 (Tseries.length ts);
  check_int "dropped" 6 (Tseries.dropped ts);
  let seqs = List.map (fun s -> s.Tseries.sp_seq) (Tseries.samples ts) in
  Alcotest.(check (list int)) "oldest-first, contiguous" [ 6; 7; 8; 9 ] seqs;
  let w = List.map (fun s -> s.Tseries.sp_seq) (Tseries.window ts ~n:2) in
  Alcotest.(check (list int)) "window is the newest n" [ 8; 9 ] w

let fixed_column_budget () =
  let ts = Tseries.create ~capacity:4 ~max_cols:2 () in
  Tseries.record ts ~ts_ns:10 ~version:1 [ ("a", 1); ("b", 2); ("c", 3) ];
  check_int "columns capped" 2 (Tseries.column_count ts);
  check_bool "overflow counted" true (Tseries.cols_dropped ts > 0);
  let s = Option.get (Tseries.latest ts) in
  Alcotest.(check (option int)) "overflow column reads None" None (Tseries.value ts s "c");
  (* fixed-width slots: the backing PMO size never depends on data *)
  check_int "slot bytes" (8 * 5) (Tseries.slot_bytes ~max_cols:2);
  check_int "backing bytes" (4 * 8 * 5) (Tseries.backing_bytes ts)

let csv_export () =
  let ts = Tseries.create ~capacity:4 () in
  Tseries.record ts ~ts_ns:100 ~version:1 [ ("a", 10); ("b", 1) ];
  Tseries.record ts ~ts_ns:200 ~version:2 [ ("a", 20) ];
  check_string "header + absent cell empty" "seq,version,ts_ns,a,b\n0,1,100,10,1\n1,2,200,20,\n"
    (Tseries.to_csv ts)

let perfetto_counter_points () =
  let ts = Tseries.create ~capacity:3 () in
  for i = 0 to 4 do
    Tseries.record ts ~ts_ns:(i * 1000) ~version:(i + 1) [ ("x", i); ("y", i * 2) ]
  done;
  check_int "counter_points is retained length" 3 (Tseries.counter_points ts);
  let j = Tseries.to_perfetto_json ts in
  (* exactly one multi-value counter event per retained sample: exported
     points reconcile with the ring, never double-counting per column *)
  check_int "one ph:C event per sample" 3 (count_substring j "\"ph\":\"C\"");
  check_int "no per-column duplication" 3 (count_substring j "\"cat\":\"tseries\"");
  let json = Tseries.to_json ts in
  check_int "json carries the same samples" 3 (count_substring json "\"seq\":")

(* ---- Slo: rule grammar and evaluation ---- *)

let rule_roundtrip () =
  List.iter
    (fun text ->
      match Slo.rule_of_string text with
      | Ok r -> check_string "round-trips" text (Slo.rule_to_string r)
      | Error e -> Alcotest.failf "default rule %S failed to parse: %s" text e)
    Slo.default_rule_texts;
  (match Slo.rule_of_string "p99(enq2vis)<2*interval" with
  | Ok r ->
    check_string "whitespace normalised" "p99(enq2vis) < 2*interval" (Slo.rule_to_string r)
  | Error e -> Alcotest.failf "parse: %s" e);
  check_bool "garbage rejected" true (Result.is_error (Slo.rule_of_string "bogus <<"));
  check_bool "missing rhs rejected" true (Result.is_error (Slo.rule_of_string "waf <"))

let sample ts ~ts_ns ~version ~p99 ~waf ~dropped =
  Tseries.record ts ~ts_ns ~version
    [
      ("req.enq2vis.p99_ns", p99);
      ("req.enq2vis.n", 10);
      ("ckpt.nvm.waf", waf);
      ("extsync.ring.dropped", dropped);
    ]

let watchdog_eval () =
  let ts = Tseries.create () in
  let slo = Slo.create () in
  (* healthy sample: p99 under 2x interval, waf 2.5 < 3, no drop history
     yet (rate needs two samples -> skipped, not violated) *)
  sample ts ~ts_ns:1_000_000 ~version:1 ~p99:500_000 ~waf:250 ~dropped:0;
  let alerts = Slo.check slo ts ~interval_ns:(Some 1_000_000) in
  check_int "no alerts when healthy" 0 (List.length alerts);
  check_bool "healthy" true (Slo.healthy slo);
  (* violating sample: p99 3ms > 2x 1ms, waf 5.0 >= 3, drops ticking *)
  sample ts ~ts_ns:2_000_000 ~version:2 ~p99:3_000_000 ~waf:500 ~dropped:4;
  let alerts = Slo.check slo ts ~interval_ns:(Some 1_000_000) in
  check_int "all three rules fire" 3 (List.length alerts);
  check_bool "unhealthy" false (Slo.healthy slo);
  check_int "alerts retained" 3 (List.length (Slo.alerts slo));
  check_int "alerts_total" 3 (Slo.alerts_total slo);
  List.iter
    (fun (a : Slo.alert) ->
      check_int "alert stamped with the sample's version" 2 a.Slo.al_version;
      check_int "alert stamped with the sample's seq" 1 a.Slo.al_seq)
    alerts;
  (* the waf alias rescales the x100 gauge to the true ratio *)
  (match
     List.find_opt (fun (a : Slo.alert) -> a.Slo.al_rule = "waf < 3") (Slo.alerts slo)
   with
  | Some a ->
    Alcotest.(check (float 1e-9)) "waf value descaled" 5.0 a.Slo.al_value;
    Alcotest.(check (float 1e-9)) "waf bound" 3.0 a.Slo.al_bound
  | None -> Alcotest.fail "waf rule did not fire");
  (* unknown interval: the interval-relative rule is skipped, not fired *)
  sample ts ~ts_ns:3_000_000 ~version:3 ~p99:9_000_000 ~waf:100 ~dropped:4;
  let alerts = Slo.check slo ts ~interval_ns:None in
  check_int "interval rule skipped without an interval" 0 (List.length alerts)

let watchdog_no_data () =
  let ts = Tseries.create () in
  let slo = Slo.create () in
  check_int "empty tseries fires nothing" 0 (List.length (Slo.check slo ts ~interval_ns:None));
  check_int "but counts as a check" 1 (Slo.checks slo);
  check_bool "still healthy" true (Slo.healthy slo)

let watchdog_custom_rules () =
  let ts = Tseries.create () in
  let rule s = match Slo.rule_of_string s with Ok r -> r | Error e -> Alcotest.fail e in
  let slo = Slo.create ~rules:[ rule "stw < 10000" ] () in
  Tseries.record ts ~ts_ns:100 ~version:1 [ ("ckpt.stw_ns", 50_000) ];
  check_int "custom rule fires" 1 (List.length (Slo.check slo ts ~interval_ns:None));
  (match Slo.rule_report slo with
  | [ (text, evals, fires, Some _) ] ->
    check_string "report text" "stw < 10000" text;
    check_int "evals" 1 evals;
    check_int "fires" 1 fires
  | _ -> Alcotest.fail "rule_report shape");
  Slo.set_rules slo [ rule "stw < 100000" ];
  Tseries.record ts ~ts_ns:200 ~version:2 [ ("ckpt.stw_ns", 50_000) ];
  check_int "replaced rules evaluated" 0 (List.length (Slo.check slo ts ~interval_ns:None))

(* ---- Interval_ctl: control-loop invariants ---- *)

let ctl_cfg =
  {
    Interval_ctl.default_config with
    Interval_ctl.slo_p99_ns = 200_000;
    min_interval_ns = 100_000;
    max_interval_ns = 1_000_000;
  }

let busy ts ~p99 =
  Tseries.record ts ~ts_ns:0 ~version:1 [ ("req.enq2vis.n", 50); ("req.enq2vis.p99_ns", p99) ]

let controller_feedback () =
  (* overshoot: p99 2x the SLO -> shrink, bounded by the per-step rail *)
  let ctl = Interval_ctl.create ctl_cfg in
  let ts = Tseries.create () in
  busy ts ~p99:400_000;
  (match Interval_ctl.on_sample ctl ts ~drain_backlog:0 ~interval_ns:500_000 with
  | Some ns -> check_int "max shrink is halving" 250_000 ns
  | None -> Alcotest.fail "expected a retune");
  check_int "retune counted" 1 (Interval_ctl.retunes ctl);
  (* headroom: p99 at half the SLO -> grow *)
  let ctl = Interval_ctl.create ctl_cfg in
  let ts = Tseries.create () in
  busy ts ~p99:100_000;
  (match Interval_ctl.on_sample ctl ts ~drain_backlog:0 ~interval_ns:200_000 with
  | Some ns -> check_bool "grows on headroom" true (ns > 200_000 && ns <= 300_000)
  | None -> Alcotest.fail "expected growth");
  (* idle commit: released nothing -> fast back-off, clamped at the ceiling *)
  let ctl = Interval_ctl.create ctl_cfg in
  let ts = Tseries.create () in
  Tseries.record ts ~ts_ns:0 ~version:1 [ ("req.enq2vis.n", 0) ];
  (match Interval_ctl.on_sample ctl ts ~drain_backlog:0 ~interval_ns:800_000 with
  | Some ns -> check_int "idle growth clamps to max" 1_000_000 ns
  | None -> Alcotest.fail "expected idle growth");
  (* no sample yet -> no opinion *)
  let ctl = Interval_ctl.create ctl_cfg in
  check_bool "empty black box proposes nothing" true
    (Interval_ctl.on_sample ctl (Tseries.create ()) ~drain_backlog:0 ~interval_ns:500_000 = None)

let controller_pressure () =
  let ctl = Interval_ctl.create ctl_cfg in
  let th = ctl_cfg.Interval_ctl.pressure_threshold in
  (* a burst against a long idle interval clamps to the floor... *)
  (match Interval_ctl.on_pressure ctl ~drain_backlog:0 ~now_ns:1_000 ~pending:th ~interval_ns:1_000_000 with
  | Some ns -> check_int "clamps to the floor" 100_000 ns
  | None -> Alcotest.fail "expected the burst clamp");
  (* ...but only once: an immediate re-poll must not re-postpone the
     armed deadline (cooldown)... *)
  check_bool "cooldown blocks a re-fire" true
    (Interval_ctl.on_pressure ctl ~drain_backlog:0 ~now_ns:2_000 ~pending:(th * 2) ~interval_ns:1_000_000 = None);
  (* ...and once the interval sits near the floor the clamp stays off
     even after the cooldown (re-arm guard) *)
  check_bool "rearm guard near the floor" true
    (Interval_ctl.on_pressure ctl ~drain_backlog:0 ~now_ns:500_000 ~pending:(th * 2) ~interval_ns:150_000 = None);
  (* a later burst against a re-grown interval fires again *)
  (match Interval_ctl.on_pressure ctl ~drain_backlog:0 ~now_ns:900_000 ~pending:th ~interval_ns:900_000 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a second burst clamp");
  check_int "two clamps" 2 (Interval_ctl.pressure_clamps ctl);
  (* below threshold never fires *)
  check_bool "no pressure, no clamp" true
    (Interval_ctl.on_pressure ctl ~drain_backlog:0 ~now_ns:9_000_000 ~pending:(th - 1) ~interval_ns:1_000_000
    = None)

let controller_drain_hold () =
  (* overshoot while a drain backlog is outstanding: the controller must
     hold the interval (shrinking would re-enter the STW while copies are
     still owed), not shrink *)
  let ctl = Interval_ctl.create ctl_cfg in
  let ts = Tseries.create () in
  busy ts ~p99:400_000;
  check_bool "shrink suppressed while backlog nonzero" true
    (Interval_ctl.on_sample ctl ts ~drain_backlog:7 ~interval_ns:500_000 = None);
  check_int "held retune not counted" 0 (Interval_ctl.retunes ctl);
  (* ...but growth is still allowed: a longer interval only gives the
     drain more room *)
  let ctl = Interval_ctl.create ctl_cfg in
  let ts = Tseries.create () in
  busy ts ~p99:100_000;
  (match Interval_ctl.on_sample ctl ts ~drain_backlog:7 ~interval_ns:200_000 with
  | Some ns -> check_bool "growth allowed under backlog" true (ns > 200_000)
  | None -> Alcotest.fail "expected growth despite backlog");
  (* burst feedforward is likewise held while the backlog is nonzero *)
  let ctl = Interval_ctl.create ctl_cfg in
  let th = ctl_cfg.Interval_ctl.pressure_threshold in
  check_bool "pressure clamp held under backlog" true
    (Interval_ctl.on_pressure ctl ~drain_backlog:3 ~now_ns:1_000 ~pending:th
       ~interval_ns:1_000_000
    = None);
  (match
     Interval_ctl.on_pressure ctl ~drain_backlog:0 ~now_ns:2_000 ~pending:th
       ~interval_ns:1_000_000
   with
  | Some ns -> check_int "clamp fires once the backlog settles" 100_000 ns
  | None -> Alcotest.fail "expected the clamp after settle")

let controller_bad_config () =
  Alcotest.check_raises "inverted bounds rejected"
    (Invalid_argument "Interval_ctl.create: bad interval bounds") (fun () ->
      ignore
        (Interval_ctl.create
           { ctl_cfg with Interval_ctl.min_interval_ns = 10; max_interval_ns = 5 }))

(* ---- System: the spine survives crash/restore ---- *)

let spine_check samples =
  ignore
    (List.fold_left
       (fun prev (s : Tseries.sample) ->
         (match prev with
         | Some (p : Tseries.sample) ->
           check_int "seqs consecutive" (p.Tseries.sp_seq + 1) s.Tseries.sp_seq;
           check_bool "timestamps nondecreasing" true (s.Tseries.sp_ts_ns >= p.Tseries.sp_ts_ns);
           check_bool "versions strictly increasing" true
             (s.Tseries.sp_version > p.Tseries.sp_version)
         | None -> ());
         Some s)
       None samples)

let survives_crash () =
  let sys = System.boot ~interval_us:200 () in
  System.ensure_tseries_backing sys;
  let app = Kv_app.launch ~keys_hint:1_000 sys Kv_app.Memcached in
  for i = 0 to 399 do
    Kv_app.set_i app (i mod 1_000);
    ignore (System.tick sys)
  done;
  ignore (System.checkpoint sys);
  let ts = System.tseries sys in
  let total_before = Tseries.total ts in
  check_bool "samples recorded" true (total_before > 0);
  let last_before = Option.get (Tseries.latest ts) in
  (* every commit sampled the key derived signals *)
  check_bool "stw column present" true (Tseries.value ts last_before "ckpt.stw_ns" <> None);
  check_bool "watchdog ran at every commit" true
    (Slo.checks (System.slo sys) >= Tseries.total ts);
  ignore (System.crash_and_recover sys);
  Kv_app.refresh app;
  for i = 0 to 199 do
    Kv_app.set_i app (i mod 1_000);
    ignore (System.tick sys)
  done;
  ignore (System.checkpoint sys);
  check_bool "total is monotone across the crash" true (Tseries.total ts > total_before);
  spine_check (Tseries.samples ts);
  (* the pre-crash newest sample was not rewritten by recovery *)
  let retained =
    List.find_opt (fun s -> s.Tseries.sp_seq = last_before.Tseries.sp_seq) (Tseries.samples ts)
  in
  match retained with
  | Some s ->
    check_int "pre-crash sample version intact" last_before.Tseries.sp_version
      s.Tseries.sp_version;
    check_int "pre-crash sample timestamp intact" last_before.Tseries.sp_ts_ns
      s.Tseries.sp_ts_ns
  | None -> Alcotest.fail "pre-crash sample aged out of a 1024-slot ring unexpectedly"

let adaptive_feature_gate () =
  (* with the feature off (default), the controller never touches the
     interval even though samples flow *)
  let sys = System.boot ~interval_us:500 () in
  let app = Kv_app.launch ~keys_hint:100 sys Kv_app.Memcached in
  for i = 0 to 199 do
    Kv_app.set_i app (i mod 100);
    ignore (System.tick sys)
  done;
  ignore (System.checkpoint sys);
  check_int "no retunes with the feature off" 0
    (Interval_ctl.retunes (System.interval_ctl sys));
  check_int "no clamps with the feature off" 0
    (Interval_ctl.pressure_clamps (System.interval_ctl sys))

let () =
  Alcotest.run "tseries"
    [
      ( "tseries",
        [
          Alcotest.test_case "record and query" `Quick record_and_query;
          Alcotest.test_case "ring wraparound" `Quick ring_wraparound;
          Alcotest.test_case "fixed column budget" `Quick fixed_column_budget;
          Alcotest.test_case "csv export" `Quick csv_export;
          Alcotest.test_case "perfetto counter points reconcile" `Quick perfetto_counter_points;
        ] );
      ( "slo",
        [
          Alcotest.test_case "rule round-trip" `Quick rule_roundtrip;
          Alcotest.test_case "watchdog evaluation" `Quick watchdog_eval;
          Alcotest.test_case "no data is skipped" `Quick watchdog_no_data;
          Alcotest.test_case "custom rules" `Quick watchdog_custom_rules;
        ] );
      ( "interval_ctl",
        [
          Alcotest.test_case "feedback step" `Quick controller_feedback;
          Alcotest.test_case "pressure clamp fires once" `Quick controller_pressure;
          Alcotest.test_case "drain backlog holds the interval" `Quick controller_drain_hold;
          Alcotest.test_case "bad config" `Quick controller_bad_config;
        ] );
      ( "system",
        [
          Alcotest.test_case "spine survives crash/restore" `Quick survives_crash;
          Alcotest.test_case "adaptive feature gate" `Quick adaptive_feature_gate;
        ] );
    ]
