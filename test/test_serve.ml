(* Tests for the multi-tenant serving layer (lib/serve) and the
   cross-tenant crash bugs it flushed out: ring reattach by persisted name
   (never by creation order), the persistent delivered count, and
   per-subtree STW attribution staying exact under tenant churn. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Ipc = Treesls_kernel.Ipc
module Report = Treesls_ckpt.Report
module Net_server = Treesls_extsync.Net_server
module Kv_app = Treesls_apps.Kv_app
module Launchpad = Treesls_apps.Launchpad
module Tenant = Treesls_serve.Tenant
module Serve = Treesls_serve.Serve
module Rtrace = Treesls_obs.Rtrace
module Probe = Treesls_obs.Probe
module Ycsb = Treesls_workloads.Ycsb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Crash_mid_delivery

(* ---- the two-tenant reattach regression (ISSUE 10 satellite 1) ---- *)

(* Two tenants with equal-sized rings; tenant A crashes mid-delivery so a
   published reply stays parked on its ring, and the recovery reattaches
   B FIRST.  The old name-blind claim handed B the first equal-sized
   eternal PMO — A's ring, and with it A's parked backlog and delivered
   count.  Name-based claiming must give each tenant exactly its own
   backlog, in any reattach order. *)
let two_tenant_reattach_own_backlog () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let proc_a = Launchpad.make_proc sys ~name:"srv-a" ~threads:1 ~ipcs:1 ~notifs:1 ~extra_pmos:1 in
  let proc_b = Launchpad.make_proc sys ~name:"srv-b" ~threads:1 ~ipcs:1 ~notifs:1 ~extra_pmos:1 in
  let a_msgs = ref [] and b_msgs = ref [] in
  let a_fail = ref false in
  let deliver_a ~client:_ ~sent_ns:_ ~payload =
    a_msgs := Bytes.to_string payload :: !a_msgs;
    if !a_fail && List.length !a_msgs = 3 then raise Crash_mid_delivery
  in
  let deliver_b ~client:_ ~sent_ns:_ ~payload =
    b_msgs := Bytes.to_string payload :: !b_msgs
  in
  let mgr = System.manager sys in
  let net_a = Net_server.create ~slots:8 ~slot_size:32 ~name:"netsrv.a" k mgr ~proc:proc_a ~deliver:deliver_a in
  let net_b = Net_server.create ~slots:8 ~slot_size:32 ~name:"netsrv.b" k mgr ~proc:proc_b ~deliver:deliver_b in
  (* round 1: clean commit *)
  ignore (Net_server.send net_a ~client:0 (Bytes.of_string "a1"));
  ignore (Net_server.send net_a ~client:0 (Bytes.of_string "a2"));
  ignore (Net_server.send net_b ~client:0 (Bytes.of_string "b1"));
  ignore (System.checkpoint sys);
  check_int "A delivered 2" 2 (Net_server.delivered net_a);
  check_int "B delivered 1" 1 (Net_server.delivered net_b);
  (* round 2: A's delivery dies after "a3", so "a4" stays published but
     undrained on A's ring and B's callback never runs ("b2" unpublished) *)
  ignore (Net_server.send net_a ~client:0 (Bytes.of_string "a3"));
  ignore (Net_server.send net_a ~client:0 (Bytes.of_string "a4"));
  ignore (Net_server.send net_b ~client:0 (Bytes.of_string "b2"));
  a_fail := false;
  a_fail := true;
  (match System.checkpoint sys with
  | _ -> Alcotest.fail "checkpoint should have died mid-delivery"
  | exception Crash_mid_delivery -> ());
  System.crash sys;
  let _ = System.recover sys in
  let k = System.kernel sys in
  let mgr = System.manager sys in
  let proc_a = Launchpad.find_proc sys ~name:"srv-a" in
  let proc_b = Launchpad.find_proc sys ~name:"srv-b" in
  a_fail := false;
  (* reattach in REVERSE creation order: B must still get B's ring *)
  let net_b2 = Net_server.reattach ~slots:8 ~slot_size:32 ~name:"netsrv.b" k mgr ~proc:proc_b ~deliver:deliver_b in
  let net_a2 = Net_server.reattach ~slots:8 ~slot_size:32 ~name:"netsrv.a" k mgr ~proc:proc_a ~deliver:deliver_a in
  (* B: "b2" was never published -> discarded; nothing new delivered *)
  check_int "B delivered count persisted" 1 (Net_server.delivered net_b2);
  Alcotest.(check (list string)) "B drained only its own backlog" [ "b1" ] (List.rev !b_msgs);
  (* A: the parked "a4" is still owed; delivered count carries across *)
  check_int "A delivered count caught up" 4 (Net_server.delivered net_a2);
  Alcotest.(check (list string))
    "A drained only its own backlog" [ "a1"; "a2"; "a3"; "a4" ] (List.rev !a_msgs)

(* ---- delivered count persistence (ISSUE 10 satellite 3) ---- *)

let delivered_count_survives_crash () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"netdrv") in
  let count = ref 0 in
  let deliver ~client:_ ~sent_ns:_ ~payload:_ = incr count in
  let net = Net_server.create ~slots:8 ~slot_size:32 k (System.manager sys) ~proc ~deliver in
  for i = 1 to 5 do
    ignore (Net_server.send net ~client:i (Bytes.of_string "m"))
  done;
  ignore (System.checkpoint sys);
  check_int "delivered before crash" 5 (Net_server.delivered net);
  let _ = System.crash_and_recover sys in
  let k = System.kernel sys in
  let proc = Option.get (Kernel.find_process k ~name:"netdrv") in
  let net2 = Net_server.reattach ~slots:8 ~slot_size:32 k (System.manager sys) ~proc ~deliver in
  (* the regression: reattach used to reset this to 0 *)
  check_int "delivered survives restore" 5 (Net_server.delivered net2);
  ignore (Net_server.send net2 ~client:9 (Bytes.of_string "m"));
  ignore (System.checkpoint sys);
  check_int "and keeps counting monotonically" 6 (Net_server.delivered net2)

(* ---- Zipfian domain growth through the tenant mix ---- *)

let mix_draws_inserted_keys () =
  let rng = Treesls_util.Rng.create 11L in
  let gen =
    Ycsb.create (Ycsb.Mix { read = 0.45; update = 0.3; insert = 0.25 }) ~keys:2 rng
  in
  let saw_new = ref false in
  for _ = 1 to 2_000 do
    match Ycsb.next gen with
    | Ycsb.Read k | Ycsb.Update k -> if k >= 2 then saw_new := true
    | Ycsb.Insert _ -> ()
  done;
  check_bool "key space grew" true (Ycsb.key_count gen > 2);
  (* the frozen-domain bug: reads/updates could never land on a key
     inserted after create *)
  check_bool "a post-insert key was drawn" true !saw_new

(* ---- per_group attribution under tenant churn (ISSUE 10 satellite 4) ---- *)

let group_sum r =
  List.fold_left (fun acc (_, g) -> acc + g.Report.g_ns) 0 r.Report.per_group

let assert_groups_live_and_exact sys (r : Report.t) =
  let live = List.map (fun p -> p.Kernel.pname) (Kernel.processes (System.kernel sys)) in
  List.iter
    (fun (g, _) ->
      check_bool (Printf.sprintf "group %S is a live process or kernel" g) true
        (g = "kernel" || List.mem g live))
    r.Report.per_group;
  check_bool "no unattributed group" true (not (List.mem_assoc "unattributed" r.Report.per_group));
  check_int "per-group sum = captree" r.Report.captree_ns (group_sum r)

let per_group_churn () =
  let sys = System.boot () in
  ignore (System.checkpoint sys);
  (* create tenant -> checkpoint: its subtree must appear *)
  let apps =
    List.init 4 (fun i ->
        let app = Kv_app.launch ~keys_hint:64 ~value_size:32 ~instance:(Printf.sprintf "c%d" i) sys Kv_app.Shard in
        for j = 0 to 15 do
          Kv_app.set_i app j
        done;
        app)
  in
  let r1 = System.checkpoint sys in
  List.iter
    (fun app ->
      check_bool (Kv_app.server_name app ^ " attributed") true
        (List.mem_assoc (Kv_app.server_name app) r1.Report.per_group))
    apps;
  assert_groups_live_and_exact sys r1;
  (* destroy half the tenants -> checkpoint: their groups must vanish
     (the owner cache invalidates on procs_epoch, not on time) *)
  let doomed, kept = (List.filteri (fun i _ -> i < 2) apps, List.filteri (fun i _ -> i >= 2) apps) in
  let k = System.kernel sys in
  List.iter
    (fun app ->
      Kernel.exit_process k (Kv_app.server app);
      Kernel.exit_process k (Kv_app.client app))
    doomed;
  List.iter (fun app -> Kv_app.set_i app 1) kept;
  let r2 = System.checkpoint sys in
  List.iter
    (fun app ->
      check_bool (Kv_app.server_name app ^ " no stale group") false
        (List.mem_assoc (Kv_app.server_name app) r2.Report.per_group))
    doomed;
  List.iter
    (fun app ->
      check_bool (Kv_app.server_name app ^ " still attributed") true
        (List.mem_assoc (Kv_app.server_name app) r2.Report.per_group))
    kept;
  assert_groups_live_and_exact sys r2

(* A shared object whose first owner exits must be re-attributed to the
   surviving owner, not to the dead name lingering in a stale cache. *)
let per_group_shared_object_reattributed () =
  let sys = System.boot () in
  let k = System.kernel sys in
  let doomed = Kernel.create_process k ~name:"churn.doomed" ~threads:1 ~prio:1 in
  let keeper = Kernel.create_process k ~name:"churn.keeper" ~threads:1 ~prio:1 in
  let conn = Ipc.create_conn k ~client:doomed ~server:keeper in
  Ipc.register_handler k conn (fun _ -> Bytes.of_string "+");
  ignore (Ipc.call k conn (Bytes.of_string "x"));
  let r1 = System.checkpoint sys in
  check_bool "conn first attributed to its creator" true
    (List.mem_assoc "churn.doomed" r1.Report.per_group);
  Kernel.exit_process k doomed;
  ignore (Ipc.call k conn (Bytes.of_string "y"));
  let r2 = System.checkpoint sys in
  check_bool "dead owner no longer charged" false
    (List.mem_assoc "churn.doomed" r2.Report.per_group);
  check_bool "surviving owner charged instead" true
    (List.mem_assoc "churn.keeper" r2.Report.per_group);
  assert_groups_live_and_exact sys r2

(* ---- the serving harness end to end ---- *)

let serve_cfg ~tenants ~ops =
  {
    Serve.default_cfg with
    Serve.tenants;
    ops_per_tenant = ops;
    gap_ns = 8_000;
    tenant = { Tenant.default_cfg with Tenant.keys = 128 };
  }

let serve_smoke () =
  let sys = System.boot ~interval_us:500 () in
  let srv = Serve.create sys (serve_cfg ~tenants:2 ~ops:80) in
  Serve.run srv;
  let rows = Serve.rows srv in
  check_int "one row per tenant" 2 (List.length rows);
  List.iter
    (fun (r : Serve.row) ->
      check_bool (r.Serve.r_tenant ^ " released requests") true (r.Serve.r_enq2vis.Rtrace.s_count > 0);
      check_bool (r.Serve.r_tenant ^ " delivered replies") true (r.Serve.r_delivered > 0);
      check_bool (r.Serve.r_tenant ^ " charged some captree time") true (r.Serve.r_group_ns > 0))
    rows;
  check_bool "attribution sums to captree exactly" true (Serve.attribution_exact srv);
  check_bool "collected reports" true (Serve.reports srv <> []);
  (* tenants are isolated: per-tenant origins never mix *)
  let rt = Probe.rtrace (System.obs sys) in
  List.iter
    (fun o ->
      check_bool (o ^ " tagged by tenant") true
        (String.length o > 1 && o.[0] = 't' && String.contains o '/'))
    (Rtrace.origins rt)

let serve_crash_recover_continues () =
  let sys = System.boot ~interval_us:500 () in
  let srv = Serve.create sys (serve_cfg ~tenants:2 ~ops:40) in
  Serve.run srv;
  let before = List.map Tenant.delivered (Serve.tenants srv) in
  check_bool "some replies delivered" true (List.for_all (fun d -> d > 0) before);
  let _ = System.crash_and_recover sys in
  (* the "serve" service refreshed every tenant; delivered counts persist *)
  List.iter2
    (fun tn d -> check_int (Tenant.name tn ^ " delivered persists") d (Tenant.delivered tn))
    (Serve.tenants srv) before;
  (* and the system still serves: another round of ops releases replies *)
  for _ = 1 to 20 do
    List.iter Tenant.step (Serve.tenants srv);
    ignore (System.tick sys)
  done;
  System.drain_settle sys;
  ignore (System.checkpoint sys);
  List.iter2
    (fun tn d ->
      check_bool (Tenant.name tn ^ " delivers after recovery") true (Tenant.delivered tn > d))
    (Serve.tenants srv) before

let () =
  Alcotest.run "serve"
    [
      ( "reattach",
        [
          Alcotest.test_case "two tenants drain only their own backlog" `Quick
            two_tenant_reattach_own_backlog;
          Alcotest.test_case "delivered count survives crash" `Quick
            delivered_count_survives_crash;
        ] );
      ( "workload", [ Alcotest.test_case "mix draws inserted keys" `Quick mix_draws_inserted_keys ] );
      ( "attribution",
        [
          Alcotest.test_case "tenant churn leaves no stale groups" `Quick per_group_churn;
          Alcotest.test_case "shared object re-attributed on owner exit" `Quick
            per_group_shared_object_reattributed;
        ] );
      ( "harness",
        [
          Alcotest.test_case "two-tenant open loop" `Quick serve_smoke;
          Alcotest.test_case "crash/recover continues serving" `Quick
            serve_crash_recover_continues;
        ] );
    ]
