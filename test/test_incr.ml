(* Incremental capability-tree walk (DESIGN.md "Dirty-object tracking"):
   unit tests for the interval-indexed region resolver, fault injection
   into the hybrid-copy undo path, skip accounting, and a property test
   that a system checkpointed with skips restores byte-identically to an
   eagerly-walked twin driven by the same trace. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Ipc = Treesls_kernel.Ipc
module Manager = Treesls_ckpt.Manager
module State = Treesls_ckpt.State
module Checkpoint = Treesls_ckpt.Checkpoint
module Oroot = Treesls_ckpt.Oroot
module Ckpt_page = Treesls_ckpt.Ckpt_page
module Active_list = Treesls_ckpt.Active_list
module Snapshot = Treesls_ckpt.Snapshot
module Report = Treesls_ckpt.Report
module Audit = Treesls_audit.Audit
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Store = Treesls_nvm.Store
module Paddr = Treesls_nvm.Paddr
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let feats ~incr =
  let f = State.default_features () in
  f.State.incremental_walk <- incr;
  f

(* ---- region resolution: overlapping and adjacent regions ---- *)

let mk_pmo id pages = Kobj.make_pmo ~id ~pages ~kind:Kobj.Pmo_normal

let region pmo vpn pages =
  { Kobj.vr_vpn = vpn; vr_pages = pages; vr_pmo = pmo; vr_writable = true }

let check_resolve msg vms vpn expect =
  let got =
    match Checkpoint.resolve_region vms vpn with
    | Some (p, pno) -> Some (p.Kobj.pmo_id, pno)
    | None -> None
  in
  Alcotest.(check (option (pair int int))) msg expect got

let resolve_overlapping () =
  let a = mk_pmo 9001 8 and b = mk_pmo 9002 4 and c = mk_pmo 9003 2 in
  (* a covers 100..103, b covers 102..105 (overlap on 102..103), c is
     exactly adjacent at 106..107 *)
  let vms =
    {
      Kobj.vs_id = 910_001;
      vs_regions = [ region a 100 4; region b 102 4; region c 106 2 ];
      vs_gen = 1;
    }
  in
  check_resolve "below all regions" vms 99 None;
  check_resolve "first page of a" vms 100 (Some (9001, 0));
  check_resolve "interior of a" vms 101 (Some (9001, 1));
  (* on the overlap, the first region in list order must win *)
  check_resolve "overlap start -> a" vms 102 (Some (9001, 2));
  check_resolve "overlap end -> a" vms 103 (Some (9001, 3));
  check_resolve "b after a ends" vms 104 (Some (9002, 2));
  check_resolve "last page of b" vms 105 (Some (9002, 3));
  check_resolve "adjacent region c" vms 106 (Some (9003, 0));
  check_resolve "last page of c" vms 107 (Some (9003, 1));
  check_resolve "past all regions" vms 108 None

let resolve_list_order_and_invalidation () =
  let a = mk_pmo 9011 8 and b = mk_pmo 9012 4 in
  let vms =
    { Kobj.vs_id = 910_002; vs_regions = [ region a 100 8; region b 102 4 ]; vs_gen = 1 }
  in
  check_resolve "a shadows b entirely" vms 103 (Some (9011, 3));
  (* replace the region list: the cached index must not serve stale
     answers for the old list *)
  vms.Kobj.vs_regions <- [ region b 102 4; region a 100 8 ];
  check_resolve "b first now" vms 103 (Some (9012, 1));
  check_resolve "b covers 102..105" vms 105 (Some (9012, 3));
  check_resolve "a where b does not reach" vms 106 (Some (9011, 6));
  check_resolve "a below b's start" vms 100 (Some (9011, 0));
  vms.Kobj.vs_regions <- [];
  check_resolve "emptied region list" vms 103 None

let resolve_against_linear_model =
  QCheck.Test.make ~name:"resolve_region = first-match linear scan" ~count:200
    QCheck.(pair (int_bound 10_000) (int_range 1 12))
    (fun (seed, nregions) ->
      let rng = Rng.create (Int64.of_int seed) in
      let regions =
        List.init nregions (fun i ->
            region (mk_pmo (9100 + i) 16) (Rng.int rng 40) (1 + Rng.int rng 16))
      in
      let vms = { Kobj.vs_id = 920_000 + seed; vs_regions = regions; vs_gen = 1 } in
      let model vpn =
        match
          List.find_opt
            (fun r -> vpn >= r.Kobj.vr_vpn && vpn < r.Kobj.vr_vpn + r.Kobj.vr_pages)
            regions
        with
        | Some r -> Some (r.Kobj.vr_pmo.Kobj.pmo_id, vpn - r.Kobj.vr_vpn)
        | None -> None
      in
      let ok = ref true in
      for vpn = 0 to 60 do
        let got =
          match Checkpoint.resolve_region vms vpn with
          | Some (p, pno) -> Some (p.Kobj.pmo_id, pno)
          | None -> None
        in
        if got <> model vpn then ok := false
      done;
      !ok)

(* ---- hybrid copy: unexpected-CPP-state undo retires the entry ---- *)

let hybrid_undo_drops_entry () =
  let sys = System.boot ~features:(feats ~incr:true) () in
  let k = System.kernel sys in
  let st = Manager.state (System.manager sys) in
  let p = Kernel.create_process k ~name:"hot" ~threads:1 ~prio:5 in
  let vpn = Kernel.grow_heap k p ~pages:1 in
  Kernel.touch_write k p ~vpn;
  ignore (System.checkpoint sys);
  let pmo, pno =
    match Checkpoint.resolve_region p.Kernel.vms vpn with
    | Some r -> r
    | None -> Alcotest.fail "heap page not resolved"
  in
  let runtime = Option.get (Radix.get pmo.Kobj.pmo_radix pno) in
  check_bool "page starts on NVM" true (Paddr.is_nvm runtime);
  (* cross the hotness threshold: the next checkpoint will try to migrate
     the page into the DRAM cache *)
  let al = st.State.active in
  for _ = 1 to (Active_list.config al).Active_list.hot_threshold do
    Active_list.record_fault al pmo pno
  done;
  let on_list () =
    List.exists
      (fun e -> e.Active_list.e_pmo == pmo && e.Active_list.e_pno = pno)
      (Active_list.entries al)
  in
  check_bool "hot page appended" true (on_list ());
  (* Fault injection: give the CP record a second backup slot while the
     runtime still lives on NVM — the CP invariant (runtime-on-NVM implies
     b2 = None) no longer holds, so the migration must be undone. *)
  let oroot = Hashtbl.find st.State.oroots (Kobj.id (Kobj.Pmo pmo)) in
  let cp = Option.get (Ckpt_page.find (Oroot.pages_exn oroot) pno) in
  cp.Ckpt_page.b2 <- Some (Store.alloc_page (System.store sys));
  ignore (System.checkpoint sys);
  check_bool "undo: runtime stayed on NVM" true
    (match Radix.get pmo.Kobj.pmo_radix pno with
    | Some pa -> Paddr.is_nvm pa
    | None -> false);
  check_bool "undo: entry retired from the active list" false (on_list ());
  (* a retired entry must not come back and retry the doomed migration *)
  ignore (System.checkpoint sys);
  check_bool "no retry on later checkpoints" false (on_list ())

(* ---- skip accounting: conservation against an eager twin ---- *)

let conservation () =
  let mk incr =
    let sys = System.boot ~features:(feats ~incr) () in
    let k = System.kernel sys in
    let p = Kernel.create_process k ~name:"pool" ~threads:1 ~prio:5 in
    let ns = Array.init 40 (fun _ -> Kernel.create_notification k p) in
    (* the first post-boot walk is forced eager in both modes *)
    ignore (System.checkpoint sys);
    ignore (System.checkpoint sys);
    (sys, k, ns)
  in
  let sys_e, k_e, ns_e = mk false in
  let sys_i, k_i, ns_i = mk true in
  for i = 0 to 3 do
    Ipc.notify k_e ns_e.(i);
    Ipc.notify k_i ns_i.(i)
  done;
  let re = System.checkpoint sys_e in
  let ri = System.checkpoint sys_i in
  check_int "eager walk never skips" 0 re.Report.objects_skipped;
  check_int "walked + skipped = eager walked" re.Report.objects_walked
    (ri.Report.objects_walked + ri.Report.objects_skipped);
  check_bool "some objects were skipped" true (ri.Report.objects_skipped > 0);
  check_bool "the walk scales with the delta" true
    (ri.Report.objects_walked < re.Report.objects_walked / 2);
  (* nothing mutated since: a steady-state checkpoint skips the tree *)
  let r2 = System.checkpoint sys_i in
  check_bool "clean checkpoint walks (almost) nothing" true (r2.Report.objects_walked <= 4)

(* ---- restore equivalence under randomized mutation traces ---- *)

(* Whole-state fingerprint: every reachable object's snapshot plus the
   byte contents of every normal-PMO page, sorted by object id. *)
let fingerprint sys =
  let k = System.kernel sys in
  let store = System.store sys in
  let objs = ref [] in
  Kobj.iter_tree ~root:(Kernel.root k) (fun obj ->
      let pages =
        match obj with
        | Kobj.Pmo p when p.Kobj.pmo_kind = Kobj.Pmo_normal ->
          List.sort compare
            (Radix.fold
               (fun pno paddr acc ->
                 (pno, Bytes.to_string (Store.page_bytes store paddr)) :: acc)
               p.Kobj.pmo_radix [])
        | Kobj.Pmo _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
        | Kobj.Notification _ | Kobj.Irq_notification _ -> []
      in
      objs := (Kobj.id obj, Snapshot.take obj, pages) :: !objs);
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !objs

type op =
  | Notify of int
  | Wait of int
  | Touch of int
  | Write of int
  | Spawn
  | Exit of int
  | Grow
  | Ckpt

let gen_trace rng n =
  List.init n (fun _ ->
      match Rng.int rng 16 with
      | 0 | 1 | 2 | 3 -> Notify (Rng.int rng 1000)
      | 4 | 5 -> Wait (Rng.int rng 1000)
      | 6 | 7 | 8 -> Touch (Rng.int rng 1000)
      | 9 | 10 -> Write (Rng.int rng 1000)
      | 11 -> Spawn
      | 12 -> Exit (Rng.int rng 1000)
      | 13 -> Grow
      | _ -> Ckpt)

(* Replay [ops] on [sys] (deterministic: the same trace drives the eager
   and the incremental system identically), ending with a checkpoint so
   both commit the same state; returns the total skipped-object count. *)
let apply sys ops =
  let k () = System.kernel sys in
  let base = Kernel.create_process (k ()) ~name:"driver" ~threads:1 ~prio:5 in
  let heap0 = Kernel.grow_heap (k ()) base ~pages:4 in
  let heap_pages = 4 in
  let psz = (Kernel.cost (k ())).Treesls_sim.Cost.page_size in
  let notifs = ref [| Kernel.create_notification (k ()) base |] in
  let procs = ref [] in
  let spawned = ref 0 in
  let skipped = ref 0 in
  let ckpt () = skipped := !skipped + (System.checkpoint sys).Report.objects_skipped in
  List.iter
    (fun op ->
      match op with
      | Notify i -> Ipc.notify (k ()) !notifs.(i mod Array.length !notifs)
      | Wait i ->
        (* only consume pending signals — blocking the driver's single
           thread would wedge the trace *)
        let n = !notifs.(i mod Array.length !notifs) in
        if n.Kobj.nt_count > 0 then
          ignore (Ipc.wait (k ()) n (List.hd base.Kernel.threads))
      | Touch i -> Kernel.touch_write (k ()) base ~vpn:(heap0 + (i mod heap_pages))
      | Write i ->
        Kernel.write_bytes (k ()) base
          ~vaddr:(((heap0 + (i mod heap_pages)) * psz) + 64)
          (Bytes.of_string (Printf.sprintf "w%06d" i))
      | Spawn ->
        incr spawned;
        let p =
          Kernel.create_process (k ()) ~name:(Printf.sprintf "w%d" !spawned) ~threads:1
            ~prio:5
        in
        notifs := Array.append !notifs [| Kernel.create_notification (k ()) p |];
        procs := !procs @ [ p ]
      | Exit i -> (
        match !procs with
        | [] -> ()
        | ps ->
          let idx = i mod List.length ps in
          Kernel.exit_process (k ()) (List.nth ps idx);
          procs := List.filteri (fun j _ -> j <> idx) ps)
      | Grow ->
        let v = Kernel.grow_heap (k ()) base ~pages:2 in
        Kernel.touch_write (k ()) base ~vpn:v
      | Ckpt -> ckpt ())
    ops;
  ckpt ();
  !skipped

let prop_restore_equivalence =
  QCheck.Test.make
    ~name:"incremental restore = eager restore (random traces, audit clean)" ~count:8
    QCheck.(pair (int_bound 10_000) (int_range 60 160))
    (fun (seed, nops) ->
      let trace = gen_trace (Rng.create (Int64.of_int seed)) nops in
      let run incr =
        let sys = System.boot ~features:(feats ~incr) () in
        let skipped = apply sys trace in
        ignore (System.crash_and_recover sys);
        (sys, skipped)
      in
      let sys_e, skipped_e = run false in
      let sys_i, _skipped_i = run true in
      (* the two restored states must agree object-for-object and
         page-for-page, and both must satisfy the NVM auditor *)
      fingerprint sys_e = fingerprint sys_i
      && skipped_e = 0
      && Audit.errors (System.audit sys_e) = 0
      && Audit.errors (System.audit sys_i) = 0
      (* post-restore generations are untrusted: the first checkpoint
         after a restore must resync eagerly, skipping nothing *)
      && (System.checkpoint sys_i).Report.objects_skipped = 0)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ resolve_against_linear_model; prop_restore_equivalence ]

let () =
  Alcotest.run "incr"
    [
      ( "resolve-region",
        [
          Alcotest.test_case "overlapping + adjacent regions" `Quick resolve_overlapping;
          Alcotest.test_case "list order wins; cache invalidation" `Quick
            resolve_list_order_and_invalidation;
        ] );
      ("hybrid-undo", [ Alcotest.test_case "undo retires the entry" `Quick hybrid_undo_drops_entry ]);
      ("accounting", [ Alcotest.test_case "conservation vs eager twin" `Quick conservation ]);
      ("properties", qsuite);
    ]
