(* Asynchronous checkpoint drain (DESIGN.md §16): unit tests for the
   lazy/deadline drain state machine, CoW-fault resolution against a
   pending backlog, mid-drain crash recovery, and a property test that a
   system checkpointed with the async drain restores byte-identically to
   an eager twin driven by the same trace — under arbitrary interleavings
   of app writes and drain steps. *)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Ipc = Treesls_kernel.Ipc
module Manager = Treesls_ckpt.Manager
module State = Treesls_ckpt.State
module Checkpoint = Treesls_ckpt.Checkpoint
module Drain = Treesls_ckpt.Drain
module Active_list = Treesls_ckpt.Active_list
module Snapshot = Treesls_ckpt.Snapshot
module Report = Treesls_ckpt.Report
module Audit = Treesls_audit.Audit
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Store = Treesls_nvm.Store
module Rng = Treesls_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot_async ?(policy = Drain.Lazy) ?(batch = 1) () =
  let f = State.default_features () in
  f.State.async_drain <- true;
  let sys = System.boot ~features:f () in
  let mgr = System.manager sys in
  Manager.set_drain_policy mgr policy;
  Manager.set_drain_batch mgr batch;
  sys

(* Build [n] DRAM-cached heap pages that are dirty right now, so the next
   checkpoint has exactly [n] hybrid-copy candidates: fault each page onto
   the active list, checkpoint (migrates them into the DRAM cache), then
   re-dirty them. *)
let make_hot_pages sys n =
  let k = System.kernel sys in
  let st = Manager.state (System.manager sys) in
  let p = Kernel.create_process k ~name:"hot" ~threads:1 ~prio:5 in
  let vpn0 = Kernel.grow_heap k p ~pages:n in
  for i = 0 to n - 1 do
    Kernel.touch_write k p ~vpn:(vpn0 + i)
  done;
  ignore (System.checkpoint sys);
  System.drain_settle sys;
  let al = st.State.active in
  for i = 0 to n - 1 do
    match Checkpoint.resolve_region p.Kernel.vms (vpn0 + i) with
    | Some (pmo, pno) ->
      for _ = 1 to (Active_list.config al).Active_list.hot_threshold do
        Active_list.record_fault al pmo pno
      done
    | None -> Alcotest.fail "heap page not resolved"
  done;
  ignore (System.checkpoint sys);
  System.drain_settle sys;
  for i = 0 to n - 1 do
    Kernel.touch_write k p ~vpn:(vpn0 + i)
  done;
  (p, vpn0)

(* ---- the lazy drain window: stage, step, settle ---- *)

let lazy_staging () =
  let sys = boot_async ~batch:2 () in
  ignore (make_hot_pages sys 5);
  let v0 = System.version sys in
  let r = System.checkpoint sys in
  check_int "version not bumped at the STW" v0 (System.version sys);
  check_int "backlog = dirty cached pages" 5 (System.drain_backlog sys);
  check_int "nothing stop-and-copied inside the pause" 0 r.Report.dram_dirty_copied;
  check_int "staged report has no drained pages yet" 0 r.Report.pages_drained;
  check_int "first step copies one batch" 2 (Manager.drain_step (System.manager sys));
  check_int "backlog shrinks by the batch" 3 (System.drain_backlog sys);
  check_int "still not committed" v0 (System.version sys);
  ignore (Manager.drain_step (System.manager sys));
  ignore (Manager.drain_step (System.manager sys));
  check_int "backlog empty" 0 (System.drain_backlog sys);
  check_int "settle committed exactly one version" (v0 + 1) (System.version sys);
  (match Manager.last_report (System.manager sys) with
  | Some r -> check_int "drained pages accounted at settle" 5 r.Report.pages_drained
  | None -> Alcotest.fail "no last report");
  check_int "further steps are no-ops" 0 (Manager.drain_step (System.manager sys));
  check_int "audit clean" 0 (Audit.errors (System.audit sys))

let cow_fault_resolution () =
  let sys = boot_async ~batch:1 () in
  let p, vpn0 = make_hot_pages sys 4 in
  let k = System.kernel sys in
  let v0 = System.version sys in
  ignore (System.checkpoint sys);
  check_int "staged" 4 (System.drain_backlog sys);
  (* write a still-backlogged page: the fault resolves its owed copy *)
  Kernel.touch_write k p ~vpn:(vpn0 + 3);
  check_int "fault took the entry off the backlog" 3 (System.drain_backlog sys);
  (* the page reopened for writing: a second write is free *)
  Kernel.touch_write k p ~vpn:(vpn0 + 3);
  check_int "second write does not fault" 3 (System.drain_backlog sys);
  System.drain_settle sys;
  check_int "committed" (v0 + 1) (System.version sys);
  (match Manager.last_report (System.manager sys) with
  | Some r ->
    check_int "cow fault counted" 1 r.Report.cow_faults;
    check_int "every staged page accounted" 4 r.Report.pages_drained
  | None -> Alcotest.fail "no last report");
  check_int "audit clean" 0 (Audit.errors (System.audit sys))

let mid_drain_crash () =
  let sys = boot_async ~batch:1 () in
  ignore (make_hot_pages sys 4);
  let v0 = System.version sys in
  ignore (System.checkpoint sys);
  ignore (Manager.drain_step (System.manager sys));
  check_bool "window still pending" true (System.drain_backlog sys > 0);
  ignore (System.crash_and_recover sys);
  check_int "rolled back to the committed version" v0 (System.version sys);
  check_int "drain state abandoned by restore" 0 (System.drain_backlog sys);
  check_bool "no pending window after restore" true
    (Manager.drain_pending_version (System.manager sys) = None);
  check_int "audit clean" 0 (Audit.errors (System.audit sys));
  (* liveness: staging and settling still work end to end *)
  ignore (make_hot_pages sys 2);
  ignore (System.checkpoint sys);
  System.drain_settle sys;
  check_int "audit clean after new work" 0 (Audit.errors (System.audit sys))

let deadline_policy () =
  let sys = boot_async ~policy:Drain.Deadline () in
  ignore (make_hot_pages sys 6);
  let v0 = System.version sys in
  ignore (System.checkpoint sys);
  check_int "staged all" 6 (System.drain_backlog sys);
  check_int "first tick drains the whole backlog" 6
    (Manager.drain_step (System.manager sys));
  check_int "committed" (v0 + 1) (System.version sys);
  check_int "audit clean" 0 (Audit.errors (System.audit sys))

let eager_policy_fallback () =
  let sys = boot_async ~policy:Drain.Eager () in
  ignore (make_hot_pages sys 3);
  let v0 = System.version sys in
  let r = System.checkpoint sys in
  check_int "no backlog under the eager policy" 0 (System.drain_backlog sys);
  check_int "committed at the STW" (v0 + 1) (System.version sys);
  check_int "pages stop-and-copied inside the pause" 3 r.Report.dram_dirty_copied;
  check_int "nothing drained" 0 r.Report.pages_drained

(* ---- restore equivalence under randomized traces + drain interleaving ---- *)

(* Whole-state fingerprint, as in test_incr: every reachable object's
   snapshot plus the byte contents of every normal-PMO page. *)
let fingerprint sys =
  let k = System.kernel sys in
  let store = System.store sys in
  let objs = ref [] in
  Kobj.iter_tree ~root:(Kernel.root k) (fun obj ->
      let pages =
        match obj with
        | Kobj.Pmo p when p.Kobj.pmo_kind = Kobj.Pmo_normal ->
          List.sort compare
            (Radix.fold
               (fun pno paddr acc ->
                 (pno, Bytes.to_string (Store.page_bytes store paddr)) :: acc)
               p.Kobj.pmo_radix [])
        | Kobj.Pmo _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
        | Kobj.Notification _ | Kobj.Irq_notification _ -> []
      in
      objs := (Kobj.id obj, Snapshot.take obj, pages) :: !objs);
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !objs

type op =
  | Notify of int
  | Wait of int
  | Touch of int
  | Write of int
  | Spawn
  | Exit of int
  | Grow
  | Ckpt

let gen_trace rng n =
  List.init n (fun _ ->
      match Rng.int rng 16 with
      | 0 | 1 | 2 -> Notify (Rng.int rng 1000)
      | 3 | 4 -> Wait (Rng.int rng 1000)
      | 5 | 6 | 7 | 8 -> Touch (Rng.int rng 1000)
      | 9 | 10 -> Write (Rng.int rng 1000)
      | 11 -> Spawn
      | 12 -> Exit (Rng.int rng 1000)
      | 13 -> Grow
      | _ -> Ckpt)

(* Replay [ops] on [sys].  [drain_gap] interleaves drain steps with app
   work: one drain step every [drain_gap] ops (0 = never mid-trace, so
   the whole backlog resolves via CoW faults and the final settle) — a
   no-op on eager systems either way.  Ends with a checkpoint plus a
   forced settle so both twins commit the same final state. *)
let apply sys ~drain_gap ops =
  let k () = System.kernel sys in
  let base = Kernel.create_process (k ()) ~name:"driver" ~threads:1 ~prio:5 in
  let heap0 = Kernel.grow_heap (k ()) base ~pages:4 in
  let heap_pages = 4 in
  let psz = (Kernel.cost (k ())).Treesls_sim.Cost.page_size in
  let notifs = ref [| Kernel.create_notification (k ()) base |] in
  let procs = ref [] in
  let spawned = ref 0 in
  List.iteri
    (fun idx op ->
      (match op with
      | Notify i -> Ipc.notify (k ()) !notifs.(i mod Array.length !notifs)
      | Wait i ->
        let n = !notifs.(i mod Array.length !notifs) in
        if n.Kobj.nt_count > 0 then
          ignore (Ipc.wait (k ()) n (List.hd base.Kernel.threads))
      | Touch i -> Kernel.touch_write (k ()) base ~vpn:(heap0 + (i mod heap_pages))
      | Write i ->
        Kernel.write_bytes (k ()) base
          ~vaddr:(((heap0 + (i mod heap_pages)) * psz) + 64)
          (Bytes.of_string (Printf.sprintf "w%06d" i))
      | Spawn ->
        incr spawned;
        let p =
          Kernel.create_process (k ()) ~name:(Printf.sprintf "w%d" !spawned) ~threads:1
            ~prio:5
        in
        notifs := Array.append !notifs [| Kernel.create_notification (k ()) p |];
        procs := !procs @ [ p ]
      | Exit i -> (
        match !procs with
        | [] -> ()
        | ps ->
          let j = i mod List.length ps in
          Kernel.exit_process (k ()) (List.nth ps j);
          procs := List.filteri (fun l _ -> l <> j) ps)
      | Grow ->
        let v = Kernel.grow_heap (k ()) base ~pages:2 in
        Kernel.touch_write (k ()) base ~vpn:v
      | Ckpt -> ignore (System.checkpoint sys));
      if drain_gap > 0 && (idx + 1) mod drain_gap = 0 then System.drain_tick sys)
    ops;
  ignore (System.checkpoint sys);
  System.drain_settle sys

let prop_async_restore_equivalence =
  QCheck.Test.make
    ~name:"async-drain restore = eager restore (random traces, audit clean)" ~count:6
    QCheck.(pair (int_bound 10_000) (pair (int_range 60 160) (int_bound 5)))
    (fun (seed, (nops, drain_gap)) ->
      let trace = gen_trace (Rng.create (Int64.of_int seed)) nops in
      let run async =
        let f = State.default_features () in
        f.State.async_drain <- async;
        let sys =
          System.boot ~features:f
            ~active_cfg:{ Active_list.default_config with Active_list.hot_threshold = 1 }
            ()
        in
        if async then begin
          Manager.set_drain_policy (System.manager sys) Drain.Lazy;
          Manager.set_drain_batch (System.manager sys) 1
        end;
        apply sys ~drain_gap trace;
        ignore (System.crash_and_recover sys);
        sys
      in
      let sys_e = run false in
      let sys_a = run true in
      System.version sys_e = System.version sys_a
      && fingerprint sys_e = fingerprint sys_a
      && Audit.errors (System.audit sys_e) = 0
      && Audit.errors (System.audit sys_a) = 0)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_async_restore_equivalence ]

let () =
  Alcotest.run "drain"
    [
      ( "window",
        [
          Alcotest.test_case "lazy stage/step/settle" `Quick lazy_staging;
          Alcotest.test_case "cow fault resolves a backlogged page" `Quick cow_fault_resolution;
          Alcotest.test_case "mid-drain crash restores cleanly" `Quick mid_drain_crash;
          Alcotest.test_case "deadline drains in one tick" `Quick deadline_policy;
          Alcotest.test_case "eager policy falls back to stop-and-copy" `Quick
            eager_policy_fallback;
        ] );
      ("properties", qsuite);
    ]
