(* Command-line driver for the TreeSLS simulator.

     treesls_cli census                      object census of a booted system
     treesls_cli census -w redis -n 5000 --baseline default
                                             ... per-kind deltas vs the Default system
     treesls_cli run -w redis -n 20000       run a workload with 1ms checkpoints
     treesls_cli run -w memcached --crash 3  inject 3 power failures while running
     treesls_cli serve --tenants 16 --crash 2 multi-tenant serving; rings reclaimed by name
     treesls_cli ckpt                        one checkpoint, print the breakdown
     treesls_cli ckpt top -w redis -n 5000   STW time ranked by capability subtree
     treesls_cli ckpt top --folded stw.folded   ... plus collapsed stacks for flamegraphs
     treesls_cli trace -w redis --crash 1    run traced; dump the event ring
     treesls_cli trace --export t.json       ... and write Perfetto JSON
     treesls_cli trace --requests 20         newest request timelines (Rtrace)
     treesls_cli metrics -w sqlite --json    run and dump the metrics registry
     treesls_cli inspect -w sqlite           NVM census by subsystem (--json for JSON)
     treesls_cli wear top -w redis -n 5000   NVM write/wear telemetry: WAF, hottest pages
     treesls_cli wear --heatmap wear.csv     ... full per-page heatmap as CSV
     treesls_cli wear --json                 ... totals/subsystems/top pages as JSON
     treesls_cli doctor -w redis --crash 2   audit the persisted state (slsfsck)
     treesls_cli doctor --strict             ... exit 1 on warnings or SLO alerts too
     treesls_cli tseries -w redis --crash 1  crash-surviving metrics time-series (black box)
     treesls_cli tseries --csv bb.csv --perfetto bb.json    ... export it
     treesls_cli slo --rule "p99(enq2vis) < 2*interval"     watch an SLO rule over a run
     treesls_cli diff -w sqlite -n 3000      explain the last two checkpoint versions
     treesls_cli crashtest                   sweep every crash schedule of a smoke trace
     treesls_cli crashtest --schedule "seed=42;ops=280;commit:57:mid_apply"
                                             replay one failing schedule and shrink it
*)

module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module Census = Treesls_cap.Census
module Kobj = Treesls_cap.Kobj
module Rng = Treesls_util.Rng
module Trace = Treesls_obs.Trace
module Audit = Treesls_audit.Audit
module Nvm_census = Treesls_audit.Nvm_census
module Eidetic = Treesls_ckpt.Eidetic
open Cmdliner

let workloads =
  [
    ("memcached", `Memcached);
    ("redis", `Redis);
    ("sqlite", `Sqlite);
    ("leveldb", `Leveldb);
    ("rocksdb", `Rocksdb);
    ("wordcount", `Wordcount);
    ("kmeans", `Kmeans);
    ("pca", `Pca);
  ]

let launch sys rng = function
  | `Memcached ->
    let app = Treesls_apps.Kv_app.launch ~keys_hint:20_000 sys Treesls_apps.Kv_app.Memcached in
    ( (fun () -> Treesls_apps.Kv_app.set_i app (Rng.int rng 20_000)),
      fun () -> Treesls_apps.Kv_app.refresh app )
  | `Redis ->
    let app = Treesls_apps.Kv_app.launch ~keys_hint:20_000 sys Treesls_apps.Kv_app.Redis in
    ( (fun () -> Treesls_apps.Kv_app.set_i app (Rng.int rng 20_000)),
      fun () -> Treesls_apps.Kv_app.refresh app )
  | `Sqlite ->
    let app = Treesls_apps.Sqlite.launch sys in
    ((fun () -> Treesls_apps.Sqlite.step app rng), fun () -> Treesls_apps.Sqlite.refresh app)
  | `Leveldb ->
    let app = Treesls_apps.Lsm.launch sys Treesls_apps.Lsm.Leveldb in
    let n = ref 0 in
    ( (fun () ->
        Treesls_apps.Lsm.fillbatch app ~base:!n ~count:16;
        n := !n + 16),
      fun () -> Treesls_apps.Lsm.refresh app )
  | `Rocksdb ->
    let app = Treesls_apps.Lsm.launch sys Treesls_apps.Lsm.Rocksdb in
    let n = ref 0 in
    ( (fun () ->
        incr n;
        Treesls_apps.Lsm.put app ~key:(Printf.sprintf "k%08d" (Rng.int rng 50_000))
          ~value:(String.make 100 'v')),
      fun () -> Treesls_apps.Lsm.refresh app )
  | (`Wordcount | `Kmeans | `Pca) as kind ->
    let kind =
      match kind with
      | `Wordcount -> Treesls_apps.Phoenix.Wordcount
      | `Kmeans -> Treesls_apps.Phoenix.Kmeans
      | `Pca -> Treesls_apps.Phoenix.Pca
    in
    let app = Treesls_apps.Phoenix.launch sys kind in
    ((fun () -> Treesls_apps.Phoenix.step app rng), fun () -> Treesls_apps.Phoenix.refresh app)

let print_census sys =
  let c = Census.collect ~root:(Kernel.root (System.kernel sys)) in
  Printf.printf "cap groups    %d\nthreads       %d\nipc conns     %d\nnotifications %d\n"
    c.Census.cap_groups c.Census.threads c.Census.ipcs c.Census.notifications;
  Printf.printf "pmos          %d\nvm spaces     %d\nirqs          %d\napp pages     %d\n"
    c.Census.pmos c.Census.vmspaces c.Census.irqs c.Census.app_pages

(* Shared argument terms and run loop for the run/trace/metrics commands. *)

let workload_arg =
  Arg.(
    value
    & opt (enum workloads) `Memcached
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to run (memcached, redis, ...)")

let ops_arg =
  Arg.(value & opt int 20_000 & info [ "n"; "ops" ] ~docv:"N" ~doc:"Operations to run")

let interval_arg =
  Arg.(
    value & opt int 1000
    & info [ "i"; "interval-us" ] ~docv:"US" ~doc:"Checkpoint interval in microseconds (0 = off)")

let crashes_arg =
  Arg.(
    value & opt int 0 & info [ "crash" ] ~docv:"K" ~doc:"Inject K evenly spaced power failures")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Random seed")

let boot_configured interval =
  let sys = System.boot ~interval_us:(max 1 interval) () in
  if interval = 0 then System.set_interval_us sys None;
  sys

(* Drive [ops] workload operations with periodic checkpoints and [crashes]
   evenly spaced power failures. *)
let drive sys ~workload ~ops ~crashes ~seed =
  let rng = Rng.create (Int64.of_int seed) in
  let step, refresh = launch sys rng workload in
  let crash_every = if crashes > 0 then ops / (crashes + 1) else max_int in
  for i = 1 to ops do
    step ();
    ignore (System.tick sys);
    if crashes > 0 && i mod crash_every = 0 && System.version sys > 0 then begin
      let r = System.crash_and_recover sys in
      refresh ();
      Printf.printf "crash at op %d: rolled back to v%d (%d objects)\n%!" i
        r.Treesls_ckpt.Restore.version r.Treesls_ckpt.Restore.restored_objects
    end
  done

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text")

(* Sum a run's reports into one aggregate for the `ckpt top` view and the
   folded flamegraph export. *)
let aggregate_reports reports =
  let merge_assoc l acc =
    List.fold_left
      (fun acc (k, v) -> (k, v + Option.value ~default:0 (List.assoc_opt k acc)) :: List.remove_assoc k acc)
      acc l
  in
  List.fold_left
    (fun acc (r : Report.t) ->
      {
        acc with
        Report.version = r.Report.version;
        stw_ns = acc.Report.stw_ns + r.Report.stw_ns;
        ipi_ns = acc.Report.ipi_ns + r.Report.ipi_ns;
        captree_ns = acc.Report.captree_ns + r.Report.captree_ns;
        others_ns = acc.Report.others_ns + r.Report.others_ns;
        hybrid_ns = acc.Report.hybrid_ns + r.Report.hybrid_ns;
        per_kind_ns = merge_assoc r.Report.per_kind_ns acc.Report.per_kind_ns;
        per_group =
          List.fold_left
            (fun groups (name, g) ->
              let prev =
                Option.value
                  ~default:{ Report.g_ns = 0; g_objects = 0; g_kinds = [] }
                  (List.assoc_opt name groups)
              in
              ( name,
                {
                  Report.g_ns = prev.Report.g_ns + g.Report.g_ns;
                  g_objects = prev.Report.g_objects + g.Report.g_objects;
                  g_kinds = merge_assoc g.Report.g_kinds prev.Report.g_kinds;
                } )
              :: List.remove_assoc name groups)
            acc.Report.per_group r.Report.per_group;
        objects_walked = acc.Report.objects_walked + r.Report.objects_walked;
        pages_drained = acc.Report.pages_drained + r.Report.pages_drained;
        cow_faults = acc.Report.cow_faults + r.Report.cow_faults;
        drain_ns = acc.Report.drain_ns + r.Report.drain_ns;
      })
    Report.zero reports

let ckpt_cmd =
  let action =
    Arg.(
      value
      & pos 0 (enum [ ("breakdown", `Breakdown); ("top", `Top) ]) `Breakdown
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,breakdown): one full + one incremental checkpoint with phase breakdowns. \
             $(b,top): run a workload and rank capability subtrees (process groups) by the \
             STW time their objects cost.")
  in
  let top_n =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Rows to show in the top view")
  in
  let folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write collapsed-stack lines (aggregated over the run's checkpoints) to FILE — \
             feed to flamegraph.pl or speedscope")
  in
  let run action workload ops interval seed top_n folded =
    match action with
    | `Breakdown ->
      let sys = System.boot () in
      let r1 = System.checkpoint sys in
      let r2 = System.checkpoint sys in
      Format.printf "full:        %a@." Report.pp r1;
      Format.printf "incremental: %a@." Report.pp r2
    | `Top ->
      let sys = boot_configured interval in
      let rng = Rng.create (Int64.of_int seed) in
      let step, _refresh = launch sys rng workload in
      let reports = ref [] in
      for _ = 1 to ops do
        step ();
        match System.tick sys with Some r -> reports := r :: !reports | None -> ()
      done;
      reports := System.checkpoint sys :: !reports;
      let n_ckpt = List.length !reports in
      let agg = aggregate_reports !reports in
      let total_captree = max 1 agg.Report.captree_ns in
      Printf.printf "%d checkpoints, %.1fus STW total (captree %.1fus); by capability subtree:\n"
        n_ckpt
        (float_of_int agg.Report.stw_ns /. 1e3)
        (float_of_int agg.Report.captree_ns /. 1e3);
      if agg.Report.pages_drained > 0 || agg.Report.cow_faults > 0 then
        Printf.printf
          "async drain: %d pages off the STW path (%.1fus background), %d CoW faults\n"
          agg.Report.pages_drained
          (float_of_int agg.Report.drain_ns /. 1e3)
          agg.Report.cow_faults;
      print_newline ();
      Printf.printf "  %-16s %12s %12s %8s %8s\n" "group" "captree (us)" "us/ckpt" "objs/ck"
        "% walk";
      List.iteri
        (fun i (name, (g : Report.group_cost)) ->
          if i < top_n then
            Printf.printf "  %-16s %12.1f %12.2f %8.1f %7.1f%%\n" name
              (float_of_int g.Report.g_ns /. 1e3)
              (float_of_int g.Report.g_ns /. 1e3 /. float_of_int n_ckpt)
              (float_of_int g.Report.g_objects /. float_of_int n_ckpt)
              (100.0 *. float_of_int g.Report.g_ns /. float_of_int total_captree))
        (Report.sorted_groups agg);
      (match folded with
      | Some path ->
        let oc = open_out path in
        List.iter (fun l -> output_string oc (l ^ "\n")) (Report.folded_lines agg);
        close_out oc;
        Printf.printf "\nwrote %s (collapsed stacks; render with flamegraph.pl)\n" path
      | None -> ())
  in
  Cmd.v
    (Cmd.info "ckpt"
       ~doc:
         "Checkpoint cost views: phase breakdown, or STW attribution by capability subtree \
          ($(b,top)) with an optional collapsed-stack export for flamegraphs")
    Term.(const run $ action $ workload_arg $ ops_arg $ interval_arg $ seed_arg $ top_n $ folded)


let census_cmd =
  let ops0 =
    Arg.(
      value & opt int 0
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Workload operations to run first (0 = none)")
  in
  let baseline =
    Arg.(
      value
      & opt (some (enum [ ("default", `Default) ])) None
      & info [ "baseline" ] ~docv:"NAME"
          ~doc:
            "Also print per-kind object deltas against a freshly booted baseline system \
             (only $(b,default) is available)")
  in
  let run workload ops interval seed baseline =
    let sys = boot_configured interval in
    if ops > 0 then drive sys ~workload ~ops ~crashes:0 ~seed;
    print_census sys;
    match baseline with
    | None -> ()
    | Some `Default ->
      let base = Census.collect ~root:(Kernel.root (System.kernel (System.boot ()))) in
      let cur = Census.collect ~root:(Kernel.root (System.kernel sys)) in
      let d = Census.diff cur base in
      Printf.printf "\nper-kind deltas vs default baseline:\n";
      List.iter
        (fun kind -> Printf.printf "  %-13s %+d\n" (Kobj.kind_name kind) (Census.count d kind))
        Kobj.all_kinds;
      Printf.printf "  %-13s %+d\n" "app pages" d.Census.app_pages
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Print the object census of a booted system, optionally after running a workload \
          and relative to the Default baseline (paper Table 2)")
    Term.(const run $ workload_arg $ ops0 $ interval_arg $ seed_arg $ baseline)

let inspect_cmd =
  let run workload ops interval crashes seed json =
    let sys = boot_configured interval in
    drive sys ~workload ~ops ~crashes ~seed;
    let c = System.nvm_census sys in
    if json then print_endline (Nvm_census.to_json c) else Format.printf "%a@?" Nvm_census.pp c
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Run a workload, then price the persisted state: NVM consumption by subsystem")
    Term.(const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg $ json_arg)

let doctor_cmd =
  let module Slo = Treesls_obs.Slo in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Treat warning-severity findings as failures: exit 1 when the audit reports \
             warnings (wear health) or the SLO watchdog fired alerts during the run. \
             Error-severity violations still exit 2.")
  in
  let run workload ops interval crashes seed strict json =
    let sys = boot_configured interval in
    drive sys ~workload ~ops ~crashes ~seed;
    let r = System.audit ~wear:Audit.default_wear_thresholds sys in
    let slo = System.slo sys in
    if json then begin
      print_endline (Audit.to_json r);
      print_endline (Slo.to_json slo)
    end
    else begin
      Format.printf "%a@." Audit.pp r;
      Format.printf "%a@." Slo.pp slo
    end;
    if Audit.errors r > 0 then exit 2;
    if strict && (Audit.warnings r > 0 || Slo.alerts_total slo > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Run a workload, then audit the persisted state against the checkpoint invariants \
          (slsfsck) plus warning-severity wear-health checks (write amplification, wear \
          skew, unattributed NVM writes) and the SLO watchdog's health report; exits 2 on \
          any error-severity violation, and with $(b,--strict) exits 1 on warnings or SLO \
          alerts")
    Term.(
      const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg $ strict
      $ json_arg)

let tseries_cmd =
  let module Tseries = Treesls_obs.Tseries in
  let last =
    Arg.(
      value & opt int 10
      & info [ "last" ] ~docv:"N" ~doc:"Print the newest N samples (0 = none)")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the full retained window as CSV (seq,version,ts_ns,columns...) to FILE")
  in
  let perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write a Perfetto counter-track export (one ph:\"C\" event per retained sample) \
             to FILE")
  in
  let run workload ops interval crashes seed last csv perfetto json =
    let sys = boot_configured interval in
    (* price the black box's NVM residency like the trace ring's *)
    System.ensure_tseries_backing sys;
    drive sys ~workload ~ops ~crashes ~seed;
    let ts = System.tseries sys in
    if json then print_endline (Tseries.to_json ~last ts)
    else begin
      Printf.printf
        "black box: %d samples recorded, %d retained (capacity %d), %d columns (%d dropped)\n"
        (Tseries.total ts) (Tseries.length ts) (Tseries.capacity ts) (Tseries.column_count ts)
        (Tseries.cols_dropped ts);
      (match (Tseries.latest ts, Tseries.percentile_over ts "ckpt.stw_ns" ~n:64 ~p:99.0) with
      | Some s, Some stw_p99 ->
        Printf.printf "newest: seq %d v%d at %.3fms; stw p99 over last 64 commits: %.1fus\n"
          s.Tseries.sp_seq s.Tseries.sp_version
          (float_of_int s.Tseries.sp_ts_ns /. 1e6)
          (float_of_int stw_p99 /. 1e3)
      | _ -> ());
      if last > 0 then Format.printf "%a@." (Tseries.pp ~last) ts
    end;
    (match csv with
    | Some path ->
      let oc = open_out path in
      output_string oc (Tseries.to_csv ts);
      close_out oc;
      Printf.printf "wrote %s (one line per retained sample)\n" path
    | None -> ());
    match perfetto with
    | Some path ->
      let oc = open_out path in
      output_string oc (Tseries.to_perfetto_json ts);
      close_out oc;
      Printf.printf "wrote %s (open in https://ui.perfetto.dev; %d counter points)\n" path
        (Tseries.counter_points ts)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "tseries"
       ~doc:
         "Run a workload and dump the crash-surviving metrics time-series (the \"black \
          box\"): one fixed-width sample per checkpoint commit, retained in a ring that \
          survives the power failures injected with --crash. Exports: $(b,--csv) the \
          retained window, $(b,--perfetto) a counter-track timeline, $(b,--json) the \
          structured dump.")
    Term.(
      const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg $ last $ csv
      $ perfetto $ json_arg)

let slo_cmd =
  let module Slo = Treesls_obs.Slo in
  let rules_arg =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"RULE"
          ~doc:
            "Watch this rule instead of the defaults (repeatable), e.g. \
             $(b,\"p99(enq2vis) < 2*interval\") or $(b,\"waf < 3\"). See the rule grammar in \
             DESIGN.md section 15.")
  in
  let run workload ops interval crashes seed rule_texts json =
    let sys = boot_configured interval in
    let slo = System.slo sys in
    (* replace the rule set before driving so the watchdog evaluates it at
       every commit of the run *)
    if rule_texts <> [] then begin
      let rules =
        List.map
          (fun s ->
            match Slo.rule_of_string s with
            | Ok r -> r
            | Error e ->
              Printf.eprintf "slo: cannot parse rule %S: %s\n" s e;
              exit 1)
          rule_texts
      in
      Slo.set_rules slo rules
    end;
    drive sys ~workload ~ops ~crashes ~seed;
    if json then print_endline (Slo.to_json slo) else Format.printf "%a@." Slo.pp slo;
    if not (Slo.healthy slo) then exit 1
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Run a workload under the SLO watchdog and print its health report: per-rule \
          evaluations, fires and the retained alert log. Rules are evaluated against the \
          black-box sample of every checkpoint commit; exits 1 if any rule fired.")
    Term.(
      const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg $ rules_arg
      $ json_arg)

let wear_cmd =
  let module Wearmap = Treesls_obs.Wearmap in
  let top_n =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Hottest pages to show")
  in
  let heatmap =
    Arg.(
      value
      & opt (some string) None
      & info [ "heatmap" ] ~docv:"FILE"
          ~doc:"Write the full per-page wear heatmap (CSV, one line per touched page) to FILE")
  in
  let run workload ops interval crashes seed top_n heatmap json =
    let sys = boot_configured interval in
    System.ensure_wear_backing sys;
    drive sys ~workload ~ops ~crashes ~seed;
    let wm = System.wearmap sys in
    let owners =
      let tbl = Nvm_census.page_owners (System.manager sys) in
      fun p -> Hashtbl.find_opt tbl p
    in
    if json then print_endline (Wearmap.to_json ~owners ~top_n wm)
    else begin
      Printf.printf "nvm writes: %d (%d bytes) across %d pages touched\n"
        (Wearmap.total_writes wm) (Wearmap.total_bytes wm) (Wearmap.pages_tracked wm);
      Printf.printf "page copies: %d charged %d ns by the cost model\n" (Wearmap.copy_pages wm)
        (Wearmap.copy_ns wm);
      (match Manager.last_report (System.manager sys) with
      | Some r ->
        Printf.printf "last checkpoint: %d physical B / %d logical dirty B -> waf %.2f\n"
          r.Report.nvm_bytes_written r.Report.logical_dirty_bytes (Report.waf r)
      | None -> ());
      Printf.printf "wear skew: max=%d writes mean=%.1f max/mean=%.1f gini=%.3f\n"
        (Wearmap.max_writes wm) (Wearmap.mean_writes wm) (Wearmap.skew wm) (Wearmap.gini wm);
      Printf.printf "\n  %-18s %10s %14s\n" "subsystem" "writes" "bytes";
      List.iter
        (fun (name, writes, bytes) -> Printf.printf "  %-18s %10d %14d\n" name writes bytes)
        (Wearmap.subsystems wm);
      Printf.printf "\nhottest %d pages:\n" top_n;
      List.iter
        (fun (page, writes, bytes) ->
          Printf.printf "  page %6d %8d writes %12d B  %s\n" page writes bytes
            (Option.value ~default:"-" (owners page)))
        (Wearmap.top wm ~n:top_n)
    end;
    match heatmap with
    | Some path ->
      let oc = open_out path in
      output_string oc (Wearmap.to_csv ~owners wm);
      close_out oc;
      Printf.printf "wrote %s (page,writes,bytes,owner per touched page)\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "wear"
       ~doc:
         "Run a workload, then report NVM write/wear telemetry: total physical bytes by \
          writing subsystem, last-checkpoint write amplification, per-page wear skew and the \
          hottest pages with their owners; $(b,--heatmap) exports the full per-page \
          distribution as CSV, $(b,--json) the summary as JSON")
    Term.(
      const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg $ top_n
      $ heatmap $ json_arg)

let diff_cmd =
  let from_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "from" ] ~docv:"V" ~doc:"Older version (default: second-newest archived)")
  in
  let to_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "to" ] ~docv:"V" ~doc:"Newer version (default: newest archived)")
  in
  let window =
    Arg.(
      value & opt int 64
      & info [ "window" ] ~docv:"N" ~doc:"Eidetic archive window (checkpoint versions kept)")
  in
  let run workload ops interval seed from_v to_v window json =
    let sys = boot_configured interval in
    let eid = Eidetic.attach ~max_versions:window (System.manager sys) in
    drive sys ~workload ~ops ~crashes:0 ~seed;
    match List.rev (Eidetic.versions eid) with
    | last :: prev :: _ ->
      let from_version = Option.value from_v ~default:prev in
      let to_version = Option.value to_v ~default:last in
      let d = Audit.diff (System.manager sys) eid ~from_version ~to_version in
      if json then print_endline (Audit.diff_to_json d)
      else Format.printf "%a@." Audit.pp_diff d
    | _ ->
      prerr_endline "fewer than two checkpoints were archived; nothing to diff";
      exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Run a workload under an eidetic archive, then explain what changed between two \
          checkpoint versions: objects added/removed/mutated and pages by copy class")
    Term.(
      const run $ workload_arg $ ops_arg $ interval_arg $ seed_arg $ from_arg $ to_arg $ window
      $ json_arg)

let run_cmd =
  let run workload ops interval crashes seed =
    let sys = boot_configured interval in
    let t_host = Unix.gettimeofday () in
    drive sys ~workload ~ops ~crashes ~seed;
    let host = Unix.gettimeofday () -. t_host in
    let sim_ms = float_of_int (System.now_ns sys) /. 1e6 in
    let stats = System.stats sys in
    Printf.printf "%d ops in %.1f ms simulated (%.2f s host)\n" ops sim_ms host;
    Printf.printf "checkpoints: %d   page faults: %d (cow %d, alloc %d)   syscalls: %d\n"
      (System.version sys) stats.Kernel.page_faults stats.Kernel.cow_faults
      stats.Kernel.alloc_faults stats.Kernel.syscalls;
    (match Manager.last_report (System.manager sys) with
    | Some r -> Format.printf "last %a@." Report.pp r
    | None -> ());
    Printf.printf "checkpoint footprint: %.2f MiB\n"
      (float_of_int (Manager.checkpoint_bytes (System.manager sys)) /. 1048576.0)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a workload under periodic checkpointing")
    Term.(const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg)

let trace_cmd =
  let last =
    Arg.(
      value & opt int 30
      & info [ "last" ] ~docv:"N" ~doc:"Print the last N retained events (0 = none)")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE" ~doc:"Write Chrome/Perfetto trace_event JSON to FILE")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:"Also record the per-operation tier (nvm.alloc, nvm.txn, ipc.call)")
  in
  let requests =
    Arg.(
      value & opt int 0
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Print the newest N completed request timelines \
             (arrive/handled/enqueue/visible + releasing commit) and the \
             enqueue-to-visible percentiles")
  in
  let run workload ops interval crashes seed last export verbose requests =
    let sys = boot_configured interval in
    System.enable_tracing ~verbose sys;
    drive sys ~workload ~ops ~crashes ~seed;
    let tr = System.trace sys in
    Printf.printf "trace: %d events retained of %d recorded (%d dropped, capacity %d)\n"
      (Trace.length tr) (Trace.total tr) (Trace.dropped tr) (Trace.capacity tr);
    if last > 0 then begin
      let events = Trace.events tr in
      let n = List.length events in
      Printf.printf "last %d events:\n" (min last n);
      List.iteri
        (fun i e -> if i >= n - last then Format.printf "%a@." Trace.pp_event e)
        events
    end;
    if requests > 0 then begin
      let module Rtrace = Treesls_obs.Rtrace in
      let rt = Treesls_obs.Probe.rtrace (System.obs sys) in
      let completed = Rtrace.completed rt in
      Printf.printf "\nrequests: %d completed (%d released, %d internal, %d shed, %d dropped)\n"
        (Rtrace.completed_total rt) (Rtrace.released_count rt) (Rtrace.internal_count rt)
        (Rtrace.shed_count rt) (Rtrace.dropped_count rt);
      let s = Rtrace.enq2vis_summary rt in
      if s.Rtrace.s_count > 0 then
        Printf.printf "enqueue->visible: p50=%.1fus p95=%.1fus p99=%.1fus (n=%d)\n"
          (float_of_int s.Rtrace.s_p50_ns /. 1e3)
          (float_of_int s.Rtrace.s_p95_ns /. 1e3)
          (float_of_int s.Rtrace.s_p99_ns /. 1e3)
          s.Rtrace.s_count;
      Printf.printf "newest %d:\n" (min requests (List.length completed));
      List.iteri
        (fun i r -> if i < requests then Format.printf "%a@." Rtrace.pp_req r)
        completed
    end;
    match export with
    | Some path ->
      System.export_trace_file sys ~path;
      Printf.printf "wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with tracing enabled; dump the event ring. The ring survives the \
          power failures injected with --crash: pre-crash spans (closed as aborted=true), \
          the crash marker and the restore span all remain inspectable afterwards.")
    Term.(
      const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg $ last $ export
      $ verbose $ requests)

let metrics_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Dump the registry as JSON") in
  let run workload ops interval crashes seed json =
    let sys = boot_configured interval in
    drive sys ~workload ~ops ~crashes ~seed;
    let snap = System.metrics_snapshot sys in
    if json then print_endline (Treesls_obs.Metrics.snapshot_to_json snap)
    else Format.printf "%a@." Treesls_obs.Metrics.pp_snapshot snap
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Run a workload and dump the metrics registry")
    Term.(const run $ workload_arg $ ops_arg $ interval_arg $ crashes_arg $ seed_arg $ json)

let rto_cmd =
  let module Rto = Treesls_obs.Rto in
  let action =
    Arg.(
      value
      & pos 0 (enum [ ("last", `Last) ]) `Last
      & info [] ~docv:"ACTION" ~doc:"What to show ($(b,last): the most recent recovery)")
  in
  let flight =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Write the flight-recorder Perfetto timeline — the pre-crash tail of the eternal \
             trace ring merged with the recovery phase spans, crash instant marked — to FILE")
  in
  let crashes =
    Arg.(
      value & opt int 1
      & info [ "crash" ] ~docv:"K"
          ~doc:"Inject K evenly spaced power failures (default 1; 0 records no recovery)")
  in
  let run workload ops interval seed crashes action flight json =
    let sys = boot_configured interval in
    (* tracing on so the flight recorder has a pre-crash tail to capture *)
    System.enable_tracing sys;
    drive sys ~workload ~ops ~crashes ~seed;
    match System.last_recovery sys with
    | None ->
      prerr_endline "rto: no recovery recorded (need at least one crash: --crash 1)";
      exit 1
    | Some r ->
      (match action with `Last -> ());
      if json then print_endline (Rto.to_json r) else Format.printf "%a" Rto.pp r;
      (match flight with
      | Some path ->
        ignore (System.export_flight_file sys ~path);
        Printf.printf "wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n" path
      | None -> ())
  in
  Cmd.v
    (Cmd.info "rto"
       ~doc:
         "Run a workload with injected power failures and report the last recovery: per-phase \
          restore-time (RTO) breakdown, downtime, pages/objects restored vs dropped, \
          time-to-first-request; --flight exports the crash flight-recorder timeline")
    Term.(
      const run $ workload_arg $ ops_arg $ interval_arg $ seed_arg $ crashes $ action $ flight
      $ json_arg)

let crashtest_cmd =
  let module C = Treesls_crashtest.Crashtest in
  let module H = Treesls_util.Histogram in
  let module Rto = Treesls_obs.Rto in
  let ops =
    Arg.(
      value & opt int C.default_config.C.ops
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Length of the workload trace")
  in
  let max_commits =
    Arg.(
      value
      & opt int C.default_config.C.commit_cap
      & info [ "max-commits" ] ~docv:"N"
          ~doc:"Max journal commit points sampled (each explored in all four phases)")
  in
  let schedule =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"REPRO"
          ~doc:
            "Replay one schedule instead of sweeping: a reproducer string like \
             $(b,seed=42;ops=280;commit:57:mid_apply) (or just the point, with --seed/--ops). \
             A failing schedule is shrunk to its minimal trace prefix.")
  in
  let with_bug =
    Arg.(
      value & flag
      & info [ "with-recovery-bug" ]
          ~doc:
            "Deliberately re-introduce the Mid_apply journal-replay bug: the sweep must then \
             report failures (sanity check that the harness can catch real bugs)")
  in
  let run seed ops max_commits schedule with_bug json =
    let cfg =
      { C.default_config with C.seed; ops; commit_cap = max_commits; recovery_bug = with_bug }
    in
    match schedule with
    | Some s -> (
      let parsed =
        match C.parse_reproducer s with
        | Some (seed, ops, point) -> Some ({ cfg with C.seed; ops }, point)
        | None -> Option.map (fun p -> (cfg, p)) (C.point_of_string s)
      in
      match parsed with
      | None ->
        prerr_endline ("cannot parse schedule: " ^ s);
        exit 1
      | Some (cfg, point) ->
        let result, _timers = C.run_one_profiled cfg point in
        let outcome = result.C.outcome in
        Printf.printf "%s: %s\n%!" (C.reproducer cfg point) (C.outcome_to_string outcome);
        (match result.C.recovery with
        | Some r when C.outcome_is_pass outcome -> Format.printf "%a%!" Rto.pp r
        | Some _ | None -> ());
        if not (C.outcome_is_pass outcome) then begin
          let small = C.shrink cfg point in
          Printf.printf "shrunk to: %s\n" (C.reproducer small point);
          exit 2
        end)
    | None ->
      let progress i n =
        if not json && (i mod 50 = 0 || i = n - 1) then
          Printf.eprintf "\rschedule %d/%d%!" (i + 1) n
      in
      let sweep = C.run ~progress cfg in
      if not json then prerr_newline ();
      let n_results = List.length sweep.C.results in
      if json then begin
        let failures =
          sweep.C.failed
          |> List.map (fun (r : C.result) ->
                 Printf.sprintf "{\"repro\":%S,\"outcome\":%S}"
                   (C.reproducer cfg r.C.point)
                   (C.outcome_to_string r.C.outcome))
          |> String.concat ","
        in
        let per_schedule =
          sweep.C.results
          |> List.map (fun (r : C.result) ->
                 let base =
                   Printf.sprintf "{\"repro\":%S,\"outcome\":%S"
                     (C.reproducer cfg r.C.point)
                     (C.outcome_to_string r.C.outcome)
                 in
                 match r.C.recovery with
                 | None -> base ^ "}"
                 | Some rc ->
                   let phases =
                     rc.Rto.r_phases
                     |> List.map (fun (name, ns) -> Printf.sprintf "%S:%d" name ns)
                     |> String.concat ","
                   in
                   Printf.sprintf
                     "%s,\"recovery_ns\":%d,\"downtime_ns\":%d,\"untracked_ns\":%d,\"phases\":{%s}}"
                     base rc.Rto.r_total_ns rc.Rto.r_downtime_ns rc.Rto.r_untracked_ns phases)
          |> String.concat ","
        in
        let rto =
          sweep.C.rto_stats
          |> List.map (fun (name, h) ->
                 Printf.sprintf "%S:{\"n\":%d,\"min_ns\":%d,\"mean_ns\":%.1f,\"p99_ns\":%d}" name
                   (H.count h) (H.min_value h) (H.mean h) (H.percentile h 99.0))
          |> String.concat ","
        in
        Printf.printf
          "{\"commit_points\":%d,\"schedules\":%d,\"commit_schedules\":%d,\"passed\":%d,\"failed\":%d,\"failures\":[%s],\"per_schedule\":[%s],\"rto\":{%s}}\n"
          sweep.C.commit_points n_results sweep.C.commit_schedules sweep.C.passed
          (List.length sweep.C.failed) failures per_schedule rto
      end
      else begin
        Printf.printf "trace: seed=%d ops=%d -> %d journal commit points\n" cfg.C.seed cfg.C.ops
          sweep.C.commit_points;
        Printf.printf "crash sites:";
        List.iter (fun (s, n) -> Printf.printf " %s=%d" s n) sweep.C.site_hits;
        Printf.printf "\nschedules: %d explored (%d commit-point x phase), %d passed, %d failed\n"
          n_results sweep.C.commit_schedules sweep.C.passed
          (List.length sweep.C.failed);
        List.iter
          (fun (r : C.result) ->
            Printf.printf "  FAIL %s: %s\n" (C.reproducer cfg r.C.point)
              (C.outcome_to_string r.C.outcome))
          sweep.C.failed;
        if sweep.C.rto_stats <> [] then begin
          Printf.printf "recovery time (RTO) across schedules, us:\n";
          Printf.printf "  %-32s %6s %10s %10s %10s\n" "timer" "n" "min" "mean" "p99";
          List.iter
            (fun (name, h) ->
              Printf.printf "  %-32s %6d %10.1f %10.1f %10.1f\n" name (H.count h)
                (float_of_int (H.min_value h) /. 1e3)
                (H.mean h /. 1e3)
                (float_of_int (H.percentile h 99.0) /. 1e3))
            sweep.C.rto_stats
        end
      end;
      if sweep.C.failed <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "crashtest"
       ~doc:
         "Exhaustive crash-schedule exploration: enumerate every crash point of a \
          deterministic trace (journal commit points x phases, checkpoint/restore crash \
          sites, DRAM losses), inject each, and verify recovery with the slsfsck audit plus \
          fingerprint equivalence against a crash-free twin; exits 2 on any failing schedule")
    Term.(const run $ seed_arg $ ops $ max_commits $ schedule $ with_bug $ json_arg)

let serve_cmd =
  let module Serve = Treesls_serve.Serve in
  let module Tenant = Treesls_serve.Tenant in
  let module Rtrace = Treesls_obs.Rtrace in
  let module Drain = Treesls_ckpt.Drain in
  let tenants_arg =
    Arg.(
      value & opt int 4
      & info [ "tenants" ] ~docv:"N"
          ~doc:"Tenants to serve (each gets its own cap subtree, KV shard and named reply ring)")
  in
  let ops =
    Arg.(
      value & opt int 400
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"YCSB operations per tenant (open loop)")
  in
  let gap =
    Arg.(
      value & opt int 10_000
      & info [ "gap-ns" ] ~docv:"NS" ~doc:"Per-tenant arrival gap in nanoseconds")
  in
  let eager =
    Arg.(
      value & flag
      & info [ "eager" ]
          ~doc:
            "Ablation mode: eager full-walk checkpoints instead of the default \
             incremental walk + asynchronous drain")
  in
  let run tenants ops interval crashes seed gap eager json =
    if tenants <= 0 then begin
      prerr_endline "serve: need at least one tenant";
      exit 1
    end;
    let features =
      {
        Treesls_ckpt.State.ckpt_enabled = true;
        track_dirty = true;
        copy_on_fault = true;
        hybrid = true;
        incremental_walk = not eager;
        adaptive_interval = false;
        async_drain = not eager;
      }
    in
    let nvm_pages = if tenants >= 32 then 1 lsl 18 else 1 lsl 17 in
    let sys = System.boot ~interval_us:(max 1 interval) ~features ~nvm_pages () in
    if not eager then begin
      Manager.set_drain_policy (System.manager sys) Drain.Lazy;
      Manager.set_drain_batch (System.manager sys) 16
    end;
    (* split the op budget into crash-separated segments: every tenant's
       ring and store must come back by name after each power failure *)
    let segments = crashes + 1 in
    let per_segment = max 1 (ops / segments) in
    let cfg =
      {
        Serve.default_cfg with
        Serve.tenants;
        ops_per_tenant = per_segment;
        gap_ns = gap;
        seed = Int64.of_int seed;
      }
    in
    let srv = Serve.create sys cfg in
    for seg = 1 to segments do
      Serve.run srv;
      if seg < segments then begin
        let r = System.crash_and_recover sys in
        Printf.printf "crash after segment %d: rolled back to v%d (%d objects restored)\n%!" seg
          r.Treesls_ckpt.Restore.version r.Treesls_ckpt.Restore.restored_objects
      end
    done;
    let rows = Serve.rows srv in
    let attribution = Serve.attribution srv in
    let total_attr_ns = List.fold_left (fun a (_, ns) -> a + ns) 0 attribution in
    let us v = float_of_int v /. 1e3 in
    if json then begin
      let row_json (r : Serve.row) =
        Printf.sprintf
          "{\"tenant\":%S,\"sent\":%d,\"shed\":%d,\"delivered\":%d,\"keys\":%d,\"enq2vis_p50_ns\":%d,\"enq2vis_p99_ns\":%d,\"e2e_p99_ns\":%d,\"walk_ns\":%d,\"walk_objects\":%d}"
          r.Serve.r_tenant r.Serve.r_sent r.Serve.r_shed r.Serve.r_delivered r.Serve.r_keys
          r.Serve.r_enq2vis.Rtrace.s_p50_ns r.Serve.r_enq2vis.Rtrace.s_p99_ns
          r.Serve.r_e2e.Rtrace.s_p99_ns r.Serve.r_group_ns r.Serve.r_group_objects
      in
      Printf.printf
        "{\"tenants\":[%s],\"commits\":%d,\"stw_mean_ns\":%.0f,\"captree_ns\":%d,\"attribution_exact\":%b}\n"
        (String.concat "," (List.map row_json rows))
        (List.length (Serve.reports srv))
        (Serve.stw_mean_ns srv) (Serve.captree_total srv) (Serve.attribution_exact srv)
    end
    else begin
      Printf.printf "%d tenants x %d ops (%dns gap, %dus interval, %s): %d commits\n\n" tenants
        (per_segment * segments) gap (max 1 interval)
        (if eager then "eager full-walk" else "incremental+async")
        (List.length (Serve.reports srv));
      Printf.printf "  %-6s %8s %6s %10s %6s %12s %12s %12s %10s\n" "tenant" "sent" "shed"
        "delivered" "keys" "e2v p50 us" "e2v p99 us" "e2e p99 us" "walk share";
      List.iter
        (fun (r : Serve.row) ->
          Printf.printf "  %-6s %8d %6d %10d %6d %12.1f %12.1f %12.1f %9.1f%%\n" r.Serve.r_tenant
            r.Serve.r_sent r.Serve.r_shed r.Serve.r_delivered r.Serve.r_keys
            (us r.Serve.r_enq2vis.Rtrace.s_p50_ns)
            (us r.Serve.r_enq2vis.Rtrace.s_p99_ns)
            (us r.Serve.r_e2e.Rtrace.s_p99_ns)
            (if total_attr_ns = 0 then 0.0
             else 100.0 *. float_of_int r.Serve.r_group_ns /. float_of_int total_attr_ns))
        rows;
      Printf.printf "\ncheckpoint walk attribution (all commits):\n";
      List.iteri
        (fun i (g, ns) ->
          if i < tenants + 4 then
            Printf.printf "  %-16s %10.1fus %9.1f%%\n" g (us ns)
              (100.0 *. float_of_int ns /. float_of_int (max 1 total_attr_ns)))
        attribution;
      Printf.printf "\nmean STW %.1fus; per-group walk ns sum %s captree ns\n"
        (Serve.stw_mean_ns srv /. 1e3)
        (if Serve.attribution_exact srv then "== (exact)" else "!= (BROKEN)")
    end;
    if not (Serve.attribution_exact srv) then exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Multi-tenant YCSB serving: N tenants, each an isolated capability subtree with its \
          own KV shard and named persistent reply ring, driven open-loop; prints per-tenant \
          visible-latency percentiles and the per-subtree checkpoint walk attribution. \
          Power failures injected with --crash land between segments; every tenant's ring \
          is reclaimed strictly by name on recovery.")
    Term.(
      const run $ tenants_arg $ ops $ interval_arg $ crashes_arg $ seed_arg $ gap $ eager
      $ json_arg)

let () =
  let doc = "TreeSLS whole-system persistent microkernel simulator" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "treesls_cli" ~doc)
          [
            census_cmd; ckpt_cmd; run_cmd; serve_cmd; trace_cmd; metrics_cmd; inspect_cmd;
            wear_cmd; doctor_cmd; diff_cmd; crashtest_cmd; rto_cmd; tseries_cmd; slo_cmd;
          ]))
