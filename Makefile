# Convenience targets. `make ci` is the whole gate: anything a CI job (or
# a pre-commit hook) should run lives behind it.
#
# Formatting: no `.ocamlformat` is committed because the target toolchain
# ships no ocamlformat binary (a config file would break `dune build @fmt`
# for everyone). Match the hand-formatting conventions of the surrounding
# code instead — see README "Building".

all:
	dune build @all

test:
	dune runtest

ci:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- --exp smoke --audit

bench:
	dune exec bench/main.exe

# Paranoid run of every experiment: re-audit after each commit/restore.
bench-audit:
	dune exec bench/main.exe -- --audit

.PHONY: all test ci bench bench-audit
