# Convenience targets. `make ci` is the whole gate: anything a CI job (or
# a pre-commit hook) should run lives behind it.
#
# Formatting: no `.ocamlformat` is committed because the target toolchain
# ships no ocamlformat binary (a config file would break `dune build @fmt`
# for everyone). Match the hand-formatting conventions of the surrounding
# code instead — see README "Building".

all:
	dune build @all

test:
	dune runtest

# Formatting gate: checks only when an ocamlformat binary exists (the
# baked-in toolchain has none — see the header comment), so CI stays
# green everywhere while still catching drift where the tool is present.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt: ocamlformat not installed; skipping (hand-format per README)"; \
	fi

# Where a CI run drops its freshly generated BENCH_<exp>.json files before
# comparing them against the committed copies at the repo root.
BENCH_FRESH := _build/bench-fresh

# Regenerate the CI-scale BENCH files into $(BENCH_FRESH) (committed
# copies stay untouched until `make ci` promotes them).
bench-fresh:
	rm -rf $(BENCH_FRESH) && mkdir -p $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp extsync_lat --smoke --json-dir $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp incr_walk --smoke --audit --json-dir $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp crashtest --smoke --json-dir $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp wear --smoke --audit --json-dir $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp rto --smoke --audit --json-dir $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp adaptive --smoke --json-dir $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp async_drain --smoke --audit --json-dir $(BENCH_FRESH)
	dune exec bench/main.exe -- --exp multitenant --smoke --json-dir $(BENCH_FRESH)

# Per-metric deltas of the fresh results vs the committed copies
# (informational; the self-gating experiments above are what fail).
bench-diff: bench-fresh
	dune exec bench/bench_diff.exe $(BENCH_FRESH) .

ci:
	dune build @all
	dune runtest
	$(MAKE) fmt
	dune exec bench/main.exe -- --exp smoke --audit
	$(MAKE) bench-diff
	cp $(BENCH_FRESH)/BENCH_*.json .

# Full evaluation sweep; drops one BENCH_<exp>.json per experiment.
bench:
	dune exec bench/main.exe -- --json-dir .

# Paranoid run of every experiment: re-audit after each commit/restore.
bench-audit:
	dune exec bench/main.exe -- --audit

.PHONY: all test fmt ci bench bench-fresh bench-diff bench-audit
