module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Store = Treesls_nvm.Store
module Global_meta = Treesls_nvm.Global_meta
module Clock = Treesls_sim.Clock

type t = { st : State.t }

let install_hooks st =
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  Kernel.set_cow_hook kernel
    (Some
       (fun pmo pno ->
         (* Step 6 of Figure 5: duplicate the page into its backup before
            the write proceeds, then track hotness for hybrid copy.  While
            a drain window is pending the fault belongs to the window —
            [Checkpoint.resolve_cow_fault] must arbitrate between the
            staged and the committed version, so the eager protocol below
            only runs when it declines. *)
         (if st.State.features.State.copy_on_fault then
            if not (Checkpoint.resolve_cow_fault st pmo pno) then
              match Hashtbl.find_opt st.State.oroots pmo.Kobj.pmo_id with
              | Some oroot -> (
                match (oroot.Oroot.pages, Radix.get pmo.Kobj.pmo_radix pno) with
                | Some pages, Some runtime ->
                  let global = Global_meta.version (Store.meta store) in
                  (match Ckpt_page.find pages pno with
                  | Some cp when cp.Ckpt_page.born_ver > global -> ()
                  | Some _ -> ignore (Ckpt_page.cow_backup store pages ~runtime ~pno ~global)
                  | None -> ())
                | (Some _ | None), _ -> ())
              | None -> ());
         if st.State.features.State.hybrid then Active_list.record_fault st.State.active pmo pno));
  Kernel.set_fresh_hook kernel (Some (fun pmo pno -> State.note_fresh_page st pmo pno))

let attach ?(active_cfg = Active_list.default_config) ?features kernel =
  let features = match features with Some f -> f | None -> State.default_features () in
  let st = State.create kernel active_cfg features in
  install_hooks st;
  { st }

let state t = t.st
let kernel t = t.st.State.kernel

let features t = t.st.State.features

let version t = Global_meta.version (Store.meta (Kernel.store (kernel t)))

let checkpoint t = Checkpoint.run t.st

let set_interval t ns =
  t.st.State.interval_ns <- ns;
  match ns with
  | Some n -> t.st.State.next_ckpt_at <- Clock.now (Kernel.clock (kernel t)) + n
  | None -> ()

let interval t = t.st.State.interval_ns

let tick t =
  match t.st.State.interval_ns with
  | None -> None
  | Some _ ->
    if
      t.st.State.features.State.ckpt_enabled
      && Clock.now (Kernel.clock (kernel t)) >= t.st.State.next_ckpt_at
    then begin
      let r = Checkpoint.run t.st in
      (* re-read: the adaptive controller may retune the interval from
         the post-commit sample hook, and the next deadline must use the
         retuned value *)
      (match t.st.State.interval_ns with
      | Some n -> t.st.State.next_ckpt_at <- Clock.now (Kernel.clock (kernel t)) + n
      | None -> ());
      Some r
    end
    else None

let next_deadline t =
  match t.st.State.interval_ns with Some _ -> Some t.st.State.next_ckpt_at | None -> None

(* --- asynchronous drain ----------------------------------------------- *)

let drain_step t = Checkpoint.drain_step t.st
let drain_settle t = Checkpoint.settle t.st
let drain_backlog t = Drain.backlog t.st.State.drain
let drain_pending_version t = Drain.pending_version t.st.State.drain
let drain_saved_frames t = Drain.saved_frames t.st.State.drain
let drain_policy t = t.st.State.drain_policy
let set_drain_policy t p = t.st.State.drain_policy <- p
let set_drain_batch t n = t.st.State.drain_batch <- max 1 n

let on_checkpoint t cb = t.st.State.ckpt_callbacks <- t.st.State.ckpt_callbacks @ [ cb ]

let crash t =
  (* The trace ring and metrics registry live in eternal-PMO state: a
     power failure ends open spans (recorded as aborted) and stamps a
     crash marker, but the events recorded so far survive the failure. *)
  Treesls_obs.Probe.crash_mark ();
  Treesls_obs.Probe.count "crashes" 1;
  State.note_crash t.st;
  Kernel.crash (kernel t)

let recover t =
  let report =
    (* journal replay and page normalisation during restore are recovery
       wear, not app wear *)
    Treesls_obs.Wearmap.with_writer "restore" (fun () -> Restore.run t.st)
  in
  install_hooks t.st;
  (match t.st.State.interval_ns with
  | Some n -> t.st.State.next_ckpt_at <- Clock.now (Kernel.clock (kernel t)) + n
  | None -> ());
  report

(* --- read-only walkers (state auditor) -------------------------------- *)

let iter_oroots t f = Hashtbl.iter f t.st.State.oroots
let find_oroot t oid = Hashtbl.find_opt t.st.State.oroots oid
let oroot_count t = Hashtbl.length t.st.State.oroots

let checkpoint_bytes t = State.checkpoint_bytes t.st
let last_report t = t.st.State.last_report

let obj_costs t =
  (* sorted by kind name: Hashtbl fold order must not leak into CLI output *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.st.State.obj_costs []
  |> List.sort (fun (a, _) (b, _) ->
         compare (Treesls_cap.Kobj.kind_name a) (Treesls_cap.Kobj.kind_name b))

let reset_obj_costs t = Hashtbl.reset t.st.State.obj_costs
