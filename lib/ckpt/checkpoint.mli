(** The stop-the-world checkpoint procedure (Figure 5).

    Steps: (1) IPI all cores into quiescence; (2) the leader walks the
    runtime capability tree and copies every object's state into its ORoot
    backups — user pages are {e not} copied, dirty ones are re-marked
    read-only; (3) in parallel, the other cores traverse the active page
    list performing hybrid copy (stop-and-copy of dirty DRAM pages,
    NVM/DRAM migrations); (4) the global version number is bumped — the
    atomic commit point; (5) cores resume; then registered checkpoint
    callbacks fire (external synchrony, §5) and ORoots of objects that left
    the tree are garbage-collected.

    Leader work is charged to the simulated clock as it happens; parallel
    hybrid-copy work is charged to per-core meters and the clock is
    advanced by any excess of the slowest core over the leader. *)

val run : State.t -> Report.t
(** Take one whole-system checkpoint and return its measurements.

    With [features.async_drain] on (and a non-Eager policy), dirty
    DRAM-cached pages are protected and enqueued instead of copied: the
    STW stays O(dirty objects), [run] returns a partial report for the
    {e staged} version, and the version bump — with the GC, extsync
    callbacks, wear accounting and black-box sample — waits in the settle
    step until the backlog drains.  Any window still pending when [run] is
    entered is force-settled first (one staged version in flight, ever). *)

val drain_step : State.t -> int
(** One asynchronous drain step (called between operations): copy a
    policy-sized batch of backlog pages on the follower cores, settling
    the window when the backlog empties. Returns pages copied; 0 when no
    window is pending. *)

val settle : State.t -> unit
(** Force the pending window (if any) durable now: drain the remaining
    backlog and commit. No-op when nothing is pending. *)

val resolve_cow_fault : State.t -> Treesls_cap.Kobj.pmo -> int -> bool
(** Write-fault arbitration while a drain window is pending: resolves the
    owed copy (backlogged DRAM page) or banks a version-correct backup
    (protected NVM page) and returns [true]; [false] when no window is
    pending and the caller should run the eager CoW protocol. *)

val resolve_region : Treesls_cap.Kobj.vmspace -> int -> (Treesls_cap.Kobj.pmo * int) option
(** [resolve_region vms vpn] is the (pmo, page index) backing [vpn], via a
    cached interval index over the VM space's regions; when regions
    overlap, the first one in region-list order wins (exposed for unit
    tests). *)
