(** Shared state of the checkpoint manager.

    Split between NVM-resident state that survives a crash (ORoots with
    their backup snapshots and page tables, the committed id high-water
    mark, the root cap group id) and volatile state that is rebuilt after
    recovery (the active page list, pending fresh-page notes, registered
    callbacks). *)

module Kobj = Treesls_cap.Kobj
module Kernel = Treesls_kernel.Kernel

type features = {
  mutable ckpt_enabled : bool;  (** take checkpoints at all *)
  mutable track_dirty : bool;  (** mark dirty pages read-only at checkpoint *)
  mutable copy_on_fault : bool;  (** copy the pre-image in the fault handler *)
  mutable hybrid : bool;  (** hybrid copy: hot-page DRAM cache + stop-and-copy *)
  mutable incremental_walk : bool;
      (** skip clean objects (generation unchanged) during the STW walk *)
  mutable adaptive_interval : bool;
      (** let the PID-style controller retune the checkpoint interval
          against a latency SLO at every commit (default off; see
          {!Interval_ctl}) *)
  mutable async_drain : bool;
      (** split the STW capture from the page copies: dirty DRAM-cached
          pages are protected and enqueued at the STW, copied later by
          {!Drain} steps, and the version commits at settle (default off;
          requires track_dirty + copy_on_fault + hybrid and a non-Eager
          {!Drain.policy} to take effect) *)
}

type obj_cost = {
  full : Treesls_util.Stats.t;  (** per-object full checkpoint ns *)
  incr : Treesls_util.Stats.t;  (** per-object incremental checkpoint ns *)
  restore : Treesls_util.Stats.t;  (** per-object restore ns *)
}

type t = {
  mutable kernel : Kernel.t;
  oroots : (int, Oroot.t) Hashtbl.t;  (** NVM: object id -> ORoot *)
  active : Active_list.t;  (** volatile *)
  mutable root_id : int;  (** NVM: object id of the root cap group *)
  mutable ids_hwm : int;  (** NVM: id counter at the last committed checkpoint *)
  features : features;
  pending_fresh : (int, (Kobj.pmo * int list) ref) Hashtbl.t;
      (** volatile: pmo id -> pages added since the last checkpoint walk *)
  obj_costs : (Kobj.kind, obj_cost) Hashtbl.t;  (** measurement collectors *)
  mutable ckpt_callbacks : (unit -> unit) list;  (** volatile; §5 *)
  mutable page_archive_hook : (Kobj.pmo -> int -> Treesls_nvm.Paddr.t -> unit) option;
      (** eidetic extension (§8): invoked during the STW pause for every
          page whose content belongs to the committing version — dirty
          pages being re-protected, stop-and-copied DRAM pages, and every
          page of a first-time (full) PMO checkpoint *)
  mutable crashed_root : Kobj.cap_group option;
      (** set by {!note_crash}: the crash-time runtime tree, whose NVM page
          pointers the restore consults *)
  mutable interval_ns : int option;
  mutable next_ckpt_at : int;
  mutable last_report : Report.t option;
  mutable force_full : bool;
      (** eager-walk override for the next checkpoint: set at creation and
          by {!note_crash}, cleared by [Checkpoint.run] — the first walk
          after boot or restore must visit every object to (re)seed the
          per-object saved generations *)
  mutable owner_cache : (int, string) Hashtbl.t option;
      (** volatile: object id -> owning process name, for report
          attribution; valid only while [owner_cache_epoch] matches
          [Kernel.procs_epoch] *)
  mutable owner_cache_epoch : int;
  mutable wear_mark : int;
      (** cumulative wearmap bytes at the last committed checkpoint: the
          per-interval physical-NVM-bytes delta (WAF numerator) is measured
          against this watermark by [Checkpoint.run] *)
  drain : Drain.t;
      (** asynchronous-drain window state: backlog of owed page copies,
          CoW restamp/saved tables, and the staged (pending) version *)
  mutable drain_policy : Drain.policy;
  mutable drain_batch : int;
      (** [Lazy] policy: backlog pages copied per drain step *)
}

val default_features : unit -> features
val create : Kernel.t -> Active_list.config -> features -> t

val oroot_for : t -> Kobj.t -> version:int -> Oroot.t * bool
(** The object's ORoot, creating it if absent; the flag is [true] when this
    is the object's first checkpoint (full checkpoint). *)

val note_fresh_page : t -> Kobj.pmo -> int -> unit
val drain_fresh : t -> Kobj.pmo -> int list
val obj_cost : t -> Kobj.kind -> obj_cost

val note_crash : t -> unit
(** Capture the crash-time runtime tree and drop volatile state. *)

val checkpoint_bytes : t -> int
(** Current checkpoint footprint: snapshot bytes + backup page frames. *)
