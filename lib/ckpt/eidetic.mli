(** Eidetic-system extension (paper §8).

    "TreeSLS can be extended to maintain multiple versions of the system's
    lifetime, as we have already enabled version maintenance through the
    ORoot interface. With this, TreeSLS can provide interfaces for listing
    all versions and allow users to quickly navigate through arbitrary
    versions in the execution history, which offers numerous advantages,
    particularly in the context of debugging."

    This module implements that extension as a version archive: once
    attached, every committed checkpoint contributes (a) the snapshot of
    every live object and (b) the content of every page modified in the
    closing interval.  The archive answers point-in-time queries — which
    objects existed at version [v], what an object's state was, what a
    page's bytes were — without disturbing the normal two-backup
    checkpoint machinery.  Archived snapshots are shared with the ORoots
    (immutable after capture), so only page content is copied; the paper's
    note that "maintaining multiple backups will not include additional
    work on the critical path, but requires more space" is reflected in
    {!stats}.

    A bounded window ([max_versions]) caps space: versions older than the
    window are pruned after each commit. *)

module Kobj = Treesls_cap.Kobj

type t

val attach : ?max_versions:int -> Manager.t -> t
(** Start archiving every subsequent checkpoint (window default 64). *)

val detach : t -> unit
(** Stop archiving (the collected history stays queryable). *)

val versions : t -> int list
(** Archived checkpoint versions, ascending. *)

val object_at : t -> version:int -> obj_id:int -> Snapshot.t option
(** The object's state as of checkpoint [version] ([None] if the object
    did not exist at that version or the version is outside the window). *)

val objects_at : t -> version:int -> (int * Snapshot.t) list
(** All objects live at [version] (id, snapshot). *)

val page_at : t -> version:int -> pmo_id:int -> pno:int -> Bytes.t option
(** Byte content of a page as of [version]; [None] if the page did not
    exist then (or predates the window). *)

val pages_archived_at : t -> version:int -> (int * int) list
(** [(pmo id, pno)] pairs whose content was archived at [version] — i.e.
    the pages modified in the interval that checkpoint closed. Sorted.
    Feeds the cross-version diff explorer ([Treesls_audit.Audit.diff]). *)

val diff_objects : t -> from_version:int -> to_version:int -> int list
(** Ids of objects whose state changed between the two versions: snapshot
    differences, appearance/disappearance, and PMOs whose page content was
    modified in the range. *)

type stats = {
  archived_versions : int;
  object_snapshots : int;  (** snapshot references held *)
  page_images : int;  (** page copies held *)
  page_bytes : int;  (** total archived page bytes *)
}

val stats : t -> stats
