(** Capability object roots (§4.1).

    One ORoot exists per unique object, deduplicating checkpoint work for
    objects referenced by several cap groups and linking the runtime object
    to its backups.  Non-PMO objects keep two backup snapshots in
    alternation, so the snapshot belonging to the last {e committed}
    checkpoint survives while the next one is written.  Normal PMOs
    additionally own the versioned page table ({!Ckpt_page}). *)

type t = {
  obj_id : int;
  kind : Treesls_cap.Kobj.kind;
  mutable first_ver : int;  (** first checkpoint version including this object *)
  mutable last_seen_ver : int;  (** last checkpoint walk that reached it *)
  mutable runtime : Treesls_cap.Kobj.t option;
      (** the runtime object ("ORoot records the addresses of the runtime
          object and the corresponding backup objects", §4.1); needed by
          garbage collection to release the runtime frames of objects that
          left the tree *)
  mutable slot_a : (int * Snapshot.t) option;
  mutable slot_b : (int * Snapshot.t) option;
  mutable saved_gen : int;
      (** {!Treesls_cap.Kobj.gen} of the runtime object when it was last
          checkpointed; the incremental walk skips the object while the two
          match.  0 (never equal to a live generation, which starts at 1)
          until the first checkpoint. *)
  pages : Ckpt_page.t option;  (** Some for normal PMOs *)
}

val create : obj_id:int -> kind:Treesls_cap.Kobj.kind -> version:int -> has_pages:bool -> t

val save : t -> version:int -> Snapshot.t -> unit
(** Write a snapshot stamped [version] into the staler slot. *)

val at : t -> version:int -> Snapshot.t option
(** Snapshot stamped exactly [version]. *)

val latest_le : t -> version:int -> (int * Snapshot.t) option
(** Newest snapshot stamped [<= version]. *)

val pages_exn : t -> Ckpt_page.t
