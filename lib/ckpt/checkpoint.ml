module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Kernel = Treesls_kernel.Kernel
module Pagetable = Treesls_kernel.Pagetable
module Store = Treesls_nvm.Store
module Paddr = Treesls_nvm.Paddr
module Global_meta = Treesls_nvm.Global_meta
module Crash_site = Treesls_nvm.Crash_site
module Cost = Treesls_sim.Cost
module Clock = Treesls_sim.Clock
module Stats = Treesls_util.Stats
module Id_gen = Treesls_cap.Id_gen
module Probe = Treesls_obs.Probe

let now st = Clock.now (Kernel.clock st.State.kernel)

let archive_page st pmo pno paddr =
  match st.State.page_archive_hook with Some h -> h pmo pno paddr | None -> ()

(* vpn -> (pmo, page index) within a VM space.

   Regions are kept in an interval index sorted by start vpn so a lookup is
   a binary search instead of a scan of the whole region list (the protect
   pass resolves every dirty vpn, so this is on the STW path).  The index
   is cached per VM space and rebuilt whenever the region list changes —
   detected by physical identity of the (immutable-once-replaced) list, so
   a stale hit is impossible.  When regions overlap, the original code
   returned the first match in list order; the index preserves that by
   remembering each region's list position and scanning left from the
   binary-search point while the running max end vpn still covers the
   query. *)
type region_index = {
  ri_list : Kobj.vm_region list;  (* identity token for invalidation *)
  ri_sorted : (Kobj.vm_region * int) array;  (* by vr_vpn, with list position *)
  ri_max_end : int array;  (* ri_max_end.(i) = max end vpn over ri_sorted.(0..i) *)
}

let region_cache : (int, region_index) Hashtbl.t = Hashtbl.create 64

let build_region_index vms =
  let arr = Array.of_list (List.mapi (fun i r -> (r, i)) vms.Kobj.vs_regions) in
  Array.sort
    (fun ((a : Kobj.vm_region), ia) (b, ib) ->
      match compare a.Kobj.vr_vpn b.Kobj.vr_vpn with 0 -> compare ia ib | c -> c)
    arr;
  let max_end = Array.make (Array.length arr) 0 in
  let run = ref 0 in
  Array.iteri
    (fun i ((r : Kobj.vm_region), _) ->
      run := max !run (r.Kobj.vr_vpn + r.Kobj.vr_pages);
      max_end.(i) <- !run)
    arr;
  { ri_list = vms.Kobj.vs_regions; ri_sorted = arr; ri_max_end = max_end }

let region_index vms =
  match Hashtbl.find_opt region_cache vms.Kobj.vs_id with
  | Some idx when idx.ri_list == vms.Kobj.vs_regions -> idx
  | Some _ | None ->
    let idx = build_region_index vms in
    Hashtbl.replace region_cache vms.Kobj.vs_id idx;
    idx

let resolve_region vms vpn =
  let idx = region_index vms in
  let arr = idx.ri_sorted in
  let n = Array.length arr in
  (* rightmost entry starting at or before vpn *)
  let last = ref (-1) in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r, _ = arr.(mid) in
    if r.Kobj.vr_vpn <= vpn then begin
      last := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  let best = ref None in
  let i = ref !last in
  while !i >= 0 && idx.ri_max_end.(!i) > vpn do
    let r, pos = arr.(!i) in
    if vpn < r.Kobj.vr_vpn + r.Kobj.vr_pages then begin
      match !best with
      | Some (_, best_pos) when best_pos <= pos -> ()
      | Some _ | None -> best := Some (r, pos)
    end;
    decr i
  done;
  match !best with
  | Some (r, _) -> Some (r.Kobj.vr_pmo, vpn - r.Kobj.vr_vpn)
  | None -> None

(* Charge the cost of copying one object's own state into its backup. A
   full (first-time) checkpoint additionally pays allocation and structure
   construction, which is what separates the Full and Incr columns of
   Table 3. *)
let charge_object_copy st obj ~full =
  let store = Kernel.store st.State.kernel in
  let c = Store.cost store in
  let bytes = Kobj.copy_bytes obj in
  let copy = Cost.object_copy_ns c ~to_nvm:true ~bytes_len:bytes in
  if full then Store.charge store (c.Cost.alloc_small_ns + (3 * copy))
  else Store.charge store copy

(* Checkpoint one object (step 2). Returns true if it was a full (first)
   checkpoint. *)
let checkpoint_object st obj ~new_ver =
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  let c = Store.cost store in
  let oroot, full = State.oroot_for st obj ~version:new_ver in
  oroot.Oroot.last_seen_ver <- new_ver;
  oroot.Oroot.runtime <- Some obj;
  oroot.Oroot.saved_gen <- Kobj.gen obj;
  charge_object_copy st obj ~full;
  let snap = Snapshot.take obj in
  Oroot.save oroot ~version:new_ver snap;
  (* the snapshot lands in the ORoot's NVM slot: physical bytes, but no
     single device page backs the (modeled) object store *)
  Probe.wear_note ~subsystem:"ckpt.snapshot" ~bytes:(Snapshot.bytes snap);
  (match obj with
  | Kobj.Pmo pmo when pmo.Kobj.pmo_kind = Kobj.Pmo_normal ->
    let pages = Oroot.pages_exn oroot in
    if full then
      (* First checkpoint of this PMO: build a checkpointed-page record
         for every present page. Dominates full-PMO checkpoint time. *)
      Radix.iter
        (fun pno paddr ->
          ignore (Ckpt_page.ensure store pages ~pno ~born_ver:new_ver);
          archive_page st pmo pno paddr)
        pmo.Kobj.pmo_radix
    else
      List.iter
        (fun pno -> ignore (Ckpt_page.ensure store pages ~pno ~born_ver:new_ver))
        (State.drain_fresh st pmo)
  | Kobj.Pmo _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
  | Kobj.Notification _ | Kobj.Irq_notification _ -> ());
  (match obj with
  | Kobj.Vmspace vms when st.State.features.State.track_dirty ->
    (* Re-arm copy-on-write: mark pages dirtied since the last checkpoint
       read-only again. DRAM-cached pages stay writable — they are covered
       by stop-and-copy, and leaving them writable is precisely how hybrid
       copy eliminates their faults. *)
    let pt = Kernel.pagetable kernel vms in
    let protected_n =
      Pagetable.protect_dirty pt (fun vpn pte ->
          (match resolve_region vms vpn with
          | Some (pmo, pno) -> archive_page st pmo pno pte.Pagetable.paddr
          | None -> ());
          if Paddr.is_dram pte.Pagetable.paddr then false
          else begin
            Store.charge store c.Cost.mark_ro_ns;
            (* clear the hardware dirty bit along with re-protection: the
               page is now exactly as cold as its checkpoint *)
            pte.Pagetable.dirty <- false;
            true
          end)
    in
    ignore protected_n
  | Kobj.Vmspace _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Pmo _ | Kobj.Ipc_conn _
  | Kobj.Notification _ | Kobj.Irq_notification _ -> ());
  (full, Snapshot.bytes snap)

(* The asynchronous drain rides on the hybrid/CoW machinery: without dirty
   tracking, fault backups and the active list there is nothing to defer,
   so the feature silently degrades to eager capture. *)
let async_on st =
  let f = st.State.features in
  f.State.async_drain
  && st.State.drain_policy <> Drain.Eager
  && f.State.track_dirty && f.State.copy_on_fault && f.State.hybrid

(* Step 3: one core's traversal of its sub-list of the active page list. *)
let hybrid_sublist st ~new_ver entries counters =
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  let dirty_copied, migrated_in, migrated_out = counters in
  List.iter
    (fun (e : Active_list.entry) ->
      let pmo = e.Active_list.e_pmo and pno = e.Active_list.e_pno in
      match Radix.get pmo.Kobj.pmo_radix pno with
      | None -> Active_list.drop st.State.active e
      | Some runtime ->
        if not e.Active_list.e_dram then begin
          (* newly appended: NVM -> DRAM migration (swapped-out pages wait
             until a fault brings them back to NVM) *)
          if not (Paddr.is_nvm runtime) then ()
          else
          match Store.alloc_dram_page store with
          | None -> () (* DRAM cache full; stay on NVM *)
          | Some dram ->
            let oroot, _ = State.oroot_for st (Kobj.Pmo pmo) ~version:new_ver in
            let pages = Oroot.pages_exn oroot in
            ignore (Ckpt_page.ensure store pages ~pno ~born_ver:new_ver);
            Store.copy_page store ~src:runtime ~dst:dram;
            Kernel.remap_page kernel pmo ~pno dram;
            (* The old NVM runtime page becomes the latest backup. *)
            (match Ckpt_page.find pages pno with
            | Some cp when cp.Ckpt_page.b2 = None ->
              Ckpt_page.attach_runtime_as_backup pages ~pno ~old_runtime:runtime ~new_ver;
              Store.seal_page store runtime;
              (* CPP needs both backups: materialise b1 now if absent. *)
              (match cp.Ckpt_page.b1 with
              | Some _ -> ()
              | None ->
                let b1 = Store.alloc_page store in
                Store.copy_page store ~src:dram ~dst:b1;
                Store.seal_page store b1;
                cp.Ckpt_page.b1 <- Some b1;
                cp.Ckpt_page.b1_ver <- new_ver)
            | Some _ | None ->
              (* unexpected CPP state: undo the migration and retire the
                 entry — leaving it live would retry (and fail) the same
                 migration on every checkpoint *)
              Kernel.remap_page kernel pmo ~pno runtime;
              Store.free_dram_page store dram;
              Active_list.drop st.State.active e);
            (match Radix.get pmo.Kobj.pmo_radix pno with
            | Some p when Paddr.is_dram p ->
              e.Active_list.e_dram <- true;
              e.Active_list.e_idle <- 0;
              Kernel.clear_page_dirty kernel pmo ~pno;
              incr migrated_in;
              Crash_site.hit "ckpt.hybrid.migrated_in"
            | Some _ | None -> ())
        end
        else begin
          let oroot, _ = State.oroot_for st (Kobj.Pmo pmo) ~version:new_ver in
          let pages = Oroot.pages_exn oroot in
          if Kernel.page_dirty kernel pmo ~pno then begin
            if async_on st then begin
              (* async drain: capture the page logically now — protect it
                 and flip the dirty bookkeeping as the eager copy would —
                 but owe the copy itself to the backlog.  A write landing
                 before the drain reaches it faults into
                 [resolve_cow_fault] and pays exactly one page. *)
              archive_page st pmo pno runtime;
              List.iter
                (fun (pt, vpn) -> Pagetable.protect pt ~vpn)
                (Kernel.mappings_of_page kernel pmo ~pno);
              Store.charge store (Store.cost store).Cost.mark_ro_ns;
              Kernel.clear_page_dirty kernel pmo ~pno;
              e.Active_list.e_idle <- 0;
              Drain.enqueue st.State.drain { Drain.d_pmo = pmo; d_cps = pages; d_pno = pno }
            end
            else begin
              (* dirty DRAM page: stop-and-copy into the stale backup *)
              archive_page st pmo pno runtime;
              Ckpt_page.stop_and_copy_dram store pages ~runtime ~pno ~new_ver;
              Kernel.clear_page_dirty kernel pmo ~pno;
              e.Active_list.e_idle <- 0;
              incr dirty_copied;
              Crash_site.hit "ckpt.hybrid.copied"
            end
          end
          else begin
            e.Active_list.e_idle <- e.Active_list.e_idle + 1;
            if e.Active_list.e_idle > (Active_list.config st.State.active).Active_list.idle_limit
            then begin
              (* cold: DRAM -> NVM demotion *)
              let nvm_page = Ckpt_page.detach_runtime_slot store pages ~pno ~latest:(Some runtime) in
              Kernel.remap_page kernel pmo ~pno nvm_page;
              (* back on NVM: resume copy-on-write tracking *)
              List.iter
                (fun (pt, vpn) -> Pagetable.protect pt ~vpn)
                (Kernel.mappings_of_page kernel pmo ~pno);
              Store.free_dram_page store runtime;
              e.Active_list.e_dram <- false;
              Active_list.drop st.State.active e;
              incr migrated_out;
              Crash_site.hit "ckpt.hybrid.migrated_out"
            end
          end
        end)
    entries

(* An ORoot is dead when this walk's traversal did not reach its object.
   Keyed on the visited set rather than last_seen_ver because the
   incremental walk leaves the last_seen_ver of skipped (but live)
   objects stale on purpose. *)
let gc_dead_oroots st ~visited =
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  let dead =
    Hashtbl.fold
      (fun oid (o : Oroot.t) acc -> if not (Hashtbl.mem visited oid) then (oid, o) :: acc else acc)
      st.State.oroots []
  in
  List.iter
    (fun (oid, (o : Oroot.t)) ->
      (match o.Oroot.pages with
      | Some pages ->
        (* The object left the tree before this (now committed) checkpoint,
           so nothing can roll back to a state containing it any more: free
           its backup frames and its runtime frames (reachable through the
           runtime pointer the ORoot keeps). *)
        let runtime_of pno =
          match o.Oroot.runtime with
          | Some (Kobj.Pmo p) -> Radix.get p.Kobj.pmo_radix pno
          | Some _ | None -> None
        in
        Ckpt_page.free_all store pages ~runtime_of
      | None -> ());
      Hashtbl.remove st.State.oroots oid)
    dead

(* Post-commit probe tail, shared by the eager path (inside [run]) and the
   drain settle: counters/gauges for the committed version, wear telemetry,
   then the black-box sample last — it snapshots the whole registry and
   fires the SLO watchdog + adaptive-interval hook. *)
let emit_commit_probes st (r : Report.t) =
  let store = Kernel.store st.State.kernel in
  Probe.count "ckpt.runs" 1;
  Probe.count "ckpt.objects_walked" r.Report.objects_walked;
  Probe.count "ckpt.objects_skipped" r.Report.objects_skipped;
  Probe.count "ckpt.full_objects" r.Report.full_objects;
  Probe.gauge "ckpt.dirty_fraction_pct"
    (100 * r.Report.objects_walked / max 1 (r.Report.objects_walked + r.Report.objects_skipped));
  Probe.count "ckpt.pages.protected" r.Report.pages_protected;
  Probe.count "ckpt.pages.dirty_copied" r.Report.dram_dirty_copied;
  Probe.count "ckpt.pages.migrated_in" r.Report.migrated_in;
  Probe.count "ckpt.pages.migrated_out" r.Report.migrated_out;
  Probe.gauge "ckpt.cached_pages" r.Report.cached_pages;
  Probe.gauge "ckpt.version" r.Report.version;
  Probe.observe "ckpt.stw_ns" r.Report.stw_ns;
  Probe.observe "ckpt.captree_ns" r.Report.captree_ns;
  Probe.observe "ckpt.hybrid_ns" r.Report.hybrid_ns;
  Probe.observe "ckpt.others_ns" r.Report.others_ns;
  (* drain telemetry: the per-window backlog (0 when eager, so the gauge —
     and its tseries column — exists in both modes), the total protection
     flips the window rode on, and the resolved copy/fault counts *)
  Probe.gauge "ckpt.drain.backlog" r.Report.pages_drained;
  Probe.gauge "ckpt.pages.protected.last" (r.Report.pages_protected + r.Report.pages_drained);
  if r.Report.pages_drained > 0 then Probe.count "ckpt.drain.pages" r.Report.pages_drained;
  if r.Report.cow_faults > 0 then Probe.count "ckpt.drain.cow_faults" r.Report.cow_faults;
  if r.Report.drain_ns > 0 then Probe.observe "ckpt.drain_ns" r.Report.drain_ns;
  (* wear telemetry: WAF ×100 (integer gauge), per-subsystem cumulative
     bytes, device materialisation watermarks, and — with tracing on — a
     Perfetto counter-track sample of the same per-subsystem series *)
  Probe.gauge "ckpt.nvm.waf"
    (100 * r.Report.nvm_bytes_written / max 1 r.Report.logical_dirty_bytes);
  Probe.count "ckpt.nvm.bytes" r.Report.nvm_bytes_written;
  (match Probe.installed () with
  | Some p ->
    List.iter
      (fun (name, _writes, bytes) -> Probe.gauge ("nvm.bytes_written." ^ name) bytes)
      (Treesls_obs.Wearmap.subsystems (Probe.wearmap p))
  | None -> ());
  Probe.gauge "nvm.pages_touched" (Store.nvm_pages_touched store);
  Probe.gauge "dram.pages_touched" (Store.dram_pages_touched store);
  Probe.wear_counter_sample ();
  (* black-box sample last, once every post-commit gauge above is in the
     registry: one tseries sample per committed version, then the SLO
     watchdog and the adaptive-interval feedback hook *)
  Probe.tseries_sample ~version:r.Report.version ~stw_ns:r.Report.stw_ns
    ~interval_ns:st.State.interval_ns

(* Copy up to [limit] backlog pages into their stale CPP slots on the
   follower cores (metered — the shared clock does not advance; ops running
   meanwhile only pay for pages they fault on). *)
let drain_copies st (p : Drain.pending) ~limit =
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  let drain = st.State.drain in
  let copied = ref 0 in
  let meter = ref 0 in
  Treesls_obs.Wearmap.with_writer "ckpt.drain" (fun () ->
      Store.with_sink store (Store.Meter meter) (fun () ->
          let exhausted = ref false in
          while (not !exhausted) && !copied < limit do
            match Drain.pop drain with
            | None -> exhausted := true
            | Some e -> (
              let pmo = e.Drain.d_pmo and pno = e.Drain.d_pno in
              match Radix.get pmo.Kobj.pmo_radix pno with
              | Some runtime when Paddr.is_dram runtime ->
                Ckpt_page.stop_and_copy_dram store e.Drain.d_cps ~runtime ~pno
                  ~new_ver:p.Drain.p_ver;
                List.iter
                  (fun (pt, vpn) -> Pagetable.unprotect pt ~vpn)
                  (Kernel.mappings_of_page kernel pmo ~pno);
                incr copied;
                p.Drain.p_drained <- p.Drain.p_drained + 1;
                Crash_site.hit "ckpt.drain.copied"
              | Some _ | None ->
                (* page vanished or left DRAM since the STW: no copy owed *)
                ())
          done));
  p.Drain.p_drain_ns <- p.Drain.p_drain_ns + !meter;
  !copied

(* The settle step: the backlog is empty — apply the CoW restamps and
   drain-saved frames, bump the version (THE atomic commit, deferred from
   the STW), run the dead-ORoot GC against the walk's visited set, and
   release everything that waited on durability: the extsync callbacks,
   the wear/WAF accounting, the commit probes and the black-box sample. *)
let settle_commit st (p : Drain.pending) =
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  let meta = Store.meta store in
  let drain = st.State.drain in
  let meter = ref 0 in
  Treesls_obs.Wearmap.with_writer "ckpt.drain" (fun () ->
      Store.with_sink store (Store.Meter meter) (fun () ->
          Drain.apply_settle store drain ~ver:p.Drain.p_ver));
  p.Drain.p_drain_ns <- p.Drain.p_drain_ns + !meter;
  Crash_site.hit "ckpt.drain.settled";
  Global_meta.commit_checkpoint meta;
  Crash_site.hit "ckpt.version_bump";
  gc_dead_oroots st ~visited:p.Drain.p_visited;
  Crash_site.hit "ckpt.gc_done";
  Drain.clear_pending drain;
  Probe.span_at "ckpt.drain" ~ts_ns:p.Drain.p_stw_t1 ~dur_ns:(now st - p.Drain.p_stw_t1)
    ~args:
      [
        ("version", string_of_int p.Drain.p_ver);
        ("deferred", string_of_int p.Drain.p_enqueued);
        ("drained", string_of_int p.Drain.p_drained);
        ("cow_faults", string_of_int p.Drain.p_cow_faults);
      ];
  (* replies released below attribute to the STW window that staged them *)
  Probe.ckpt_committed ~version:p.Drain.p_ver ~stw_t0:p.Drain.p_stw_t0
    ~stw_t1:p.Drain.p_stw_t1;
  List.iter (fun cb -> cb ()) st.State.ckpt_callbacks;
  let wear_now = Probe.wear_total_bytes () in
  let nvm_bytes_written = wear_now - st.State.wear_mark in
  st.State.wear_mark <- wear_now;
  let logical_dirty_bytes =
    (Store.cost store).Cost.page_size
    * (p.Drain.p_report.Report.pages_protected + p.Drain.p_drained)
  in
  let report =
    {
      p.Drain.p_report with
      Report.nvm_bytes_written;
      logical_dirty_bytes;
      pages_drained = p.Drain.p_drained;
      cow_faults = p.Drain.p_cow_faults;
      drain_ns = p.Drain.p_drain_ns;
    }
  in
  st.State.last_report <- Some report;
  emit_commit_probes st report

(* One asynchronous drain step, called between operations (System.tick).
   Lazy copies a bounded batch per step; Deadline empties the backlog at
   the first opportunity.  Either way [run] force-settles any window still
   pending before the next capture — one staged version in flight, ever. *)
let drain_step st =
  match Drain.pending st.State.drain with
  | None -> 0
  | Some p ->
    let limit =
      match st.State.drain_policy with
      | Drain.Lazy -> st.State.drain_batch
      | Drain.Eager | Drain.Deadline -> max_int
    in
    let n = drain_copies st p ~limit in
    if Drain.backlog st.State.drain = 0 then settle_commit st p;
    n

let settle st =
  match Drain.pending st.State.drain with
  | None -> ()
  | Some p ->
    ignore (drain_copies st p ~limit:max_int);
    settle_commit st p

(* Write fault on a still-protected page while a drain window is pending
   (staged version N, committed version N-1).  Returns true when a window
   is pending — the fault was handled here and the caller (the Manager CoW
   hook) must not run the eager backup protocol on top. *)
let resolve_cow_fault st pmo pno =
  match Drain.pending st.State.drain with
  | None -> false
  | Some p ->
    let kernel = st.State.kernel in
    let store = Kernel.store kernel in
    let key = (pmo.Kobj.pmo_id, pno) in
    (match Drain.take st.State.drain key with
    | Some e -> (
      (* backlogged DRAM page: resolve its owed copy right now — the
         faulting op pays one page and the page reopens for writing *)
      match Radix.get pmo.Kobj.pmo_radix pno with
      | Some runtime when Paddr.is_dram runtime ->
        Treesls_obs.Wearmap.with_writer "ckpt.cow_fault" (fun () ->
            Ckpt_page.stop_and_copy_dram store e.Drain.d_cps ~runtime ~pno
              ~new_ver:p.Drain.p_ver);
        List.iter
          (fun (pt, vpn) -> Pagetable.unprotect pt ~vpn)
          (Kernel.mappings_of_page kernel pmo ~pno);
        p.Drain.p_drained <- p.Drain.p_drained + 1;
        p.Drain.p_cow_faults <- p.Drain.p_cow_faults + 1;
        Crash_site.hit "ckpt.cow_fault.resolved"
      | Some _ | None -> ())
    | None -> (
      (* NVM page protected at the STW: its backup must serve two masters —
         a crash mid-window restores to N-1, a settled window to N. *)
      match Hashtbl.find_opt st.State.oroots pmo.Kobj.pmo_id with
      | None -> ()
      | Some oroot -> (
        match (oroot.Oroot.pages, Radix.get pmo.Kobj.pmo_radix pno) with
        | Some pages, Some runtime when Paddr.is_nvm runtime -> (
          match Ckpt_page.find pages pno with
          | None -> ()
          | Some cp ->
            let committed = Global_meta.version (Store.meta store) in
            Treesls_obs.Wearmap.with_writer "ckpt.cow_fault" (fun () ->
                if Ckpt_page.cow_backup store pages ~runtime ~pno ~global:committed then begin
                  (* clean at N: the pre-image just banked equals the page's
                     content at both N-1 and N, so settle lifts the stamp to
                     N without another copy *)
                  Drain.note_restamp st.State.drain key cp;
                  p.Drain.p_cow_faults <- p.Drain.p_cow_faults + 1;
                  Crash_site.hit "ckpt.cow_fault.resolved"
                end
                else if
                  (cp.Ckpt_page.b1_ver = committed && cp.Ckpt_page.b1 <> None)
                  || (cp.Ckpt_page.b2_ver = committed && cp.Ckpt_page.b2 <> None)
                then begin
                  (* dirty at N (a backup stamped N-1 already exists): the
                     runtime holds the only copy of the staged content —
                     save it to a fresh frame before the write lands; settle
                     installs the frame as the N backup, a crash frees it *)
                  let frame = Store.alloc_page store in
                  Store.copy_page store ~src:runtime ~dst:frame;
                  Store.seal_page store frame;
                  Drain.note_saved st.State.drain key cp frame;
                  p.Drain.p_cow_faults <- p.Drain.p_cow_faults + 1;
                  Crash_site.hit "ckpt.cow_fault.resolved"
                end))
        | (Some _ | None), _ -> ())));
    true

let run st =
  (* one staged version in flight, ever: a window still draining must
     finish (deadline semantics) before the next capture starts *)
  settle st;
  let kernel = st.State.kernel in
  let store = Kernel.store kernel in
  let meta = Store.meta store in
  let new_ver = Global_meta.version meta + 1 in
  let t0 = now st in
  let stw_tok = Probe.enter "ckpt.stw" ~args:[ ("version", string_of_int new_ver) ] in
  (* step 1: quiesce *)
  let quiesce_tok = Probe.enter "ckpt.quiesce" in
  let ipi_ns = Kernel.quiesce kernel in
  Probe.exit quiesce_tok;
  Global_meta.begin_checkpoint meta;
  Crash_site.hit "ckpt.begin";
  (* step 2: leader walks the capability tree *)
  let walk_tok = Probe.enter "ckpt.captree" in
  let walk0 = now st in
  let per_kind = Hashtbl.create 8 in
  (* Owner map for subtree attribution: object id -> owning process name.
     First process wins for objects shared across cap groups (e.g. IPC
     connections installed in both ends); everything reachable only from
     the root (boot services' parents, the root group itself) stays
     "kernel".  Host-time bookkeeping only — no simulated cost; cached
     across checkpoints and invalidated by the kernel's process epoch so
     the per-process tree walks don't repeat while the process population
     is unchanged.  Objects created since the cache was built (same
     processes, new caps) miss the table and are attributed on demand. *)
  let owner =
    let epoch = Kernel.procs_epoch kernel in
    match st.State.owner_cache with
    | Some o when st.State.owner_cache_epoch = epoch -> o
    | Some _ | None ->
      let owner = Hashtbl.create 1024 in
      List.iter
        (fun (p : Kernel.process) ->
          Kobj.iter_tree ~root:p.Kernel.cg (fun obj ->
              let oid = Kobj.id obj in
              if not (Hashtbl.mem owner oid) then Hashtbl.add owner oid p.Kernel.pname))
        (Kernel.processes kernel);
      st.State.owner_cache <- Some owner;
      st.State.owner_cache_epoch <- epoch;
      owner
  in
  let owner_of oid =
    match Hashtbl.find_opt owner oid with
    | Some name -> name
    | None ->
      (* cache built before this object existed: find its process without
         a full walk, and memoize the answer either way *)
      let name =
        let found = ref None in
        (try
           List.iter
             (fun (p : Kernel.process) ->
               Kobj.iter_tree ~root:p.Kernel.cg (fun obj ->
                   if Kobj.id obj = oid then begin
                     found := Some p.Kernel.pname;
                     raise Exit
                   end))
             (Kernel.processes kernel)
         with Exit -> ());
        Option.value ~default:"kernel" !found
      in
      Hashtbl.add owner oid name;
      name
  in
  (* group name -> (ns, objects, per-kind ns) *)
  let per_group : (string, int ref * int ref * (Kobj.kind, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let objects = ref 0 and fulls = ref 0 and snap_bytes = ref 0 in
  let protected_before =
    List.fold_left
      (fun acc p -> acc + Pagetable.dirty_count (Kernel.pagetable kernel p.Kernel.vms))
      0 (Kernel.processes kernel)
  in
  (* Incremental walk: an object whose generation still matches the one
     recorded at its last checkpoint has not been mutated, so its backups
     are already current — skip snapshot/copy/charge entirely.  The
     traversal itself is host-time only, and the visited set it builds
     doubles as the liveness epoch: ORoots of unreached objects are the
     dead ones, so skipped objects need no per-object liveness write. *)
  let incremental = st.State.features.State.incremental_walk && not st.State.force_full in
  let visited = Hashtbl.create 512 in
  let skipped = ref 0 in
  Treesls_obs.Wearmap.with_writer "ckpt.captree" (fun () ->
  Kobj.iter_tree ~root:(Kernel.root kernel) (fun obj ->
      let oid = Kobj.id obj in
      Hashtbl.replace visited oid ();
      let clean =
        incremental
        && (match Hashtbl.find_opt st.State.oroots oid with
           | Some o -> o.Oroot.saved_gen = Kobj.gen obj
           | None -> false)
      in
      if clean then incr skipped
      else begin
        let t_obj0 = now st in
        let full, bytes = checkpoint_object st obj ~new_ver in
        Crash_site.hit "ckpt.captree.obj";
        let dt = now st - t_obj0 in
        incr objects;
        if full then incr fulls;
        snap_bytes := !snap_bytes + bytes;
        let kind = Kobj.kind obj in
        Hashtbl.replace per_kind kind
          (dt + Option.value ~default:0 (Hashtbl.find_opt per_kind kind));
        let gname = owner_of oid in
        let g_ns, g_objs, g_kinds =
          match Hashtbl.find_opt per_group gname with
          | Some g -> g
          | None ->
            let g = (ref 0, ref 0, Hashtbl.create 8) in
            Hashtbl.add per_group gname g;
            g
        in
        g_ns := !g_ns + dt;
        incr g_objs;
        Hashtbl.replace g_kinds kind (dt + Option.value ~default:0 (Hashtbl.find_opt g_kinds kind));
        let cost_stats = State.obj_cost st kind in
        Stats.add (if full then cost_stats.State.full else cost_stats.State.incr) (float_of_int dt)
      end));
  st.State.force_full <- false;
  let walk_ns = now st - walk0 in
  Probe.exit walk_tok
    ~args:
      [
        ("objects", string_of_int !objects);
        ("full", string_of_int !fulls);
        ("skipped", string_of_int !skipped);
        ("snapshot_bytes", string_of_int !snap_bytes);
      ];
  Crash_site.hit "ckpt.captree.done";
  (* step 3: parallel hybrid copy by the other cores *)
  let dirty_copied = ref 0 and migrated_in = ref 0 and migrated_out = ref 0 in
  let hybrid_ns =
    if st.State.features.State.hybrid then begin
      let cores = max 1 (Kernel.ncores kernel - 1) in
      let sublists = Active_list.sublists st.State.active ~cores in
      let worst = ref 0 in
      Array.iter
        (fun entries ->
          let meter = ref 0 in
          Treesls_obs.Wearmap.with_writer "ckpt.hybrid" (fun () ->
              Store.with_sink store (Store.Meter meter) (fun () ->
                  hybrid_sublist st ~new_ver entries (dirty_copied, migrated_in, migrated_out)));
          if !meter > !worst then worst := !meter)
        sublists;
      Active_list.compact st.State.active;
      !worst
    end
    else 0
  in
  (* the pause lasts until both the leader and the slowest core finish *)
  if hybrid_ns > walk_ns then Clock.advance (Kernel.clock kernel) (hybrid_ns - walk_ns);
  (* The hybrid copy ran on the other cores in parallel with the leader's
     walk: record it with explicit timestamps, overlapping ckpt.captree. *)
  if st.State.features.State.hybrid then
    Probe.span_at "ckpt.hybrid_copy" ~ts_ns:walk0 ~dur_ns:hybrid_ns
      ~args:
        [
          ("dirty_copied", string_of_int !dirty_copied);
          ("migrated_in", string_of_int !migrated_in);
          ("migrated_out", string_of_int !migrated_out);
        ];
  (* step 4: atomic commit — or, with the drain on, staging *)
  let others_tok = Probe.enter "ckpt.others" in
  let others0 = now st in
  (* The id high-water mark is part of the staged state: it must be in
     place BEFORE the version bump, or a crash right after the bump would
     restore with a stale mark and recycle ids still owned by restored
     objects. A crash before the bump leaves it too high for the rolled
     back version, which only costs id-space gaps. *)
  st.State.ids_hwm <- Id_gen.current (Kernel.ids kernel);
  (* Everything is staged.  With an empty backlog the version bump below
     is THE atomic commit; with deferred copies outstanding the bump (and
     with it the GC, the extsync callbacks, wear accounting and the
     black-box sample) waits in [settle_commit] until the drain empties —
     a mid-window crash rolls back to the still-committed N-1. *)
  Crash_site.hit "ckpt.publish";
  let enqueued = Drain.backlog st.State.drain in
  if enqueued = 0 then begin
    Global_meta.commit_checkpoint meta;
    Crash_site.hit "ckpt.version_bump";
    gc_dead_oroots st ~visited;
    Crash_site.hit "ckpt.gc_done"
  end;
  Store.charge store (Store.cost store).Cost.tlb_shootdown_ns;
  let others_ns = now st - others0 in
  Probe.exit others_tok;
  (* step 5: resume *)
  let resume_tok = Probe.enter "ckpt.resume" in
  let resume_ns = Kernel.resume_cores kernel in
  Probe.exit resume_tok;
  let stw_ns = now st - t0 in
  Probe.exit stw_tok ~args:[ ("stw_ns", string_of_int stw_ns) ];
  let report =
    {
      Report.version = new_ver;
      stw_ns;
      ipi_ns = ipi_ns + resume_ns;
      captree_ns = walk_ns;
      others_ns;
      hybrid_ns;
      per_kind_ns = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_kind [];
      per_group =
        Hashtbl.fold
          (fun name (g_ns, g_objs, g_kinds) acc ->
            ( name,
              {
                Report.g_ns = !g_ns;
                g_objects = !g_objs;
                g_kinds = Hashtbl.fold (fun k v acc -> (k, v) :: acc) g_kinds [];
              } )
            :: acc)
          per_group [];
      objects_walked = !objects;
      full_objects = !fulls;
      objects_skipped = !skipped;
      pages_protected = protected_before;
      dram_dirty_copied = !dirty_copied;
      migrated_in = !migrated_in;
      migrated_out = !migrated_out;
      cached_pages = Active_list.cached_count st.State.active;
      snapshot_bytes = !snap_bytes;
      nvm_bytes_written = 0;
      logical_dirty_bytes = 0;
      pages_drained = 0;
      cow_faults = 0;
      drain_ns = 0;
    }
  in
  if enqueued = 0 then begin
    (* eager commit: record the commit + STW window first, so the extsync
       callbacks below can attribute each released reply to this version
       (and bind flow arrows to the ckpt.stw slice just closed) *)
    Probe.ckpt_committed ~version:new_ver ~stw_t0:t0 ~stw_t1:(t0 + stw_ns);
    (* external synchrony callbacks run after the commit (release replies) *)
    List.iter (fun cb -> cb ()) st.State.ckpt_callbacks;
    (* Write-amplification: physical NVM bytes landed since the previous
       checkpoint (wearmap delta — app data, CoW backups, hybrid copies,
       snapshots, journal, meta) over the application-level dirty delta
       (dirty pages × page size, identical whatever the walk strategy). *)
    let wear_now = Probe.wear_total_bytes () in
    let nvm_bytes_written = wear_now - st.State.wear_mark in
    st.State.wear_mark <- wear_now;
    let logical_dirty_bytes =
      (Store.cost store).Cost.page_size * (protected_before + !dirty_copied)
    in
    let report = { report with Report.nvm_bytes_written; logical_dirty_bytes } in
    st.State.last_report <- Some report;
    emit_commit_probes st report;
    report
  end
  else begin
    (* async: the STW only staged version N.  Publish the window — the
       drain ([drain_step]/[settle]) owes [enqueued] copies, and the
       durability point with everything downstream of it moves to
       [settle_commit].  The partial report carries the STW-side truth;
       wear/WAF and drain fields are finalised at settle. *)
    Probe.gauge "ckpt.drain.backlog" enqueued;
    Drain.publish st.State.drain
      {
        Drain.p_ver = new_ver;
        p_visited = visited;
        p_stw_t0 = t0;
        p_stw_t1 = t0 + stw_ns;
        p_enqueued = enqueued;
        p_report = report;
        p_drained = 0;
        p_cow_faults = 0;
        p_drain_ns = 0;
      };
    st.State.last_report <- Some report;
    report
  end
