type group_cost = {
  g_ns : int;
  g_objects : int;
  g_kinds : (Treesls_cap.Kobj.kind * int) list;
}

type t = {
  version : int;
  stw_ns : int;
  ipi_ns : int;
  captree_ns : int;
  others_ns : int;
  hybrid_ns : int;
  per_kind_ns : (Treesls_cap.Kobj.kind * int) list;
  per_group : (string * group_cost) list;
  objects_walked : int;
  full_objects : int;
  objects_skipped : int;
  pages_protected : int;
  dram_dirty_copied : int;
  migrated_in : int;
  migrated_out : int;
  cached_pages : int;
  snapshot_bytes : int;
  nvm_bytes_written : int;
  logical_dirty_bytes : int;
  pages_drained : int;  (* backlog copies completed off the STW path *)
  cow_faults : int;  (* protected-page write faults resolved mid-drain *)
  drain_ns : int;  (* metered follower-core drain time *)
}

(* write-amplification factor: physical NVM bytes landed this interval per
   logical dirty byte (dirty pages × page size); numerator floor of 1 keeps
   an idle interval finite *)
let waf t = float_of_int t.nvm_bytes_written /. float_of_int (max 1 t.logical_dirty_bytes)

let zero =
  {
    version = 0;
    stw_ns = 0;
    ipi_ns = 0;
    captree_ns = 0;
    others_ns = 0;
    hybrid_ns = 0;
    per_kind_ns = [];
    per_group = [];
    objects_walked = 0;
    full_objects = 0;
    objects_skipped = 0;
    pages_protected = 0;
    dram_dirty_copied = 0;
    migrated_in = 0;
    migrated_out = 0;
    cached_pages = 0;
    snapshot_bytes = 0;
    nvm_bytes_written = 0;
    logical_dirty_bytes = 0;
    pages_drained = 0;
    cow_faults = 0;
    drain_ns = 0;
  }

(* costliest subtree first; name breaks ties so output is deterministic *)
let sorted_groups t =
  List.sort
    (fun (na, a) (nb, b) ->
      match Int.compare b.g_ns a.g_ns with 0 -> compare na nb | c -> c)
    t.per_group

(* Collapsed-stack ("folded") lines for flamegraph tooling: one line per
   leaf stack, space-separated value, ';'-separated frames.  Frames must
   not contain spaces, so kind names like "Cap Group" are underscored. *)
let folded_lines t =
  let frame s = String.map (fun c -> if c = ' ' then '_' else c) s in
  let captree =
    List.concat_map
      (fun (name, g) ->
        match
          List.sort
            (fun (a, _) (b, _) ->
              compare (Treesls_cap.Kobj.kind_name a) (Treesls_cap.Kobj.kind_name b))
            g.g_kinds
        with
        | [] -> [ Printf.sprintf "ckpt;captree;%s %d" (frame name) g.g_ns ]
        | kinds ->
          List.map
            (fun (k, ns) ->
              Printf.sprintf "ckpt;captree;%s;%s %d" (frame name)
                (frame (Treesls_cap.Kobj.kind_name k))
                ns)
            kinds)
      (sorted_groups t)
  in
  let phase name ns = if ns > 0 then [ Printf.sprintf "ckpt;%s %d" name ns ] else [] in
  let attributed = List.fold_left (fun acc (_, g) -> acc + g.g_ns) 0 t.per_group in
  phase "ipi" t.ipi_ns
  @ captree
  @ phase "captree;unattributed" (max 0 (t.captree_ns - attributed))
  @ phase "others" t.others_ns
  @ phase "hybrid_copy" t.hybrid_ns

(* Every field is printed (the format is pinned by a tier-1 round-trip
   test); per_kind_ns is sorted by kind name so the output is
   deterministic regardless of walk order. *)
let pp ppf t =
  Format.fprintf ppf
    "ckpt v%d: stw=%.1fus (ipi=%.1f captree=%.1f others=%.1f | hybrid=%.1f) objs=%d(full %d) \
     skip=%d ro=%d sc=%d mig=+%d/-%d cached=%d snap=%dB nvm=%dB/%dB waf=%.2f drain=%d/%.1fus \
     cowf=%d"
    t.version
    (float_of_int t.stw_ns /. 1e3)
    (float_of_int t.ipi_ns /. 1e3)
    (float_of_int t.captree_ns /. 1e3)
    (float_of_int t.others_ns /. 1e3)
    (float_of_int t.hybrid_ns /. 1e3)
    t.objects_walked t.full_objects t.objects_skipped t.pages_protected t.dram_dirty_copied
    t.migrated_in t.migrated_out t.cached_pages t.snapshot_bytes t.nvm_bytes_written
    t.logical_dirty_bytes (waf t) t.pages_drained
    (float_of_int t.drain_ns /. 1e3)
    t.cow_faults;
  (match
     List.sort
       (fun (a, _) (b, _) ->
         compare (Treesls_cap.Kobj.kind_name a) (Treesls_cap.Kobj.kind_name b))
       t.per_kind_ns
   with
  | [] -> ()
  | kinds ->
    Format.fprintf ppf " kinds=[%s]"
      (String.concat "; "
         (List.map
            (fun (k, ns) -> Printf.sprintf "%s=%dns" (Treesls_cap.Kobj.kind_name k) ns)
            kinds)));
  match sorted_groups t with
  | [] -> ()
  | groups ->
    Format.fprintf ppf " groups=[%s]"
      (String.concat "; "
         (List.map (fun (name, g) -> Printf.sprintf "%s=%dns/%d" name g.g_ns g.g_objects) groups))
