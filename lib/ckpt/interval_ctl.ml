(* Adaptive checkpoint-interval controller (ROADMAP item 5).

   A PID-style loop over the tseries black box: at every commit the
   post-sample hook reads the windowed enq2vis p99 and retunes the
   interval multiplicatively against a latency SLO — shrink while the
   p99 overshoots, grow toward the ceiling while there is headroom, and
   grow fast when a whole interval passed with no released request at
   all (idle).  Between commits a cheap pressure poll watches the count
   of replies parked on extsync rings: a burst arriving while the
   interval sits near its idle ceiling would otherwise wait a whole long
   interval for visibility, so pressure clamps the interval (and thereby
   the armed deadline) straight to the floor once per burst.

   The controller only ever *suggests* a new interval; the system layer
   owns the actuator (Manager.set_interval) and the feature gate
   (State.features.adaptive_interval). *)

module Tseries = Treesls_obs.Tseries

type config = {
  slo_p99_ns : int;  (* windowed enq2vis p99 target *)
  min_interval_ns : int;
  max_interval_ns : int;
  kp : float;  (* proportional gain on relative error *)
  ki : float;  (* integral gain *)
  grow : float;  (* idle growth factor per commit *)
  pressure_threshold : int;  (* parked replies that trigger the burst clamp *)
}

let default_config =
  {
    slo_p99_ns = 300_000;
    min_interval_ns = 100_000;
    max_interval_ns = 5_000_000;
    kp = 0.5;
    ki = 0.1;
    grow = 1.5;
    pressure_threshold = 32;
  }

type t = {
  cfg : config;
  mutable integral : float;
  mutable retunes : int;  (* on_sample suggestions that changed the interval *)
  mutable pressure_clamps : int;
  mutable last_clamp_ns : int;
}

let create cfg =
  if cfg.min_interval_ns <= 0 || cfg.max_interval_ns < cfg.min_interval_ns then
    invalid_arg "Interval_ctl.create: bad interval bounds";
  (* "long ago", but far enough from min_int that [now_ns - last_clamp_ns]
     cannot overflow in the cooldown test *)
  { cfg; integral = 0.0; retunes = 0; pressure_clamps = 0; last_clamp_ns = min_int / 2 }

let config t = t.cfg
let retunes t = t.retunes
let pressure_clamps t = t.pressure_clamps

let clamp_ns cfg ns =
  if ns < cfg.min_interval_ns then cfg.min_interval_ns
  else if ns > cfg.max_interval_ns then cfg.max_interval_ns
  else ns

(* Per-step factor bounds: the loop converges in a few commits without
   slamming between the rails on one noisy window. *)
let max_shrink = 0.5
let max_growth = 1.5

(* [drain_backlog]: pages still owed by a pending async-drain window.
   Shrinking the interval while copies are in flight would stack a new
   capture onto an unfinished drain (forcing a stop-the-world settle), so
   shrink proposals are held — growth and no-ops pass through. *)
let on_sample t ts ~interval_ns ~drain_backlog =
  match Tseries.latest ts with
  | None -> None
  | Some s ->
    let released_this_commit =
      match Tseries.value ts s "req.enq2vis.n" with Some n -> n | None -> 0
    in
    let proposed =
      if released_this_commit = 0 then begin
        (* idle: decay the integral and back off toward the ceiling *)
        t.integral <- t.integral *. 0.5;
        clamp_ns t.cfg (int_of_float (float_of_int interval_ns *. t.cfg.grow))
      end
      else begin
        match Tseries.value ts s "req.enq2vis.p99_ns" with
        | None | Some 0 -> interval_ns
        | Some p99 ->
          let slo = float_of_int t.cfg.slo_p99_ns in
          let err = (slo -. float_of_int p99) /. slo in
          t.integral <- Float.max (-2.0) (Float.min 2.0 (t.integral +. err));
          let factor = 1.0 +. (t.cfg.kp *. err) +. (t.cfg.ki *. t.integral) in
          let factor = Float.max max_shrink (Float.min max_growth factor) in
          clamp_ns t.cfg (int_of_float (float_of_int interval_ns *. factor))
      end
    in
    if proposed = interval_ns then None
    else if proposed < interval_ns && drain_backlog > 0 then None
    else begin
      t.retunes <- t.retunes + 1;
      Some proposed
    end

(* Re-arm guard: the clamp must fire once per burst, not once per poll —
   resetting the deadline on every poll would postpone the checkpoint
   forever.  The PID loop keeps a busy interval within ~2x the floor, so
   requiring 4x floor means only a burst that arrives during idle
   back-off can trigger it; the cooldown covers the clamp-to-commit
   window. *)
let pressure_rearm_factor = 4

let on_pressure t ~now_ns ~pending ~interval_ns ~drain_backlog =
  if
    pending >= t.cfg.pressure_threshold
    && drain_backlog = 0
    && interval_ns > pressure_rearm_factor * t.cfg.min_interval_ns
    && now_ns - t.last_clamp_ns >= t.cfg.min_interval_ns
  then begin
    t.last_clamp_ns <- now_ns;
    t.pressure_clamps <- t.pressure_clamps + 1;
    t.integral <- 0.0;
    Some t.cfg.min_interval_ns
  end
  else None
