(** Whole-system restore (step 7 of Figure 5).

    Entry point after a power failure: replays the allocator journal,
    rolls in-flight page allocations back, revives the backup capability
    tree at the last committed version into a fresh runtime tree (object
    ids preserved), rebuilds derived state (scheduler queue, empty page
    tables) and returns the recovered kernel.

    Eternal PMOs are revived with their crash-time page frames — their
    content is deliberately {e not} rolled back (§5). *)

exception No_checkpoint
(** Raised when no checkpoint was ever committed. *)

exception
  Corrupt_backup of {
    pmo_id : int;
    pno : int;
    paddr : Treesls_nvm.Paddr.t;
  }
(** Data reliability (paper §8): the page chosen for restore is a sealed
    backup whose checksum no longer matches — NVM media corruption.
    The caller can repair the frame from an {!Eidetic} archive (rewrite
    the content and re-seal) and retry, or fall back to an older archived
    version. *)

type report = {
  restored_objects : int;
  dropped_objects : int;  (** objects born after the restored version *)
  pages_restored : int;
  pages_dropped : int;  (** page frames rolled back and freed *)
  restore_ns : int;  (** simulated time the whole restore took *)
  version : int;  (** the version the system was rolled back to *)
}

val run : State.t -> report
(** Recover; on success [State.kernel] is the new runtime kernel. *)

(** {2 Read-only walkers}

    The restore decision logic, exposed for inspection without mutating
    anything. The state auditor ([Treesls_audit]) replays the choices the
    restore path {e would} make against the live tree to check that every
    frame a rollback needs exists and verifies. *)

val tree_radixes :
  Treesls_cap.Kobj.cap_group option -> (int, Treesls_nvm.Paddr.t Treesls_cap.Radix.t) Hashtbl.t
(** PMO id -> radix for every PMO reachable from [root] (empty on [None]). *)

val iter_restore_choices :
  State.t ->
  radixes:(int, Treesls_nvm.Paddr.t Treesls_cap.Radix.t) Hashtbl.t ->
  global:int ->
  (pmo_id:int ->
  pno:int ->
  cp:Ckpt_page.cp ->
  choice:[ `Drop | `Use of Treesls_nvm.Paddr.t ] ->
  unit) ->
  unit
(** Visit every checkpointed-page record of every ORoot alive at [global]
    with the restore decision it would produce. Pure read. *)
