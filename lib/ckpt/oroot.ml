type t = {
  obj_id : int;
  kind : Treesls_cap.Kobj.kind;
  mutable first_ver : int;
  mutable last_seen_ver : int;
  mutable runtime : Treesls_cap.Kobj.t option;
  mutable slot_a : (int * Snapshot.t) option;
  mutable slot_b : (int * Snapshot.t) option;
  mutable saved_gen : int;
  pages : Ckpt_page.t option;
}

let create ~obj_id ~kind ~version ~has_pages =
  {
    obj_id;
    kind;
    first_ver = version;
    last_seen_ver = version;
    runtime = None;
    slot_a = None;
    slot_b = None;
    saved_gen = 0;
    pages = (if has_pages then Some (Ckpt_page.create ()) else None);
  }

let slot_ver = function Some (v, _) -> v | None -> -1

let save t ~version snap =
  if slot_ver t.slot_a <= slot_ver t.slot_b then t.slot_a <- Some (version, snap)
  else t.slot_b <- Some (version, snap)

let at t ~version =
  match (t.slot_a, t.slot_b) with
  | Some (v, s), _ when v = version -> Some s
  | _, Some (v, s) when v = version -> Some s
  | _, _ -> None

let latest_le t ~version =
  let pick = function Some (v, s) when v <= version -> Some (v, s) | _ -> None in
  match (pick t.slot_a, pick t.slot_b) with
  | (Some (va, _) as a), Some (vb, sb) -> if vb > va then Some (vb, sb) else a
  | (Some _ as a), None -> a
  | None, (Some _ as b) -> b
  | None, None -> None

let pages_exn t =
  match t.pages with
  | Some p -> p
  | None -> invalid_arg "Oroot.pages_exn: not a page-bearing object"
