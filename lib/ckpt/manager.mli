(** The checkpoint manager: policy and lifecycle.

    Owns the {!State}, installs the kernel hooks (copy-on-write backup and
    fresh-page tracking), drives periodic checkpoints on the simulated
    clock, and orchestrates crash/recovery.

    Typical use:
    {[
      let kernel = Kernel.boot () in
      let mgr = Manager.attach kernel in
      Manager.set_interval mgr (Some 1_000_000) (* 1 ms *);
      (* ... run application work, calling [tick] between operations ... *)
      Manager.crash mgr;
      let _report = Manager.recover mgr in
      let kernel = Manager.kernel mgr in
      ...
    ]} *)

module Kernel = Treesls_kernel.Kernel

type t

val attach :
  ?active_cfg:Active_list.config -> ?features:State.features -> Kernel.t -> t
(** Install hooks into a freshly booted kernel. *)

val state : t -> State.t
val kernel : t -> Kernel.t
val features : t -> State.features
val version : t -> int
(** Last committed checkpoint version. *)

val checkpoint : t -> Report.t
(** Take a checkpoint now. *)

val set_interval : t -> int option -> unit
(** Periodic checkpointing every [ns] of simulated time ([None] disables).
    The next checkpoint is scheduled relative to the current clock. *)

val interval : t -> int option

val tick : t -> Report.t option
(** Take a checkpoint if the deadline passed (call between operations). *)

val next_deadline : t -> int option

(** {2 Asynchronous drain}

    Entry points for the split-capture checkpoint
    ([State.features.async_drain]); all are cheap no-ops when no drain
    window is pending. *)

val drain_step : t -> int
(** Copy a policy-sized batch of backlog pages; settles when the backlog
    empties. Returns pages copied. *)

val drain_settle : t -> unit
(** Force the pending window durable now. *)

val drain_backlog : t -> int
val drain_pending_version : t -> int option
val drain_saved_frames : t -> Treesls_nvm.Paddr.t list
val drain_policy : t -> Drain.policy
val set_drain_policy : t -> Drain.policy -> unit
val set_drain_batch : t -> int -> unit
(** Backlog pages per [Lazy] drain step (clamped to >= 1). *)

val on_checkpoint : t -> (unit -> unit) -> unit
(** Register a checkpoint callback (external synchrony, §5); volatile —
    re-register after recovery. *)

val crash : t -> unit
(** Power failure: captures the crash-time tree, crashes the kernel. *)

val recover : t -> Restore.report
(** Journal replay + whole-system restore; re-installs hooks on the new
    kernel. Raises {!Restore.No_checkpoint} if nothing was committed. *)

(** {2 Read-only walkers}

    Used by the state auditor ([Treesls_audit]) to inspect the backup tree
    without reaching through {!state}. None of these mutate or charge
    simulated time. *)

val iter_oroots : t -> (int -> Oroot.t -> unit) -> unit
(** Visit every ORoot (live and not-yet-GC'd), keyed by object id. *)

val find_oroot : t -> int -> Oroot.t option
val oroot_count : t -> int

val checkpoint_bytes : t -> int
val last_report : t -> Report.t option
val obj_costs : t -> (Treesls_cap.Kobj.kind * State.obj_cost) list
val reset_obj_costs : t -> unit
