module Kobj = Treesls_cap.Kobj
module Kernel = Treesls_kernel.Kernel
module Stats = Treesls_util.Stats

type features = {
  mutable ckpt_enabled : bool;
  mutable track_dirty : bool;
  mutable copy_on_fault : bool;
  mutable hybrid : bool;
  mutable incremental_walk : bool;
  mutable adaptive_interval : bool;
  mutable async_drain : bool;
}

type obj_cost = { full : Stats.t; incr : Stats.t; restore : Stats.t }

type t = {
  mutable kernel : Kernel.t;
  oroots : (int, Oroot.t) Hashtbl.t;
  active : Active_list.t;
  mutable root_id : int;
  mutable ids_hwm : int;
  features : features;
  pending_fresh : (int, (Kobj.pmo * int list) ref) Hashtbl.t;
  obj_costs : (Kobj.kind, obj_cost) Hashtbl.t;
  mutable ckpt_callbacks : (unit -> unit) list;
  mutable page_archive_hook : (Kobj.pmo -> int -> Treesls_nvm.Paddr.t -> unit) option;
  mutable crashed_root : Kobj.cap_group option;
  mutable interval_ns : int option;
  mutable next_ckpt_at : int;
  mutable last_report : Report.t option;
  mutable force_full : bool;
  mutable owner_cache : (int, string) Hashtbl.t option;
  mutable owner_cache_epoch : int;
  mutable wear_mark : int;
  drain : Drain.t;
  mutable drain_policy : Drain.policy;
  mutable drain_batch : int;  (* Lazy policy: backlog pages copied per tick *)
}

let default_features () =
  {
    ckpt_enabled = true;
    track_dirty = true;
    copy_on_fault = true;
    hybrid = true;
    incremental_walk = true;
    adaptive_interval = false;
    async_drain = false;
  }

let create kernel active_cfg features =
  {
    kernel;
    oroots = Hashtbl.create 512;
    active = Active_list.create active_cfg;
    root_id = Kobj.id (Kobj.Cap_group (Kernel.root kernel));
    ids_hwm = 0;
    features;
    pending_fresh = Hashtbl.create 64;
    obj_costs = Hashtbl.create 8;
    ckpt_callbacks = [];
    page_archive_hook = None;
    crashed_root = None;
    interval_ns = None;
    next_ckpt_at = 0;
    last_report = None;
    force_full = true;
    owner_cache = None;
    owner_cache_epoch = -1;
    wear_mark = 0;
    drain = Drain.create ();
    drain_policy = Drain.Lazy;
    drain_batch = 8;
  }

let oroot_for t obj ~version =
  let oid = Kobj.id obj in
  match Hashtbl.find_opt t.oroots oid with
  | Some o -> (o, false)
  | None ->
    let has_pages =
      match obj with
      | Kobj.Pmo p -> p.Kobj.pmo_kind = Kobj.Pmo_normal
      | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
      | Kobj.Notification _ | Kobj.Irq_notification _ -> false
    in
    let o = Oroot.create ~obj_id:oid ~kind:(Kobj.kind obj) ~version ~has_pages in
    Hashtbl.replace t.oroots oid o;
    (o, true)

let note_fresh_page t pmo pno =
  match Hashtbl.find_opt t.pending_fresh pmo.Kobj.pmo_id with
  | Some r ->
    let p, l = !r in
    r := (p, pno :: l)
  | None -> Hashtbl.replace t.pending_fresh pmo.Kobj.pmo_id (ref (pmo, [ pno ]))

let drain_fresh t pmo =
  match Hashtbl.find_opt t.pending_fresh pmo.Kobj.pmo_id with
  | None -> []
  | Some r ->
    let _, pnos = !r in
    Hashtbl.remove t.pending_fresh pmo.Kobj.pmo_id;
    pnos

let obj_cost t kind =
  match Hashtbl.find_opt t.obj_costs kind with
  | Some c -> c
  | None ->
    let c = { full = Stats.create (); incr = Stats.create (); restore = Stats.create () } in
    Hashtbl.replace t.obj_costs kind c;
    c

let note_crash t =
  t.crashed_root <- Some (Kernel.root t.kernel);
  Active_list.clear t.active;
  Hashtbl.reset t.pending_fresh;
  t.ckpt_callbacks <- [];
  (* restored objects carry fresh generations that could collide with the
     pre-crash saved_gen values, so the first post-restore walk is eager *)
  t.force_full <- true;
  t.owner_cache <- None;
  t.owner_cache_epoch <- -1;
  (* the drain backlog and restamp tables die with DRAM; drain-saved NVM
     frames survive for Restore's drain_settle phase *)
  Drain.note_crash t.drain

let checkpoint_bytes t =
  let page_size = (Kernel.cost t.kernel).Treesls_sim.Cost.page_size in
  Hashtbl.fold
    (fun _ (o : Oroot.t) acc ->
      let snap_bytes =
        match (o.Oroot.slot_a, o.Oroot.slot_b) with
        | Some (_, s), _ | None, Some (_, s) -> Snapshot.bytes s
        | None, None -> 0
      in
      let page_bytes =
        match o.Oroot.pages with
        | Some pages -> (Ckpt_page.backup_frames pages * page_size) + (Ckpt_page.cardinal pages * 40)
        | None -> 0
      in
      acc + snap_bytes + page_bytes)
    t.oroots 0
