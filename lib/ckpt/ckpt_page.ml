module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store
module Cost = Treesls_sim.Cost
module Radix = Treesls_cap.Radix

type cp = {
  mutable born_ver : int;
  mutable b1 : Paddr.t option;
  mutable b1_ver : int;
  mutable b2 : Paddr.t option;
  mutable b2_ver : int;
}

type t = { table : cp Radix.t }

let create () = { table = Radix.create () }
let find t pno = Radix.get t.table pno
let cardinal t = Radix.cardinal t.table
let iter f t = Radix.iter f t.table

(* Building one checkpointed-page entry: a slab-sized record write. This
   per-entry cost, times the page count, is what makes the full checkpoint
   of a large PMO take milliseconds (Table 3). *)
let entry_build_ns (store : Store.t) =
  let c = Store.cost store in
  c.Cost.alloc_small_ns + Cost.object_copy_ns c ~to_nvm:true ~bytes_len:40

let ensure store t ~pno ~born_ver =
  match Radix.get t.table pno with
  | Some cp -> cp
  | None ->
    Store.charge store (entry_build_ns store);
    let cp = { born_ver; b1 = None; b1_ver = 0; b2 = None; b2_ver = 0 } in
    Radix.set t.table pno cp;
    cp

let cow_backup store t ~runtime ~pno ~global =
  (* only NVM runtimes take CoW backups: DRAM pages use stop-and-copy, and
     swapped-out (SSD) pages fault back in before any write *)
  if not (Paddr.is_nvm runtime) then false
  else
    match Radix.get t.table pno with
    | None -> false (* page not yet under checkpoint management *)
    | Some cp ->
      if cp.b1_ver = global && cp.b1 <> None then false
      else if cp.b2_ver = global && cp.b2 <> None then false
      else begin
        (* Runtime on NVM: CP case, b2 is the runtime marker. *)
        assert (cp.b2 = None);
        (* The backup copy is checkpoint wear even though the fault that
           triggered it arrived under the writer's ("app"/"extsync")
           context — with_writer overrides the ambient default. *)
        Treesls_obs.Wearmap.with_writer "ckpt.cow" @@ fun () ->
        let dst =
          match cp.b1 with
          | Some p -> p
          | None ->
            let p = Store.alloc_page store in
            cp.b1 <- Some p;
            p
        in
        (* Order matters for crash consistency: content first, version
           second. A crash between the two leaves a stale version, which
           the restore rule reads as "backup invalid, use runtime" — and
           the runtime still holds the pre-image at that point. *)
        Store.copy_page store ~src:runtime ~dst;
        Store.seal_page store dst;
        cp.b1_ver <- global;
        true
      end

let stale_slot cp =
  (* For a CPP (both backups on NVM) pick the older slot to overwrite. *)
  if cp.b1_ver <= cp.b2_ver then `B1 else `B2

let stop_and_copy_dram store t ~runtime ~pno ~new_ver =
  assert (Paddr.is_dram runtime);
  match Radix.get t.table pno with
  | None -> invalid_arg "Ckpt_page.stop_and_copy_dram: page has no record"
  | Some cp ->
    assert (cp.b1 <> None && cp.b2 <> None);
    (match stale_slot cp with
    | `B1 ->
      (match cp.b1 with
      | Some dst ->
        Store.copy_page store ~src:runtime ~dst;
        Store.seal_page store dst;
        cp.b1_ver <- new_ver
      | None -> assert false)
    | `B2 ->
      (match cp.b2 with
      | Some dst ->
        Store.copy_page store ~src:runtime ~dst;
        Store.seal_page store dst;
        cp.b2_ver <- new_ver
      | None -> assert false))

(* Note: [attach_runtime_as_backup] takes no Store; the caller seals the
   donated page (checkpoint.ml does, right after calling this). *)
let attach_runtime_as_backup t ~pno ~old_runtime ~new_ver =
  match Radix.get t.table pno with
  | None -> invalid_arg "Ckpt_page.attach_runtime_as_backup: page has no record"
  | Some cp ->
    assert (Paddr.is_nvm old_runtime);
    assert (cp.b2 = None);
    cp.b2 <- Some old_runtime;
    cp.b2_ver <- new_ver

let detach_runtime_slot store t ~pno ~latest =
  match Radix.get t.table pno with
  | None -> invalid_arg "Ckpt_page.detach_runtime_slot: page has no record"
  | Some cp -> (
    match cp.b2 with
    | None -> invalid_arg "Ckpt_page.detach_runtime_slot: not in CPP state"
    | Some b2_page ->
      (* Make sure the page becoming the runtime holds the latest data:
         copy from the DRAM runtime if b2 is not the newest backup. *)
      (if cp.b2_ver < cp.b1_ver then
         match latest with
         | Some src -> Store.copy_page store ~src ~dst:b2_page
         | None -> invalid_arg "Ckpt_page.detach_runtime_slot: stale b2 and no source");
      cp.b2 <- None;
      cp.b2_ver <- 0;
      (* the page returns to the runtime role and will be modified *)
      Store.unseal_page store b2_page;
      b2_page)

let valid_slots cp ~global =
  let s1 = match cp.b1 with Some p when cp.b1_ver <= global && cp.b1_ver > 0 -> Some (cp.b1_ver, p) | _ -> None in
  let s2 = match cp.b2 with Some p when cp.b2_ver <= global && cp.b2_ver > 0 -> Some (cp.b2_ver, p) | _ -> None in
  (s1, s2)

let restore_choice cp ~global ~runtime =
  if cp.born_ver > global then `Drop
  else if cp.b1_ver = global && cp.b1 <> None then `Use (Option.get cp.b1)
  else if cp.b2_ver = global && cp.b2 <> None then `Use (Option.get cp.b2)
  else if cp.b2 = None then begin
    (* CP case: the runtime page doubles as the consistent copy. It must
       be persistent — on NVM, or swapped out to the SSD (DRAM runtimes
       always keep two NVM backups). *)
    match runtime with
    | Some p when Paddr.persistent p -> `Use p
    | Some _ | None -> (
      (* DRAM runtime lost mid-migration, or no runtime: fall back to the
         newest committed backup. *)
      match valid_slots cp ~global with
      | Some (_, p), None | None, Some (_, p) -> `Use p
      | Some (v1, p1), Some (v2, p2) -> `Use (if v1 >= v2 then p1 else p2)
      | None, None -> `Drop)
  end
  else
    match valid_slots cp ~global with
    | Some (v1, p1), Some (v2, p2) -> `Use (if v1 >= v2 then p1 else p2)
    | Some (_, p), None | None, Some (_, p) -> `Use p
    | None, None -> (
      match runtime with Some p when Paddr.persistent p -> `Use p | Some _ | None -> `Drop)

let normalize_after_restore store cp ~keep ~runtime =
  (* Frames the record holds besides [keep]: keep ONE NVM frame as the
     (invalid) backup buffer so the first post-restore CoW fault skips an
     allocation, free the rest. A superseded SSD runtime slot is released
     outright. Deduplicate: runtime may alias a slot. *)
  (match runtime with
  | Some p when Paddr.is_ssd p && not (Paddr.equal p keep) -> Store.free_ssd_page store p
  | Some _ | None -> ());
  let held = [ cp.b1; cp.b2; runtime ] in
  let spares =
    List.sort_uniq Paddr.compare
      (List.filter_map
         (function
           | Some p when Paddr.is_nvm p && not (Paddr.equal p keep) -> Some p
           | Some _ | None -> None)
         held)
  in
  (match spares with
  | [] ->
    cp.b1 <- None;
    cp.b1_ver <- 0
  | spare :: rest ->
    cp.b1 <- Some spare;
    cp.b1_ver <- 0;
    List.iter (fun p -> Store.free_page store p) rest);
  cp.b2 <- None;
  cp.b2_ver <- 0;
  (* [keep] becomes the runtime page again *)
  Store.unseal_page store keep

let remove t ~pno = Radix.remove t.table pno

let backup_frames t =
  Radix.fold
    (fun _ cp acc ->
      acc + (match cp.b1 with Some _ -> 1 | None -> 0) + (match cp.b2 with Some _ -> 1 | None -> 0))
    t.table 0

let free_all store t ~runtime_of =
  Radix.iter
    (fun pno cp ->
      (match cp.b1 with Some p when Paddr.is_nvm p -> Store.free_page store p | Some _ | None -> ());
      (match cp.b2 with Some p when Paddr.is_nvm p -> Store.free_page store p | Some _ | None -> ());
      match runtime_of pno with
      | Some p when Paddr.is_ssd p -> Store.free_ssd_page store p
      | Some p
        when Paddr.is_nvm p
             && (not (cp.b1 = Some p))
             && not (cp.b2 = Some p) ->
        Store.free_page store p
      | Some _ | None -> ())
    t.table
