(** Per-checkpoint measurement report (feeds Figures 9-10 and Tables 2-4). *)

type group_cost = {
  g_ns : int;  (** captree time spent on this subtree's objects *)
  g_objects : int;
  g_kinds : (Treesls_cap.Kobj.kind * int) list;  (** breakdown within the subtree *)
}
(** STW cost of one capability subtree — the objects owned by one process
    group ("kernel" for objects reachable only from the root). *)

type t = {
  version : int;  (** version this checkpoint committed *)
  stw_ns : int;  (** total stop-the-world pause *)
  ipi_ns : int;  (** quiescing + resuming cores *)
  captree_ns : int;  (** leader: walking/copying the capability tree *)
  others_ns : int;  (** leader: commit, GC, callbacks, bookkeeping *)
  hybrid_ns : int;  (** max per-core parallel hybrid-copy time *)
  per_kind_ns : (Treesls_cap.Kobj.kind * int) list;  (** cap-tree time by type *)
  per_group : (string * group_cost) list;  (** cap-tree time by owning subtree *)
  objects_walked : int;
  full_objects : int;  (** objects checkpointed for the first time *)
  objects_skipped : int;  (** clean objects the incremental walk skipped *)
  pages_protected : int;  (** dirty pages marked read-only *)
  dram_dirty_copied : int;  (** dirty DRAM pages stop-and-copied *)
  migrated_in : int;  (** pages migrated NVM -> DRAM *)
  migrated_out : int;  (** pages demoted DRAM -> NVM *)
  cached_pages : int;  (** DRAM-cached pages after this checkpoint *)
  snapshot_bytes : int;  (** object snapshot bytes written *)
  nvm_bytes_written : int;
      (** physical NVM bytes landed since the previous checkpoint (wearmap
          delta): app data, CoW backups, hybrid copies, snapshots, journal
          and meta words *)
  logical_dirty_bytes : int;
      (** page size × (pages_protected + dram_dirty_copied + pages_drained)
          — the application-level dirty delta this interval, independent of
          checkpoint strategy *)
  pages_drained : int;
      (** async drain: backlog copies completed off the STW path (background
          steps + fault-resolved); 0 in eager mode *)
  cow_faults : int;
      (** async drain: write faults on still-protected pages resolved during
          the drain window *)
  drain_ns : int;  (** async drain: metered follower-core copy time *)
}

val zero : t
val pp : Format.formatter -> t -> unit

val waf : t -> float
(** Write-amplification factor: [nvm_bytes_written / max 1
    logical_dirty_bytes].  The checkpoint strategy's overhead shows up
    here — an eager walk re-writes every object snapshot each interval
    and amplifies accordingly; the incremental walk should not. *)

val sorted_groups : t -> (string * group_cost) list
(** [per_group] sorted costliest first (name breaks ties). *)

val folded_lines : t -> string list
(** Collapsed-stack lines ([frame;frame;leaf value]) for flamegraph
    tooling — per-group, per-kind captree cost plus the other STW phases;
    spaces in frames are replaced with ['_']. *)
