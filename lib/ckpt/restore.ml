module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Kernel = Treesls_kernel.Kernel
module Store = Treesls_nvm.Store
module Paddr = Treesls_nvm.Paddr
module Global_meta = Treesls_nvm.Global_meta
module Crash_site = Treesls_nvm.Crash_site
module Cost = Treesls_sim.Cost
module Clock = Treesls_sim.Clock
module Stats = Treesls_util.Stats
module Probe = Treesls_obs.Probe

exception No_checkpoint

exception
  Corrupt_backup of {
    pmo_id : int;
    pno : int;
    paddr : Treesls_nvm.Paddr.t;
  }

type report = {
  restored_objects : int;
  dropped_objects : int;
  pages_restored : int;
  pages_dropped : int;
  restore_ns : int;
  version : int;
}

(* Radixes of every PMO reachable in a runtime tree. At restore time the
   crash-time tree feeds the "use the runtime page" decisions; the state
   auditor calls the same walk on the live tree. *)
let tree_radixes root =
  let tbl = Hashtbl.create 64 in
  (match root with
  | None -> ()
  | Some root ->
    Kobj.iter_tree ~root (fun obj ->
        match obj with
        | Kobj.Pmo p -> Hashtbl.replace tbl p.Kobj.pmo_id p.Kobj.pmo_radix
        | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
        | Kobj.Notification _ | Kobj.Irq_notification _ -> ()));
  tbl

(* Read-only walk over every checkpointed-page record of every ORoot alive
   at [global], reporting the restore decision each record would produce
   against [radixes]. Shared by the restore integrity pre-pass and the
   state auditor ("would a restore right now succeed?"). *)
let iter_restore_choices st ~radixes ~global f =
  Hashtbl.iter
    (fun oid (oroot : Oroot.t) ->
      if oroot.Oroot.first_ver <= global then
        match oroot.Oroot.pages with
        | None -> ()
        | Some cps ->
          let runtime_of pno =
            match Hashtbl.find_opt radixes oid with
            | Some radix -> Radix.get radix pno
            | None -> None
          in
          Ckpt_page.iter
            (fun pno cp ->
              f ~pmo_id:oid ~pno ~cp
                ~choice:(Ckpt_page.restore_choice cp ~global ~runtime:(runtime_of pno)))
            cps)
    st.State.oroots

let charge_restore st (snap : Snapshot.t) =
  let store = Kernel.store st.State.kernel in
  let c = Store.cost store in
  let copy = Cost.object_copy_ns c ~to_nvm:false ~bytes_len:(Snapshot.bytes snap) in
  let extra =
    match snap with
    | Snapshot.S_vmspace _ -> c.Cost.alloc_page_ns + (5 * copy)
    | Snapshot.S_cap_group _ -> c.Cost.alloc_small_ns + (5 * copy)
    | Snapshot.S_thread _ -> 4 * copy
    | Snapshot.S_pmo _ | Snapshot.S_ipc _ | Snapshot.S_notif _ | Snapshot.S_irq _ -> copy
  in
  Store.charge store (c.Cost.alloc_small_ns + copy + extra)

(* Per-page restore check: read the CP record, compare versions. *)
let page_check_ns store =
  let c = Store.cost store in
  int_of_float (2.0 *. c.Cost.word_copy_nvm_ns)

let run_inner st =
  let crashed_kernel = st.State.kernel in
  let store = Kernel.store crashed_kernel in
  let clock = Store.clock store in
  let t0 = Clock.now clock in
  Probe.rto_phase_begin "journal_replay";
  Store.recover store;
  Probe.rto_phase_end ();
  (* Crash sites here model a power cut during recovery itself.  Only the
     read-only prefix carries sites: journal replay and the integrity
     pre-pass are idempotent, so a second [recover] after a crash at either
     site simply starts over.  The mutating tail (oroot removal, page
     frees) is not re-entrant and stays site-free. *)
  Crash_site.hit "restore.begin";
  Probe.rto_phase_begin "meta_validate";
  let g = Global_meta.version (Store.meta store) in
  if g = 0 then raise No_checkpoint;
  let radixes = tree_radixes st.State.crashed_root in
  (* Integrity pre-pass (paper section 8): verify every sealed backup that
     the restore would use BEFORE mutating anything, so a detected
     corruption leaves the store untouched — the caller can repair the
     frame (e.g. from an eidetic archive) and simply retry. *)
  iter_restore_choices st ~radixes ~global:g (fun ~pmo_id ~pno ~cp:_ ~choice ->
      match choice with
      | `Use keep when not (Store.verify_page store keep) ->
        raise (Corrupt_backup { pmo_id; pno; paddr = keep })
      | `Use _ | `Drop -> ());
  Probe.rto_phase_end ();
  Crash_site.hit "restore.precheck";
  (* A crash mid-drain abandoned a staged version: its DRAM backlog died
     with the power and its CoW restamps are moot, but the drain-saved NVM
     frames survived and are referenced by nothing at or below [g] — free
     them here, before the allocator reconciliation counts claims.
     Idempotent (the tables empty on the first pass), so a crash during
     recovery itself replays it safely. *)
  Probe.rto_phase_begin "drain_settle";
  let drain_dropped = Drain.abandon store st.State.drain in
  Probe.rto_phase_end ();
  Probe.rto_phase_begin "oroot_select";
  (* PMO ids known to the checkpoint manager before any rollback: pages of
     any other PMO found in the crashed tree are in-flight allocations. *)
  let known_pmos = Hashtbl.create 64 in
  Hashtbl.iter
    (fun oid (o : Oroot.t) -> if o.Oroot.kind = Kobj.Pmo_k then Hashtbl.replace known_pmos oid ())
    st.State.oroots;
  (* Select the objects that belong to checkpoint [g]; mutating a table
     during iteration is undefined, so removals are collected first. *)
  let live = ref [] and dropped = ref 0 and to_drop = ref [] in
  Hashtbl.iter
    (fun oid (oroot : Oroot.t) ->
      if oroot.Oroot.first_ver > g then begin
        (* Born inside an uncommitted checkpoint: roll back. *)
        incr dropped;
        (match oroot.Oroot.pages with
        | Some pages ->
          let runtime_of pno =
            match Hashtbl.find_opt radixes oid with
            | Some radix -> Radix.get radix pno
            | None -> None
          in
          Ckpt_page.free_all store pages ~runtime_of
        | None -> ());
        to_drop := oid :: !to_drop
      end
      else
        match Oroot.latest_le oroot ~version:g with
        | Some (_, snap) -> live := (oid, oroot, snap) :: !live
        | None ->
          incr dropped;
          to_drop := oid :: !to_drop)
    st.State.oroots;
  List.iter (Hashtbl.remove st.State.oroots) !to_drop;
  Probe.rto_phase_end ();
  (* Phase 1: materialise bare objects with their original ids. *)
  let stubs : (int, Kobj.t) Hashtbl.t = Hashtbl.create 256 in
  let pages_restored = ref 0 and pages_dropped = ref drain_dropped in
  (* Roll back page allocations of PMOs the checkpoint never saw (created
     after the last commit): the paper's comparison of the crash-time
     state against the checkpoint's state (§3, step 7). *)
  Probe.rto_phase_begin "page_remap";
  Hashtbl.iter
    (fun pmo_id radix ->
      if not (Hashtbl.mem known_pmos pmo_id) then
        Radix.iter
          (fun _ paddr ->
            if Paddr.is_nvm paddr then begin
              Store.free_page store paddr;
              incr pages_dropped
            end
            else if Paddr.is_ssd paddr then begin
              Store.free_ssd_page store paddr;
              incr pages_dropped
            end)
          radix)
    radixes;
  Probe.rto_phase_end ();
  Probe.rto_phase_begin "materialize";
  List.iter
    (fun (oid, (oroot : Oroot.t), snap) ->
      let t_obj = Clock.now clock in
      charge_restore st snap;
      (* Roll back walk state staged by an uncommitted checkpoint: snapshot
         slots and last-seen stamps above [g] must not survive the restore,
         or a later checkpoint of the same version would find its slot
         already taken by a stale image. *)
      (match oroot.Oroot.slot_a with
      | Some (v, _) when v > g -> oroot.Oroot.slot_a <- None
      | Some _ | None -> ());
      (match oroot.Oroot.slot_b with
      | Some (v, _) when v > g -> oroot.Oroot.slot_b <- None
      | Some _ | None -> ());
      if oroot.Oroot.last_seen_ver > g then oroot.Oroot.last_seen_ver <- g;
      let obj =
        match snap with
        | Snapshot.S_cap_group { name; _ } -> Kobj.Cap_group (Kobj.make_cap_group ~id:oid ~name)
        | Snapshot.S_thread { regs; state; prio; cursor } ->
          let th = Kobj.make_thread ~id:oid ~prio in
          th.Kobj.th_regs <- Array.copy regs;
          th.Kobj.th_state <- state;
          th.Kobj.th_cursor <- cursor;
          Kobj.Thread th
        | Snapshot.S_vmspace _ -> Kobj.Vmspace (Kobj.make_vmspace ~id:oid)
        | Snapshot.S_pmo { pages; kind; eternal_frames } -> (
          let pmo = Kobj.make_pmo ~id:oid ~pages ~kind in
          match kind with
          | Kobj.Pmo_eternal ->
            (* Eternal: revive the fixed frame set; content untouched. *)
            List.iter (fun (pno, paddr) -> Radix.set pmo.Kobj.pmo_radix pno paddr) eternal_frames;
            Kobj.Pmo pmo
          | Kobj.Pmo_normal ->
            (* nested: CoW/page-table reconstruction charged to its own
               phase, subtracted from [materialize]'s exclusive time *)
            Probe.rto_phase_begin "page_remap";
            let cps = Oroot.pages_exn oroot in
            let runtime_of pno =
              match Hashtbl.find_opt radixes oid with
              | Some radix -> Radix.get radix pno
              | None -> None
            in
            let to_remove = ref [] in
            Ckpt_page.iter
              (fun pno cp ->
                Store.charge store (page_check_ns store);
                let runtime = runtime_of pno in
                match Ckpt_page.restore_choice cp ~global:g ~runtime with
                | `Use keep ->
                  Radix.set pmo.Kobj.pmo_radix pno keep;
                  Ckpt_page.normalize_after_restore store cp ~keep ~runtime;
                  incr pages_restored
                | `Drop ->
                  incr pages_dropped;
                  (match runtime with
                  | Some p when Paddr.is_nvm p -> Store.free_page store p
                  | Some p when Paddr.is_ssd p -> Store.free_ssd_page store p
                  | Some _ | None -> ());
                  (match cp.Ckpt_page.b1 with
                  | Some p when Paddr.is_nvm p -> Store.free_page store p
                  | Some _ | None -> ());
                  (match cp.Ckpt_page.b2 with
                  | Some p when Paddr.is_nvm p -> Store.free_page store p
                  | Some _ | None -> ());
                  to_remove := pno :: !to_remove)
              cps;
            (* Runtime pages allocated after the last walk have no CP
               record at all: roll their frames back too. Records of the
               dropped pnos above are still in place here on purpose —
               removing them first would make this sweep free the same
               runtime frame a second time. *)
            (match Hashtbl.find_opt radixes oid with
            | Some radix ->
              Radix.iter
                (fun pno p ->
                  if Ckpt_page.find cps pno = None && Paddr.is_nvm p then begin
                    Store.free_page store p;
                    incr pages_dropped
                  end)
                radix
            | None -> ());
            List.iter (fun pno -> Ckpt_page.remove cps ~pno) !to_remove;
            Probe.rto_phase_end ();
            Kobj.Pmo pmo)
        | Snapshot.S_ipc { calls; _ } ->
          let c = Kobj.make_ipc_conn ~id:oid in
          c.Kobj.ic_calls <- calls;
          Kobj.Ipc_conn c
        | Snapshot.S_notif { count; waiters } ->
          let n = Kobj.make_notification ~id:oid in
          n.Kobj.nt_count <- count;
          n.Kobj.nt_waiters <- waiters;
          Kobj.Notification n
        | Snapshot.S_irq { line; pending } ->
          let irq = Kobj.make_irq_notification ~id:oid ~line in
          irq.Kobj.irq_pending <- pending;
          Kobj.Irq_notification irq
      in
      (* Point the ORoot's runtime at the restored object: the crashed
         object is gone, and a later dead-ORoot GC reads frames through
         this pointer. *)
      oroot.Oroot.runtime <- Some obj;
      Hashtbl.replace stubs oid obj;
      let dt = Clock.now clock - t_obj in
      Probe.rto_note_kind (Kobj.kind_name (Kobj.kind obj)) dt;
      Stats.add (State.obj_cost st (Kobj.kind obj)).State.restore (float_of_int dt))
    !live;
  Probe.rto_phase_end ();
  Probe.rto_phase_begin "captree_rebuild";
  (* Phase 2: stitch references by object id. *)
  let find_stub oid = Hashtbl.find_opt stubs oid in
  List.iter
    (fun (oid, _oroot, snap) ->
      match (snap, find_stub oid) with
      | Snapshot.S_cap_group { slots; _ }, Some (Kobj.Cap_group cg) ->
        List.iter
          (fun (slot, target_id, rights) ->
            match find_stub target_id with
            | Some target -> Kobj.install_at cg slot { Kobj.target; rights }
            | None -> () (* referent dropped (born after g): dangling cap removed *))
          slots
      | Snapshot.S_vmspace { regions }, Some (Kobj.Vmspace vs) ->
        vs.Kobj.vs_regions <-
          List.filter_map
            (fun (vpn, pages, pmo_id, writable) ->
              match find_stub pmo_id with
              | Some (Kobj.Pmo pmo) ->
                Some { Kobj.vr_vpn = vpn; vr_pages = pages; vr_pmo = pmo; vr_writable = writable }
              | Some _ | None -> None)
            regions
      | Snapshot.S_ipc { server_tid; shared_pmo; _ }, Some (Kobj.Ipc_conn conn) ->
        (match Option.map find_stub server_tid with
        | Some (Some (Kobj.Thread th)) -> conn.Kobj.ic_server <- Some th
        | Some _ | None -> ());
        (match Option.map find_stub shared_pmo with
        | Some (Some (Kobj.Pmo p)) -> conn.Kobj.ic_shared <- Some p
        | Some _ | None -> ())
      | (Snapshot.S_thread _ | Snapshot.S_pmo _ | Snapshot.S_notif _ | Snapshot.S_irq _), _ -> ()
      | _, _ -> ())
    !live;
  (* Adopt the restored tree. *)
  let root =
    match find_stub st.State.root_id with
    | Some (Kobj.Cap_group cg) -> cg
    | Some _ | None -> failwith "Restore: root cap group missing from checkpoint"
  in
  (* Never hand out an id an oroot still owns, even if the persisted
     high-water mark is older than this checkpoint (pre-fix stores). *)
  let ids_hwm = Hashtbl.fold (fun oid _ acc -> max acc oid) stubs st.State.ids_hwm in
  st.State.ids_hwm <- ids_hwm;
  let kernel = Kernel.rebuild ~store ~ncores:(Kernel.ncores crashed_kernel) ~root ~ids_hwm in
  st.State.kernel <- kernel;
  st.State.crashed_root <- None;
  Active_list.clear st.State.active;
  Hashtbl.reset st.State.pending_fresh;
  Probe.rto_phase_end ();
  Probe.rto_phase_begin "oroot_gc";
  (* Redo the dead-ORoot GC the crash may have interrupted: a crash between
     the version bump and [gc_dead_oroots] leaves ORoots of objects deleted
     before [g] in the table, where they would shadow recycled ids and pin
     their frames forever. Reachability from the restored root is the same
     test the committed walk would have applied. *)
  let reachable : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  Kobj.iter_tree ~root (fun obj -> Hashtbl.replace reachable (Kobj.id obj) ());
  let dead =
    Hashtbl.fold
      (fun oid (o : Oroot.t) acc ->
        if not (Hashtbl.mem reachable oid) then (oid, o) :: acc else acc)
      st.State.oroots []
  in
  List.iter
    (fun (oid, (o : Oroot.t)) ->
      (match o.Oroot.pages with
      | Some pages ->
        let runtime_of pno =
          match o.Oroot.runtime with
          | Some (Kobj.Pmo p) -> Radix.get p.Kobj.pmo_radix pno
          | Some _ | None -> None
        in
        Ckpt_page.free_all store pages ~runtime_of
      | None -> ());
      incr dropped;
      Hashtbl.remove st.State.oroots oid)
    dead;
  Probe.rto_phase_end ();
  Probe.rto_phase_begin "buddy_reconcile";
  (* Final allocator reconciliation (paper section 3, step 7: compare the
     crash-time state with the checkpoint and reclaim): free every live
     buddy block no surviving subsystem claims. The canonical orphan is a
     frame whose buddy-alloc transaction committed — so the journal redo
     preserved the allocation — but which the crash cut down before any
     radix or backup slot ever referenced it. *)
  let claimed : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  let claim p = if Paddr.is_nvm p then Hashtbl.replace claimed p.Paddr.idx () in
  List.iter
    (fun off -> Hashtbl.replace claimed off ())
    (Treesls_nvm.Slab.slab_pages (Store.slab store));
  Kobj.iter_tree ~root (fun obj ->
      match obj with
      | Kobj.Pmo p -> Radix.iter (fun _ paddr -> claim paddr) p.Kobj.pmo_radix
      | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _ | Kobj.Notification _
      | Kobj.Irq_notification _ -> ());
  Hashtbl.iter
    (fun _ (o : Oroot.t) ->
      match o.Oroot.pages with
      | None -> ()
      | Some cps ->
        Ckpt_page.iter
          (fun _ cp ->
            (match cp.Ckpt_page.b1 with Some p -> claim p | None -> ());
            match cp.Ckpt_page.b2 with Some p -> claim p | None -> ())
          cps)
    st.State.oroots;
  let buddy = Store.buddy store in
  let orphans = ref [] in
  Treesls_nvm.Buddy.iter_live buddy (fun ~offset ~order ->
      let any = ref false in
      for i = offset to offset + (1 lsl order) - 1 do
        if Hashtbl.mem claimed i then any := true
      done;
      if not !any then orphans := (offset, order) :: !orphans);
  List.iter
    (fun (offset, order) ->
      for i = offset + 1 to offset + (1 lsl order) - 1 do
        Store.unseal_page store (Paddr.nvm i)
      done;
      Store.free_page store (Paddr.nvm offset);
      pages_dropped := !pages_dropped + (1 lsl order))
    !orphans;
  Probe.rto_phase_end ();
  {
    restored_objects = List.length !live;
    dropped_objects = !dropped;
    pages_restored = !pages_restored;
    pages_dropped = !pages_dropped;
    restore_ns = Clock.now clock - t0;
    version = g;
  }

let run st =
  (* Open the recovery profile (capturing the pre-crash flight tail)
     before the restore span can record anything into the ring. *)
  Probe.rto_begin_restore ();
  let tok = Probe.enter "restore" in
  match run_inner st with
  | r ->
    Probe.exit tok
      ~args:
        [
          ("version", string_of_int r.version);
          ("restored_objects", string_of_int r.restored_objects);
          ("dropped_objects", string_of_int r.dropped_objects);
          ("pages_restored", string_of_int r.pages_restored);
          ("pages_dropped", string_of_int r.pages_dropped);
        ];
    Probe.count "restore.runs" 1;
    Probe.count "restore.objects" r.restored_objects;
    Probe.observe "restore.ns" r.restore_ns;
    Probe.rto_restore_done ~version:r.version ~restored_objects:r.restored_objects
      ~dropped_objects:r.dropped_objects ~pages_restored:r.pages_restored
      ~pages_dropped:r.pages_dropped;
    r
  | exception e ->
    (* failed attempt: nothing trustworthy to profile; the next attempt
       opens a fresh profile (the crash instant is kept) *)
    Probe.rto_abort ();
    Probe.exit tok ~args:[ ("failed", "true") ];
    raise e
