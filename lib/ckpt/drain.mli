(** Asynchronous checkpoint drain: the backlog, CoW tables and staged
    (pending) version of a capture whose page copies were deferred off the
    stop-the-world path.

    Pure window state — the orchestration (when to copy, when to settle,
    how faults resolve) lives in [Checkpoint]; the tick/settle entry
    points are exposed through [Manager] and [System].

    Crash discipline: the backlog and restamp tables model DRAM-resident
    bookkeeping and die with a power failure ({!note_crash}); the saved
    frames are NVM-resident and survive until restore's [drain_settle]
    phase frees them ({!abandon}). *)

module Kobj = Treesls_cap.Kobj
module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store

type policy =
  | Eager  (** degrade to today's behaviour: copy everything inside the STW *)
  | Lazy  (** copy [drain_batch] backlog pages per drain step *)
  | Deadline  (** empty the whole backlog at the first drain step *)

val policy_name : policy -> string

type entry = { d_pmo : Kobj.pmo; d_cps : Ckpt_page.t; d_pno : int }
(** One owed copy: a dirty DRAM-cached page protected at the STW whose
    stop-and-copy into its stale CPP slot is still outstanding. *)

type pending = {
  p_ver : int;  (** the staged (uncommitted) version *)
  p_visited : (int, unit) Hashtbl.t;
      (** the walk's liveness epoch, for the GC deferred to settle *)
  p_stw_t0 : int;
  p_stw_t1 : int;
  p_enqueued : int;  (** backlog size at publish = pages deferred *)
  p_report : Report.t;  (** STW-side partial report, finalised at settle *)
  mutable p_drained : int;
  mutable p_cow_faults : int;
  mutable p_drain_ns : int;
}

type t

val create : unit -> t
val backlog : t -> int
val pending : t -> pending option
val pending_version : t -> int option

val enqueue : t -> entry -> unit
val take : t -> int * int -> entry option
(** Claim (and remove) the owed copy for [(pmo_id, pno)], if any — the
    fault path resolving a page out of drain order. *)

val pop : t -> entry option
(** Next owed copy in drain order (entries claimed by {!take} are skipped
    lazily); [None] when the backlog is empty. *)

val publish : t -> pending -> unit
(** Stage a window. At most one may be in flight. *)

val note_restamp : t -> int * int -> Ckpt_page.cp -> unit
(** The page was clean at the staged version and its CoW fault banked a
    pre-image valid for both versions: settle lifts [b1_ver] for free. *)

val note_saved : t -> int * int -> Ckpt_page.cp -> Paddr.t -> unit
(** The page was dirty at the staged version and its fault saved the
    staged content into [frame]: settle installs it as the new backup. *)

val saved_frames : t -> Paddr.t list
(** In-flight drain-saved frames (for the audit's allocator census). *)

val apply_settle : Store.t -> t -> ver:int -> unit
(** Apply restamps and install saved frames (freeing superseded slots);
    the caller commits the version bump right after. *)

val clear_pending : t -> unit
val note_crash : t -> unit
(** Power failure: drop the volatile backlog/restamp bookkeeping, keep the
    NVM-resident saved frames and the pending stamp for restore. *)

val abandon : Store.t -> t -> int
(** Restore's [drain_settle] phase: free the drain-saved frames of the
    abandoned staged version and clear the window. Returns the number of
    frames freed; idempotent. *)
