(* Asynchronous checkpoint drain (the JASS-style capture/policy split).

   The STW capture publishes a *staged* version: snapshots and page
   protections land synchronously, but the copies of dirty DRAM-cached
   pages are deferred into the backlog below and drained on the follower
   cores between operations.  The version bump — the durability point —
   moves to the settle step, once the backlog is empty.  Until then the
   committed version stays [p_ver - 1] and every structure here
   describes the in-flight version [p_ver]:

   - [index]/[queue]: dirty DRAM pages protected at the STW whose copy
     into the stale CPP slot is still owed.  A write fault on such a
     page resolves its entry immediately (the faulting op pays one page)
     and unprotects it.
   - [restamp]: NVM pages clean at [p_ver] that took a CoW backup during
     the drain window.  The backed-up pre-image equals the page's
     content at both [p_ver - 1] and [p_ver], so settle lifts the slot
     stamp to [p_ver] without another copy.
   - [saved]: NVM pages dirty at [p_ver] (their backup slot is already
     stamped [p_ver - 1]) that faulted during the window.  The runtime
     held the only copy of the staged content, so the fault copied it
     into a fresh frame; settle installs that frame as the page's backup
     stamped [p_ver], freeing the slot it supersedes.

   Crash discipline: the backlog and restamp tables are DRAM-resident
   bookkeeping and die with a power failure ([note_crash]); the saved
   frames are NVM-resident and survive until restore's [drain_settle]
   phase frees them ([abandon] — the committed ORoots reference only
   slots stamped at or below the restore target). *)

module Kobj = Treesls_cap.Kobj
module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store

type policy = Eager | Lazy | Deadline

let policy_name = function Eager -> "eager" | Lazy -> "lazy" | Deadline -> "deadline"

type entry = { d_pmo : Kobj.pmo; d_cps : Ckpt_page.t; d_pno : int }

type pending = {
  p_ver : int;  (* the staged (uncommitted) version *)
  p_visited : (int, unit) Hashtbl.t;  (* the walk's liveness epoch, for the deferred GC *)
  p_stw_t0 : int;
  p_stw_t1 : int;
  p_enqueued : int;  (* backlog size at publish = pages deferred *)
  p_report : Report.t;  (* STW-side partial report, finalised at settle *)
  mutable p_drained : int;  (* backlog pages copied (background + fault-resolved) *)
  mutable p_cow_faults : int;  (* write faults resolved during the window *)
  mutable p_drain_ns : int;  (* metered follower-core copy time *)
}

type t = {
  index : (int * int, entry) Hashtbl.t;  (* (pmo_id, pno) -> owed copy *)
  queue : (int * int) Queue.t;  (* drain order; deleted lazily against [index] *)
  restamp : (int * int, Ckpt_page.cp) Hashtbl.t;
  saved : (int * int, Ckpt_page.cp * Paddr.t) Hashtbl.t;
  mutable pending : pending option;
}

let create () =
  {
    index = Hashtbl.create 64;
    queue = Queue.create ();
    restamp = Hashtbl.create 16;
    saved = Hashtbl.create 16;
    pending = None;
  }

let backlog t = Hashtbl.length t.index
let pending t = t.pending
let pending_version t = match t.pending with Some p -> Some p.p_ver | None -> None

let enqueue t (e : entry) =
  let key = (e.d_pmo.Kobj.pmo_id, e.d_pno) in
  if not (Hashtbl.mem t.index key) then begin
    Hashtbl.replace t.index key e;
    Queue.push key t.queue
  end

(* Claim (and remove) the owed copy for a page, if any — the fault path
   resolving a still-protected page out of drain order.  The queue entry
   dies lazily at [pop] time. *)
let take t key =
  match Hashtbl.find_opt t.index key with
  | Some e ->
    Hashtbl.remove t.index key;
    Some e
  | None -> None

let rec pop t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some key -> ( match take t key with Some e -> Some e | None -> pop t)

let publish t p =
  assert (t.pending = None);
  t.pending <- Some p

let note_restamp t key cp = Hashtbl.replace t.restamp key cp
let note_saved t key cp frame = Hashtbl.replace t.saved key (cp, frame)
let saved_frames t = Hashtbl.fold (fun _ (_, f) acc -> f :: acc) t.saved []

(* Settle bookkeeping: lift the clean-at-[ver] backups to the new stamp
   and install the drain-saved frames, freeing the slots they supersede.
   The caller bumps the version right after. *)
let apply_settle store t ~ver =
  Hashtbl.iter (fun _ (cp : Ckpt_page.cp) -> cp.Ckpt_page.b1_ver <- ver) t.restamp;
  Hashtbl.iter
    (fun _ ((cp : Ckpt_page.cp), frame) ->
      (match cp.Ckpt_page.b1 with Some old -> Store.free_page store old | None -> ());
      cp.Ckpt_page.b1 <- Some frame;
      cp.Ckpt_page.b1_ver <- ver)
    t.saved;
  Hashtbl.reset t.restamp;
  Hashtbl.reset t.saved

let clear_pending t =
  t.pending <- None;
  Hashtbl.reset t.index;
  Queue.clear t.queue

(* Power failure mid-window: the backlog and restamp tables are volatile
   bookkeeping; the saved frames (NVM) and the pending stamp survive for
   restore's [drain_settle] phase. *)
let note_crash t =
  Hashtbl.reset t.index;
  Queue.clear t.queue;
  Hashtbl.reset t.restamp

(* Restore's [drain_settle]: the staged version is abandoned — free the
   drain-saved frames and forget the window.  Returns the number of
   frames dropped (they count as rolled-back pages). *)
let abandon store t =
  let n = Hashtbl.length t.saved in
  Hashtbl.iter (fun _ (_, frame) -> Store.free_page store frame) t.saved;
  Hashtbl.reset t.saved;
  Hashtbl.reset t.restamp;
  Hashtbl.reset t.index;
  Queue.clear t.queue;
  t.pending <- None;
  n
