(** Adaptive checkpoint-interval controller (feature-flagged; ROADMAP
    item 5).

    A PID-style loop fed by the {!Treesls_obs.Tseries} black box: at
    every commit, {!on_sample} compares the windowed enq2vis p99 against
    [slo_p99_ns] and proposes a multiplicatively retuned interval
    (shrink on overshoot, grow on headroom, fast back-off toward
    [max_interval_ns] when a commit released nothing); between commits,
    {!on_pressure} clamps the interval to [min_interval_ns] when a burst
    parks [pressure_threshold]+ replies while the interval sits near its
    idle ceiling.

    The controller is pure policy: it returns suggestions and the system
    layer applies them through [System.set_interval_us], gated on
    [State.features.adaptive_interval] (default off). *)

type config = {
  slo_p99_ns : int;  (** windowed enq2vis p99 target *)
  min_interval_ns : int;
  max_interval_ns : int;
  kp : float;  (** proportional gain on relative SLO error *)
  ki : float;  (** integral gain (integral clamped to ±2) *)
  grow : float;  (** idle growth factor per commit *)
  pressure_threshold : int;  (** parked replies that trigger the burst clamp *)
}

val default_config : config
(** 300us p99 target, interval bounds [100us, 5ms], kp 0.5, ki 0.1,
    grow 1.5, pressure threshold 32. *)

type t

val create : config -> t
(** Raises [Invalid_argument] on a non-positive or inverted interval
    range. *)

val config : t -> config

val on_sample :
  t -> Treesls_obs.Tseries.t -> interval_ns:int -> drain_backlog:int -> int option
(** Feedback step against the newest sample; [Some ns] proposes a new
    interval (already clamped to the configured bounds), [None] keeps
    the current one.  While [drain_backlog] is nonzero, shrink proposals
    are held (returned as [None]) — stacking a shorter interval onto an
    unfinished drain would force a stop-the-world settle; growth still
    passes. *)

val on_pressure :
  t -> now_ns:int -> pending:int -> interval_ns:int -> drain_backlog:int -> int option
(** Burst feedforward, polled between operations: [Some min_interval_ns]
    once per burst when [pending] replies are parked and the interval is
    above 4x the floor; [None] otherwise (so the armed deadline is never
    re-postponed by repeated polls), and always [None] while a drain
    backlog is outstanding. *)

val retunes : t -> int
(** {!on_sample} proposals that changed the interval. *)

val pressure_clamps : t -> int
