module Kobj = Treesls_cap.Kobj
module Kernel = Treesls_kernel.Kernel
module Store = Treesls_nvm.Store
module Global_meta = Treesls_nvm.Global_meta

type version_record = {
  objects : (int, Snapshot.t) Hashtbl.t;  (** live objects at this version *)
  pages : (int * int, Bytes.t) Hashtbl.t;  (** (pmo id, pno) -> content *)
}

type t = {
  mgr : Manager.t;
  max_versions : int;
  history : (int, version_record) Hashtbl.t;  (** version -> record *)
  mutable order : int list;  (** archived versions, newest first *)
  mutable pending_pages : (int * int, Bytes.t) Hashtbl.t;
  mutable active : bool;
}

let page_copy st pmo pno paddr pending =
  let store = Kernel.store st.State.kernel in
  let bytes = Store.page_bytes store paddr in
  Hashtbl.replace pending (pmo.Kobj.pmo_id, pno) (Bytes.copy bytes)

let on_commit t () =
  if t.active then begin
    let st = Manager.state t.mgr in
    let version = Global_meta.version (Store.meta (Kernel.store st.State.kernel)) in
    let objects = Hashtbl.create 256 in
    Hashtbl.iter
      (fun oid (oroot : Oroot.t) ->
        (* newest-at-or-before rather than exact: the incremental walk does
           not re-snapshot clean objects, whose state at [version] is their
           last saved snapshot *)
        match Oroot.latest_le oroot ~version with
        | Some (_, snap) -> Hashtbl.replace objects oid snap
        | None -> ())
      st.State.oroots;
    let record = { objects; pages = t.pending_pages } in
    t.pending_pages <- Hashtbl.create 64;
    Hashtbl.replace t.history version record;
    t.order <- version :: t.order;
    (* prune beyond the window *)
    let rec prune kept = function
      | [] -> List.rev kept
      | v :: rest ->
        if List.length kept < t.max_versions then prune (v :: kept) rest
        else begin
          Hashtbl.remove t.history v;
          prune kept rest
        end
    in
    t.order <- prune [] t.order
  end

let attach ?(max_versions = 64) mgr =
  let t =
    {
      mgr;
      max_versions;
      history = Hashtbl.create 64;
      order = [];
      pending_pages = Hashtbl.create 64;
      active = true;
    }
  in
  let st = Manager.state mgr in
  st.State.page_archive_hook <-
    Some (fun pmo pno paddr -> if t.active then page_copy st pmo pno paddr t.pending_pages);
  Manager.on_checkpoint mgr (on_commit t);
  t

let detach t =
  t.active <- false;
  (Manager.state t.mgr).State.page_archive_hook <- None

let versions t = List.sort compare t.order

let object_at t ~version ~obj_id =
  match Hashtbl.find_opt t.history version with
  | None -> None
  | Some r -> Hashtbl.find_opt r.objects obj_id

let objects_at t ~version =
  match Hashtbl.find_opt t.history version with
  | None -> []
  | Some r -> Hashtbl.fold (fun oid s acc -> (oid, s) :: acc) r.objects []

(* The newest archived image of the page at a version <= the requested
   one. Pages unmodified across an interval are not re-archived, so the
   lookup walks back through the window. *)
let page_at t ~version ~pmo_id ~pno =
  let rec back v =
    if v < 0 then None
    else
      match Hashtbl.find_opt t.history v with
      | None -> if List.exists (fun x -> x < v) t.order then back (v - 1) else None
      | Some r -> (
        match Hashtbl.find_opt r.pages (pmo_id, pno) with
        | Some bytes ->
          (* the page must also still exist at [version] *)
          if Hashtbl.mem r.objects pmo_id || object_at t ~version ~obj_id:pmo_id <> None then
            Some bytes
          else None
        | None -> back (v - 1))
  in
  if object_at t ~version ~obj_id:pmo_id = None then None else back version

let pages_archived_at t ~version =
  match Hashtbl.find_opt t.history version with
  | None -> []
  | Some r ->
    List.sort_uniq compare (Hashtbl.fold (fun key _ acc -> key :: acc) r.pages [])

let diff_objects t ~from_version ~to_version =
  match (Hashtbl.find_opt t.history from_version, Hashtbl.find_opt t.history to_version) with
  | Some a, Some b ->
    let changed = ref [] in
    Hashtbl.iter
      (fun oid snap ->
        match Hashtbl.find_opt b.objects oid with
        | Some snap' -> if snap <> snap' then changed := oid :: !changed
        | None -> changed := oid :: !changed)
      a.objects;
    Hashtbl.iter
      (fun oid _ -> if not (Hashtbl.mem a.objects oid) then changed := oid :: !changed)
      b.objects;
    (* page content changes count as changes to the owning PMO, for every
       version inside the (from, to] range *)
    List.iter
      (fun v ->
        if v > from_version && v <= to_version then
          match Hashtbl.find_opt t.history v with
          | Some r -> Hashtbl.iter (fun (pmo_id, _) _ -> changed := pmo_id :: !changed) r.pages
          | None -> ())
      t.order;
    List.sort_uniq compare !changed
  | _, _ -> []

type stats = {
  archived_versions : int;
  object_snapshots : int;
  page_images : int;
  page_bytes : int;
}

let stats t =
  Hashtbl.fold
    (fun _ r acc ->
      {
        archived_versions = acc.archived_versions + 1;
        object_snapshots = acc.object_snapshots + Hashtbl.length r.objects;
        page_images = acc.page_images + Hashtbl.length r.pages;
        page_bytes =
          acc.page_bytes + Hashtbl.fold (fun _ b n -> n + Bytes.length b) r.pages 0;
      })
    t.history
    { archived_versions = 0; object_snapshots = 0; page_images = 0; page_bytes = 0 }
