module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Ipc = Treesls_kernel.Ipc
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Store = Treesls_nvm.Store
module Warea = Treesls_nvm.Warea
module Crash_site = Treesls_nvm.Crash_site
module Snapshot = Treesls_ckpt.Snapshot
module Manager = Treesls_ckpt.Manager
module Net_server = Treesls_extsync.Net_server
module Audit = Treesls_audit.Audit
module Probe = Treesls_obs.Probe
module Metrics = Treesls_obs.Metrics
module Rto = Treesls_obs.Rto
module Rng = Treesls_util.Rng
module Histogram = Treesls_util.Histogram

(* ---- deterministic workload trace ------------------------------------ *)

type op =
  | Notify of int
  | Wait of int
  | Touch of int
  | Write of int
  | Spawn
  | Exit of int
  | Grow
  | Ckpt

let gen_trace ~seed ~ops =
  let rng = Rng.create (Int64.of_int seed) in
  List.init ops (fun _ ->
      (* Biased towards allocator churn (Spawn/Exit/Grow): each of those
         runs buddy-alloc/free journal transactions, and journal commit
         points are the densest crash-schedule axis. *)
      match Rng.int rng 16 with
      | 0 | 1 -> Notify (Rng.int rng 1000)
      | 2 | 3 -> Wait (Rng.int rng 1000)
      | 4 | 5 | 6 -> Touch (Rng.int rng 1000)
      | 7 | 8 -> Write (Rng.int rng 1000)
      | 9 | 10 -> Spawn
      | 11 | 12 -> Exit (Rng.int rng 1000)
      | 13 | 14 -> Grow
      | _ -> Ckpt)

exception Stop

(* The two named extsync rings the trace drives.  Deliberately the SAME
   geometry: after a crash they are distinguishable only by the name
   persisted in their headers, which is exactly the reattach path under
   test.  Tiny, so the trace sheds and wraps them constantly. *)
let ct_ring_a = "ct.a"
let ct_ring_b = "ct.b"
let ct_ring_slots = 4
let ct_ring_slot_size = 48

(* Replay [ops] on a freshly booted [sys] (after its baseline checkpoint).
   [on_op i] runs after op [i] (0-based) completes — the hook the explorer
   uses to stop early (DRAM-loss crashes, twin replay).  An armed crash
   raising {!Warea.Crashed} mid-op escapes to the caller with the driver
   state simply abandoned, as a real power cut would leave it.

   [delivered] shadows the two rings' persistent delivered counters in
   DRAM: each ring's deliver callback bumps its ref.  No crash site can
   fire between [Ring.set_meta] and the callback (neither touches the
   journal), so whenever {!Warea.Crashed} escapes, the refs equal the
   counts durably in NVM — the exact post-recovery oracle. *)
let replay ?(delivered = (ref 0, ref 0)) sys ops ~on_op =
  let k () = System.kernel sys in
  let base = Kernel.create_process (k ()) ~name:"driver" ~threads:1 ~prio:5 in
  let da, db = delivered in
  let mgr = System.manager sys in
  (* map the rings BEFORE the heap: Touch/Write assume the heap region is
     vaddr-contiguous across Grow ops, so nothing may claim the vpns right
     after it *)
  let net_a =
    Net_server.create (k ()) mgr ~proc:base ~name:ct_ring_a ~slots:ct_ring_slots
      ~slot_size:ct_ring_slot_size
      ~deliver:(fun ~client:_ ~sent_ns:_ ~payload:_ -> incr da)
  in
  let net_b =
    Net_server.create (k ()) mgr ~proc:base ~name:ct_ring_b ~slots:ct_ring_slots
      ~slot_size:ct_ring_slot_size
      ~deliver:(fun ~client:_ ~sent_ns:_ ~payload:_ -> incr db)
  in
  let heap0 = Kernel.grow_heap (k ()) base ~pages:4 in
  let heap_pages = ref 4 in
  let psz = (Kernel.cost (k ())).Treesls_sim.Cost.page_size in
  let notifs = ref [| Kernel.create_notification (k ()) base |] in
  let procs = ref [] in
  let spawned = ref 0 in
  List.iteri
    (fun idx op ->
      (match op with
      | Notify i ->
        Ipc.notify (k ()) !notifs.(i mod Array.length !notifs);
        (* park a reply on ring A: published at the next commit, delivered
           by its flush, shed when the tiny ring is full — all three paths
           exercised under every crash schedule *)
        ignore (Net_server.send net_a ~client:(i mod 7) (Bytes.of_string (Printf.sprintf "a%d" i)))
      | Wait i ->
        ignore (Net_server.send net_b ~client:(i mod 5) (Bytes.of_string (Printf.sprintf "b%d" i)));
        (* only consume pending signals — blocking the driver's single
           thread would wedge the trace *)
        let n = !notifs.(i mod Array.length !notifs) in
        if n.Kobj.nt_count > 0 then ignore (Ipc.wait (k ()) n (List.hd base.Kernel.threads))
      | Touch i ->
        (* concentrated on the first four heap pages: a stable hot set that
           crosses the active-list promotion threshold, gets DRAM-cached,
           and is dirty at (nearly) every checkpoint — which is what makes
           hybrid stop-and-copy, drain backlogs and CoW-fault resolution
           actually reachable in the schedule space (Write spreads) *)
        Kernel.touch_write (k ()) base ~vpn:(heap0 + (i mod (min 8 !heap_pages)))
      | Write i ->
        (* same hot set as Touch, via the byte-write path: write faults on
           pages an async checkpoint left protected land here, exercising
           CoW-fault resolution against a pending drain backlog *)
        Kernel.write_bytes (k ()) base
          ~vaddr:(((heap0 + (i mod (min 8 !heap_pages))) * psz) + 64)
          (Bytes.of_string (Printf.sprintf "w%06d" i))
      | Spawn ->
        incr spawned;
        let p =
          Kernel.create_process (k ()) ~name:(Printf.sprintf "w%d" !spawned) ~threads:1 ~prio:5
        in
        notifs := Array.append !notifs [| Kernel.create_notification (k ()) p |];
        procs := !procs @ [ p ]
      | Exit i -> (
        match !procs with
        | [] -> ()
        | ps ->
          let j = i mod List.length ps in
          Kernel.exit_process (k ()) (List.nth ps j);
          procs := List.filteri (fun l _ -> l <> j) ps)
      | Grow ->
        let v = Kernel.grow_heap (k ()) base ~pages:2 in
        heap_pages := !heap_pages + 2;
        Kernel.touch_write (k ()) base ~vpn:v
      | Ckpt ->
        ignore (System.checkpoint sys);
        (* write-after-checkpoint on the hottest page: when the checkpoint
           staged a drain window this hits a still-protected backlogged
           page before any drain step runs — the CoW-fault resolution
           path, deterministically, every async window *)
        Kernel.touch_write (k ()) base ~vpn:heap0);
      (* one async drain step per op boundary, mirroring System.tick — a
         no-op in eager mode, and the mechanism that makes drain crash
         sites fire mid-trace in async sweeps *)
      System.drain_tick sys;
      on_op idx)
    ops

(* ---- state fingerprint ------------------------------------------------ *)

(* Every reachable object's snapshot plus the byte contents of every
   normal-PMO page, sorted by object id: two systems with equal
   fingerprints are indistinguishable to applications. *)
type fingerprint = (int * Snapshot.t * (int * string) list) list

let fingerprint sys : fingerprint =
  let k = System.kernel sys in
  let store = System.store sys in
  let objs = ref [] in
  Kobj.iter_tree ~root:(Kernel.root k) (fun obj ->
      let pages =
        match obj with
        | Kobj.Pmo p when p.Kobj.pmo_kind = Kobj.Pmo_normal ->
          List.sort compare
            (Radix.fold
               (fun pno paddr acc -> (pno, Bytes.to_string (Store.page_bytes store paddr)) :: acc)
               p.Kobj.pmo_radix [])
        | Kobj.Pmo _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
        | Kobj.Notification _ | Kobj.Irq_notification _ -> []
      in
      objs := (Kobj.id obj, Snapshot.take obj, pages) :: !objs);
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !objs

(* ---- schedules -------------------------------------------------------- *)

type point =
  | Commit of int * Warea.crash_phase  (* journal commit point x phase *)
  | Site of string * int  (* nth hit of a named ckpt crash site *)
  | Restore_site of string * int  (* crash at op k, then crash again at site during recovery *)
  | Op_crash of int  (* DRAM loss after op k *)

let point_to_string = function
  | Commit (p, ph) -> Printf.sprintf "commit:%d:%s" p (Warea.phase_name ph)
  | Site (s, n) -> Printf.sprintf "site:%s:%d" s n
  | Restore_site (s, k) -> Printf.sprintf "restore:%s:%d" s k
  | Op_crash k -> Printf.sprintf "op:%d" k

let point_of_string s =
  match String.split_on_char ':' s with
  | [ "commit"; p; ph ] -> (
    match (int_of_string_opt p, Warea.phase_of_string ph) with
    | Some p, Some ph -> Some (Commit (p, ph))
    | _ -> None)
  | [ "site"; site; n ] -> Option.map (fun n -> Site (site, n)) (int_of_string_opt n)
  | [ "restore"; site; k ] -> Option.map (fun k -> Restore_site (site, k)) (int_of_string_opt k)
  | [ "op"; k ] -> Option.map (fun k -> Op_crash k) (int_of_string_opt k)
  | _ -> None

type outcome =
  | Passed
  | Did_not_fire  (* determinism failure: numbering diverged between runs *)
  | Audit_failed of string
  | Fingerprint_mismatch of int  (* recovered version *)
  | Recovery_failed of string
  | Liveness_failed of string
  | Wear_failed of string  (* wearmap invariant broken across crash/restore *)
  | Tseries_failed of string  (* black-box sample torn/duplicated/reordered *)
  | Extsync_failed of string  (* named-ring reattach or delivered-count drift *)

let outcome_is_pass = function Passed -> true | _ -> false

let outcome_to_string = function
  | Passed -> "passed"
  | Did_not_fire -> "did-not-fire"
  | Audit_failed v -> "audit: " ^ v
  | Fingerprint_mismatch g -> Printf.sprintf "fingerprint mismatch vs twin @v%d" g
  | Recovery_failed e -> "recovery: " ^ e
  | Liveness_failed e -> "liveness: " ^ e
  | Wear_failed e -> "wear: " ^ e
  | Tseries_failed e -> "tseries: " ^ e
  | Extsync_failed e -> "extsync: " ^ e

(* Every writer context the simulator can legitimately put on the wear
   stack; attribution outside this set (including [Wearmap.unattributed])
   means an instrumentation gap or a bogus context leaking across a
   crash. *)
let known_wear_subsystems =
  [
    "app";
    "extsync";
    "nvm.journal";
    "nvm.meta";
    "nvm.swap";
    "ckpt.captree";
    "ckpt.snapshot";
    "ckpt.cow";
    "ckpt.cow_fault";
    "ckpt.hybrid";
    "ckpt.drain";
    "restore";
    "restore.journal";
  ]

(* Post-recovery wearmap invariants: physical-write counters are monotone
   across crash/restore (nothing ever rolls them back), and every byte is
   attributed to a subsystem that can actually run. *)
let wear_check sys ~bytes_before =
  let wm = System.wearmap sys in
  let total = Treesls_obs.Wearmap.total_bytes wm in
  if total < bytes_before then
    Some
      (Printf.sprintf "total bytes shrank across crash/restore (%d -> %d)" bytes_before
         total)
  else
    List.fold_left
      (fun acc (name, _writes, bytes) ->
        match acc with
        | Some _ -> acc
        | None ->
          if not (List.mem name known_wear_subsystems) then
            Some (Printf.sprintf "%d bytes attributed to unknown subsystem %S" bytes name)
          else None)
      None
      (Treesls_obs.Wearmap.subsystems wm)

module Tseries = Treesls_obs.Tseries

(* Pre-crash snapshot of the black box's spine: total samples recorded
   plus the identity of the newest one. *)
let tseries_mark sys =
  let ts = System.tseries sys in
  ( Tseries.total ts,
    Option.map
      (fun s -> (s.Tseries.sp_seq, s.Tseries.sp_version, s.Tseries.sp_ts_ns))
      (Tseries.latest ts) )

(* Post-recovery black-box invariants: the sample spine is monotone across
   crash/restore (samples exist only for committed versions, and nothing
   ever rolls the ring back), with no torn, duplicated or reordered
   sample.  Takes one fresh checkpoint through the victim's own probe so
   the spine is verified to *continue* after recovery, not merely to have
   survived. *)
let tseries_check sys ~mark =
  let total_before, last_before = mark in
  (* the twin boot made its probe ambient (last boot wins): reinstall the
     victim's so the fresh sample lands in the ring under test *)
  Probe.install (System.obs sys);
  ignore (System.checkpoint sys);
  (* async mode: the sample lands at settle, not at the STW *)
  System.drain_settle sys;
  let ts = System.tseries sys in
  let total = Tseries.total ts in
  if total < total_before then
    Some (Printf.sprintf "sample count shrank across crash/restore (%d -> %d)" total_before total)
  else if total = total_before then
    Some (Printf.sprintf "no sample recorded for the post-recovery commit (total=%d)" total)
  else begin
    let ss = Tseries.samples ts in
    let spine_err =
      let rec walk = function
        | a :: (b :: _ as rest) ->
          if b.Tseries.sp_seq <> a.Tseries.sp_seq + 1 then
            Some (Printf.sprintf "seq not consecutive (%d then %d)" a.Tseries.sp_seq b.Tseries.sp_seq)
          else if b.Tseries.sp_ts_ns < a.Tseries.sp_ts_ns then
            Some (Printf.sprintf "timestamp regressed at seq %d" b.Tseries.sp_seq)
          else if b.Tseries.sp_version <= a.Tseries.sp_version then
            Some
              (Printf.sprintf "version not strictly increasing at seq %d (v%d then v%d)"
                 b.Tseries.sp_seq a.Tseries.sp_version b.Tseries.sp_version)
          else walk rest
        | [ last ] ->
          if last.Tseries.sp_seq <> total - 1 then
            Some (Printf.sprintf "newest seq %d != total-1 (%d)" last.Tseries.sp_seq (total - 1))
          else None
        | [] -> Some "ring empty after a committed checkpoint"
      in
      walk ss
    in
    match spine_err with
    | Some _ as e -> e
    | None -> (
      (* the pre-crash newest sample, if still retained, must be intact *)
      match last_before with
      | None -> None
      | Some (seq, ver, ts_ns) -> (
        match List.find_opt (fun s -> s.Tseries.sp_seq = seq) ss with
        | None -> None (* wrapped out of the ring; nothing to compare *)
        | Some s ->
          if s.Tseries.sp_version <> ver || s.Tseries.sp_ts_ns <> ts_ns then
            Some (Printf.sprintf "pre-crash sample seq %d rewritten across crash/restore" seq)
          else None))
  end

(* Post-recovery extsync invariants: both rings reattach strictly by
   their persisted names — in REVERSE creation order, so a creation-order
   (or size-based) claim would cross-wire them — and each ring's
   persistent delivered counter equals the crash-instant DRAM shadow
   exactly.  Deliveries are durable the moment they happen (the meta word
   lives in an eternal PMO), so recovery must neither lose nor replay
   any.  A crash before the rings' creation committed leaves nothing to
   claim; that is only acceptable while the shadows are still zero. *)
let extsync_check sys ~expect_a ~expect_b =
  let k = System.kernel sys in
  match Kernel.find_process k ~name:"driver" with
  | None ->
    if expect_a = 0 && expect_b = 0 then None
    else Some "driver process missing after recovery despite deliveries"
  | Some driver ->
    let mgr = System.manager sys in
    let check name expect =
      (* reattach drains any published-but-undrained backlog; count it
         separately so the comparison stays exact *)
      let fresh = ref 0 in
      match
        Net_server.reattach k mgr ~proc:driver ~name ~slots:ct_ring_slots
          ~slot_size:ct_ring_slot_size
          ~deliver:(fun ~client:_ ~sent_ns:_ ~payload:_ -> incr fresh)
      with
      | net ->
        let d = Net_server.delivered net - !fresh in
        if d <> expect then
          Some
            (Printf.sprintf "ring %s delivered %d (+%d at reattach), shadow says %d" name d
               !fresh expect)
        else None
      | exception Invalid_argument _ ->
        if expect = 0 then None
        else Some (Printf.sprintf "ring %s unclaimable after %d deliveries" name expect)
    in
    (match check ct_ring_b expect_b with
    | Some _ as e -> e
    | None -> check ct_ring_a expect_a)

type config = {
  seed : int;
  ops : int;
  phases : Warea.crash_phase list;
  include_sites : bool;
  include_op_crashes : bool;
  commit_cap : int;  (* max commit points sampled (x |phases| schedules) *)
  per_site_cap : int;  (* max hits sampled per site *)
  op_cap : int;  (* max DRAM-loss (and per-restore-site) op indices *)
  recovery_bug : bool;  (* deliberately break journal replay (must be caught) *)
  async : bool;  (* run with the asynchronous drain on (Lazy, batch 1) *)
}

let default_config =
  {
    seed = 42;
    ops = 280;
    phases = Warea.all_phases;
    include_sites = true;
    include_op_crashes = true;
    commit_cap = 400;
    per_site_cap = 8;
    op_cap = 12;
    recovery_bug = false;
    async = false;
  }

(* Boot one victim/twin system under the sweep's checkpoint mode.  Async
   sweeps use the Lazy policy with a tiny batch so windows stay pending
   across several ops — maximising the trace window in which the drain
   crash sites and the CoW fault path are live. *)
let boot_sys cfg =
  let sys =
    if cfg.async then
      (* hair-trigger promotion: one fault puts a page on the active list,
         so the hot set is DRAM-cached (and hence drain-backlogged) within
         the first couple of checkpoint windows even in short traces *)
      System.boot
        ~active_cfg:{ Treesls_ckpt.Active_list.default_config with hot_threshold = 1 }
        ()
    else System.boot ()
  in
  if cfg.async then begin
    let mgr = System.manager sys in
    (Treesls_ckpt.Manager.features mgr).Treesls_ckpt.State.async_drain <- true;
    Treesls_ckpt.Manager.set_drain_policy mgr Treesls_ckpt.Drain.Lazy;
    Treesls_ckpt.Manager.set_drain_batch mgr 1
  end;
  sys

let reproducer cfg p = Printf.sprintf "seed=%d;ops=%d;%s" cfg.seed cfg.ops (point_to_string p)

let parse_reproducer s =
  let kv key p =
    let pre = key ^ "=" in
    let n = String.length pre in
    if String.length p > n && String.sub p 0 n = pre then
      int_of_string_opt (String.sub p n (String.length p - n))
    else None
  in
  match String.split_on_char ';' s with
  | [ a; b; pt ] -> (
    match (kv "seed" a, kv "ops" b, point_of_string pt) with
    | Some seed, Some ops, Some point -> Some (seed, ops, point)
    | _ -> None)
  | _ -> None

type result = { point : point; outcome : outcome; recovery : Rto.record option }

type sweep = {
  config : config;
  commit_points : int;  (* journal commit points enumerated in the trace window *)
  site_hits : (string * int) list;
  results : result list;
  commit_schedules : int;
  passed : int;
  failed : result list;
  rto_stats : (string * Histogram.t) list;
      (* restore.* timers of every victim, Histogram.merge'd across
         schedules (min/mean/p99 per phase), sorted by name *)
}

(* Evenly sample at most [k] elements of [lst] (always keeps first/last). *)
let sample k lst =
  let n = List.length lst in
  if n <= k || k <= 0 then lst
  else if k = 1 then [ List.hd lst ]
  else
    let arr = Array.of_list lst in
    List.init k (fun i -> arr.(i * (n - 1) / (k - 1)))

(* ---- enumeration ------------------------------------------------------ *)

type plan = {
  p_ops : op list;
  first_point : int;
  last_point : int;
  site_hits : (string * int) list;
}

(* One instrumented run of the trace: record the commit-point window and
   how often each named crash site fires.  Nothing is injected. *)
let enumerate cfg =
  Crash_site.reset ();
  let ops = gen_trace ~seed:cfg.seed ~ops:cfg.ops in
  let sys = boot_sys cfg in
  ignore (System.checkpoint sys);
  let w = Store.warea (System.store sys) in
  let first_point = Warea.commit_points w in
  Crash_site.record ();
  replay sys ops ~on_op:(fun _ -> ());
  (* one final checkpoint so the tail of the trace is also covered by
     checkpoint crash sites; settle its drain window so the drain/settle
     sites of the tail are enumerated too *)
  ignore (System.checkpoint sys);
  System.drain_settle sys;
  let last_point = Warea.commit_points w in
  let site_hits = Crash_site.counts () in
  Crash_site.reset ();
  { p_ops = ops; first_point; last_point; site_hits }

let schedules_of_plan cfg plan =
  let commits =
    List.init (plan.last_point - plan.first_point) (fun i -> plan.first_point + 1 + i)
    |> sample cfg.commit_cap
    |> List.concat_map (fun p -> List.map (fun ph -> Commit (p, ph)) cfg.phases)
  in
  let op_indices = sample cfg.op_cap (List.init (List.length plan.p_ops) Fun.id) in
  let sites =
    if not cfg.include_sites then []
    else
      List.concat_map
        (fun (site, n) ->
          List.init n (fun i -> i + 1) |> sample cfg.per_site_cap
          |> List.map (fun h -> Site (site, h)))
        plan.site_hits
      @ List.concat_map
          (fun site -> List.map (fun k -> Restore_site (site, k)) op_indices)
          [ "restore.begin"; "restore.precheck" ]
  in
  let op_crashes = if cfg.include_op_crashes then List.map (fun k -> Op_crash k) op_indices else [] in
  commits @ sites @ op_crashes

(* ---- twin oracle ------------------------------------------------------ *)

(* The crash-free twin for recovered version [g]: replay the same trace,
   stop at the very instant version [g] commits, then crash+recover — the
   recovery normalises runtime-only state (thread run states, page
   placement) exactly as it did for the victim, so the fingerprints are
   comparable.  The stop must be at the commit itself, not a per-op poll:
   one checkpoint call can commit two versions back to back (the forced
   settle of the pending window, then the new window settling immediately
   when its backlog is empty), so a poll between ops can overshoot [g].
   The on_checkpoint callback fires at every commit — eager checkpoints
   and drain settles alike — and raising from it abandons only
   volatile post-commit work, which the crash would lose anyway.
   Cached per version: the whole sweep shares one twin per commit
   version. *)
let twin_fingerprint cache cfg g =
  match Hashtbl.find_opt cache g with
  | Some fp -> fp
  | None ->
    Crash_site.reset ();
    let ops = gen_trace ~seed:cfg.seed ~ops:cfg.ops in
    let sys = boot_sys cfg in
    (try
       Manager.on_checkpoint (System.manager sys) (fun () ->
           if System.version sys >= g then raise Stop);
       ignore (System.checkpoint sys);
       replay sys ops ~on_op:(fun _ -> ());
       (* trace exhausted below g: the victim's g came from the trace
          tail — a still-pending window, or the final enumeration
          checkpoint *)
       System.drain_settle sys;
       if System.version sys < g then begin
         ignore (System.checkpoint sys);
         System.drain_settle sys
       end
     with Stop -> ());
    ignore (System.crash_and_recover sys);
    let fp = fingerprint sys in
    Hashtbl.add cache g fp;
    fp

(* ---- injection -------------------------------------------------------- *)

(* Post-recovery liveness: the recovered system must still take work.
   Returns an error description, or None. *)
let liveness_check sys =
  try
    let k = System.kernel sys in
    let p = Kernel.create_process k ~name:"post-crash" ~threads:1 ~prio:5 in
    let v = Kernel.grow_heap k p ~pages:2 in
    Kernel.touch_write k p ~vpn:v;
    Kernel.touch_write k p ~vpn:(v + 1);
    ignore (System.checkpoint sys);
    System.drain_settle sys;
    let rep = System.audit sys in
    if Audit.errors rep > 0 then Some (Printf.sprintf "%d audit errors after new work" (Audit.errors rep))
    else None
  with e -> Some (Printexc.to_string e)

(* Run ONE schedule end to end: boot, arm, replay until the crash fires,
   power-cut, recover, verify (audit + twin fingerprint + liveness).
   Returns the outcome plus the victim's sealed recovery record and its
   restore.* timer histograms (live references: the victim system is
   dropped right after, so handing them out is safe). *)
let run_one_profiled ?(twins = Hashtbl.create 8) cfg point =
  Crash_site.reset ();
  let ops = gen_trace ~seed:cfg.seed ~ops:cfg.ops in
  let sys = boot_sys cfg in
  ignore (System.checkpoint sys);
  let w = Store.warea (System.store sys) in
  if cfg.recovery_bug then Warea.set_recovery_bug w true;
  (match point with
  | Commit (p, ph) -> Warea.set_crash_schedule w (Some (p, ph))
  | Site (s, n) -> Crash_site.arm ~site:s ~nth:n
  | Restore_site _ | Op_crash _ -> ());
  let fired = ref false in
  let stop_at = match point with Restore_site (_, k) | Op_crash k -> Some k | _ -> None in
  let shadow_a = ref 0 and shadow_b = ref 0 in
  (try
     replay ~delivered:(shadow_a, shadow_b) sys ops ~on_op:(fun i ->
         match stop_at with Some k when i = k -> raise Stop | _ -> ());
     (* cover the trace tail, mirroring the enumeration run *)
     ignore (System.checkpoint sys);
     System.drain_settle sys
   with
  | Warea.Crashed _ -> fired := true
  | Stop -> fired := true);
  (* Disarm leftovers: recovery must not re-fire a stale plan. *)
  Warea.set_crash_schedule w None;
  Crash_site.reset ();
  let wear_bytes_before = Treesls_obs.Wearmap.total_bytes (System.wearmap sys) in
  let tseries_before = tseries_mark sys in
  let outcome =
    if not !fired then Did_not_fire
    else begin
      System.crash sys;
      (* crash-during-recovery schedules arm their site only now *)
      (match point with Restore_site (s, _) -> Crash_site.arm ~site:s ~nth:1 | _ -> ());
      let recovered =
        match System.recover sys with
        | _ -> Ok ()
        | exception Warea.Crashed _ when (match point with Restore_site _ -> true | _ -> false) ->
          (* the second power cut, mid-recovery: clean up and just retry *)
          Crash_site.reset ();
          (match System.recover sys with
          | _ -> Ok ()
          | exception e -> Error ("retry: " ^ Printexc.to_string e))
        | exception e -> Error (Printexc.to_string e)
      in
      Crash_site.reset ();
      match recovered with
      | Error e -> Recovery_failed e
      | Ok () -> (
        let rep = System.audit sys in
        if Audit.errors rep > 0 then
          Audit_failed (Printf.sprintf "%d errors" (Audit.errors rep))
        else
          let g = System.version sys in
          let fp = fingerprint sys in
          if fp <> twin_fingerprint twins cfg g then Fingerprint_mismatch g
          else
            match liveness_check sys with
            | Some e -> Liveness_failed e
            | None -> (
              match wear_check sys ~bytes_before:wear_bytes_before with
              | Some e -> Wear_failed e
              | None -> (
                match tseries_check sys ~mark:tseries_before with
                | Some e -> Tseries_failed e
                | None -> (
                  match extsync_check sys ~expect_a:!shadow_a ~expect_b:!shadow_b with
                  | Some e -> Extsync_failed e
                  | None -> Passed))))
    end
  in
  Warea.set_recovery_bug w false;
  (* read RTO telemetry through the victim's own probe handle: the twin's
     probe may be the ambient one by now (last boot wins) *)
  let recovery = Rto.last (Probe.rto (System.obs sys)) in
  let m = Probe.metrics (System.obs sys) in
  let rto_timers =
    List.filter_map
      (fun name ->
        if String.length name >= 8 && String.sub name 0 8 = "restore." then
          Option.map (fun h -> (name, h)) (Metrics.histogram m name)
        else None)
      (Metrics.timer_names m)
  in
  ({ point; outcome; recovery }, rto_timers)

let run_one ?twins cfg point =
  let r, _ = run_one_profiled ?twins cfg point in
  r.outcome

(* ---- the sweep -------------------------------------------------------- *)

let run ?(progress = fun _ _ -> ()) cfg =
  let plan = enumerate cfg in
  let schedules = schedules_of_plan cfg plan in
  let twins = Hashtbl.create 16 in
  let total = List.length schedules in
  (* Per-phase RTO aggregation: every victim's restore.* timers are merged
     bucket-wise (Histogram.merge) into one histogram per name — the raw
     per-schedule samples are never re-observed. *)
  let rto_acc : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16 in
  let results =
    List.mapi
      (fun i point ->
        progress i total;
        let r, rto_timers = run_one_profiled ~twins cfg point in
        List.iter
          (fun (name, h) ->
            let acc =
              match Hashtbl.find_opt rto_acc name with
              | Some a -> a
              | None ->
                let a = Histogram.create () in
                Hashtbl.add rto_acc name a;
                a
            in
            Histogram.merge ~into:acc h)
          rto_timers;
        Probe.count "crashtest.schedules" 1;
        if not (outcome_is_pass r.outcome) then begin
          Probe.count "crashtest.failed" 1;
          Probe.instant "crashtest.fail"
            ~args:[ ("repro", reproducer cfg point); ("outcome", outcome_to_string r.outcome) ]
        end;
        r)
      schedules
  in
  let failed = List.filter (fun r -> not (outcome_is_pass r.outcome)) results in
  {
    config = cfg;
    commit_points = plan.last_point - plan.first_point;
    site_hits = plan.site_hits;
    results;
    commit_schedules =
      List.length (List.filter (fun r -> match r.point with Commit _ -> true | _ -> false) results);
    passed = List.length results - List.length failed;
    failed;
    rto_stats =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) rto_acc []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* ---- shrinking -------------------------------------------------------- *)

(* Minimal reproducer by prefix truncation: find the shortest [ops] prefix
   under which the schedule still fires and still fails.  Sound because
   every candidate is re-verified end to end; commit-point numbering under
   a shorter prefix is unchanged for the prefix itself (the trace is a
   prefix-closed determinism domain). *)
let shrink cfg point =
  let fails k =
    if k >= cfg.ops then true
    else
      let cfg' : config = { cfg with ops = k } in
      not (outcome_is_pass (run_one cfg' point))
  in
  let lo = ref 0 and hi = ref cfg.ops in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fails mid then hi := mid else lo := mid + 1
  done;
  { cfg with ops = !hi }
