(** Systematic crash-schedule exploration ("crashtest").

    TreeSLS's core claim is failure resilience: a power cut at {e any}
    instant must recover to the last committed checkpoint (PAPER §4).  This
    module turns that claim into an exhaustive test, the way JASS and
    In-Cache-Line Logging validate their recovery paths:

    + {b Enumerate}: run a deterministic workload trace once, counting
      every journal commit point ({!Treesls_nvm.Warea.commit_points}) and
      every named checkpoint/restore sub-phase crash site
      ({!Treesls_nvm.Crash_site}).
    + {b Inject}: re-run the same trace once per (crash point x phase)
      schedule, arm exactly that crash, and let it fire — a journal commit
      torn at one of the four {!Treesls_nvm.Warea.crash_phase}s, a
      checkpoint sub-phase (captree walk, hybrid-copy migration steps,
      publication, version bump), a crash {e during recovery itself}, or
      plain DRAM loss between operations.
    + {b Verify}: recover via [System.crash]/[recover], then require (a)
      zero [slsfsck] audit errors, (b) a state fingerprint equal to a
      crash-free {e twin} that committed the same version and was then
      crash+recovered (normalising runtime-only state), and (c) liveness —
      the recovered system still takes new work and checkpoints cleanly.

    Every schedule is replayable from its reproducer string
    (["seed=42;ops=150;commit:57:mid_apply"]) via {!point_of_string} and
    {!run_one}, and a failure shrinks to a minimal trace prefix with
    {!shrink}. *)

module Warea = Treesls_nvm.Warea

(** {2 Workload trace} *)

type op =
  | Notify of int
  | Wait of int
  | Touch of int
  | Write of int
  | Spawn
  | Exit of int
  | Grow
  | Ckpt

val gen_trace : seed:int -> ops:int -> op list
(** Deterministic trace: same [seed]/[ops] — same trace, same commit-point
    numbering, same site hit counts. *)

val replay :
  ?delivered:int ref * int ref -> Treesls.System.t -> op list -> on_op:(int -> unit) -> unit
(** Replay a trace on a freshly booted system (after its baseline
    checkpoint).  [on_op i] runs after op [i] completes.  An armed crash
    raising {!Treesls_nvm.Warea.Crashed} mid-op escapes to the caller.

    The trace also drives two same-geometry named extsync reply rings
    (["ct.a"] on [Notify] ops, ["ct.b"] on [Wait] ops); [delivered]
    receives a DRAM shadow of each ring's persistent delivered counter,
    exact at any crash instant. *)

(** {2 Schedules} *)

type point =
  | Commit of int * Warea.crash_phase
      (** tear journal commit point [n] at the given phase *)
  | Site of string * int  (** crash at the [n]th hit of a named crash site *)
  | Restore_site of string * int
      (** DRAM loss after op [k], then a second crash at the named site
          during the recovery that follows (re-entrancy check) *)
  | Op_crash of int  (** DRAM loss after op [k] *)

val point_to_string : point -> string
val point_of_string : string -> point option

type outcome =
  | Passed
  | Did_not_fire
      (** the armed crash never fired: commit-point numbering diverged
          between the enumeration and injection runs (a determinism bug) *)
  | Audit_failed of string
  | Fingerprint_mismatch of int  (** recovered version *)
  | Recovery_failed of string
  | Liveness_failed of string
  | Wear_failed of string
      (** a wearmap invariant broke across crash/restore: physical-write
          counters shrank, or bytes were attributed outside the known
          writer-context vocabulary (e.g. [unattributed]) *)
  | Tseries_failed of string
      (** a black-box invariant broke across crash/restore: a sample was
          torn, duplicated, reordered or lost (seqs must stay
          consecutive, timestamps nondecreasing, versions strictly
          increasing), or no sample was recorded for the post-recovery
          commit *)
  | Extsync_failed of string
      (** an extsync invariant broke across crash/restore: a named reply
          ring could not be reclaimed (reattached in reverse creation
          order, so only the persisted header name can disambiguate the
          equal-geometry rings), or its persistent delivered counter
          drifted from the crash-instant shadow — a reply lost or
          double-delivered *)

val outcome_is_pass : outcome -> bool
val outcome_to_string : outcome -> string

type config = {
  seed : int;
  ops : int;
  phases : Warea.crash_phase list;
  include_sites : bool;
  include_op_crashes : bool;
  commit_cap : int;  (** max commit points sampled (each x |phases|) *)
  per_site_cap : int;  (** max hits sampled per crash site *)
  op_cap : int;  (** max DRAM-loss / per-restore-site op indices *)
  recovery_bug : bool;
      (** re-introduce the Mid_apply journal-replay bug
          ({!Treesls_nvm.Warea.set_recovery_bug}); a correct sweep must
          then report failures *)
  async : bool;
      (** run every victim and twin with [features.async_drain] on (Lazy
          policy, batch 1): checkpoints stage a drain window that settles
          over the following ops, so the sweep covers mid-drain crashes
          ([ckpt.drain.copied] / [ckpt.drain.settled] /
          [ckpt.cow_fault.resolved] sites) and the restore-side
          [drain_settle] reconciliation *)
}

val default_config : config

val reproducer : config -> point -> string
(** ["seed=<n>;ops=<n>;<point>"] — paste into
    [treesls crashtest --schedule]. *)

val parse_reproducer : string -> (int * int * point) option
(** Inverse of {!reproducer}: [(seed, ops, point)]. *)

(** {2 Running} *)

type fingerprint
(** Whole-state fingerprint: every reachable object's snapshot plus the
    byte contents of every normal-PMO page, keyed by object id. *)

val fingerprint : Treesls.System.t -> fingerprint

val run_one : ?twins:(int, fingerprint) Hashtbl.t -> config -> point -> outcome
(** Boot, arm [point], replay the trace, power-cut when it fires, recover,
    verify.  [twins] caches per-version twin fingerprints across calls
    (pass the same table when running many schedules). *)

type result = {
  point : point;
  outcome : outcome;
  recovery : Treesls_obs.Rto.record option;
      (** the victim's sealed RTO record (phase breakdown, downtime,
          pages/objects restored); [None] only when no recovery completed
          ([Did_not_fire], [Recovery_failed]) *)
}

val run_one_profiled :
  ?twins:(int, fingerprint) Hashtbl.t ->
  config ->
  point ->
  result * (string * Treesls_util.Histogram.t) list
(** Like {!run_one} but also returns the victim's [restore.*] timer
    histograms, for {!Treesls_util.Histogram.merge}-style aggregation
    across schedules. *)

type sweep = {
  config : config;
  commit_points : int;  (** journal commit points in the trace window *)
  site_hits : (string * int) list;  (** enumeration-run site hit counts *)
  results : result list;
  commit_schedules : int;  (** how many (commit point x phase) schedules ran *)
  passed : int;
  failed : result list;
  rto_stats : (string * Treesls_util.Histogram.t) list;
      (** every victim's [restore.*] timers (total/downtime/untracked and
          per-phase), merged across all schedules without re-observing
          raw samples; query min/mean/p99 via {!Treesls_util.Histogram} *)
}

val run : ?progress:(int -> int -> unit) -> config -> sweep
(** The full sweep: enumerate, then inject every schedule.  [progress i n]
    is called before schedule [i] of [n].  Emits [crashtest.schedules] /
    [crashtest.failed] metrics and a [crashtest.fail] trace instant (with
    the reproducer string) per failing schedule. *)

val shrink : config -> point -> config
(** Smallest [ops] prefix under which [point] still fails (binary search;
    every candidate is re-verified end to end). *)
