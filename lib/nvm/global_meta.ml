type status = Idle | In_progress

(* NVM-resident: survives crash (no explicit wipe). *)
type t = { mutable version : int; mutable status : status }

let create () = { version = 0; status = Idle }
let version t = t.version
let status t = t.status
(* Each mutation models an 8-byte NVM word write (status or version). *)
let wear_word () = Treesls_obs.Probe.wear_note ~subsystem:"nvm.meta" ~bytes:8

let begin_checkpoint t =
  t.status <- In_progress;
  wear_word ()

let commit_checkpoint t =
  t.version <- t.version + 1;
  t.status <- Idle;
  wear_word ();
  wear_word ()

let abort_in_flight t =
  t.status <- Idle;
  wear_word ()
let checkpoints_taken t = t.version
