(** Buddy allocator for NVM pages.

    The checkpoint manager "uses a buddy system to manage all NVM resources"
    (§3).  State is a complete binary tree stored in the journaled word area
    ({!Warea}): node [i] records the size of the largest free run of pages
    below it, so allocation descends in O(log n) and freeing merges buddies
    by recomputing ancestors.  A parallel array records the order of each
    live allocation so that a mismatched [free] is detected.

    Every mutation goes through a {!Txn}; a crash at any phase leaves the
    tree either before or after the whole operation. *)

type t

val words_needed : total_pages:int -> int
(** Words of {!Warea} this allocator occupies for [total_pages] (a power of
    two). *)

val format : Warea.t -> base:int -> total_pages:int -> t
(** Initialise a fresh allocator (boot time; all pages free). *)

val attach : Warea.t -> base:int -> total_pages:int -> t
(** Re-attach to existing state after a crash (no reformat). *)

val total_pages : t -> int
val free_pages : t -> int

val alloc_txn : Txn.t -> t -> order:int -> int option
(** Reserve a block of [2^order] pages inside an open transaction; returns
    the page offset. The reservation only becomes durable when the
    transaction commits. *)

val free_txn : Txn.t -> t -> offset:int -> unit
(** Release the block starting at [offset]. Raises [Invalid_argument] if
    [offset] is not the start of a live allocation. *)

val alloc : t -> order:int -> int option
(** [alloc_txn] + commit as a single-op transaction. *)

val free : t -> offset:int -> unit

val order_of : t -> offset:int -> int option
(** Order of the live allocation at [offset], if any. *)

val iter_live : t -> (offset:int -> order:int -> unit) -> unit
(** Visit every live allocation (read-only walk of the order array; used by
    the state auditor to reconcile allocator accounting with reachable
    objects). *)

val live_pages : t -> int
(** Pages covered by live allocations ([total_pages - free_pages] when the
    free counter is consistent). *)

val check_invariants : t -> unit
(** Recompute the tree bottom-up and compare with stored state; verify the
    free-page count. Raises [Failure] on divergence (test helper). *)
