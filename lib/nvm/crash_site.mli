(** Named crash sites for the checkpoint/restore pipelines.

    The checkpoint manager marks interesting instants — sub-phases of the
    stop-the-world walk, hybrid-copy migration steps, the version bump —
    with [Crash_site.hit "ckpt.publish"] and the like.  In the default
    [Off] mode a hit is a single mode check (tier-1 tests pay nothing).
    The crash-schedule explorer first runs a trace in [Record] mode to
    enumerate how often each site fires, then re-runs it with one site
    {!arm}ed: the [nth] hit of that site raises {!Warea.Crashed}, modelling
    a power cut at exactly that instant.

    Ambient (global) on purpose, mirroring [Treesls_obs.Probe]: crash
    injection must not thread plumbing through every pipeline layer.
    Explorers {!reset} around each run; at most one system should run under
    a non-[Off] mode at a time. *)

val reset : unit -> unit
(** Back to [Off]; clears hit counts. *)

val record : unit -> unit
(** Count every hit per site (enumeration run). *)

val arm : site:string -> nth:int -> unit
(** Crash (raise {!Warea.Crashed}) at the [nth] (1-based) hit of [site];
    self-disarms on firing. *)

val armed : unit -> (string * int) option
(** The armed (site, nth), if any — e.g. to detect a schedule that never
    fired. *)

val hit : string -> unit
(** Mark a crash site.  No-op when [Off]. *)

val counts : unit -> (string * int) list
(** Per-site hit counts of the current recording, sorted by site name. *)
