(** The checkpoint manager's storage layer.

    Bundles the NVM and DRAM page devices, the journaled word area, the
    buddy and slab allocators, and the global checkpoint metadata.  This is
    the "standalone in-kernel module whose state is not checkpointed" of §3:
    it survives power failure through its own journaling ({!recover}), not
    through the capability-tree checkpoint.

    All operations charge simulated time to a pluggable sink, by default
    the global clock; the checkpoint code redirects charges to per-core
    meters while modelling work done in parallel with the leader. *)

type t

type sink = Clock_sink | Meter of int ref | Off

val create :
  ?cost:Treesls_sim.Cost.t ->
  ?ssd_pages:int ->
  clock:Treesls_sim.Clock.t ->
  nvm_pages:int ->
  dram_pages:int ->
  unit ->
  t
(** [nvm_pages] must be a power of two. [ssd_pages] sizes the swap device
    used by memory over-commitment (default 4096). *)

val cost : t -> Treesls_sim.Cost.t
val clock : t -> Treesls_sim.Clock.t
val meta : t -> Global_meta.t
val buddy : t -> Buddy.t
val slab : t -> Slab.t
val warea : t -> Warea.t

val charge : t -> int -> unit
(** Charge [ns] to the current sink. *)

val with_sink : t -> sink -> (unit -> 'a) -> 'a
(** Temporarily redirect charges (restores the previous sink on exit, also
    on exception). *)

(** {2 Pages} *)

val alloc_page : t -> Paddr.t
(** Allocate one NVM page. Raises [Out_of_memory] when NVM is exhausted. *)

val free_page : t -> Paddr.t -> unit
(** Free an NVM page (must have been allocated with {!alloc_page}). *)

val alloc_dram_page : t -> Paddr.t option
(** Allocate one DRAM page; [None] when the DRAM cache is full. *)

val free_dram_page : t -> Paddr.t -> unit

val page_bytes : t -> Paddr.t -> Bytes.t
(** Raw backing store of a page (no cost charged; callers charge access
    costs at the right granularity). *)

val copy_page : t -> src:Paddr.t -> dst:Paddr.t -> unit
(** Copy page content, charging the device-appropriate memcpy cost. *)

val read_page : t -> Paddr.t -> off:int -> len:int -> Bytes.t
(** Read bytes, charging per-cacheline access cost. *)

val write_page : t -> Paddr.t -> off:int -> Bytes.t -> unit
(** Write bytes, charging per-cacheline access cost. *)

(** {2 SSD swap (memory over-commitment, paper section 8)} *)

val swap_out : t -> src:Paddr.t -> Paddr.t option
(** Move an NVM page's content into an SSD slot and free the NVM frame;
    [None] if the swap device is full. Charges one SSD page transfer. *)

val swap_in : t -> slot:Paddr.t -> Paddr.t
(** Bring a swapped page back: allocates an NVM frame, copies, frees the
    slot. Raises [Out_of_memory] if NVM is exhausted. *)

val free_ssd_page : t -> Paddr.t -> unit
(** Release a swap slot (rollback of pages that left the checkpoint). *)

val ssd_slots_free : t -> int

(** {2 Small objects} *)

val alloc_obj : t -> size:int -> Slab.handle
(** Slab-allocate. Raises [Out_of_memory] when exhausted. *)

val free_obj : t -> Slab.handle -> unit

(** {2 Failure} *)

val crash : t -> unit
(** Power failure: DRAM content and the DRAM allocator are lost; NVM,
    the word area (possibly with a torn journal record) and global metadata
    survive. *)

val recover : t -> unit
(** Replay the journal and reset the DRAM allocator. Must run before any
    other operation after {!crash}. *)

(** {2 Backup integrity (data reliability, paper section 8)} *)

val set_checksums : t -> bool -> unit
(** Enable/disable reliability mode (default off, matching the paper's
    base system). When on, backup pages are checksummed as they are
    written and verified before restore uses them. *)

val checksums_enabled : t -> bool

val seal_page : t -> Paddr.t -> unit
(** Record a checksum of the page's current content (no-op when
    reliability mode is off). Checkpoint code seals every backup page
    right after copying into it; the digest lives in NVM metadata and
    survives crashes. *)

val verify_page : t -> Paddr.t -> bool
(** [true] if the page is unsealed, or sealed and its content still
    matches the recorded checksum. *)

val unseal_page : t -> Paddr.t -> unit
(** Drop the checksum (the page leaves the backup role, e.g. it becomes a
    runtime page again and will be legitimately modified). *)

val is_sealed : t -> Paddr.t -> bool

val corrupt_page : t -> Paddr.t -> unit
(** Fault injection for tests: flip bits in the page so a sealed page
    fails verification (models NVM media corruption). *)

(** {2 Introspection} *)

val nvm_pages_free : t -> int
val nvm_pages_total : t -> int

val nvm_pages_touched : t -> int
val dram_pages_touched : t -> int
(** Pages whose backing storage has been materialised on each device
    (surfaces [Device.touched]); the DRAM count resets to 0 on crash,
    the NVM count survives. *)

val dram_pages_free : t -> int
val live_objects : t -> int
val journal_commits : t -> int

val journal_in_flight : t -> bool
(** Whether an un-truncated word-area journal record exists. Outside a
    crash window this must be [false] (the auditor's "journal idle"
    invariant). *)

val allocator_meta_words : t -> int
(** Size of the journaled word area holding buddy + slab metadata. *)

val sealed_pages : t -> int
(** Number of pages currently carrying a backup checksum. *)

val ssd_slots_total : t -> int
