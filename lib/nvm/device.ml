type kind = Paddr.device

type t = {
  kind : kind;
  page_size : int;
  store : Bytes.t option array;
  mutable touched : int;
}

let create ~kind ~pages ~page_size =
  assert (pages > 0 && page_size > 0);
  { kind; page_size; store = Array.make pages None; touched = 0 }

let kind t = t.kind
let pages t = Array.length t.store
let page_size t = t.page_size

let page t idx =
  match t.store.(idx) with
  | Some b -> b
  | None ->
    let b = Bytes.make t.page_size '\000' in
    t.store.(idx) <- Some b;
    t.touched <- t.touched + 1;
    b

let read t idx ~off ~len =
  assert (off >= 0 && len >= 0 && off + len <= t.page_size);
  let p = page t idx in
  Bytes.sub p off len

(* Every physical byte landing on an NVM page feeds the wearmap, attributed
   to the ambient writer context — this is the single choke point that makes
   write-amplification and wear measurable (DRAM/SSD writes cost no
   endurance and are not counted). *)
let wear t idx ~bytes =
  match t.kind with
  | Paddr.Nvm -> Treesls_obs.Probe.wear_page_write ~page:idx ~bytes
  | Paddr.Dram | Paddr.Ssd -> ()

let write t idx ~off src =
  let len = Bytes.length src in
  assert (off >= 0 && off + len <= t.page_size);
  let p = page t idx in
  Bytes.blit src 0 p off len;
  wear t idx ~bytes:len

let copy_page ~src ~src_idx ~dst ~dst_idx =
  assert (src.page_size = dst.page_size);
  let s = page src src_idx in
  let d = page dst dst_idx in
  Bytes.blit s 0 d 0 src.page_size;
  wear dst dst_idx ~bytes:dst.page_size

let zero_page t idx =
  match t.store.(idx) with
  | None -> () (* lazily-materialised pages are already zero: no write *)
  | Some b ->
    Bytes.fill b 0 t.page_size '\000';
    wear t idx ~bytes:t.page_size

let crash t =
  match t.kind with
  | Paddr.Nvm | Paddr.Ssd -> ()
  | Paddr.Dram ->
    Array.iteri (fun i slot -> if slot <> None then t.store.(i) <- None) t.store;
    t.touched <- 0

let touched t = t.touched
