type t = {
  area : Warea.t;
  base : int;
  buddy : Buddy.t;
  page_size : int;
  max_slabs : int;
  live_word : int;
}

type handle = { cls : int; slot : int; obj : int }

let class_sizes = [| 32; 64; 128; 256; 512; 1024; 2048 |]

let nclasses = Array.length class_sizes

(* One word per bitmap caps objects per slab at 62 (OCaml ints are 63-bit
   and we keep the sign bit clear); small classes waste page tail bytes,
   which only affects capacity, not behaviour. *)
let capacity page_size cls = min (page_size / class_sizes.(cls)) 62

let words_needed ~max_slabs_per_class = (nclasses * max_slabs_per_class * 2) + 1

let layout area ~base ~buddy ~page_size ~max_slabs_per_class =
  { area; base; buddy; page_size; max_slabs = max_slabs_per_class; live_word = base + (nclasses * max_slabs_per_class * 2) }

let page_word t cls slot = t.base + (((cls * t.max_slabs) + slot) * 2)
let bitmap_word t cls slot = page_word t cls slot + 1

let format area ~base ~buddy ~page_size ~max_slabs_per_class =
  let t = layout area ~base ~buddy ~page_size ~max_slabs_per_class in
  let txn = Txn.create area in
  for cls = 0 to nclasses - 1 do
    for slot = 0 to max_slabs_per_class - 1 do
      Txn.write txn (page_word t cls slot) 0;
      Txn.write txn (bitmap_word t cls slot) 0
    done
  done;
  Txn.write txn t.live_word 0;
  Txn.commit txn ~desc:"slab-format";
  t

let attach = layout

let class_of_size size =
  if size <= 0 then invalid_arg "Slab.class_of_size: non-positive";
  let rec find i =
    if i >= nclasses then None
    else if class_sizes.(i) >= size then Some i
    else find (i + 1)
  in
  find 0

let full_bitmap cap = (1 lsl cap) - 1

let lowest_set_bit v =
  assert (v <> 0);
  let rec loop i = if v land (1 lsl i) <> 0 then i else loop (i + 1) in
  loop 0

let popcount v =
  let rec loop v acc = if v = 0 then acc else loop (v land (v - 1)) (acc + 1) in
  loop v 0

let alloc t ~size =
  match class_of_size size with
  | None -> invalid_arg "Slab.alloc: size exceeds largest class"
  | Some cls ->
    let txn = Txn.create t.area in
    let cap = capacity t.page_size cls in
    (* First pass: an existing slab with a free object. *)
    let rec find_free slot =
      if slot >= t.max_slabs then None
      else if
        Txn.read txn (page_word t cls slot) <> 0 && Txn.read txn (bitmap_word t cls slot) <> 0
      then Some slot
      else find_free (slot + 1)
    in
    (match find_free 0 with
    | Some slot ->
      let bm = Txn.read txn (bitmap_word t cls slot) in
      let obj = lowest_set_bit bm in
      Txn.write txn (bitmap_word t cls slot) (bm land lnot (1 lsl obj));
      Txn.write txn t.live_word (Txn.read txn t.live_word + 1);
      Txn.commit txn ~desc:"slab-alloc";
      Some { cls; slot; obj }
    | None ->
      (* Grow the class: take a buddy page and the first object, in one
         transaction so a crash cannot leak the page. *)
      let rec find_empty slot =
        if slot >= t.max_slabs then None
        else if Txn.read txn (page_word t cls slot) = 0 then Some slot
        else find_empty (slot + 1)
      in
      (match find_empty 0 with
      | None -> None
      | Some slot ->
        (match Buddy.alloc_txn txn t.buddy ~order:0 with
        | None -> None
        | Some page ->
          Txn.write txn (page_word t cls slot) (page + 1);
          Txn.write txn (bitmap_word t cls slot) (full_bitmap cap land lnot 1);
          Txn.write txn t.live_word (Txn.read txn t.live_word + 1);
          Txn.commit txn ~desc:"slab-grow";
          Some { cls; slot; obj = 0 })))

let check_handle t { cls; slot; obj } =
  if cls < 0 || cls >= nclasses then invalid_arg "Slab: bad class";
  if slot < 0 || slot >= t.max_slabs then invalid_arg "Slab: bad slot";
  let cap = capacity t.page_size cls in
  if obj < 0 || obj >= cap then invalid_arg "Slab: bad object index"

let free t handle =
  check_handle t handle;
  let { cls; slot; obj } = handle in
  let txn = Txn.create t.area in
  let pw = Txn.read txn (page_word t cls slot) in
  if pw = 0 then invalid_arg "Slab.free: slab slot not in use";
  let bm = Txn.read txn (bitmap_word t cls slot) in
  if bm land (1 lsl obj) <> 0 then invalid_arg "Slab.free: object already free";
  let bm' = bm lor (1 lsl obj) in
  let cap = capacity t.page_size cls in
  if bm' = full_bitmap cap then begin
    (* Last object gone: release the page to the buddy atomically. *)
    Buddy.free_txn txn t.buddy ~offset:(pw - 1);
    Txn.write txn (page_word t cls slot) 0;
    Txn.write txn (bitmap_word t cls slot) 0
  end
  else Txn.write txn (bitmap_word t cls slot) bm';
  Txn.write txn t.live_word (Txn.read txn t.live_word - 1);
  Txn.commit txn ~desc:"slab-free"

let page_of t handle =
  check_handle t handle;
  let pw = Warea.read t.area (page_word t handle.cls handle.slot) in
  if pw = 0 then invalid_arg "Slab.page_of: dead handle";
  pw - 1

let byte_offset_of t handle =
  check_handle t handle;
  handle.obj * class_sizes.(handle.cls)

let live t = Warea.read t.area t.live_word

let slab_pages t =
  let acc = ref [] in
  for cls = nclasses - 1 downto 0 do
    for slot = t.max_slabs - 1 downto 0 do
      let pw = Warea.read t.area (page_word t cls slot) in
      if pw <> 0 then acc := (pw - 1) :: !acc
    done
  done;
  !acc

let live_in_class t cls =
  if cls < 0 || cls >= nclasses then invalid_arg "Slab.live_in_class";
  let cap = capacity t.page_size cls in
  let acc = ref 0 in
  for slot = 0 to t.max_slabs - 1 do
    if Warea.read t.area (page_word t cls slot) <> 0 then begin
      let bm = Warea.read t.area (bitmap_word t cls slot) in
      acc := !acc + (cap - popcount bm)
    end
  done;
  !acc

let check_invariants t =
  let live_sum = ref 0 in
  for cls = 0 to nclasses - 1 do
    let cap = capacity t.page_size cls in
    for slot = 0 to t.max_slabs - 1 do
      let pw = Warea.read t.area (page_word t cls slot) in
      let bm = Warea.read t.area (bitmap_word t cls slot) in
      if pw = 0 then begin
        if bm <> 0 then failwith "slab: bitmap set on empty slot"
      end
      else begin
        if bm land lnot (full_bitmap cap) <> 0 then failwith "slab: bitmap beyond capacity";
        (if Buddy.order_of t.buddy ~offset:(pw - 1) <> Some 0 then
           failwith "slab: slab page not a live order-0 buddy allocation");
        live_sum := !live_sum + (cap - popcount bm)
      end
    done
  done;
  if live t <> !live_sum then
    failwith (Printf.sprintf "slab: live counter %d <> recomputed %d" (live t) !live_sum)
