(** Persistent word area with redo journaling.

    The checkpoint manager's own state (buddy tree, slab headers) is not
    checkpointed — it lives in this flat array of NVM words and is kept
    crash-consistent with a redo journal (§3 of the paper: "TreeSLS
    leverages redo/undo journaling to maintain the crash consistency of the
    checkpoint manager").

    An update is a {e transaction}: the full list of (index, new-value)
    writes is first logged to the journal area, then applied to the words,
    then the journal record is truncated.  Recovery replays any record that
    was fully logged (idempotent redo) and discards partial logs, so a crash
    at any instant leaves the words in either the pre- or post-transaction
    state.

    Crash injection for tests: {!set_crash_plan} arms a simulated power
    failure at a chosen phase of the next transaction, and
    {!set_crash_schedule} arms one at an absolute {e commit point} (the
    running count of transactions, including empty ones — see
    {!consume_point}), which is what the crash-schedule explorer in
    [lib/crashtest] uses to replay an enumerated crash deterministically.
    The transaction then raises {!Crashed} leaving the area exactly as a
    real power cut would. *)

exception Crashed of string
(** Raised by an armed crash plan. The word area is left in the torn state
    a power failure at that instant would produce. *)

type t

type crash_phase =
  | Before_log  (** power fails before the journal record is durable *)
  | After_log  (** record durable, no data words written yet *)
  | Mid_apply  (** record durable, roughly half the writes applied *)
  | After_apply  (** all writes applied, record not yet truncated *)

val phase_name : crash_phase -> string
(** Stable lower-snake name, e.g. ["mid_apply"] (reproducer strings). *)

val phase_of_string : string -> crash_phase option
(** Inverse of {!phase_name}. *)

val all_phases : crash_phase list
(** The four phases in log order. *)

val create : words:int -> t
val size : t -> int

val read : t -> int -> int
(** Read word [i]. *)

val commit : t -> desc:string -> (int * int) list -> unit
(** [commit t ~desc writes] atomically applies [(index, value)] writes.
    Indices must be distinct — validated before any journal side effect, so
    a rejected commit leaves no torn log and consumes no commit point.
    Raises {!Crashed} if a crash plan or schedule fires. *)

val consume_point : t -> desc:string -> unit
(** Consume one commit point without writing anything: what an {e empty}
    transaction does.  Keeps commit-point numbering deterministic between a
    crash-enumeration run and an injection run.  An armed crash plan (or a
    schedule targeting this point) still fires — raising {!Crashed} with no
    journal side effects, since there is no record to tear.  Does not count
    toward {!commits}. *)

val set_crash_plan : t -> crash_phase option -> unit
(** Arm (or disarm) a crash during the next transaction. *)

val set_crash_schedule : t -> (int * crash_phase) option -> unit
(** [set_crash_schedule t (Some (point, phase))] arms a crash at [phase] of
    the [point]-th commit point (1-based, as reported by
    {!commit_points}).  Self-disarms on firing. *)

val crash_schedule : t -> (int * crash_phase) option
(** The currently armed schedule, if any (e.g. to detect one that never
    fired). *)

val recover : t -> unit
(** Journal replay after a crash: redo a fully-logged record, drop a torn
    one. Idempotent. *)

val replayed_words : t -> int
(** Cumulative words redo-replayed by {!recover} since creation — the
    delta across one [recover] call is what [Store.recover] charges
    simulated replay time for (and what the RTO [journal_replay] phase
    measures). *)

val set_recovery_bug : t -> bool -> unit
(** Testing knob: when on, {!recover} deliberately skips the redo replay —
    re-introducing the classic Mid_apply recovery bug (half-applied words
    survive).  Exists so the crash sweep can demonstrate it catches this
    bug class. *)

val in_flight : t -> bool
(** Whether an un-truncated journal record exists (only after a crash). *)

val commits : t -> int
(** Number of successful non-empty commits since creation (cost
    accounting). *)

val commit_points : t -> int
(** Number of commit points consumed since creation: every transaction,
    empty or not, successful or crashed.  The coordinate system for
    {!set_crash_schedule}. *)

val words_written : t -> int
(** Total data words written by successful commits. *)
