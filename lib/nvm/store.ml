module Cost = Treesls_sim.Cost
module Clock = Treesls_sim.Clock
module Probe = Treesls_obs.Probe

type sink = Clock_sink | Meter of int ref | Off

type t = {
  cost : Cost.t;
  clock : Clock.t;
  nvm : Device.t;
  dram : Device.t;
  ssd : Device.t;
  mutable ssd_free : int list; (* persistent swap-slot allocator (NVM metadata) *)
  warea : Warea.t;
  buddy : Buddy.t;
  slab : Slab.t;
  meta : Global_meta.t;
  mutable dram_free : int list; (* DRAM free list: volatile, rebuilt on recovery *)
  mutable dram_free_count : int;
  mutable sink : sink;
  seals : (Paddr.t, int) Hashtbl.t; (* NVM metadata: backup page checksums *)
  mutable checksums : bool; (* reliability mode (paper section 8), off by default *)
}

let max_slabs_per_class = 512

let create ?(cost = Cost.default) ?(ssd_pages = 4096) ~clock ~nvm_pages ~dram_pages () =
  if not (Treesls_util.Bits.is_power_of_two nvm_pages) then
    invalid_arg "Store.create: nvm_pages must be a power of two";
  let nvm = Device.create ~kind:Paddr.Nvm ~pages:nvm_pages ~page_size:cost.Cost.page_size in
  let dram = Device.create ~kind:Paddr.Dram ~pages:dram_pages ~page_size:cost.Cost.page_size in
  let ssd = Device.create ~kind:Paddr.Ssd ~pages:ssd_pages ~page_size:cost.Cost.page_size in
  let buddy_words = Buddy.words_needed ~total_pages:nvm_pages in
  let slab_words = Slab.words_needed ~max_slabs_per_class in
  let warea = Warea.create ~words:(buddy_words + slab_words) in
  let buddy = Buddy.format warea ~base:0 ~total_pages:nvm_pages in
  let slab =
    Slab.format warea ~base:buddy_words ~buddy ~page_size:cost.Cost.page_size
      ~max_slabs_per_class
  in
  let dram_free = List.init dram_pages (fun i -> i) in
  {
    cost;
    clock;
    nvm;
    dram;
    ssd;
    ssd_free = List.init ssd_pages (fun i -> i);
    warea;
    buddy;
    slab;
    meta = Global_meta.create ();
    dram_free;
    dram_free_count = dram_pages;
    sink = Clock_sink;
    seals = Hashtbl.create 256;
    checksums = false;
  }

let cost t = t.cost
let clock t = t.clock
let meta t = t.meta
let buddy t = t.buddy
let slab t = t.slab
let warea t = t.warea

let charge t ns =
  match t.sink with
  | Clock_sink -> Clock.advance t.clock ns
  | Meter r -> r := !r + ns
  | Off -> ()

let with_sink t sink f =
  let saved = t.sink in
  t.sink <- sink;
  Fun.protect ~finally:(fun () -> t.sink <- saved) f

let alloc_page t =
  charge t (t.cost.Cost.alloc_page_ns + t.cost.Cost.journal_entry_ns);
  Probe.count "nvm.alloc.pages" 1;
  Probe.instant_v "nvm.alloc" ~args:[ ("kind", "page") ];
  match Buddy.alloc t.buddy ~order:0 with
  | Some idx -> Paddr.nvm idx
  | None -> raise Out_of_memory

let free_page t addr =
  if not (Paddr.is_nvm addr) then invalid_arg "Store.free_page: not an NVM page";
  charge t (t.cost.Cost.alloc_page_ns + t.cost.Cost.journal_entry_ns);
  Probe.count "nvm.free.pages" 1;
  Hashtbl.remove t.seals addr;
  Buddy.free t.buddy ~offset:addr.Paddr.idx

let alloc_dram_page t =
  match t.dram_free with
  | [] -> None
  | idx :: rest ->
    charge t t.cost.Cost.alloc_page_ns;
    t.dram_free <- rest;
    t.dram_free_count <- t.dram_free_count - 1;
    Device.zero_page t.dram idx;
    Some (Paddr.dram idx)

let free_dram_page t addr =
  if not (Paddr.is_dram addr) then invalid_arg "Store.free_dram_page: not a DRAM page";
  charge t t.cost.Cost.alloc_page_ns;
  t.dram_free <- addr.Paddr.idx :: t.dram_free;
  t.dram_free_count <- t.dram_free_count + 1

let device t (addr : Paddr.t) =
  match addr.Paddr.dev with
  | Paddr.Nvm -> t.nvm
  | Paddr.Dram -> t.dram
  | Paddr.Ssd -> t.ssd

let page_bytes t addr = Device.page (device t addr) addr.Paddr.idx

let copy_page t ~src ~dst =
  let ns =
    Cost.page_copy_ns t.cost ~src_dram:(Paddr.is_dram src) ~dst_dram:(Paddr.is_dram dst)
  in
  charge t ns;
  (* reconcile charged copy time against physical bytes: the wearmap pairs
     this ns with the page-sized write Device.copy_page records below *)
  if Paddr.is_nvm dst then Probe.wear_copy_charged ~ns;
  Device.copy_page ~src:(device t src) ~src_idx:src.Paddr.idx ~dst:(device t dst)
    ~dst_idx:dst.Paddr.idx

let cachelines len = (len + 63) / 64

let access_ns t addr ~write ~len =
  let lines = cachelines len in
  let per =
    if Paddr.is_dram addr then t.cost.Cost.dram_access_ns
    else if write then t.cost.Cost.nvm_write_ns
    else t.cost.Cost.nvm_read_ns
  in
  lines * per

let read_page t addr ~off ~len =
  charge t (access_ns t addr ~write:false ~len);
  Device.read (device t addr) addr.Paddr.idx ~off ~len

let write_page t addr ~off src =
  charge t (access_ns t addr ~write:true ~len:(Bytes.length src));
  Device.write (device t addr) addr.Paddr.idx ~off src

(* --- SSD swap slots (memory over-commitment, paper section 8) --- *)

let alloc_ssd_page t =
  match t.ssd_free with
  | [] -> None
  | idx :: rest ->
    t.ssd_free <- rest;
    Some (Paddr.ssd idx)

let free_ssd_page t addr =
  if not (Paddr.is_ssd addr) then invalid_arg "Store.free_ssd_page: not an SSD slot";
  Hashtbl.remove t.seals addr;
  t.ssd_free <- addr.Paddr.idx :: t.ssd_free

(* One whole-page SSD transfer: submission latency + streaming. *)
let ssd_page_ns t =
  t.cost.Cost.nvme_flush_base_ns
  + int_of_float (float_of_int t.cost.Cost.page_size *. t.cost.Cost.nvme_byte_ns)

let swap_out t ~src =
  if not (Paddr.is_nvm src) then invalid_arg "Store.swap_out: source must be NVM";
  match alloc_ssd_page t with
  | None -> None
  | Some slot ->
    charge t (ssd_page_ns t);
    Probe.count "nvm.swap.outs" 1;
    Device.copy_page ~src:t.nvm ~src_idx:src.Paddr.idx ~dst:t.ssd ~dst_idx:slot.Paddr.idx;
    free_page t src;
    Some slot

let swap_in t ~slot =
  if not (Paddr.is_ssd slot) then invalid_arg "Store.swap_in: source must be an SSD slot";
  (* swap-in can fire on a read fault, outside any writer context; its
     NVM landing is swap machinery wear either way *)
  Treesls_obs.Wearmap.with_writer "nvm.swap" @@ fun () ->
  let dst = alloc_page t in
  charge t (ssd_page_ns t);
  Probe.count "nvm.swap.ins" 1;
  Device.copy_page ~src:t.ssd ~src_idx:slot.Paddr.idx ~dst:t.nvm ~dst_idx:dst.Paddr.idx;
  free_ssd_page t slot;
  dst

let ssd_slots_free t = List.length t.ssd_free

let alloc_obj t ~size =
  charge t (t.cost.Cost.alloc_small_ns + t.cost.Cost.journal_entry_ns);
  Probe.count "nvm.alloc.objs" 1;
  Probe.instant_v "nvm.alloc" ~args:[ ("kind", "obj"); ("size", string_of_int size) ];
  match Slab.alloc t.slab ~size with
  | Some h -> h
  | None -> raise Out_of_memory

let free_obj t h =
  charge t (t.cost.Cost.alloc_small_ns + t.cost.Cost.journal_entry_ns);
  Probe.count "nvm.free.objs" 1;
  Slab.free t.slab h

let crash t =
  Device.crash t.dram;
  Device.crash t.nvm;
  t.dram_free <- [];
  t.dram_free_count <- 0;
  t.sink <- Clock_sink

let recover t =
  let replayed0 = Warea.replayed_words t.warea in
  Warea.recover t.warea;
  let replayed = Warea.replayed_words t.warea - replayed0 in
  (* redo replay pays real time: read the log record plus the in-place
     word write, so the RTO journal_replay phase scales with the words a
     crash left in flight rather than appearing free *)
  if replayed > 0 then
    charge t (int_of_float (float_of_int replayed *. 2.0 *. t.cost.Cost.word_copy_nvm_ns));
  Global_meta.abort_in_flight t.meta;
  let dram_pages = Device.pages t.dram in
  t.dram_free <- List.init dram_pages (fun i -> i);
  t.dram_free_count <- dram_pages

(* FNV-1a over the page content: cheap and adequate to detect the bit
   corruption this models. *)
let digest bytes =
  let h = ref 0x3bf29ce484222325 in
  Bytes.iter (fun ch -> h := (!h lxor Char.code ch) * 0x100000001b3 land max_int) bytes;
  !h

let set_checksums t on = t.checksums <- on
let checksums_enabled t = t.checksums

let seal_page t addr =
  if t.checksums then begin
    charge t (cachelines t.cost.Cost.page_size * t.cost.Cost.nvm_read_ns / 8);
    Hashtbl.replace t.seals addr (digest (page_bytes t addr))
  end

let verify_page t addr =
  match Hashtbl.find_opt t.seals addr with
  | None -> true
  | Some d -> digest (page_bytes t addr) = d

let unseal_page t addr = Hashtbl.remove t.seals addr
let is_sealed t addr = Hashtbl.mem t.seals addr

let corrupt_page t addr =
  let b = page_bytes t addr in
  if Bytes.length b > 0 then Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF))

let nvm_pages_free t = Buddy.free_pages t.buddy
let nvm_pages_total t = Buddy.total_pages t.buddy
let nvm_pages_touched t = Device.touched t.nvm
let dram_pages_touched t = Device.touched t.dram
let dram_pages_free t = t.dram_free_count
let live_objects t = Slab.live t.slab
let journal_commits t = Warea.commits t.warea
let journal_in_flight t = Warea.in_flight t.warea
let allocator_meta_words t = Warea.size t.warea
let sealed_pages t = Hashtbl.length t.seals
let ssd_slots_total t = Device.pages t.ssd
