exception Crashed of string

type crash_phase = Before_log | After_log | Mid_apply | After_apply

let phase_name = function
  | Before_log -> "before_log"
  | After_log -> "after_log"
  | Mid_apply -> "mid_apply"
  | After_apply -> "after_apply"

let phase_of_string = function
  | "before_log" -> Some Before_log
  | "after_log" -> Some After_log
  | "mid_apply" -> Some Mid_apply
  | "after_apply" -> Some After_apply
  | _ -> None

let all_phases = [ Before_log; After_log; Mid_apply; After_apply ]

(* A logged record survives crashes (it is on NVM). [complete] models the
   record's trailing checksum/commit mark: a record torn mid-write is
   detectable and must be discarded, not replayed. *)
type record = { writes : (int * int) array; complete : bool }

type t = {
  words : int array;
  mutable log : record option;
  mutable crash_plan : crash_phase option;
  mutable schedule : (int * crash_phase) option;
  mutable commits : int;
  mutable points : int;
  mutable words_written : int;
  mutable replayed_words : int;
  mutable recovery_bug : bool;
}

let create ~words =
  assert (words > 0);
  {
    words = Array.make words 0;
    log = None;
    crash_plan = None;
    schedule = None;
    commits = 0;
    points = 0;
    words_written = 0;
    replayed_words = 0;
    recovery_bug = false;
  }

let size t = Array.length t.words
let read t i = t.words.(i)

let check_distinct writes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, _) ->
      if Hashtbl.mem tbl i then invalid_arg "Warea.commit: duplicate index";
      Hashtbl.add tbl i ())
    writes

let apply_all t record = Array.iter (fun (i, v) -> t.words.(i) <- v) record.writes

(* Should an armed crash fire at [phase] of the current commit point?  Both
   arming mechanisms disarm themselves on firing so recovery code can commit
   freely afterwards. *)
let fires t phase =
  (match t.crash_plan with
  | Some p when p = phase ->
    t.crash_plan <- None;
    true
  | _ -> false)
  ||
  match t.schedule with
  | Some (point, p) when point = t.points && p = phase ->
    t.schedule <- None;
    true
  | _ -> false

let commit t ~desc writes =
  (* Validate before any side effect: a rejected commit must leave no torn
     log behind (and must not consume a commit point), otherwise a later
     crash+recover would observe state from a transaction that never
     happened. *)
  check_distinct writes;
  t.points <- t.points + 1;
  let arr = Array.of_list writes in
  if fires t Before_log then begin
    (* The record was being written when power failed: keep a torn
       (incomplete) record so recovery exercises the discard path. *)
    t.log <- Some { writes = arr; complete = false };
    raise (Crashed (desc ^ ": before-log"))
  end;
  t.log <- Some { writes = arr; complete = true };
  if fires t After_log then raise (Crashed (desc ^ ": after-log"));
  if fires t Mid_apply then begin
    let half = Array.length arr / 2 in
    Array.iteri (fun k (i, v) -> if k < half then t.words.(i) <- v) arr;
    raise (Crashed (desc ^ ": mid-apply"))
  end;
  apply_all t { writes = arr; complete = true };
  if fires t After_apply then raise (Crashed (desc ^ ": after-apply"));
  t.log <- None;
  t.commits <- t.commits + 1;
  t.words_written <- t.words_written + Array.length arr;
  Treesls_obs.Probe.count "nvm.txn.commits" 1;
  Treesls_obs.Probe.count "nvm.txn.words" (Array.length arr);
  (* journal write model: each committed word costs an 8-byte log record
     plus its 8-byte in-place apply — 16 physical NVM bytes per word, so
     journal wear reconciles exactly with the nvm.txn.words counter *)
  Treesls_obs.Probe.wear_note ~subsystem:"nvm.journal" ~bytes:(16 * Array.length arr);
  Treesls_obs.Probe.instant_v "nvm.txn"
    ~args:[ ("desc", desc); ("words", string_of_int (Array.length arr)) ]

let consume_point t ~desc =
  (* An empty transaction writes no journal record, so every crash phase
     degenerates to a power cut with no journal side effects — but the
     point must still be consumed so commit-point numbering stays in
     lock-step between an enumeration run and an injection run. *)
  t.points <- t.points + 1;
  match t.crash_plan with
  | Some p ->
    t.crash_plan <- None;
    raise (Crashed (desc ^ ": " ^ phase_name p ^ " (empty)"))
  | None -> (
    match t.schedule with
    | Some (point, p) when point = t.points ->
      t.schedule <- None;
      raise (Crashed (desc ^ ": " ^ phase_name p ^ " (empty)"))
    | _ -> ())

let set_crash_plan t plan = t.crash_plan <- plan
let set_crash_schedule t sched = t.schedule <- sched
let crash_schedule t = t.schedule
let set_recovery_bug t on = t.recovery_bug <- on

let recover t =
  match t.log with
  | None -> ()
  | Some record ->
    (* [recovery_bug] deliberately skips the redo replay (the bug class the
       crash sweep must catch): a Mid_apply crash then leaves half-applied
       words behind instead of completing the transaction. *)
    if record.complete && not t.recovery_bug then begin
      apply_all t record;
      t.replayed_words <- t.replayed_words + Array.length record.writes;
      (* redo replay re-applies each word in place: 8 physical bytes/word,
         attributed separately so normal-run journal wear still reconciles
         with the nvm.txn.words counter *)
      Treesls_obs.Probe.wear_note ~subsystem:"restore.journal"
        ~bytes:(8 * Array.length record.writes)
    end;
    t.log <- None

let in_flight t = t.log <> None
let commits t = t.commits
let commit_points t = t.points
let words_written t = t.words_written
let replayed_words t = t.replayed_words
