exception Crashed of string

type crash_phase = Before_log | After_log | Mid_apply | After_apply

(* A logged record survives crashes (it is on NVM). [complete] models the
   record's trailing checksum/commit mark: a record torn mid-write is
   detectable and must be discarded, not replayed. *)
type record = { writes : (int * int) array; complete : bool }

type t = {
  words : int array;
  mutable log : record option;
  mutable crash_plan : crash_phase option;
  mutable commits : int;
  mutable words_written : int;
}

let create ~words =
  assert (words > 0);
  { words = Array.make words 0; log = None; crash_plan = None; commits = 0; words_written = 0 }

let size t = Array.length t.words
let read t i = t.words.(i)

let check_distinct writes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, _) ->
      if Hashtbl.mem tbl i then invalid_arg "Warea.commit: duplicate index";
      Hashtbl.add tbl i ())
    writes

let apply_all t record = Array.iter (fun (i, v) -> t.words.(i) <- v) record.writes

let commit t ~desc writes =
  check_distinct writes;
  let arr = Array.of_list writes in
  (match t.crash_plan with
  | Some Before_log ->
    t.crash_plan <- None;
    (* The record was being written when power failed: keep a torn
       (incomplete) record so recovery exercises the discard path. *)
    t.log <- Some { writes = arr; complete = false };
    raise (Crashed (desc ^ ": before-log"))
  | _ -> ());
  t.log <- Some { writes = arr; complete = true };
  (match t.crash_plan with
  | Some After_log ->
    t.crash_plan <- None;
    raise (Crashed (desc ^ ": after-log"))
  | _ -> ());
  (match t.crash_plan with
  | Some Mid_apply ->
    t.crash_plan <- None;
    let half = Array.length arr / 2 in
    Array.iteri (fun k (i, v) -> if k < half then t.words.(i) <- v) arr;
    raise (Crashed (desc ^ ": mid-apply"))
  | _ -> ());
  apply_all t { writes = arr; complete = true };
  (match t.crash_plan with
  | Some After_apply ->
    t.crash_plan <- None;
    raise (Crashed (desc ^ ": after-apply"))
  | _ -> ());
  t.log <- None;
  t.commits <- t.commits + 1;
  t.words_written <- t.words_written + Array.length arr;
  Treesls_obs.Probe.count "nvm.txn.commits" 1;
  Treesls_obs.Probe.count "nvm.txn.words" (Array.length arr);
  Treesls_obs.Probe.instant_v "nvm.txn"
    ~args:[ ("desc", desc); ("words", string_of_int (Array.length arr)) ]

let set_crash_plan t plan = t.crash_plan <- plan

let recover t =
  match t.log with
  | None -> ()
  | Some record ->
    if record.complete then apply_all t record;
    t.log <- None

let in_flight t = t.log <> None
let commits t = t.commits
let words_written t = t.words_written
