(** Slab allocators for small fixed-size NVM objects.

    "Slab systems are also used to facilitate the allocation of small
    fixed-sized objects" (§3).  Each size class owns slabs; a slab is one
    buddy page carved into objects tracked by a free bitmap.  Slab headers
    live in the journaled word area; growing a class (taking a page from the
    buddy) and the bitmap update commit as one transaction, so a crash never
    leaks the page.

    A slab page whose objects are all free is returned to the buddy. *)

type t

type handle = { cls : int; slot : int; obj : int }
(** Identifies a live object: size class, slab slot, object index. *)

val class_sizes : int array
(** Object sizes served, ascending. Requests are rounded up. *)

val words_needed : max_slabs_per_class:int -> int

val format :
  Warea.t -> base:int -> buddy:Buddy.t -> page_size:int -> max_slabs_per_class:int -> t

val attach :
  Warea.t -> base:int -> buddy:Buddy.t -> page_size:int -> max_slabs_per_class:int -> t

val class_of_size : int -> int option
(** Index into {!class_sizes} for a request, or [None] if too large (goes
    to the buddy directly). *)

val alloc : t -> size:int -> handle option
(** [None] when the class is out of slots and the buddy is exhausted. *)

val free : t -> handle -> unit
(** Raises [Invalid_argument] if the handle is not live. *)

val page_of : t -> handle -> int
(** NVM page offset holding the object. *)

val byte_offset_of : t -> handle -> int
(** Byte offset of the object within its page. *)

val live : t -> int
(** Number of live objects across all classes. *)

val slab_pages : t -> int list
(** Buddy page offsets currently held as slabs (read-only walk; the state
    auditor counts them against the buddy's live allocations). *)

val live_in_class : t -> int -> int

val check_invariants : t -> unit
(** Verify bitmap/capacity consistency and the live counter. *)
