type t = { area : Warea.t; writes : (int, int) Hashtbl.t; order : int ref; seq : (int * int) Queue.t }

(* [seq] keeps first-write order for deterministic journal records; a
   rewrite of the same index updates the table but keeps its position. *)
let create area = { area; writes = Hashtbl.create 32; order = ref 0; seq = Queue.create () }

let read t i =
  match Hashtbl.find_opt t.writes i with
  | Some v -> v
  | None -> Warea.read t.area i

let write t i v =
  if not (Hashtbl.mem t.writes i) then Queue.add (i, 0) t.seq;
  Hashtbl.replace t.writes i v

let commit t ~desc =
  let writes =
    Queue.fold (fun acc (i, _) -> (i, Hashtbl.find t.writes i) :: acc) [] t.seq
    |> List.rev
  in
  (* An empty write set still consumes a commit point: otherwise a crash
     plan armed for this commit silently never fires and commit-point
     numbering diverges between a crash-enumeration run and an injection
     run (they must count the same transactions). *)
  if writes = [] then Warea.consume_point t.area ~desc
  else Warea.commit t.area ~desc writes;
  Hashtbl.reset t.writes;
  Queue.clear t.seq

let pending t = Hashtbl.length t.writes
