(* Ambient registry like Treesls_obs.Probe: global state keeps the
   checkpoint/restore pipelines free of plumbing, and the explorer resets it
   around every run. *)

type mode = Off | Record | Armed of { site : string; nth : int }

let mode = ref Off
let hits : (string, int) Hashtbl.t = Hashtbl.create 32

let reset () =
  mode := Off;
  Hashtbl.reset hits

let record () =
  reset ();
  mode := Record

let arm ~site ~nth =
  if nth < 1 then invalid_arg "Crash_site.arm: nth must be >= 1";
  Hashtbl.reset hits;
  mode := Armed { site; nth }

let armed () = match !mode with Armed { site; nth } -> Some (site, nth) | Off | Record -> None

let bump name =
  let c = (match Hashtbl.find_opt hits name with Some c -> c | None -> 0) + 1 in
  Hashtbl.replace hits name c;
  c

let hit name =
  match !mode with
  | Off -> ()
  | Record -> ignore (bump name)
  | Armed { site; nth } ->
    if String.equal site name && bump name = nth then begin
      mode := Off;
      raise (Warea.Crashed ("site:" ^ name))
    end

let counts () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) hits []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
