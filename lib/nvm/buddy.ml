type t = {
  area : Warea.t;
  base : int;
  total : int; (* pages; power of two *)
  tree : int; (* word offset of tree[1..2*total) *)
  orders : int; (* word offset of per-page alloc order (+1; 0 = none) *)
  free_count : int; (* word offset of the free page counter *)
}

let words_needed ~total_pages = (2 * total_pages) + total_pages + 1

let layout area ~base ~total_pages =
  if not (Treesls_util.Bits.is_power_of_two total_pages) then
    invalid_arg "Buddy: total_pages must be a power of two";
  {
    area;
    base;
    total = total_pages;
    tree = base;
    orders = base + (2 * total_pages);
    free_count = base + (2 * total_pages) + total_pages;
  }

(* Tree node [i] (1-indexed) covers [node_size i] pages. *)
let node_size t i =
  let depth_size = ref t.total in
  let j = ref i in
  while !j > 1 do
    j := !j / 2;
    depth_size := !depth_size / 2
  done;
  !depth_size

let format area ~base ~total_pages =
  let t = layout area ~base ~total_pages in
  let txn = Txn.create area in
  for i = 1 to (2 * total_pages) - 1 do
    Txn.write txn (t.tree + i) (node_size t i)
  done;
  for p = 0 to total_pages - 1 do
    Txn.write txn (t.orders + p) 0
  done;
  Txn.write txn t.free_count total_pages;
  Txn.commit txn ~desc:"buddy-format";
  t

let attach area ~base ~total_pages = layout area ~base ~total_pages

let total_pages t = t.total
let free_pages t = Warea.read t.area t.free_count

let longest txn t i = Txn.read txn (t.tree + i)

let alloc_txn txn t ~order =
  if order < 0 || 1 lsl order > t.total then invalid_arg "Buddy.alloc: bad order";
  let size = 1 lsl order in
  if longest txn t 1 < size then None
  else begin
    (* Descend to a node of exactly [size] whose subtree has a free run. *)
    let rec descend node nsize =
      if nsize = size then node
      else begin
        let left = 2 * node in
        if longest txn t left >= size then descend left (nsize / 2)
        else descend (left + 1) (nsize / 2)
      end
    in
    let node = descend 1 t.total in
    let offset = (node * size) - t.total in
    Txn.write txn (t.tree + node) 0;
    (* Recompute ancestors with the pending overlay. *)
    let rec up node =
      if node > 1 then begin
        let parent = node / 2 in
        let l = longest txn t (2 * parent) and r = longest txn t ((2 * parent) + 1) in
        Txn.write txn (t.tree + parent) (if l > r then l else r);
        up parent
      end
    in
    up node;
    Txn.write txn (t.orders + offset) (order + 1);
    Txn.write txn t.free_count (Txn.read txn t.free_count - size);
    Some offset
  end

let free_txn txn t ~offset =
  if offset < 0 || offset >= t.total then invalid_arg "Buddy.free: bad offset";
  let tag = Txn.read txn (t.orders + offset) in
  if tag = 0 then invalid_arg "Buddy.free: not a live allocation";
  let order = tag - 1 in
  let size = 1 lsl order in
  let node = (t.total + offset) / size in
  Txn.write txn (t.tree + node) size;
  Txn.write txn (t.orders + offset) 0;
  let rec up node nsize =
    if node > 1 then begin
      let parent = node / 2 in
      let psize = nsize * 2 in
      let l = longest txn t (2 * parent) and r = longest txn t ((2 * parent) + 1) in
      let merged = if l = nsize && r = nsize then psize else if l > r then l else r in
      Txn.write txn (t.tree + parent) merged;
      up parent psize
    end
  in
  up node size;
  Txn.write txn t.free_count (Txn.read txn t.free_count + size)

let alloc t ~order =
  let txn = Txn.create t.area in
  match alloc_txn txn t ~order with
  | None -> None
  | Some offset ->
    Txn.commit txn ~desc:"buddy-alloc";
    Some offset

let free t ~offset =
  let txn = Txn.create t.area in
  free_txn txn t ~offset;
  Txn.commit txn ~desc:"buddy-free"

let order_of t ~offset =
  let tag = Warea.read t.area (t.orders + offset) in
  if tag = 0 then None else Some (tag - 1)

let iter_live t f =
  for p = 0 to t.total - 1 do
    let tag = Warea.read t.area (t.orders + p) in
    if tag > 0 then f ~offset:p ~order:(tag - 1)
  done

let live_pages t =
  let n = ref 0 in
  iter_live t (fun ~offset:_ ~order -> n := !n + (1 lsl order));
  !n

let check_invariants t =
  (* Recompute the expected tree from the allocation-order array. A page is
     free iff it is not covered by any live allocation. *)
  let covered = Array.make t.total false in
  let free_total = ref t.total in
  for p = 0 to t.total - 1 do
    let tag = Warea.read t.area (t.orders + p) in
    if tag > 0 then begin
      let size = 1 lsl (tag - 1) in
      if p mod size <> 0 then failwith "buddy: misaligned allocation record";
      for q = p to p + size - 1 do
        if covered.(q) then failwith "buddy: overlapping allocations";
        covered.(q) <- true
      done;
      free_total := !free_total - size
    end
  done;
  if Warea.read t.area t.free_count <> !free_total then
    failwith
      (Printf.sprintf "buddy: free count %d <> recomputed %d"
         (Warea.read t.area t.free_count) !free_total);
  (* Bottom-up recomputation of [longest]. A node is wholly free only if
     both children are wholly free; otherwise it offers the max child run. *)
  let expect = Array.make (2 * t.total) 0 in
  for p = 0 to t.total - 1 do
    expect.(t.total + p) <- (if covered.(p) then 0 else 1)
  done;
  for node = t.total - 1 downto 1 do
    let size = node_size t node in
    let l = expect.(2 * node) and r = expect.((2 * node) + 1) in
    expect.(node) <- (if l = size / 2 && r = size / 2 then size else if l > r then l else r)
  done;
  for node = 1 to (2 * t.total) - 1 do
    let got = Warea.read t.area (t.tree + node) in
    (* A block allocated at order k zeroes its node but leaves descendants'
       stored values stale by design (they are never consulted while an
       ancestor is allocated); only check nodes not under a live block. *)
    let rec under_alloc i = i >= 1 && (Warea.read t.area (t.tree + i) = 0 || under_alloc (i / 2)) in
    let parent_allocated = node > 1 && under_alloc (node / 2) in
    if (not parent_allocated) && got <> expect.(node) then
      failwith (Printf.sprintf "buddy: node %d longest %d <> expected %d" node got expect.(node))
  done
