(** Read-through write buffer over a {!Warea}.

    Allocator operations compute their word updates against a transaction
    so that several logically-joined operations (e.g. "buddy gives a page to
    a new slab") become a single atomic journal commit. *)

type t

val create : Warea.t -> t
val read : t -> int -> int
(** Pending value if written in this transaction, else the durable word. *)

val write : t -> int -> int -> unit
val commit : t -> desc:string -> unit
(** Journal-commit all pending writes. Raises {!Warea.Crashed} if a crash
    plan is armed; pending writes are then lost or torn per the plan.  An
    empty write set performs no journal commit but still consumes a commit
    point ({!Warea.consume_point}), so armed crash plans fire
    deterministically even on empty transactions. *)

val pending : t -> int
(** Number of distinct words written so far. *)
