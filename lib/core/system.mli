(** TreeSLS: the whole-system persistent microkernel, assembled.

    This is the library's main entry point.  A {!t} is a booted machine:
    simulated NVM + DRAM, the microkernel with its standard user-space
    services, and the checkpoint manager attached.  Applications are
    created through {!Treesls_kernel.Kernel} using {!kernel}, and drive
    checkpoints by calling {!tick} between operations (or {!checkpoint}
    explicitly).

    Power failures are injected with {!crash} and survived with {!recover}:
    after recovery the system is rolled back to the last committed
    checkpoint, and every service registered with {!add_service} has had
    its setup function re-run (re-registering volatile IPC handlers and
    external-synchrony callbacks, the way real driver code re-initialises
    itself at reboot). *)

module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module Restore = Treesls_ckpt.Restore

type t

val boot :
  ?cost:Treesls_sim.Cost.t ->
  ?ncores:int ->
  ?nvm_pages:int ->
  ?dram_pages:int ->
  ?interval_us:int ->
  ?features:Treesls_ckpt.State.features ->
  ?active_cfg:Treesls_ckpt.Active_list.config ->
  ?trace_capacity:int ->
  ?tseries_capacity:int ->
  ?adaptive_cfg:Treesls_ckpt.Interval_ctl.config ->
  unit ->
  t
(** Boot. [interval_us] enables periodic checkpointing (e.g. 1000 for the
    paper's 1 ms / 1000 Hz configuration).  Boot also creates and installs
    this system's observability probe (metrics on, tracing off;
    [trace_capacity] sizes the event ring — see {!enable_tracing};
    [tseries_capacity] sizes the black-box sample ring).  [adaptive_cfg]
    configures the adaptive-interval controller, which acts only while
    [features.adaptive_interval] is set (default off). *)

val kernel : t -> Kernel.t
(** The current runtime kernel ({b re-fetch after every recover}). *)

val manager : t -> Manager.t
val clock : t -> Treesls_sim.Clock.t
val now_ns : t -> int
val store : t -> Treesls_nvm.Store.t

val checkpoint : t -> Report.t
val tick : t -> Report.t option
(** Checkpoint if the periodic deadline has passed.  Steps the async
    drain first (one backlog batch per op boundary), then — with
    [features.adaptive_interval] on — polls the controller's burst
    feedforward (see {!Treesls_ckpt.Interval_ctl.on_pressure}). *)

val drain_tick : t -> unit
(** One asynchronous drain step; no-op when no window is pending. *)

val drain_settle : t -> unit
(** Force the pending drain window (if any) durable now; no-op otherwise.
    Harness code that needs "everything up to here committed" (crashtest
    twins, fingerprinting, final checkpoints) calls this unconditionally —
    it is the identity in eager mode. *)

val drain_backlog : t -> int

val set_interval_us : t -> int option -> unit
val version : t -> int

val advance_us : t -> int -> unit
(** Let simulated time pass (idle work), taking periodic checkpoints. *)

val add_service : t -> name:string -> setup:(t -> unit) -> unit
(** Register a service setup function: runs immediately and again after
    every {!recover} (services' code survives crashes; their volatile
    registrations do not). *)

val crash : t -> unit
(** Power failure at the current instant. *)

val recover : t -> Restore.report
(** Journal replay, whole-system restore, service re-setup. *)

val crash_and_recover : t -> Restore.report

val stats : t -> Kernel.stats
(** Kernel counters (faults, syscalls) of the current kernel. *)

(** {2 Observability}

    Structured tracing and metrics for the whole system
    ({!Treesls_obs}).  The trace ring and metrics registry are treated as
    eternal-PMO state: they survive {!crash}/{!recover}, so a trace
    recorded before a power failure is still exportable afterwards —
    including the ["crash"] marker and the ["restore"] span themselves. *)

val obs : t -> Treesls_obs.Probe.t
val trace : t -> Treesls_obs.Trace.t

(** {2 State audit (slsfsck)}

    Deep invariant checking and NVM accounting over the persisted state
    ({!Treesls_audit}).  Both are pure reads of a quiesced system. *)

val audit : ?wear:Treesls_audit.Audit.wear_thresholds -> t -> Treesls_audit.Audit.report
(** Check the checkpoint invariants (committed-version consistency,
    CP/CPP well-formedness, allocator reconciliation, eternal-PMO
    exclusion...); a healthy system reports zero violations.  [wear]
    additionally enables warning-severity wear-health checks (write
    amplification, wear skew, unattributed NVM writes). *)

val nvm_census : t -> Treesls_audit.Nvm_census.t
(** Price NVM consumption by subsystem. *)

val enable_tracing : ?verbose:bool -> ?eternal_backing:bool -> t -> unit
(** Start recording trace events.  [verbose] additionally records the
    per-operation tier ([nvm.alloc], [nvm.txn], [ipc.call]).
    [eternal_backing] (default true) reserves an eternal PMO sized for the
    ring (64 B/slot) so the buffer's NVM residency — the mechanism that
    makes it crash-surviving — is visible in the capability tree and paid
    for in the cost model at enable time. *)

val disable_tracing : t -> unit

val wearmap : t -> Treesls_obs.Wearmap.t
(** NVM write/wear telemetry collected by this system's probe — always on
    while the probe is installed; counters are monotone across
    crash/restore. *)

val ensure_wear_backing : t -> unit
(** Reserve an eternal PMO sized for the wearmap's per-page counters
    (16 B per NVM page) so the telemetry's NVM residency — what makes the
    counters crash-surviving — is visible in the capability tree, like the
    trace ring's backing.  Idempotent; lazy so that systems which never
    ask for wear residency keep their eternal-PMO layout unchanged. *)

val tseries : t -> Treesls_obs.Tseries.t
(** Crash-surviving metrics time-series (the "black box") sampled by this
    system's probe at every checkpoint commit — always on, monotone
    across crash/restore like the wearmap. *)

val slo : t -> Treesls_obs.Slo.t
(** The SLO watchdog evaluated on every black-box sample. *)

val ensure_tseries_backing : t -> unit
(** Reserve an eternal PMO sized for the tseries ring (one fixed-width
    slot per sample; see {!Treesls_obs.Tseries.slot_bytes}), making the
    black box's NVM residency visible in the capability tree like the
    trace ring's and wearmap's backings.  Idempotent and lazy. *)

val interval_ctl : t -> Treesls_ckpt.Interval_ctl.t
(** The adaptive-interval controller (inspect retune/clamp counters);
    inert unless [features.adaptive_interval] is on. *)

val metrics_snapshot : t -> Treesls_obs.Metrics.snapshot

val export_trace : ?pid:int -> ?tid:int -> t -> string
(** Chrome/Perfetto [trace_event] JSON of the retained events. *)

val export_trace_file : ?pid:int -> ?tid:int -> t -> path:string -> unit

(** {2 Recovery observability (RTO profiler / flight recorder)}

    Per-phase restore-time breakdown and the pre-crash flight capture
    ({!Treesls_obs.Rto}).  {!recover} charges service re-setup to the
    profile's [ring_reattach] phase, then seals the crash-surviving
    [last_recovery] record and emits the [restore.*] metrics family. *)

val rto : t -> Treesls_obs.Rto.t

val last_recovery : t -> Treesls_obs.Rto.record option
(** The sealed record of the most recent successful recovery, if any. *)

val export_flight : t -> string option
(** Perfetto timeline merging the pre-crash trace tail with the recovery
    phase spans (crash instant marked, both tracks named); [None] before
    the first recovery. *)

val export_flight_file : t -> path:string -> bool
(** Write {!export_flight} to [path]; false (no file) before the first
    recovery. *)
