module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module Restore = Treesls_ckpt.Restore
module Clock = Treesls_sim.Clock
module Probe = Treesls_obs.Probe
module Trace = Treesls_obs.Trace
module Metrics = Treesls_obs.Metrics

module Interval_ctl = Treesls_ckpt.Interval_ctl

type t = {
  mgr : Manager.t;
  obs : Probe.t;
  ctl : Interval_ctl.t;
  mutable services : (string * (t -> unit)) list;
}

(* Feedback edge of the adaptive-interval controller: runs from the
   probe's post-sample hook, i.e. inside Checkpoint.run after the
   black-box sample and SLO check; Manager.tick re-reads the interval
   after the run so the retuned value arms the next deadline. *)
let adaptive_on_sample t =
  if (Manager.features t.mgr).Treesls_ckpt.State.adaptive_interval then
    match Manager.interval t.mgr with
    | None -> ()
    | Some interval_ns -> (
      match
        Interval_ctl.on_sample t.ctl (Probe.tseries t.obs) ~interval_ns
          ~drain_backlog:(Manager.drain_backlog t.mgr)
      with
      | Some ns ->
        Manager.set_interval t.mgr (Some ns);
        Probe.gauge "ckpt.interval_ns" ns;
        Probe.count "ckpt.adaptive.retunes" 1
      | None -> ())

let boot ?cost ?ncores ?nvm_pages ?dram_pages ?interval_us ?features ?active_cfg
    ?trace_capacity ?tseries_capacity ?adaptive_cfg () =
  let kernel = Kernel.boot ?cost ?ncores ?nvm_pages ?dram_pages () in
  let mgr = Manager.attach ?active_cfg ?features kernel in
  (match interval_us with Some us -> Manager.set_interval mgr (Some (us * 1000)) | None -> ());
  let obs = Probe.create ?capacity:trace_capacity ?tseries_capacity ~clock:(Kernel.clock kernel) () in
  Probe.install obs;
  let ctl =
    Interval_ctl.create (match adaptive_cfg with Some c -> c | None -> Interval_ctl.default_config)
  in
  let t = { mgr; obs; ctl; services = [] } in
  Probe.set_sample_hook obs (fun () -> adaptive_on_sample t);
  t

let kernel t = Manager.kernel t.mgr
let manager t = t.mgr
let clock t = Kernel.clock (kernel t)
let now_ns t = Clock.now (clock t)
let store t = Kernel.store (kernel t)
let checkpoint t = Manager.checkpoint t.mgr

(* Asynchronous drain: one backlog step per op boundary (the follower
   cores' "between operations" slot), plus a forced settle for callers
   that need the staged version durable now.  Both are no-ops when
   nothing is pending, so harness code calls them unconditionally. *)
let drain_tick t = ignore (Manager.drain_step t.mgr)
let drain_settle t = Manager.drain_settle t.mgr
let drain_backlog t = Manager.drain_backlog t.mgr

let tick t =
  drain_tick t;
  (* burst feedforward: clamp the armed deadline to the interval floor
     when replies pile up on the rings while the interval sits near its
     idle ceiling (at most once per burst — see Interval_ctl) *)
  (if (Manager.features t.mgr).Treesls_ckpt.State.adaptive_interval then
     match Manager.interval t.mgr with
     | Some interval_ns -> (
       match
         Interval_ctl.on_pressure t.ctl
           ~now_ns:(Clock.now (Kernel.clock (Manager.kernel t.mgr)))
           ~pending:(Probe.req_pending_enqueued ()) ~interval_ns
           ~drain_backlog:(Manager.drain_backlog t.mgr)
       with
       | Some ns ->
         Manager.set_interval t.mgr (Some ns);
         Probe.gauge "ckpt.interval_ns" ns;
         Probe.count "ckpt.adaptive.clamps" 1
       | None -> ())
     | None -> ());
  Manager.tick t.mgr

let set_interval_us t us = Manager.set_interval t.mgr (Option.map (fun u -> u * 1000) us)
let version t = Manager.version t.mgr

let advance_us t us =
  let target = now_ns t + (us * 1000) in
  (* While a drain backlog is outstanding, advance in bounded slices and
     step the drain at each: idle wall-clock is exactly when the follower
     cores catch up, and a whole-interval jump would otherwise convert the
     entire backlog into a stop-the-world settle at the next deadline. *)
  let drain_slice_ns = 50_000 in
  let rec loop () =
    if now_ns t < target then begin
      drain_tick t;
      (match Manager.next_deadline t.mgr with
      | Some d when d <= target ->
        if now_ns t < d then
          if drain_backlog t > 0 then
            Clock.advance (clock t) (min drain_slice_ns (d - now_ns t))
          else Clock.advance (clock t) (d - now_ns t);
        if now_ns t >= d then ignore (Manager.tick t.mgr)
      | Some _ | None ->
        if drain_backlog t > 0 then
          Clock.advance (clock t) (min drain_slice_ns (target - now_ns t))
        else Clock.advance (clock t) (target - now_ns t));
      loop ()
    end
  in
  loop ()

let add_service t ~name ~setup =
  t.services <- t.services @ [ (name, setup) ];
  setup t

let crash t = Manager.crash t.mgr

let recover t =
  let report = Manager.recover t.mgr in
  (* service re-setup (extsync ring reattach, net server rebind) is part
     of the outage a client observes, so it is charged to the recovery
     profile before the record is sealed *)
  Probe.rto_phase_begin "ring_reattach";
  List.iter (fun (_, setup) -> setup t) t.services;
  Probe.rto_phase_end ();
  Probe.rto_recovered ();
  report

let crash_and_recover t =
  crash t;
  recover t

let stats t = Kernel.stats (kernel t)

(* --- observability ---------------------------------------------------- *)

let obs t = t.obs
let trace t = Probe.trace t.obs
let metrics_snapshot t = Metrics.snapshot (Probe.metrics t.obs)

(* Reserve an eternal PMO to back the trace ring, mirroring how TreeSLS
   keeps always-persistent state (§5): eternal pages are materialised at
   creation, walked by every checkpoint, and revived verbatim by restore
   instead of rolling back — which is exactly the lifetime the trace
   buffer needs to stay inspectable across a power failure.  The event
   payload itself stays on the OCaml heap (writing each event through the
   kernel would charge simulated time and perturb the measurement being
   traced); the PMO models its NVM footprint at 64 bytes per slot. *)
let ensure_eternal_backing t =
  match Probe.backing_pmo t.obs with
  | Some _ -> ()
  | None ->
    let k = kernel t in
    let bytes = Trace.capacity (Probe.trace t.obs) * 64 in
    let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
    let pages = max 1 ((bytes + psz - 1) / psz) in
    let pmo = Kernel.make_eternal_pmo k ~pages in
    Probe.set_backing_pmo t.obs pmo.Treesls_cap.Kobj.pmo_id;
    Probe.instant "obs.eternal_backing"
      ~args:
        [ ("pmo", string_of_int pmo.Treesls_cap.Kobj.pmo_id); ("pages", string_of_int pages) ]

let enable_tracing ?(verbose = false) ?(eternal_backing = true) t =
  Probe.install t.obs;
  Probe.set_tracing t.obs true;
  Probe.set_verbose t.obs verbose;
  if eternal_backing then ensure_eternal_backing t

(* Like the trace ring's backing, but for the wearmap's per-page counters:
   8 bytes of write count + 8 bytes written per NVM page.  Lazy (not at
   boot) so systems that never ask for wear residency keep the same
   eternal-PMO layout as before — Ring.reattach resolves eternal PMOs by
   creation order. *)
let ensure_wear_backing t =
  match Probe.wear_backing_pmo t.obs with
  | Some _ -> ()
  | None ->
    let k = kernel t in
    let store = Kernel.store k in
    let bytes = Treesls_nvm.Store.nvm_pages_total store * 16 in
    let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
    let pages = max 1 ((bytes + psz - 1) / psz) in
    let pmo = Kernel.make_eternal_pmo k ~pages in
    Probe.set_wear_backing_pmo t.obs pmo.Treesls_cap.Kobj.pmo_id;
    Probe.instant "obs.wear_backing"
      ~args:
        [ ("pmo", string_of_int pmo.Treesls_cap.Kobj.pmo_id); ("pages", string_of_int pages) ]

let wearmap t = Probe.wearmap t.obs

(* Same lazy eternal-backing pattern for the black box: one fixed-width
   slot per tseries sample.  Lazy so existing eternal-PMO creation order
   (trace ring, then wearmap) is undisturbed for Ring.reattach. *)
let ensure_tseries_backing t =
  match Probe.tseries_backing_pmo t.obs with
  | Some _ -> ()
  | None ->
    let k = kernel t in
    let bytes = Treesls_obs.Tseries.backing_bytes (Probe.tseries t.obs) in
    let psz = (Kernel.cost k).Treesls_sim.Cost.page_size in
    let pages = max 1 ((bytes + psz - 1) / psz) in
    let pmo = Kernel.make_eternal_pmo k ~pages in
    Probe.set_tseries_backing_pmo t.obs pmo.Treesls_cap.Kobj.pmo_id;
    Probe.instant "obs.tseries_backing"
      ~args:
        [ ("pmo", string_of_int pmo.Treesls_cap.Kobj.pmo_id); ("pages", string_of_int pages) ]

let tseries t = Probe.tseries t.obs
let slo t = Probe.slo t.obs
let interval_ctl t = t.ctl

(* --- state audit (slsfsck) -------------------------------------------- *)

let audit ?wear t = Treesls_audit.Audit.run ?wear t.mgr
let nvm_census t = Treesls_audit.Nvm_census.collect t.mgr

let disable_tracing t = Probe.set_tracing t.obs false
let export_trace ?pid ?tid t = Trace.to_perfetto_json ?pid ?tid (Probe.trace t.obs)

let export_trace_file ?pid ?tid t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (export_trace ?pid ?tid t))

(* --- recovery observability (RTO profiler / flight recorder) ----------- *)

let rto t = Probe.rto t.obs
let last_recovery t = Treesls_obs.Rto.last (Probe.rto t.obs)

let export_flight t =
  Option.map Treesls_obs.Rto.flight_to_perfetto_json (last_recovery t)

let export_flight_file t ~path =
  match export_flight t with
  | None -> false
  | Some json ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
    true
