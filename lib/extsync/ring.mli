(** Persistent ring buffer with delayed external visibility (Figure 8).

    The buffer and its three cursors — [reader], [writer], and
    [visible_writer] — live in an {e eternal} PMO, so they survive power
    failures and are {e not} rolled back by recovery.  A message appended
    by the driver is not externally visible until the next checkpoint
    commits and the checkpoint callback advances [visible_writer] over it;
    the restore callback discards messages beyond [visible_writer] (their
    senders were rolled back and will re-send).

    Layout: page 0 holds the cursors; subsequent pages hold fixed-size
    slots. All accesses go through kernel memory paths of the owning
    process, so they fault, charge simulated time and persist like any
    other application data. *)

module Kernel = Treesls_kernel.Kernel

type t

val create : Kernel.t -> Kernel.process -> name:string -> slots:int -> slot_size:int -> t
(** Allocate an eternal PMO sized for [slots] messages of at most
    [slot_size-4] bytes each and map it into the process.  [name]
    (1..64 bytes, unique per ring) is persisted in the header page and is
    what {!reattach} claims by; multiple equal-sized rings must use
    distinct names. *)

val reattach : Kernel.t -> Kernel.process -> name:string -> slots:int -> slot_size:int -> t
(** After recovery: locate the eternal PMO whose persisted header name
    equals [name] under the new kernel's root and re-derive cursors from
    its (preserved) content.  [name], [slots] and [slot_size] must match
    {!create}.  Claiming is strictly by name — reattach order does not
    matter, and equal-sized rings can never cross-claim.  Raises
    [Invalid_argument] when no such ring exists. *)

val meta : t -> int
(** One caller-owned word persisted in the ring's header page (eternal:
    survives crashes, never rolled back).  {!create} zeroes it;
    {!reattach} reads it back.  [Net_server] stores its delivered count
    here. *)

val set_meta : t -> int -> unit

val append : ?req:int -> t -> Bytes.t -> bool
(** Enqueue a message (not yet visible); [false] when the ring is full.
    A full ring counts the shed message in {!dropped_count} and the
    [extsync.ring.dropped] metric (and marks request [req], if nonzero,
    as shed) so latency percentiles cannot silently exclude shed load.
    [req] tags the slot with the request id whose reply this is, for
    release attribution at the next checkpoint. *)

val on_checkpoint : t -> unit
(** Checkpoint callback: publish everything appended so far, attributing
    each tagged message's release to the just-committed version (via
    [Probe.req_released]). *)

val on_restore : t -> unit
(** Restore callback: drop unpublished messages ([writer] back to
    [visible_writer]); their tagged requests are marked dropped. *)

val pop_visible : t -> Bytes.t option
(** Consume the next published message. *)

val visible_count : t -> int
(** Published, not yet consumed. *)

val unpublished_count : t -> int
(** Appended after the last checkpoint (invisible; lost on restore). *)

val capacity : t -> int

val dropped_count : t -> int
(** Messages shed because the ring was full (volatile counter: resets on
    reattach, like the rest of the observability state). *)
