module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager
module Clock = Treesls_sim.Clock

type deliver = client:int -> sent_ns:int -> payload:Bytes.t -> unit

type t = { ring : Ring.t; kernel : Kernel.t; deliver : deliver }

let default_slots = 4096
let default_slot_size = 1200
let default_name = "netsrv"

let encode ~client ~sent_ns payload =
  let b = Bytes.create (16 + Bytes.length payload) in
  Bytes.set_int64_le b 0 (Int64.of_int client);
  Bytes.set_int64_le b 8 (Int64.of_int sent_ns);
  Bytes.blit payload 0 b 16 (Bytes.length payload);
  b

let decode b =
  let client = Int64.to_int (Bytes.get_int64_le b 0) in
  let sent_ns = Int64.to_int (Bytes.get_int64_le b 8) in
  let payload = Bytes.sub b 16 (Bytes.length b - 16) in
  (client, sent_ns, payload)

let flush_visible t =
  let rec drain () =
    match Ring.pop_visible t.ring with
    | None -> ()
    | Some msg ->
      let client, sent_ns, payload = decode msg in
      (* The delivered count lives in the ring's persistent meta word, so
         it survives crash/restore: the cursor pop above already made the
         consumption durable, and the count must stay in step with it. *)
      Ring.set_meta t.ring (Ring.meta t.ring + 1);
      t.deliver ~client ~sent_ns ~payload;
      drain ()
  in
  drain ()

let register t mgr =
  Manager.on_checkpoint mgr (fun () ->
      Ring.on_checkpoint t.ring;
      flush_visible t)

let create ?(slots = default_slots) ?(slot_size = default_slot_size)
    ?(name = default_name) kernel mgr ~proc ~deliver =
  let ring = Ring.create kernel proc ~name ~slots ~slot_size in
  let t = { ring; kernel; deliver } in
  register t mgr;
  t

let reattach ?(slots = default_slots) ?(slot_size = default_slot_size)
    ?(name = default_name) kernel mgr ~proc ~deliver =
  let ring = Ring.reattach kernel proc ~name ~slots ~slot_size in
  Ring.on_restore ring;
  let t = { ring; kernel; deliver } in
  register t mgr;
  (* Responses published before the crash but not yet drained are still
     owed to their clients. *)
  flush_visible t;
  t

let send t ~client payload =
  let sent_ns = Clock.now (Kernel.clock t.kernel) in
  (* stamp the ambient request's enqueue time and tag the slot with its id
     so the releasing checkpoint can attribute the visibility latency *)
  let req = Treesls_obs.Probe.req_enqueued () in
  Ring.append ~req t.ring (encode ~client ~sent_ns payload)

let pending t = Ring.unpublished_count t.ring
let delivered t = Ring.meta t.ring
let dropped t = Ring.dropped_count t.ring
