(** Machine-local network service with transparent external synchrony.

    Mirrors the paper's modified network server (§5-§6): applications hand
    it responses to send; the server parks them in a persistent ring and
    only releases them to clients when the next checkpoint commits, so no
    client ever observes state that could be rolled back.  After a crash,
    unpublished responses are discarded — the rolled-back application will
    regenerate them — while published ones are never re-sent twice thanks
    to the non-rolled-back reader cursor. *)

module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager

type t

type deliver = client:int -> sent_ns:int -> payload:Bytes.t -> unit
(** Invoked at checkpoint commit for each newly visible response;
    [sent_ns] is when the application produced it (for latency
    accounting). *)

val create :
  ?slots:int ->
  ?slot_size:int ->
  ?name:string ->
  Kernel.t ->
  Manager.t ->
  proc:Kernel.process ->
  deliver:deliver ->
  t
(** Create the ring (eternal PMO owned by [proc], normally the network
    driver process) and register the checkpoint callback.  [name]
    (default ["netsrv"]) is persisted in the ring header and must be
    unique per server: multi-tenant setups pass e.g. ["netsrv.t3"] so
    {!reattach} can never claim another tenant's ring. *)

val reattach :
  ?slots:int ->
  ?slot_size:int ->
  ?name:string ->
  Kernel.t ->
  Manager.t ->
  proc:Kernel.process ->
  deliver:deliver ->
  t
(** Recovery path: re-find the ring strictly by its persisted [name], run
    the restore callback (discard unpublished responses), re-register the
    checkpoint callback and deliver any published-but-undrained backlog. *)

val send : t -> client:int -> Bytes.t -> bool
(** Queue a response; it becomes visible at the next checkpoint. [false]
    when the ring is full (client should back off).  Stamps the ambient
    request's enqueue time and tags the ring slot with its id, so the
    releasing checkpoint version is recorded per request. *)

val pending : t -> int
(** Responses waiting for the next checkpoint. *)

val delivered : t -> int
(** Total responses released to clients since the ring was created.  The
    count is persisted in the ring's eternal header next to the reader
    cursor, so — like the cursor — it survives crash/restore instead of
    silently resetting to 0 (SLO rules over delivery counts stay
    monotone). *)

val dropped : t -> int
(** Responses shed because the ring was full (see {!Ring.dropped_count}). *)

val flush_visible : t -> unit
(** Deliver any already-visible messages (used after reattach). *)
