(** Machine-local network service with transparent external synchrony.

    Mirrors the paper's modified network server (§5-§6): applications hand
    it responses to send; the server parks them in a persistent ring and
    only releases them to clients when the next checkpoint commits, so no
    client ever observes state that could be rolled back.  After a crash,
    unpublished responses are discarded — the rolled-back application will
    regenerate them — while published ones are never re-sent twice thanks
    to the non-rolled-back reader cursor. *)

module Kernel = Treesls_kernel.Kernel
module Manager = Treesls_ckpt.Manager

type t

type deliver = client:int -> sent_ns:int -> payload:Bytes.t -> unit
(** Invoked at checkpoint commit for each newly visible response;
    [sent_ns] is when the application produced it (for latency
    accounting). *)

val create :
  ?slots:int ->
  ?slot_size:int ->
  Kernel.t ->
  Manager.t ->
  proc:Kernel.process ->
  deliver:deliver ->
  t
(** Create the ring (eternal PMO owned by [proc], normally the network
    driver process) and register the checkpoint callback. *)

val reattach :
  ?slots:int ->
  ?slot_size:int ->
  Kernel.t ->
  Manager.t ->
  proc:Kernel.process ->
  deliver:deliver ->
  t
(** Recovery path: re-find the ring, run the restore callback (discard
    unpublished responses), re-register the checkpoint callback. *)

val send : t -> client:int -> Bytes.t -> bool
(** Queue a response; it becomes visible at the next checkpoint. [false]
    when the ring is full (client should back off).  Stamps the ambient
    request's enqueue time and tags the ring slot with its id, so the
    releasing checkpoint version is recorded per request. *)

val pending : t -> int
(** Responses waiting for the next checkpoint. *)

val delivered : t -> int
(** Total responses released to clients since (re)attachment. *)

val dropped : t -> int
(** Responses shed because the ring was full (see {!Ring.dropped_count}). *)

val flush_visible : t -> unit
(** Deliver any already-visible messages (used after reattach). *)
