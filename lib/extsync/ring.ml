module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Radix = Treesls_cap.Radix
module Cost = Treesls_sim.Cost
module Store = Treesls_nvm.Store
module Global_meta = Treesls_nvm.Global_meta
module Probe = Treesls_obs.Probe

type t = {
  kernel : Kernel.t;
  proc : Kernel.process;
  base : int; (* first vaddr of the mapping *)
  slots : int;
  slot_size : int;
  pmo_id : int;
  (* Volatile sidecar: request id per occupied slot (0 = untracked) and a
     shed-message counter.  Observability state, deliberately NOT in the
     PMO — after a crash the pending requests are dropped via Rtrace
     anyway, so persisting the ids would buy nothing. *)
  slot_req : int array;
  mutable dropped : int;
}



let pages_needed kernel ~slots ~slot_size =
  let psz = (Kernel.cost kernel).Cost.page_size in
  1 + (((slots * slot_size) + psz - 1) / psz)

let int_to_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let read_cursor t off =
  let b = Kernel.read_bytes t.kernel t.proc ~vaddr:(t.base + off) ~len:8 in
  Int64.to_int (Bytes.get_int64_le b 0)

let write_cursor t off v =
  (* the ring lives in an eternal PMO on NVM: cursor writes are extsync
     wear, not app wear *)
  Treesls_obs.Wearmap.with_writer "extsync" @@ fun () ->
  Kernel.write_bytes t.kernel t.proc ~vaddr:(t.base + off) (int_to_bytes v)

let reader t = read_cursor t 0
let writer t = read_cursor t 8
let visible t = read_cursor t 16
let meta t = read_cursor t 24
let set_meta t v = write_cursor t 24 v

(* Header layout (page 0): reader/writer/visible cursors at 0/8/16, the
   caller-owned meta word at 24, then the ring's name (length at 32,
   bytes from 40) — all persistent, so a restore can claim the PMO
   strictly by name instead of by creation order. *)
let name_len_off = 32
let name_bytes_off = 40
let max_name = 64

let psz t = (Kernel.cost t.kernel).Cost.page_size

let slot_vaddr t i =
  t.base + psz t + (i mod t.slots * t.slot_size)

let write_name t name =
  Treesls_obs.Wearmap.with_writer "extsync" @@ fun () ->
  Kernel.write_bytes t.kernel t.proc ~vaddr:(t.base + name_len_off)
    (int_to_bytes (String.length name));
  Kernel.write_bytes t.kernel t.proc ~vaddr:(t.base + name_bytes_off)
    (Bytes.of_string name)

let create kernel proc ~name ~slots ~slot_size =
  assert (slot_size > 4 && slots > 0);
  if String.length name = 0 || String.length name > max_name then
    invalid_arg "Ring.create: name must be 1..64 bytes";
  assert ((Kernel.cost kernel).Cost.page_size >= name_bytes_off + max_name);
  let pages = pages_needed kernel ~slots ~slot_size in
  let pmo = Kernel.make_eternal_pmo kernel ~pages in
  let vpn = Kernel.map_shared kernel proc pmo ~writable:true in
  let t =
    { kernel; proc; base = vpn * (Kernel.cost kernel).Cost.page_size; slots; slot_size;
      pmo_id = pmo.Kobj.pmo_id; slot_req = Array.make slots 0; dropped = 0 }
  in
  write_cursor t 0 0;
  write_cursor t 8 0;
  write_cursor t 16 0;
  set_meta t 0;
  write_name t name;
  t

(* Every eternal PMO under the root, in creation (pmo_id) order. *)
let eternal_pmos kernel =
  let acc = ref [] in
  Kobj.iter_tree ~root:(Kernel.root kernel) (fun obj ->
      match obj with
      | Kobj.Pmo p when p.Kobj.pmo_kind = Kobj.Pmo_eternal -> acc := p :: !acc
      | Kobj.Pmo _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
      | Kobj.Notification _ | Kobj.Irq_notification _ -> ());
  List.sort (fun a b -> Int.compare a.Kobj.pmo_id b.Kobj.pmo_id) !acc

(* Read a candidate's persisted name straight from NVM (page 0 of the
   PMO), without mapping it into any process: non-ring eternal PMOs (or
   ones whose header page was never materialised) simply fail the
   comparison and are skipped. *)
let stored_name kernel (p : Kobj.pmo) =
  match Radix.get p.Kobj.pmo_radix 0 with
  | None -> None
  | Some paddr ->
    let store = Kernel.store kernel in
    let len_b = Store.read_page store paddr ~off:name_len_off ~len:8 in
    let len = Int64.to_int (Bytes.get_int64_le len_b 0) in
    if len <= 0 || len > max_name then None
    else
      Some (Bytes.to_string (Store.read_page store paddr ~off:name_bytes_off ~len))

let reattach kernel proc ~name ~slots ~slot_size =
  (* Claim strictly by the name persisted in the header: two tenants with
     equal-sized rings can reattach in any order (or not at all) without
     cross-claiming each other's queued responses. *)
  let pages = pages_needed kernel ~slots ~slot_size in
  let pmo =
    match
      List.find_opt
        (fun p ->
          p.Kobj.pmo_pages = pages && stored_name kernel p = Some name)
        (eternal_pmos kernel)
    with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf "Ring.reattach: no eternal PMO named %S with %d pages"
           name pages)
  in
  (* The restored VM space usually still maps the ring; reuse that region
     rather than mapping it twice. *)
  let existing =
    List.find_opt
      (fun r -> r.Kobj.vr_pmo.Kobj.pmo_id = pmo.Kobj.pmo_id)
      proc.Kernel.vms.Kobj.vs_regions
  in
  let vpn =
    match existing with
    | Some r -> r.Kobj.vr_vpn
    | None -> Kernel.map_shared kernel proc pmo ~writable:true
  in
  { kernel; proc; base = vpn * (Kernel.cost kernel).Cost.page_size; slots; slot_size;
    pmo_id = pmo.Kobj.pmo_id; slot_req = Array.make slots 0; dropped = 0 }

let append ?(req = 0) t msg =
  let len = Bytes.length msg in
  if len > t.slot_size - 4 then invalid_arg "Ring.append: message too large";
  let w = writer t and r = reader t in
  if w - r >= t.slots then begin
    t.dropped <- t.dropped + 1;
    Probe.count "extsync.ring.dropped" 1;
    if req <> 0 then Probe.req_shed ~id:req;
    false
  end
  else begin
    let va = slot_vaddr t w in
    let hdr = Bytes.create 4 in
    Bytes.set_int32_le hdr 0 (Int32.of_int len);
    Treesls_obs.Wearmap.with_writer "extsync" (fun () ->
        Kernel.write_bytes t.kernel t.proc ~vaddr:va hdr;
        Kernel.write_bytes t.kernel t.proc ~vaddr:(va + 4) msg);
    t.slot_req.(w mod t.slots) <- req;
    write_cursor t 8 (w + 1);
    true
  end

let on_checkpoint t =
  let w = writer t in
  let vis = visible t in
  let newly = w - vis in
  (* This commit's version is what released every message in [vis, w):
     attribute each request's visibility to it. *)
  if newly > 0 then begin
    let version = Global_meta.version (Store.meta (Kernel.store t.kernel)) in
    for i = vis to w - 1 do
      let req = t.slot_req.(i mod t.slots) in
      if req <> 0 then begin
        Probe.req_released ~id:req ~version;
        t.slot_req.(i mod t.slots) <- 0
      end
    done
  end;
  Probe.count "extsync.published" newly;
  if newly > 0 then
    Probe.instant "extsync.flush"
      ~args:[ ("published", string_of_int newly); ("pmo", string_of_int t.pmo_id) ];
  write_cursor t 16 w

let on_restore t =
  (* Messages beyond the visible cursor were never exposed: the rolled-back
     application will re-produce them. *)
  let vis = visible t in
  let w = writer t in
  for i = vis to w - 1 do
    let req = t.slot_req.(i mod t.slots) in
    if req <> 0 then begin
      Probe.req_dropped ~id:req;
      t.slot_req.(i mod t.slots) <- 0
    end
  done;
  write_cursor t 8 vis

let pop_visible t =
  let r = reader t in
  if r >= visible t then None
  else begin
    let va = slot_vaddr t r in
    let hdr = Kernel.read_bytes t.kernel t.proc ~vaddr:va ~len:4 in
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    let msg = Kernel.read_bytes t.kernel t.proc ~vaddr:(va + 4) ~len in
    write_cursor t 0 (r + 1);
    Some msg
  end

let visible_count t = visible t - reader t
let unpublished_count t = writer t - visible t
let capacity t = t.slots
let dropped_count t = t.dropped
