module Kernel = Treesls_kernel.Kernel
module Kobj = Treesls_cap.Kobj
module Cost = Treesls_sim.Cost
module Store = Treesls_nvm.Store
module Global_meta = Treesls_nvm.Global_meta
module Probe = Treesls_obs.Probe

type t = {
  kernel : Kernel.t;
  proc : Kernel.process;
  base : int; (* first vaddr of the mapping *)
  slots : int;
  slot_size : int;
  pmo_id : int;
  (* Volatile sidecar: request id per occupied slot (0 = untracked) and a
     shed-message counter.  Observability state, deliberately NOT in the
     PMO — after a crash the pending requests are dropped via Rtrace
     anyway, so persisting the ids would buy nothing. *)
  slot_req : int array;
  mutable dropped : int;
}



let pages_needed kernel ~slots ~slot_size =
  let psz = (Kernel.cost kernel).Cost.page_size in
  1 + (((slots * slot_size) + psz - 1) / psz)

let int_to_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let read_cursor t off =
  let b = Kernel.read_bytes t.kernel t.proc ~vaddr:(t.base + off) ~len:8 in
  Int64.to_int (Bytes.get_int64_le b 0)

let write_cursor t off v =
  (* the ring lives in an eternal PMO on NVM: cursor writes are extsync
     wear, not app wear *)
  Treesls_obs.Wearmap.with_writer "extsync" @@ fun () ->
  Kernel.write_bytes t.kernel t.proc ~vaddr:(t.base + off) (int_to_bytes v)

let reader t = read_cursor t 0
let writer t = read_cursor t 8
let visible t = read_cursor t 16

let psz t = (Kernel.cost t.kernel).Cost.page_size

let slot_vaddr t i =
  t.base + psz t + (i mod t.slots * t.slot_size)

let create kernel proc ~name:_ ~slots ~slot_size =
  assert (slot_size > 4 && slots > 0);
  let pages = pages_needed kernel ~slots ~slot_size in
  let pmo = Kernel.make_eternal_pmo kernel ~pages in
  let vpn = Kernel.map_shared kernel proc pmo ~writable:true in
  let t =
    { kernel; proc; base = vpn * (Kernel.cost kernel).Cost.page_size; slots; slot_size;
      pmo_id = pmo.Kobj.pmo_id; slot_req = Array.make slots 0; dropped = 0 }
  in
  write_cursor t 0 0;
  write_cursor t 8 0;
  write_cursor t 16 0;
  t

(* Find the nth eternal PMO under the root. Rings are created in a fixed
   order at service setup, so creation order identifies them; a production
   system would use a name registry — creation order is equivalent here. *)
let eternal_pmos kernel =
  let acc = ref [] in
  Kobj.iter_tree ~root:(Kernel.root kernel) (fun obj ->
      match obj with
      | Kobj.Pmo p when p.Kobj.pmo_kind = Kobj.Pmo_eternal -> acc := p :: !acc
      | Kobj.Pmo _ | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Ipc_conn _
      | Kobj.Notification _ | Kobj.Irq_notification _ -> ());
  List.sort (fun a b -> Int.compare a.Kobj.pmo_id b.Kobj.pmo_id) !acc

(* Reattach claims: resolving by page count alone would hand two
   equal-sized rings the same PMO, so the nth reattach asking for a given
   page count takes the nth same-sized eternal PMO in creation (pmo_id)
   order — services re-run in a fixed order after a restore, matching the
   fixed creation order.  Claims are tracked per rebuilt kernel instance,
   keyed by physical identity (Kobj graphs are cyclic, so structural keys
   are unusable); only the most recent kernels are kept so the registry
   stays bounded. *)
let claims : (Kernel.t * (int, int) Hashtbl.t) list ref = ref []

let claim_table kernel =
  match List.find_opt (fun (k, _) -> k == kernel) !claims with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    claims := (kernel, tbl) :: List.filteri (fun i _ -> i < 7) !claims;
    tbl

let reattach kernel proc ~name:_ ~slots ~slot_size =
  let pages = pages_needed kernel ~slots ~slot_size in
  let tbl = claim_table kernel in
  let already = Option.value ~default:0 (Hashtbl.find_opt tbl pages) in
  let same_size = List.filter (fun p -> p.Kobj.pmo_pages = pages) (eternal_pmos kernel) in
  let pmo =
    match List.nth_opt same_size already with
    | Some p -> p
    | None -> invalid_arg "Ring.reattach: eternal PMO not found"
  in
  Hashtbl.replace tbl pages (already + 1);
  (* The restored VM space usually still maps the ring; reuse that region
     rather than mapping it twice. *)
  let existing =
    List.find_opt
      (fun r -> r.Kobj.vr_pmo.Kobj.pmo_id = pmo.Kobj.pmo_id)
      proc.Kernel.vms.Kobj.vs_regions
  in
  let vpn =
    match existing with
    | Some r -> r.Kobj.vr_vpn
    | None -> Kernel.map_shared kernel proc pmo ~writable:true
  in
  { kernel; proc; base = vpn * (Kernel.cost kernel).Cost.page_size; slots; slot_size;
    pmo_id = pmo.Kobj.pmo_id; slot_req = Array.make slots 0; dropped = 0 }

let append ?(req = 0) t msg =
  let len = Bytes.length msg in
  if len > t.slot_size - 4 then invalid_arg "Ring.append: message too large";
  let w = writer t and r = reader t in
  if w - r >= t.slots then begin
    t.dropped <- t.dropped + 1;
    Probe.count "extsync.ring.dropped" 1;
    if req <> 0 then Probe.req_shed ~id:req;
    false
  end
  else begin
    let va = slot_vaddr t w in
    let hdr = Bytes.create 4 in
    Bytes.set_int32_le hdr 0 (Int32.of_int len);
    Treesls_obs.Wearmap.with_writer "extsync" (fun () ->
        Kernel.write_bytes t.kernel t.proc ~vaddr:va hdr;
        Kernel.write_bytes t.kernel t.proc ~vaddr:(va + 4) msg);
    t.slot_req.(w mod t.slots) <- req;
    write_cursor t 8 (w + 1);
    true
  end

let on_checkpoint t =
  let w = writer t in
  let vis = visible t in
  let newly = w - vis in
  (* This commit's version is what released every message in [vis, w):
     attribute each request's visibility to it. *)
  if newly > 0 then begin
    let version = Global_meta.version (Store.meta (Kernel.store t.kernel)) in
    for i = vis to w - 1 do
      let req = t.slot_req.(i mod t.slots) in
      if req <> 0 then begin
        Probe.req_released ~id:req ~version;
        t.slot_req.(i mod t.slots) <- 0
      end
    done
  end;
  Probe.count "extsync.published" newly;
  if newly > 0 then
    Probe.instant "extsync.flush"
      ~args:[ ("published", string_of_int newly); ("pmo", string_of_int t.pmo_id) ];
  write_cursor t 16 w

let on_restore t =
  (* Messages beyond the visible cursor were never exposed: the rolled-back
     application will re-produce them. *)
  let vis = visible t in
  let w = writer t in
  for i = vis to w - 1 do
    let req = t.slot_req.(i mod t.slots) in
    if req <> 0 then begin
      Probe.req_dropped ~id:req;
      t.slot_req.(i mod t.slots) <- 0
    end
  done;
  write_cursor t 8 vis

let pop_visible t =
  let r = reader t in
  if r >= visible t then None
  else begin
    let va = slot_vaddr t r in
    let hdr = Kernel.read_bytes t.kernel t.proc ~vaddr:va ~len:4 in
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    let msg = Kernel.read_bytes t.kernel t.proc ~vaddr:(va + 4) ~len in
    write_cursor t 0 (r + 1);
    Some msg
  end

let visible_count t = visible t - reader t
let unpublished_count t = writer t - visible t
let capacity t = t.slots
let dropped_count t = t.dropped
