module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store
module Kobj = Treesls_cap.Kobj
module Id_gen = Treesls_cap.Id_gen
module Radix = Treesls_cap.Radix
module Cost = Treesls_sim.Cost
module Clock = Treesls_sim.Clock
module Probe = Treesls_obs.Probe

type process = {
  pid : int;
  pname : string;
  cg : Kobj.cap_group;
  vms : Kobj.vmspace;
  mutable threads : Kobj.thread list;
  mutable brk_vpn : int;
}

type stats = {
  mutable page_faults : int;
  mutable cow_faults : int;
  mutable alloc_faults : int;
  mutable syscalls : int;
  mutable ipc_calls : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
}

type t = {
  store : Store.t;
  ids : Id_gen.t;
  ncores : int;
  root : Kobj.cap_group;
  mutable procs : process list;
  pagetables : (int, Pagetable.t) Hashtbl.t;
  rmap : (int * int, (Pagetable.t * int) list ref) Hashtbl.t;
  sched : Sched.t;
  mutable cow_hook : (Kobj.pmo -> int -> unit) option;
  mutable fresh_hook : (Kobj.pmo -> int -> unit) option;
  stats : stats;
  ipc_handlers : (int, Bytes.t -> Bytes.t) Hashtbl.t;
  mutable alive : bool;
  mutable procs_epoch : int;  (** bumped on process create/exit *)
}

let store t = t.store
let clock t = Store.clock t.store
let cost t = Store.cost t.store
let root t = t.root
let ids t = t.ids
let ncores t = t.ncores
let sched t = t.sched
let stats t = t.stats
let ipc_handlers t = t.ipc_handlers
let processes t = t.procs
let procs_epoch t = t.procs_epoch
let find_process t ~name = List.find_opt (fun p -> p.pname = name) t.procs

let pagetable t vms =
  match Hashtbl.find_opt t.pagetables vms.Kobj.vs_id with
  | Some pt -> pt
  | None ->
    let pt = Pagetable.create () in
    Hashtbl.replace t.pagetables vms.Kobj.vs_id pt;
    pt

let rmap_add t pmo pno pt vpn =
  let key = (pmo.Kobj.pmo_id, pno) in
  match Hashtbl.find_opt t.rmap key with
  | Some l -> l := (pt, vpn) :: !l
  | None -> Hashtbl.replace t.rmap key (ref [ (pt, vpn) ])

(* Mappings whose PTE still exists; prunes stale entries lazily. *)
let rmap_live t pmo pno =
  let key = (pmo.Kobj.pmo_id, pno) in
  match Hashtbl.find_opt t.rmap key with
  | None -> []
  | Some l ->
    let live = List.filter (fun (pt, vpn) -> Pagetable.lookup pt ~vpn <> None) !l in
    l := live;
    live

let set_cow_hook t h = t.cow_hook <- h
let set_fresh_hook t h = t.fresh_hook <- h

let install_obj owner obj rights =
  ignore (Kobj.install owner { Kobj.target = obj; rights })

(* --- object creation ------------------------------------------------- *)

let new_pmo t ~pages ~kind =
  Kobj.make_pmo ~id:(Id_gen.next t.ids) ~pages ~kind

let create_notification t proc =
  let n = Kobj.make_notification ~id:(Id_gen.next t.ids) in
  install_obj proc.cg (Kobj.Notification n) Treesls_cap.Rights.full;
  n

let create_irq t proc ~line =
  let irq = Kobj.make_irq_notification ~id:(Id_gen.next t.ids) ~line in
  install_obj proc.cg (Kobj.Irq_notification irq) Treesls_cap.Rights.full;
  irq

let add_region proc pmo ~writable =
  let vpn = proc.brk_vpn in
  let region = { Kobj.vr_vpn = vpn; vr_pages = pmo.Kobj.pmo_pages; vr_pmo = pmo; vr_writable = writable } in
  proc.vms.Kobj.vs_regions <- proc.vms.Kobj.vs_regions @ [ region ];
  Kobj.touch (Kobj.Vmspace proc.vms);
  proc.brk_vpn <- vpn + pmo.Kobj.pmo_pages;
  vpn

let add_thread t proc ~prio =
  let th = Kobj.make_thread ~id:(Id_gen.next t.ids) ~prio in
  install_obj proc.cg (Kobj.Thread th) Treesls_cap.Rights.full;
  (* one stack page per thread, like ChCore *)
  let stack = new_pmo t ~pages:1 ~kind:Kobj.Pmo_normal in
  install_obj proc.cg (Kobj.Pmo stack) Treesls_cap.Rights.rw;
  ignore (add_region proc stack ~writable:true);
  proc.threads <- proc.threads @ [ th ];
  Sched.enqueue t.sched th;
  th

let create_process t ~name ~threads ~prio =
  let cg = Kobj.make_cap_group ~id:(Id_gen.next t.ids) ~name in
  install_obj t.root (Kobj.Cap_group cg) Treesls_cap.Rights.full;
  let vms = Kobj.make_vmspace ~id:(Id_gen.next t.ids) in
  install_obj cg (Kobj.Vmspace vms) Treesls_cap.Rights.full;
  let proc = { pid = cg.Kobj.cg_id; pname = name; cg; vms; threads = []; brk_vpn = 16 } in
  let code = new_pmo t ~pages:1 ~kind:Kobj.Pmo_normal in
  install_obj cg (Kobj.Pmo code) Treesls_cap.Rights.read_only;
  ignore (add_region proc code ~writable:false);
  for _ = 1 to threads do
    ignore (add_thread t proc ~prio)
  done;
  t.procs <- t.procs @ [ proc ];
  t.procs_epoch <- t.procs_epoch + 1;
  proc

let exit_process t proc =
  List.iter
    (fun th ->
      th.Kobj.th_state <- Kobj.Exited;
      Kobj.touch (Kobj.Thread th))
    proc.threads;
  (* revoke the cap from the root group so the subtree becomes unreachable *)
  Kobj.iter_caps
    (fun slot c -> if Kobj.id c.Kobj.target = proc.pid then Kobj.revoke t.root slot)
    t.root;
  t.procs <- List.filter (fun p -> p.pid <> proc.pid) t.procs;
  t.procs_epoch <- t.procs_epoch + 1;
  Hashtbl.remove t.pagetables proc.vms.Kobj.vs_id

let grow_heap t proc ~pages =
  let pmo = new_pmo t ~pages ~kind:Kobj.Pmo_normal in
  install_obj proc.cg (Kobj.Pmo pmo) Treesls_cap.Rights.rw;
  add_region proc pmo ~writable:true

let map_shared _t proc pmo ~writable =
  install_obj proc.cg (Kobj.Pmo pmo)
    (if writable then Treesls_cap.Rights.rw else Treesls_cap.Rights.read_only);
  add_region proc pmo ~writable

let make_eternal_pmo t ~pages =
  let pmo = new_pmo t ~pages ~kind:Kobj.Pmo_eternal in
  (* Eternal PMOs are fully materialised at creation: their radix never
     changes afterwards, which is what makes "do not roll back the pages"
     well-defined across recovery (§5). *)
  for i = 0 to pages - 1 do
    let paddr = Store.alloc_page t.store in
    Radix.set pmo.Kobj.pmo_radix i paddr
  done;
  Kobj.touch (Kobj.Pmo pmo);
  install_obj t.root (Kobj.Pmo pmo) Treesls_cap.Rights.rw;
  pmo

(* --- memory paths ------------------------------------------------------ *)

let region_of proc vpn =
  let rec find = function
    | [] -> None
    | r :: rest ->
      if vpn >= r.Kobj.vr_vpn && vpn < r.Kobj.vr_vpn + r.Kobj.vr_pages then Some r
      else find rest
  in
  find proc.vms.Kobj.vs_regions

let charge t ns = Store.charge t.store ns

let grant t ~from_proc ~to_proc ~slot ~rights =
  match Kobj.lookup from_proc.cg slot with
  | None -> invalid_arg "Kernel.grant: empty source slot"
  | Some cap ->
    if not cap.Kobj.rights.Treesls_cap.Rights.grant then
      invalid_arg "Kernel.grant: source capability lacks the grant right";
    if not (Treesls_cap.Rights.subset rights ~of_:cap.Kobj.rights) then
      invalid_arg "Kernel.grant: rights may only shrink";
    t.stats.syscalls <- t.stats.syscalls + 1;
    charge t (cost t).Cost.syscall_ns;
    Kobj.install to_proc.cg { Kobj.target = cap.Kobj.target; rights }

let raise_irq t irq =
  charge t (cost t).Cost.trap_ns;
  irq.Kobj.irq_pending <- irq.Kobj.irq_pending + 1;
  (* wake one thread blocked on this IRQ line *)
  let woken = ref false in
  List.iter
    (fun p ->
      List.iter
        (fun th ->
          if (not !woken) && th.Kobj.th_state = Kobj.Blocked_notif (-irq.Kobj.irq_id) then begin
            woken := true;
            th.Kobj.th_state <- Kobj.Ready;
            Kobj.touch (Kobj.Thread th);
            Sched.enqueue t.sched th
          end)
        p.threads)
    t.procs;
  if !woken then irq.Kobj.irq_pending <- irq.Kobj.irq_pending - 1;
  Kobj.touch (Kobj.Irq_notification irq)

let wait_irq t irq th =
  t.stats.syscalls <- t.stats.syscalls + 1;
  charge t (cost t).Cost.syscall_ns;
  if irq.Kobj.irq_pending > 0 then begin
    irq.Kobj.irq_pending <- irq.Kobj.irq_pending - 1;
    Kobj.touch (Kobj.Irq_notification irq);
    true
  end
  else begin
    (* blocked-on-IRQ is encoded as a negative notification id so that it
       survives checkpointing through the same thread-state snapshot *)
    th.Kobj.th_state <- Kobj.Blocked_notif (-irq.Kobj.irq_id);
    Kobj.touch (Kobj.Thread th);
    false
  end


(* Major fault on a swapped-out page: bring it back from the SSD and
   repoint the radix and every PTE (memory over-commitment, paper
   section 8). *)
let swap_in_page t pmo ~pno slot =
  charge t (cost t).Cost.trap_ns;
  t.stats.page_faults <- t.stats.page_faults + 1;
  t.stats.swap_ins <- t.stats.swap_ins + 1;
  Probe.count "kernel.faults.major" 1;
  let fresh = Store.swap_in t.store ~slot in
  Radix.set pmo.Kobj.pmo_radix pno fresh;
  List.iter (fun (pt, vpn) -> Pagetable.remap pt ~vpn ~paddr:fresh) (rmap_live t pmo pno);
  fresh

(* Returns the PTE's physical address with the page present and, when
   [for_write], writable — running the fault paths as needed. *)
let ensure_mapped t proc ~vpn ~for_write =
  assert t.alive;
  let pt = pagetable t proc.vms in
  let cow_upgrade region pno =
    (match region.Kobj.vr_pmo.Kobj.pmo_kind with
    | Kobj.Pmo_eternal -> ()
    | Kobj.Pmo_normal -> (
      match t.cow_hook with Some h -> h region.Kobj.vr_pmo pno | None -> ()))
  in
  (* swapped-out pages fault back in before anything else *)
  (match Pagetable.lookup pt ~vpn with
  | Some pte when Paddr.is_ssd pte.Pagetable.paddr -> (
    match region_of proc vpn with
    | Some region ->
      ignore (swap_in_page t region.Kobj.vr_pmo ~pno:(vpn - region.Kobj.vr_vpn) pte.Pagetable.paddr)
    | None -> ())
  | Some _ | None -> ());
  match Pagetable.lookup pt ~vpn with
  | Some pte when (not for_write) || pte.Pagetable.writable -> pte.Pagetable.paddr
  | Some pte ->
    (* write to a read-only mapping: copy-on-write fault *)
    let region =
      match region_of proc vpn with
      | Some r -> r
      | None -> invalid_arg "Kernel: mapping without region"
    in
    if not region.Kobj.vr_writable then invalid_arg "Kernel: write to read-only region";
    charge t (cost t).Cost.trap_ns;
    t.stats.page_faults <- t.stats.page_faults + 1;
    t.stats.cow_faults <- t.stats.cow_faults + 1;
    Probe.count "kernel.faults.cow" 1;
    cow_upgrade region (vpn - region.Kobj.vr_vpn);
    Pagetable.make_writable pt ~vpn;
    (* the PTE just joined the pagetable's dirty list: the next checkpoint
       must run the protect pass over this vmspace, so mark it dirty *)
    Kobj.touch (Kobj.Vmspace proc.vms);
    (* the CoW hook may have migrated the page; reload *)
    (match Pagetable.lookup pt ~vpn with
    | Some p -> p.Pagetable.paddr
    | None -> pte.Pagetable.paddr)
  | None -> (
    let region =
      match region_of proc vpn with
      | Some r -> r
      | None -> invalid_arg (Printf.sprintf "Kernel: fault on unmapped vpn %d" vpn)
    in
    if for_write && not region.Kobj.vr_writable then
      invalid_arg "Kernel: write to read-only region";
    let pno = vpn - region.Kobj.vr_vpn in
    charge t (cost t).Cost.trap_ns;
    t.stats.page_faults <- t.stats.page_faults + 1;
    match Radix.get region.Kobj.vr_pmo.Kobj.pmo_radix pno with
    | Some slot when Paddr.is_ssd slot ->
      let paddr = swap_in_page t region.Kobj.vr_pmo ~pno slot in
      if for_write then begin
        t.stats.cow_faults <- t.stats.cow_faults + 1;
        cow_upgrade region pno
      end;
      let paddr =
        match Radix.get region.Kobj.vr_pmo.Kobj.pmo_radix pno with
        | Some p -> p
        | None -> paddr
      in
      Pagetable.map pt ~vpn ~paddr ~writable:for_write;
      if for_write then Kobj.touch (Kobj.Vmspace proc.vms);
      rmap_add t region.Kobj.vr_pmo pno pt vpn;
      paddr
    | Some paddr ->
      (* present in the PMO, just not in this page table (e.g. after a
         restore rebuilt page tables empty) *)
      if for_write then begin
        t.stats.cow_faults <- t.stats.cow_faults + 1;
        cow_upgrade region pno;
        (* reload: the hook may migrate *)
        let paddr =
          match Radix.get region.Kobj.vr_pmo.Kobj.pmo_radix pno with
          | Some p -> p
          | None -> paddr
        in
        Pagetable.map pt ~vpn ~paddr ~writable:true;
        Kobj.touch (Kobj.Vmspace proc.vms);
        rmap_add t region.Kobj.vr_pmo pno pt vpn;
        paddr
      end
      else begin
        Pagetable.map pt ~vpn ~paddr ~writable:false;
        rmap_add t region.Kobj.vr_pmo pno pt vpn;
        paddr
      end
    | None ->
      (* first touch: allocate the page on NVM *)
      t.stats.alloc_faults <- t.stats.alloc_faults + 1;
      Probe.count "kernel.faults.alloc" 1;
      let paddr = Store.alloc_page t.store in
      Radix.set region.Kobj.vr_pmo.Kobj.pmo_radix pno paddr;
      (* the fresh page needs a CP record at the next walk; the PMO must
         not be skipped before its pending-fresh list is drained *)
      Kobj.touch (Kobj.Pmo region.Kobj.vr_pmo);
      (match t.fresh_hook with Some h -> h region.Kobj.vr_pmo pno | None -> ());
      Pagetable.map pt ~vpn ~paddr ~writable:for_write;
      if for_write then Kobj.touch (Kobj.Vmspace proc.vms);
      rmap_add t region.Kobj.vr_pmo pno pt vpn;
      paddr)

let page_size t = (cost t).Cost.page_size

(* Post-write: set the hardware dirty bit on the PTE. *)
let set_dirty_bit t proc vpn =
  let pt = pagetable t proc.vms in
  match Pagetable.lookup pt ~vpn with
  | Some pte -> pte.Pagetable.dirty <- true
  | None -> ()

(* The generic write syscall claims the "app" wear context, but only as a
   default: when a more specific subsystem (extsync ring, checkpoint) is
   already on the ambient writer stack, its attribution wins. *)
let write_bytes t proc ~vaddr (data : Bytes.t) =
  Treesls_obs.Wearmap.with_default_writer "app" @@ fun () ->
  let psz = page_size t in
  let len = Bytes.length data in
  let rec loop vaddr src_off remaining =
    if remaining > 0 then begin
      let vpn = vaddr / psz and off = vaddr mod psz in
      let chunk = min remaining (psz - off) in
      let paddr = ensure_mapped t proc ~vpn ~for_write:true in
      Store.write_page t.store paddr ~off (Bytes.sub data src_off chunk);
      set_dirty_bit t proc vpn;
      loop (vaddr + chunk) (src_off + chunk) (remaining - chunk)
    end
  in
  loop vaddr 0 len

let read_bytes t proc ~vaddr ~len =
  let psz = page_size t in
  let out = Bytes.create len in
  let rec loop vaddr dst_off remaining =
    if remaining > 0 then begin
      let vpn = vaddr / psz and off = vaddr mod psz in
      let chunk = min remaining (psz - off) in
      let paddr = ensure_mapped t proc ~vpn ~for_write:false in
      let data = Store.read_page t.store paddr ~off ~len:chunk in
      Bytes.blit data 0 out dst_off chunk;
      loop (vaddr + chunk) (dst_off + chunk) (remaining - chunk)
    end
  in
  loop vaddr 0 len;
  out

let cookie = Bytes.make 8 '\x5a'

let touch_write t proc ~vpn =
  Treesls_obs.Wearmap.with_default_writer "app" @@ fun () ->
  let paddr = ensure_mapped t proc ~vpn ~for_write:true in
  Store.write_page t.store paddr ~off:0 cookie;
  set_dirty_bit t proc vpn

let page_paddr t proc ~vpn =
  match region_of proc vpn with
  | None -> None
  | Some _ -> Some (ensure_mapped t proc ~vpn ~for_write:false)

let syscall t ~work_ns =
  t.stats.syscalls <- t.stats.syscalls + 1;
  Probe.count "kernel.syscalls" 1;
  charge t ((cost t).Cost.syscall_ns + work_ns)

(* --- page migration support --------------------------------------------- *)

let remap_page t pmo ~pno paddr =
  Radix.set pmo.Kobj.pmo_radix pno paddr;
  List.iter (fun (pt, vpn) -> Pagetable.remap pt ~vpn ~paddr) (rmap_live t pmo pno)

let page_dirty t pmo ~pno =
  List.exists
    (fun (pt, vpn) ->
      match Pagetable.lookup pt ~vpn with
      | Some pte -> pte.Pagetable.dirty
      | None -> false)
    (rmap_live t pmo pno)

let clear_page_dirty t pmo ~pno =
  List.iter
    (fun (pt, vpn) ->
      match Pagetable.lookup pt ~vpn with
      | Some pte -> pte.Pagetable.dirty <- false
      | None -> ())
    (rmap_live t pmo pno)

let mappings_of_page t pmo ~pno = rmap_live t pmo pno

(* --- cold-page eviction (memory over-commitment, paper section 8) ----- *)

(* A page is evictable if it lives on NVM, is clean, and every mapping is
   already read-only (cold: it has not been written since its last
   checkpoint protection). *)
let evictable t pmo ~pno =
  pmo.Kobj.pmo_kind = Kobj.Pmo_normal
  && (match Radix.get pmo.Kobj.pmo_radix pno with
     | Some p -> Paddr.is_nvm p
     | None -> false)
  && (not (page_dirty t pmo ~pno))
  && List.for_all
       (fun (pt, vpn) ->
         match Pagetable.lookup pt ~vpn with
         | Some pte -> not pte.Pagetable.writable
         | None -> true)
       (rmap_live t pmo pno)

let evict_page t pmo ~pno =
  if not (evictable t pmo ~pno) then false
  else
    match Radix.get pmo.Kobj.pmo_radix pno with
    | Some src -> (
      match Store.swap_out t.store ~src with
      | Some slot ->
        Radix.set pmo.Kobj.pmo_radix pno slot;
        List.iter (fun (pt, vpn) -> Pagetable.remap pt ~vpn ~paddr:slot) (rmap_live t pmo pno);
        t.stats.swap_outs <- t.stats.swap_outs + 1;
        true
      | None -> false)
    | None -> false

let evict_cold t ~limit =
  let evicted = ref 0 in
  (try
     List.iter
       (fun p ->
         List.iter
           (fun r ->
             let pmo = r.Kobj.vr_pmo in
             Radix.iter
               (fun pno _ ->
                 if !evicted < limit then begin
                   if evict_page t pmo ~pno then incr evicted
                 end
                 else raise Exit)
               pmo.Kobj.pmo_radix)
           p.vms.Kobj.vs_regions)
       t.procs
   with Exit -> ());
  !evicted

(* --- quiescence -------------------------------------------------------- *)

let quiesce t =
  let c = cost t in
  let ns = ((t.ncores - 1) * c.Cost.ipi_send_ns) + c.Cost.ipi_ack_ns in
  charge t ns;
  ns

let resume_cores t =
  let c = cost t in
  let ns = (t.ncores - 1) * c.Cost.ipi_send_ns in
  charge t ns;
  ns

(* --- failure ------------------------------------------------------------ *)

let crash t =
  Store.crash t.store;
  Hashtbl.reset t.ipc_handlers;
  Hashtbl.reset t.pagetables;
  Hashtbl.reset t.rmap;
  Sched.clear t.sched;
  t.procs <- [];
  t.alive <- false

let fresh_stats () =
  {
    page_faults = 0;
    cow_faults = 0;
    alloc_faults = 0;
    syscalls = 0;
    ipc_calls = 0;
    swap_ins = 0;
    swap_outs = 0;
  }

let derive_processes root =
  let procs = ref [] in
  Kobj.iter_caps
    (fun _ c ->
      match c.Kobj.target with
      | Kobj.Cap_group cg when cg.Kobj.cg_id <> root.Kobj.cg_id ->
        let vms = ref None and threads = ref [] in
        Kobj.iter_caps
          (fun _ inner ->
            match inner.Kobj.target with
            | Kobj.Vmspace v -> if !vms = None then vms := Some v
            | Kobj.Thread th -> threads := !threads @ [ th ]
            | Kobj.Cap_group _ | Kobj.Pmo _ | Kobj.Ipc_conn _ | Kobj.Notification _
            | Kobj.Irq_notification _ -> ())
          cg;
        (match !vms with
        | None -> () (* not a process-shaped cap group *)
        | Some vms ->
          let brk =
            List.fold_left
              (fun acc r -> max acc (r.Kobj.vr_vpn + r.Kobj.vr_pages))
              16 vms.Kobj.vs_regions
          in
          procs :=
            !procs
            @ [ { pid = cg.Kobj.cg_id; pname = cg.Kobj.cg_name; cg; vms; threads = !threads; brk_vpn = brk } ])
      | Kobj.Cap_group _ | Kobj.Thread _ | Kobj.Vmspace _ | Kobj.Pmo _ | Kobj.Ipc_conn _
      | Kobj.Notification _ | Kobj.Irq_notification _ -> ())
    root;
  !procs

let rebuild ~store ~ncores ~root ~ids_hwm =
  let ids = Id_gen.create () in
  Id_gen.restore ids ids_hwm;
  let t =
    {
      store;
      ids;
      ncores;
      root;
      procs = [];
      pagetables = Hashtbl.create 16;
      rmap = Hashtbl.create 256;
      sched = Sched.create ();
      cow_hook = None;
      fresh_hook = None;
      stats = fresh_stats ();
      ipc_handlers = Hashtbl.create 16;
      alive = true;
      procs_epoch = 0;
    }
  in
  t.procs <- derive_processes root;
  (* Threads checkpointed as Running were on-CPU at checkpoint time; they
     resume as ready. *)
  List.iter
    (fun p ->
      List.iter
        (fun th ->
          match th.Kobj.th_state with
          | Kobj.Running _ -> th.Kobj.th_state <- Kobj.Ready
          | Kobj.Ready | Kobj.Blocked_notif _ | Kobj.Blocked_ipc _ | Kobj.Exited -> ())
        p.threads)
    t.procs;
  Sched.rebuild t.sched ~root;
  t

(* --- boot ---------------------------------------------------------------- *)

(* Services and their object populations are sized to reproduce the
   paper's Table 2 "Default" row: 6 cap groups, 27 threads, 9 IPC
   connections, 7 notifications, 71 PMOs, 6 VM spaces. *)
let service_spec =
  [
    (* name, threads, extra heap/buffer PMOs, notifications, IPC conns *)
    ("procmgr", 5, 3, 2, 2);
    ("fsmgr", 8, 4, 2, 2);
    ("netdrv", 6, 3, 1, 2);
    ("tmpfs", 4, 2, 1, 2);
    ("shell", 4, 2, 1, 1);
  ]

let boot ?(cost = Cost.default) ?(ncores = 8) ?(nvm_pages = 1 lsl 16) ?(dram_pages = 4096) () =
  let clock = Clock.create () in
  let store = Store.create ~cost ~clock ~nvm_pages ~dram_pages () in
  let ids = Id_gen.create () in
  let root = Kobj.make_cap_group ~id:(Id_gen.next ids) ~name:"root" in
  let t =
    {
      store;
      ids;
      ncores;
      root;
      procs = [];
      pagetables = Hashtbl.create 16;
      rmap = Hashtbl.create 256;
      sched = Sched.create ();
      cow_hook = None;
      fresh_hook = None;
      stats = fresh_stats ();
      ipc_handlers = Hashtbl.create 16;
      alive = true;
      procs_epoch = 0;
    }
  in
  (* kernel VM space + kernel buffer PMOs, reachable as special nodes *)
  let kvms = Kobj.make_vmspace ~id:(Id_gen.next ids) in
  install_obj root (Kobj.Vmspace kvms) Treesls_cap.Rights.full;
  for i = 0 to 15 do
    let buf = new_pmo t ~pages:1 ~kind:Kobj.Pmo_normal in
    install_obj root (Kobj.Pmo buf) Treesls_cap.Rights.rw;
    kvms.Kobj.vs_regions <-
      kvms.Kobj.vs_regions
      @ [ { Kobj.vr_vpn = 1024 + i; vr_pages = 1; vr_pmo = buf; vr_writable = true } ]
  done;
  Kobj.touch (Kobj.Vmspace kvms);
  List.iter
    (fun (name, threads, extra_pmos, notifs, conns) ->
      let proc = create_process t ~name ~threads ~prio:10 in
      for _ = 1 to extra_pmos do
        ignore (grow_heap t proc ~pages:1)
      done;
      for _ = 1 to notifs do
        ignore (create_notification t proc)
      done;
      for _ = 1 to conns do
        let conn = Kobj.make_ipc_conn ~id:(Id_gen.next ids) in
        conn.Kobj.ic_server <- (match proc.threads with th :: _ -> Some th | [] -> None);
        let shared = new_pmo t ~pages:1 ~kind:Kobj.Pmo_normal in
        conn.Kobj.ic_shared <- Some shared;
        install_obj proc.cg (Kobj.Ipc_conn conn) Treesls_cap.Rights.full
      done)
    service_spec;
  t
