module Kobj = Treesls_cap.Kobj
module Cost = Treesls_sim.Cost

type handler = Bytes.t -> Bytes.t

let create_conn k ~client ~server =
  let conn = Kobj.make_ipc_conn ~id:(Treesls_cap.Id_gen.next (Kernel.ids k)) in
  conn.Kobj.ic_server <- (match server.Kernel.threads with th :: _ -> Some th | [] -> None);
  let shared =
    Kobj.make_pmo
      ~id:(Treesls_cap.Id_gen.next (Kernel.ids k))
      ~pages:1 ~kind:Kobj.Pmo_normal
  in
  conn.Kobj.ic_shared <- Some shared;
  ignore
    (Kobj.install client.Kernel.cg
       { Kobj.target = Kobj.Ipc_conn conn; rights = Treesls_cap.Rights.full });
  ignore
    (Kobj.install server.Kernel.cg
       { Kobj.target = Kobj.Ipc_conn conn; rights = Treesls_cap.Rights.full });
  conn

let register_handler k conn h = Hashtbl.replace (Kernel.ipc_handlers k) conn.Kobj.ic_id h
let has_handler k conn = Hashtbl.mem (Kernel.ipc_handlers k) conn.Kobj.ic_id

let call k conn payload =
  match Hashtbl.find_opt (Kernel.ipc_handlers k) conn.Kobj.ic_id with
  | None -> invalid_arg "Ipc.call: no handler registered (service not recovered?)"
  | Some h ->
    (* two crossings: call into the server, return to the client *)
    let c = Kernel.cost k in
    let req = Treesls_obs.Probe.req_current () in
    let tok =
      Treesls_obs.Probe.enter_v "ipc.call"
        ~args:
          (("conn", string_of_int conn.Kobj.ic_id)
          :: (if req <> 0 then [ ("req", string_of_int req) ] else []))
    in
    Kernel.syscall k ~work_ns:c.Cost.syscall_ns;
    (Kernel.stats k).Kernel.ipc_calls <- (Kernel.stats k).Kernel.ipc_calls + 1;
    Treesls_obs.Probe.count "ipc.calls" 1;
    Treesls_obs.Probe.req_ipc ();
    conn.Kobj.ic_calls <- conn.Kobj.ic_calls + 1;
    Kobj.touch (Kobj.Ipc_conn conn);
    let reply = h payload in
    Treesls_obs.Probe.req_handled ();
    Treesls_obs.Probe.exit tok;
    reply

let notify k n =
  Kernel.syscall k ~work_ns:0;
  (match n.Kobj.nt_waiters with
  | [] -> n.Kobj.nt_count <- n.Kobj.nt_count + 1
  | tid :: rest ->
    n.Kobj.nt_waiters <- rest;
    (* wake the blocked thread *)
    List.iter
      (fun p ->
        List.iter
          (fun th ->
            if th.Kobj.th_id = tid then begin
              th.Kobj.th_state <- Kobj.Ready;
              Kobj.touch (Kobj.Thread th);
              Sched.enqueue (Kernel.sched k) th
            end)
          p.Kernel.threads)
      (Kernel.processes k));
  Kobj.touch (Kobj.Notification n)

let wait k n th =
  Kernel.syscall k ~work_ns:0;
  if n.Kobj.nt_count > 0 then begin
    n.Kobj.nt_count <- n.Kobj.nt_count - 1;
    Kobj.touch (Kobj.Notification n);
    true
  end
  else begin
    th.Kobj.th_state <- Kobj.Blocked_notif n.Kobj.nt_id;
    Kobj.touch (Kobj.Thread th);
    n.Kobj.nt_waiters <- n.Kobj.nt_waiters @ [ th.Kobj.th_id ];
    Kobj.touch (Kobj.Notification n);
    false
  end

let clear_handlers k = Hashtbl.reset (Kernel.ipc_handlers k)
