type pte = { mutable paddr : Treesls_nvm.Paddr.t; mutable writable : bool; mutable dirty : bool }

type t = { entries : (int, pte) Hashtbl.t; mutable dirty : int list; mutable dirty_n : int }

let create () = { entries = Hashtbl.create 64; dirty = []; dirty_n = 0 }

let mark_dirty t vpn =
  t.dirty <- vpn :: t.dirty;
  t.dirty_n <- t.dirty_n + 1

let map t ~vpn ~paddr ~writable =
  (match Hashtbl.find_opt t.entries vpn with
  | Some _ -> invalid_arg "Pagetable.map: already mapped"
  | None -> ());
  Hashtbl.replace t.entries vpn { paddr; writable; dirty = false };
  if writable then mark_dirty t vpn

let unmap t ~vpn = Hashtbl.remove t.entries vpn

let lookup t ~vpn = Hashtbl.find_opt t.entries vpn

let protect t ~vpn =
  match Hashtbl.find_opt t.entries vpn with
  | None -> ()
  | Some pte -> pte.writable <- false

(* Drop CoW protection without entering the dirty-tracking list: the drain
   uses this to reopen pages whose copy is already banked, where
   [make_writable] would wrongly nominate them for the next protect pass. *)
let unprotect t ~vpn =
  match Hashtbl.find_opt t.entries vpn with
  | None -> ()
  | Some pte -> pte.writable <- true

let make_writable t ~vpn =
  match Hashtbl.find_opt t.entries vpn with
  | None -> invalid_arg "Pagetable.make_writable: unmapped"
  | Some pte ->
    if not pte.writable then begin
      pte.writable <- true;
      mark_dirty t vpn
    end

let remap t ~vpn ~paddr =
  match Hashtbl.find_opt t.entries vpn with
  | None -> invalid_arg "Pagetable.remap: unmapped"
  | Some pte -> pte.paddr <- paddr

let dirty_pages t =
  List.filter_map
    (fun vpn ->
      match Hashtbl.find_opt t.entries vpn with
      | Some pte when pte.writable -> Some (vpn, pte)
      | Some _ | None -> None)
    t.dirty

let dirty_count t = t.dirty_n

let protect_dirty t f =
  let n = ref 0 in
  List.iter
    (fun vpn ->
      match Hashtbl.find_opt t.entries vpn with
      | Some pte when pte.writable ->
        if f vpn pte then begin
          pte.writable <- false;
          incr n
        end
      | Some _ | None -> ())
    t.dirty;
  t.dirty <- [];
  t.dirty_n <- 0;
  !n

let mapped_count t = Hashtbl.length t.entries
let iter f t = Hashtbl.iter f t.entries
