(** The TreeSLS microkernel model.

    Owns the capability tree, processes, page tables (DRAM), the scheduler
    and the fault paths.  Applications execute as OCaml code but every
    memory access goes through {!read_bytes}/{!write_bytes}, which walk the
    page table, take faults, charge simulated time and mutate real page
    contents — so the checkpoint/restore machinery above this module
    operates on genuine state.

    The checkpoint manager (a separate library) installs hooks:
    {!set_cow_hook} is invoked on every read-only-to-writable upgrade
    (copy-on-write backup, step 6 of Figure 5) and {!set_fresh_hook} on
    every page freshly added to a PMO. *)

module Paddr = Treesls_nvm.Paddr
module Store = Treesls_nvm.Store
module Kobj = Treesls_cap.Kobj

type process = {
  pid : int;  (** equals the cap group object id *)
  pname : string;
  cg : Kobj.cap_group;
  vms : Kobj.vmspace;
  mutable threads : Kobj.thread list;
  mutable brk_vpn : int;  (** next unused virtual page number *)
}

type stats = {
  mutable page_faults : int;  (** all faults *)
  mutable cow_faults : int;  (** faults that ran the CoW backup hook *)
  mutable alloc_faults : int;  (** faults that allocated a fresh page *)
  mutable syscalls : int;
  mutable ipc_calls : int;
  mutable swap_ins : int;  (** major faults served from the SSD *)
  mutable swap_outs : int;  (** cold pages evicted to the SSD *)
}

type t

val boot :
  ?cost:Treesls_sim.Cost.t ->
  ?ncores:int ->
  ?nvm_pages:int ->
  ?dram_pages:int ->
  unit ->
  t
(** Boot a system with the standard user-space services (process manager,
    file system, network driver, tmpfs, shell), reproducing the object
    census of the paper's Default workload (Table 2 row A). *)

val store : t -> Store.t
val clock : t -> Treesls_sim.Clock.t
val cost : t -> Treesls_sim.Cost.t
val root : t -> Kobj.cap_group
val ids : t -> Treesls_cap.Id_gen.t
val ncores : t -> int
val sched : t -> Sched.t
val stats : t -> stats
val processes : t -> process list

val procs_epoch : t -> int
(** Bumped on every process create/exit; consumers caching anything derived
    from the process list (e.g. the checkpoint owner-attribution map) compare
    epochs instead of re-walking. *)

val find_process : t -> name:string -> process option

val pagetable : t -> Kobj.vmspace -> Pagetable.t
(** The (DRAM) page table of a VM space, created empty on first use. *)

(** {2 Hooks installed by the checkpoint manager} *)

val set_cow_hook : t -> (Kobj.pmo -> int -> unit) option -> unit
(** Called with (pmo, page index) just before a page becomes writable. *)

val set_fresh_hook : t -> (Kobj.pmo -> int -> unit) option -> unit
(** Called after a fresh page is allocated into a PMO. *)

(** {2 Process and object lifecycle} *)

val create_process : t -> name:string -> threads:int -> prio:int -> process
(** New process: cap group under the root, a VM space, a 1-page code PMO,
    per-thread 1-page stack PMOs, [threads] ready threads. *)

val exit_process : t -> process -> unit
(** Marks threads exited and revokes the process's cap from the root. *)

val add_thread : t -> process -> prio:int -> Kobj.thread

val grant : t -> from_proc:process -> to_proc:process -> slot:int -> rights:Treesls_cap.Rights.t -> int
(** Capability derivation: copy the capability in [from_proc]'s [slot]
    into [to_proc] with attenuated [rights]. The source capability must
    carry the grant right and [rights] must be a subset of the source's.
    Returns the destination slot. Raises [Invalid_argument] otherwise. *)

val raise_irq : t -> Kobj.irq_notification -> unit
(** Hardware interrupt arrival: bump the pending count and wake a thread
    blocked on the IRQ notification, if any. *)

val wait_irq : t -> Kobj.irq_notification -> Kobj.thread -> bool
(** Driver thread waits for an interrupt: consumes one pending interrupt
    ([true]) or blocks ([false]). *)

val create_notification : t -> process -> Kobj.notification
val create_irq : t -> process -> line:int -> Kobj.irq_notification

val grow_heap : t -> process -> pages:int -> int
(** Append a fresh PMO-backed region of [pages]; returns its first vpn.
    Pages materialise lazily on first touch. *)

val map_shared : t -> process -> Kobj.pmo -> writable:bool -> int
(** Map an existing PMO (e.g. an eternal PMO or an IPC buffer) into the
    process; returns the first vpn. *)

val make_eternal_pmo : t -> pages:int -> Kobj.pmo
(** An eternal PMO (not rolled back on restore), owned by the root. *)

(** {2 Memory access (syscall-free fast path of user code)} *)

val write_bytes : t -> process -> vaddr:int -> Bytes.t -> unit
(** Copy bytes into the process's memory, faulting pages as needed and
    charging access costs. Raises [Invalid_argument] on unmapped regions or
    read-only regions. *)

val read_bytes : t -> process -> vaddr:int -> len:int -> Bytes.t

val touch_write : t -> process -> vpn:int -> unit
(** Dirty a whole page cheaply (writes an 8-byte cookie): the common idiom
    of workload generators that model page-granular dirtying. *)

val page_paddr : t -> process -> vpn:int -> Paddr.t option
(** Physical page currently mapped at [vpn] (faults it in read-only if the
    region exists but the page was never touched). *)

val syscall : t -> work_ns:int -> unit
(** Charge a syscall crossing plus [work_ns] of kernel work. *)

(** {2 Memory over-commitment (paper section 8)} *)

val evict_page : t -> Kobj.pmo -> pno:int -> bool
(** Swap one cold page out to the SSD: NVM-resident, clean, and read-only
    in every mapping. Returns whether it was evicted. *)

val evict_cold : t -> limit:int -> int
(** Sweep all processes and evict up to [limit] cold pages; returns how
    many were evicted. Intended to run under NVM pressure. *)

(** {2 Page migration support (hybrid copy)} *)

val remap_page : t -> Kobj.pmo -> pno:int -> Paddr.t -> unit
(** Point the PMO radix entry and every PTE mapping (pmo, pno) at a new
    physical page (NVM/DRAM migration; the data copy is the caller's). *)

val page_dirty : t -> Kobj.pmo -> pno:int -> bool
(** Whether any PTE mapping the page has its dirty bit set. *)

val clear_page_dirty : t -> Kobj.pmo -> pno:int -> unit
(** Clear the dirty bit in every PTE mapping the page (checkpoint time). *)

val mappings_of_page : t -> Kobj.pmo -> pno:int -> (Pagetable.t * int) list
(** Live (page table, vpn) pairs currently mapping the page. *)

val ipc_handlers : t -> (int, Bytes.t -> Bytes.t) Hashtbl.t
(** Volatile registry of IPC handler closures, keyed by connection object
    id. Lost on {!crash}; services re-register in their restore callbacks
    (used by {!Ipc}). *)

(** {2 Quiescence (checkpoint step 1/5 of Figure 5)} *)

val quiesce : t -> int
(** Leader IPIs all other cores and waits for acks; returns the charged
    pause contribution in ns. *)

val resume_cores : t -> int
(** Release cores after the checkpoint; returns charged ns. *)

(** {2 Failure} *)

val crash : t -> unit
(** Power failure: DRAM (page tables, cached pages) is lost, the runtime
    capability tree is declared inconsistent and dropped. The store
    survives. After this only {!store} and recovery entry points may be
    used. *)

val rebuild : store:Store.t -> ncores:int -> root:Kobj.cap_group -> ids_hwm:int -> t
(** Recovery: adopt a revived capability tree as the new runtime tree,
    re-derive processes from cap groups, rebuild the scheduler, start with
    empty page tables. *)
