(** Per-VM-space page tables.

    Page tables live in DRAM and are {e not} checkpointed: "TreeSLS
    duplicates the list of virtual memory regions to the backup tree, and
    ignores the page table structure as the page tables can be rebuilt
    after recovery" (§4.1).  After a restore each process starts with an
    empty page table and faults mappings back in from its VM regions.

    The writable bit doubles as the dirty-tracking mechanism for
    checkpointing: a PTE made writable since the last checkpoint is exactly
    a page modified since the last checkpoint.  The dirty list makes the
    checkpoint-time "mark newly-changed pages read-only" pass proportional
    to the number of dirty pages, not mapped pages. *)

type pte = {
  mutable paddr : Treesls_nvm.Paddr.t;
  mutable writable : bool;
  mutable dirty : bool;  (** hardware-style dirty bit: set on write access *)
}

type t

val create : unit -> t

val map : t -> vpn:int -> paddr:Treesls_nvm.Paddr.t -> writable:bool -> unit
(** Installs a mapping. A writable mapping is recorded as dirty. *)

val unmap : t -> vpn:int -> unit
val lookup : t -> vpn:int -> pte option

val protect : t -> vpn:int -> unit
(** Force a mapping read-only immediately (page demoted from the DRAM
    cache must resume copy-on-write tracking). No-op if unmapped. *)

val make_writable : t -> vpn:int -> unit
(** Fault path: upgrade to writable and record the page dirty.
    Raises [Invalid_argument] if unmapped. *)

val unprotect : t -> vpn:int -> unit
(** Drop CoW protection {e without} recording the page dirty: used by the
    asynchronous drain to reopen pages whose copy is already banked —
    {!make_writable} would wrongly nominate them for the next checkpoint's
    protect pass. No-op if unmapped. *)

val remap : t -> vpn:int -> paddr:Treesls_nvm.Paddr.t -> unit
(** Replace the physical page of an existing mapping (page migration),
    preserving the writable and dirty bits. *)

val dirty_pages : t -> (int * pte) list
(** Mappings made writable since the last {!protect_dirty}. *)

val dirty_count : t -> int

val protect_dirty : t -> (int -> pte -> bool) -> int
(** Checkpoint pass over pages dirtied since the last call: the callback
    decides per page whether to mark it read-only ([true]) or leave it
    writable ([false], used for DRAM-cached hot pages that are covered by
    stop-and-copy instead). Either way the page leaves the dirty list.
    Returns how many were protected. *)

val mapped_count : t -> int
val iter : (int -> pte -> unit) -> t -> unit
