(** One serving tenant: an isolated capability subtree holding a shard
    server process, its client process, a PMO-resident KV store and a
    private extsync {!Treesls_extsync.Net_server} ring, driven by a
    YCSB-style op stream.

    Tenant [i] is named ["t<i>"]; its processes are ["kvshard.t<i>"] /
    ["kvshard-cli.t<i>"] (which is how [Report.per_group] attributes its
    checkpoint cost), its ring is ["netsrv.t<i>"] (claimed strictly by
    that name on reattach), and its requests' rtrace origins are
    ["t<i>/kv.<op>"]. *)

module System = Treesls.System
module Net_server = Treesls_extsync.Net_server
module Kv_app = Treesls_apps.Kv_app
module Ycsb = Treesls_workloads.Ycsb

type cfg = {
  keys : int;  (** keys preloaded (and initial Zipfian domain) *)
  value_size : int;
  mix : Ycsb.workload;  (** per-tenant op mix *)
  ring_slots : int;
  ring_slot_size : int;
}

val default_cfg : cfg
(** 1k keys of 64B, 50/45/5 read/update/insert, a 256-slot reply ring. *)

type t

val create : System.t -> idx:int -> seed:int64 -> cfg -> t
(** Launch the shard (preloading [cfg.keys] keys) and its named ring.
    [seed] drives this tenant's private op stream. *)

val step : t -> unit
(** One YCSB op end to end: draw from the stream, run it through the real
    client→IPC→store path, park the reply on the tenant's ring. *)

val refresh : t -> unit
(** Post-recovery: re-find the processes/store and reattach the ring by
    name.  Tenants can refresh in any order. *)

val name : t -> string
val index : t -> int
val ring_name : t -> string

val origin_prefix : t -> string
(** ["t<i>/"], for rtrace queries. *)

val app : t -> Kv_app.t
val net : t -> Net_server.t
val sent : t -> int

val shed : t -> int
(** Replies refused because the ring was full. *)

val delivered : t -> int
(** Persistent: survives crash/restore. *)

val pending : t -> int

val key_count : t -> int
(** Grows with inserts. *)

val owns_group : t -> string -> bool
(** Does a [Report.per_group] group name belong to this tenant's subtree
    (server or client process)? *)
