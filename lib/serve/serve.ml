module System = Treesls.System
module Manager = Treesls_ckpt.Manager
module Report = Treesls_ckpt.Report
module Clock = Treesls_sim.Clock
module Rtrace = Treesls_obs.Rtrace
module Probe = Treesls_obs.Probe
module Rng = Treesls_util.Rng

type cfg = {
  tenants : int;
  ops_per_tenant : int;
  gap_ns : int;
  seed : int64;
  tenant : Tenant.cfg;
}

let default_cfg =
  {
    tenants = 4;
    ops_per_tenant = 200;
    gap_ns = 10_000;
    seed = 97L;
    tenant = Tenant.default_cfg;
  }

type t = {
  sys : System.t;
  cfg : cfg;
  tenants : Tenant.t array;
  mutable reports : Report.t list; (* newest first *)
}

let create ?(service = true) sys (cfg : cfg) =
  if cfg.tenants <= 0 then invalid_arg "Serve.create: need at least one tenant";
  let rng = Rng.create cfg.seed in
  let tenants =
    Array.init cfg.tenants (fun idx ->
        Tenant.create sys ~idx ~seed:(Rng.int64 rng) cfg.tenant)
  in
  let t = { sys; cfg; tenants; reports = [] } in
  (* Re-bind every tenant after each recover; name-claimed rings make the
     order irrelevant.  Setup also runs at registration, when the tenants
     are already live — skip that first call. *)
  if service then begin
    let live = ref false in
    System.add_service sys ~name:"serve" ~setup:(fun _ ->
        if !live then Array.iter Tenant.refresh tenants else live := true)
  end;
  t

let tenants t = Array.to_list t.tenants
let tenant t i = t.tenants.(i)
let reports t = List.rev t.reports

let refresh t = Array.iter Tenant.refresh t.tenants

(* ns-precision pacing that still fires checkpoint deadlines on time (the
   pause must start at its deadline for the visible-latency measurement,
   not at the next driver op), collecting each fired commit's report. *)
let advance_to t target =
  let sys = t.sys in
  let rec loop () =
    if System.now_ns sys < target then begin
      (match Manager.next_deadline (System.manager sys) with
      | Some d when d <= target ->
        if System.now_ns sys < d then
          Clock.advance (System.clock sys) (d - System.now_ns sys);
        (match Manager.tick (System.manager sys) with
        | Some r -> t.reports <- r :: t.reports
        | None -> ())
      | Some _ | None -> Clock.advance (System.clock sys) (target - System.now_ns sys));
      loop ()
    end
  in
  loop ()

(* Open loop over the merged arrival schedule: tenant [i]'s op [j] arrives
   at [t0 + j*gap + i*stagger], tenants staggered evenly within the gap —
   deterministic virtual time, lexicographic (j, i) order. *)
let run t =
  (* settle the creation/preload burst before measuring *)
  ignore (System.checkpoint t.sys);
  let n = Array.length t.tenants in
  let gap = t.cfg.gap_ns in
  let stagger = max 1 (gap / n) in
  let t0 = System.now_ns t.sys in
  for j = 0 to t.cfg.ops_per_tenant - 1 do
    for i = 0 to n - 1 do
      advance_to t (t0 + (j * gap) + (i * stagger));
      Tenant.step t.tenants.(i);
      match System.tick t.sys with
      | Some r -> t.reports <- r :: t.reports
      | None -> ()
    done
  done;
  (* release the final partial interval's replies: settle any pending
     window, capture once more, and settle THAT window too (in async mode
     the capture alone leaves the replies parked until its settle) *)
  System.drain_settle t.sys;
  let r = System.checkpoint t.sys in
  t.reports <- r :: t.reports;
  System.drain_settle t.sys

type row = {
  r_tenant : string;
  r_sent : int;
  r_shed : int;
  r_delivered : int;
  r_keys : int;
  r_enq2vis : Rtrace.summary;
  r_e2e : Rtrace.summary;
  r_group_ns : int;
  r_group_objects : int;
}

let group_totals t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (r : Report.t) ->
      List.iter
        (fun (g, gc) ->
          let ns, objs =
            Option.value ~default:(0, 0) (Hashtbl.find_opt tbl g)
          in
          Hashtbl.replace tbl g
            (ns + gc.Report.g_ns, objs + gc.Report.g_objects))
        r.Report.per_group)
    t.reports;
  tbl

let rows t =
  let rt = Probe.rtrace (System.obs t.sys) in
  let groups = group_totals t in
  Array.to_list
    (Array.map
       (fun tn ->
         let enq2vis, e2e =
           Rtrace.summaries_prefix rt ~prefix:(Tenant.origin_prefix tn)
         in
         let group_ns, group_objects =
           Hashtbl.fold
             (fun g (ns, objs) (acc_ns, acc_objs) ->
               if Tenant.owns_group tn g then (acc_ns + ns, acc_objs + objs)
               else (acc_ns, acc_objs))
             groups (0, 0)
         in
         {
           r_tenant = Tenant.name tn;
           r_sent = Tenant.sent tn;
           r_shed = Tenant.shed tn;
           r_delivered = Tenant.delivered tn;
           r_keys = Tenant.key_count tn;
           r_enq2vis = enq2vis;
           r_e2e = e2e;
           r_group_ns = group_ns;
           r_group_objects = group_objects;
         })
       t.tenants)

let attribution t =
  let groups = group_totals t in
  Hashtbl.fold (fun g (ns, _) acc -> (g, ns) :: acc) groups []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(* The walk charges every non-skipped object's cost to exactly one group,
   and nothing else consumes simulated time inside the walk — so per
   report, sum(per_group.g_ns) must equal captree_ns exactly. *)
let attribution_exact t =
  List.for_all
    (fun (r : Report.t) ->
      let sum =
        List.fold_left (fun acc (_, gc) -> acc + gc.Report.g_ns) 0 r.Report.per_group
      in
      sum = r.Report.captree_ns)
    t.reports

let captree_total t =
  List.fold_left (fun acc (r : Report.t) -> acc + r.Report.captree_ns) 0 t.reports

let stw_mean_ns t =
  match t.reports with
  | [] -> 0.0
  | l ->
    List.fold_left (fun acc (r : Report.t) -> acc +. float_of_int r.Report.stw_ns) 0.0 l
    /. float_of_int (List.length l)
