module System = Treesls.System
module Kernel = Treesls_kernel.Kernel
module Net_server = Treesls_extsync.Net_server
module Kv_app = Treesls_apps.Kv_app
module Ycsb = Treesls_workloads.Ycsb
module Rng = Treesls_util.Rng

type cfg = {
  keys : int;
  value_size : int;
  mix : Ycsb.workload;
  ring_slots : int;
  ring_slot_size : int;
}

(* Small by design: a tenant is a unit of packing, not a full Redis.  The
   ring is sized to one checkpoint interval's worth of replies; the
   default mix is read-heavy with a trickle of inserts so the Zipfian
   domain actually grows during a run. *)
let default_cfg =
  {
    keys = 1_000;
    value_size = 64;
    mix = Ycsb.Mix { read = 0.5; update = 0.45; insert = 0.05 };
    ring_slots = 256;
    ring_slot_size = 64;
  }

type t = {
  sys : System.t;
  idx : int;
  name : string;
  cfg : cfg;
  app : Kv_app.t;
  mutable net : Net_server.t;
  ycsb : Ycsb.t;
  mutable sent : int;
  mutable shed : int;
}

let tenant_name idx = Printf.sprintf "t%d" idx
let ring_name_of name = "netsrv." ^ name

let make_net sys cfg ~name ~proc ~attach =
  let f = if attach then Net_server.reattach else Net_server.create in
  f ~slots:cfg.ring_slots ~slot_size:cfg.ring_slot_size
    ~name:(ring_name_of name) (System.kernel sys) (System.manager sys) ~proc
    ~deliver:(fun ~client:_ ~sent_ns:_ ~payload:_ -> ())

let create sys ~idx ~seed cfg =
  let name = tenant_name idx in
  let app =
    Kv_app.launch ~keys_hint:cfg.keys ~value_size:cfg.value_size ~instance:name
      sys Kv_app.Shard
  in
  for i = 0 to cfg.keys - 1 do
    Kv_app.set_i app i
  done;
  (* The ring lives on the tenant's own server process, so its pages (and
     cursor writes) attribute to this tenant's cap subtree. *)
  let net = make_net sys cfg ~name ~proc:(Kv_app.server app) ~attach:false in
  let ycsb = Ycsb.create cfg.mix ~keys:cfg.keys (Rng.create seed) in
  { sys; idx; name; cfg; app; net; ycsb; sent = 0; shed = 0 }

let name t = t.name
let index t = t.idx
let ring_name t = ring_name_of t.name
let origin_prefix t = t.name ^ "/"
let app t = t.app
let net t = t.net

let step t =
  (match Ycsb.next t.ycsb with
  | Ycsb.Read k -> ignore (Kv_app.get_i t.app k)
  | Ycsb.Update k | Ycsb.Insert k -> Kv_app.set_i t.app k);
  t.sent <- t.sent + 1;
  if not (Net_server.send t.net ~client:(t.sent land 255) (Bytes.of_string "+OK"))
  then t.shed <- t.shed + 1

let refresh t =
  Kv_app.refresh t.app;
  t.net <- make_net t.sys t.cfg ~name:t.name ~proc:(Kv_app.server t.app) ~attach:true

let sent t = t.sent
let shed t = t.shed
let delivered t = Net_server.delivered t.net
let pending t = Net_server.pending t.net
let key_count t = Ycsb.key_count t.ycsb

let owns_group t g =
  g = Kv_app.server_name t.app || g = Kv_app.client_name t.app
