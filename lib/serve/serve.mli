(** Multi-tenant serving harness (the §7.5.1 "millions of users" scenario
    at model scale).

    [N] tenants — each an isolated cap subtree with its own shard process,
    KV store and named extsync reply ring ({!Tenant}) — are driven by an
    open-loop YCSB-style load: tenant [i]'s op [j] arrives at virtual time
    [t0 + j*gap_ns + i*stagger], so the merged schedule is deterministic
    and checkpoint deadlines fire at ns precision between arrivals.

    Per-tenant visible latency comes from the rtrace pipeline (origins
    ["t<i>/kv.*"]); per-tenant checkpoint cost comes from
    [Report.per_group] subtree attribution, collected across every commit
    of the run. *)

module System = Treesls.System
module Report = Treesls_ckpt.Report
module Rtrace = Treesls_obs.Rtrace

type cfg = {
  tenants : int;
  ops_per_tenant : int;
  gap_ns : int;  (** per-tenant inter-arrival gap *)
  seed : int64;
  tenant : Tenant.cfg;
}

val default_cfg : cfg

type t

val create : ?service:bool -> System.t -> cfg -> t
(** Launch all tenants (preloading their stores).  With [service] (the
    default) a ["serve"] system service re-binds every tenant after each
    recover, so [System.crash_and_recover] works transparently; pass
    [~service:false] to drive {!refresh} by hand (e.g. in reattach-order
    tests). *)

val run : t -> unit
(** Execute the full arrival schedule, then settle and take one final
    checkpoint so every parked reply is released. *)

val refresh : t -> unit
(** Re-bind every tenant after a crash/recover (any order is safe). *)

val tenants : t -> Tenant.t list
val tenant : t -> int -> Tenant.t

val reports : t -> Report.t list
(** Every checkpoint report committed during {!run}, oldest first. *)

(** {2 Results} *)

type row = {
  r_tenant : string;
  r_sent : int;
  r_shed : int;
  r_delivered : int;
  r_keys : int;
  r_enq2vis : Rtrace.summary;
  r_e2e : Rtrace.summary;
  r_group_ns : int;  (** captree time attributed to this tenant's subtree *)
  r_group_objects : int;
}

val rows : t -> row list
(** One row per tenant: latency percentiles + STW attribution share. *)

val attribution : t -> (string * int) list
(** Total captree ns per [per_group] name across the run, costliest
    first (includes ["kernel"] and any non-tenant services). *)

val attribution_exact : t -> bool
(** [true] iff for every collected report, the per-group costs sum to
    [captree_ns] exactly — the self-check behind the bench gate. *)

val captree_total : t -> int
val stw_mean_ns : t -> float
