type kind = Cap_group_k | Thread_k | Vmspace_k | Pmo_k | Ipc_conn_k | Notification_k | Irq_k

type t =
  | Cap_group of cap_group
  | Thread of thread
  | Vmspace of vmspace
  | Pmo of pmo
  | Ipc_conn of ipc_conn
  | Notification of notification
  | Irq_notification of irq_notification

and cap = { target : t; rights : Rights.t }

and cap_group = {
  cg_id : int;
  cg_name : string;
  mutable cg_slots : cap option array;
  mutable cg_used : int;
  mutable cg_gen : int;
}

and thread_state = Ready | Running of int | Blocked_notif of int | Blocked_ipc of int | Exited

and thread = {
  th_id : int;
  mutable th_regs : int array;
  mutable th_state : thread_state;
  mutable th_prio : int;
  mutable th_cursor : int;
  mutable th_gen : int;
}

and vm_region = { vr_vpn : int; vr_pages : int; vr_pmo : pmo; vr_writable : bool }

and vmspace = { vs_id : int; mutable vs_regions : vm_region list; mutable vs_gen : int }

and pmo_kind = Pmo_normal | Pmo_eternal

and pmo = {
  pmo_id : int;
  pmo_pages : int;
  pmo_kind : pmo_kind;
  pmo_radix : Treesls_nvm.Paddr.t Radix.t;
  mutable pmo_gen : int;
}

and ipc_conn = {
  ic_id : int;
  mutable ic_server : thread option;
  mutable ic_shared : pmo option;
  mutable ic_calls : int;
  mutable ic_gen : int;
}

and notification = {
  nt_id : int;
  mutable nt_count : int;
  mutable nt_waiters : int list;
  mutable nt_gen : int;
}

and irq_notification = {
  irq_id : int;
  irq_line : int;
  mutable irq_pending : int;
  mutable irq_gen : int;
}

let id = function
  | Cap_group g -> g.cg_id
  | Thread th -> th.th_id
  | Vmspace vs -> vs.vs_id
  | Pmo p -> p.pmo_id
  | Ipc_conn c -> c.ic_id
  | Notification n -> n.nt_id
  | Irq_notification i -> i.irq_id

(* Generation epochs: every mutation of checkpointable object state bumps
   the object's generation through {!touch}.  The incremental walk compares
   an object's generation against the one recorded at its last checkpoint
   (ORoot-side) and skips snapshot/copy/charge when they match, so the
   bump must be placed on every state-mutating path — the constructors and
   cap-slot operations below, plus the kernel/IPC mutators. *)
let touch = function
  | Cap_group g -> g.cg_gen <- g.cg_gen + 1
  | Thread th -> th.th_gen <- th.th_gen + 1
  | Vmspace vs -> vs.vs_gen <- vs.vs_gen + 1
  | Pmo p -> p.pmo_gen <- p.pmo_gen + 1
  | Ipc_conn c -> c.ic_gen <- c.ic_gen + 1
  | Notification n -> n.nt_gen <- n.nt_gen + 1
  | Irq_notification i -> i.irq_gen <- i.irq_gen + 1

let gen = function
  | Cap_group g -> g.cg_gen
  | Thread th -> th.th_gen
  | Vmspace vs -> vs.vs_gen
  | Pmo p -> p.pmo_gen
  | Ipc_conn c -> c.ic_gen
  | Notification n -> n.nt_gen
  | Irq_notification i -> i.irq_gen

let kind = function
  | Cap_group _ -> Cap_group_k
  | Thread _ -> Thread_k
  | Vmspace _ -> Vmspace_k
  | Pmo _ -> Pmo_k
  | Ipc_conn _ -> Ipc_conn_k
  | Notification _ -> Notification_k
  | Irq_notification _ -> Irq_k

let kind_name = function
  | Cap_group_k -> "Cap Group"
  | Thread_k -> "Thread"
  | Vmspace_k -> "VM Space"
  | Pmo_k -> "PMO"
  | Ipc_conn_k -> "IPC"
  | Notification_k -> "Notification"
  | Irq_k -> "IRQ"

let all_kinds =
  [ Cap_group_k; Thread_k; Vmspace_k; Pmo_k; Ipc_conn_k; Notification_k; Irq_k ]

let regs_count = 34

let copy_bytes = function
  | Cap_group g -> 64 + (16 * Array.length g.cg_slots)
  | Thread _ -> 64 + (8 * regs_count)
  | Vmspace vs -> 48 + (40 * List.length vs.vs_regions)
  | Pmo _ -> 64
  | Ipc_conn _ -> 64
  | Notification n -> 48 + (8 * List.length n.nt_waiters)
  | Irq_notification _ -> 48

(* Constructors start at generation 1 (never 0): a fresh object can never
   compare equal to an ORoot whose recorded generation was zeroed. *)
let make_cap_group ~id ~name =
  { cg_id = id; cg_name = name; cg_slots = Array.make 8 None; cg_used = 0; cg_gen = 1 }

let make_thread ~id ~prio =
  {
    th_id = id;
    th_regs = Array.make regs_count 0;
    th_state = Ready;
    th_prio = prio;
    th_cursor = 0;
    th_gen = 1;
  }

let make_vmspace ~id = { vs_id = id; vs_regions = []; vs_gen = 1 }

let make_pmo ~id ~pages ~kind =
  assert (pages > 0);
  { pmo_id = id; pmo_pages = pages; pmo_kind = kind; pmo_radix = Radix.create (); pmo_gen = 1 }

let make_ipc_conn ~id = { ic_id = id; ic_server = None; ic_shared = None; ic_calls = 0; ic_gen = 1 }
let make_notification ~id = { nt_id = id; nt_count = 0; nt_waiters = []; nt_gen = 1 }
let make_irq_notification ~id ~line = { irq_id = id; irq_line = line; irq_pending = 0; irq_gen = 1 }

let install g cap =
  let len = Array.length g.cg_slots in
  let rec find i = if i >= len then -1 else if g.cg_slots.(i) = None then i else find (i + 1) in
  let slot = find 0 in
  let slot =
    if slot >= 0 then slot
    else begin
      let bigger = Array.make (2 * len) None in
      Array.blit g.cg_slots 0 bigger 0 len;
      g.cg_slots <- bigger;
      len
    end
  in
  g.cg_slots.(slot) <- Some cap;
  g.cg_used <- g.cg_used + 1;
  touch (Cap_group g);
  slot

let install_at g slot cap =
  if slot < 0 then invalid_arg "Kobj.install_at: negative slot";
  let len = Array.length g.cg_slots in
  if slot >= len then begin
    let bigger = Array.make (max (slot + 1) (2 * len)) None in
    Array.blit g.cg_slots 0 bigger 0 len;
    g.cg_slots <- bigger
  end;
  if g.cg_slots.(slot) <> None then invalid_arg "Kobj.install_at: slot occupied";
  g.cg_slots.(slot) <- Some cap;
  g.cg_used <- g.cg_used + 1;
  touch (Cap_group g)

let lookup g slot =
  if slot < 0 || slot >= Array.length g.cg_slots then None else g.cg_slots.(slot)

let revoke g slot =
  match lookup g slot with
  | None -> invalid_arg "Kobj.revoke: empty slot"
  | Some _ ->
    g.cg_slots.(slot) <- None;
    g.cg_used <- g.cg_used - 1;
    touch (Cap_group g)

let iter_caps f g =
  Array.iteri (fun i slot -> match slot with Some c -> f i c | None -> ()) g.cg_slots

let caps_count g = g.cg_used
let slots_len g = Array.length g.cg_slots

let iter_tree ~root f =
  let seen = Hashtbl.create 256 in
  let rec visit obj =
    let oid = id obj in
    if not (Hashtbl.mem seen oid) then begin
      Hashtbl.add seen oid ();
      f obj;
      match obj with
      | Cap_group g -> iter_caps (fun _ c -> visit c.target) g
      | Vmspace vs -> List.iter (fun r -> visit (Pmo r.vr_pmo)) vs.vs_regions
      | Ipc_conn c -> (
        (match c.ic_server with Some th -> visit (Thread th) | None -> ());
        match c.ic_shared with Some p -> visit (Pmo p) | None -> ())
      | Thread _ | Pmo _ | Notification _ | Irq_notification _ -> ()
    end
  in
  visit (Cap_group root)
