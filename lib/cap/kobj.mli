(** Capability-referred kernel objects (paper Table 1).

    Every system resource is one of these objects; all of them are grouped
    into the capability tree rooted at the root cap group (Figure 4), and
    checkpointing that tree checkpoints the whole system.

    Types are transparent so the kernel and the checkpoint manager can
    pattern-match; invariant-preserving helpers are provided for the common
    mutations. *)

type kind = Cap_group_k | Thread_k | Vmspace_k | Pmo_k | Ipc_conn_k | Notification_k | Irq_k

type t =
  | Cap_group of cap_group
  | Thread of thread
  | Vmspace of vmspace
  | Pmo of pmo
  | Ipc_conn of ipc_conn
  | Notification of notification
  | Irq_notification of irq_notification

and cap = { target : t; rights : Rights.t }

and cap_group = {
  cg_id : int;
  cg_name : string;
  mutable cg_slots : cap option array;
  mutable cg_used : int;
  mutable cg_gen : int;  (** generation epoch, see {!touch} *)
}

and thread_state =
  | Ready
  | Running of int  (** core id *)
  | Blocked_notif of int  (** notification object id *)
  | Blocked_ipc of int  (** connection object id *)
  | Exited

and thread = {
  th_id : int;
  mutable th_regs : int array;  (** general registers + pc + sp *)
  mutable th_state : thread_state;
  mutable th_prio : int;
  mutable th_cursor : int;  (** scheduling context: remaining budget *)
  mutable th_gen : int;
}

and vm_region = {
  vr_vpn : int;  (** first virtual page number *)
  vr_pages : int;
  vr_pmo : pmo;
  vr_writable : bool;
}

and vmspace = { vs_id : int; mutable vs_regions : vm_region list; mutable vs_gen : int }

and pmo_kind =
  | Pmo_normal
  | Pmo_eternal  (** not rolled back on restore (§5: external synchrony) *)

and pmo = {
  pmo_id : int;
  pmo_pages : int;  (** size in pages *)
  pmo_kind : pmo_kind;
  pmo_radix : Treesls_nvm.Paddr.t Radix.t;  (** page number -> physical page *)
  mutable pmo_gen : int;
}

and ipc_conn = {
  ic_id : int;
  mutable ic_server : thread option;
  mutable ic_shared : pmo option;
  mutable ic_calls : int;  (** served call count (part of connection state) *)
  mutable ic_gen : int;
}

and notification = {
  nt_id : int;
  mutable nt_count : int;
  mutable nt_waiters : int list;  (** blocked thread ids, FIFO *)
  mutable nt_gen : int;
}

and irq_notification = {
  irq_id : int;
  irq_line : int;
  mutable irq_pending : int;
  mutable irq_gen : int;
}

val id : t -> int
val kind : t -> kind

(** {2 Generation epochs (incremental checkpoint walk)} *)

val touch : t -> unit
(** Bump the object's generation.  Must be called after every mutation of
    checkpointable state; the provided helpers ({!install}, {!revoke}, the
    kernel and IPC mutators) do so themselves — call it directly only when
    assigning record fields by hand. *)

val gen : t -> int
(** Current generation.  Constructors start at 1; the checkpoint walk
    records the generation it snapshotted and skips the object while the
    two still match. *)

val kind_name : kind -> string
val all_kinds : kind list

val regs_count : int
(** Register-file words saved per thread. *)

val copy_bytes : t -> int
(** Estimated byte volume copied when checkpointing this object's own state
    (PMO page contents and radix interior are costed separately). *)

(** {2 Constructors} (ids must come from a per-kernel {!Id_gen}) *)

val make_cap_group : id:int -> name:string -> cap_group
val make_thread : id:int -> prio:int -> thread
val make_vmspace : id:int -> vmspace
val make_pmo : id:int -> pages:int -> kind:pmo_kind -> pmo
val make_ipc_conn : id:int -> ipc_conn
val make_notification : id:int -> notification
val make_irq_notification : id:int -> line:int -> irq_notification

(** {2 Cap-group operations} *)

val install : cap_group -> cap -> int
(** Install a capability in the first free slot; returns the slot. *)

val install_at : cap_group -> int -> cap -> unit
(** Install at a specific slot (restore path; slot must be free). *)

val lookup : cap_group -> int -> cap option
val revoke : cap_group -> int -> unit
val iter_caps : (int -> cap -> unit) -> cap_group -> unit
val caps_count : cap_group -> int
val slots_len : cap_group -> int

(** {2 Traversal} *)

val iter_tree : root:cap_group -> (t -> unit) -> unit
(** Visit every object reachable from [root] exactly once (the tree can
    share objects across cap groups; visits are deduplicated by id). *)
