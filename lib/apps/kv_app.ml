module Kernel = Treesls_kernel.Kernel
module System = Treesls.System
module Ipc = Treesls_kernel.Ipc
module Kobj = Treesls_cap.Kobj
module Cost = Treesls_sim.Cost

type profile = Memcached | Redis | Shard

(* Census shaping per Table 2: (threads, ipcs, notifs, extra_pmos) for the
   server and the client process of each profile. The sums, together with
   the process skeleton (cap group, VM space, code PMO, stack PMOs) and the
   store/buffer regions, reproduce the paper's relative object counts.
   [Shard] is a deliberately small census so a multi-tenant run can pack
   64 instances without the per-tenant object count dominating. *)
let census = function
  | Redis -> (("redis", 13, 27, 3, 100), ("redis-cli", 64, 32, 3, 21))
  | Memcached -> (("memcached", 10, 10, 9, 60), ("memcached-cli", 32, 8, 8, 29))
  | Shard -> (("kvshard", 4, 6, 2, 24), ("kvshard-cli", 6, 4, 2, 10))

type t = {
  sys : System.t;
  profile : profile;
  server_name : string;
  client_name : string;
  origin_prefix : string;
  mutable server_p : Kernel.process;
  mutable client_p : Kernel.process;
  mutable kv : Kvstore.t;
  mutable conn : Kobj.ipc_conn;
  kv_vpn : int;
  buf_vpn : int;
  buf_pages : int;
  mutable buf_cursor : int;
  value_size : int;
}

let psz sys = (Kernel.cost (System.kernel sys)).Cost.page_size

let handler kv payload =
  let s = Bytes.to_string payload in
  let op = s.[0] in
  let rest = String.sub s 1 (String.length s - 1) in
  match op with
  | 'S' ->
    let i = String.index rest '\x00' in
    let key = String.sub rest 0 i in
    let value = String.sub rest (i + 1) (String.length rest - i - 1) in
    Kvstore.put kv ~key ~value;
    Bytes.of_string "+OK"
  | 'G' -> (
    match Kvstore.get kv ~key:rest with
    | Some v -> Bytes.of_string ("+" ^ v)
    | None -> Bytes.of_string "-")
  | 'D' -> Bytes.of_string (if Kvstore.delete kv ~key:rest then "+1" else "+0")
  | _ -> Bytes.of_string "-ERR"

let register t = Ipc.register_handler (System.kernel t.sys) t.conn (handler t.kv)

let launch ?(keys_hint = 100_000) ?(value_size = 100) ?instance sys profile =
  let (sname, sth, sipc, snot, spmo), (cname, cth, cipc, cnot, cpmo) = census profile in
  (* [instance] disambiguates multiple launches of the same profile: it
     suffixes both process names (so refresh finds the right pair) and
     prefixes request origins (so rtrace can answer per tenant). *)
  let suffix = match instance with Some s -> "." ^ s | None -> "" in
  let sname = sname ^ suffix and cname = cname ^ suffix in
  let origin_prefix = match instance with Some s -> s ^ "/" | None -> "" in
  let server_p = Launchpad.make_proc sys ~name:sname ~threads:sth ~ipcs:sipc ~notifs:snot ~extra_pmos:spmo in
  let client_p = Launchpad.make_proc sys ~name:cname ~threads:cth ~ipcs:cipc ~notifs:cnot ~extra_pmos:cpmo in
  let k = System.kernel sys in
  (* Size the store: buckets ~ keys, entry = header + key + value. *)
  let entry_bytes = 48 + value_size in
  let bytes = (keys_hint * entry_bytes * 3 / 2) + (keys_hint * 8) + (2 * psz sys) in
  let pages = (bytes / psz sys) + 2 in
  let kv = Kvstore.create k server_p ~buckets:keys_hint ~pages in
  let buf_pages = 8 in
  let buf_vpn = Kernel.grow_heap k client_p ~pages:buf_pages in
  let conn = Ipc.create_conn k ~client:client_p ~server:server_p in
  let t =
    {
      sys;
      profile;
      server_name = sname;
      client_name = cname;
      origin_prefix;
      server_p;
      client_p;
      kv;
      conn;
      kv_vpn = Kvstore.base_vpn kv;
      buf_vpn;
      buf_pages;
      buf_cursor = 0;
      value_size;
    }
  in
  register t;
  t

let refresh t =
  t.server_p <- Launchpad.find_proc t.sys ~name:t.server_name;
  t.client_p <- Launchpad.find_proc t.sys ~name:t.client_name;
  let k = System.kernel t.sys in
  t.kv <- Kvstore.attach k t.server_p ~vpn:t.kv_vpn;
  (* the connection object survived in the tree; find it again *)
  let conn = ref None in
  Kobj.iter_caps
    (fun _ c ->
      match c.Kobj.target with
      | Kobj.Ipc_conn ic when ic.Kobj.ic_id = t.conn.Kobj.ic_id -> conn := Some ic
      | _ -> ())
    t.client_p.Kernel.cg;
  (match !conn with Some ic -> t.conn <- ic | None -> invalid_arg "Kv_app.refresh: conn lost");
  register t

(* The client materialises the request in its own buffer first (this is
   what makes clients dirty pages and show up in checkpoints). *)
let client_stage t payload =
  let k = System.kernel t.sys in
  let len = Bytes.length payload in
  let p = psz t.sys in
  let total = t.buf_pages * p in
  if t.buf_cursor + len > total then t.buf_cursor <- 0;
  Kernel.write_bytes k t.client_p ~vaddr:((t.buf_vpn * p) + t.buf_cursor) payload;
  t.buf_cursor <- t.buf_cursor + ((len + 63) / 64 * 64)

let origin_of payload =
  if Bytes.length payload = 0 then "kv.op"
  else
    match Bytes.get payload 0 with
    | 'S' -> "kv.set"
    | 'G' -> "kv.get"
    | 'D' -> "kv.del"
    | _ -> "kv.op"

let call t payload =
  (* each client op is an externally-driven request: id assigned here,
     carried implicitly through Ipc.call and any Net_server.send *)
  ignore (Treesls_obs.Probe.req_arrive ~origin:(t.origin_prefix ^ origin_of payload));
  client_stage t payload;
  Ipc.call (System.kernel t.sys) t.conn payload

let set t ~key ~value =
  let reply = call t (Bytes.of_string ("S" ^ key ^ "\x00" ^ value)) in
  assert (Bytes.length reply > 0 && Bytes.get reply 0 = '+')

let get t ~key =
  let reply = call t (Bytes.of_string ("G" ^ key)) in
  let s = Bytes.to_string reply in
  if String.length s > 0 && s.[0] = '+' then Some (String.sub s 1 (String.length s - 1))
  else None

let del t ~key =
  let reply = call t (Bytes.of_string ("D" ^ key)) in
  Bytes.to_string reply = "+1"

let value_for t i =
  let base = Printf.sprintf "v%08d-" i in
  let reps = (t.value_size / String.length base) + 1 in
  String.sub (String.concat "" (List.init reps (fun _ -> base))) 0 t.value_size

let set_i t i = set t ~key:(Printf.sprintf "key%08d" i) ~value:(value_for t i)
let get_i t i = get t ~key:(Printf.sprintf "key%08d" i)

let server t = t.server_p
let client t = t.client_p
let server_name t = t.server_name
let client_name t = t.client_name
let kv t = t.kv
let value_size t = t.value_size
