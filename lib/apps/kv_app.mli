(** Memcached- and Redis-style in-memory key-value servers.

    Each launch creates a server process and a (checkpointed) client
    process, reproducing the workload's Table 2 object census.  Operations
    travel the real path: the client dirties its request buffer, makes a
    synchronous IPC call, and the server executes the operation against its
    PMO-resident {!Kvstore}.

    Persistence is entirely transparent: neither server nor client contains
    any persistence code. After a crash, {!refresh} re-derives handles and
    re-registers the (volatile) IPC handler. *)

module Kernel = Treesls_kernel.Kernel
module System = Treesls.System

type profile = Memcached | Redis | Shard
(** [Shard] is a small-census profile for multi-tenant packing: the same
    real IPC/store path, a fraction of the per-instance object count. *)

type t

val launch :
  ?keys_hint:int -> ?value_size:int -> ?instance:string -> System.t -> profile -> t
(** [keys_hint] sizes the hash table and region (default 100_000).
    [instance] disambiguates multiple launches of the same profile: it
    suffixes both process names (e.g. ["kvshard.t3"]) and prefixes request
    origins (["t3/kv.set"]), so post-crash {!refresh} and per-tenant
    rtrace queries resolve the right instance. *)

val refresh : t -> unit
(** Post-recovery: re-find processes, re-open the store, re-register the
    IPC handler. *)

val server : t -> Kernel.process
val client : t -> Kernel.process

val server_name : t -> string
(** Instance-qualified process name, as it appears in [Report.per_group]
    attribution. *)

val client_name : t -> string
val kv : t -> Kvstore.t
val value_size : t -> int

val set : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val del : t -> key:string -> bool

val set_i : t -> int -> unit
(** [set_i t i] stores key ["key<i>"] with a deterministic value of
    [value_size] bytes (benchmark convenience). *)

val get_i : t -> int -> string option
