type t = {
  rng : Rng.t;
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

(* For large n computing zeta exactly is O(n); cap the exact part and
   extrapolate with the integral approximation of the tail. *)
let zeta_approx n theta =
  let exact_cap = 10_000 in
  if n <= exact_cap then zeta n theta
  else
    let head = zeta exact_cap theta in
    let a = float_of_int exact_cap and b = float_of_int n in
    let tail = (Float.pow b (1.0 -. theta) -. Float.pow a (1.0 -. theta)) /. (1.0 -. theta) in
    head +. tail

let create ?(theta = 0.99) ~n rng =
  assert (n > 0);
  let zetan = zeta_approx n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { rng; n; theta; alpha; zetan; eta }

(* Extending the domain only needs the new terms of the harmonic sum:
   zeta(n', theta) = zeta(n, theta) + sum_{i=n+1..n'} i^-theta.  For the
   incremental range we always sum exactly (inserts arrive one or a few at
   a time), so repeated extension stays O(total growth), not O(n) each. *)
let extend t ~n =
  if n <= t.n then t
  else begin
    let added = ref 0.0 in
    for i = t.n + 1 to n do
      added := !added +. (1.0 /. Float.pow (float_of_int i) t.theta)
    done;
    let zetan = t.zetan +. !added in
    let zeta2 = zeta 2 t.theta in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. t.theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { t with n; zetan; eta }
  end

let domain t = t.n

let next t =
  let u = Rng.float t.rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let i = int_of_float v in
    if i >= t.n then t.n - 1 else if i < 0 then 0 else i

(* FNV-1a 64-bit hash used to scramble the skewed item ids. *)
let fnv1a_64 x =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  for shift = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical x (shift * 8)) 0xFFL) in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime
  done;
  !h

let scrambled t =
  let raw = next t in
  let h = fnv1a_64 (Int64.of_int raw) in
  (Int64.to_int h land max_int) mod t.n
