type t = {
  sub_buckets : int;
  counts : int array; (* octave * sub_buckets + sub index *)
  bucket_max : int array; (* largest recorded value per bucket *)
  bucket_min : int array; (* smallest recorded value per bucket *)
  mutable n : int;
  mutable sum : int;
  mutable maxv : int;
  mutable minv : int;
}

let octaves = 48

let create ?(sub_buckets = 16) () =
  {
    sub_buckets;
    counts = Array.make (octaves * sub_buckets) 0;
    bucket_max = Array.make (octaves * sub_buckets) 0;
    bucket_min = Array.make (octaves * sub_buckets) max_int;
    n = 0;
    sum = 0;
    maxv = 0;
    minv = max_int;
  }

let bucket_index t v =
  if v < t.sub_buckets then v
  else begin
    (* octave = position of the highest set bit above log2 sub_buckets *)
    let bits = Bits.log2_int v in
    let low_bits = Bits.log2_int t.sub_buckets in
    let octave = bits - low_bits in
    let sub = (v lsr (bits - low_bits)) - t.sub_buckets in
    (* sub in [0, sub_buckets): the sub_buckets values after the leading bit *)
    ((octave + 1) * t.sub_buckets) + sub
  end

let add t v =
  let v = if v < 0 then 0 else v in
  let idx = bucket_index t v in
  let idx = if idx >= Array.length t.counts then Array.length t.counts - 1 else idx in
  t.counts.(idx) <- t.counts.(idx) + 1;
  if v > t.bucket_max.(idx) then t.bucket_max.(idx) <- v;
  if v < t.bucket_min.(idx) then t.bucket_min.(idx) <- v;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.maxv then t.maxv <- v;
  if v < t.minv then t.minv <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n
let max_value t = t.maxv
let min_value t = if t.n = 0 then 0 else t.minv

let percentile t p =
  if t.n = 0 then 0
  else begin
    let target = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 in
    let result = ref t.maxv in
    (try
       for i = 0 to Array.length t.counts - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= target then begin
           (* Report the largest *recorded* value in the bucket rather than
              the bucket's theoretical upper bound: with few samples the
              upper bound can overstate a p99 by a whole bucket width, while
              an observed value is off by at most the spread of samples
              actually inside the bucket. *)
           result := t.bucket_max.(i);
           raise Exit
         end
       done
     with Exit -> ());
    if !result > t.maxv then t.maxv else !result
  end

let merge ~into src =
  if into.sub_buckets <> src.sub_buckets then
    invalid_arg
      (Printf.sprintf "Histogram.merge: sub_buckets mismatch (%d vs %d)" into.sub_buckets
         src.sub_buckets);
  for i = 0 to Array.length src.counts - 1 do
    if src.counts.(i) > 0 then begin
      into.counts.(i) <- into.counts.(i) + src.counts.(i);
      if src.bucket_max.(i) > into.bucket_max.(i) then into.bucket_max.(i) <- src.bucket_max.(i);
      if src.bucket_min.(i) < into.bucket_min.(i) then into.bucket_min.(i) <- src.bucket_min.(i)
    end
  done;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.maxv > into.maxv then into.maxv <- src.maxv;
  if src.n > 0 && src.minv < into.minv then into.minv <- src.minv

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  Array.fill t.bucket_max 0 (Array.length t.bucket_max) 0;
  Array.fill t.bucket_min 0 (Array.length t.bucket_min) max_int;
  t.n <- 0;
  t.sum <- 0;
  t.maxv <- 0;
  t.minv <- max_int

(* A windowed histogram is a ring of [slices] plain histograms: samples land
   in the current slice, [rotate] retires the oldest slice, and every query
   runs against the {!merge} of the retained slices.  This is the
   percentile-over-time primitive: rotate once per sampling interval and the
   window decays in whole-interval steps, with no per-sample cost beyond a
   plain [add]. *)
module Windowed = struct
  type h = t

  let h_create = create

  type t = {
    slices : h array;
    mutable cur : int; (* index of the slice receiving new samples *)
    mutable rotations : int;
  }

  let create ?sub_buckets ~slices () =
    if slices <= 0 then invalid_arg "Histogram.Windowed.create: slices must be positive";
    {
      slices = Array.init slices (fun _ -> create ?sub_buckets ());
      cur = 0;
      rotations = 0;
    }

  let slices t = Array.length t.slices
  let rotations t = t.rotations
  let add t v = add t.slices.(t.cur) v
  let current t = t.slices.(t.cur)

  let rotate t =
    t.cur <- (t.cur + 1) mod Array.length t.slices;
    clear t.slices.(t.cur);
    t.rotations <- t.rotations + 1

  let merged t =
    let into = h_create ~sub_buckets:t.slices.(0).sub_buckets () in
    Array.iter (fun h -> merge ~into h) t.slices;
    into

  let count t = Array.fold_left (fun acc h -> acc + h.n) 0 t.slices
  let percentile t p = percentile (merged t) p
  let mean t = mean (merged t)
  let max_value t = Array.fold_left (fun acc h -> Stdlib.max acc h.maxv) 0 t.slices

  let clear t =
    Array.iter clear t.slices;
    t.cur <- 0;
    t.rotations <- 0
end
