type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len
let is_empty t = t.len = 0

let ensure_sorted t =
  if not t.sorted then begin
    let slice = Array.sub t.data 0 t.len in
    Array.sort compare slice;
    Array.blit slice 0 t.data 0 t.len;
    t.sorted <- true
  end

let total t =
  let sum = ref 0.0 in
  for i = 0 to t.len - 1 do
    sum := !sum +. t.data.(i)
  done;
  !sum

let mean t = if t.len = 0 then 0.0 else total t /. float_of_int t.len

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.data.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int (t.len - 1))
  end

let min t =
  ensure_sorted t;
  if t.len = 0 then invalid_arg "Stats.min: empty";
  t.data.(0)

let max t =
  ensure_sorted t;
  if t.len = 0 then invalid_arg "Stats.max: empty";
  t.data.(t.len - 1)

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  ensure_sorted t;
  let rank = p /. 100.0 *. float_of_int (t.len - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then t.data.(lo)
  else
    let frac = rank -. float_of_int lo in
    t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))

let percentile_opt t p = if t.len = 0 then None else Some (percentile t p)
let min_opt t = if t.len = 0 then None else Some (min t)
let max_opt t = if t.len = 0 then None else Some (max t)

let p50 t = percentile t 50.0
let p95 t = percentile t 95.0
let p99 t = percentile t 99.0

let merge a b =
  let m = create () in
  for i = 0 to a.len - 1 do
    add m a.data.(i)
  done;
  for i = 0 to b.len - 1 do
    add m b.data.(i)
  done;
  m

let clear t =
  t.len <- 0;
  t.sorted <- true
