(** Zipfian-distributed key sampling, as used by YCSB.

    Uses the Gray et al. rejection-inversion-free approximation from the
    original YCSB implementation: constant-time sampling after O(1) setup
    (the zeta constant is approximated for large [n]). *)

type t

val create : ?theta:float -> n:int -> Rng.t -> t
(** [create ~theta ~n rng] samples from [\[0, n)] with skew [theta]
    (default 0.99, the YCSB default). *)

val extend : t -> n:int -> t
(** [extend t ~n] grows the sampling domain to [\[0, n)] (no-op when
    [n <= domain t]).  The zeta constant is updated incrementally with the
    new harmonic terms only — O(n - domain t), so per-insert extension is
    cheap.  The returned sampler shares [t]'s random stream. *)

val domain : t -> int
(** Current domain size [n]. *)

val next : t -> int
(** Next sample; item 0 is the most popular. *)

val scrambled : t -> int
(** Next sample with FNV scrambling, spreading hot items across the key
    space (YCSB's "scrambled zipfian"). Result is in [\[0, n)]. *)
