(** Sample collection and summary statistics for experiment results. *)

type t
(** A growable collection of float samples. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool
val total : t -> float
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty collection. *)

val percentile_opt : t -> float -> float option
(** Like {!percentile} but [None] on an empty collection, so reporting
    code can print "n/a" instead of crashing a whole experiment run. *)

val min_opt : t -> float option
val max_opt : t -> float option
(** Non-raising variants of {!min} / {!max}; [None] when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val merge : t -> t -> t
(** Union of two sample sets (neither input is mutated). *)

val clear : t -> unit
