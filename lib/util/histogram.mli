(** Log-scaled latency histogram.

    Fixed memory regardless of sample count, used where experiments record
    millions of per-operation latencies.  Buckets are exponential with a
    configurable number of sub-buckets per octave (HdrHistogram-style). *)

type t

val create : ?sub_buckets:int -> unit -> t
(** [create ~sub_buckets ()] with [sub_buckets] linear subdivisions per
    power of two (default 16). Values are non-negative integers
    (e.g. nanoseconds). *)

val add : t -> int -> unit
val count : t -> int
val total : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** Largest {e recorded} value in the bucket containing the requested
    percentile (each bucket tracks the min/max of its samples).

    Error bound: the result is always one of the recorded values, never
    exceeds {!max_value}, and overstates the true percentile by at most
    the spread of samples within one bucket — bounded by the bucket
    width, i.e. a relative error of at most [1/sub_buckets] (6.25% for
    the default 16 sub-buckets).  In particular a low-sample p99 can no
    longer report a value larger than anything ever recorded, which the
    previous bucket-upper-bound scheme did. *)

val max_value : t -> int

val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every sample recorded in [src] into [into]
    without re-observing the raw values: bucket counts are summed and the
    per-bucket (and global) min/max are combined, so count/total/mean and
    every percentile of [into] afterwards equal those of a histogram that
    had observed both sample streams directly.  [src] is unchanged.
    Raises [Invalid_argument] if the two histograms were created with
    different [sub_buckets]. *)

val clear : t -> unit

(** Sliding-window histogram for percentile-over-time queries.

    A ring of [slices] plain histograms: {!Windowed.add} lands in the
    current slice and {!Windowed.rotate} retires the oldest slice, so the
    window decays in whole-slice steps (rotate once per sampling interval
    for an N-interval sliding window).  Queries run against the exact
    {!merge} of the retained slices, so a windowed percentile equals the
    percentile of a plain histogram that had observed only the retained
    samples. *)
module Windowed : sig
  type h = t
  type t

  val create : ?sub_buckets:int -> slices:int -> unit -> t
  (** Raises [Invalid_argument] if [slices <= 0]. *)

  val add : t -> int -> unit
  val rotate : t -> unit
  (** Advance the window: clear and reuse the oldest slice. *)

  val merged : t -> h
  (** Fresh histogram equal to the merge of all retained slices. *)

  val current : t -> h
  (** The slice receiving new samples (samples since the last [rotate]). *)

  val count : t -> int
  val percentile : t -> float -> int
  val mean : t -> float
  val max_value : t -> int
  val slices : t -> int
  val rotations : t -> int
  val clear : t -> unit
end
