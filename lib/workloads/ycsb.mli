(** YCSB operation streams (Cooper et al., SoCC'10), as used in §7.5.1.

    Key popularity follows the scrambled-Zipfian distribution over the
    loaded key space; inserts extend the key space.  The five workloads of
    Figure 13: A (50% read / 50% update), B (95/5), C (100% read),
    100% Update, 100% Insert. *)

type workload =
  | A
  | B
  | C
  | Update_only
  | Insert_only
  | Mix of { read : float; update : float; insert : float }
      (** Arbitrary read/update/insert mix (fractions are normalised; at
          least one must be positive).  The serving harness uses this for
          per-tenant op mixes. *)

val name : workload -> string

val all : workload list
(** The five named Figure-13 workloads (excludes [Mix]). *)

type op = Read of int | Update of int | Insert of int
(** Key indices; [Insert i] introduces key [i] (= current key count). *)

type t

val create : workload -> keys:int -> Treesls_util.Rng.t -> t
(** [keys] already loaded (Zipfian domain grows as inserts happen). *)

val next : t -> op
val key_count : t -> int
