module Rng = Treesls_util.Rng
module Zipf = Treesls_util.Zipf

type workload =
  | A
  | B
  | C
  | Update_only
  | Insert_only
  | Mix of { read : float; update : float; insert : float }

let name = function
  | A -> "Workload A"
  | B -> "Workload B"
  | C -> "Workload C"
  | Update_only -> "100% Update"
  | Insert_only -> "100% Insert"
  | Mix { read; update; insert } ->
    Printf.sprintf "Mix %.0f/%.0f/%.0f" (100. *. read) (100. *. update)
      (100. *. insert)

let all = [ A; B; C; Update_only; Insert_only ]

type op = Read of int | Update of int | Insert of int

type t = {
  workload : workload;
  rng : Rng.t;
  mutable zipf : Zipf.t;
  mutable keys : int;
}

(* (read, update) fractions; the insert fraction is the remainder. *)
let fractions = function
  | A -> (0.5, 0.5)
  | B -> (0.95, 0.05)
  | C -> (1.0, 0.0)
  | Update_only -> (0.0, 1.0)
  | Insert_only -> (0.0, 0.0)
  | Mix { read; update; insert } ->
    let total = read +. update +. insert in
    if total <= 0.0 then invalid_arg "Ycsb.create: empty mix";
    (read /. total, update /. total)

let create workload ~keys rng =
  ignore (fractions workload);
  { workload; rng; zipf = Zipf.create ~n:keys rng; keys }

let insert t =
  let k = t.keys in
  t.keys <- t.keys + 1;
  (* Inserts extend the Zipfian domain (incremental harmonic update), so
     later reads/updates can draw the new key. *)
  t.zipf <- Zipf.extend t.zipf ~n:t.keys;
  Insert k

let next t =
  let read_f, update_f = fractions t.workload in
  let u = Rng.float t.rng 1.0 in
  if u < read_f then Read (Zipf.scrambled t.zipf)
  else if u < read_f +. update_f then Update (Zipf.scrambled t.zipf)
  else insert t

let key_count t = t.keys
