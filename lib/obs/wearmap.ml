(* NVM write-amplification / wear telemetry ("wearmap").

   Physical write accounting for the simulated NVM device: every byte that
   lands on an NVM page is counted per page (wear) and attributed to the
   subsystem that wrote it (amplification).  Attribution uses an ambient
   *writer context* — a module-global stack, same single-threaded-simulator
   trick as {!Rtrace}'s ambient current request — so the device layer never
   needs to know who is calling it.

   Two accounting channels:
   - [record]: a physical write to an identified NVM page (from
     [Device.write]/[copy_page]/[zero_page]); feeds both the per-page wear
     table and the per-subsystem totals.
   - [note]: modeled metadata bytes with no single backing page (journal
     records, object snapshots, the global meta word); feeds the
     per-subsystem totals and the grand total only.

   Like the trace ring, the tables live in the OCaml heap but model
   NVM-resident state: [System.ensure_wear_backing] reserves an eternal PMO
   sized for the per-page counters so the audit sees the residency, and the
   counters survive crash/restore because nothing ever rolls them back —
   totals are monotone across a system's lifetime. *)

type page_stat = { mutable p_writes : int; mutable p_bytes : int }
type sub_stat = { mutable s_writes : int; mutable s_bytes : int }

type t = {
  pages : (int, page_stat) Hashtbl.t;
  subs : (string, sub_stat) Hashtbl.t;
  mutable total_writes : int;
  mutable total_bytes : int;
  mutable copy_pages : int; (* whole-page NVM copies charged via Store *)
  mutable copy_ns : int; (* Sim.Cost ns charged for those copies *)
}

let create () =
  {
    pages = Hashtbl.create 1024;
    subs = Hashtbl.create 16;
    total_writes = 0;
    total_bytes = 0;
    copy_pages = 0;
    copy_ns = 0;
  }

(* --- ambient writer context ------------------------------------------- *)

let unattributed = "unattributed"

(* Module-global, not per-[t]: the writer context describes *who is
   executing*, which is a property of the (single-threaded) simulation,
   not of any particular telemetry sink. *)
let stack : string list ref = ref []

let current_writer () = match !stack with [] -> unattributed | w :: _ -> w

let with_writer name f =
  stack := name :: !stack;
  Fun.protect
    ~finally:(fun () -> match !stack with [] -> () | _ :: tl -> stack := tl)
    f

(* Outermost-wins variant for generic entry points (e.g. the kernel's
   write syscall claims "app" only when no more specific subsystem —
   extsync, checkpoint — is already on the stack). *)
let with_default_writer name f =
  match !stack with [] -> with_writer name f | _ :: _ -> f ()

(* --- recording --------------------------------------------------------- *)

let sub t name =
  match Hashtbl.find_opt t.subs name with
  | Some s -> s
  | None ->
    let s = { s_writes = 0; s_bytes = 0 } in
    Hashtbl.add t.subs name s;
    s

let record t ~page ~bytes =
  (let ps =
     match Hashtbl.find_opt t.pages page with
     | Some ps -> ps
     | None ->
       let ps = { p_writes = 0; p_bytes = 0 } in
       Hashtbl.add t.pages page ps;
       ps
   in
   ps.p_writes <- ps.p_writes + 1;
   ps.p_bytes <- ps.p_bytes + bytes);
  let s = sub t (current_writer ()) in
  s.s_writes <- s.s_writes + 1;
  s.s_bytes <- s.s_bytes + bytes;
  t.total_writes <- t.total_writes + 1;
  t.total_bytes <- t.total_bytes + bytes

let note t ~subsystem ~bytes =
  let s = sub t subsystem in
  s.s_writes <- s.s_writes + 1;
  s.s_bytes <- s.s_bytes + bytes;
  t.total_writes <- t.total_writes + 1;
  t.total_bytes <- t.total_bytes + bytes

let copy_charged t ~ns =
  t.copy_pages <- t.copy_pages + 1;
  t.copy_ns <- t.copy_ns + ns

let reset t =
  Hashtbl.reset t.pages;
  Hashtbl.reset t.subs;
  t.total_writes <- 0;
  t.total_bytes <- 0;
  t.copy_pages <- 0;
  t.copy_ns <- 0

(* --- queries ----------------------------------------------------------- *)

let total_writes t = t.total_writes
let total_bytes t = t.total_bytes
let copy_pages t = t.copy_pages
let copy_ns t = t.copy_ns
let pages_tracked t = Hashtbl.length t.pages

let subsystem_bytes t name =
  match Hashtbl.find_opt t.subs name with Some s -> s.s_bytes | None -> 0

(* sorted by name so every consumer (CLI, JSON, metrics) is deterministic *)
let subsystems t =
  Hashtbl.fold (fun name s acc -> (name, s.s_writes, s.s_bytes) :: acc) t.subs []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let top t ~n =
  Hashtbl.fold (fun page ps acc -> (page, ps.p_writes, ps.p_bytes) :: acc) t.pages []
  |> List.sort (fun (pa, wa, ba) (pb, wb, bb) ->
         match Int.compare wb wa with
         | 0 -> ( match Int.compare bb ba with 0 -> Int.compare pa pb | c -> c)
         | c -> c)
  |> fun l -> List.filteri (fun i _ -> i < n) l

let max_writes t = Hashtbl.fold (fun _ ps m -> max m ps.p_writes) t.pages 0

let mean_writes t =
  let n = Hashtbl.length t.pages in
  if n = 0 then 0.0
  else
    float_of_int (Hashtbl.fold (fun _ ps acc -> acc + ps.p_writes) t.pages 0)
    /. float_of_int n

(* max-over-mean wear skew: 1.0 = perfectly even, large = a few pages are
   absorbing most of the endurance budget *)
let skew t =
  let mean = mean_writes t in
  if mean <= 0.0 then 0.0 else float_of_int (max_writes t) /. mean

(* Gini coefficient of the per-page write-count distribution over *touched*
   pages (untouched pages excluded — the interesting question is how uneven
   the wear is where wear happens). 0 = uniform, →1 = concentrated. *)
let gini t =
  let xs =
    Hashtbl.fold (fun _ ps acc -> ps.p_writes :: acc) t.pages []
    |> List.sort Int.compare
  in
  let n = List.length xs in
  if n = 0 then 0.0
  else
    let sum = List.fold_left ( + ) 0 xs in
    if sum = 0 then 0.0
    else
      let weighted =
        List.fold_left
          (fun (i, acc) x -> (i + 1, acc +. float_of_int (i * x)))
          (1, 0.0) xs
        |> snd
      in
      let n_f = float_of_int n and sum_f = float_of_int sum in
      ((2.0 *. weighted) /. (n_f *. sum_f)) -. ((n_f +. 1.0) /. n_f)

(* --- export ------------------------------------------------------------ *)

(* [owners] optionally maps a page index to a human-readable owner label
   (from [Nvm_census.page_owners]); pages it does not know stay bare. *)

let to_csv ?owners t =
  let b = Buffer.create 256 in
  Buffer.add_string b "page,writes,bytes,owner\n";
  Hashtbl.fold (fun page ps acc -> (page, ps) :: acc) t.pages []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (page, ps) ->
         let owner =
           match owners with
           | None -> ""
           | Some f -> ( match f page with Some o -> o | None -> "")
         in
         Buffer.add_string b
           (Printf.sprintf "%d,%d,%d,%s\n" page ps.p_writes ps.p_bytes owner));
  Buffer.contents b

let to_json ?owners ?(top_n = 20) t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"total_writes\": %d,\n" t.total_writes);
  Buffer.add_string b (Printf.sprintf "  \"total_bytes\": %d,\n" t.total_bytes);
  Buffer.add_string b (Printf.sprintf "  \"copy_pages\": %d,\n" t.copy_pages);
  Buffer.add_string b (Printf.sprintf "  \"copy_ns\": %d,\n" t.copy_ns);
  Buffer.add_string b (Printf.sprintf "  \"pages_tracked\": %d,\n" (pages_tracked t));
  Buffer.add_string b (Printf.sprintf "  \"max_writes\": %d,\n" (max_writes t));
  Buffer.add_string b (Printf.sprintf "  \"gini\": %.4f,\n" (gini t));
  Buffer.add_string b (Printf.sprintf "  \"skew\": %.2f,\n" (skew t));
  Buffer.add_string b "  \"subsystems\": {";
  List.iteri
    (fun i (name, w, bytes) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n    \"%s\": { \"writes\": %d, \"bytes\": %d }"
           (Trace.json_escape name) w bytes))
    (subsystems t);
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b "  \"top\": [";
  List.iteri
    (fun i (page, w, bytes) ->
      if i > 0 then Buffer.add_string b ",";
      let owner =
        match owners with
        | None -> None
        | Some f -> f page
      in
      Buffer.add_string b
        (Printf.sprintf "\n    { \"page\": %d, \"writes\": %d, \"bytes\": %d%s }" page w
           bytes
           (match owner with
           | None -> ""
           | Some o -> Printf.sprintf ", \"owner\": \"%s\"" (Trace.json_escape o))))
    (top t ~n:top_n);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
