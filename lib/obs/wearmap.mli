(** NVM write-amplification / wear telemetry ("wearmap").

    Counts every physical byte written to the simulated NVM device, per
    page (wear) and per writing subsystem (amplification).  Subsystem
    attribution uses an ambient {e writer context} — a module-global stack
    manipulated with {!with_writer}, the same single-threaded-simulator
    pattern as {!Rtrace}'s ambient current request — so the device layer
    stays ignorant of its callers.

    The tables live in the OCaml heap but model NVM-resident state (see
    [System.ensure_wear_backing]); counters are monotone and survive
    crash/restore because nothing ever rolls them back. *)

type t

val create : unit -> t

(** {2 Writer context} — module-global ambient state, not per-[t]. *)

val with_writer : string -> (unit -> 'a) -> 'a
(** Run [f] with the given subsystem name as the innermost writer;
    exception-safe (the context pops even if [f] raises, e.g. an injected
    crash). *)

val with_default_writer : string -> (unit -> 'a) -> 'a
(** Like {!with_writer} but only applies when no writer context is active —
    for generic entry points (the kernel write syscall claims ["app"]
    unless extsync/checkpoint/… already claimed the write). *)

val current_writer : unit -> string
(** Innermost active writer, or {!unattributed} when none. *)

val unattributed : string
(** Attribution sink for writes outside any context — its presence in
    {!subsystems} means an instrumentation gap. *)

(** {2 Recording} *)

val record : t -> page:int -> bytes:int -> unit
(** A physical write of [bytes] to NVM page [page], attributed to the
    current writer; feeds the wear table and subsystem totals. *)

val note : t -> subsystem:string -> bytes:int -> unit
(** Modeled metadata bytes with no single backing page (journal records,
    object snapshots); feeds subsystem and grand totals only. *)

val copy_charged : t -> ns:int -> unit
(** A whole-page NVM copy was charged [ns] by the [Sim.Cost] model —
    lets reported bytes and reported time reconcile. *)

val reset : t -> unit

(** {2 Queries} *)

val total_writes : t -> int
val total_bytes : t -> int

val copy_pages : t -> int
val copy_ns : t -> int
(** Whole-page NVM copies seen by {!copy_charged} and their total charged
    ns; [copy_ns = copy_pages * nvm_page_write_copy_ns] by construction. *)

val pages_tracked : t -> int

val subsystems : t -> (string * int * int) list
(** [(name, writes, bytes)] sorted by name (deterministic output). *)

val subsystem_bytes : t -> string -> int

val top : t -> n:int -> (int * int * int) list
(** Top-[n] hottest pages as [(page, writes, bytes)], most-written first. *)

val max_writes : t -> int
val mean_writes : t -> float

val skew : t -> float
(** Max-over-mean write-count skew across touched pages; 1.0 = even wear,
    0.0 when no pages were written. *)

val gini : t -> float
(** Gini coefficient of the per-page write-count distribution over touched
    pages; 0 = uniform, approaching 1 = concentrated on few pages. *)

(** {2 Export} — [owners] optionally labels a page with its owner (from
    [Nvm_census.page_owners]). *)

val to_csv : ?owners:(int -> string option) -> t -> string
(** Full heatmap, one line per touched page, sorted by page index. *)

val to_json : ?owners:(int -> string option) -> ?top_n:int -> t -> string
(** Totals, per-subsystem breakdown, skew statistics and top-[top_n]
    hottest pages as a JSON object. *)
