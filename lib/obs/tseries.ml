(* Crash-surviving metrics time-series ("black box").

   A ring of fixed-width samples, one per committed checkpoint: each
   sample carries a monotone sequence number, the committed version, the
   commit timestamp, and one integer cell per registered column.  The
   recorder has eternal-PMO semantics (like the trace ring and the
   wearmap): nothing in the crash/restore path ever resets it, so the
   sampled history — and the monotone seq/version spine — survives every
   power cut, and the backing PMO reserved via the probe prices the NVM
   residency of exactly [slot_bytes * capacity] bytes.

   Samples are recorded only after a checkpoint commit, which gives the
   torn-write-free invariant the crashtest sweep checks: sequence numbers
   are consecutive, timestamps nondecreasing, and versions strictly
   increasing — a torn, duplicated, or reordered sample is impossible to
   miss. *)

type sample = {
  sp_seq : int;  (* monotone across crashes; never reset *)
  sp_version : int;  (* committed checkpoint version *)
  sp_ts_ns : int;
  sp_values : int array;  (* cell per column id; width = columns at record time *)
}

let absent = min_int

type t = {
  cap : int;
  max_cols : int;
  buf : sample option array;
  mutable total : int;  (* samples ever recorded; write index = total mod cap *)
  col_ids : (string, int) Hashtbl.t;
  mutable col_names : string array;  (* id -> name; grows up to max_cols *)
  mutable n_cols : int;
  mutable cols_dropped : int;  (* interning attempts past max_cols *)
}

let default_capacity = 1024
let default_max_cols = 125

(* Fixed-width slot accounting for the eternal backing PMO: seq, version
   and timestamp plus one 8-byte cell per column budget slot. *)
let slot_bytes ~max_cols = 8 * (3 + max_cols)

let create ?(capacity = default_capacity) ?(max_cols = default_max_cols) () =
  if capacity <= 0 then invalid_arg "Tseries.create: capacity must be positive";
  if max_cols <= 0 then invalid_arg "Tseries.create: max_cols must be positive";
  {
    cap = capacity;
    max_cols;
    buf = Array.make capacity None;
    total = 0;
    col_ids = Hashtbl.create 64;
    col_names = Array.make 16 "";
    n_cols = 0;
    cols_dropped = 0;
  }

let capacity t = t.cap
let total t = t.total
let length t = min t.total t.cap
let dropped t = if t.total > t.cap then t.total - t.cap else 0
let backing_bytes t = t.cap * slot_bytes ~max_cols:t.max_cols
let cols_dropped t = t.cols_dropped

let intern t name =
  match Hashtbl.find_opt t.col_ids name with
  | Some id -> id
  | None ->
    if t.n_cols >= t.max_cols then begin
      t.cols_dropped <- t.cols_dropped + 1;
      -1
    end
    else begin
      let id = t.n_cols in
      if id >= Array.length t.col_names then begin
        let bigger = Array.make (2 * Array.length t.col_names) "" in
        Array.blit t.col_names 0 bigger 0 (Array.length t.col_names);
        t.col_names <- bigger
      end;
      t.col_names.(id) <- name;
      Hashtbl.replace t.col_ids name id;
      t.n_cols <- id + 1;
      id
    end

let columns t = List.init t.n_cols (fun i -> t.col_names.(i))
let column_count t = t.n_cols

let record t ~ts_ns ~version values =
  let ids = List.map (fun (name, v) -> (intern t name, v)) values in
  let cells = Array.make t.n_cols absent in
  List.iter (fun (id, v) -> if id >= 0 then cells.(id) <- (if v = absent then v + 1 else v)) ids;
  t.buf.(t.total mod t.cap) <-
    Some { sp_seq = t.total; sp_version = version; sp_ts_ns = ts_ns; sp_values = cells };
  t.total <- t.total + 1

let samples t =
  let n = length t in
  let first = t.total - n in
  List.init n (fun i ->
      match t.buf.((first + i) mod t.cap) with
      | Some s -> s
      | None -> assert false (* slots below [length] are always filled *))

let latest t = if t.total = 0 then None else t.buf.((t.total - 1) mod t.cap)

let window t ~n =
  let keep = min n (length t) in
  let all = samples t in
  let skip = List.length all - keep in
  List.filteri (fun i _ -> i >= skip) all

let value t s name =
  match Hashtbl.find_opt t.col_ids name with
  | None -> None
  | Some id ->
    if id >= Array.length s.sp_values then None
    else begin
      let v = s.sp_values.(id) in
      if v = absent then None else Some v
    end

(* ------------------------------------------------------------------ *)
(* Query layer: every query runs over the newest [n] retained samples. *)

let series t name ~n =
  List.filter_map (fun s -> match value t s name with Some v -> Some (s, v) | None -> None)
    (window t ~n)

let delta t name ~n =
  match series t name ~n with
  | [] | [ _ ] -> None
  | (_, first) :: rest ->
    let _, last = List.nth rest (List.length rest - 1) in
    Some (last - first)

let rate_per_s t name ~n =
  match series t name ~n with
  | [] | [ _ ] -> None
  | (s0, v0) :: rest ->
    let sn, vn = List.nth rest (List.length rest - 1) in
    let dt = sn.sp_ts_ns - s0.sp_ts_ns in
    if dt <= 0 then None else Some (float_of_int (vn - v0) *. 1e9 /. float_of_int dt)

let ewma t name ~alpha =
  match series t name ~n:(length t) with
  | [] -> None
  | (_, v0) :: rest ->
    Some (List.fold_left (fun acc (_, v) -> (alpha *. float_of_int v) +. ((1.0 -. alpha) *. acc))
            (float_of_int v0) rest)

let percentile_over t name ~n ~p =
  match List.map snd (series t name ~n) with
  | [] -> None
  | vs ->
    let a = Array.of_list vs in
    Array.sort compare a;
    let k = Array.length a in
    let idx = int_of_float (Float.ceil (p /. 100.0 *. float_of_int k)) - 1 in
    let idx = if idx < 0 then 0 else if idx >= k then k - 1 else idx in
    Some a.(idx)

let mean_over t name ~n =
  match List.map snd (series t name ~n) with
  | [] -> None
  | vs -> Some (float_of_int (List.fold_left ( + ) 0 vs) /. float_of_int (List.length vs))

let max_over t name ~n =
  match List.map snd (series t name ~n) with
  | [] -> None
  | v :: vs -> Some (List.fold_left max v vs)

(* ------------------------------------------------------------------ *)
(* Exports.  No JSON library in the container; emitted by hand like the
   trace ring's. *)

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "seq,version,ts_ns";
  List.iter (fun c -> Buffer.add_char b ','; Buffer.add_string b c) (columns t);
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "%d,%d,%d" s.sp_seq s.sp_version s.sp_ts_ns);
      for id = 0 to t.n_cols - 1 do
        Buffer.add_char b ',';
        if id < Array.length s.sp_values && s.sp_values.(id) <> absent then
          Buffer.add_string b (string_of_int s.sp_values.(id))
      done;
      Buffer.add_char b '\n')
    (samples t);
  Buffer.contents b

let to_json ?last t =
  let ss = match last with None -> samples t | Some n -> window t ~n in
  let esc = Trace.json_escape in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"columns\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\"" (esc c)))
    (columns t);
  Buffer.add_string b
    (Printf.sprintf "],\"capacity\":%d,\"total\":%d,\"dropped\":%d,\"samples\":[" t.cap t.total
       (dropped t));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"seq\":%d,\"version\":%d,\"ts_ns\":%d,\"values\":{" s.sp_seq s.sp_version
           s.sp_ts_ns);
      let first = ref true in
      for id = 0 to min (t.n_cols - 1) (Array.length s.sp_values - 1) do
        if s.sp_values.(id) <> absent then begin
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc t.col_names.(id)) s.sp_values.(id))
        end
      done;
      Buffer.add_string b "}}")
    ss;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Perfetto counter-track export: exactly one [ph:"C"] event per retained
   sample (the acceptance gate counts them against [total]), carrying the
   selected columns — default every registered column — as numeric args on
   a dedicated "tseries" track. *)
let to_perfetto_json ?(pid = 1) ?(tid = 9) ?cols t =
  let cols = match cols with Some c -> c | None -> columns t in
  let esc = Trace.json_escape in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"treesls\"}}" pid);
  Buffer.add_string b
    (Printf.sprintf
       ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"tseries\"}}"
       pid tid);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf ",{\"name\":\"tseries\",\"cat\":\"tseries\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{"
           (float_of_int s.sp_ts_ns /. 1e3) pid tid);
      let first = ref true in
      List.iter
        (fun c ->
          match value t s c with
          | None -> ()
          | Some v ->
            if not !first then Buffer.add_char b ',';
            first := false;
            Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc c) v))
        cols;
      Buffer.add_string b "}}")
    (samples t);
  Buffer.add_string b "]}";
  Buffer.contents b

let counter_points t = length t

let pp ?(last = 10) ppf t =
  Format.fprintf ppf "tseries: %d samples (%d recorded, %d dropped), %d columns@." (length t)
    t.total (dropped t) t.n_cols;
  let ss = window t ~n:last in
  List.iter
    (fun s ->
      Format.fprintf ppf "  [%6d] v%-6d %12.3fus" s.sp_seq s.sp_version
        (float_of_int s.sp_ts_ns /. 1e3);
      List.iter
        (fun c ->
          match value t s c with
          | Some v -> Format.fprintf ppf " %s=%d" c v
          | None -> ())
        [ "ckpt.stw_ns"; "ckpt.dirty_fraction_pct"; "ckpt.nvm.waf"; "req.enq2vis.p99_ns" ];
      Format.fprintf ppf "@.")
    ss
