module Histogram = Treesls_util.Histogram

type outcome = Pending | Internal | Released | Shed | Dropped

let outcome_name = function
  | Pending -> "pending"
  | Internal -> "internal"
  | Released -> "released"
  | Shed -> "shed"
  | Dropped -> "dropped"

type req = {
  rq_id : int;
  rq_origin : string;
  rq_arrive_ns : int;
  mutable rq_handled_ns : int;
  mutable rq_enqueued_ns : int;
  mutable rq_visible_ns : int;
  mutable rq_commit_ver : int;
  mutable rq_ipc_calls : int;
  mutable rq_outcome : outcome;
}

type t = {
  done_cap : int;
  done_buf : req option array;
  mutable done_total : int; (* completed requests ever; write index = total mod cap *)
  live : (int, req) Hashtbl.t;
  mutable next_id : int;
  mutable current : int; (* 0 = no ambient request *)
  enq2vis : Histogram.t;
  e2e : Histogram.t;
  (* Per-origin latency breakdown: origin -> (enq2vis, e2e).  Fed on
     release only, like the global pair; bounded by the origin vocabulary
     (op name, optionally prefixed by tenant). *)
  by_origin : (string, Histogram.t * Histogram.t) Hashtbl.t;
  mutable released : int;
  mutable internal : int;
  mutable shed : int;
  mutable dropped : int;
  mutable last_commit : (int * int * int) option; (* version, stw begin, stw end *)
  mutable per_version : (int * int) list; (* newest first: version -> released *)
}

let per_version_keep = 64

let create ?(done_capacity = 1024) () =
  if done_capacity <= 0 then invalid_arg "Rtrace.create: done_capacity must be positive";
  {
    done_cap = done_capacity;
    done_buf = Array.make done_capacity None;
    done_total = 0;
    live = Hashtbl.create 256;
    next_id = 1;
    current = 0;
    enq2vis = Histogram.create ();
    e2e = Histogram.create ();
    by_origin = Hashtbl.create 16;
    released = 0;
    internal = 0;
    shed = 0;
    dropped = 0;
    last_commit = None;
    per_version = [];
  }

let finish t rq =
  (match rq.rq_outcome with
  | Released -> t.released <- t.released + 1
  | Internal -> t.internal <- t.internal + 1
  | Shed -> t.shed <- t.shed + 1
  | Dropped -> t.dropped <- t.dropped + 1
  | Pending -> ());
  Hashtbl.remove t.live rq.rq_id;
  if t.current = rq.rq_id then t.current <- 0;
  t.done_buf.(t.done_total mod t.done_cap) <- Some rq;
  t.done_total <- t.done_total + 1

let arrive t ~now ~origin =
  (* A still-current request that never reached an extsync ring is purely
     internal: close its timeline so the live table stays bounded by the
     ring capacity (enqueued requests wait for their releasing commit). *)
  (match Hashtbl.find_opt t.live t.current with
  | Some prev when prev.rq_outcome = Pending && prev.rq_enqueued_ns < 0 ->
    prev.rq_outcome <- Internal;
    finish t prev
  | Some _ | None -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  let rq =
    {
      rq_id = id;
      rq_origin = origin;
      rq_arrive_ns = now;
      rq_handled_ns = -1;
      rq_enqueued_ns = -1;
      rq_visible_ns = -1;
      rq_commit_ver = 0;
      rq_ipc_calls = 0;
      rq_outcome = Pending;
    }
  in
  Hashtbl.replace t.live id rq;
  t.current <- id;
  id

let current_id t = t.current
let find_live t id = Hashtbl.find_opt t.live id

let handled t ~now =
  match Hashtbl.find_opt t.live t.current with
  | Some rq -> if rq.rq_handled_ns < 0 then rq.rq_handled_ns <- now
  | None -> ()

let note_ipc t =
  match Hashtbl.find_opt t.live t.current with
  | Some rq -> rq.rq_ipc_calls <- rq.rq_ipc_calls + 1
  | None -> ()

let enqueued t ~now =
  match Hashtbl.find_opt t.live t.current with
  | Some rq when rq.rq_outcome = Pending ->
    if rq.rq_enqueued_ns < 0 then rq.rq_enqueued_ns <- now;
    rq.rq_id
  | Some _ | None -> 0

let released t ~now ~id ~version =
  match Hashtbl.find_opt t.live id with
  | Some rq when rq.rq_outcome = Pending && rq.rq_enqueued_ns >= 0 ->
    rq.rq_visible_ns <- now;
    rq.rq_commit_ver <- version;
    rq.rq_outcome <- Released;
    Histogram.add t.enq2vis (now - rq.rq_enqueued_ns);
    Histogram.add t.e2e (now - rq.rq_arrive_ns);
    let o_enq2vis, o_e2e =
      match Hashtbl.find_opt t.by_origin rq.rq_origin with
      | Some pair -> pair
      | None ->
        let pair = (Histogram.create (), Histogram.create ()) in
        Hashtbl.replace t.by_origin rq.rq_origin pair;
        pair
    in
    Histogram.add o_enq2vis (now - rq.rq_enqueued_ns);
    Histogram.add o_e2e (now - rq.rq_arrive_ns);
    (t.per_version <-
      (match t.per_version with
      | (v, n) :: rest when v = version -> (v, n + 1) :: rest
      | l ->
        let l = if List.length l >= per_version_keep then List.filteri (fun i _ -> i < per_version_keep - 1) l else l in
        (version, 1) :: l));
    finish t rq;
    Some rq
  | Some _ | None -> None

let shed t ~id =
  match Hashtbl.find_opt t.live id with
  | Some rq when rq.rq_outcome = Pending ->
    rq.rq_outcome <- Shed;
    finish t rq;
    true
  | Some _ | None -> false

let drop t ~id =
  match Hashtbl.find_opt t.live id with
  | Some rq when rq.rq_outcome = Pending ->
    rq.rq_outcome <- Dropped;
    finish t rq;
    true
  | Some _ | None -> false

(* A power failure rolls back every request that was not yet released: its
   sender will re-issue it after recovery (external synchrony's contract). *)
let on_crash t =
  let pending = Hashtbl.fold (fun id _ acc -> id :: acc) t.live [] in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.live id with
      | Some rq when rq.rq_outcome = Pending ->
        rq.rq_outcome <- Dropped;
        finish t rq
      | Some _ | None -> ())
    pending

let on_commit t ~version ~stw_t0 ~stw_t1 = t.last_commit <- Some (version, stw_t0, stw_t1)
let last_commit t = t.last_commit

let live_count t = Hashtbl.length t.live

(* Burst-pressure signal for the adaptive interval controller: requests
   whose reply is parked on a ring awaiting the next commit. *)
let pending_enqueued t =
  Hashtbl.fold
    (fun _ rq acc -> if rq.rq_outcome = Pending && rq.rq_enqueued_ns >= 0 then acc + 1 else acc)
    t.live 0
let released_count t = t.released
let internal_count t = t.internal
let shed_count t = t.shed
let dropped_count t = t.dropped
let completed_total t = t.done_total

let completed t =
  let n = min t.done_total t.done_cap in
  let first = t.done_total - n in
  List.init n (fun i ->
      match t.done_buf.((first + i) mod t.done_cap) with
      | Some rq -> rq
      | None -> assert false)
  |> List.rev

let per_version t = t.per_version

type summary = {
  s_count : int;
  s_p50_ns : int;
  s_p95_ns : int;
  s_p99_ns : int;
  s_mean_ns : float;
  s_max_ns : int;
}

let summarize h =
  {
    s_count = Histogram.count h;
    s_p50_ns = Histogram.percentile h 50.0;
    s_p95_ns = Histogram.percentile h 95.0;
    s_p99_ns = Histogram.percentile h 99.0;
    s_mean_ns = Histogram.mean h;
    s_max_ns = Histogram.max_value h;
  }

let enq2vis_summary t = summarize t.enq2vis
let e2e_summary t = summarize t.e2e

let origins t =
  Hashtbl.fold (fun o _ acc -> o :: acc) t.by_origin [] |> List.sort String.compare

(* Merge every origin matching [prefix] into one (enq2vis, e2e) pair —
   the serving harness tags origins "t<i>/kv.<op>" and asks per tenant. *)
let summaries_prefix t ~prefix =
  let is_prefix o =
    String.length o >= String.length prefix
    && String.sub o 0 (String.length prefix) = prefix
  in
  let acc_enq2vis = Histogram.create () and acc_e2e = Histogram.create () in
  Hashtbl.iter
    (fun o (h_enq2vis, h_e2e) ->
      if is_prefix o then begin
        Histogram.merge ~into:acc_enq2vis h_enq2vis;
        Histogram.merge ~into:acc_e2e h_e2e
      end)
    t.by_origin;
  (summarize acc_enq2vis, summarize acc_e2e)

let pp_req ppf rq =
  let us v = float_of_int v /. 1e3 in
  let rel v = if v < 0 then "-" else Printf.sprintf "+%.1fus" (us (v - rq.rq_arrive_ns)) in
  Format.fprintf ppf "req %-6d %-10s arrive=%10.1fus handled=%-10s enq=%-10s visible=%-10s %s%s%s"
    rq.rq_id rq.rq_origin (us rq.rq_arrive_ns) (rel rq.rq_handled_ns) (rel rq.rq_enqueued_ns)
    (rel rq.rq_visible_ns) (outcome_name rq.rq_outcome)
    (if rq.rq_commit_ver > 0 then Printf.sprintf " commit=v%d" rq.rq_commit_ver else "")
    (if rq.rq_ipc_calls > 0 then Printf.sprintf " ipc=%d" rq.rq_ipc_calls else "")
