(* SLO watchdog over the tseries black box.

   Declarative rules ("p99(enq2vis) < 2*interval", "waf < 3",
   "rate(ring.dropped) == 0") are parsed into a tiny expression AST and
   evaluated against the newest tseries sample at every checkpoint
   commit.  A violated rule emits a structured alert: the probe mirrors
   it into the trace ring as an [slo.alert] instant and bumps the
   [slo.alerts] metric, and the retained alert log feeds the
   doctor-visible health report. *)

type func = P50 | P99 | Value | Rate | Delta | Ewma | Max | Mean
type cmp = Lt | Le | Gt | Ge | Eq

type expr =
  | Num of float
  | Interval  (* the checkpoint interval, ns *)
  | Apply of func * string  (* func over a signal name *)
  | Mul of expr * expr

type rule = { r_text : string; r_lhs : expr; r_cmp : cmp; r_rhs : expr }

(* Short signal names accepted in rules, resolved to (column, scale).
   WAF is recorded x100 (integer gauge), so "waf < 3" compares against
   the true ratio. *)
let aliases =
  [
    ("enq2vis", ("req.enq2vis", 1.0));
    ("waf", ("ckpt.nvm.waf", 0.01));
    ("ring.dropped", ("extsync.ring.dropped", 1.0));
    ("stw", ("ckpt.stw_ns", 1.0));
    ("dirty_pct", ("ckpt.dirty_fraction_pct", 1.0));
    ("drain.backlog", ("ckpt.drain.backlog", 1.0));
    ("pages_protected", ("ckpt.pages.protected.last", 1.0));
  ]

let resolve name = match List.assoc_opt name aliases with Some cs -> cs | None -> (name, 1.0)

(* --- parser ------------------------------------------------------- *)

type token = TNum of float | TIdent of string | TMul | TLp | TRp | TCmp of cmp

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ok = ref None in
  while !ok = None && !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '*' then (toks := TMul :: !toks; incr i)
    else if c = '(' then (toks := TLp :: !toks; incr i)
    else if c = ')' then (toks := TRp :: !toks; incr i)
    else if c = '<' then
      if !i + 1 < n && s.[!i + 1] = '=' then (toks := TCmp Le :: !toks; i := !i + 2)
      else (toks := TCmp Lt :: !toks; incr i)
    else if c = '>' then
      if !i + 1 < n && s.[!i + 1] = '=' then (toks := TCmp Ge :: !toks; i := !i + 2)
      else (toks := TCmp Gt :: !toks; incr i)
    else if c = '=' then
      if !i + 1 < n && s.[!i + 1] = '=' then (toks := TCmp Eq :: !toks; i := !i + 2)
      else ok := Some (err "stray '=' at %d (use '==')" !i)
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let j = ref !i in
      while !j < n && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.') do incr j done;
      match float_of_string_opt (String.sub s !i (!j - !i)) with
      | Some f -> toks := TNum f :: !toks; i := !j
      | None -> ok := Some (err "bad number at %d" !i)
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while
        !j < n
        && ((s.[!j] >= 'a' && s.[!j] <= 'z') || (s.[!j] >= 'A' && s.[!j] <= 'Z')
            || (s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '_' || s.[!j] = '.')
      do incr j done;
      toks := TIdent (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else ok := Some (err "unexpected character %C at %d" c !i)
  done;
  match !ok with Some e -> e | None -> Ok (List.rev !toks)

let func_of_string = function
  | "p50" -> Some P50
  | "p99" -> Some P99
  | "value" -> Some Value
  | "rate" -> Some Rate
  | "delta" -> Some Delta
  | "ewma" -> Some Ewma
  | "max" -> Some Max
  | "mean" -> Some Mean
  | _ -> None

let rule_of_string text =
  match tokenize text with
  | Error e -> Error e
  | Ok toks ->
    let rest = ref toks in
    let exception Parse of string in
    let fail m = raise (Parse m) in
    let next () = match !rest with [] -> fail "unexpected end of rule" | t :: r -> rest := r; t in
    let peek () = match !rest with [] -> None | t :: _ -> Some t in
    let rec term () =
      match next () with
      | TNum f -> Num f
      | TIdent "interval" -> Interval
      | TIdent id -> (
        match (func_of_string id, peek ()) with
        | Some f, Some TLp -> (
          ignore (next ());
          match (next (), next ()) with
          | TIdent arg, TRp -> Apply (f, arg)
          | _ -> fail (Printf.sprintf "expected '(name)' after %s" id))
        | _ -> Apply (Value, id))
      | TLp ->
        let e = expr () in
        (match next () with TRp -> e | _ -> fail "expected ')'")
      | _ -> fail "expected a number, signal or function"
    and expr () =
      let lhs = term () in
      match peek () with
      | Some TMul ->
        ignore (next ());
        Mul (lhs, expr ())
      | _ -> lhs
    in
    (try
       let lhs = expr () in
       let cmp = match next () with TCmp c -> c | _ -> fail "expected a comparison operator" in
       let rhs = expr () in
       if !rest <> [] then fail "trailing tokens after rule";
       Ok { r_text = text; r_lhs = lhs; r_cmp = cmp; r_rhs = rhs }
     with Parse m -> Error (Printf.sprintf "%s: %s" text m))

let func_to_string = function
  | P50 -> "p50"
  | P99 -> "p99"
  | Value -> "value"
  | Rate -> "rate"
  | Delta -> "delta"
  | Ewma -> "ewma"
  | Max -> "max"
  | Mean -> "mean"

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "=="

let rec expr_to_string = function
  | Num f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | Interval -> "interval"
  | Apply (Value, id) -> id
  | Apply (f, id) -> Printf.sprintf "%s(%s)" (func_to_string f) id
  | Mul (a, b) -> Printf.sprintf "%s*%s" (expr_to_string a) (expr_to_string b)

let rule_to_string r =
  Printf.sprintf "%s %s %s" (expr_to_string r.r_lhs) (cmp_to_string r.r_cmp)
    (expr_to_string r.r_rhs)

(* Drain invariant: per-window backlog never exceeds the protection flips
   it rode on.  Compared max-over-window on BOTH sides (the gauges are
   per-commit and pointwise backlog <= protected by construction), so the
   rule only fires when deferred copies leak across windows. *)
let default_rule_texts =
  [
    "p99(enq2vis) < 2*interval";
    "waf < 3";
    "rate(ring.dropped) == 0";
    "max(drain.backlog) <= max(pages_protected)";
  ]

let default_rules =
  List.map
    (fun t -> match rule_of_string t with Ok r -> r | Error e -> failwith ("Slo.default_rules: " ^ e))
    default_rule_texts

(* --- evaluation ---------------------------------------------------- *)

(* [None] means "no data yet" (missing column, no samples, unknown
   interval): the rule is skipped for this sample, not violated. *)
let rec eval ts ~interval_ns e =
  match e with
  | Num f -> Some f
  | Interval -> Option.map float_of_int interval_ns
  | Mul (a, b) -> (
    match (eval ts ~interval_ns a, eval ts ~interval_ns b) with
    | Some x, Some y -> Some (x *. y)
    | _ -> None)
  | Apply (f, id) -> (
    let col, scale = resolve id in
    let scaled v = Some (v *. scale) in
    let latest_col c =
      match Tseries.latest ts with
      | None -> None
      | Some s -> Option.map float_of_int (Tseries.value ts s c)
    in
    match f with
    | Value -> Option.bind (latest_col col) scaled
    | P50 -> Option.bind (latest_col (col ^ ".p50_ns")) scaled
    | P99 -> Option.bind (latest_col (col ^ ".p99_ns")) scaled
    | Rate -> Option.bind (Tseries.rate_per_s ts col ~n:2) scaled
    | Delta -> Option.bind (Option.map float_of_int (Tseries.delta ts col ~n:2)) scaled
    | Ewma -> Option.bind (Tseries.ewma ts col ~alpha:0.3) scaled
    | Max -> Option.bind (Option.map float_of_int (Tseries.max_over ts col ~n:16)) scaled
    | Mean -> Option.bind (Tseries.mean_over ts col ~n:16) scaled)

let holds cmp l r =
  match cmp with
  | Lt -> l < r
  | Le -> l <= r
  | Gt -> l > r
  | Ge -> l >= r
  | Eq -> Float.abs (l -. r) <= 1e-9

(* --- watchdog state ------------------------------------------------ *)

type alert = {
  al_seq : int;  (* tseries sample seq the rule fired on *)
  al_version : int;
  al_ts_ns : int;
  al_rule : string;
  al_value : float;  (* evaluated lhs *)
  al_bound : float;  (* evaluated rhs *)
}

type rule_stats = { mutable rs_evals : int; mutable rs_fires : int; mutable rs_last : alert option }

type t = {
  mutable rules : (rule * rule_stats) list;
  alert_cap : int;
  mutable alerts : alert list;  (* newest first, bounded *)
  mutable alerts_total : int;
  mutable checks : int;
}

let create ?(alert_cap = 256) ?(rules = default_rules) () =
  {
    rules = List.map (fun r -> (r, { rs_evals = 0; rs_fires = 0; rs_last = None })) rules;
    alert_cap;
    alerts = [];
    alerts_total = 0;
    checks = 0;
  }

let rules t = List.map fst t.rules

let set_rules t rs =
  t.rules <- List.map (fun r -> (r, { rs_evals = 0; rs_fires = 0; rs_last = None })) rs

let alerts t = List.rev t.alerts
let alerts_total t = t.alerts_total
let checks t = t.checks
let healthy t = t.alerts_total = 0

let rule_report t =
  List.map (fun (r, s) -> (r.r_text, s.rs_evals, s.rs_fires, s.rs_last)) t.rules

let check t ts ~interval_ns =
  t.checks <- t.checks + 1;
  match Tseries.latest ts with
  | None -> []
  | Some sample ->
    List.filter_map
      (fun (r, s) ->
        match (eval ts ~interval_ns r.r_lhs, eval ts ~interval_ns r.r_rhs) with
        | Some l, Some b ->
          s.rs_evals <- s.rs_evals + 1;
          if holds r.r_cmp l b then None
          else begin
            let al =
              {
                al_seq = sample.Tseries.sp_seq;
                al_version = sample.Tseries.sp_version;
                al_ts_ns = sample.Tseries.sp_ts_ns;
                al_rule = r.r_text;
                al_value = l;
                al_bound = b;
              }
            in
            s.rs_fires <- s.rs_fires + 1;
            s.rs_last <- Some al;
            t.alerts_total <- t.alerts_total + 1;
            t.alerts <- al :: (if List.length t.alerts >= t.alert_cap then
                                 List.filteri (fun i _ -> i < t.alert_cap - 1) t.alerts
                               else t.alerts);
            Some al
          end
        | _ -> None)
      t.rules

(* --- health report ------------------------------------------------- *)

let pp ppf t =
  Format.fprintf ppf "slo: %d rules, %d checks, %d alerts — %s@." (List.length t.rules) t.checks
    t.alerts_total
    (if healthy t then "healthy" else "UNHEALTHY");
  List.iter
    (fun (text, evals, fires, last) ->
      Format.fprintf ppf "  %-36s evals=%-6d fires=%-6d" text evals fires;
      (match last with
      | Some al ->
        Format.fprintf ppf " last: v%d @%.3fus value=%.1f bound=%.1f" al.al_version
          (float_of_int al.al_ts_ns /. 1e3) al.al_value al.al_bound
      | None -> ());
      Format.fprintf ppf "@.")
    (rule_report t)

let to_json t =
  let esc = Trace.json_escape in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"healthy\":%b,\"checks\":%d,\"alerts_total\":%d,\"rules\":[" (healthy t)
       t.checks t.alerts_total);
  List.iteri
    (fun i (text, evals, fires, _) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"rule\":\"%s\",\"evals\":%d,\"fires\":%d}" (esc text) evals fires))
    (rule_report t);
  Buffer.add_string b "],\"alerts\":[";
  List.iteri
    (fun i al ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"seq\":%d,\"version\":%d,\"ts_ns\":%d,\"rule\":\"%s\",\"value\":%.3f,\"bound\":%.3f}"
           al.al_seq al.al_version al.al_ts_ns (esc al.al_rule) al.al_value al.al_bound))
    (alerts t);
  Buffer.add_string b "]}";
  Buffer.contents b
